// Sec. 8 / Fig. 18 — Carpool over MU-MIMO: four beamformed streams for
// four users share one legacy preamble and A-HDR, where 802.11ac MU-MIMO
// needs at least two transmissions.
//
// Paper: the aggregation preserves per-user decodability (each group keeps
// its own VHT preamble and precoder) while halving the preamble/contention
// cost for the two-group example.

#include <cstdio>

#include "bench_util.hpp"
#include "carpool/mumimo.hpp"

using namespace carpool;

int main() {
  std::printf("Sec. 8 — MU-MIMO Carpool (2-antenna AP, 4 users, ZF)\n\n");

  std::printf("Per-user BER across SNR (QAM16, ideal CSI):\n");
  std::printf("%8s %10s %10s %10s %10s %12s\n", "SNR", "user A", "user B",
              "user C", "user D", "airtime save");
  for (const double snr : {10.0, 15.0, 20.0, 25.0, 30.0}) {
    MuMimoConfig cfg;
    cfg.snr_db = snr;
    cfg.symbols_per_group = 40;
    cfg.seed = static_cast<std::uint64_t>(snr);
    const MuMimoResult r = simulate_mumimo(cfg);
    std::printf("%8.0f %10.2e %10.2e %10.2e %10.2e %11.1f%%\n", snr,
                r.user_ber[0], r.user_ber[1], r.user_ber[2], r.user_ber[3],
                100.0 * r.airtime_saving());
  }

  std::printf("\nCSI-error sensitivity (SNR 25 dB): residual inter-stream "
              "interference grows with estimation error\n");
  std::printf("%12s %12s\n", "CSI error", "mean BER");
  for (const double err : {0.0, 0.01, 0.05, 0.1, 0.2}) {
    MuMimoConfig cfg;
    cfg.snr_db = 25.0;
    cfg.csi_error = err;
    cfg.seed = 7;
    const MuMimoResult r = simulate_mumimo(cfg);
    std::printf("%12.2f %12.2e\n", err, r.mean_ber);
  }

  std::printf("\nAirtime structure: Carpool shares one legacy preamble + "
              "A-HDR across stream groups (Fig. 18(b)).\n");
  bench::write_metrics("sec8_mumimo");
  return 0;
}
