#pragma once

// Shared helpers for the reproduction benches. Every bench regenerates one
// table/figure of the paper and prints rows in the paper's units, with a
// header stating what the paper reported so the shapes can be compared at
// a glance (absolute values differ: our substrate is a simulator, not the
// authors' USRP testbed).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "carpool/transceiver.hpp"
#include "channel/fading.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "dsp/kernels.hpp"
#include "obs/registry.hpp"
#include "obs/stats_writer.hpp"
#include "phy/frame.hpp"
#include "sim/testbed.hpp"

namespace carpool::bench {

/// Directory BENCH_* artifacts land in: $CARPOOL_BENCH_DIR (created on
/// demand) when set, else the CWD — so CI artifact collection and
/// bench_report ingestion don't depend on where the bench was launched.
inline std::string bench_output_dir() {
  const char* dir = std::getenv("CARPOOL_BENCH_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr,
                 "warning: cannot create CARPOOL_BENCH_DIR %s (%s); "
                 "falling back to CWD\n",
                 dir, ec.message().c_str());
    return {};
  }
  return std::string(dir);
}

/// Unified machine-readable output: every bench binary ends by dumping the
/// global obs::Registry — its own gauges plus the counters and per-stage
/// latency histograms (Viterbi, FFT/OFDM, equalizer, A-HDR) accumulated by
/// the instrumented hot paths — as BENCH_<name>.json (schema_version 2
/// with per-metric metadata, see docs/OBSERVABILITY.md) plus a columnar
/// BENCH_<name>.csv (obs::StatsWriter). The printed tables stay the
/// human-readable view; the JSON is what tooling and perf regressions
/// diff. Both land in $CARPOOL_BENCH_DIR when set, else the CWD.
inline void write_metrics(const std::string& name) {
  const std::string dir = bench_output_dir();
  const std::string base =
      dir.empty() ? "BENCH_" + name : dir + "/BENCH_" + name;
  const std::string path = base + ".json";
  if (obs::Registry::global().write_json(path, name)) {
    std::printf("\nmetrics: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  }
  const std::string csv_path = base + ".csv";
  if (obs::StatsWriter::write_csv(csv_path, obs::Registry::global())) {
    std::printf("metrics csv: %s\n", csv_path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", csv_path.c_str());
  }
}

/// Record a bench result in the registry so it lands in the JSON export.
/// Resolves Registry::current(), not global(), so a gauge set inside a
/// carpool::par shard job stays in the shard's registry and reaches the
/// global one via the deterministic merge.
inline void gauge(const std::string& name, double value) {
  obs::Registry::current().set_gauge(name, value);
}

/// Strict --kernel flag handling shared by the bench CLIs (the
/// resolve_threads flag-hardening rule): an unknown backend name or a
/// tier this CPU cannot run is a usage error (exit 2), never a silent
/// fallback. On success the selection applies process-wide.
inline void apply_kernel_flag(const char* prog, const char* text) {
  switch (dsp::select_kernel(text == nullptr ? "" : text)) {
    case dsp::KernelSelect::kOk:
      return;
    case dsp::KernelSelect::kUnavailable:
      std::fprintf(stderr, "%s: --kernel %s is not supported on this CPU (%s)\n",
                   prog, text, dsp::kernel_info().c_str());
      std::exit(2);
    case dsp::KernelSelect::kUnknown:
      break;
  }
  std::fprintf(stderr,
               "%s: --kernel wants auto|scalar|simd|sse2|avx2|avx512, got "
               "\"%s\"\n",
               prog, text == nullptr ? "" : text);
  std::exit(2);
}

inline void banner(const char* figure, const char* what,
                   const char* paper_says) {
  std::printf(
      "\n================================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("Paper: %s\n", paper_says);
  std::printf(
      "================================================================\n");
}

/// printf-style formatting into a string, for sharded benches that
/// compute table rows in parallel and print them in job-index order.
template <class... Args>
[[nodiscard]] inline std::string rowf(const char* fmt, Args... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return std::string(buf);
}

inline Bytes random_psdu(std::size_t n, Rng& rng) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return out;
}

/// The paper's TX power sweep (USRP power magnitude units).
inline const std::vector<double>& power_sweep() {
  static const std::vector<double> kPowers{0.0125, 0.025, 0.05, 0.1, 0.2};
  return kPowers;
}

/// Raw (pre-FEC) BER accumulator, per symbol position and overall.
struct RawBer {
  std::vector<std::size_t> errors_per_symbol;
  std::vector<std::size_t> bits_per_symbol;
  std::size_t total_errors = 0;
  std::size_t total_bits = 0;

  void add(const DecodedSubframe& sub, const Bits& reference,
           std::size_t n_cbps) {
    if (errors_per_symbol.size() < sub.raw_symbol_bits.size()) {
      errors_per_symbol.resize(sub.raw_symbol_bits.size(), 0);
      bits_per_symbol.resize(sub.raw_symbol_bits.size(), 0);
    }
    for (std::size_t s = 0; s < sub.raw_symbol_bits.size(); ++s) {
      const std::span<const std::uint8_t> want(reference.data() + s * n_cbps,
                                               n_cbps);
      const std::size_t errors =
          hamming_distance(sub.raw_symbol_bits[s], want);
      errors_per_symbol[s] += errors;
      bits_per_symbol[s] += n_cbps;
      total_errors += errors;
      total_bits += n_cbps;
    }
  }

  [[nodiscard]] double ber() const {
    return total_bits == 0 ? 0.0
                           : static_cast<double>(total_errors) /
                                 static_cast<double>(total_bits);
  }

  [[nodiscard]] double ber_at(std::size_t symbol) const {
    return symbol < bits_per_symbol.size() && bits_per_symbol[symbol] > 0
               ? static_cast<double>(errors_per_symbol[symbol]) /
                     static_cast<double>(bits_per_symbol[symbol])
               : 0.0;
  }
};

/// Single-receiver Carpool link experiment: one frame layout transmitted
/// through `frames` independent fading realisations.
struct LinkRun {
  RawBer raw;
  RatioCounter fcs_fail;
  std::size_t side_bit_errors = 0;   ///< 2-bit symbols compared as a unit
  std::size_t side_bits_total = 0;
};

inline LinkRun run_link(const std::vector<SubframeSpec>& subframes,
                        const CarpoolFrameConfig& txcfg,
                        const CarpoolRxConfig& rxcfg_in,
                        const FadingConfig& base_channel, std::size_t frames,
                        std::uint64_t seed_base) {
  const CarpoolTransmitter tx(txcfg);
  const CxVec wave = tx.build(subframes);
  const Mcs& m = mcs(subframes[0].mcs_index);
  const Bits reference =
      code_data_bits(build_data_bits(subframes[0].psdu, m), m);
  const std::vector<unsigned> tx_side =
      expected_side_bits(subframes[0], txcfg.crc_scheme);
  const std::size_t bits_per_sym = side_bits_per_symbol(txcfg.crc_scheme.mod);

  LinkRun out;
  CarpoolRxConfig rxcfg = rxcfg_in;
  rxcfg.self = subframes[0].receiver;
  const CarpoolReceiver rx(rxcfg);

  for (std::size_t f = 0; f < frames; ++f) {
    FadingConfig ch = base_channel;
    ch.seed = seed_base * 10007 + f;
    FadingChannel channel(ch);
    const CxVec rx_wave = channel.transmit(wave);
    const CarpoolRxResult result = rx.receive(rx_wave);
    for (const DecodedSubframe& sub : result.subframes) {
      if (sub.index != 0) continue;
      out.raw.add(sub, reference, m.n_cbps);
      out.fcs_fail.add(!sub.fcs_ok);
      if (rxcfg.side_channel_present && txcfg.inject_side_channel) {
        const std::size_t n = std::min(sub.side_bits.size(), tx_side.size());
        for (std::size_t s = 0; s < n; ++s) {
          const unsigned diff = sub.side_bits[s] ^ tx_side[s];
          for (std::size_t b = 0; b < bits_per_sym; ++b) {
            if ((diff >> b) & 1u) ++out.side_bit_errors;
            ++out.side_bits_total;
          }
        }
      }
    }
  }
  return out;
}

/// MCS index whose payload modulation matches `mod` (highest coding rate,
/// as the paper's BER figures use uncoded symbol comparisons anyway).
inline std::size_t mcs_for_modulation(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk:
      return 0;
    case Modulation::kQpsk:
      return 2;
    case Modulation::kQam16:
      return 4;
    case Modulation::kQam64:
      return 7;
  }
  return 0;
}

}  // namespace carpool::bench
