// Sec. 5.2 — CRC granularity / modulation trade-off study: six schemes
// ({1,2}-bit phase offset x {1,2,3}-symbol CRC groups) measured over
// multiple receiver locations and TX powers.
//
// Paper: "the scheme with one symbol as a group and two-bit phase offset
// side channel achieves best performance in most of the cases" — finer
// granularity gives more data pilots, and CRC-2 per symbol is reliable
// enough.

#include <cstdio>

#include "bench_util.hpp"

using namespace carpool;

int main() {
  bench::banner("Sec. 5.2", "symbol-CRC granularity x modulation trade-off",
                "two-bit / 1-symbol (CRC-2 per symbol) wins in most cases");

  Rng rng(3);
  std::vector<SubframeSpec> subframes{SubframeSpec{
      MacAddress::for_station(1),
      append_fcs(bench::random_psdu(4000, rng)), 7}};  // QAM64

  const sim::TestbedLayout layout;
  std::printf("%10s %10s | %14s %14s\n", "mod", "group", "post-FEC loss",
              "raw BER");

  struct SchemeDef {
    PhaseMod mod;
    std::size_t group;
  };
  const SchemeDef schemes[] = {
      {PhaseMod::kOneBit, 1}, {PhaseMod::kOneBit, 2}, {PhaseMod::kOneBit, 3},
      {PhaseMod::kTwoBit, 1}, {PhaseMod::kTwoBit, 2}, {PhaseMod::kTwoBit, 3},
  };

  double best_loss = 1.0;
  double best_raw = 1.0;
  const SchemeDef* best = nullptr;
  for (const SchemeDef& s : schemes) {
    CarpoolFrameConfig txcfg;
    txcfg.crc_scheme = SymbolCrcScheme{s.mod, s.group};
    CarpoolRxConfig rxcfg;
    rxcfg.crc_scheme = txcfg.crc_scheme;
    rxcfg.use_rte = true;

    RatioCounter loss;
    std::size_t errors = 0, bits = 0;
    for (const std::size_t loc : {3u, 10u, 18u, 26u}) {
      for (const double power : {0.1, 0.15, 0.2}) {
        FadingConfig channel = layout.channel_config(loc, power, 17);
        channel.rician_los = true;
        channel.rician_k_db = 8.0;
        channel.coherence_time = 4.5e-3;
        const bench::LinkRun run = bench::run_link(subframes, txcfg, rxcfg,
                                                   channel, 6, loc * 31 + 7);
        loss.add(run.fcs_fail.hits(), run.fcs_fail.trials());
        errors += run.raw.total_errors;
        bits += run.raw.total_bits;
      }
    }
    const double raw = bits ? static_cast<double>(errors) / bits : 0.0;
    std::printf("%10s %10zu | %13.1f%% %14.2e\n",
                s.mod == PhaseMod::kOneBit ? "1-bit" : "2-bit", s.group,
                100.0 * loss.ratio(), raw);
    // Rank by post-FEC loss, breaking ties with raw BER.
    if (loss.ratio() < best_loss ||
        (loss.ratio() == best_loss && raw < best_raw)) {
      best_loss = loss.ratio();
      best_raw = raw;
      best = &s;
    }
  }
  if (best != nullptr) {
    std::printf("\nbest scheme: %s / %zu-symbol group (paper picks 2-bit / "
                "1-symbol)\n",
                best->mod == PhaseMod::kOneBit ? "1-bit" : "2-bit",
                best->group);
  }
  bench::write_metrics("sec5_granularity");
  return 0;
}
