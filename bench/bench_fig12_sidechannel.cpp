// Fig. 12 — Reliability of the phase offset side channel: BER of the
// 1-bit / 2-bit phase-offset bits vs BPSK / QPSK data subcarriers across
// the TX power sweep.
//
// Paper: 1-bit phase offset beats BPSK; 2-bit phase offset is much lower
// than QPSK in most cases, because each phase offset is demodulated from
// four pilot subcarriers while data bits ride single subcarriers.

#include <cstdio>

#include "bench_util.hpp"

using namespace carpool;

namespace {

struct BerPair {
  double data_ber = 0.0;
  double side_ber = 0.0;
};

BerPair measure(PhaseMod side_mod, Modulation data_mod,
                double power_magnitude) {
  Rng rng(5);
  const std::size_t mcs_idx = bench::mcs_for_modulation(data_mod);
  std::vector<SubframeSpec> subframes{SubframeSpec{
      MacAddress::for_station(1),
      append_fcs(bench::random_psdu(1000, rng)), mcs_idx}};

  CarpoolFrameConfig txcfg;
  txcfg.crc_scheme = SymbolCrcScheme{side_mod, 1};
  CarpoolRxConfig rxcfg;
  rxcfg.crc_scheme = txcfg.crc_scheme;
  rxcfg.use_rte = false;

  const sim::TestbedLayout layout;
  std::size_t data_err = 0, data_bits = 0, side_err = 0, side_bits = 0;
  for (const std::size_t loc : {1u, 7u, 13u, 19u, 25u}) {
    FadingConfig channel = layout.channel_config(loc, power_magnitude, 9);
    const bench::LinkRun run = bench::run_link(subframes, txcfg, rxcfg,
                                               channel, 6, loc + 500);
    data_err += run.raw.total_errors;
    data_bits += run.raw.total_bits;
    side_err += run.side_bit_errors;
    side_bits += run.side_bits_total;
  }
  BerPair out;
  out.data_ber = data_bits ? static_cast<double>(data_err) / data_bits : 0.0;
  out.side_ber = side_bits ? static_cast<double>(side_err) / side_bits : 0.0;
  return out;
}

}  // namespace

int main() {
  bench::banner("Fig. 12", "BER of phase offset side channel vs data channel",
                "1-bit side channel < BPSK data BER; 2-bit side channel "
                "well below QPSK data BER");

  std::printf("%10s %12s %12s %12s\n", "power", "data BER", "side BER",
              "side/data");
  std::printf("--- 1-bit phase offset vs BPSK ---\n");
  for (const double power : bench::power_sweep()) {
    const BerPair p = measure(PhaseMod::kOneBit, Modulation::kBpsk, power);
    std::printf("%10.4f %12.2e %12.2e %12.3f\n", power, p.data_ber,
                p.side_ber, p.data_ber > 0 ? p.side_ber / p.data_ber : 0.0);
  }
  std::printf("--- 2-bit phase offset vs QPSK ---\n");
  for (const double power : bench::power_sweep()) {
    const BerPair p = measure(PhaseMod::kTwoBit, Modulation::kQpsk, power);
    std::printf("%10.4f %12.2e %12.2e %12.3f\n", power, p.data_ber,
                p.side_ber, p.data_ber > 0 ? p.side_ber / p.data_ber : 0.0);
  }
  bench::write_metrics("fig12_sidechannel");
  return 0;
}
