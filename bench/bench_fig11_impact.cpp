// Fig. 11 — Impact of the phase offset side channel on data decoding:
// BER of the standard PHY vs the PHY with phase-offset injection, for
// BPSK/QPSK/16-QAM/64-QAM across the paper's TX power sweep.
//
// Paper: BER differences between the two PHYs range from 1.02% to 5.49%
// (relative) — i.e. the side channel is essentially free.

#include <cstdio>

#include "bench_util.hpp"

using namespace carpool;

namespace {

double link_ber(Modulation mod, double power_magnitude, bool inject,
                std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t mcs_idx = bench::mcs_for_modulation(mod);
  const std::size_t bytes = mod == Modulation::kBpsk ? 400 : 1000;
  std::vector<SubframeSpec> subframes{SubframeSpec{
      MacAddress::for_station(1),
      append_fcs(bench::random_psdu(bytes, rng)), mcs_idx}};

  CarpoolFrameConfig txcfg;
  txcfg.inject_side_channel = inject;
  CarpoolRxConfig rxcfg;
  rxcfg.side_channel_present = inject;
  rxcfg.use_rte = false;  // isolate the injection effect

  const sim::TestbedLayout layout;
  bench::RawBer total;
  // Controlled comparison (Sec. 7.1.1): identical static layouts -> same
  // channel seeds for both PHYs at each location.
  for (const std::size_t loc : {0u, 5u, 11u, 17u, 23u}) {
    FadingConfig channel = layout.channel_config(loc, power_magnitude, 7);
    channel.coherence_time = 20e-3;  // controlled, near-static environment
    const bench::LinkRun run = bench::run_link(subframes, txcfg, rxcfg,
                                               channel, 10, loc + 100);
    total.total_errors += run.raw.total_errors;
    total.total_bits += run.raw.total_bits;
  }
  return total.ber();
}

}  // namespace

int main() {
  bench::banner("Fig. 11", "BER of PHY with phase offset side channel vs "
                           "standard PHY",
                "curves for the two PHYs nearly coincide at every "
                "modulation and power (1.02%%-5.49%% relative difference)");

  std::printf("%8s %10s %14s %14s %10s\n", "mod", "power", "standard BER",
              "w/ side-ch BER", "rel diff");
  for (const Modulation mod : {Modulation::kBpsk, Modulation::kQpsk,
                               Modulation::kQam16, Modulation::kQam64}) {
    for (const double power : bench::power_sweep()) {
      const double std_ber = link_ber(mod, power, false, 1);
      const double inj_ber = link_ber(mod, power, true, 1);
      const double rel =
          std_ber > 0 ? (inj_ber - std_ber) / std_ber * 100.0 : 0.0;
      std::printf("%8s %10.4f %14.2e %14.2e %9.2f%%\n",
                  modulation_name(mod).data(), power, std_ber, inj_ber, rel);
    }
  }
  bench::write_metrics("fig11_impact");
  return 0;
}
