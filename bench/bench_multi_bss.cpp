// Multi-BSS scaling sweep: aggregate Carpool goodput vs AP count on the
// sim::Topology campus (docs/MULTI_AP.md). The paper deploys Carpool at
// one AP; this sweep asks the city-scale question — does adding APs (each
// running its own Carpool-aggregating BSS, 3-channel reuse, co-channel
// SINR penalties, one roaming walker stirring handovers) keep adding
// throughput? The expected *shape* follows the multi-packet-reception
// scaling literature (arXiv:1006.4408): aggregate throughput grows with
// the number of parallel receivers, so goodput must be non-decreasing in
// AP count. The check is informational — reported as a gauge, judged by
// CI as a trend, not a blocking gate.
//
// Each sweep point holds the per-AP load constant (4 STAs per AP) and
// runs a MultiBssSim campaign whose BSS shards fan across carpool::par
// (--threads N / CARPOOL_THREADS); results are bit-identical at any
// thread count, so the emitted gauges are fingerprint-stable.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "par/par.hpp"
#include "sim/multi_bss.hpp"
#include "sim/topology.hpp"

namespace carpool::bench {
namespace {

constexpr std::size_t kApSweep[] = {1, 2, 4, 8, 16};
constexpr std::size_t kStasPerAp = 4;
constexpr double kDuration = 0.5;  ///< simulated seconds per point

/// One walker crossing the campus corner to corner, so every multi-AP
/// point exercises roaming handovers. STA 1's home is AP 0; the path
/// ends at the far AP of the grid.
sim::MobilityPath make_walker(const sim::Topology& topo) {
  const sim::Point from = topo.ap_position(0);
  const sim::Point to = topo.ap_position(topo.ap_count() - 1);
  std::vector<sim::TimedPoint> wp;
  wp.push_back({0.0, {from.x + 1.0, from.y + 1.0}});
  wp.push_back({kDuration, {to.x + 1.0, to.y + 1.0}});
  return sim::MobilityPath(std::move(wp));
}

int run(int argc, char** argv) {
  int threads = static_cast<int>(par::resolve_threads());
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<int>(
          par::resolve_threads(std::strtoll(argv[++i], nullptr, 10)));
    } else if (std::strcmp(argv[i], "--kernel") == 0) {
      apply_kernel_flag(argv[0], i + 1 < argc ? argv[++i] : nullptr);
    }
  }
  banner("Multi-BSS", "aggregate goodput vs AP count",
         "not in the paper — city-scale extrapolation; MPR scaling shape "
         "per arXiv:1006.4408 (throughput grows with parallel receivers)");

  std::printf("\n%-6s %6s %14s %14s %10s %9s %7s\n", "APs", "STAs",
              "aggregate", "per-AP mean", "handovers", "domains", "idle");
  std::printf("%-6s %6s %14s %14s %10s %9s %7s\n", "", "", "(Mb/s)",
              "(Mb/s)", "", "", "");

  std::vector<double> aggregate_bps;
  for (const std::size_t aps : kApSweep) {
    sim::MultiBssConfig cfg;
    cfg.topology.ap_count = aps;
    // Scan fast enough that the walker roams at every multi-AP point of
    // this short sweep (default 0.25 s sees at most one scan in 0.5 s).
    cfg.topology.roam_interval = 0.05;
    cfg.num_stas = aps * kStasPerAp;
    cfg.duration = kDuration;
    cfg.seed = 2015;
    cfg.threads = threads;
    {
      // Walker path needs the AP grid geometry; build a throwaway
      // topology with the same spec/seed the campaign will use.
      const sim::Topology topo(cfg.topology, cfg.power_magnitude,
                               cfg.layout_seed);
      cfg.paths.resize(cfg.num_stas + 1);
      if (aps > 1) cfg.paths[1] = make_walker(topo);
    }

    sim::MultiBssSim sim(std::move(cfg));
    const sim::MultiBssResult res = sim.run();

    double per_ap_mean = 0.0;
    for (const double g : res.per_ap_goodput_bps) per_ap_mean += g;
    per_ap_mean /= static_cast<double>(res.ap_count);

    std::printf("%-6zu %6zu %14.2f %14.2f %10zu %9llu %7llu\n", aps,
                aps * kStasPerAp, res.aggregate_goodput_bps / 1e6,
                per_ap_mean / 1e6, res.handovers.size(),
                static_cast<unsigned long long>(res.domains_simulated),
                static_cast<unsigned long long>(res.domains_idle));

    const std::string suffix = "aps_" + std::to_string(aps);
    gauge("multi_bss.goodput_bps." + suffix, res.aggregate_goodput_bps);
    gauge("multi_bss.per_ap_goodput_bps." + suffix, per_ap_mean);
    gauge("multi_bss.handovers." + suffix,
          static_cast<double>(res.handovers.size()));
    aggregate_bps.push_back(res.aggregate_goodput_bps);
  }

  // MPR-style scaling trend: aggregate goodput non-decreasing in AP
  // count (small tolerance for co-channel interference at dense points).
  bool monotone = true;
  for (std::size_t i = 1; i < aggregate_bps.size(); ++i) {
    if (aggregate_bps[i] < aggregate_bps[i - 1] * 0.98) monotone = false;
  }
  gauge("multi_bss.scaling_monotone", monotone ? 1.0 : 0.0);
  std::printf("\nscaling monotone (MPR trend, informational): %s\n",
              monotone ? "yes" : "NO");

  write_metrics("multi_bss");
  return 0;
}

}  // namespace
}  // namespace carpool::bench

int main(int argc, char** argv) {
  return carpool::bench::run(argc, argv);
}
