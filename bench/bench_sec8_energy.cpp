// Sec. 8 — Energy consumption analysis with the LinkSys WPC55AG power
// model (TX 1.71 W, RX 1.66 W, idle 1.22 W).
//
// Paper: Bloom false positives cost at most 5.59% extra RX power; for
// >92% of clients 90% of energy is idle listening, so a Carpool node
// spends at most ~0.28% more energy than a standard node — while the
// 3.2x goodput gain shortens communication time.

#include <cstdio>

#include "common/stats.hpp"
#include "bench_util.hpp"
#include "mac/simulator.hpp"
#include "traffic/generators.hpp"

using namespace carpool;
using namespace carpool::mac;

namespace {

SimResult run_scheme(Scheme scheme, std::size_t stas) {
  SimConfig cfg;
  cfg.scheme = scheme;
  cfg.num_stas = stas;
  cfg.duration = 12.0;
  cfg.seed = 4242;
  cfg.default_snr_db = 26.0;
  Simulator sim(cfg);
  for (NodeId sta = 1; sta <= stas; ++sta) {
    for (auto& flow :
         traffic::make_voip_call(sta, traffic::VoipParams::near_peak())) {
      sim.add_flow(std::move(flow));
    }
  }
  return sim.run();
}

}  // namespace

int main() {
  std::printf("Sec. 8 — per-STA energy, Carpool vs 802.11 (VoIP, 24 STAs)\n");
  constexpr std::size_t kStas = 24;
  const SimResult carpool = run_scheme(Scheme::kCarpool, kStas);
  const SimResult dcf = run_scheme(Scheme::kDcf80211, kStas);

  RunningStats carpool_j, dcf_j, carpool_rx, dcf_rx, carpool_idle, dcf_idle;
  for (std::size_t sta = 1; sta <= kStas; ++sta) {
    carpool_j.add(carpool.node_energy[sta].joules);
    dcf_j.add(dcf.node_energy[sta].joules);
    carpool_rx.add(carpool.node_energy[sta].rx_seconds);
    dcf_rx.add(dcf.node_energy[sta].rx_seconds);
    carpool_idle.add(carpool.node_energy[sta].idle_seconds);
    dcf_idle.add(dcf.node_energy[sta].idle_seconds);
  }

  std::printf("%22s %12s %12s\n", "", "Carpool", "802.11");
  std::printf("%22s %12.3f %12.3f\n", "mean STA energy (J)",
              carpool_j.mean(), dcf_j.mean());
  std::printf("%22s %12.3f %12.3f\n", "mean STA RX time (s)",
              carpool_rx.mean(), dcf_rx.mean());
  std::printf("%22s %12.3f %12.3f\n", "mean STA idle time (s)",
              carpool_idle.mean(), dcf_idle.mean());
  std::printf("%22s %12.2f %12.2f\n", "goodput (Mb/s)",
              carpool.downlink_goodput_bps / 1e6,
              dcf.downlink_goodput_bps / 1e6);
  std::printf("%22s %12zu %12s\n", "false-positive decodes",
              static_cast<std::size_t>(carpool.false_positive_decodes),
              "n/a");

  const double extra =
      (carpool_j.mean() - dcf_j.mean()) / dcf_j.mean() * 100.0;
  std::printf("\nCarpool STA energy overhead vs 802.11: %+.2f%% "
              "(paper bound: +0.28%% from false positives; Carpool often "
              "nets a saving because idle time dominates and it delivers "
              "the same traffic in less airtime)\n", extra);

  // Idle-dominance check used by the paper's argument.
  std::printf("idle share of STA energy budget (Carpool): %.0f%%\n",
              100.0 * carpool_idle.mean() * 1.22 / carpool_j.mean());
  bench::write_metrics("sec8_energy");
  return 0;
}
