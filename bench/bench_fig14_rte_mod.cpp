// Fig. 14 — BER of real-time channel estimation vs standard estimation
// for each modulation at two TX powers (USRP magnitudes 0.05 and 0.2).
//
// Paper: at higher-order modulations (QAM16/QAM64) RTE achieves several
// times lower BER; at BPSK/QPSK the gains are marginal because low-order
// constellations tolerate the stale estimate.

#include <cstdio>

#include "bench_util.hpp"

using namespace carpool;

namespace {

double ber_for(Modulation mod, double power, bool rte) {
  Rng rng(77);
  const std::size_t mcs_idx = bench::mcs_for_modulation(mod);
  // Long 4 KB frames as in Fig. 13: low-order constellations tolerate the
  // accumulated drift (large decision distance), high-order ones do not —
  // which is exactly the paper's explanation for Fig. 14.
  std::vector<SubframeSpec> subframes{SubframeSpec{
      MacAddress::for_station(1),
      append_fcs(bench::random_psdu(4000, rng)), mcs_idx}};

  CarpoolFrameConfig txcfg;
  CarpoolRxConfig rxcfg;
  rxcfg.use_rte = rte;

  const sim::TestbedLayout layout;
  std::size_t errors = 0, bits = 0;
  for (const std::size_t loc : {2u, 9u, 16u, 22u, 28u}) {
    FadingConfig channel = layout.channel_config(loc, power, 13);
    channel.rician_los = true;
    channel.rician_k_db = 8.0;
    channel.coherence_time = 5e-3;
    const bench::LinkRun run = bench::run_link(subframes, txcfg, rxcfg,
                                               channel, 6, loc + 900);
    errors += run.raw.total_errors;
    bits += run.raw.total_bits;
  }
  return bits ? static_cast<double>(errors) / bits : 0.0;
}

}  // namespace

int main() {
  bench::banner("Fig. 14", "BER of RTE vs standard per modulation",
                "large RTE gains for QAM16/QAM64, marginal for BPSK/QPSK");

  for (const double power : {0.05, 0.2}) {
    std::printf("\n--- power magnitude = %.2f ---\n", power);
    std::printf("%8s %14s %14s %8s\n", "mod", "standard", "RTE", "gain");
    for (const Modulation mod : {Modulation::kBpsk, Modulation::kQpsk,
                                 Modulation::kQam16, Modulation::kQam64}) {
      const double std_ber = ber_for(mod, power, false);
      const double rte_ber = ber_for(mod, power, true);
      std::printf("%8s %14.2e %14.2e %7.1fx\n",
                  modulation_name(mod).data(), std_ber, rte_ber,
                  rte_ber > 0 ? std_ber / rte_ber : 0.0);
    }
  }
  bench::write_metrics("fig14_rte_mod");
  return 0;
}
