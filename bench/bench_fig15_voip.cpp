// Fig. 15 — Goodput and latency for VoIP traffic vs number of STAs, for
// Carpool / MU-Aggregation / A-MPDU / 802.11 / WiFox.
//
// Paper (65 Mbit/s PHY, 96 kbit/s VoIP, 10-30 STAs): Carpool's goodput
// keeps rising linearly while A-MPDU tapers from ~2 to ~1 Mbit/s and
// 802.11 collapses from 0.55 to 0.18 Mbit/s; Carpool's latency stays near
// zero while others grow towards ~1.4 s. MU-Aggregation trails A-MPDU
// because long multi-receiver frames are unreliable without RTE.
//
// Our MAC overhead per frame is smaller than the authors' testbed stack,
// which shifts the congestion knee from ~20 to ~28 STAs; we sweep to 58
// so every crossover is visible, including Carpool overtaking WiFox once
// WiFox hits its one-frame-per-TXOP capacity (see EXPERIMENTS.md).

#include <cstdio>

#include "bench_util.hpp"
#include "mac/simulator.hpp"
#include "traffic/generators.hpp"

using namespace carpool;
using namespace carpool::mac;

int main() {
  std::printf("Fig. 15 — VoIP goodput/latency vs number of STAs\n");
  const Scheme schemes[] = {Scheme::kCarpool, Scheme::kMuAggregation,
                            Scheme::kAmpdu, Scheme::kDcf80211,
                            Scheme::kWiFox};

  std::printf("%6s", "STAs");
  for (const Scheme s : schemes) {
    std::printf(" | %14s Mb/s,s", scheme_name(s).data());
  }
  std::printf("\n");

  for (std::size_t n = 10; n <= 58; n += 6) {
    std::printf("%6zu", n);
    for (const Scheme scheme : schemes) {
      SimConfig cfg;
      cfg.scheme = scheme;
      cfg.num_stas = n;
      cfg.duration = 12.0;
      cfg.seed = 2015;
      cfg.default_snr_db = 26.0;
      cfg.coherence_time = 3e-3;
      Simulator sim(cfg);
      for (NodeId sta = 1; sta <= n; ++sta) {
        for (auto& flow : traffic::make_voip_call(
                 sta, traffic::VoipParams::near_peak())) {
          sim.add_flow(std::move(flow));
        }
      }
      const SimResult r = sim.run();
      std::printf(" | %10.2f, %6.3f", r.downlink_goodput_bps / 1e6,
                  r.mean_delay_s);
    }
    std::printf("\n");
  }

  std::printf("\nShape checks (paper): Carpool rises linearly; 802.11 "
              "collapses past the knee; MU-Aggregation falls below A-MPDU "
              "once frames are long; Carpool delay stays near zero.\n");
  bench::write_metrics("fig15_voip");
  return 0;
}
