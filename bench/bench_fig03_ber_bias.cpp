// Fig. 3 — BER bias in a long frame: per-symbol BER grows with symbol
// index when the channel estimate comes only from the preamble.
//
// The paper sends 1000 x 4 KB QAM64 frames over a 3 m USRP link in a
// 10 m x 10 m office (measured BER rises from ~4e-4 at the head to ~2e-3
// at the tail). We transmit the same frames through the fading-channel
// model with standard (preamble-only) channel estimation.

#include <cstdio>

#include "bench_util.hpp"

using namespace carpool;

int main() {
  bench::banner("Fig. 3", "BER bias vs symbol index (QAM64, 4 KB frames)",
                "per-symbol BER grows ~5x from frame head to symbol ~110");

  Rng rng(42);
  const std::size_t kMcs = 7;  // QAM64
  std::vector<SubframeSpec> subframes{SubframeSpec{
      MacAddress::for_station(1),
      append_fcs(bench::random_psdu(4000, rng)), kMcs}};

  CarpoolFrameConfig txcfg;   // side channel on (irrelevant to standard RX)
  CarpoolRxConfig rxcfg;
  rxcfg.use_rte = false;      // standard channel estimation
  FadingConfig channel;
  channel.snr_db = 33.0;          // 3 m line-of-sight office link
  channel.rician_los = true;
  channel.rician_k_db = 10.0;
  channel.coherence_time = 45e-3; // quasi-static indoor channel
  channel.cfo_hz = 6e3;

  const bench::LinkRun run =
      bench::run_link(subframes, txcfg, rxcfg, channel, 60, 1);

  std::printf("%12s %12s\n", "symbol idx", "BER");
  const std::size_t n = run.raw.errors_per_symbol.size();
  for (std::size_t s = 0; s < n; s += 10) {
    std::printf("%12zu %12.6f\n", s + 1, run.raw.ber_at(s));
  }
  const double head = (run.raw.ber_at(0) + run.raw.ber_at(1) +
                       run.raw.ber_at(2) + run.raw.ber_at(3)) / 4.0;
  double tail = 0.0;
  for (std::size_t s = n - 4; s < n; ++s) tail += run.raw.ber_at(s);
  tail /= 4.0;
  std::printf("\nhead BER %.6f -> tail BER %.6f (bias factor %.1fx; "
              "paper shows ~5x growth)\n",
              head, tail, head > 0 ? tail / head : 0.0);
  bench::write_metrics("fig03_ber_bias");
  return 0;
}
