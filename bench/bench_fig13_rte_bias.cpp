// Fig. 13 — BER bias of real-time channel estimation (RTE) vs standard
// preamble-only estimation, per symbol index, for QAM64 and QAM16.
//
// Paper: 4 KB frames in a 2 MHz channel (airtime of a 40 KB frame at
// 20 MHz); RTE keeps the tail BER low — QAM64 BER at symbol 100 is
// < 5e-3 with RTE vs > 1.5e-2 standard; overall BER reduced 65% (QAM64)
// and 27% (QAM16). We reproduce the airtime ratio by shrinking the
// coherence time by 10x instead of the sample rate.

#include <cstdio>

#include "bench_util.hpp"

using namespace carpool;

namespace {

void run_modulation(Modulation mod, std::size_t bytes) {
  Rng rng(21);
  const std::size_t mcs_idx = bench::mcs_for_modulation(mod);
  std::vector<SubframeSpec> subframes{SubframeSpec{
      MacAddress::for_station(1),
      append_fcs(bench::random_psdu(bytes, rng)), mcs_idx}};

  CarpoolFrameConfig txcfg;
  FadingConfig channel;
  channel.snr_db = 33.0;          // office LOS link, as Fig. 3
  channel.rician_los = true;
  channel.rician_k_db = 10.0;
  // 4 KB at 2 MHz has the airtime of 40 KB at 20 MHz: equivalently, the
  // channel varies 10x faster relative to the symbol clock than the
  // quasi-static 45 ms coherence used for Fig. 3.
  channel.coherence_time = 4.5e-3;
  channel.cfo_hz = 6e3;

  bench::LinkRun runs[2];
  for (const bool rte : {false, true}) {
    CarpoolRxConfig rxcfg;
    rxcfg.use_rte = rte;
    runs[rte ? 1 : 0] =
        bench::run_link(subframes, txcfg, rxcfg, channel, 40, 31);
  }

  std::printf("\n--- %s ---\n", modulation_name(mod).data());
  std::printf("%12s %14s %14s\n", "symbol idx", "standard", "RTE");
  const std::size_t n = runs[0].raw.errors_per_symbol.size();
  for (std::size_t s = 0; s < n; s += n / 10 + 1) {
    std::printf("%12zu %14.6f %14.6f\n", s + 1, runs[0].raw.ber_at(s),
                runs[1].raw.ber_at(s));
  }
  const double std_ber = runs[0].raw.ber();
  const double rte_ber = runs[1].raw.ber();
  std::printf("overall: standard %.2e, RTE %.2e -> reduction %.0f%%\n",
              std_ber, rte_ber,
              std_ber > 0 ? (1.0 - rte_ber / std_ber) * 100.0 : 0.0);
  const std::string prefix =
      "fig13." + std::string(modulation_name(mod)) + '.';
  bench::gauge(prefix + "ber_standard", std_ber);
  bench::gauge(prefix + "ber_rte", rte_ber);
}

}  // namespace

int main() {
  bench::banner("Fig. 13", "BER bias: RTE vs standard channel estimation",
                "RTE flattens the BER-vs-symbol-index curve; overall BER "
                "reduced 65%% (QAM64) and 27%% (QAM16)");
  run_modulation(Modulation::kQam64, 4000);
  run_modulation(Modulation::kQam16, 4000);
  bench::write_metrics("fig13_rte_bias");
  return 0;
}
