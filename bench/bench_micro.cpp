// Microbenchmarks (google-benchmark) for the processing-latency discussion
// in Sec. 8: A-HDR generation/check is O(h) and takes microseconds; the
// side-channel encode is negligible next to data encoding; plus throughput
// numbers for the heavy PHY blocks.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "carpool/bloom.hpp"
#include "carpool/side_channel.hpp"
#include "carpool/transceiver.hpp"
#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "fec/interleaver.hpp"
#include "fec/scrambler.hpp"
#include "fec/viterbi.hpp"
#include "phy/frame.hpp"

namespace carpool {
namespace {

Bytes random_psdu(std::size_t n, Rng& rng) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return out;
}

void BM_Fft64(benchmark::State& state) {
  Rng rng(1);
  CxVec data(64);
  for (Cx& x : data) x = Cx{rng.gaussian(), rng.gaussian()};
  for (auto _ : state) {
    CxVec copy = data;
    fft_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_Fft64);

void BM_BloomInsert8(benchmark::State& state) {
  // Sec. 8: A-HDR generation is O(h) per receiver, "a few microseconds".
  for (auto _ : state) {
    AggregationBloomFilter filter(4);
    for (std::size_t i = 0; i < 8; ++i) {
      filter.insert(MacAddress::for_station(static_cast<std::uint32_t>(i)),
                    i);
    }
    benchmark::DoNotOptimize(&filter);
  }
}
BENCHMARK(BM_BloomInsert8);

void BM_BloomCheck(benchmark::State& state) {
  AggregationBloomFilter filter(4);
  for (std::size_t i = 0; i < 8; ++i) {
    filter.insert(MacAddress::for_station(static_cast<std::uint32_t>(i)), i);
  }
  const MacAddress probe = MacAddress::for_station(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.matched_subframes(probe));
  }
}
BENCHMARK(BM_BloomCheck);

void BM_SideChannelEncode(benchmark::State& state) {
  Rng rng(2);
  std::vector<Bits> blocks(64, Bits(288));
  for (auto& block : blocks) {
    for (auto& bit : block) {
      bit = static_cast<std::uint8_t>(rng.uniform_int(2));
    }
  }
  const SymbolCrcScheme scheme{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_side_channel(blocks, scheme));
  }
}
BENCHMARK(BM_SideChannelEncode);

void BM_ViterbiDecode(benchmark::State& state) {
  Rng rng(3);
  Bits data(static_cast<std::size_t>(state.range(0)));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(2));
  const Bits coded = ConvolutionalCode::encode_terminated(data,
                                                          CodeRate::kHalf);
  const SoftBits soft = bits_to_soft(coded);
  const ViterbiDecoder decoder;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        decoder.decode_punctured(soft, CodeRate::kHalf, data.size()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ViterbiDecode)->Arg(216)->Arg(1728);

void BM_Interleave(benchmark::State& state) {
  Rng rng(4);
  const Interleaver il(288, 6);
  Bits block(288);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.uniform_int(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(il.interleave(block));
  }
}
BENCHMARK(BM_Interleave);

void BM_CarpoolTxBuild(benchmark::State& state) {
  Rng rng(5);
  std::vector<SubframeSpec> subframes;
  for (std::size_t i = 0; i < 4; ++i) {
    subframes.push_back(SubframeSpec{
        MacAddress::for_station(static_cast<std::uint32_t>(i + 1)),
        append_fcs(random_psdu(500, rng)), 7});
  }
  const CarpoolTransmitter tx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tx.build(subframes));
  }
}
BENCHMARK(BM_CarpoolTxBuild);

void BM_CarpoolRxDecode(benchmark::State& state) {
  Rng rng(6);
  std::vector<SubframeSpec> subframes;
  for (std::size_t i = 0; i < 4; ++i) {
    subframes.push_back(SubframeSpec{
        MacAddress::for_station(static_cast<std::uint32_t>(i + 1)),
        append_fcs(random_psdu(500, rng)), 7});
  }
  const CarpoolTransmitter tx;
  const CxVec wave = tx.build(subframes);
  CarpoolRxConfig cfg;
  cfg.self = subframes[2].receiver;
  const CarpoolReceiver rx(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rx.receive(wave));
  }
}
BENCHMARK(BM_CarpoolRxDecode);

void BM_Scrambler(benchmark::State& state) {
  Rng rng(7);
  Bits data(12000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(2));
  for (auto _ : state) {
    Scrambler s(0x5D);
    benchmark::DoNotOptimize(s.process(data));
  }
}
BENCHMARK(BM_Scrambler);

}  // namespace
}  // namespace carpool

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  carpool::bench::write_metrics("micro");
  return 0;
}
