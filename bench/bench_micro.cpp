// Microbenchmarks (google-benchmark) for the processing-latency discussion
// in Sec. 8: A-HDR generation/check is O(h) and takes microseconds; the
// side-channel encode is negligible next to data encoding; plus throughput
// numbers for the heavy PHY blocks.
//
// The kernel-throughput section at the end times the dsp:: backends
// (docs/KERNELS.md) head to head and exports micro.*.symbols_per_sec
// gauges per backend plus micro.*.simd_speedup ratios; the ratios gate
// in CI via bench_diff, and this binary itself exits nonzero when the
// SIMD tier fails a conservative 2x floor on at least two of the three
// PHY kernels.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

#include "bench_util.hpp"

#include "carpool/bloom.hpp"
#include "carpool/side_channel.hpp"
#include "carpool/transceiver.hpp"
#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "dsp/kernels.hpp"
#include "fec/interleaver.hpp"
#include "fec/scrambler.hpp"
#include "fec/viterbi.hpp"
#include "phy/frame.hpp"

namespace carpool {
namespace {

Bytes random_psdu(std::size_t n, Rng& rng) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return out;
}

void BM_Fft64(benchmark::State& state) {
  Rng rng(1);
  CxVec data(64);
  for (Cx& x : data) x = Cx{rng.gaussian(), rng.gaussian()};
  for (auto _ : state) {
    CxVec copy = data;
    fft_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_Fft64);

void BM_BloomInsert8(benchmark::State& state) {
  // Sec. 8: A-HDR generation is O(h) per receiver, "a few microseconds".
  for (auto _ : state) {
    AggregationBloomFilter filter(4);
    for (std::size_t i = 0; i < 8; ++i) {
      filter.insert(MacAddress::for_station(static_cast<std::uint32_t>(i)),
                    i);
    }
    benchmark::DoNotOptimize(&filter);
  }
}
BENCHMARK(BM_BloomInsert8);

void BM_BloomCheck(benchmark::State& state) {
  AggregationBloomFilter filter(4);
  for (std::size_t i = 0; i < 8; ++i) {
    filter.insert(MacAddress::for_station(static_cast<std::uint32_t>(i)), i);
  }
  const MacAddress probe = MacAddress::for_station(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.matched_subframes(probe));
  }
}
BENCHMARK(BM_BloomCheck);

void BM_SideChannelEncode(benchmark::State& state) {
  Rng rng(2);
  std::vector<Bits> blocks(64, Bits(288));
  for (auto& block : blocks) {
    for (auto& bit : block) {
      bit = static_cast<std::uint8_t>(rng.uniform_int(2));
    }
  }
  const SymbolCrcScheme scheme{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_side_channel(blocks, scheme));
  }
}
BENCHMARK(BM_SideChannelEncode);

void BM_ViterbiDecode(benchmark::State& state) {
  Rng rng(3);
  Bits data(static_cast<std::size_t>(state.range(0)));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(2));
  const Bits coded = ConvolutionalCode::encode_terminated(data,
                                                          CodeRate::kHalf);
  const SoftBits soft = bits_to_soft(coded);
  const ViterbiDecoder decoder;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        decoder.decode_punctured(soft, CodeRate::kHalf, data.size()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ViterbiDecode)->Arg(216)->Arg(1728);

void BM_Interleave(benchmark::State& state) {
  Rng rng(4);
  const Interleaver il(288, 6);
  Bits block(288);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.uniform_int(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(il.interleave(block));
  }
}
BENCHMARK(BM_Interleave);

void BM_CarpoolTxBuild(benchmark::State& state) {
  Rng rng(5);
  std::vector<SubframeSpec> subframes;
  for (std::size_t i = 0; i < 4; ++i) {
    subframes.push_back(SubframeSpec{
        MacAddress::for_station(static_cast<std::uint32_t>(i + 1)),
        append_fcs(random_psdu(500, rng)), 7});
  }
  const CarpoolTransmitter tx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tx.build(subframes));
  }
}
BENCHMARK(BM_CarpoolTxBuild);

void BM_CarpoolRxDecode(benchmark::State& state) {
  Rng rng(6);
  std::vector<SubframeSpec> subframes;
  for (std::size_t i = 0; i < 4; ++i) {
    subframes.push_back(SubframeSpec{
        MacAddress::for_station(static_cast<std::uint32_t>(i + 1)),
        append_fcs(random_psdu(500, rng)), 7});
  }
  const CarpoolTransmitter tx;
  const CxVec wave = tx.build(subframes);
  CarpoolRxConfig cfg;
  cfg.self = subframes[2].receiver;
  const CarpoolReceiver rx(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rx.receive(wave));
  }
}
BENCHMARK(BM_CarpoolRxDecode);

void BM_Scrambler(benchmark::State& state) {
  Rng rng(7);
  Bits data(12000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(2));
  for (auto _ : state) {
    Scrambler s(0x5D);
    benchmark::DoNotOptimize(s.process(data));
  }
}
BENCHMARK(BM_Scrambler);

// ---------------------------------------------------------------------
// Kernel backend throughput: scalar reference vs the best SIMD tier.

/// Wall-clock rate of `op`, in items/sec, with `items` work items per
/// call. Adaptive batching: doubles the batch until one batch takes at
/// least ~50 ms, so the clock overhead is amortized identically for
/// fast (SIMD) and slow (scalar) backends.
template <typename Op>
double measure_rate(Op&& op, double items) {
  using Clock = std::chrono::steady_clock;
  op();  // warm caches and tables
  for (std::size_t batch = 64;; batch *= 2) {
    const Clock::time_point start = Clock::now();
    for (std::size_t i = 0; i < batch; ++i) op();
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    if (elapsed.count() >= 0.05) {
      return static_cast<double>(batch) * items / elapsed.count();
    }
  }
}

struct KernelRates {
  double fft64 = 0.0;     ///< 64-point transforms / sec
  double viterbi = 0.0;   ///< trellis steps / sec
  double equalize = 0.0;  ///< 48-subcarrier symbols / sec
  double ahdr = 0.0;      ///< keyed-hash finalizations / sec
};

KernelRates measure_backend(const dsp::KernelBackend& backend) {
  Rng rng(42);
  KernelRates out;

  // A realistic demodulation burst: 16 back-to-back OFDM symbols through
  // the batch transform (the receiver's per-subframe shape). Each op is
  // a forward + inverse round trip with a 1/n rescale: the values stay
  // bounded across millions of iterations without re-seeding the buffer
  // through a memcpy that would dilute the kernel time being measured.
  constexpr std::size_t kFftBatch = 16;
  CxVec fft_buf(64 * kFftBatch);
  for (Cx& x : fft_buf) x = Cx{rng.gaussian(), rng.gaussian()};
  out.fft64 = measure_rate(
      [&] {
        backend.fft_batch(fft_buf.data(), 64, kFftBatch, -1);
        backend.fft_batch(fft_buf.data(), 64, kFftBatch, +1);
        double* raw = reinterpret_cast<double*>(fft_buf.data());
        for (std::size_t i = 0; i < 2 * 64 * kFftBatch; ++i) {
          raw[i] *= 1.0 / 64.0;
        }
        benchmark::DoNotOptimize(fft_buf.data());
      },
      static_cast<double>(2 * kFftBatch));

  constexpr std::size_t kSteps = 432;
  std::vector<double> soft(2 * kSteps);
  for (double& s : soft) s = rng.gaussian();
  std::vector<std::uint64_t> sel(kSteps);
  std::vector<double> final_metric(dsp::kViterbiStates);
  out.viterbi = measure_rate(
      [&] {
        backend.viterbi_forward(soft.data(), kSteps, sel.data(),
                                final_metric.data());
        benchmark::DoNotOptimize(sel.data());
      },
      static_cast<double>(kSteps));

  constexpr std::size_t kBins = kNumDataSubcarriers;  // 48
  constexpr std::size_t kSymbols = 64;  // amortize the sub-us symbol cost
  CxVec bins(kBins), h(kBins), data(kBins);
  std::vector<double> gains(kBins);
  for (Cx& x : bins) x = Cx{rng.gaussian(), rng.gaussian()};
  for (Cx& x : h) x = Cx{rng.gaussian(), rng.gaussian()};
  const Cx derotate = cx_exp(-0.21);
  out.equalize = measure_rate(
      [&] {
        for (std::size_t s = 0; s < kSymbols; ++s) {
          backend.equalize(bins.data(), h.data(), kBins, derotate,
                           data.data(), gains.data());
        }
        benchmark::DoNotOptimize(data.data());
      },
      static_cast<double>(kSymbols));

  constexpr std::size_t kHashes = 48;
  std::vector<std::uint64_t> keys(kHashes), hashes(kHashes);
  for (std::size_t i = 0; i < kHashes; ++i) keys[i] = 0x12340000ULL + i;
  out.ahdr = measure_rate(
      [&] {
        backend.ahdr_mix(0x9a3bc1d204857efULL, keys.data(), kHashes,
                         hashes.data());
        benchmark::DoNotOptimize(hashes.data());
      },
      static_cast<double>(kHashes));
  return out;
}

/// Times scalar vs the best SIMD tier, exports the gauges, and enforces
/// the self-gate. Returns the process exit code.
int kernel_throughput_report() {
  bench::banner("KERNELS", "dsp backend throughput (docs/KERNELS.md)",
                "scalar reference vs runtime-dispatched SIMD tier");
  std::printf("%s\n\n", dsp::kernel_info().c_str());

  const KernelRates scalar = measure_backend(dsp::scalar_backend());
  bench::gauge("micro.fft64.symbols_per_sec.scalar", scalar.fft64);
  bench::gauge("micro.viterbi.symbols_per_sec.scalar", scalar.viterbi);
  bench::gauge("micro.equalize.symbols_per_sec.scalar", scalar.equalize);
  bench::gauge("micro.ahdr.symbols_per_sec.scalar", scalar.ahdr);

  const dsp::KernelBackend* simd = dsp::simd_backend();
  if (simd == nullptr) {
    std::printf("no SIMD tier on this CPU; scalar rates only\n");
    std::printf("  fft64    %12.0f symbols/s\n", scalar.fft64);
    std::printf("  viterbi  %12.0f steps/s\n", scalar.viterbi);
    std::printf("  equalize %12.0f symbols/s\n", scalar.equalize);
    std::printf("  ahdr     %12.0f hashes/s\n", scalar.ahdr);
    return 0;
  }

  const KernelRates best = measure_backend(*simd);
  bench::gauge("micro.fft64.symbols_per_sec.simd", best.fft64);
  bench::gauge("micro.viterbi.symbols_per_sec.simd", best.viterbi);
  bench::gauge("micro.equalize.symbols_per_sec.simd", best.equalize);
  bench::gauge("micro.ahdr.symbols_per_sec.simd", best.ahdr);

  struct Row {
    const char* name;
    double scalar_rate;
    double simd_rate;
    bool gated;  ///< counts toward the 2-of-3 PHY-kernel floor
  };
  const Row rows[] = {
      {"micro.fft64", scalar.fft64, best.fft64, true},
      {"micro.viterbi", scalar.viterbi, best.viterbi, true},
      {"micro.equalize", scalar.equalize, best.equalize, true},
      {"micro.ahdr", scalar.ahdr, best.ahdr, false},
  };
  std::printf("kernel          scalar (items/s)    %s (items/s)   speedup\n",
              simd->name);
  int fast_enough = 0;
  for (const Row& row : rows) {
    const double speedup =
        row.scalar_rate > 0.0 ? row.simd_rate / row.scalar_rate : 0.0;
    // Tier-qualified name: the ratio only gates in bench_diff against
    // baselines recorded for the same best tier; on a runner with a
    // different feature set the baseline metric reads "(gone)" and this
    // one "(new)" — informational, not a spurious regression.
    bench::gauge(std::string(row.name) + ".simd_speedup." + simd->name,
                 speedup);
    std::printf("%-14s %17.0f %17.0f %8.2fx\n", row.name, row.scalar_rate,
                row.simd_rate, speedup);
    if (row.gated && speedup >= 2.0) ++fast_enough;
  }
  if (fast_enough < 2) {
    std::fprintf(stderr,
                 "bench_micro: SIMD tier %s beat the scalar reference 2x on "
                 "only %d of 3 PHY kernels (want >= 2) — kernel dispatch is "
                 "not paying for itself\n",
                 simd->name, fast_enough);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace carpool

int main(int argc, char** argv) {
  // Peel off the carpool flags before google-benchmark sees the argv.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kernel") == 0) {
      carpool::bench::apply_kernel_flag("bench_micro",
                                        i + 1 < argc ? argv[++i] : nullptr);
    } else if (std::strcmp(argv[i], "--kernel-info") == 0) {
      std::printf("%s\n", carpool::dsp::kernel_info().c_str());
      return 0;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const int gate = carpool::kernel_throughput_report();
  carpool::bench::write_metrics("micro");
  return gate;
}
