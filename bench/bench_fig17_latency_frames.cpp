// Fig. 17 — Goodput under (a) different delivery-latency requirements and
// (b) different downlink frame sizes, at 30 STAs with the same SIGCOMM
// background traffic as Fig. 16.
//
// Paper: (a) Carpool achieves 1.9x-9.8x the goodput of A-MPDU for latency
// bounds of 10-200 ms, the gain shrinking as the bound loosens;
// (b) with a 10 ms bound and frame sizes 100-1500 B, Carpool is 2.8x-3.6x
// A-MPDU and 5x-6.4x 802.11.

#include <cstdio>

#include "bench_util.hpp"
#include "mac/simulator.hpp"
#include "traffic/generators.hpp"

using namespace carpool;
using namespace carpool::mac;

namespace {

SimResult run_case(Scheme scheme, double deadline, std::size_t frame_bytes,
                   double frame_interval) {
  constexpr std::size_t kStas = 30;        // downlink receivers (paper value)
  constexpr std::size_t kBackground = 25;  // busy uplink-only stations from
                                           // the SIGCOMM'08 trace replay
  SimConfig cfg;
  cfg.scheme = scheme;
  cfg.num_stas = kStas + kBackground;
  cfg.duration = 12.0;
  cfg.seed = 1717;
  cfg.default_snr_db = 26.0;
  cfg.coherence_time = 3e-3;
  cfg.delivery_deadline = deadline;
  cfg.aggregation.max_latency = deadline;
  Simulator sim(cfg);
  for (NodeId sta = 1; sta <= kStas; ++sta) {
    sim.add_flow(traffic::make_cbr_flow(sta, frame_bytes, frame_interval));
    for (auto& flow : traffic::make_sigcomm_background(sta)) {
      sim.add_flow(std::move(flow));
    }
  }
  for (NodeId sta = kStas + 1; sta <= kStas + kBackground; ++sta) {
    sim.add_flow(traffic::make_poisson_flow(sta, 0.008,
                                            traffic::TraceKind::kSigcomm,
                                            /*uplink=*/true));
  }
  return sim.run();
}

}  // namespace

int main() {
  std::printf("Fig. 17(a) — goodput vs latency requirement (120 B VoIP "
              "frames, 30 STAs + busy uplink)\n");
  std::printf("%12s %10s %10s %8s\n", "bound (ms)", "Carpool", "A-MPDU",
              "ratio");
  for (const double ms : {10.0, 50.0, 100.0, 150.0, 200.0}) {
    const SimResult carpool =
        run_case(Scheme::kCarpool, ms / 1e3, 120, 0.005);
    const SimResult ampdu = run_case(Scheme::kAmpdu, ms / 1e3, 120, 0.005);
    std::printf("%12.0f %10.2f %10.2f %7.1fx\n", ms,
                carpool.downlink_goodput_bps / 1e6,
                ampdu.downlink_goodput_bps / 1e6,
                ampdu.downlink_goodput_bps > 0
                    ? carpool.downlink_goodput_bps /
                          ampdu.downlink_goodput_bps
                    : 0.0);
  }
  std::printf("(paper: 1.9x at loose bounds up to 9.8x at tight bounds)\n");

  std::printf("\nFig. 17(b) — goodput vs frame size (10 ms latency bound, "
              "30 STAs + busy uplink)\n");
  std::printf("%12s %10s %10s %10s %10s %10s\n", "bytes", "Carpool",
              "A-MPDU", "802.11", "vs AMPDU", "vs 802.11");
  for (const std::size_t bytes : {100u, 200u, 400u, 800u, 1500u}) {
    // Keep per-STA offered bit rate constant as frame size grows.
    const double interval = static_cast<double>(bytes) * 8.0 / 192e3;
    const SimResult carpool =
        run_case(Scheme::kCarpool, 0.01, bytes, interval);
    const SimResult ampdu = run_case(Scheme::kAmpdu, 0.01, bytes, interval);
    const SimResult dcf = run_case(Scheme::kDcf80211, 0.01, bytes, interval);
    std::printf("%12zu %10.2f %10.2f %10.2f %9.1fx %9.1fx\n",
                static_cast<std::size_t>(bytes),
                carpool.downlink_goodput_bps / 1e6,
                ampdu.downlink_goodput_bps / 1e6,
                dcf.downlink_goodput_bps / 1e6,
                ampdu.downlink_goodput_bps > 0
                    ? carpool.downlink_goodput_bps /
                          ampdu.downlink_goodput_bps
                    : 0.0,
                dcf.downlink_goodput_bps > 0
                    ? carpool.downlink_goodput_bps /
                          dcf.downlink_goodput_bps
                    : 0.0);
  }
  std::printf("(paper: 2.8x-3.6x over A-MPDU, 5x-6.4x over 802.11)\n");
  bench::write_metrics("fig17_latency_frames");
  return 0;
}
