// Ablations of Carpool's design choices (beyond the paper's own figures):
//   A. Eq. (3) update weight alpha (paper: 0.5) — too small adapts slowly,
//      too large amplifies estimate noise.
//   B. The data-pilot EVM sanity gate — our addition that keeps CRC-2
//      false accepts from poisoning H~ at low SNR.
//   C. Bloom hash count h at N = 8 receivers (paper fixes h = 4).
//   D. Aggregation width (max receivers per Carpool frame) at the MAC.
//   E. Sequential-ACK overhead vs receiver count.

// Every parameter ladder fans its points across carpool::par workers
// (--threads N / CARPOOL_THREADS, docs/PARALLELISM.md); rows print in
// ladder order after the sharded run, so the output and the exported
// metrics are identical at any thread count.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "carpool/bloom.hpp"
#include "mac/rate_adaptation.hpp"
#include "mac/simulator.hpp"
#include "par/par.hpp"
#include "traffic/generators.hpp"

using namespace carpool;

namespace {

std::size_t g_threads = 1;

void ablate_rte_alpha() {
  bench::banner("Ablation A", "RTE update weight alpha (Eq. 3)",
                "paper uses alpha = 0.5");
  Rng rng(1);
  std::vector<SubframeSpec> subframes{SubframeSpec{
      MacAddress::for_station(1),
      append_fcs(bench::random_psdu(4000, rng)), 7}};
  FadingConfig channel;
  channel.snr_db = 33.0;
  channel.rician_los = true;
  channel.rician_k_db = 10.0;
  channel.coherence_time = 4.5e-3;
  channel.cfo_hz = 6e3;

  std::printf("%8s %14s %14s\n", "alpha", "raw BER", "FCS loss");
  const std::vector<double> alphas{0.0, 0.125, 0.25, 0.5, 0.75, 1.0};
  const auto rows = par::run_sharded(
      alphas.size(), g_threads, [&](const par::ShardInfo& info) {
        const double alpha = alphas[info.index];
        CarpoolFrameConfig txcfg;
        CarpoolRxConfig rxcfg;
        rxcfg.use_rte = alpha > 0.0;
        rxcfg.rte_alpha = alpha;
        const bench::LinkRun run =
            bench::run_link(subframes, txcfg, rxcfg, channel, 25, 3);
        return bench::rowf("%8.3f %14.2e %13.1f%%\n", alpha, run.raw.ber(),
                           100.0 * run.fcs_fail.ratio());
      });
  for (const std::string& r : rows) std::fputs(r.c_str(), stdout);
}

void ablate_evm_gate() {
  bench::banner("Ablation B", "data-pilot EVM sanity gate",
                "a precaution against CRC-2 false accepts; measured effect "
                "is small — in operational regimes few bad symbols pass, "
                "and in deep fades frames are lost regardless");
  Rng rng(2);
  std::vector<SubframeSpec> subframes{SubframeSpec{
      MacAddress::for_station(1),
      append_fcs(bench::random_psdu(4000, rng)), 7}};

  // Harsh NLOS regime: raw BER high enough that 25% of corrupted symbols
  // slip past CRC-2, which is exactly where the gate earns its keep.
  std::printf("%8s %10s | %14s %14s\n", "SNR", "gate", "raw BER",
              "FCS loss");
  std::vector<std::pair<double, double>> points;
  for (const double snr : {20.0, 26.0, 33.0}) {
    for (const double gate : {0.0, 0.2, 0.35}) {
      points.emplace_back(snr, gate);
    }
  }
  const auto rows = par::run_sharded(
      points.size(), g_threads, [&](const par::ShardInfo& info) {
        const auto [snr, gate] = points[info.index];
        FadingConfig channel;
        channel.snr_db = snr;
        channel.coherence_time = 3e-3;
        CarpoolFrameConfig txcfg;
        CarpoolRxConfig rxcfg;
        rxcfg.pilot_evm_gate = gate;
        const bench::LinkRun run =
            bench::run_link(subframes, txcfg, rxcfg, channel, 15, 5);
        return bench::rowf("%8.0f %10.2f | %14.2e %13.1f%%\n", snr, gate,
                           run.raw.ber(), 100.0 * run.fcs_fail.ratio());
      });
  for (const std::string& r : rows) std::fputs(r.c_str(), stdout);
}

void ablate_bloom_hashes() {
  bench::banner("Ablation C", "Bloom hash count h at N = 8 receivers",
                "optimum near h = (48/8) ln 2 ~ 4.2; the paper fixes 4");
  std::printf("%4s %12s %14s\n", "h", "theory", "empirical");
  const std::vector<std::size_t> hashes{1, 2, 3, 4, 5, 6, 8};
  const auto rows = par::run_sharded(
      hashes.size(), g_threads, [&](const par::ShardInfo& info) {
        const std::size_t h = hashes[info.index];
        // Per-point RNG stream (seeded by h) so the points are
        // independent jobs instead of sharing one sequential stream.
        Rng rng(3 + 1000 * h);
        RatioCounter fp;
        for (int trial = 0; trial < 20000; ++trial) {
          AggregationBloomFilter filter(h);
          for (std::size_t i = 0; i < 8; ++i) {
            filter.insert(MacAddress::for_station(static_cast<std::uint32_t>(
                              rng.uniform_int(1u << 24))),
                          i);
          }
          fp.add(filter.matches(
              MacAddress::for_station(
                  static_cast<std::uint32_t>((1u << 24) + trial)),
              rng.uniform_int(8)));
        }
        return bench::rowf("%4zu %12.5f %14.5f\n", h,
                           theoretical_fp_rate(8, h), fp.ratio());
      });
  for (const std::string& r : rows) std::fputs(r.c_str(), stdout);
}

void ablate_aggregation_width() {
  bench::banner("Ablation D", "aggregation width (max receivers per frame)",
                "goodput under contention grows with width and saturates");
  using namespace mac;
  // Latency-bounded VoIP with busy uplink (the Fig. 17 regime): serving
  // many stations per TXOP is what meets the deadline.
  std::printf("%6s %12s %10s %10s\n", "width", "goodput", "delay", "aggr");
  const std::vector<std::size_t> widths{1, 2, 4, 6, 8};
  const auto rows = par::run_sharded(
      widths.size(), g_threads, [&](const par::ShardInfo& info) {
        const std::size_t width = widths[info.index];
        SimConfig cfg;
        cfg.scheme = Scheme::kCarpool;
        cfg.num_stas = 42;
        cfg.duration = 10.0;
        cfg.seed = 4;
        cfg.aggregation.max_receivers = width;
        cfg.delivery_deadline = 0.02;
        Simulator sim(cfg);
        for (NodeId sta = 1; sta <= 30; ++sta) {
          for (auto& f : traffic::make_voip_call(
                   sta, traffic::VoipParams::near_peak())) {
            sim.add_flow(std::move(f));
          }
        }
        for (NodeId sta = 31; sta <= 42; ++sta) {
          sim.add_flow(traffic::make_poisson_flow(
              sta, 0.008, traffic::TraceKind::kSigcomm, /*uplink=*/true));
        }
        const SimResult r = sim.run();
        return bench::rowf("%6zu %10.2fMb %9.3fs %10.2f\n", width,
                           r.downlink_goodput_bps / 1e6, r.mean_delay_s,
                           r.avg_aggregated_receivers);
      });
  for (const std::string& r : rows) std::fputs(r.c_str(), stdout);
}

void ablate_sequential_ack() {
  bench::banner("Ablation E", "sequential ACK overhead vs receiver count",
                "Eq. (1): NAV grows by t_ACK + t_SIFS per receiver");
  const mac::MacParams p;
  std::printf("%6s %14s %14s %10s\n", "N", "ACK overhead", "1500B payload",
              "ACK share");
  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    const double acks = static_cast<double>(n) * (p.sifs + p.ack_duration());
    const double payload =
        p.payload_duration(8ull * 1500 * n) + p.plcp_header;
    std::printf("%6zu %12.1fus %12.1fus %9.1f%%\n", n, acks * 1e6,
                payload * 1e6, 100.0 * acks / (acks + payload));
  }
}

void ablate_rate_adaptation() {
  bench::banner("Ablation F", "per-subframe rate adaptation",
                "Carpool subframes may use different MCSs (Sec. 4.1); "
                "SNR-matched rates beat any fixed rate on mixed links");
  using namespace mac;
  // Half the stations near the AP (30 dB), half far (12 dB).
  std::vector<double> snrs;
  for (int i = 0; i < 24; ++i) snrs.push_back(i % 2 == 0 ? 30.0 : 12.0);

  auto run = [&](bool adapt, double fixed_rate) {
    SimConfig cfg;
    cfg.scheme = Scheme::kCarpool;
    cfg.num_stas = 24;
    cfg.duration = 8.0;
    cfg.seed = 6;
    cfg.sta_snr_db = snrs;
    cfg.link_policy.rate_adaptation = adapt;
    cfg.params.data_rate_bps = fixed_rate;
    Simulator sim(cfg);
    for (NodeId sta = 1; sta <= 24; ++sta) {
      for (auto& f :
           traffic::make_voip_call(sta, traffic::VoipParams::near_peak())) {
        sim.add_flow(std::move(f));
      }
    }
    return sim.run();
  };

  std::printf("%20s %12s %10s %12s\n", "policy", "goodput", "delay",
              "PHY losses");
  struct Policy {
    const char* name;
    bool adapt;
    double rate;
  };
  const std::vector<Policy> policies{{"fixed 65 Mb/s", false, 65e6},
                                     {"fixed 13 Mb/s", false, 13e6},
                                     {"SNR-adaptive", true, 65e6}};
  const auto results = par::run_sharded(
      policies.size(), g_threads, [&](const par::ShardInfo& info) {
        return run(policies[info.index].adapt, policies[info.index].rate);
      });
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const SimResult& r = results[i];
    std::printf("%20s %10.2fMb %9.3fs %12lu\n", policies[i].name,
                r.downlink_goodput_bps / 1e6, r.mean_delay_s,
                static_cast<unsigned long>(r.subframe_failures));
  }
}

void ablate_coexistence() {
  bench::banner("Ablation G", "legacy-station coexistence (Sec. 4.3)",
                "legacy stations get plain frames; Carpool's gain scales "
                "with the capable fraction and legacy users lose nothing");
  using namespace mac;
  std::printf("%14s %12s %10s %12s\n", "legacy STAs", "goodput", "delay",
              "aggregated");
  const std::vector<std::size_t> legacy_counts{0, 10, 20, 30};
  const auto rows = par::run_sharded(
      legacy_counts.size(), g_threads, [&](const par::ShardInfo& info) {
        const std::size_t legacy = legacy_counts[info.index];
        SimConfig cfg;
        cfg.scheme = Scheme::kCarpool;
        cfg.num_stas = 40;
        cfg.duration = 10.0;
        cfg.seed = 8;
        cfg.num_legacy_stas = legacy;
        Simulator sim(cfg);
        for (NodeId sta = 1; sta <= 40; ++sta) {
          for (auto& f : traffic::make_voip_call(
                   sta, traffic::VoipParams::near_peak())) {
            sim.add_flow(std::move(f));
          }
        }
        const SimResult r = sim.run();
        return bench::rowf("%11zu/40 %10.2fMb %9.3fs %12.2f\n", legacy,
                           r.downlink_goodput_bps / 1e6, r.mean_delay_s,
                           r.avg_aggregated_receivers);
      });
  for (const std::string& r : rows) std::fputs(r.c_str(), stdout);
}

void ablate_hidden_terminals() {
  bench::banner("Ablation H", "hidden terminals and RTS/CTS (Sec. 4.2)",
                "hidden pairs waste air on collisions; the multicast "
                "RTS/CTS of Fig. 7 shrinks the vulnerable window");
  using namespace mac;
  std::printf("%10s %8s %12s %12s %12s\n", "hidden", "RTS/CTS", "ul Mb/s",
              "collisions", "coll. air");
  std::vector<std::pair<double, bool>> points;
  for (const double fraction : {0.0, 0.3, 0.6}) {
    for (const bool rts : {false, true}) {
      points.emplace_back(fraction, rts);
    }
  }
  const auto rows = par::run_sharded(
      points.size(), g_threads, [&](const par::ShardInfo& info) {
        const auto [fraction, rts] = points[info.index];
        SimConfig cfg;
        cfg.scheme = Scheme::kDcf80211;
        cfg.num_stas = 20;
        cfg.duration = 8.0;
        cfg.seed = 12;
        cfg.hidden_pair_fraction = fraction;
        cfg.use_rts_cts = rts;
        Simulator sim(cfg);
        for (NodeId sta = 1; sta <= 20; ++sta) {
          sim.add_flow(traffic::make_poisson_flow(
              sta, 0.008, traffic::TraceKind::kSigcomm, /*uplink=*/true));
        }
        const SimResult r = sim.run();
        return bench::rowf("%10.1f %8s %12.2f %12lu %11.2fs\n", fraction,
                           rts ? "on" : "off", r.uplink_goodput_bps / 1e6,
                           static_cast<unsigned long>(r.collisions),
                           r.airtime_collision);
      });
  for (const std::string& r : rows) std::fputs(r.c_str(), stdout);
}

void ablate_link_policy_bursts() {
  bench::banner("Ablation I", "link policy under Gilbert-Elliott bursts",
                "static SNR thresholds cannot see correlated fades coming; "
                "ACK-feedback hysteresis sheds rate instead of suspending "
                "degraded links outright (docs/LINK_STATE.md)");
  using namespace mac;

  auto run = [&](bool feedback) {
    SimConfig cfg;
    cfg.scheme = Scheme::kCarpool;
    cfg.num_stas = 16;
    cfg.duration = 10.0;
    cfg.seed = 14;
    cfg.sta_snr_db.assign(16, 24.0);
    cfg.link_policy.rate_adaptation = true;
    cfg.link_policy.suspension = true;
    cfg.link_policy.feedback = feedback;
    GilbertElliottPhyModel::Params ge;
    ge.p_good_to_bad = 0.08;
    ge.p_bad_to_good = 0.25;
    ge.bad_snr_penalty_db = 14.0;  // 24 dB -> 10 dB: deep but not dead
    ge.period = 10e-3;
    ge.seed = 14;
    cfg.phy = std::make_shared<GilbertElliottPhyModel>(
        std::make_shared<AnalyticPhyModel>(), ge);
    Simulator sim(cfg);
    for (NodeId sta = 1; sta <= 16; ++sta) {
      sim.add_flow(traffic::make_cbr_flow(sta, 800, 0.01));
    }
    return sim.run();
  };

  const auto results = par::run_sharded(
      2, g_threads, [&](const par::ShardInfo& info) {
        return run(info.index == 1);  // 0: static threshold, 1: feedback
      });
  const SimResult& fixed = results[0];
  const SimResult& hysteresis = results[1];
  std::printf("%22s %12s %12s %10s %10s %8s\n", "policy", "goodput",
              "PHY losses", "suspends", "downs", "ups");
  auto row = [](const char* name, const SimResult& r) {
    std::printf("%22s %10.2fMb %12lu %10lu %10lu %8lu\n", name,
                r.downlink_goodput_bps / 1e6,
                static_cast<unsigned long>(r.subframe_failures),
                static_cast<unsigned long>(r.lq_suspensions),
                static_cast<unsigned long>(r.ls_rate_downgrades),
                static_cast<unsigned long>(r.ls_rate_upgrades));
  };
  row("static threshold", fixed);
  row("feedback hysteresis", hysteresis);
  bench::gauge("ablation.ge_static_goodput_bps", fixed.downlink_goodput_bps);
  bench::gauge("ablation.ge_feedback_goodput_bps",
               hysteresis.downlink_goodput_bps);
  if (hysteresis.downlink_goodput_bps < fixed.downlink_goodput_bps) {
    std::printf("  WARNING: hysteresis below static under bursts\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_threads = par::resolve_threads();  // CARPOOL_THREADS or serial
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_threads = par::resolve_threads(std::strtoll(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--kernel") == 0) {
      carpool::bench::apply_kernel_flag(argv[0],
                                        i + 1 < argc ? argv[++i] : nullptr);
    }
  }
  ablate_rte_alpha();
  ablate_evm_gate();
  ablate_bloom_hashes();
  ablate_aggregation_width();
  ablate_sequential_ack();
  ablate_rate_adaptation();
  ablate_coexistence();
  ablate_hidden_terminals();
  ablate_link_policy_bursts();
  bench::write_metrics("ablation");
  return 0;
}
