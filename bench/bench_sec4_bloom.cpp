// Sec. 4.1 — A-HDR coded-Bloom-filter analysis:
//   - false-positive ratio vs number of receivers (theory and empirical),
//     paper: 0.31% (N=4, optimal h) ... 5.59% (N=8, h=4)
//   - h = (48/N) ln 2 optimality
//   - 12.5% overhead vs listing 8 MAC addresses

#include <cstdio>

#include "bench_util.hpp"
#include "carpool/bloom.hpp"

using namespace carpool;

int main() {
  bench::banner("Sec. 4.1", "A-HDR Bloom filter false-positive analysis",
                "r_FP = (1-e^{-hN/48})^h, 0.31%-5.59%% for N=4..8; "
                "A-HDR is 12.5%% of an 8-address list");

  std::printf("%4s %6s %12s %12s %14s\n", "N", "h*", "r_FP(h*)",
              "r_FP(h=4)", "empirical(h=4)");
  Rng rng(1);
  for (std::size_t n = 2; n <= kMaxReceivers; ++n) {
    const std::size_t h_opt = optimal_hash_count(n);
    // Empirical measurement at h = 4 (implementation value).
    RatioCounter fp;
    for (int trial = 0; trial < 30000; ++trial) {
      AggregationBloomFilter filter(4);
      for (std::size_t i = 0; i < n; ++i) {
        filter.insert(MacAddress::for_station(static_cast<std::uint32_t>(
                          rng.uniform_int(1u << 24))),
                      i);
      }
      const MacAddress outsider = MacAddress::for_station(
          static_cast<std::uint32_t>((1u << 24) + trial));
      fp.add(filter.matches(outsider, rng.uniform_int(n)));
    }
    std::printf("%4zu %6zu %12.5f %12.5f %14.5f\n", n, h_opt,
                theoretical_fp_rate(n, h_opt), theoretical_fp_rate(n, 4),
                fp.ratio());
  }

  std::printf("\nOverhead comparison for 8 receivers:\n");
  std::printf("  explicit MAC addresses: %d bits\n", 48 * 8);
  std::printf("  A-HDR Bloom filter:     %zu bits (%.1f%%)\n", kAhdrBits,
              100.0 * static_cast<double>(kAhdrBits) / (48.0 * 8.0));

  // The strawman overhead example of Sec. 3: 8 x 1500 B at 600 Mbit/s with
  // addresses at 6.5 Mbit/s.
  const double addr_time = 48.0 * 8.0 / 6.5e6;
  const double payload_time = 1500.0 * 8.0 / 600e6;
  std::printf("\nSec. 3 example: address headers %.1f us vs payload %.1f us "
              "(paper: 59 us vs 20 us)\n",
              addr_time * 1e6, payload_time * 1e6);
  bench::write_metrics("sec4_bloom");
  return 0;
}
