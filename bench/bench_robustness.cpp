// Robustness sweep: impairment intensity vs Carpool goodput, plus a
// decode-status matrix for crafted faults. The point is the *shape*:
// goodput must degrade gracefully (monotone, no cliff) as interference
// intensity rises, and every engineered fault must map to its structured
// DecodeStatus instead of an exception or a silent empty result.

// The intensity rungs fan across carpool::par workers (--threads N /
// CARPOOL_THREADS, docs/PARALLELISM.md): each rung owns its impairment
// chain and a shard-local metric scope, and rows/gauges land in ladder
// order, so output and metrics are identical at any thread count. The
// crafted-fault decode-status matrix stays serial — it is microseconds
// of work and its point is exact sequential storytelling.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "impair/impair.hpp"
#include "par/par.hpp"

namespace carpool::bench {
namespace {

std::size_t g_threads = 1;

/// One rung of the interference ladder: Gilbert-Elliott burst power/duty
/// plus an impulsive-noise rate, all rising together.
struct Intensity {
  const char* label;
  double ge_power;       ///< bad-state interference power (unit signal)
  double p_good_to_bad;  ///< burst entry probability per symbol
  double impulse_prob;   ///< per-sample impulse probability
};

constexpr Intensity kLadder[] = {
    {"0 (clean)", 0.0, 0.0, 0.0},
    {"1", 0.05, 0.04, 2e-4},
    {"2", 0.15, 0.08, 5e-4},
    {"3", 0.40, 0.12, 1e-3},
    {"4", 1.00, 0.16, 2e-3},
    {"5", 2.50, 0.20, 4e-3},
};

std::vector<SubframeSpec> make_frame(Rng& rng) {
  std::vector<SubframeSpec> subframes;
  for (std::size_t i = 0; i < 3; ++i) {
    SubframeSpec spec;
    spec.receiver = MacAddress{{0x02, 0x00, 0x00, 0x00, 0x00,
                                static_cast<std::uint8_t>(0x10 + i)}};
    spec.psdu = append_fcs(random_psdu(200, rng));
    spec.mcs_index = 2;  // QPSK 1/2
    subframes.push_back(std::move(spec));
  }
  return subframes;
}

impair::ImpairmentChain make_chain(const Intensity& level,
                                   std::uint64_t seed) {
  impair::ImpairmentChain chain(seed);
  if (level.ge_power > 0.0) {
    chain.add(impair::make_gilbert_elliott(
        {.p_good_to_bad = level.p_good_to_bad,
         .p_bad_to_good = 0.3,
         .bad_noise_power = level.ge_power,
         .period_samples = kSymbolLen}));
  }
  if (level.impulse_prob > 0.0) {
    chain.add(impair::make_impulsive_noise(
        {.impulse_prob = level.impulse_prob, .impulse_power = 40.0}));
  }
  return chain;
}

int run(int argc, char** argv) {
  g_threads = par::resolve_threads();  // CARPOOL_THREADS or serial
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_threads = par::resolve_threads(std::strtoll(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--kernel") == 0) {
      apply_kernel_flag(argv[0], i + 1 < argc ? argv[++i] : nullptr);
    }
  }
  banner("Robustness", "goodput vs impairment intensity",
         "not in the paper — graceful-degradation acceptance sweep for the "
         "fault-injection harness (docs/ROBUSTNESS.md)");

  Rng payload_rng(7);
  const std::vector<SubframeSpec> subframes = make_frame(payload_rng);
  const CarpoolTransmitter tx({SymbolCrcScheme{}});
  const CxVec tx_wave = tx.build(subframes);

  std::vector<CarpoolReceiver> receivers;
  for (const SubframeSpec& spec : subframes) {
    CarpoolRxConfig rxcfg;
    rxcfg.self = spec.receiver;
    receivers.emplace_back(rxcfg);
  }

  constexpr std::size_t kFrames = 80;
  std::printf("\n%-10s %10s %10s %8s %8s %8s %8s\n", "intensity",
              "goodput", "frac", "fcs", "trunc", "sig", "sync");
  std::printf("%-10s %10s %10s %8s %8s %8s %8s\n", "", "(frac ok)",
              "delta", "fail", "", "corrupt", "lost");

  // Each rung is an independent job: its own impairment chain, shared
  // read-only tx_wave and (stateless) receivers, shard-local metrics.
  struct RungResult {
    double frac = 0.0;
    std::map<DecodeStatus, std::uint64_t> frame_status;
  };
  const auto rungs = par::run_sharded(
      std::size(kLadder), g_threads, [&](const par::ShardInfo& info) {
        const Intensity& level = kLadder[info.index];
        impair::ImpairmentChain chain = make_chain(level, 42);
        std::uint64_t delivered = 0;
        std::uint64_t offered = 0;  // every receiver is offered its subframe
        RungResult out;
        for (std::size_t f = 0; f < kFrames; ++f) {
          // Same channel realisation at every intensity (paired sweep):
          // only the injected impairment differs between rungs.
          FadingConfig ch;
          ch.snr_db = 25.0;
          ch.coherence_time = 5e-3;
          ch.seed = 10007 * f + 1;
          FadingChannel channel(ch);
          const CxVec rx_wave = chain.run(channel.transmit(tx_wave));
          for (std::size_t r = 0; r < receivers.size(); ++r) {
            const CarpoolRxResult result = receivers[r].receive(rx_wave);
            ++out.frame_status[result.status];
            offered += subframes[r].psdu.size();
            for (const DecodedSubframe& sub : result.subframes) {
              if (sub.index == r && sub.fcs_ok) {
                delivered += subframes[r].psdu.size();
              }
            }
          }
        }
        out.frac = offered == 0 ? 0.0
                                : static_cast<double>(delivered) /
                                      static_cast<double>(offered);
        return out;
      });

  std::vector<double> fracs;
  for (std::size_t li = 0; li < rungs.size(); ++li) {
    RungResult rung = rungs[li];
    fracs.push_back(rung.frac);
    std::printf("%-10s %10.3f %+10.3f %8llu %8llu %8llu %8llu\n",
                kLadder[li].label, rung.frac,
                li == 0 ? 0.0 : rung.frac - fracs[li - 1],
                static_cast<unsigned long long>(
                    rung.frame_status[DecodeStatus::kFcsFail]),
                static_cast<unsigned long long>(
                    rung.frame_status[DecodeStatus::kTruncated]),
                static_cast<unsigned long long>(
                    rung.frame_status[DecodeStatus::kSigCorrupt]),
                static_cast<unsigned long long>(
                    rung.frame_status[DecodeStatus::kSyncLost]));
    gauge("robustness.goodput_frac.intensity_" + std::to_string(li),
          rung.frac);
  }

  // Graceful degradation check: monotone non-increasing within a small
  // sampling tolerance, and no single-step cliff from "fine" to "dead".
  bool monotone = true;
  bool cliff = false;
  for (std::size_t i = 1; i < fracs.size(); ++i) {
    if (fracs[i] > fracs[i - 1] + 0.02) monotone = false;
    if (fracs[i - 1] > 0.8 && fracs[i] < 0.1) cliff = true;
  }
  gauge("robustness.monotone", monotone ? 1.0 : 0.0);
  gauge("robustness.no_cliff", cliff ? 0.0 : 1.0);
  std::printf("\ndegradation: %s, %s\n",
              monotone ? "monotone" : "NON-MONOTONE",
              cliff ? "CLIFF DETECTED" : "no cliff");

  // ---- decode-status matrix: one crafted fault per structured error ----
  std::printf("\n%-22s %-14s %-14s\n", "fault", "expected", "observed");
  struct Case {
    const char* fault;
    DecodeStatus expected;
    DecodeStatus observed;
  };
  std::vector<Case> cases;
  auto impaired = [&](impair::ImpairmentChain&& c) {
    return c.run(tx_wave);
  };
  {
    impair::ImpairmentChain c(1);
    c.add(impair::make_truncation({.keep_samples = kPreambleLen / 2}));
    cases.push_back({"truncated capture", DecodeStatus::kTruncated,
                     receivers[0].receive(impaired(std::move(c))).status});
  }
  {
    impair::ImpairmentChain c(1);
    c.add(impair::make_sample_erasure(
        {.start_sample = 0, .num_samples = kPreambleLen}));
    cases.push_back({"erased preamble", DecodeStatus::kSyncLost,
                     receivers[0].receive(impaired(std::move(c))).status});
  }
  {
    impair::ImpairmentChain c(1);
    c.add(impair::make_header_corruption(
        {.symbol_index = 2, .flip_bins = 20}));
    cases.push_back({"corrupted SIG", DecodeStatus::kSigCorrupt,
                     receivers[0].receive(impaired(std::move(c))).status});
  }
  {
    CarpoolRxConfig other;
    other.self = MacAddress{{0x02, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE}};
    const CarpoolReceiver rx(other);
    cases.push_back(
        {"not my frame", DecodeStatus::kAhdrMiss, rx.receive(tx_wave).status});
  }
  bool all_match = true;
  for (const Case& c : cases) {
    const bool match = c.expected == c.observed;
    all_match = all_match && match;
    std::printf("%-22s %-14s %-14s%s\n", c.fault,
                std::string(to_string(c.expected)).c_str(),
                std::string(to_string(c.observed)).c_str(),
                match ? "" : "  <-- MISMATCH");
  }
  gauge("robustness.status_matrix_ok", all_match ? 1.0 : 0.0);

  write_metrics("robustness");
  return monotone && !cliff && all_match ? 0 : 1;
}

}  // namespace
}  // namespace carpool::bench

int main(int argc, char** argv) { return carpool::bench::run(argc, argv); }
