// Fig. 1 — Traffic statistics in public WLANs, regenerated from the
// synthetic trace generator matched to the paper's measurements.

#include <cstdio>

#include "bench_util.hpp"
#include "traffic/frame_sizes.hpp"
#include "traffic/trace_synth.hpp"

using namespace carpool;
using namespace carpool::traffic;

int main() {
  bench::banner("Fig. 1(a)", "concurrent downlink requests (active STAs/AP)",
                "library trace fluctuates ~2-14 with mean 7.63 active STAs");
  TraceSynthConfig cfg;
  const SyntheticTrace trace = synthesize_trace(cfg);
  std::printf("%8s %12s\n", "t (s)", "active STAs");
  for (std::size_t t = 0; t < trace.active_stas_per_second.size(); t += 20) {
    std::printf("%8zu %12zu\n", t, trace.active_stas_per_second[t]);
  }
  std::printf("mean active STAs per AP: %.2f (paper: 7.63)\n",
              trace.mean_active_stas);
  std::printf("total STAs across %zu APs: %zu (paper: ~164)\n", cfg.num_aps,
              trace.total_stas);

  bench::banner("Fig. 1(b)", "frame size CDF",
                ">50%% of SIGCOMM and >90%% of library downlink frames "
                "are smaller than 300 B");
  std::printf("%10s %10s %10s\n", "bytes", "SIGCOMM", "Library");
  const FrameSizeDistribution sigcomm(TraceKind::kSigcomm);
  const FrameSizeDistribution library(TraceKind::kLibrary);
  for (const std::size_t b :
       {60u, 100u, 200u, 300u, 500u, 800u, 1200u, 1500u}) {
    std::printf("%10zu %10.3f %10.3f\n", static_cast<std::size_t>(b),
                sigcomm.cdf(b), library.cdf(b));
  }

  bench::banner("Fig. 1(c)", "downlink traffic volume ratio",
                "SIGCOMM'04 80%%, SIGCOMM'08 83.4%%, Library 89.2%%");
  struct Row {
    const char* name;
    double target;
  };
  for (const Row row : {Row{"SIGCOMM'04", 0.800}, Row{"SIGCOMM'08", 0.834},
                        Row{"Library", 0.892}}) {
    TraceSynthConfig c;
    c.downlink_ratio = row.target;
    c.seed = static_cast<std::uint64_t>(row.target * 1e4);
    const SyntheticTrace t = synthesize_trace(c);
    std::printf("%12s: downlink ratio %.3f (paper: %.3f)\n", row.name,
                t.downlink_ratio(), row.target);
  }
  bench::write_metrics("fig01_traffic");
  return 0;
}
