// Fig. 16 — Goodput and latency with SIGCOMM'08 UDP/TCP uplink background
// traffic (mean inter-arrival 47 ms TCP / 88 ms UDP per STA, trace-matched
// frame sizes) in addition to VoIP.
//
// Paper: background traffic drags every baseline down; from 20 to 30 STAs
// Carpool achieves 1.12x-3.2x the goodput of A-MPDU, Carpool's delay stays
// below 0.2 s while A-MPDU and 802.11 suffer 0.8 s and 1.5 s.

#include <cstdio>

#include "bench_util.hpp"
#include "mac/simulator.hpp"
#include "traffic/generators.hpp"

using namespace carpool;
using namespace carpool::mac;

int main() {
  std::printf("Fig. 16 — goodput/latency with UDP/TCP background traffic\n");
  const Scheme schemes[] = {Scheme::kCarpool, Scheme::kMuAggregation,
                            Scheme::kAmpdu, Scheme::kDcf80211,
                            Scheme::kWiFox};
  std::printf("%6s", "STAs");
  for (const Scheme s : schemes) {
    std::printf(" | %14s Mb/s,s", scheme_name(s).data());
  }
  std::printf("\n");

  double carpool_30 = 0.0, ampdu_30 = 0.0;
  double carpool_20 = 0.0, ampdu_20 = 0.0;
  for (std::size_t n = 10; n <= 34; n += 4) {
    std::printf("%6zu", n);
    for (const Scheme scheme : schemes) {
      // The SIGCOMM'08 trace also contains busy uplink-only stations;
      // they contend without receiving downlink traffic.
      const std::size_t background = 10;
      SimConfig cfg;
      cfg.scheme = scheme;
      cfg.num_stas = n + background;
      cfg.duration = 12.0;
      cfg.seed = 808;
      cfg.default_snr_db = 26.0;
      cfg.coherence_time = 3e-3;
      Simulator sim(cfg);
      for (NodeId sta = 1; sta <= n; ++sta) {
        for (auto& flow : traffic::make_voip_call(
                 sta, traffic::VoipParams::near_peak())) {
          sim.add_flow(std::move(flow));
        }
        for (auto& flow : traffic::make_sigcomm_background(sta)) {
          sim.add_flow(std::move(flow));
        }
      }
      for (NodeId sta = static_cast<NodeId>(n + 1);
           sta <= n + background; ++sta) {
        sim.add_flow(traffic::make_poisson_flow(
            sta, 0.012, traffic::TraceKind::kSigcomm, /*uplink=*/true));
      }
      const SimResult r = sim.run();
      std::printf(" | %10.2f, %6.3f", r.downlink_goodput_bps / 1e6,
                  r.mean_delay_s);
      if (scheme == Scheme::kCarpool && n == 30) {
        carpool_30 = r.downlink_goodput_bps;
      }
      if (scheme == Scheme::kAmpdu && n == 30) {
        ampdu_30 = r.downlink_goodput_bps;
      }
      if (scheme == Scheme::kCarpool && n == 22) {
        carpool_20 = r.downlink_goodput_bps;
      }
      if (scheme == Scheme::kAmpdu && n == 22) {
        ampdu_20 = r.downlink_goodput_bps;
      }
    }
    std::printf("\n");
  }

  if (ampdu_20 > 0 && ampdu_30 > 0) {
    std::printf("\nCarpool/A-MPDU goodput ratio: %.2fx at 22 STAs, %.2fx at "
                "30 STAs (paper: 1.12x-3.2x from 20 to 30 STAs)\n",
                carpool_20 / ampdu_20, carpool_30 / ampdu_30);
  }
  bench::write_metrics("fig16_background");
  return 0;
}
