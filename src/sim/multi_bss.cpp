#include "sim/multi_bss.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "mac/domain_sim.hpp"
#include "obs/registry.hpp"
#include "par/par.hpp"
#include "traffic/generators.hpp"

namespace carpool::sim {
namespace {

const MobilityPath kNoPath;

}  // namespace

MultiBssSim::MultiBssSim(MultiBssConfig config)
    : config_(std::move(config)),
      topo_(config_.topology, config_.power_magnitude, config_.layout_seed) {
  if (config_.num_stas == 0) {
    throw std::invalid_argument("MultiBssSim: need at least one STA");
  }
  if (!(config_.duration > 0.0)) {
    throw std::invalid_argument("MultiBssSim: duration must be positive");
  }
}

std::uint64_t MultiBssSim::domain_seed(std::uint64_t seed, std::size_t ap,
                                       std::size_t epoch) noexcept {
  // Same whitening recipe as chaos::derive_seed: XOR-fold the coordinates
  // with odd constants, then splitmix64. +1 offsets keep (0, 0) from
  // collapsing to the raw campaign seed.
  std::uint64_t s = seed ^
                    0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(ap) +
                                             1) ^
                    0xbf58476d1ce4e5b9ULL *
                        (static_cast<std::uint64_t>(epoch) + 1);
  return splitmix64(s);
}

mac::SimConfig MultiBssSim::domain_config(
    std::size_t epoch, std::size_t ap, double start, double stop,
    const std::vector<mac::NodeId>& stas) const {
  mac::SimConfig cfg;
  cfg.scheme = config_.scheme;
  cfg.params = config_.params;
  cfg.aggregation = config_.aggregation;
  cfg.link_policy = config_.link_policy;
  cfg.num_stas = stas.size();
  cfg.duration = stop - start;
  cfg.seed = domain_seed(config_.seed, ap, epoch);
  // Local STA `l` (1-based) is global STA stas[l-1]; its link quality is
  // the topology SINR of this AP at the STA's position, evaluated on the
  // campaign clock (epoch offset + domain-local now). Shadowing or trace
  // overlays compose on top of this hook exactly as in the single-BSS
  // path.
  cfg.sta_snr_fn = [topo = &topo_, stas, paths = &config_.paths, ap,
                    start](mac::NodeId local, double now) {
    const mac::NodeId global = stas[local - 1];
    const MobilityPath& path =
        global < paths->size() ? (*paths)[global] : kNoPath;
    return topo->sinr_db(ap, topo->position(global, path, start + now));
  };
  return cfg;
}

MultiBssResult MultiBssSim::run() {
  const std::size_t ap_count = topo_.ap_count();
  AssociationTimeline timeline(topo_, config_.num_stas, config_.paths,
                               config_.duration);

  // Epoch boundaries: campaign start/end plus every handover instant.
  std::vector<double> bounds{0.0};
  for (double t : timeline.handover_times()) {
    if (t > 0.0 && t < config_.duration) bounds.push_back(t);
  }
  bounds.push_back(config_.duration);
  const std::size_t epochs = bounds.size() - 1;

  MultiBssResult out;
  out.ap_count = ap_count;
  out.duration = config_.duration;
  out.handovers = timeline.handovers();

  // One job per (epoch, AP) cell, flattened epoch-major so the
  // index-ordered merge reads like the serial nested loop.
  const std::size_t jobs = epochs * ap_count;
  const std::size_t workers =
      config_.threads <= 1 ? 1 : static_cast<std::size_t>(config_.threads);
  out.runs = par::run_sharded(jobs, workers, [&](const par::ShardInfo& info) {
    const std::size_t epoch = info.index / ap_count;
    const std::size_t ap = info.index % ap_count;
    DomainRun run;
    run.epoch = epoch;
    run.ap = ap;
    run.start = bounds[epoch];
    run.stop = bounds[epoch + 1];
    for (mac::NodeId sta = 1; sta <= config_.num_stas; ++sta) {
      if (timeline.ap_at(sta, run.start) == ap) run.stas.push_back(sta);
    }
    if (run.stas.empty()) {
      run.result.duration = run.stop - run.start;
      return run;
    }
    mac::DomainSim domain(
        domain_config(epoch, ap, run.start, run.stop, run.stas),
        static_cast<std::uint32_t>(ap));
    for (std::size_t local = 1; local <= run.stas.size(); ++local) {
      domain.add_flow(traffic::make_cbr_flow(
          static_cast<mac::NodeId>(local), config_.frame_bytes,
          config_.cbr_interval));
    }
    run.result = domain.run();
    return run;
  });

  // Aggregate in (epoch, AP) order — fixed-order arithmetic, so the
  // summary metrics are identical at any thread count.
  out.per_ap_goodput_bps.assign(ap_count, 0.0);
  for (const DomainRun& run : out.runs) {
    const double slice = run.stop - run.start;
    if (run.stas.empty()) {
      ++out.domains_idle;
      continue;
    }
    ++out.domains_simulated;
    out.per_ap_goodput_bps[run.ap] +=
        (run.result.downlink_goodput_bps + run.result.uplink_goodput_bps) *
        slice / config_.duration;
    out.dl_frames_delivered += run.result.dl_frames_delivered;
    out.dl_frames_dropped += run.result.dl_frames_dropped;
    out.collisions += run.result.collisions;
  }
  for (double g : out.per_ap_goodput_bps) out.aggregate_goodput_bps += g;

  // Campaign-level observability (consumed by bench_multi_bss and the
  // soak engine's fingerprint canary).
  obs::Registry& reg = obs::Registry::current();
  reg.counter("mac.roam_handover").add(out.handovers.size());
  reg.counter("sim.bss_epochs").add(epochs);
  reg.counter("sim.bss_domains").add(out.domains_simulated);
  reg.counter("sim.bss_domains_idle").add(out.domains_idle);
  std::size_t cochannel_pairs = 0;
  for (std::size_t a = 0; a < ap_count; ++a) {
    for (std::size_t b = a + 1; b < ap_count; ++b) {
      if (topo_.channel_of(a) == topo_.channel_of(b)) ++cochannel_pairs;
    }
  }
  reg.set_gauge("sim.bss_ap_count", static_cast<double>(ap_count));
  reg.set_gauge("sim.bss_cochannel_pairs",
                static_cast<double>(cochannel_pairs));
  return out;
}

}  // namespace carpool::sim
