#pragma once

// The simulated counterpart of the paper's testbed (Fig. 10): a 10 m x
// 10 m office with the transmitter at the centre and receivers at 30
// locations. Locations matter only through their link SNR, which we derive
// from log-distance path loss; the paper's USRP "power magnitude" knob
// maps to TX power in dBm.

#include <vector>

#include "channel/fading.hpp"
#include "channel/pathloss.hpp"
#include "common/rng.hpp"

namespace carpool::sim {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

class TestbedLayout {
 public:
  static constexpr double kRoomSize = 10.0;          // metres
  static constexpr std::size_t kNumLocations = 30;   // paper Fig. 10

  /// Deterministic pseudo-random layout for a seed (same seed = same
  /// testbed across experiments).
  explicit TestbedLayout(std::uint64_t seed = 2015);

  [[nodiscard]] Point transmitter() const noexcept { return tx_; }
  [[nodiscard]] const std::vector<Point>& receivers() const noexcept {
    return rx_;
  }

  [[nodiscard]] double distance(std::size_t location) const;

  /// Link SNR at a location for a given USRP power magnitude (0.0125-0.2).
  [[nodiscard]] double snr_db(std::size_t location,
                              double power_magnitude) const;

  /// A fading channel parameterised for this location.
  [[nodiscard]] FadingConfig channel_config(std::size_t location,
                                            double power_magnitude,
                                            std::uint64_t seed) const;

 private:
  Point tx_{kRoomSize / 2, kRoomSize / 2};
  std::vector<Point> rx_;
  PathLossModel pathloss_;
};

}  // namespace carpool::sim
