#pragma once

// The simulated counterpart of the paper's testbed (Fig. 10): a 10 m x
// 10 m office with the transmitter at the centre and receivers at 30
// locations. Locations matter only through their link SNR, which we derive
// from log-distance path loss; the paper's USRP "power magnitude" knob
// maps to TX power in dBm.

#include <vector>

#include "channel/fading.hpp"
#include "channel/pathloss.hpp"
#include "common/rng.hpp"

namespace carpool::sim {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// A waypoint on a mobility path: where a receiver is at `time`.
struct TimedPoint {
  double time = 0.0;
  Point p;
};

/// Piecewise-linear mobility through the room: the time-varying
/// counterpart of a fixed receiver location. Positions between waypoints
/// are interpolated; before the first / after the last waypoint the path
/// clamps to the endpoint (the user stands still). Waypoint times must be
/// strictly increasing.
class MobilityPath {
 public:
  MobilityPath() = default;
  /// Throws std::invalid_argument if waypoint times are not strictly
  /// increasing.
  explicit MobilityPath(std::vector<TimedPoint> waypoints);

  [[nodiscard]] bool empty() const noexcept { return waypoints_.empty(); }
  [[nodiscard]] Point position_at(double time) const;
  [[nodiscard]] const std::vector<TimedPoint>& waypoints() const noexcept {
    return waypoints_;
  }

 private:
  std::vector<TimedPoint> waypoints_;
};

class TestbedLayout {
 public:
  static constexpr double kRoomSize = 10.0;          // metres
  static constexpr std::size_t kNumLocations = 30;   // paper Fig. 10

  /// Deterministic pseudo-random layout for a seed (same seed = same
  /// testbed across experiments).
  explicit TestbedLayout(std::uint64_t seed = 2015);

  [[nodiscard]] Point transmitter() const noexcept { return tx_; }
  [[nodiscard]] const std::vector<Point>& receivers() const noexcept {
    return rx_;
  }

  [[nodiscard]] double distance(std::size_t location) const;

  /// Link SNR at a location for a given USRP power magnitude (0.0125-0.2).
  [[nodiscard]] double snr_db(std::size_t location,
                              double power_magnitude) const;

  /// Link SNR at an arbitrary point in the room (the time-varying hook:
  /// scenario-scripted mobility evaluates this along a MobilityPath).
  /// Distances below 0.5 m clamp to 0.5 m so a waypoint crossing the
  /// transmitter cannot produce an unphysical near-field SNR.
  [[nodiscard]] double snr_db_at(Point p, double power_magnitude) const;

  /// SNR of a receiver moving along `path`, evaluated at absolute time
  /// `time`. An empty path falls back to the room centre's SNR.
  [[nodiscard]] double snr_db_along(const MobilityPath& path, double time,
                                    double power_magnitude) const;

  /// A fading channel parameterised for this location.
  [[nodiscard]] FadingConfig channel_config(std::size_t location,
                                            double power_magnitude,
                                            std::uint64_t seed) const;

 private:
  Point tx_{kRoomSize / 2, kRoomSize / 2};
  std::vector<Point> rx_;
  PathLossModel pathloss_;
};

}  // namespace carpool::sim
