#include "sim/phy_trace.hpp"

#include <algorithm>
#include <cmath>

#include "carpool/transceiver.hpp"
#include "channel/fading.hpp"
#include "common/rng.hpp"

namespace carpool::sim {
namespace {

Bytes random_psdu(std::size_t n, Rng& rng) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return out;
}

}  // namespace

TracePhyModel TracePhyModel::generate(const PhyTraceConfig& config) {
  TracePhyModel model(config);
  Rng rng(config.seed);
  const Mcs& m = mcs(config.mcs_index);

  // Build one reusable frame (the channel varies across trials instead).
  std::vector<SubframeSpec> subframes;
  for (std::size_t i = 0; i < config.subframes_per_frame; ++i) {
    subframes.push_back(SubframeSpec{
        MacAddress::for_station(static_cast<std::uint32_t>(i + 1)),
        append_fcs(random_psdu(config.subframe_bytes, rng)),
        config.mcs_index});
  }
  const CarpoolTransmitter tx;
  const CxVec wave = tx.build(subframes);

  // Reference coded bits per subframe for raw-symbol comparisons.
  std::vector<Bits> reference;
  for (const SubframeSpec& spec : subframes) {
    reference.push_back(code_data_bits(build_data_bits(spec.psdu, m), m));
  }
  const std::size_t syms_per_subframe =
      num_data_symbols(m, subframes[0].psdu.size());
  const std::size_t total_positions =
      config.subframes_per_frame * (1 + syms_per_subframe);
  const std::size_t buckets =
      (total_positions + kBucketSymbols - 1) / kBucketSymbols;

  for (const double snr : config.snr_grid_db) {
    for (const bool rte : {false, true}) {
      std::vector<double> fail(buckets, 0.0);
      std::vector<double> count(buckets, 0.0);
      std::vector<double> fcs_fail_at(config.subframes_per_frame, 0.0);
      std::vector<double> trials_at(config.subframes_per_frame, 0.0);
      double walk_attempts = 0.0;
      double walk_reached = 0.0;

      for (std::size_t f = 0; f < config.frames_per_point; ++f) {
        FadingConfig ch;
        ch.seed = config.seed * 7919 + f * 31 +
                  static_cast<std::uint64_t>(snr * 10) + (rte ? 1 : 0) * 3;
        ch.snr_db = snr;
        ch.coherence_time = config.coherence_time;
        ch.cfo_hz = 6e3;
        ch.rician_los = true;  // indoor office links (Fig. 10)
        ch.rician_k_db = 8.0;
        FadingChannel channel(ch);
        const CxVec rx_wave = channel.transmit(wave);

        for (std::size_t target = 0; target < config.subframes_per_frame;
             ++target) {
          CarpoolRxConfig rx_cfg;
          rx_cfg.self = subframes[target].receiver;
          rx_cfg.use_rte = rte;
          const CarpoolReceiver rx(rx_cfg);
          const CarpoolRxResult result = rx.receive(rx_wave);

          walk_attempts += 1.0;
          for (const DecodedSubframe& sub : result.subframes) {
            if (sub.index == target) walk_reached += 1.0;
          }
          for (const DecodedSubframe& sub : result.subframes) {
            if (sub.index != target) continue;
            trials_at[target] += 1.0;
            if (!sub.fcs_ok) fcs_fail_at[target] += 1.0;
            // Per-symbol raw failures against the TX coded stream
            // (diagnostic curve; PER composition uses the FCS hazards).
            for (std::size_t s = 0; s < sub.raw_symbol_bits.size(); ++s) {
              const std::span<const std::uint8_t> want(
                  reference[target].data() + s * m.n_cbps, m.n_cbps);
              const bool bad =
                  hamming_distance(sub.raw_symbol_bits[s], want) > 0;
              const std::size_t position =
                  target * (1 + syms_per_subframe) + 1 + s;
              const std::size_t bucket =
                  std::min(position / kBucketSymbols, buckets - 1);
              fail[bucket] += bad ? 1.0 : 0.0;
              count[bucket] += 1.0;
            }
          }
        }
      }

      Curve curve;
      curve.failure_by_bucket.resize(buckets, 0.0);
      for (std::size_t b = 0; b < buckets; ++b) {
        curve.failure_by_bucket[b] = count[b] > 0 ? fail[b] / count[b] : 0.0;
      }
      // Post-FEC hazard per symbol from the measured per-position FCS
      // failure rates: PER_i = 1 - exp(-h_i * span).
      curve.hazard_by_bucket.assign(buckets, 0.0);
      for (std::size_t i = 0; i < config.subframes_per_frame; ++i) {
        const double per =
            trials_at[i] > 0.0
                ? std::min(fcs_fail_at[i] / trials_at[i], 0.98)
                : 0.0;
        const double hazard =
            -std::log(1.0 - per) / static_cast<double>(syms_per_subframe);
        const std::size_t first = i * (1 + syms_per_subframe) + 1;
        const std::size_t last = first + syms_per_subframe;
        for (std::size_t pos = first; pos < last; ++pos) {
          const std::size_t bucket =
              std::min(pos / kBucketSymbols, buckets - 1);
          curve.hazard_by_bucket[bucket] = hazard;
        }
      }
      if (walk_attempts > 0.0) {
        // A missed subframe means a SIG (BPSK-1/2, fresh chain) was lost:
        // the measured proxy for control-frame robustness.
        curve.control_failure = 1.0 - walk_reached / walk_attempts;
      }
      (rte ? model.rte_curves_ : model.std_curves_).push_back(
          std::move(curve));
    }
  }
  return model;
}

const TracePhyModel::Curve& TracePhyModel::curve(double snr_db,
                                                 bool rte) const {
  const auto& grid = config_.snr_grid_db;
  std::size_t best = 0;
  double best_dist = std::abs(grid[0] - snr_db);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    const double d = std::abs(grid[i] - snr_db);
    if (d < best_dist) {
      best = i;
      best_dist = d;
    }
  }
  return rte ? rte_curves_[best] : std_curves_[best];
}

double TracePhyModel::symbol_failure(double snr_db, bool rte,
                                     std::size_t symbol_index) const {
  const Curve& c = curve(snr_db, rte);
  const std::size_t bucket = std::min(symbol_index / kBucketSymbols,
                                      c.failure_by_bucket.size() - 1);
  return c.failure_by_bucket[bucket];
}

double TracePhyModel::subframe_error_prob(
    const mac::SubframeChannelQuery& query) const {
  const Curve& c = curve(query.snr_db, query.rte);
  // Rescale symbol positions by the coherence-time ratio: a channel twice
  // as fast makes staleness accrue twice as quickly.
  const double scale =
      query.coherence_time > 0.0
          ? config_.coherence_time / query.coherence_time
          : 1.0;
  double hazard = 0.0;
  for (std::size_t s = 0; s < query.num_symbols; ++s) {
    const auto scaled = static_cast<std::size_t>(
        static_cast<double>(query.start_symbol + s) * scale);
    const std::size_t bucket = std::min(scaled / kBucketSymbols,
                                        c.hazard_by_bucket.size() - 1);
    hazard += c.hazard_by_bucket[bucket];
  }
  return 1.0 - std::exp(-hazard);
}

double TracePhyModel::control_error_prob(double snr_db) const {
  // Use the measured SIG-walk failure rate: SIG symbols are BPSK rate-1/2
  // like ACK/RTS/CTS frames and follow a fresh channel estimate.
  return curve(snr_db, /*rte=*/false).control_failure;
}

}  // namespace carpool::sim
