#include "sim/topology.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace carpool::sim {
namespace {

constexpr double kMinLinkDistance = 0.5;  ///< near-field clamp, metres

double distance_clamped(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::max(kMinLinkDistance, std::hypot(dx, dy));
}

}  // namespace

Topology::Topology(TopologySpec spec, double power_magnitude,
                   std::uint64_t layout_seed)
    : spec_(spec),
      tx_power_dbm_(usrp_power_magnitude_to_dbm(power_magnitude)) {
  if (spec_.ap_count == 0) {
    throw std::invalid_argument("Topology: need at least one AP");
  }
  if (spec_.channel_count == 0) {
    throw std::invalid_argument("Topology: need at least one channel");
  }
  if (!(spec_.ap_spacing > 0.0)) {
    throw std::invalid_argument("Topology: ap_spacing must be positive");
  }
  if (!(spec_.roam_interval > 0.0)) {
    throw std::invalid_argument("Topology: roam_interval must be positive");
  }
  if (!(spec_.cell_size > 0.0)) {
    throw std::invalid_argument("Topology: cell_size must be positive");
  }
  if (spec_.roam_hysteresis_db < 0.0) {
    throw std::invalid_argument("Topology: roam_hysteresis_db must be >= 0");
  }
  if (spec_.activity_factor < 0.0 || spec_.activity_factor > 1.0) {
    throw std::invalid_argument("Topology: activity_factor must be in [0,1]");
  }

  // Row-major square grid: ceil(sqrt(N)) columns.
  grid_cols_ = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(spec_.ap_count))));
  ap_pos_.reserve(spec_.ap_count);
  for (std::size_t ap = 0; ap < spec_.ap_count; ++ap) {
    const std::size_t row = ap / grid_cols_;
    const std::size_t col = ap % grid_cols_;
    ap_pos_.push_back(Point{static_cast<double>(col) * spec_.ap_spacing,
                            static_cast<double>(row) * spec_.ap_spacing});
  }

  // Deterministic scatter offsets shared by every cell: the same Rng
  // recipe as TestbedLayout so a seed names one campus layout. Offsets
  // keep >= 1 m from the AP at the cell centre.
  Rng rng(layout_seed);
  const double half = spec_.cell_size / 2.0;
  scatter_.reserve(kScatterPoints);
  while (scatter_.size() < kScatterPoints) {
    const Point offset{rng.uniform(-half + kMinLinkDistance,
                                   half - kMinLinkDistance),
                       rng.uniform(-half + kMinLinkDistance,
                                   half - kMinLinkDistance)};
    if (std::hypot(offset.x, offset.y) < 1.0) continue;
    scatter_.push_back(offset);
  }
}

Point Topology::ap_position(std::size_t ap) const {
  if (ap >= ap_pos_.size()) {
    throw std::out_of_range("Topology: AP index out of range");
  }
  return ap_pos_[ap];
}

std::size_t Topology::channel_of(std::size_t ap) const noexcept {
  return ap % spec_.channel_count;
}

std::size_t Topology::home_ap(mac::NodeId sta) const noexcept {
  if (sta == mac::kApNode) return 0;
  return static_cast<std::size_t>(sta - 1) % spec_.ap_count;
}

Point Topology::home_position(mac::NodeId sta) const {
  const Point ap = ap_position(home_ap(sta));
  const std::size_t local = static_cast<std::size_t>(sta - 1) / spec_.ap_count;
  const Point& offset = scatter_[local % scatter_.size()];
  return Point{ap.x + offset.x, ap.y + offset.y};
}

Point Topology::position(mac::NodeId sta, const MobilityPath& path,
                         double time) const {
  if (!path.empty()) return path.position_at(time);
  return home_position(sta);
}

double Topology::rx_power_dbm(std::size_t ap, Point p) const {
  const double d = distance_clamped(ap_position(ap), p);
  return tx_power_dbm_ - pathloss_.loss_db(d);
}

double Topology::sinr_db(std::size_t ap, Point p) const {
  const double signal_dbm = rx_power_dbm(ap, p);
  const double noise_mw =
      std::pow(10.0, pathloss_.config().noise_floor_dbm / 10.0);
  double interference_mw = 0.0;
  const std::size_t ch = channel_of(ap);
  for (std::size_t other = 0; other < spec_.ap_count; ++other) {
    if (other == ap || channel_of(other) != ch) continue;
    interference_mw +=
        spec_.activity_factor * std::pow(10.0, rx_power_dbm(other, p) / 10.0);
  }
  if (interference_mw == 0.0) {
    // Exact single-BSS SNR, so a non-overlapping topology is bit-for-bit
    // the same link as PathLossModel::snr_db.
    return signal_dbm - pathloss_.config().noise_floor_dbm;
  }
  return signal_dbm - 10.0 * std::log10(noise_mw + interference_mw);
}

std::size_t Topology::associate(Point p, std::ptrdiff_t current) const {
  std::size_t best = 0;
  double best_dbm = rx_power_dbm(0, p);
  for (std::size_t ap = 1; ap < spec_.ap_count; ++ap) {
    const double dbm = rx_power_dbm(ap, p);
    if (dbm > best_dbm) {
      best = ap;
      best_dbm = dbm;
    }
  }
  if (current >= 0 &&
      static_cast<std::size_t>(current) < spec_.ap_count &&
      static_cast<std::size_t>(current) != best) {
    const double current_dbm =
        rx_power_dbm(static_cast<std::size_t>(current), p);
    if (best_dbm < current_dbm + spec_.roam_hysteresis_db) {
      return static_cast<std::size_t>(current);
    }
  }
  return best;
}

AssociationTimeline::AssociationTimeline(
    const Topology& topo, std::size_t num_stas,
    const std::vector<MobilityPath>& paths, double duration) {
  if (!(duration > 0.0)) {
    throw std::invalid_argument("AssociationTimeline: duration must be > 0");
  }
  static const MobilityPath kNoPath;
  intervals_.assign(num_stas + 1, {});
  for (mac::NodeId sta = 1; sta <= num_stas; ++sta) {
    const MobilityPath& path = sta < paths.size() ? paths[sta] : kNoPath;
    std::size_t current =
        topo.associate(topo.position(sta, path, 0.0), -1);
    double span_start = 0.0;
    // Static STAs never roam: a single interval, no grid walk.
    if (!path.empty() && topo.ap_count() > 1) {
      const double step = topo.spec().roam_interval;
      for (double t = step; t < duration; t += step) {
        const std::size_t next = topo.associate(
            topo.position(sta, path, t),
            static_cast<std::ptrdiff_t>(current));
        if (next == current) continue;
        intervals_[sta].push_back(
            AssociationInterval{span_start, t, current});
        handovers_.push_back(Handover{t, sta, current, next});
        current = next;
        span_start = t;
      }
    }
    intervals_[sta].push_back(
        AssociationInterval{span_start, duration, current});
  }
  std::stable_sort(handovers_.begin(), handovers_.end(),
                   [](const Handover& a, const Handover& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.sta < b.sta;
                   });
}

std::size_t AssociationTimeline::ap_at(mac::NodeId sta, double time) const {
  if (sta == mac::kApNode || sta >= intervals_.size() ||
      intervals_[sta].empty()) {
    throw std::out_of_range("AssociationTimeline: unknown STA");
  }
  const auto& spans = intervals_[sta];
  for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
    if (time >= it->start) return it->ap;
  }
  return spans.front().ap;
}

std::vector<double> AssociationTimeline::handover_times() const {
  std::vector<double> times;
  times.reserve(handovers_.size());
  for (const Handover& h : handovers_) times.push_back(h.time);
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

}  // namespace carpool::sim
