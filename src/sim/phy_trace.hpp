#pragma once

// Trace-driven PHY error model (the paper's MAC-evaluation methodology,
// Sec. 7.2.1): real Carpool frames are run through the bit-exact OFDM PHY
// and fading channel; the measured per-symbol-position group-failure rates
// are tabulated and composed into subframe error probabilities for the MAC
// simulator.
//
// For each (SNR, RTE on/off) the generator transmits aggregate frames and
// records, per symbol position, how often the symbol's coded bits came
// back wrong (the BER-bias curve of Fig. 3/13), plus the overall FCS pass
// rate used to calibrate how much the convolutional code rescues.

#include <memory>
#include <vector>

#include "carpool/side_channel.hpp"
#include "mac/phy_model.hpp"

namespace carpool::sim {

struct PhyTraceConfig {
  std::vector<double> snr_grid_db = {10, 14, 18, 22, 26, 30};
  std::size_t mcs_index = 7;           ///< QAM64-3/4 payloads
  double coherence_time = 3e-3;        ///< channel during generation
  std::size_t frames_per_point = 10;
  std::size_t subframes_per_frame = 4;
  std::size_t subframe_bytes = 700;
  std::uint64_t seed = 99;
};

class TracePhyModel final : public mac::PhyErrorModel {
 public:
  /// Run the PHY and build the table. Takes a few seconds at the default
  /// configuration.
  static TracePhyModel generate(const PhyTraceConfig& config);

  [[nodiscard]] double subframe_error_prob(
      const mac::SubframeChannelQuery& query) const override;

  [[nodiscard]] double control_error_prob(double snr_db) const override;

  /// Measured P[symbol group fails] at a grid point (diagnostics/benches).
  [[nodiscard]] double symbol_failure(double snr_db, bool rte,
                                      std::size_t symbol_index) const;

  [[nodiscard]] const PhyTraceConfig& config() const noexcept {
    return config_;
  }

 private:
  explicit TracePhyModel(PhyTraceConfig config) : config_(std::move(config)) {}

  struct Curve {
    std::vector<double> failure_by_bucket;  ///< raw per symbol-index bucket
                                            ///< (diagnostics, Fig. 3 shape)
    /// Post-FEC failure hazard per symbol, by symbol-index bucket: derived
    /// from measured per-position FCS failure rates, so composed PERs
    /// reproduce what the real decoder did.
    std::vector<double> hazard_by_bucket;
    double control_failure = 0.0;  ///< measured SIG/A-HDR walk failures
  };
  [[nodiscard]] const Curve& curve(double snr_db, bool rte) const;

  static constexpr std::size_t kBucketSymbols = 8;

  PhyTraceConfig config_;
  std::vector<Curve> std_curves_;  ///< per SNR grid point
  std::vector<Curve> rte_curves_;
};

}  // namespace carpool::sim
