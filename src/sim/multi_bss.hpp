#pragma once

// Multi-BSS campaign driver: runs one mac::DomainSim per AP of a
// sim::Topology and shards whole BSSes across carpool::par.
//
// The campaign is segmented into *epochs* at roaming handover instants
// (AssociationTimeline::handover_times). Within an epoch every STA's
// association is constant, so each AP's collision domain is an
// independent simulation: a pure job of (config, topology, epoch, ap)
// that carpool::par can run on any thread. Jobs derive their RNG stream
// from domain_seed(seed, ap, epoch) — never from thread ids or
// schedule — and results merge in (epoch, ap) index order, which is why
// a 1000-AP campaign produces bit-identical results and metric
// fingerprints at any --threads count (docs/MULTI_AP.md,
// docs/PARALLELISM.md).
//
// Co-channel interference enters through Topology::sinr_db wired into
// each domain's SimConfig::sta_snr_fn, so the existing link-state,
// shadowing, and PHY-error paths see multi-AP effects without change.

#include <cstdint>
#include <vector>

#include "mac/simulator.hpp"
#include "sim/topology.hpp"

namespace carpool::sim {

struct MultiBssConfig {
  TopologySpec topology;
  /// Total STAs across the campus; STA ids round-robin over home APs
  /// (Topology::home_ap).
  std::size_t num_stas = 8;
  double duration = 1.0;  ///< simulated seconds
  std::uint64_t seed = 1;

  mac::Scheme scheme = mac::Scheme::kCarpool;
  /// USRP power-magnitude knob shared by every AP (paper Sec. 7).
  double power_magnitude = 0.1;
  mac::MacParams params{};
  mac::AggregationPolicy aggregation{};
  mac::LinkPolicyConfig link_policy;

  /// Downlink CBR traffic per STA (the bench/campaign workload).
  std::size_t frame_bytes = 1200;
  double cbr_interval = 4e-3;

  /// Mobility paths indexed by STA id (paths[sta]; index 0 unused).
  /// Missing or empty entries keep the STA at its home position.
  std::vector<MobilityPath> paths;

  /// Worker threads for the BSS shards (par::resolve_threads semantics:
  /// <= 1 runs inline).
  int threads = 1;
  std::uint64_t layout_seed = 2015;
};

/// One (epoch, AP) collision-domain simulation.
struct DomainRun {
  std::size_t epoch = 0;
  std::size_t ap = 0;
  double start = 0.0;
  double stop = 0.0;
  /// Global STA ids served by this domain, sorted ascending; local STA
  /// i+1 inside `result` corresponds to stas[i].
  std::vector<mac::NodeId> stas;
  mac::SimResult result;
};

struct MultiBssResult {
  std::size_t ap_count = 0;
  double duration = 0.0;
  /// Epoch-major, AP-minor (runs[e * ap_count + ap]).
  std::vector<DomainRun> runs;
  std::vector<Handover> handovers;
  /// Duration-weighted downlink+uplink goodput per AP over the full
  /// campaign (index = AP).
  std::vector<double> per_ap_goodput_bps;
  double aggregate_goodput_bps = 0.0;
  std::uint64_t dl_frames_delivered = 0;
  std::uint64_t dl_frames_dropped = 0;
  std::uint64_t collisions = 0;
  std::uint64_t domains_simulated = 0;  ///< non-empty (epoch, AP) cells
  std::uint64_t domains_idle = 0;       ///< cells with no associated STA
};

class MultiBssSim {
 public:
  /// Throws std::invalid_argument on zero STAs or non-positive duration
  /// (TopologySpec validation happens in Topology's constructor).
  explicit MultiBssSim(MultiBssConfig config);

  /// The RNG seed of collision domain `ap` during `epoch`: a pure
  /// function of the campaign seed, exposed so tests can rebuild any
  /// single domain with a plain mac::Simulator and reproduce it bit for
  /// bit (the 2-BSS regression anchor).
  [[nodiscard]] static std::uint64_t domain_seed(std::uint64_t seed,
                                                 std::size_t ap,
                                                 std::size_t epoch) noexcept;

  [[nodiscard]] const MultiBssConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

  /// Build the per-domain SimConfig for (epoch slice [start, stop), AP):
  /// derived seed, epoch-sliced duration, and an sta_snr_fn that maps the
  /// domain's local STA ids through the topology's SINR at the STA's
  /// current position. Exposed for the regression-anchor tests.
  [[nodiscard]] mac::SimConfig domain_config(
      std::size_t epoch, std::size_t ap, double start, double stop,
      const std::vector<mac::NodeId>& stas) const;

  /// Run the whole campaign. Deterministic at any config_.threads value;
  /// emits mac.roam_* / sim.bss_* counters into the ambient registry.
  MultiBssResult run();

 private:
  MultiBssConfig config_;
  Topology topo_;
};

}  // namespace carpool::sim
