#include "sim/testbed.hpp"

#include <cmath>
#include <stdexcept>

namespace carpool::sim {

TestbedLayout::TestbedLayout(std::uint64_t seed) {
  Rng rng(seed);
  rx_.reserve(kNumLocations);
  while (rx_.size() < kNumLocations) {
    const Point p{rng.uniform(0.5, kRoomSize - 0.5),
                  rng.uniform(0.5, kRoomSize - 0.5)};
    // Keep receivers at least 1 m from the transmitter (as in the paper's
    // layout, no receiver sits on top of the TX antenna).
    const double d = std::hypot(p.x - tx_.x, p.y - tx_.y);
    if (d >= 1.0) rx_.push_back(p);
  }
}

double TestbedLayout::distance(std::size_t location) const {
  if (location >= rx_.size()) {
    throw std::out_of_range("TestbedLayout: bad location");
  }
  const Point& p = rx_[location];
  return std::hypot(p.x - tx_.x, p.y - tx_.y);
}

double TestbedLayout::snr_db(std::size_t location,
                             double power_magnitude) const {
  const double tx_dbm = usrp_power_magnitude_to_dbm(power_magnitude);
  return pathloss_.snr_db(tx_dbm, distance(location));
}

FadingConfig TestbedLayout::channel_config(std::size_t location,
                                           double power_magnitude,
                                           std::uint64_t seed) const {
  FadingConfig cfg;
  cfg.snr_db = snr_db(location, power_magnitude);
  cfg.seed = seed * 1000003ULL + location;
  cfg.num_taps = 4;        // indoor office delay spread
  cfg.coherence_time = 5e-3;
  cfg.cfo_hz = 6e3;        // residual oscillator offset
  cfg.rician_los = distance(location) < 4.0;  // LOS near the centre
  return cfg;
}

}  // namespace carpool::sim
