#include "sim/testbed.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace carpool::sim {

MobilityPath::MobilityPath(std::vector<TimedPoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    if (waypoints_[i].time <= waypoints_[i - 1].time) {
      throw std::invalid_argument(
          "MobilityPath: waypoint times must be strictly increasing");
    }
  }
}

Point MobilityPath::position_at(double time) const {
  if (waypoints_.empty()) return Point{};
  if (time <= waypoints_.front().time) return waypoints_.front().p;
  if (time >= waypoints_.back().time) return waypoints_.back().p;
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    if (time > waypoints_[i].time) continue;
    const TimedPoint& a = waypoints_[i - 1];
    const TimedPoint& b = waypoints_[i];
    const double f = (time - a.time) / (b.time - a.time);
    return Point{a.p.x + f * (b.p.x - a.p.x), a.p.y + f * (b.p.y - a.p.y)};
  }
  return waypoints_.back().p;
}

TestbedLayout::TestbedLayout(std::uint64_t seed) {
  Rng rng(seed);
  rx_.reserve(kNumLocations);
  while (rx_.size() < kNumLocations) {
    const Point p{rng.uniform(0.5, kRoomSize - 0.5),
                  rng.uniform(0.5, kRoomSize - 0.5)};
    // Keep receivers at least 1 m from the transmitter (as in the paper's
    // layout, no receiver sits on top of the TX antenna).
    const double d = std::hypot(p.x - tx_.x, p.y - tx_.y);
    if (d >= 1.0) rx_.push_back(p);
  }
}

double TestbedLayout::distance(std::size_t location) const {
  if (location >= rx_.size()) {
    throw std::out_of_range("TestbedLayout: bad location");
  }
  const Point& p = rx_[location];
  return std::hypot(p.x - tx_.x, p.y - tx_.y);
}

double TestbedLayout::snr_db(std::size_t location,
                             double power_magnitude) const {
  const double tx_dbm = usrp_power_magnitude_to_dbm(power_magnitude);
  return pathloss_.snr_db(tx_dbm, distance(location));
}

double TestbedLayout::snr_db_at(Point p, double power_magnitude) const {
  const double tx_dbm = usrp_power_magnitude_to_dbm(power_magnitude);
  const double d =
      std::max(0.5, std::hypot(p.x - tx_.x, p.y - tx_.y));
  return pathloss_.snr_db(tx_dbm, d);
}

double TestbedLayout::snr_db_along(const MobilityPath& path, double time,
                                   double power_magnitude) const {
  if (path.empty()) {
    return snr_db_at(Point{kRoomSize / 2, kRoomSize / 2}, power_magnitude);
  }
  return snr_db_at(path.position_at(time), power_magnitude);
}

FadingConfig TestbedLayout::channel_config(std::size_t location,
                                           double power_magnitude,
                                           std::uint64_t seed) const {
  FadingConfig cfg;
  cfg.snr_db = snr_db(location, power_magnitude);
  cfg.seed = seed * 1000003ULL + location;
  cfg.num_taps = 4;        // indoor office delay spread
  cfg.coherence_time = 5e-3;
  cfg.cfo_hz = 6e3;        // residual oscillator offset
  cfg.rician_los = distance(location) < 4.0;  // LOS near the centre
  return cfg;
}

}  // namespace carpool::sim
