#pragma once

// Multi-BSS topology: N access points on a grid, each running its own
// Carpool-aggregating BSS over a shared physical space. The topology
// layer answers three questions the single-AP TestbedLayout cannot:
//
//  1. Geometry — where is every AP, and where does each STA live/move?
//     STAs scatter deterministically around their home AP and may follow
//     a MobilityPath through the campus.
//  2. Interference — what SINR does a STA see from a given AP once
//     co-channel neighbours (same entry in the frequency reuse plan) are
//     modelled as log-distance interferers with a duty-cycle
//     `activity_factor`? The result feeds the existing
//     SimConfig::sta_snr_fn hook, so every downstream consumer (link
//     state machine, PHY error models, shadowing overlays) works
//     unchanged.
//  3. Association — which AP serves a STA at time t, with a roaming
//     hysteresis so a walker does not flap between two equidistant APs?
//     AssociationTimeline pre-computes piecewise-constant associations
//     plus the handover events that cut multi-BSS campaigns into epochs.
//
// Everything here is a pure function of (spec, power_magnitude,
// layout_seed): no hidden RNG state, so topology geometry is identical
// across runs, threads, and shards (docs/MULTI_AP.md).

#include <cstdint>
#include <vector>

#include "channel/pathloss.hpp"
#include "mac/frame.hpp"
#include "sim/testbed.hpp"

namespace carpool::sim {

struct TopologySpec {
  std::size_t ap_count = 1;
  /// Grid pitch between neighbouring APs, metres. At the default 3-channel
  /// reuse plan, 20 m keeps adjacent co-channel cells ~40 m apart.
  double ap_spacing = 20.0;
  /// Frequency reuse plan size: AP i transmits on channel i % channel_count.
  /// Only same-channel APs interfere.
  std::size_t channel_count = 3;
  /// A STA roams only when another AP is at least this much stronger than
  /// its current one (dB). 0 = always chase the strongest AP.
  double roam_hysteresis_db = 3.0;
  /// Association re-evaluation period, seconds (the roaming "scan" grid).
  double roam_interval = 0.25;
  /// Fraction of time a co-channel AP is assumed on-air when computing the
  /// SINR penalty (0 = interferers silent, 1 = saturated neighbours).
  double activity_factor = 0.5;
  /// Side of the square cell STAs scatter over around their home AP,
  /// metres (mirrors TestbedLayout::kRoomSize for a single AP).
  double cell_size = 10.0;
};

/// One roaming event: `sta` left `from_ap` for `to_ap` at `time`.
struct Handover {
  double time = 0.0;
  mac::NodeId sta = 0;
  std::size_t from_ap = 0;
  std::size_t to_ap = 0;
};

class Topology {
 public:
  /// Number of deterministic scatter offsets per cell (same spirit as
  /// TestbedLayout::kNumLocations).
  static constexpr std::size_t kScatterPoints = 30;

  /// Throws std::invalid_argument on a degenerate spec (zero APs or
  /// channels, non-positive spacing/interval/cell, activity outside
  /// [0, 1], negative hysteresis).
  explicit Topology(TopologySpec spec, double power_magnitude = 0.1,
                    std::uint64_t layout_seed = 2015);

  [[nodiscard]] const TopologySpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t ap_count() const noexcept {
    return spec_.ap_count;
  }
  [[nodiscard]] double tx_power_dbm() const noexcept { return tx_power_dbm_; }

  /// AP placement: row-major square grid, `ap_spacing` pitch.
  [[nodiscard]] Point ap_position(std::size_t ap) const;

  /// Frequency reuse plan: channel of AP `ap` (= ap % channel_count).
  [[nodiscard]] std::size_t channel_of(std::size_t ap) const noexcept;

  /// The AP a STA's fixed location is scattered around: (sta-1) % ap_count,
  /// so STA ids round-robin across BSSes.
  [[nodiscard]] std::size_t home_ap(mac::NodeId sta) const noexcept;

  /// Deterministic fixed location of `sta`: a seeded scatter offset
  /// (>= 1 m from the AP, within the cell) applied to its home AP.
  [[nodiscard]] Point home_position(mac::NodeId sta) const;

  /// Where `sta` is at `time`: along `path` when one is given, else its
  /// static home position.
  [[nodiscard]] Point position(mac::NodeId sta, const MobilityPath& path,
                               double time) const;

  /// Received power (dBm) from AP `ap` at point `p` via log-distance path
  /// loss; distances clamp to 0.5 m like TestbedLayout::snr_db_at.
  [[nodiscard]] double rx_power_dbm(std::size_t ap, Point p) const;

  /// SINR (dB) of AP `ap` at point `p`: signal over thermal noise plus
  /// the activity-weighted sum of co-channel AP powers. With no
  /// co-channel neighbour this reduces to the plain path-loss SNR, which
  /// is what makes a non-overlapping 2-BSS topology reproduce two
  /// independent single-BSS runs bit for bit.
  [[nodiscard]] double sinr_db(std::size_t ap, Point p) const;

  /// Strongest AP at `p`, with roaming hysteresis: when `current` is a
  /// valid AP index it is kept unless some other AP is at least
  /// roam_hysteresis_db stronger. Ties break toward the lowest index.
  [[nodiscard]] std::size_t associate(Point p,
                                      std::ptrdiff_t current = -1) const;

 private:
  TopologySpec spec_;
  double tx_power_dbm_;
  PathLossModel pathloss_;
  std::size_t grid_cols_ = 1;
  std::vector<Point> ap_pos_;
  std::vector<Point> scatter_;  ///< per-local-index offsets within a cell
};

/// One constant-association span of a STA: it is served by `ap` over
/// [start, stop).
struct AssociationInterval {
  double start = 0.0;
  double stop = 0.0;
  std::size_t ap = 0;
};

/// Pre-computed association of every STA over [0, duration]: evaluates
/// Topology::associate on the roam_interval grid, records handovers, and
/// answers ap_at(sta, t) queries. Pure function of its inputs — the same
/// timeline is rebuilt identically by every shard of a parallel campaign.
class AssociationTimeline {
 public:
  /// `paths` is indexed by STA id (paths[sta]; index 0 unused); missing or
  /// empty entries mean the STA stays at its home position.
  AssociationTimeline(const Topology& topo, std::size_t num_stas,
                      const std::vector<MobilityPath>& paths,
                      double duration);

  [[nodiscard]] std::size_t num_stas() const noexcept {
    return intervals_.empty() ? 0 : intervals_.size() - 1;
  }

  /// Serving AP of `sta` at `time` (intervals are half-open; `duration`
  /// maps to the final interval).
  [[nodiscard]] std::size_t ap_at(mac::NodeId sta, double time) const;

  /// All handovers, ordered by (time, sta).
  [[nodiscard]] const std::vector<Handover>& handovers() const noexcept {
    return handovers_;
  }

  /// Unique, sorted handover instants — the epoch cut points a multi-BSS
  /// campaign segments at.
  [[nodiscard]] std::vector<double> handover_times() const;

  /// Per-STA association intervals (intervals()[sta]; index 0 unused).
  [[nodiscard]] const std::vector<std::vector<AssociationInterval>>&
  intervals() const noexcept {
    return intervals_;
  }

 private:
  std::vector<std::vector<AssociationInterval>> intervals_;
  std::vector<Handover> handovers_;
};

}  // namespace carpool::sim
