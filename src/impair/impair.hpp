#pragma once

// carpool::impair — deterministic, seedable fault injection for received
// waveforms.
//
// Stages mutate a waveform in place and compose into an ImpairmentChain
// that sits between the channel/ pipeline and a receiver:
//
//   FadingChannel channel(ch_cfg);
//   impair::ImpairmentChain chain(seed);
//   chain.add(impair::make_gilbert_elliott({.p_good_to_bad = 0.05}));
//   chain.add(impair::make_impulsive_noise({.impulse_prob = 1e-3}));
//   const CxVec rx_wave = chain.run(channel.transmit(tx_wave));
//
// Determinism: every stage draws from its own RNG stream derived from
// (chain seed, frame index, stage index), so two chains constructed with
// the same seed and stage list produce bit-identical waveforms frame by
// frame, regardless of how much randomness the other stages consume.
// reset() rewinds the frame counter so a chain can replay its sequence.
//
// These are the failure regimes the clean simulator never produces —
// bursty co-channel interference, mid-frame shadowing, truncated captures,
// impulsive noise, sampling-clock drift, and targeted A-HDR/SIG bit
// corruption — and the regimes the hardened receivers (DecodeStatus paths,
// RTE poisoning guard, MAC aggregation backoff) are built to survive.
// bench_robustness sweeps them against goodput; docs/ROBUSTNESS.md has the
// model details.

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "dsp/complex_vec.hpp"

namespace carpool::impair {

/// One composable fault injector. Stages are stateless across frames: all
/// randomness comes from the per-frame `rng` the chain hands to apply(),
/// so a stage object may be shared between chains.
class ImpairmentStage {
 public:
  virtual ~ImpairmentStage() = default;

  /// Mutate `wave` in place. May change its length (truncation). `rng` is
  /// this stage's private per-frame stream.
  virtual void apply(CxVec& wave, Rng& rng) const = 0;

  /// Frame-aware entry point the chain actually calls: stages that key
  /// their behaviour off the frame index (trace-gated episodes) override
  /// this; everything else inherits the plain apply(). The default keeps
  /// the (seed, frame, stage) determinism contract intact because `rng`
  /// is already the per-frame stream.
  virtual void apply_frame(CxVec& wave, Rng& rng,
                           std::uint64_t /*frame*/) const {
    apply(wave, rng);
  }

  /// Stable identifier used in obs counters ("impair.<name>") and traces.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

// --------------------------------------------------------------- configs

/// Two-state Markov (Gilbert–Elliott) bursty interference: the channel
/// alternates between a good state (clean) and a bad state in which
/// Gaussian interference of `bad_noise_power` is added. State transitions
/// are evaluated every `period_samples` (default one OFDM symbol), so a
/// burst corrupts whole symbols the way a colliding transmission would.
struct GilbertElliottConfig {
  double p_good_to_bad = 0.05;  ///< per-period entry probability
  double p_bad_to_good = 0.3;   ///< per-period exit (mean burst ~3 periods)
  double bad_noise_power = 1.0; ///< interference power in the bad state
                                ///< (1.0 = 0 dB SIR against unit signal)
  std::size_t period_samples = 80;  ///< state-update granularity
};

/// Mid-frame SNR collapse: a shadowing step that attenuates every sample
/// from `start_sample` onward by `attenuation_db`. Models a person/door
/// blocking the LOS path mid-frame — the preamble estimate is suddenly
/// wrong for the remainder of the frame.
struct SnrCollapseConfig {
  std::size_t start_sample = 0;
  double attenuation_db = 10.0;
};

/// Keep only the first `keep_samples` samples (capture cut short: AGC
/// glitch, buffer overrun, co-channel preemption).
struct TruncationConfig {
  std::size_t keep_samples = 0;
};

/// Zero out `num_samples` starting at `start_sample` (ADC dropout /
/// sample erasure). Spans past the end are clipped.
struct SampleErasureConfig {
  std::size_t start_sample = 0;
  std::size_t num_samples = 80;
};

/// Impulsive (Middleton class-A style) noise: each sample independently
/// receives a large Gaussian impulse with probability `impulse_prob`.
struct ImpulsiveNoiseConfig {
  double impulse_prob = 1e-3;
  double impulse_power = 50.0;  ///< mean impulse power (unit-power signal)
};

/// Sampling-clock offset between transmitter and receiver: the waveform is
/// resampled (linear interpolation) at rate (1 + ppm * 1e-6), modelling a
/// receiver ADC running fast (positive) or slow (negative). Deterministic;
/// draws no randomness.
struct ClockDriftConfig {
  double ppm = 20.0;  ///< parts-per-million clock offset
};

/// Targeted A-HDR/SIG corruption: negate `flip_bins` randomly chosen data
/// subcarriers of the OFDM symbol at `symbol_index` (counted after the
/// preamble: 0-1 = A-HDR, 2 = first subframe's SIG). For BPSK header
/// symbols a negated subcarrier is exactly one flipped coded bit, so this
/// injects bit errors at configurable symbol positions without touching
/// the rest of the frame.
struct HeaderCorruptionConfig {
  std::size_t symbol_index = 2;
  std::size_t flip_bins = 12;  ///< of the 48 data subcarriers
};

/// Recorded per-frame channel-gain timeline: frame i's waveform is scaled
/// by 10^(offset_db[i] / 20) (negative = attenuation), so a measured SNR
/// capture (chaos::SnrTrace, sampled at the probe schedule) drives the
/// real PHY decode path instead of a synthetic channel. Frames beyond the
/// recorded range pass through untouched. Deterministic; draws no
/// randomness.
struct SnrOffsetTraceConfig {
  std::vector<double> offset_db;  ///< indexed by chain frame number
};

/// A scripted (or recorded) interference timeline, indexed by frame: the
/// inner stage of a trace-gated wrapper runs only while the trace is
/// inside an episode. Spans are inclusive on both ends and may come from
/// a recorded capture (frame indices of observed interference) or from a
/// chaos scenario's interference schedule (docs/SOAK.md).
struct EpisodeTrace {
  struct Span {
    std::uint64_t first = 0;
    std::uint64_t last = 0;  ///< inclusive
  };
  std::vector<Span> spans;

  [[nodiscard]] bool active(std::uint64_t frame) const noexcept {
    for (const Span& s : spans) {
      if (frame >= s.first && frame <= s.last) return true;
    }
    return false;
  }
};

// -------------------------------------------------------------- factories

std::unique_ptr<ImpairmentStage> make_gilbert_elliott(
    const GilbertElliottConfig& config);
std::unique_ptr<ImpairmentStage> make_snr_collapse(
    const SnrCollapseConfig& config);
std::unique_ptr<ImpairmentStage> make_truncation(
    const TruncationConfig& config);
std::unique_ptr<ImpairmentStage> make_sample_erasure(
    const SampleErasureConfig& config);
std::unique_ptr<ImpairmentStage> make_impulsive_noise(
    const ImpulsiveNoiseConfig& config);
std::unique_ptr<ImpairmentStage> make_clock_drift(
    const ClockDriftConfig& config);
std::unique_ptr<ImpairmentStage> make_header_corruption(
    const HeaderCorruptionConfig& config);
std::unique_ptr<ImpairmentStage> make_snr_offset_trace(
    SnrOffsetTraceConfig config);

/// Gate `inner` behind an episode trace: frames inside a span are
/// impaired, frames outside pass through untouched. The inner stage still
/// draws from the wrapper's per-frame stream when active, so gating a
/// stage on/off never perturbs what other stages see.
std::unique_ptr<ImpairmentStage> make_trace_gated(
    EpisodeTrace trace, std::unique_ptr<ImpairmentStage> inner);

// ------------------------------------------------------------------ chain

/// Ordered, seedable composition of stages. Each run() processes one frame
/// and advances the frame counter; see the determinism note above.
class ImpairmentChain {
 public:
  explicit ImpairmentChain(std::uint64_t seed = 1) noexcept : seed_(seed) {}

  ImpairmentChain& add(std::unique_ptr<ImpairmentStage> stage);

  /// Copy `tx`, apply every stage in order, return the impaired waveform.
  [[nodiscard]] CxVec run(std::span<const Cx> tx);

  /// Rewind the frame counter: the next run() reproduces the chain's
  /// first frame exactly.
  void reset() noexcept { frame_ = 0; }

  [[nodiscard]] std::size_t size() const noexcept { return stages_.size(); }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t frames_processed() const noexcept {
    return frame_;
  }

 private:
  std::uint64_t seed_;
  std::uint64_t frame_ = 0;
  std::vector<std::unique_ptr<ImpairmentStage>> stages_;
};

}  // namespace carpool::impair
