#include "impair/impair.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"
#include "obs/registry.hpp"
#include "phy/ofdm.hpp"
#include "phy/preamble.hpp"

namespace carpool::impair {
namespace {

/// Per-dimension sigma for complex Gaussian noise of total power `power`.
double noise_sigma(double power) { return std::sqrt(power / 2.0); }

class GilbertElliottInterference final : public ImpairmentStage {
 public:
  explicit GilbertElliottInterference(const GilbertElliottConfig& config)
      : config_(config) {
    if (config_.period_samples == 0) config_.period_samples = 1;
  }

  void apply(CxVec& wave, Rng& rng) const override {
    const double sigma = noise_sigma(config_.bad_noise_power);
    bool bad = rng.bernoulli(config_.p_good_to_bad);  // stationary-ish start
    std::uint64_t bad_periods = 0;
    for (std::size_t start = 0; start < wave.size();
         start += config_.period_samples) {
      if (bad) {
        ++bad_periods;
        const std::size_t end =
            std::min(wave.size(), start + config_.period_samples);
        for (std::size_t n = start; n < end; ++n) {
          wave[n] += Cx{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma)};
        }
      }
      bad = bad ? !rng.bernoulli(config_.p_bad_to_good)
                : rng.bernoulli(config_.p_good_to_bad);
    }
    if (bad_periods > 0) {
      obs::Registry::current()
          .counter("impair.ge_bad_periods")
          .add(bad_periods);
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "gilbert_elliott";
  }

 private:
  GilbertElliottConfig config_;
};

class SnrCollapse final : public ImpairmentStage {
 public:
  explicit SnrCollapse(const SnrCollapseConfig& config) : config_(config) {}

  void apply(CxVec& wave, Rng&) const override {
    const double gain = std::pow(10.0, -config_.attenuation_db / 20.0);
    for (std::size_t n = config_.start_sample; n < wave.size(); ++n) {
      wave[n] *= gain;
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "snr_collapse";
  }

 private:
  SnrCollapseConfig config_;
};

class Truncation final : public ImpairmentStage {
 public:
  explicit Truncation(const TruncationConfig& config) : config_(config) {}

  void apply(CxVec& wave, Rng&) const override {
    if (wave.size() > config_.keep_samples) {
      wave.resize(config_.keep_samples);
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "truncation";
  }

 private:
  TruncationConfig config_;
};

class SampleErasure final : public ImpairmentStage {
 public:
  explicit SampleErasure(const SampleErasureConfig& config)
      : config_(config) {}

  void apply(CxVec& wave, Rng&) const override {
    const std::size_t start = std::min(config_.start_sample, wave.size());
    const std::size_t end =
        std::min(wave.size(), start + config_.num_samples);
    std::fill(wave.begin() + static_cast<long>(start),
              wave.begin() + static_cast<long>(end), Cx{});
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "sample_erasure";
  }

 private:
  SampleErasureConfig config_;
};

class ImpulsiveNoise final : public ImpairmentStage {
 public:
  explicit ImpulsiveNoise(const ImpulsiveNoiseConfig& config)
      : config_(config) {}

  void apply(CxVec& wave, Rng& rng) const override {
    const double sigma = noise_sigma(config_.impulse_power);
    for (Cx& s : wave) {
      if (rng.bernoulli(config_.impulse_prob)) {
        s += Cx{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma)};
      }
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "impulsive_noise";
  }

 private:
  ImpulsiveNoiseConfig config_;
};

class SamplingClockDrift final : public ImpairmentStage {
 public:
  explicit SamplingClockDrift(const ClockDriftConfig& config)
      : config_(config) {}

  void apply(CxVec& wave, Rng&) const override {
    if (config_.ppm == 0.0 || wave.size() < 2) return;
    const double rate = 1.0 + config_.ppm * 1e-6;
    CxVec out;
    out.reserve(wave.size());
    // The receiver's n-th sample lands at transmitter time n * rate.
    for (std::size_t n = 0; n < wave.size(); ++n) {
      const double t = static_cast<double>(n) * rate;
      const auto i = static_cast<std::size_t>(t);
      if (i + 1 >= wave.size()) break;
      const double frac = t - static_cast<double>(i);
      out.push_back(wave[i] * (1.0 - frac) + wave[i + 1] * frac);
    }
    wave = std::move(out);
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "clock_drift";
  }

 private:
  ClockDriftConfig config_;
};

class HeaderBitCorruption final : public ImpairmentStage {
 public:
  explicit HeaderBitCorruption(const HeaderCorruptionConfig& config)
      : config_(config) {}

  void apply(CxVec& wave, Rng& rng) const override {
    const std::size_t start =
        kPreambleLen + config_.symbol_index * kSymbolLen;
    if (start + kSymbolLen > wave.size()) return;  // symbol not present
    // FFT the symbol's useful part, negate chosen data subcarriers (a sign
    // flip survives any channel scaling, so for BPSK headers each negated
    // bin is exactly one flipped coded bit), then rebuild time domain and
    // a consistent cyclic prefix.
    CxVec bins(wave.begin() + static_cast<long>(start + kCpLen),
               wave.begin() + static_cast<long>(start + kSymbolLen));
    fft_inplace(bins);
    const std::span<const std::size_t> data = data_bins();
    // Seeded partial Fisher-Yates draw of `flip_bins` distinct bins.
    std::vector<std::size_t> order(data.begin(), data.end());
    const std::size_t flips = std::min(config_.flip_bins, order.size());
    for (std::size_t i = 0; i < flips; ++i) {
      const std::size_t j = i + rng.uniform_int(order.size() - i);
      std::swap(order[i], order[j]);
      bins[order[i]] = -bins[order[i]];
    }
    CxVec time = ifft(bins);
    std::copy(time.end() - static_cast<long>(kCpLen), time.end(),
              wave.begin() + static_cast<long>(start));
    std::copy(time.begin(), time.end(),
              wave.begin() + static_cast<long>(start + kCpLen));
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "header_corruption";
  }

 private:
  HeaderCorruptionConfig config_;
};

class SnrOffsetTrace final : public ImpairmentStage {
 public:
  explicit SnrOffsetTrace(SnrOffsetTraceConfig config)
      : config_(std::move(config)) {}

  void apply(CxVec& wave, Rng& rng) const override {
    apply_frame(wave, rng, 0);
  }

  void apply_frame(CxVec& wave, Rng& /*rng*/,
                   std::uint64_t frame) const override {
    if (frame >= config_.offset_db.size()) return;
    const double scale = std::pow(10.0, config_.offset_db[frame] / 20.0);
    if (scale == 1.0) return;
    obs::Registry::current().counter("impair.snr_offset_frames").add();
    for (Cx& s : wave) s *= scale;
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "snr_offset_trace";
  }

 private:
  SnrOffsetTraceConfig config_;
};

class TraceGated final : public ImpairmentStage {
 public:
  TraceGated(EpisodeTrace trace, std::unique_ptr<ImpairmentStage> inner)
      : trace_(std::move(trace)), inner_(std::move(inner)) {}

  void apply(CxVec& wave, Rng& rng) const override {
    // Frame-unaware call path (no index available): treat as frame 0.
    apply_frame(wave, rng, 0);
  }

  void apply_frame(CxVec& wave, Rng& rng,
                   std::uint64_t frame) const override {
    if (!trace_.active(frame)) return;
    obs::Registry::current().counter("impair.trace_gated_frames").add();
    inner_->apply_frame(wave, rng, frame);
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "trace_gated";
  }

 private:
  EpisodeTrace trace_;
  std::unique_ptr<ImpairmentStage> inner_;
};

}  // namespace

std::unique_ptr<ImpairmentStage> make_gilbert_elliott(
    const GilbertElliottConfig& config) {
  return std::make_unique<GilbertElliottInterference>(config);
}
std::unique_ptr<ImpairmentStage> make_snr_collapse(
    const SnrCollapseConfig& config) {
  return std::make_unique<SnrCollapse>(config);
}
std::unique_ptr<ImpairmentStage> make_truncation(
    const TruncationConfig& config) {
  return std::make_unique<Truncation>(config);
}
std::unique_ptr<ImpairmentStage> make_sample_erasure(
    const SampleErasureConfig& config) {
  return std::make_unique<SampleErasure>(config);
}
std::unique_ptr<ImpairmentStage> make_impulsive_noise(
    const ImpulsiveNoiseConfig& config) {
  return std::make_unique<ImpulsiveNoise>(config);
}
std::unique_ptr<ImpairmentStage> make_clock_drift(
    const ClockDriftConfig& config) {
  return std::make_unique<SamplingClockDrift>(config);
}
std::unique_ptr<ImpairmentStage> make_header_corruption(
    const HeaderCorruptionConfig& config) {
  return std::make_unique<HeaderBitCorruption>(config);
}

std::unique_ptr<ImpairmentStage> make_snr_offset_trace(
    SnrOffsetTraceConfig config) {
  return std::make_unique<SnrOffsetTrace>(std::move(config));
}

std::unique_ptr<ImpairmentStage> make_trace_gated(
    EpisodeTrace trace, std::unique_ptr<ImpairmentStage> inner) {
  if (!inner) {
    throw std::invalid_argument("make_trace_gated: null inner stage");
  }
  return std::make_unique<TraceGated>(std::move(trace), std::move(inner));
}

ImpairmentChain& ImpairmentChain::add(
    std::unique_ptr<ImpairmentStage> stage) {
  stages_.push_back(std::move(stage));
  return *this;
}

CxVec ImpairmentChain::run(std::span<const Cx> tx) {
  CxVec wave(tx.begin(), tx.end());
  // Derive (frame, stage)-addressed streams so every stage sees the same
  // randomness no matter what its neighbours consume.
  std::uint64_t sm = seed_ ^ (0x9e3779b97f4a7c15ULL * (frame_ + 1));
  const std::uint64_t frame_key = splitmix64(sm);
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    std::uint64_t stage_sm = frame_key ^ (0xbf58476d1ce4e5b9ULL * (i + 1));
    Rng rng(splitmix64(stage_sm));
    stages_[i]->apply_frame(wave, rng, frame_);
  }
  ++frame_;
  obs::Registry::current().counter("impair.frames").add();
  return wave;
}

}  // namespace carpool::impair
