#include "fec/scrambler.hpp"

#include <stdexcept>

namespace carpool {

Scrambler::Scrambler(std::uint8_t seed) : state_(0) { reset(seed); }

void Scrambler::reset(std::uint8_t seed) {
  seed &= 0x7F;
  if (seed == 0) throw std::invalid_argument("Scrambler seed must be nonzero");
  state_ = seed;
}

std::uint8_t Scrambler::next_bit() noexcept {
  // Feedback = x^7 xor x^4 (bits 6 and 3 of the 7-bit register).
  const std::uint8_t feedback =
      static_cast<std::uint8_t>(((state_ >> 6) ^ (state_ >> 3)) & 1u);
  state_ = static_cast<std::uint8_t>(((state_ << 1) | feedback) & 0x7F);
  return feedback;
}

Bits Scrambler::process(std::span<const std::uint8_t> bits) {
  Bits out;
  out.reserve(bits.size());
  for (const std::uint8_t bit : bits) {
    out.push_back(static_cast<std::uint8_t>((bit ^ next_bit()) & 1u));
  }
  return out;
}

}  // namespace carpool
