#pragma once

// IEEE 802.11a/g block interleaver (Clause 17.3.5.7). Operates on one OFDM
// symbol's worth of coded bits (N_CBPS). Two permutations: the first
// spreads adjacent coded bits across nonadjacent subcarriers, the second
// alternates them between significant/insignificant constellation bits.

#include <cstddef>
#include <span>
#include <vector>

#include "common/bits.hpp"
#include "fec/convolutional.hpp"

namespace carpool {

class Interleaver {
 public:
  /// `n_cbps`: coded bits per OFDM symbol; `n_bpsc`: coded bits per
  /// subcarrier (1/2/4/6 for BPSK/QPSK/16-QAM/64-QAM). n_cbps must be a
  /// multiple of both 16 and n_bpsc.
  Interleaver(std::size_t n_cbps, std::size_t n_bpsc);

  [[nodiscard]] std::size_t block_size() const noexcept { return forward_.size(); }

  /// Interleave exactly one block of n_cbps bits.
  [[nodiscard]] Bits interleave(std::span<const std::uint8_t> block) const;

  /// Deinterleave one block of soft values.
  [[nodiscard]] SoftBits deinterleave(std::span<const double> block) const;

  /// Deinterleave one block of hard bits.
  [[nodiscard]] Bits deinterleave(std::span<const std::uint8_t> block) const;

 private:
  // forward_[k] = output position of input bit k.
  std::vector<std::size_t> forward_;
  std::vector<std::size_t> inverse_;
};

}  // namespace carpool
