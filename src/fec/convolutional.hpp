#pragma once

// IEEE 802.11 convolutional code: constraint length K = 7, rate 1/2, with
// generator polynomials g0 = 133 (octal) and g1 = 171 (octal). Higher rates
// (2/3, 3/4) are derived by puncturing (Clause 17.3.5.6).
//
// Soft values: a coded bit is represented on the air side as a double in
// [-1, +1]: sign encodes the bit (+1 -> bit 1, -1 -> bit 0), magnitude is
// confidence. 0.0 marks an erasure (e.g. a punctured position).

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.hpp"

namespace carpool {

enum class CodeRate { kHalf, kTwoThirds, kThreeQuarters, kFiveSixths };

/// Numerator/denominator of a coding rate.
struct RateFraction {
  int numerator;
  int denominator;
};

RateFraction rate_fraction(CodeRate rate) noexcept;

/// Rate as a double (0.5, 0.6667, 0.75, 0.8333).
double rate_value(CodeRate rate) noexcept;

using SoftBits = std::vector<double>;

/// Convert hard bits to ideal soft values (+/-1).
SoftBits bits_to_soft(std::span<const std::uint8_t> bits);

class ConvolutionalCode {
 public:
  static constexpr int kConstraintLength = 7;
  static constexpr unsigned kNumStates = 1u << (kConstraintLength - 1);
  static constexpr unsigned kG0 = 0133;  // octal
  static constexpr unsigned kG1 = 0171;  // octal

  /// Encode at rate 1/2; output has 2 * input.size() bits (the caller is
  /// responsible for appending tail bits if termination is desired).
  [[nodiscard]] static Bits encode(std::span<const std::uint8_t> data);

  /// Encode `data`, appending K-1 zero tail bits to terminate the trellis,
  /// then puncture to `rate`.
  [[nodiscard]] static Bits encode_terminated(std::span<const std::uint8_t> data,
                                              CodeRate rate);

  /// Puncture a rate-1/2 coded stream to the target rate.
  [[nodiscard]] static Bits puncture(std::span<const std::uint8_t> coded,
                                     CodeRate rate);

  /// Insert 0.0 erasures where bits were punctured, restoring the rate-1/2
  /// positions expected by the Viterbi decoder.
  [[nodiscard]] static SoftBits depuncture(std::span<const double> soft,
                                           CodeRate rate);

  /// Number of coded (post-puncturing) bits produced for `data_bits`
  /// information bits including the K-1 tail bits.
  [[nodiscard]] static std::size_t coded_length(std::size_t data_bits,
                                                CodeRate rate);
};

}  // namespace carpool
