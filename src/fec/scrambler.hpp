#pragma once

// IEEE 802.11 frame-synchronous scrambler (Clause 17.3.5.4): a 7-bit LFSR
// with generator polynomial S(x) = x^7 + x^4 + 1. The same operation both
// scrambles and descrambles.
//
// The SIG field is *not* scrambled — the Carpool receiver relies on this to
// read subframe lengths without descrambling state (paper Sec. 4.1).

#include <cstdint>
#include <span>

#include "common/bits.hpp"

namespace carpool {

class Scrambler {
 public:
  /// `seed` is the initial 7-bit LFSR state; must be nonzero (an all-zero
  /// state would leave data unscrambled forever).
  explicit Scrambler(std::uint8_t seed = 0x5D);

  /// Scramble (or descramble) `bits`, returning a new vector.
  [[nodiscard]] Bits process(std::span<const std::uint8_t> bits);

  /// Advance the LFSR one step and return the generated scrambling bit.
  std::uint8_t next_bit() noexcept;

  /// Reset to a new seed.
  void reset(std::uint8_t seed);

 private:
  std::uint8_t state_;
};

}  // namespace carpool
