#include "fec/convolutional.hpp"

#include <array>
#include <bit>
#include <stdexcept>

namespace carpool {
namespace {

// Puncturing patterns over one period of the rate-1/2 output stream
// (A1 B1 A2 B2 ... order). `true` = transmitted, `false` = punctured.
// 2/3: keep A1 B1 A2 (drop B2).  3/4: keep A1 B1 A2 B3 (drop B2, A3).
// 5/6 (802.11n HT): keep A1 B1 A2 B3 A4 B5 out of ten.
constexpr std::array<bool, 4> kKeep23{true, true, true, false};
constexpr std::array<bool, 6> kKeep34{true, true, true, false, false, true};
constexpr std::array<bool, 10> kKeep56{true,  true,  true,  false, false,
                                       true,  true,  false, false, true};

std::span<const bool> keep_mask(CodeRate rate) {
  switch (rate) {
    case CodeRate::kHalf:
      return {};
    case CodeRate::kTwoThirds:
      return kKeep23;
    case CodeRate::kThreeQuarters:
      return kKeep34;
    case CodeRate::kFiveSixths:
      return kKeep56;
  }
  throw std::logic_error("unknown CodeRate");
}

std::uint8_t parity(unsigned value) {
  return static_cast<std::uint8_t>(std::popcount(value) & 1);
}

}  // namespace

RateFraction rate_fraction(CodeRate rate) noexcept {
  switch (rate) {
    case CodeRate::kHalf:
      return {1, 2};
    case CodeRate::kTwoThirds:
      return {2, 3};
    case CodeRate::kThreeQuarters:
      return {3, 4};
    case CodeRate::kFiveSixths:
      return {5, 6};
  }
  return {1, 2};
}

double rate_value(CodeRate rate) noexcept {
  const RateFraction f = rate_fraction(rate);
  return static_cast<double>(f.numerator) / static_cast<double>(f.denominator);
}

SoftBits bits_to_soft(std::span<const std::uint8_t> bits) {
  SoftBits out;
  out.reserve(bits.size());
  for (const std::uint8_t bit : bits) out.push_back(bit ? 1.0 : -1.0);
  return out;
}

Bits ConvolutionalCode::encode(std::span<const std::uint8_t> data) {
  Bits out;
  out.reserve(data.size() * 2);
  unsigned shift = 0;  // holds the last K-1 input bits
  for (const std::uint8_t bit : data) {
    const unsigned window = ((bit & 1u) << (kConstraintLength - 1)) | shift;
    out.push_back(parity(window & kG0));
    out.push_back(parity(window & kG1));
    shift = window >> 1;
  }
  return out;
}

Bits ConvolutionalCode::encode_terminated(std::span<const std::uint8_t> data,
                                          CodeRate rate) {
  Bits padded(data.begin(), data.end());
  padded.insert(padded.end(), kConstraintLength - 1, 0);
  return puncture(encode(padded), rate);
}

Bits ConvolutionalCode::puncture(std::span<const std::uint8_t> coded,
                                 CodeRate rate) {
  if (rate == CodeRate::kHalf) return Bits(coded.begin(), coded.end());
  const auto mask = keep_mask(rate);
  Bits out;
  out.reserve(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    if (mask[i % mask.size()]) out.push_back(coded[i]);
  }
  return out;
}

SoftBits ConvolutionalCode::depuncture(std::span<const double> soft,
                                       CodeRate rate) {
  if (rate == CodeRate::kHalf) return SoftBits(soft.begin(), soft.end());
  const auto mask = keep_mask(rate);
  SoftBits out;
  out.reserve(soft.size() * 2);
  std::size_t in = 0;
  for (std::size_t pos = 0; in < soft.size(); ++pos) {
    if (mask[pos % mask.size()]) {
      out.push_back(soft[in++]);
    } else {
      out.push_back(0.0);  // erasure
    }
  }
  // Complete the trailing period with erasures so length is a multiple of 2.
  while (out.size() % 2 != 0) out.push_back(0.0);
  return out;
}

std::size_t ConvolutionalCode::coded_length(std::size_t data_bits,
                                            CodeRate rate) {
  const std::size_t full = 2 * (data_bits + kConstraintLength - 1);
  if (rate == CodeRate::kHalf) return full;
  const auto mask = keep_mask(rate);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < full; ++i) {
    if (mask[i % mask.size()]) ++kept;
  }
  return kept;
}

}  // namespace carpool
