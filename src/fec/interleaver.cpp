#include "fec/interleaver.hpp"

#include <algorithm>
#include <stdexcept>

namespace carpool {

Interleaver::Interleaver(std::size_t n_cbps, std::size_t n_bpsc) {
  if (n_cbps == 0 || n_cbps % 16 != 0 || n_bpsc == 0 || n_cbps % n_bpsc != 0) {
    throw std::invalid_argument("Interleaver: invalid n_cbps/n_bpsc");
  }
  const std::size_t s = std::max<std::size_t>(n_bpsc / 2, 1);
  forward_.resize(n_cbps);
  inverse_.resize(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k) {
    const std::size_t i = (n_cbps / 16) * (k % 16) + k / 16;
    const std::size_t j =
        s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
    forward_[k] = j;
    inverse_[j] = k;
  }
}

Bits Interleaver::interleave(std::span<const std::uint8_t> block) const {
  if (block.size() != forward_.size()) {
    throw std::invalid_argument("Interleaver: block size mismatch");
  }
  Bits out(block.size());
  for (std::size_t k = 0; k < block.size(); ++k) out[forward_[k]] = block[k];
  return out;
}

SoftBits Interleaver::deinterleave(std::span<const double> block) const {
  if (block.size() != forward_.size()) {
    throw std::invalid_argument("Interleaver: block size mismatch");
  }
  SoftBits out(block.size());
  for (std::size_t j = 0; j < block.size(); ++j) out[inverse_[j]] = block[j];
  return out;
}

Bits Interleaver::deinterleave(std::span<const std::uint8_t> block) const {
  if (block.size() != forward_.size()) {
    throw std::invalid_argument("Interleaver: block size mismatch");
  }
  Bits out(block.size());
  for (std::size_t j = 0; j < block.size(); ++j) out[inverse_[j]] = block[j];
  return out;
}

}  // namespace carpool
