#pragma once

// Soft-decision Viterbi decoder for the 802.11 K=7 rate-1/2 convolutional
// code, with erasure support for punctured positions (soft value 0.0).
//
// The add-compare-select forward pass runs on the active dsp kernel
// backend (dsp/kernels.hpp) — scalar reference or a SIMD tier that
// sweeps all 64 states in vector lanes — with bit-identical path metrics
// either way; this class keeps the trellis traceback.

#include <span>

#include "fec/convolutional.hpp"

namespace carpool {

class ViterbiDecoder {
 public:
  ViterbiDecoder() = default;

  /// Decode a rate-1/2 soft stream (one pair of soft values per trellis
  /// step). `soft.size()` must be even. Returns one bit per step; if
  /// `terminated` the traceback starts from the all-zero state, which is
  /// correct for streams produced by encode_terminated().
  [[nodiscard]] Bits decode(std::span<const double> soft,
                            bool terminated = true) const;

  /// Full receive path: depuncture `soft` from `rate` back to rate 1/2,
  /// decode, and strip the K-1 tail bits. `data_bits` is the number of
  /// information bits expected (pre-tail).
  [[nodiscard]] Bits decode_punctured(std::span<const double> soft,
                                      CodeRate rate,
                                      std::size_t data_bits) const;
};

}  // namespace carpool
