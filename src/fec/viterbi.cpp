#include "fec/viterbi.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>
#include <vector>

#include "obs/timer.hpp"

namespace carpool {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint8_t parity(unsigned value) {
  return static_cast<std::uint8_t>(std::popcount(value) & 1);
}

}  // namespace

ViterbiDecoder::ViterbiDecoder() {
  constexpr int kShift = ConvolutionalCode::kConstraintLength - 1;  // 6
  for (unsigned state = 0; state < ConvolutionalCode::kNumStates; ++state) {
    for (unsigned bit = 0; bit <= 1; ++bit) {
      const unsigned window = (bit << kShift) | state;
      Branch& br = branch_[state][bit];
      br.next_state = window >> 1;
      br.expected0 = parity(window & ConvolutionalCode::kG0) ? 1.0 : -1.0;
      br.expected1 = parity(window & ConvolutionalCode::kG1) ? 1.0 : -1.0;
    }
  }
}

Bits ViterbiDecoder::decode(std::span<const double> soft,
                            bool terminated) const {
  if (soft.size() % 2 != 0) {
    throw std::invalid_argument("ViterbiDecoder: soft size must be even");
  }
  OBS_TIMED_SPAN("fec.viterbi_decode");
  const std::size_t steps = soft.size() / 2;
  constexpr unsigned kStates = ConvolutionalCode::kNumStates;

  std::vector<double> metric(kStates, kInf);
  std::vector<double> next_metric(kStates, kInf);
  metric[0] = 0.0;  // encoder starts in the all-zero state

  // decisions[t][next_state] = (prev_state << 1) | input_bit
  std::vector<std::vector<std::uint16_t>> decisions(
      steps, std::vector<std::uint16_t>(kStates, 0));

  for (std::size_t t = 0; t < steps; ++t) {
    const double r0 = soft[2 * t];
    const double r1 = soft[2 * t + 1];
    std::fill(next_metric.begin(), next_metric.end(), kInf);
    for (unsigned state = 0; state < kStates; ++state) {
      const double pm = metric[state];
      if (pm == kInf) continue;
      for (unsigned bit = 0; bit <= 1; ++bit) {
        const Branch& br = branch_[state][bit];
        // Negative correlation metric: smaller is better; erasures (0.0)
        // contribute nothing.
        const double m = pm - (br.expected0 * r0 + br.expected1 * r1);
        if (m < next_metric[br.next_state]) {
          next_metric[br.next_state] = m;
          decisions[t][br.next_state] =
              static_cast<std::uint16_t>((state << 1) | bit);
        }
      }
    }
    metric.swap(next_metric);
  }

  unsigned state = 0;
  if (!terminated) {
    state = static_cast<unsigned>(std::distance(
        metric.begin(), std::min_element(metric.begin(), metric.end())));
  }

  Bits out(steps, 0);
  for (std::size_t t = steps; t-- > 0;) {
    const std::uint16_t decision = decisions[t][state];
    out[t] = static_cast<std::uint8_t>(decision & 1u);
    state = decision >> 1;
  }
  return out;
}

Bits ViterbiDecoder::decode_punctured(std::span<const double> soft,
                                      CodeRate rate,
                                      std::size_t data_bits) const {
  const SoftBits full = ConvolutionalCode::depuncture(soft, rate);
  Bits decoded = decode(full, /*terminated=*/true);
  if (decoded.size() < data_bits) {
    throw std::invalid_argument("decode_punctured: stream shorter than data");
  }
  decoded.resize(data_bits);  // strip tail (and any depuncture padding)
  return decoded;
}

}  // namespace carpool
