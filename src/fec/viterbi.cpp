#include "fec/viterbi.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <vector>

#include "dsp/kernels.hpp"
#include "obs/timer.hpp"

namespace carpool {

static_assert(ConvolutionalCode::kNumStates == dsp::kViterbiStates);
static_assert(ConvolutionalCode::kG0 == dsp::kViterbiG0);
static_assert(ConvolutionalCode::kG1 == dsp::kViterbiG1);

Bits ViterbiDecoder::decode(std::span<const double> soft,
                            bool terminated) const {
  if (soft.size() % 2 != 0) {
    throw std::invalid_argument("ViterbiDecoder: soft size must be even");
  }
  OBS_TIMED_SPAN("fec.viterbi_decode");
  const std::size_t steps = soft.size() / 2;

  // Forward pass (add-compare-select) on the active kernel backend. One
  // select word per step: bit n set means the surviving edge into
  // next-state n comes from the odd predecessor 2*(n & 31) + 1.
  std::vector<std::uint64_t> sel(steps);
  std::array<double, dsp::kViterbiStates> metric;
  dsp::active_backend().viterbi_forward(soft.data(), steps, sel.data(),
                                        metric.data());

  unsigned state = 0;
  if (!terminated) {
    state = static_cast<unsigned>(std::distance(
        metric.begin(), std::min_element(metric.begin(), metric.end())));
  }

  // Traceback: the encoder input bit on every edge into state n is
  // n >> 5, and the chosen predecessor is 2*(n & 31) + select-bit.
  Bits out(steps, 0);
  for (std::size_t t = steps; t-- > 0;) {
    const unsigned pred_odd =
        static_cast<unsigned>((sel[t] >> state) & 1u);
    out[t] = static_cast<std::uint8_t>(state >> 5);
    state = 2 * (state & 31u) + pred_odd;
  }
  return out;
}

Bits ViterbiDecoder::decode_punctured(std::span<const double> soft,
                                      CodeRate rate,
                                      std::size_t data_bits) const {
  const SoftBits full = ConvolutionalCode::depuncture(soft, rate);
  Bits decoded = decode(full, /*terminated=*/true);
  if (decoded.size() < data_bits) {
    throw std::invalid_argument("decode_punctured: stream shorter than data");
  }
  decoded.resize(data_bits);  // strip tail (and any depuncture padding)
  return decoded;
}

}  // namespace carpool
