#pragma once

// Unit helpers shared across PHY / channel / MAC code.
//
// Conventions:
//  - time is double seconds unless a name says otherwise (`_us` suffix)
//  - power ratios: `db` <-> linear power; `db_amplitude` for field quantities

#include <cmath>
#include <cstdint>

namespace carpool {

constexpr double kMicro = 1e-6;
constexpr double kMilli = 1e-3;

/// Convert a power ratio to decibels.
inline double linear_to_db(double linear) { return 10.0 * std::log10(linear); }

/// Convert decibels to a power ratio.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

/// Convert an amplitude (field) ratio to decibels.
inline double amplitude_to_db(double amp) { return 20.0 * std::log10(amp); }

/// Convert decibels to an amplitude (field) ratio.
inline double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }

/// dBm to Watts.
inline double dbm_to_watts(double dbm) { return db_to_linear(dbm) * 1e-3; }

/// Watts to dBm.
inline double watts_to_dbm(double watts) { return linear_to_db(watts * 1e3); }

/// Seconds from microseconds.
constexpr double us(double microseconds) { return microseconds * kMicro; }

/// Seconds from milliseconds.
constexpr double ms(double milliseconds) { return milliseconds * kMilli; }

/// Bits in `bytes`.
constexpr std::uint64_t bits(std::uint64_t bytes) { return bytes * 8; }

/// Airtime in seconds of `num_bits` at `rate_bps`.
constexpr double airtime(std::uint64_t num_bits, double rate_bps) {
  return static_cast<double>(num_bits) / rate_bps;
}

}  // namespace carpool
