#pragma once

// Hashing primitives for the coded Bloom filter (A-HDR).
//
// The paper assigns hash *sets* to subframe positions: the receiver of the
// i-th subframe is hashed with the i-th hash set (Sec. 4.1). We realise a
// hash set as a keyed family: member j of set i is `keyed_hash(data, key)`
// where the key mixes (i, j). Each hash is assumed to select bit positions
// uniformly, which the tests verify statistically.

#include <cstdint>
#include <span>

namespace carpool {

/// FNV-1a 64-bit over bytes.
constexpr std::uint64_t fnv1a64(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Strong 64-bit finalizer (Stafford's Mix13, as used in SplitMix64).
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Keyed hash: independent-looking hashes of `data` for distinct keys.
constexpr std::uint64_t keyed_hash(std::span<const std::uint8_t> data,
                                   std::uint64_t key) noexcept {
  return mix64(fnv1a64(data) ^ mix64(key ^ 0x9e3779b97f4a7c15ULL));
}

}  // namespace carpool
