#include "common/crc.hpp"

#include <array>

namespace carpool {
namespace {

std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = make_crc32_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint16_t BitCrc::compute(std::span<const std::uint8_t> bits) const {
  const std::uint16_t mask =
      static_cast<std::uint16_t>((1u << width_) - 1u);
  const std::uint16_t top = static_cast<std::uint16_t>(1u << (width_ - 1));
  std::uint16_t reg = mask;  // all-ones init
  for (const std::uint8_t bit : bits) {
    const bool feedback = ((reg & top) != 0) != ((bit & 1u) != 0);
    reg = static_cast<std::uint16_t>((reg << 1) & mask);
    if (feedback) reg ^= poly_;
  }
  return static_cast<std::uint16_t>(reg & mask);
}

}  // namespace carpool
