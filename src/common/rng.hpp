#pragma once

// Deterministic pseudo-random number generation for reproducible
// experiments. Every stochastic component in the library takes an explicit
// 64-bit seed; independent sub-streams are derived with split().

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace carpool {

/// SplitMix64: used for seeding and stream-splitting. Passes BigCrush when
/// used as a generator on its own; here it mainly whitens user seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG (Blackman & Vigna). Fast, high quality, 2^256-1
/// period. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child stream. Children of distinct tags (or of
  /// RNGs in different states) are statistically independent for our
  /// purposes.
  [[nodiscard]] Rng split(std::uint64_t tag = 0) noexcept {
    std::uint64_t sm = (*this)() ^ (tag * 0x9e3779b97f4a7c15ULL + 0x1234abcdULL);
    Rng child(splitmix64(sm));
    return child;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t uniform_int(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Marsaglia polar method.
  double gaussian() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0, v = 0, s = 0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Exponential with given mean (mean = 1/rate).
  double exponential(double mean) noexcept {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace carpool
