#pragma once

// Small statistics helpers used by benches and the MAC simulator: running
// mean/variance (Welford), rate counters, and percentile extraction.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

namespace carpool {

/// Running mean / variance without storing samples (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples; offers percentiles, the empirical CDF, and histograms.
/// The sorted order is computed lazily and cached (invalidated by add), so
/// extracting several percentiles sorts once, not per query.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_dirty_ = true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (const double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  /// p in [0, 1]; nearest-rank percentile.
  [[nodiscard]] double percentile(double p) const {
    if (samples_.empty()) throw std::logic_error("percentile of empty set");
    if (p < 0.0 || p > 1.0) throw std::invalid_argument("percentile range");
    const std::vector<double>& s = sorted();
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(s.size() - 1) + 0.5);
    return s[std::min(rank, s.size() - 1)];
  }

  /// Empirical CDF value at x: fraction of samples <= x.
  [[nodiscard]] double cdf(double x) const {
    if (samples_.empty()) return 0.0;
    const std::vector<double>& s = sorted();
    const auto below = static_cast<std::size_t>(
        std::distance(s.begin(), std::upper_bound(s.begin(), s.end(), x)));
    return static_cast<double>(below) / static_cast<double>(s.size());
  }

  /// Equal-width histogram over [lo, hi): counts[i] holds the samples in
  /// [lo + i*w, lo + (i+1)*w); values outside the range clamp to the first
  /// or last bin. The obs:: exporters reuse this to serialize delay CDFs.
  [[nodiscard]] std::vector<std::size_t> histogram(std::size_t bins,
                                                   double lo,
                                                   double hi) const {
    if (bins == 0) throw std::invalid_argument("histogram: zero bins");
    if (!(lo < hi)) throw std::invalid_argument("histogram: empty range");
    std::vector<std::size_t> counts(bins, 0);
    const double width = (hi - lo) / static_cast<double>(bins);
    for (const double s : samples_) {
      const auto idx = static_cast<std::size_t>(
          std::clamp((s - lo) / width, 0.0, static_cast<double>(bins - 1)));
      ++counts[idx];
    }
    return counts;
  }

  /// Histogram auto-ranged to [min, max] of the samples.
  [[nodiscard]] std::vector<std::size_t> histogram(std::size_t bins) const {
    if (samples_.empty()) return std::vector<std::size_t>(bins, 0);
    const std::vector<double>& s = sorted();
    const double lo = s.front();
    const double hi = s.back();
    if (lo == hi) {
      // All samples identical: everything lands in the first bin.
      std::vector<std::size_t> counts(bins, 0);
      if (bins > 0) counts[0] = s.size();
      return counts;
    }
    return histogram(bins, lo, std::nextafter(hi, kDoubleMax));
  }

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

  /// Cached ascending order of the samples.
  [[nodiscard]] const std::vector<double>& sorted() const {
    if (sorted_dirty_) {
      sorted_ = samples_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_dirty_ = false;
    }
    return sorted_;
  }

 private:
  static constexpr double kDoubleMax = std::numeric_limits<double>::max();

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_dirty_ = false;
};

/// Counts successes over trials; reports a ratio (e.g. BER, PER, FPR).
class RatioCounter {
 public:
  void add(bool hit) noexcept {
    ++trials_;
    if (hit) ++hits_;
  }

  void add(std::size_t hits, std::size_t trials) noexcept {
    hits_ += hits;
    trials_ += trials;
  }

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t trials() const noexcept { return trials_; }

  [[nodiscard]] double ratio() const noexcept {
    return trials_ == 0 ? 0.0
                        : static_cast<double>(hits_) /
                              static_cast<double>(trials_);
  }

 private:
  std::size_t hits_ = 0;
  std::size_t trials_ = 0;
};

}  // namespace carpool
