#include "common/mac_address.hpp"

#include <cstdio>

namespace carpool {

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                octets_[0], octets_[1], octets_[2], octets_[3], octets_[4],
                octets_[5]);
  return std::string(buf);
}

}  // namespace carpool
