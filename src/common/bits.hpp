#pragma once

// Bit-level containers and I/O used throughout the PHY: frames are byte
// vectors at the MAC boundary and bit vectors (`Bits`, one bit per element)
// inside the coding/modulation chain.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace carpool {

/// One bit per element; value is 0 or 1. A plain vector keeps the coding
/// chain simple and fast enough for simulation purposes.
using Bits = std::vector<std::uint8_t>;
using Bytes = std::vector<std::uint8_t>;

/// Expand bytes to bits, LSB-first within each byte (802.11 convention).
Bits bytes_to_bits(std::span<const std::uint8_t> bytes);

/// Pack bits (LSB-first per byte) back to bytes. Throws
/// std::invalid_argument if bits.size() is not a multiple of 8.
Bytes bits_to_bytes(std::span<const std::uint8_t> bits);

/// Number of positions where the two bit strings differ, compared over the
/// shorter length. Size mismatch beyond that counts as errors too.
std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b);

/// Sequential bit writer (LSB-first per byte).
class BitWriter {
 public:
  void put_bit(std::uint8_t bit) { bits_.push_back(bit & 1u); }

  /// Write `count` bits of `value`, least-significant bit first.
  void put_bits(std::uint64_t value, std::size_t count) {
    if (count > 64) throw std::invalid_argument("BitWriter: count > 64");
    for (std::size_t i = 0; i < count; ++i) put_bit((value >> i) & 1u);
  }

  void append(std::span<const std::uint8_t> more) {
    bits_.insert(bits_.end(), more.begin(), more.end());
  }

  [[nodiscard]] const Bits& bits() const noexcept { return bits_; }
  [[nodiscard]] Bits take() noexcept { return std::move(bits_); }
  [[nodiscard]] std::size_t size() const noexcept { return bits_.size(); }

 private:
  Bits bits_;
};

/// Sequential bit reader (LSB-first per byte).
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bits) : bits_(bits) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bits_.size() - pos_;
  }

  std::uint8_t get_bit() {
    if (pos_ >= bits_.size()) throw std::out_of_range("BitReader exhausted");
    return bits_[pos_++] & 1u;
  }

  /// Read `count` bits, least-significant bit first.
  std::uint64_t get_bits(std::size_t count) {
    if (count > 64) throw std::invalid_argument("BitReader: count > 64");
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < count; ++i) {
      value |= static_cast<std::uint64_t>(get_bit()) << i;
    }
    return value;
  }

  void skip(std::size_t count) {
    if (count > remaining()) throw std::out_of_range("BitReader skip");
    pos_ += count;
  }

 private:
  std::span<const std::uint8_t> bits_;
  std::size_t pos_ = 0;
};

}  // namespace carpool
