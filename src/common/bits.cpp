#include "common/bits.hpp"

#include <algorithm>

namespace carpool {

Bits bytes_to_bits(std::span<const std::uint8_t> bytes) {
  Bits out;
  out.reserve(bytes.size() * 8);
  for (const std::uint8_t byte : bytes) {
    for (int i = 0; i < 8; ++i) out.push_back((byte >> i) & 1u);
  }
  return out;
}

Bytes bits_to_bytes(std::span<const std::uint8_t> bits) {
  if (bits.size() % 8 != 0) {
    throw std::invalid_argument("bits_to_bytes: size not a multiple of 8");
  }
  Bytes out(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    out[i / 8] |= static_cast<std::uint8_t>((bits[i] & 1u) << (i % 8));
  }
  return out;
}

std::size_t hamming_distance(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b) {
  const std::size_t common = std::min(a.size(), b.size());
  std::size_t distance = a.size() > b.size() ? a.size() - b.size()
                                             : b.size() - a.size();
  for (std::size_t i = 0; i < common; ++i) {
    distance += static_cast<std::size_t>((a[i] ^ b[i]) & 1u);
  }
  return distance;
}

}  // namespace carpool
