#pragma once

// Cyclic redundancy checks.
//
// Two families are provided:
//  - crc32 over bytes: the FCS that protects whole (sub)frames, as in
//    IEEE 802.11.
//  - BitCrc: a tiny generic bit-serial CRC used for the *symbol-level*
//    checksums carried over the phase offset side channel (the paper's
//    CRC-2 per OFDM symbol, Sec. 5.2).

#include <cstdint>
#include <span>
#include <stdexcept>

#include "common/bits.hpp"

namespace carpool {

/// IEEE 802.3/802.11 CRC-32 (reflected, poly 0xEDB88320), over bytes.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Generic bit-serial CRC of up to 16 bits over a bit string.
///
/// `width` is the CRC size in bits; `poly` is the generator polynomial
/// without the leading x^width term (normal, non-reflected form). The
/// register starts at all-ones, which protects leading-zero bit strings.
class BitCrc {
 public:
  constexpr BitCrc(unsigned width, std::uint16_t poly)
      : width_(width), poly_(poly) {
    if (width == 0 || width > 16) {
      throw std::invalid_argument("BitCrc: width must be in [1,16]");
    }
  }

  [[nodiscard]] std::uint16_t compute(std::span<const std::uint8_t> bits) const;

  [[nodiscard]] unsigned width() const noexcept { return width_; }

 private:
  unsigned width_;
  std::uint16_t poly_;
};

/// CRC-2 with polynomial x^2 + x + 1: the per-symbol checksum the paper
/// settles on for the phase offset side channel.
inline const BitCrc& crc2() {
  static const BitCrc kCrc2{2, 0x3};
  return kCrc2;
}

/// CRC-4-ITU (x^4 + x + 1), used in the granularity trade-off study.
inline const BitCrc& crc4() {
  static const BitCrc kCrc4{4, 0x3};
  return kCrc4;
}

/// CRC-8 (x^8 + x^2 + x + 1).
inline const BitCrc& crc8() {
  static const BitCrc kCrc8{8, 0x07};
  return kCrc8;
}

/// CRC-16-CCITT (x^16 + x^12 + x^5 + 1).
inline const BitCrc& crc16() {
  static const BitCrc kCrc16{16, 0x1021};
  return kCrc16;
}

}  // namespace carpool
