#pragma once

// 48-bit IEEE MAC addresses. Receivers are identified by MAC address in
// the A-HDR Bloom filter and in the MAC simulator.

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>

namespace carpool {

class MacAddress {
 public:
  constexpr MacAddress() = default;

  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets) noexcept
      : octets_(octets) {}

  /// Build from the low 48 bits of `value` (big-endian octet order).
  constexpr explicit MacAddress(std::uint64_t value) noexcept {
    for (int i = 5; i >= 0; --i) {
      octets_[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(value & 0xFFu);
      value >>= 8;
    }
  }

  /// A locally-administered unicast address derived from a station id;
  /// convenient for simulations.
  static constexpr MacAddress for_station(std::uint32_t station_id) noexcept {
    // 0x02 => locally administered, unicast.
    return MacAddress{0x020000000000ULL | station_id};
  }

  [[nodiscard]] constexpr std::span<const std::uint8_t, 6> octets()
      const noexcept {
    return octets_;
  }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept {
    std::uint64_t v = 0;
    for (const std::uint8_t octet : octets_) v = (v << 8) | octet;
    return v;
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const MacAddress&,
                                    const MacAddress&) = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

}  // namespace carpool
