#include "traffic/trace_synth.hpp"

#include <algorithm>
#include <cmath>

namespace carpool::traffic {

SyntheticTrace synthesize_trace(const TraceSynthConfig& config) {
  Rng rng(config.seed);
  SyntheticTrace trace;

  // Assign a population to each AP.
  std::vector<std::size_t> ap_stas(config.num_aps);
  for (auto& n : ap_stas) {
    n = config.stas_per_ap_min +
        rng.uniform_int(config.stas_per_ap_max - config.stas_per_ap_min + 1);
    trace.total_stas += n;
  }

  // Per-STA ON/OFF activity processes for AP 0, sampled each second.
  struct StaActivity {
    bool on = false;
    double until = 0.0;
  };
  const std::size_t observed_ap_stas = ap_stas[0];
  std::vector<StaActivity> stas(observed_ap_stas);
  for (auto& s : stas) {
    // Random initial phase.
    s.on = rng.bernoulli(config.activity_mean_on /
                         (config.activity_mean_on + config.activity_mean_off));
    s.until = rng.exponential(s.on ? config.activity_mean_on
                                   : config.activity_mean_off);
  }

  const auto seconds = static_cast<std::size_t>(config.duration);
  trace.active_stas_per_second.reserve(seconds);
  double active_sum = 0.0;
  for (std::size_t t = 0; t < seconds; ++t) {
    std::size_t active = 0;
    for (auto& s : stas) {
      while (s.until <= static_cast<double>(t)) {
        s.on = !s.on;
        s.until += rng.exponential(s.on ? config.activity_mean_on
                                        : config.activity_mean_off);
      }
      if (s.on) ++active;
    }
    trace.active_stas_per_second.push_back(active);
    active_sum += static_cast<double>(active);
  }
  trace.mean_active_stas =
      seconds > 0 ? active_sum / static_cast<double>(seconds) : 0.0;

  // Traffic volume split: frames are downlink with probability equal to
  // the target ratio weighted by size class (downlink frames skew larger
  // in real traces, which we fold into the ratio directly).
  const FrameSizeDistribution dist(config.sizes);
  const std::size_t kFrames = 20000;
  trace.frame_sizes.reserve(kFrames);
  for (std::size_t i = 0; i < kFrames; ++i) {
    const std::size_t size = dist.sample(rng);
    if (rng.bernoulli(config.downlink_ratio)) {
      trace.downlink_volume_bytes += static_cast<double>(size);
      trace.frame_sizes.push_back(size);
    } else {
      trace.uplink_volume_bytes += static_cast<double>(size);
    }
  }
  return trace;
}

}  // namespace carpool::traffic
