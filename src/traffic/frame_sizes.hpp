#pragma once

// Frame size distributions matched to the paper's Fig. 1(b): the
// SIGCOMM'04/'08 and campus-library traces. More than 50% (SIGCOMM) and
// 90% (library) of downlink frames are smaller than 300 bytes, with the
// remainder stretching to the 1500-byte MTU.

#include <cstddef>

#include "common/rng.hpp"

namespace carpool::traffic {

enum class TraceKind { kSigcomm, kLibrary };

class FrameSizeDistribution {
 public:
  explicit FrameSizeDistribution(TraceKind kind) : kind_(kind) {}

  /// Draw one frame size in bytes (40..1500).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// Model CDF at `bytes` (used to regenerate Fig. 1(b)).
  [[nodiscard]] double cdf(std::size_t bytes) const;

  [[nodiscard]] TraceKind kind() const noexcept { return kind_; }

  struct Segment {
    double weight;
    std::size_t lo;
    std::size_t hi;
  };

 private:
  [[nodiscard]] const Segment* segments(std::size_t& count) const;

  TraceKind kind_;
};

}  // namespace carpool::traffic
