#pragma once

// Traffic flow factories for the MAC simulator (paper Sec. 7.2):
//
//  - VoIP (Brady's ON/OFF model): exponential talk spurts and silences;
//    during a spurt, 120-byte frames every 10 ms (96 kbit/s peak), per the
//    IEEE 802.11n usage models.
//  - SIGCOMM'08 background UDP/TCP: Poisson uplink with mean inter-arrival
//    47 ms (TCP) / 88 ms (UDP) and trace-matched frame sizes.
//  - CBR: fixed size / fixed interval (Fig. 17 sweeps).
//  - Poisson downlink with trace-matched sizes (general busy-hour load).

#include "mac/simulator.hpp"
#include "traffic/frame_sizes.hpp"

namespace carpool::traffic {

struct VoipParams {
  double mean_on = 1.0;     ///< talk spurt, seconds (Brady)
  double mean_off = 1.35;   ///< silence, seconds (Brady)
  double frame_interval = 0.01;  ///< 10 ms
  std::size_t frame_bytes = 120;

  /// The paper's Fig. 15 goodput values imply VoIP streams near the 96
  /// kbit/s peak rate (silence suppression essentially off, so comfort
  /// noise keeps the stream flowing). This preset reproduces that
  /// offered-load regime, putting the congestion knee inside the 10-30
  /// STA window as in the paper.
  static VoipParams near_peak() { return VoipParams{10.0, 0.1, 0.01, 120}; }
};

/// VoIP flow for one STA; `uplink` selects the STA -> AP direction (a call
/// has both directions, each with its own ON/OFF process).
mac::FlowSpec make_voip_flow(mac::NodeId sta, const VoipParams& params = {},
                             bool uplink = false);

/// Both directions of one VoIP call.
std::vector<mac::FlowSpec> make_voip_call(mac::NodeId sta,
                                          const VoipParams& params = {});

/// Poisson flow with sizes drawn from a trace distribution. `uplink` flips
/// direction (STA -> AP).
mac::FlowSpec make_poisson_flow(mac::NodeId sta, double mean_interval,
                                TraceKind sizes, bool uplink);

/// SIGCOMM'08 background uplink pair for one STA: TCP (47 ms) + UDP (88 ms).
std::vector<mac::FlowSpec> make_sigcomm_background(mac::NodeId sta);

/// Constant-bit-rate downlink flow (fixed frame size and interval).
mac::FlowSpec make_cbr_flow(mac::NodeId sta, std::size_t frame_bytes,
                            double interval);

}  // namespace carpool::traffic
