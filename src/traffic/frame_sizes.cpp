#include "traffic/frame_sizes.hpp"

#include <algorithm>
#include <array>

namespace carpool::traffic {
namespace {

// Piecewise-uniform mixtures; weights sum to 1. SIGCOMM has a fatter tail
// of MTU-sized frames than the library trace.
constexpr std::array<FrameSizeDistribution::Segment, 4> kSigcomm = {{
    {0.40, 40, 120},     // TCP ACKs, control
    {0.17, 120, 300},    // small data
    {0.18, 300, 1000},   // medium
    {0.25, 1000, 1500},  // near-MTU bulk
}};
constexpr std::array<FrameSizeDistribution::Segment, 4> kLibrary = {{
    {0.70, 40, 120},
    {0.21, 120, 300},
    {0.05, 300, 1000},
    {0.04, 1000, 1500},
}};

}  // namespace

const FrameSizeDistribution::Segment* FrameSizeDistribution::segments(
    std::size_t& count) const {
  if (kind_ == TraceKind::kSigcomm) {
    count = kSigcomm.size();
    return kSigcomm.data();
  }
  count = kLibrary.size();
  return kLibrary.data();
}

std::size_t FrameSizeDistribution::sample(Rng& rng) const {
  std::size_t count = 0;
  const Segment* segs = segments(count);
  double u = rng.uniform();
  for (std::size_t i = 0; i < count; ++i) {
    if (u < segs[i].weight || i + 1 == count) {
      return segs[i].lo +
             rng.uniform_int(static_cast<std::uint64_t>(segs[i].hi -
                                                        segs[i].lo + 1));
    }
    u -= segs[i].weight;
  }
  return 1500;
}

double FrameSizeDistribution::cdf(std::size_t bytes) const {
  std::size_t count = 0;
  const Segment* segs = segments(count);
  double acc = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    if (bytes >= segs[i].hi) {
      acc += segs[i].weight;
    } else if (bytes > segs[i].lo) {
      acc += segs[i].weight * static_cast<double>(bytes - segs[i].lo) /
             static_cast<double>(segs[i].hi - segs[i].lo);
    }
  }
  return std::min(acc, 1.0);
}

}  // namespace carpool::traffic
