#pragma once

// Synthetic public-WLAN trace generator reproducing the statistics of
// paper Fig. 1 / Sec. 2: the campus-library measurement (15 APs, ~164
// active STAs over five minutes, 6-28 STAs per AP, mean 7.63 concurrently
// active per AP) and the SIGCOMM'04/'08 downlink-dominance ratios.

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "traffic/frame_sizes.hpp"

namespace carpool::traffic {

struct TraceSynthConfig {
  std::size_t num_aps = 15;
  std::size_t stas_per_ap_min = 6;
  std::size_t stas_per_ap_max = 28;
  double activity_mean_on = 6.0;   ///< seconds a STA stays active
  double activity_mean_off = 6.0;  ///< seconds between activity bursts
  double duration = 300.0;          ///< trace length, seconds
  double downlink_ratio = 0.892;    ///< library trace value (Fig. 1c)
  TraceKind sizes = TraceKind::kLibrary;
  std::uint64_t seed = 7;
};

struct SyntheticTrace {
  /// Active STA count for AP 0, sampled each second (Fig. 1a).
  std::vector<std::size_t> active_stas_per_second;
  double mean_active_stas = 0.0;

  /// Downlink / total traffic volume (Fig. 1c).
  double downlink_volume_bytes = 0.0;
  double uplink_volume_bytes = 0.0;
  [[nodiscard]] double downlink_ratio() const {
    const double total = downlink_volume_bytes + uplink_volume_bytes;
    return total > 0.0 ? downlink_volume_bytes / total : 0.0;
  }

  /// Sampled downlink frame sizes (Fig. 1b CDF).
  std::vector<std::size_t> frame_sizes;
  std::size_t total_stas = 0;
};

/// Generate a synthetic trace with the configured statistics.
SyntheticTrace synthesize_trace(const TraceSynthConfig& config);

}  // namespace carpool::traffic
