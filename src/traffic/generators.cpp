#include "traffic/generators.hpp"

#include <memory>
#include <stdexcept>

namespace carpool::traffic {

mac::FlowSpec make_voip_flow(mac::NodeId sta, const VoipParams& params,
                             bool uplink) {
  if (params.frame_interval <= 0.0 || params.mean_on <= 0.0 ||
      params.mean_off <= 0.0) {
    throw std::invalid_argument("make_voip_flow: invalid parameters");
  }
  struct State {
    double spurt_end = -1.0;  ///< end of the current talk spurt
    double clock = 0.0;       ///< time of the last generated frame
  };
  auto state = std::make_shared<State>();
  mac::FlowSpec flow;
  flow.src = uplink ? sta : mac::kApNode;
  flow.dst = uplink ? mac::kApNode : sta;
  flow.next = [state, params](double now,
                              Rng& rng) -> std::pair<double, std::size_t> {
    double t = std::max(state->clock, now);
    if (state->spurt_end < 0.0) {
      // First call: start somewhere inside an OFF period.
      t += rng.exponential(params.mean_off / 2.0);
      state->spurt_end = t + rng.exponential(params.mean_on);
    } else {
      t += params.frame_interval;
      if (t > state->spurt_end) {
        // Silence, then a new spurt.
        t += rng.exponential(params.mean_off);
        state->spurt_end = t + rng.exponential(params.mean_on);
      }
    }
    state->clock = t;
    return {t, params.frame_bytes};
  };
  return flow;
}

std::vector<mac::FlowSpec> make_voip_call(mac::NodeId sta,
                                          const VoipParams& params) {
  return {make_voip_flow(sta, params, /*uplink=*/false),
          make_voip_flow(sta, params, /*uplink=*/true)};
}

mac::FlowSpec make_poisson_flow(mac::NodeId sta, double mean_interval,
                                TraceKind sizes, bool uplink) {
  if (mean_interval <= 0.0) {
    throw std::invalid_argument("make_poisson_flow: invalid interval");
  }
  auto clock = std::make_shared<double>(0.0);
  const FrameSizeDistribution dist(sizes);
  mac::FlowSpec flow;
  flow.src = uplink ? sta : mac::kApNode;
  flow.dst = uplink ? mac::kApNode : sta;
  flow.next = [clock, dist, mean_interval](
                  double now, Rng& rng) -> std::pair<double, std::size_t> {
    double t = std::max(*clock, now) + rng.exponential(mean_interval);
    *clock = t;
    return {t, dist.sample(rng)};
  };
  return flow;
}

std::vector<mac::FlowSpec> make_sigcomm_background(mac::NodeId sta) {
  // Paper Sec. 7.2.2: mean inter-packet arrival 47 ms (TCP), 88 ms (UDP).
  return {make_poisson_flow(sta, 0.047, TraceKind::kSigcomm, true),
          make_poisson_flow(sta, 0.088, TraceKind::kSigcomm, true)};
}

mac::FlowSpec make_cbr_flow(mac::NodeId sta, std::size_t frame_bytes,
                            double interval) {
  if (interval <= 0.0 || frame_bytes == 0) {
    throw std::invalid_argument("make_cbr_flow: invalid parameters");
  }
  auto clock = std::make_shared<double>(0.0);
  mac::FlowSpec flow;
  flow.src = mac::kApNode;
  flow.dst = sta;
  flow.next = [clock, interval, frame_bytes](
                  double now, Rng&) -> std::pair<double, std::size_t> {
    const double t = std::max(*clock, now) + interval;
    *clock = t;
    return {t, frame_bytes};
  };
  return flow;
}

}  // namespace carpool::traffic
