#include "chaos/fuzz.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "chaos/checkpoint.hpp"
#include "chaos/json.hpp"
#include "chaos/shrink.hpp"
#include "par/par.hpp"
#include "sim/testbed.hpp"

namespace carpool::chaos {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_bytes(std::uint64_t& h, std::string_view bytes) noexcept {
  for (const char c : bytes) {
    h = (h ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xffU)) * kFnvPrime;
  }
}

// ---------------------------------------------------------- mutation ops
//
// Every operator edits a scenario copy in place and returns whether it
// applied. Outputs are clamped to the schema rules scenario_from_value
// enforces (stop > start, intensity >= 0, frame_bytes in [1, 4000],
// interval > 0, waypoint times strictly increasing, shadowing scales
// positive, ...), so a mutant always survives a serialize -> parse round
// trip — the "schema-valid by construction" contract.

constexpr double kMinDuration = 0.5;
constexpr double kMaxDuration = 120.0;

std::uint32_t pick_sta(const Scenario& s, Rng& rng) {
  return 1 + static_cast<std::uint32_t>(rng.uniform_int(s.num_stas));
}

bool op_split_episode(Scenario& s, Rng& rng) {
  if (s.interference.empty()) return false;
  InterferenceEpisode& e =
      s.interference[rng.uniform_int(s.interference.size())];
  if (e.stop - e.start < 2e-3) return false;
  InterferenceEpisode second = e;
  const double mid = 0.5 * (e.start + e.stop);
  second.start = mid;
  second.intensity =
      std::clamp(e.intensity * rng.uniform(0.5, 1.5), 0.0, 8.0);
  e.stop = mid;
  s.interference.push_back(std::move(second));
  return true;
}

bool op_shift_episode(Scenario& s, Rng& rng) {
  if (s.interference.empty()) return false;
  InterferenceEpisode& e =
      s.interference[rng.uniform_int(s.interference.size())];
  const double width = e.stop - e.start;
  const double delta = rng.gaussian(0.0, 0.25 * width + 1e-3);
  e.start = std::clamp(e.start + delta, 0.0,
                       std::max(0.0, s.duration - 1e-3));
  e.stop = e.start + width;  // width > 0, so stop > start holds
  return true;
}

bool op_intensify_episode(Scenario& s, Rng& rng) {
  if (s.interference.empty()) return false;
  InterferenceEpisode& e =
      s.interference[rng.uniform_int(s.interference.size())];
  e.intensity =
      std::clamp(e.intensity * rng.uniform(1.2, 2.5) + 0.1, 0.0, 8.0);
  e.snr_penalty_db =
      std::clamp(e.snr_penalty_db * rng.uniform(1.0, 1.6), 0.0, 40.0);
  return true;
}

bool op_add_episode(Scenario& s, Rng& rng) {
  const double width =
      std::max(1e-3, s.duration * rng.uniform(0.05, 0.3));
  InterferenceEpisode e;
  e.start = rng.uniform(0.0, std::max(1e-3, s.duration - width));
  e.stop = e.start + width;
  e.snr_penalty_db = rng.uniform(5.0, 25.0);
  e.intensity = rng.uniform(0.5, 2.5);
  if (rng.bernoulli(0.5)) e.stas.push_back(pick_sta(s, rng));
  s.interference.push_back(std::move(e));
  return true;
}

bool op_drop_episode(Scenario& s, Rng& rng) {
  if (s.interference.empty()) return false;
  s.interference.erase(s.interference.begin() +
                       static_cast<long>(
                           rng.uniform_int(s.interference.size())));
  return true;
}

bool op_add_churn(Scenario& s, Rng& rng) {
  const std::uint32_t sta = pick_sta(s, rng);
  const double leave = rng.uniform(0.05, 0.85) * s.duration;
  s.churn.push_back({leave, sta, false});
  if (rng.bernoulli(0.75)) {
    const double join = leave + rng.uniform(0.05, 0.4) * s.duration;
    s.churn.push_back({std::min(join, s.duration), sta, true});
  }
  return true;
}

bool op_drop_churn(Scenario& s, Rng& rng) {
  if (s.churn.empty()) return false;
  s.churn.erase(s.churn.begin() +
                static_cast<long>(rng.uniform_int(s.churn.size())));
  return true;
}

bool op_jitter_waypoint(Scenario& s, Rng& rng) {
  if (s.mobility.empty()) return false;
  MobilityTrack& t = s.mobility[rng.uniform_int(s.mobility.size())];
  if (t.waypoints.empty()) return false;
  sim::TimedPoint& wp = t.waypoints[rng.uniform_int(t.waypoints.size())];
  const double room = sim::TestbedLayout::kRoomSize;
  wp.p.x = std::clamp(wp.p.x + rng.gaussian(0.0, 1.0), 0.0, room);
  wp.p.y = std::clamp(wp.p.y + rng.gaussian(0.0, 1.0), 0.0, room);
  return true;
}

bool op_add_mobility(Scenario& s, Rng& rng) {
  const std::uint32_t sta = pick_sta(s, rng);
  const double room = sim::TestbedLayout::kRoomSize;
  std::vector<sim::TimedPoint> wps(2);
  wps[0].time = 0.0;
  wps[0].p = {rng.uniform(0.0, room), rng.uniform(0.0, room)};
  wps[1].time = std::max(0.1, s.duration * rng.uniform(0.3, 1.0));
  wps[1].p = {rng.uniform(0.0, room), rng.uniform(0.0, room)};
  for (MobilityTrack& t : s.mobility) {
    if (t.sta == sta) {
      t.waypoints = std::move(wps);
      return true;
    }
  }
  s.mobility.push_back({sta, std::move(wps)});
  return true;
}

bool op_swap_traffic(Scenario& s, Rng& rng) {
  if (s.traffic.size() < 2) return false;
  const std::size_t i = rng.uniform_int(s.traffic.size());
  std::size_t j = rng.uniform_int(s.traffic.size() - 1);
  if (j >= i) ++j;
  // Swap the mixes but keep the (strictly increasing) start times.
  std::swap(s.traffic[i].kind, s.traffic[j].kind);
  std::swap(s.traffic[i].frame_bytes, s.traffic[j].frame_bytes);
  std::swap(s.traffic[i].interval, s.traffic[j].interval);
  return true;
}

bool op_retime_traffic(Scenario& s, Rng& rng) {
  if (s.traffic.empty()) return false;
  TrafficPhase& p = s.traffic[rng.uniform_int(s.traffic.size())];
  if (rng.bernoulli(1.0 / 3.0)) {
    p.kind = static_cast<TrafficKind>(rng.uniform_int(4));
  }
  p.interval = std::clamp(p.interval * rng.uniform(0.5, 2.0), 1e-4, 0.1);
  const double bytes =
      std::round(static_cast<double>(p.frame_bytes) *
                 rng.uniform(0.5, 2.0));
  p.frame_bytes = static_cast<std::size_t>(
      std::clamp(bytes, 1.0, 4000.0));
  return true;
}

bool op_scale_duration(Scenario& s, Rng& rng) {
  const double scaled = std::clamp(s.duration * rng.uniform(0.7, 1.4),
                                   kMinDuration, kMaxDuration);
  if (std::fabs(scaled - s.duration) < 1e-9) return false;
  s.duration = scaled;
  // Keep interference inside the new timeline (stop > start preserved).
  for (auto it = s.interference.begin(); it != s.interference.end();) {
    if (it->start >= s.duration - 1e-6) {
      it = s.interference.erase(it);
      continue;
    }
    it->stop = std::min(it->stop, s.duration);
    if (it->stop - it->start < 1e-6) {
      it = s.interference.erase(it);
    } else {
      ++it;
    }
  }
  return true;
}

// Scenario JSON stores seeds as numbers, exact only up to 2^53 — a
// wider seed would not survive the bundle/fuzz-state round-trip, so the
// mutator never produces one.
constexpr std::uint64_t kSeedMask = (1ULL << 53) - 1;

bool op_reseed(Scenario& s, Rng& rng) {
  s.seed = rng() & kSeedMask;
  return true;
}

bool op_nudge_snr(Scenario& s, Rng& rng) {
  s.default_snr_db =
      std::clamp(s.default_snr_db + rng.gaussian(0.0, 3.0), 0.0, 40.0);
  return true;
}

bool op_perturb_shadowing(Scenario& s, Rng& rng) {
  if (!s.shadowing.has_value()) {
    ShadowingSpec sp;
    sp.sigma_db = rng.uniform(1.0, 8.0);
    sp.decorr_distance = rng.uniform(1.0, 10.0);
    sp.decorr_time = rng.uniform(0.2, 3.0);
    sp.sample_interval = std::max(0.05, s.duration / 2000.0);
    s.shadowing = sp;
  } else {
    s.shadowing->sigma_db = std::clamp(
        s.shadowing->sigma_db * rng.uniform(0.7, 1.6), 0.1, 16.0);
  }
  return true;
}

using MutationOp = bool (*)(Scenario&, Rng&);

struct NamedOp {
  std::string_view name;
  MutationOp fn;
};

constexpr NamedOp kOps[] = {
    {"split_episode", op_split_episode},
    {"shift_episode", op_shift_episode},
    {"intensify_episode", op_intensify_episode},
    {"add_episode", op_add_episode},
    {"drop_episode", op_drop_episode},
    {"add_churn", op_add_churn},
    {"drop_churn", op_drop_churn},
    {"jitter_waypoint", op_jitter_waypoint},
    {"add_mobility", op_add_mobility},
    {"swap_traffic", op_swap_traffic},
    {"retime_traffic", op_retime_traffic},
    {"scale_duration", op_scale_duration},
    {"reseed", op_reseed},
    {"nudge_snr", op_nudge_snr},
    {"perturb_shadowing", op_perturb_shadowing},
};
constexpr std::size_t kNumOps = std::size(kOps);

}  // namespace

std::uint64_t coverage_signature(const obs::Registry& reg) {
  const obs::MetricsSnapshot snap = reg.snapshot();
  std::uint64_t h = kFnvOffset;
  // Counters only: gauges can carry wall-clock-adjacent values and
  // histograms are explicitly nondeterministic; counters are the
  // deterministic event surface (the same one fingerprint() digests).
  for (const auto& row : snap.counters) {
    if (row.value == 0) continue;
    fnv_bytes(h, row.name);
    fnv_u64(h, static_cast<std::uint64_t>(std::bit_width(row.value)));
  }
  return h;
}

Mutation ScenarioMutator::mutate(const Scenario& base, Rng& rng) const {
  const std::size_t num_ops = kNumOps + (config_.allow_inject ? 1 : 0);
  for (int attempt = 0; attempt < 12; ++attempt) {
    const std::size_t k = rng.uniform_int(num_ops);
    Scenario cand = base;
    if (k == kNumOps) {  // gated inject_fault slot
      InjectedViolation iv;
      iv.frame = 1 + rng.uniform_int(std::max<std::uint64_t>(
                         1, config_.inject_max_frame));
      cand.inject = iv;
      return {std::move(cand), "inject_fault"};
    }
    if (kOps[k].fn(cand, rng)) {
      return {std::move(cand), kOps[k].name};
    }
  }
  Scenario cand = base;  // reseed always applies — guaranteed progress
  cand.seed = rng() & kSeedMask;
  return {std::move(cand), "reseed"};
}

std::uint64_t FuzzReport::corpus_digest() const {
  std::uint64_t h = kFnvOffset;
  for (const CorpusEntry& e : corpus) {
    fnv_bytes(h, scenario_to_json(e.scenario));
    fnv_u64(h, e.signature);
    fnv_u64(h, std::bit_cast<std::uint64_t>(e.min_margin));
  }
  return h;
}

namespace {

/// One evaluation's full output: the soak report, the coverage signature
/// of its (private) metric registry, and that registry itself so the
/// engine can merge kept evaluations into the ambient registry in
/// batch-index order — identical content at any thread count.
struct EvalOutcome {
  SoakReport report;
  std::uint64_t signature = 0;
  std::unique_ptr<obs::Registry> metrics;
};

EvalOutcome evaluate(const Scenario& sc, const FuzzOptions& opts) {
  EvalOutcome out;
  out.metrics = std::make_unique<obs::Registry>();
  SoakOptions so;
  so.max_frames = opts.eval_frames;
  so.threads = 1;  // parallelism lives at the batch level
  so.rte_norm_bound = opts.rte_norm_bound;
  {
    const obs::Registry::ScopedCurrent scope(*out.metrics);
    out.report = SoakRunner(so).run(sc);
  }
  out.signature = coverage_signature(*out.metrics);
  return out;
}

const CorpusEntry& tournament_select(
    const std::vector<CorpusEntry>& corpus, Rng& rng) {
  const std::size_t a = rng.uniform_int(corpus.size());
  const std::size_t b = rng.uniform_int(corpus.size());
  // Tournament of two by margin: closer to a violation wins.
  return corpus[corpus[b].min_margin < corpus[a].min_margin ? b : a];
}

// ------------------------------------- fuzz state persistence (resume)
// docs/FAULT_TOLERANCE.md. Doubles round-trip bit-exactly through the
// chaos JSON writer (%.17g) and scenarios round-trip field-for-field, so
// a restored corpus evolves bit-identically to the uninterrupted run.

constexpr std::int64_t kFuzzStateSchemaVersion = 1;

std::string hex_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
  return buf;
}

bool parse_hex_u64(const JsonValue* v, std::uint64_t& out) {
  if (v == nullptr || !v->is_string()) return false;
  const std::string& s = v->as_string();
  if (s.size() < 3 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X')) {
    return false;
  }
  char* end = nullptr;
  out = std::strtoull(s.c_str() + 2, &end, 16);
  return end != nullptr && *end == '\0';
}

std::string fuzz_state_to_json(const FuzzReport& report,
                               std::uint64_t fuzz_seed) {
  JsonObject root;
  json_set(root, "schema_version",
           JsonValue(static_cast<double>(kFuzzStateSchemaVersion)));
  json_set(root, "fuzz_seed", JsonValue(hex_u64(fuzz_seed)));
  json_set(root, "rounds_run",
           JsonValue(static_cast<double>(report.rounds_run)));
  json_set(root, "evals", JsonValue(static_cast<double>(report.evals)));
  json_set(root, "corpus_adds",
           JsonValue(static_cast<double>(report.corpus_adds)));
  JsonArray corpus;
  corpus.reserve(report.corpus.size());
  for (const CorpusEntry& e : report.corpus) {
    JsonObject entry;
    json_set(entry, "signature", JsonValue(hex_u64(e.signature)));
    json_set(entry, "min_margin", JsonValue(e.min_margin));
    json_set(entry, "round", JsonValue(static_cast<double>(e.round)));
    json_set(entry, "op", JsonValue(e.op));
    json_set(entry, "scenario", scenario_to_value(e.scenario));
    corpus.push_back(JsonValue(std::move(entry)));
  }
  json_set(root, "corpus", JsonValue(std::move(corpus)));
  return json_dump(JsonValue(std::move(root)));
}

/// Parse + validate a fuzz state file into `report`. Returns false with
/// `error` set when the document is unusable (the caller surfaces it).
bool fuzz_state_from_json(std::string_view text, std::uint64_t fuzz_seed,
                          FuzzReport& report, std::string& error) {
  const JsonParseResult parsed = json_parse(text);
  if (!parsed.ok()) {
    error = "fuzz state JSON: " + parsed.error.to_string();
    return false;
  }
  const JsonValue& root = *parsed.value;
  std::uint64_t version = 0;
  if (!json_to_u64(root.find("schema_version"), version) ||
      version != static_cast<std::uint64_t>(kFuzzStateSchemaVersion)) {
    error = "fuzz state: unsupported schema_version";
    return false;
  }
  std::uint64_t seed = 0;
  if (!parse_hex_u64(root.find("fuzz_seed"), seed)) {
    error = "fuzz state: bad fuzz_seed";
    return false;
  }
  if (seed != fuzz_seed) {
    error = "fuzz state: seed mismatch (state is for --fuzz-seed " +
            std::to_string(seed) + ")";
    return false;
  }
  std::uint64_t rounds = 0;
  std::uint64_t evals = 0;
  std::uint64_t adds = 0;
  const JsonValue* corpus = root.find("corpus");
  if (!json_to_u64(root.find("rounds_run"), rounds) ||
      !json_to_u64(root.find("evals"), evals) ||
      !json_to_u64(root.find("corpus_adds"), adds) || corpus == nullptr ||
      !corpus->is_array()) {
    error = "fuzz state: missing campaign fields";
    return false;
  }
  report.rounds_run = static_cast<std::size_t>(rounds);
  report.evals = evals;
  report.corpus_adds = adds;
  for (const JsonValue& ev : corpus->as_array()) {
    CorpusEntry entry;
    if (!parse_hex_u64(ev.find("signature"), entry.signature)) {
      error = "fuzz state: corpus entry with bad signature";
      return false;
    }
    const JsonValue* margin = ev.find("min_margin");
    const JsonValue* op = ev.find("op");
    const JsonValue* scenario = ev.find("scenario");
    std::uint64_t round = 0;
    if (margin == nullptr || !margin->is_number() ||
        !json_to_u64(ev.find("round"), round) || op == nullptr ||
        !op->is_string() || scenario == nullptr) {
      error = "fuzz state: malformed corpus entry";
      return false;
    }
    entry.min_margin = margin->as_number();
    entry.round = static_cast<std::size_t>(round);
    entry.op = op->as_string();
    const ScenarioParseResult sp = scenario_from_value(*scenario);
    if (!sp.ok()) {
      error = "fuzz state: corpus scenario: " + sp.error.to_string();
      return false;
    }
    entry.scenario = *sp.scenario;
    report.corpus.push_back(std::move(entry));
  }
  return true;
}

bool write_fuzz_state(const std::string& path, const FuzzReport& report,
                      std::uint64_t fuzz_seed) {
  // Durable atomic write (fsync + rename) shared with the campaign
  // checkpoint; see write_state_file_atomic.
  return write_state_file_atomic(path,
                                 fuzz_state_to_json(report, fuzz_seed));
}

}  // namespace

FuzzReport FuzzEngine::run(const std::vector<Scenario>& seeds) const {
  FuzzReport report;
  obs::Registry& ambient = obs::Registry::current();
  const std::size_t threads =
      opts_.threads == 0 ? par::hardware_threads() : opts_.threads;

  MutatorConfig mcfg;
  mcfg.allow_inject = opts_.allow_inject;
  mcfg.inject_max_frame = std::max<std::uint64_t>(1, opts_.eval_frames);
  const ScenarioMutator mutator(mcfg);

  std::map<std::uint64_t, std::size_t> by_signature;
  bool stop = false;

  // ----- fuzz state resume (docs/FAULT_TOLERANCE.md) -----
  const bool checkpointing = !opts_.checkpoint_dir.empty();
  const std::string state_path =
      checkpointing ? opts_.checkpoint_dir + "/fuzz_state.json"
                    : std::string();
  std::size_t start_round = 1;
  if (checkpointing && opts_.resume) {
    std::ifstream in(state_path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      std::string error;
      if (!fuzz_state_from_json(buf.str(), opts_.seed, report, error)) {
        report.resume_error = state_path + ": " + error;
        return report;
      }
      for (std::size_t i = 0; i < report.corpus.size(); ++i) {
        by_signature[report.corpus[i].signature] = i;
      }
      report.resumed = true;
      start_round = report.rounds_run + 1;
      ambient.counter("chaos.checkpoint_resume").add();
    }
    // No state file yet: fall through to a fresh campaign.
  }

  const auto flush_state = [&]() {
    if (!checkpointing) return;
    if (!report.hits.empty()) return;  // hits are not a resumable prefix
    if (write_fuzz_state(state_path, report, opts_.seed)) {
      ambient.counter("chaos.checkpoint_write").add();
    }
  };

  const auto handle_hit = [&](Scenario&& sc, const SoakReport& rep,
                              std::size_t round, std::size_t bi,
                              std::string op) {
    FuzzHit hit;
    hit.scenario = std::move(sc);
    hit.violation = rep.violations.front();
    hit.round = round;
    hit.batch_index = bi;
    hit.op = std::move(op);
    ambient.counter("chaos.fuzz.violations").add();

    const ReproBundle bundle{hit.scenario, hit.violation};
    if (!opts_.bundle_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(opts_.bundle_dir, ec);
      if (!ec) {
        const std::string stem = opts_.bundle_dir + "/fuzz_r" +
                                 std::to_string(round) + "_b" +
                                 std::to_string(bi) + "_" +
                                 hit.violation.invariant;
        std::ofstream f(stem + ".json");
        if (f) {
          f << bundle_to_json(bundle);
          hit.bundle_path = stem + ".json";
        }
      }
    }
    hit.shrunk = hit.scenario;
    hit.shrunk_violation = hit.violation;
    if (opts_.shrink_hits) {
      const ShrinkResult sr = shrink_bundle(bundle);
      hit.shrunk = sr.scenario;
      hit.shrunk_violation = sr.violation;
      hit.timeline_ratio = sr.timeline_ratio;
      if (!hit.bundle_path.empty()) {
        const std::string shrunk_path =
            hit.bundle_path.substr(0, hit.bundle_path.size() - 5) +
            "_shrunk.json";
        std::ofstream f(shrunk_path);
        if (f) f << bundle_to_json({sr.scenario, sr.violation});
      }
    }
    report.hits.push_back(std::move(hit));
    if (opts_.stop_on_violation) stop = true;
  };

  const auto admit = [&](Scenario&& sc, const EvalOutcome& o,
                         std::size_t round, std::string op) {
    const double margin = o.report.min_margin();
    const auto it = by_signature.find(o.signature);
    if (it != by_signature.end()) {
      CorpusEntry& existing = report.corpus[it->second];
      // Known signature: keep it only if this mutant is strictly closer
      // to a violation — margin hill-climbing on covered ground.
      if (margin < existing.min_margin - 1e-12) {
        existing.scenario = std::move(sc);
        existing.min_margin = margin;
        existing.round = round;
        existing.op = std::move(op);
        ++report.corpus_adds;
        ambient.counter("chaos.fuzz.corpus_adds").add();
      }
      return;
    }
    CorpusEntry entry;
    entry.scenario = std::move(sc);
    entry.signature = o.signature;
    entry.min_margin = margin;
    entry.round = round;
    entry.op = std::move(op);
    by_signature[o.signature] = report.corpus.size();
    report.corpus.push_back(std::move(entry));
    ++report.corpus_adds;
    ambient.counter("chaos.fuzz.corpus_adds").add();
    if (report.corpus.size() > std::max<std::size_t>(1, opts_.corpus_max)) {
      // Evict the entry farthest from any violation (largest margin,
      // first occurrence on ties — deterministic).
      std::size_t worst = 0;
      for (std::size_t i = 1; i < report.corpus.size(); ++i) {
        if (report.corpus[i].min_margin >
            report.corpus[worst].min_margin) {
          worst = i;
        }
      }
      report.corpus.erase(report.corpus.begin() +
                          static_cast<long>(worst));
      by_signature.clear();
      for (std::size_t i = 0; i < report.corpus.size(); ++i) {
        by_signature[report.corpus[i].signature] = i;
      }
    }
  };

  const auto consume = [&](EvalOutcome&& o, Scenario&& sc,
                           std::size_t round, std::size_t bi,
                           std::string op) {
    ambient.merge_from(*o.metrics);
    ++report.evals;
    ambient.counter("chaos.fuzz.evals").add();
    if (!o.report.ok()) {
      handle_hit(std::move(sc), o.report, round, bi, std::move(op));
      return;
    }
    admit(std::move(sc), o, round, std::move(op));
  };

  // Round 0: evaluate the seed corpus with the same machinery. A
  // resumed campaign's corpus already contains the admitted seeds (and
  // their evolution) — re-seeding would double-count evals.
  if (!report.resumed) {
    auto shards = par::run_sharded_keep(
        seeds.size(), threads, [&](const par::ShardInfo& info) {
          return evaluate(seeds[info.index], opts_);
        });
    for (std::size_t i = 0; i < seeds.size() && !stop; ++i) {
      consume(std::move(shards.results[i]), Scenario(seeds[i]), 0, i,
              "seed");
    }
    if (!stop) flush_state();
  }

  for (std::size_t round = start_round; round <= opts_.rounds && !stop;
       ++round) {
    if (report.corpus.empty()) break;
    Rng round_rng(derive_seed(opts_.seed, round, 0x66757a7aULL));
    // Mutants are generated serially against the round-start corpus, so
    // the batch is a pure function of (seed corpus, fuzz seed, round).
    std::vector<Mutation> batch;
    batch.reserve(opts_.batch);
    for (std::size_t b = 0; b < std::max<std::size_t>(1, opts_.batch);
         ++b) {
      const CorpusEntry& parent =
          tournament_select(report.corpus, round_rng);
      batch.push_back(mutator.mutate(parent.scenario, round_rng));
    }
    auto shards = par::run_sharded_keep(
        batch.size(), threads, [&](const par::ShardInfo& info) {
          return evaluate(batch[info.index].scenario, opts_);
        });
    for (std::size_t i = 0; i < batch.size() && !stop; ++i) {
      consume(std::move(shards.results[i]),
              std::move(batch[i].scenario), round, i,
              std::string(batch[i].op));
    }
    ++report.rounds_run;
    ambient.counter("chaos.fuzz.rounds").add();
    if (!stop) flush_state();
  }

  return report;
}

}  // namespace carpool::chaos
