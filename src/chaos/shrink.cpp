#include "chaos/shrink.hpp"

#include <algorithm>

#include "obs/registry.hpp"

namespace carpool::chaos {
namespace {

constexpr double kMinDuration = 0.05;  ///< shrink floor (seconds)
constexpr std::size_t kMaxPasses = 20;

/// Does `candidate` still produce the original violation? Same invariant
/// name always; injected faults additionally pin the exact frame (their
/// coordinate is scripted, so any drift means the repro broke).
std::optional<Violation> reproduces(const Scenario& candidate,
                                    const Violation& original) {
  SoakOptions opts;
  opts.max_frames = original.frame + 1;
  opts.check_cliffs = false;
  const SoakReport report = SoakRunner(opts).run(candidate);
  if (report.violations.empty()) return std::nullopt;
  const Violation& got = report.violations.front();
  if (got.invariant != original.invariant) return std::nullopt;
  if (original.invariant == "injected" && got.frame != original.frame) {
    return std::nullopt;
  }
  return got;
}

/// Drop events referencing stations beyond a reduced station count.
void clamp_to_stas(Scenario& s) {
  const auto over = [&](std::uint32_t sta) { return sta > s.num_stas; };
  std::erase_if(s.churn, [&](const ChurnEvent& e) { return over(e.sta); });
  std::erase_if(s.mobility,
                [&](const MobilityTrack& t) { return over(t.sta); });
  for (InterferenceEpisode& e : s.interference) {
    std::erase_if(e.stas, over);
  }
}

}  // namespace

ShrinkResult shrink_bundle(const ReproBundle& bundle) {
  ShrinkResult out;
  out.scenario = bundle.scenario;
  out.violation = bundle.violation;
  const double original_timeline = bundle.scenario.timeline_seconds();

  // Degenerate input guard: a bundle that does not reproduce as given
  // cannot shrink — every candidate would fail the same comparison, so
  // running the passes would just burn dozens of pointless soaks. Verify
  // once up front and bail with the scenario unchanged.
  ++out.attempts;
  if (!reproduces(bundle.scenario, bundle.violation)) {
    obs::Registry::current().counter("chaos.shrink_attempts").add(1);
    return out;
  }

  // A greedy acceptance step shared by every pass: evaluate `candidate`,
  // keep it if the violation survives.
  auto try_accept = [&](Scenario candidate) {
    ++out.attempts;
    if (auto v = reproduces(candidate, bundle.violation)) {
      out.scenario = std::move(candidate);
      out.violation = std::move(*v);
      ++out.accepted;
      return true;
    }
    return false;
  };

  for (std::size_t pass = 0; pass < kMaxPasses; ++pass) {
    bool changed = false;

    // One-at-a-time event removal, restarting the index on acceptance
    // (classic ddmin-style greedy reduction).
    for (std::size_t i = 0; i < out.scenario.churn.size();) {
      Scenario cand = out.scenario;
      cand.churn.erase(cand.churn.begin() + static_cast<long>(i));
      if (try_accept(std::move(cand))) {
        changed = true;
      } else {
        ++i;
      }
    }
    for (std::size_t i = 0; i < out.scenario.interference.size();) {
      Scenario cand = out.scenario;
      cand.interference.erase(cand.interference.begin() +
                              static_cast<long>(i));
      if (try_accept(std::move(cand))) {
        changed = true;
      } else {
        ++i;
      }
    }
    for (std::size_t i = 0; i < out.scenario.mobility.size();) {
      Scenario cand = out.scenario;
      cand.mobility.erase(cand.mobility.begin() + static_cast<long>(i));
      if (try_accept(std::move(cand))) {
        changed = true;
      } else {
        ++i;
      }
    }
    // Trailing traffic phases (the first keeps the channel loaded).
    while (out.scenario.traffic.size() > 1) {
      Scenario cand = out.scenario;
      cand.traffic.pop_back();
      if (!try_accept(std::move(cand))) break;
      changed = true;
    }
    // Probes off, unless the violation needs them.
    if (out.scenario.probe_interval > 0.0) {
      Scenario cand = out.scenario;
      cand.probe_interval = 0.0;
      if (try_accept(std::move(cand))) changed = true;
    }

    // Duration halving to the floor.
    while (out.scenario.duration / 2.0 >= kMinDuration) {
      Scenario cand = out.scenario;
      cand.duration /= 2.0;
      if (!try_accept(std::move(cand))) break;
      changed = true;
    }

    // Station-count halving (events on removed stations go with them).
    while (out.scenario.num_stas > 1) {
      Scenario cand = out.scenario;
      cand.num_stas = std::max<std::size_t>(1, cand.num_stas / 2);
      clamp_to_stas(cand);
      if (!try_accept(std::move(cand))) break;
      changed = true;
    }

    if (!changed) break;
  }

  out.timeline_ratio =
      original_timeline > 0.0
          ? out.scenario.timeline_seconds() / original_timeline
          : 1.0;
  obs::Registry::current().counter("chaos.shrink_attempts").add(out.attempts);
  return out;
}

}  // namespace carpool::chaos
