#include "chaos/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace carpool::chaos {
namespace {

/// Maximum container nesting. Parsing is recursive, so unbounded depth
/// (e.g. a megabyte of '[') would overflow the stack — a crash, which
/// the never-throwing parser contract forbids. 256 is far beyond any
/// scenario/bundle document and small enough for default stacks.
constexpr std::size_t kMaxDepth = 256;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult parse() {
    JsonParseResult out;
    JsonValue v;
    if (!parse_value(v)) {
      out.error = error_;
      return out;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
      out.error = error_;
      return out;
    }
    out.value = std::move(v);
    return out;
  }

 private:
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      advance();
    }
  }

  bool fail(std::string message) {
    // Keep the first (deepest) error; callers unwind without overwriting.
    if (error_.message.empty()) {
      error_.message = std::move(message);
      error_.line = line_;
      error_.column = col_;
    }
    return false;
  }

  bool expect(char c) {
    if (at_end() || peek() != c) {
      return fail(std::string("expected '") + c + "'");
    }
    advance();
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        return parse_literal("true", JsonValue(true), out);
      case 'f':
        return parse_literal("false", JsonValue(false), out);
      case 'n':
        return parse_literal("null", JsonValue(), out);
      default:
        return parse_number(out);
    }
  }

  bool parse_literal(std::string_view word, JsonValue value,
                     JsonValue& out) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    for (std::size_t i = 0; i < word.size(); ++i) advance();
    out = std::move(value);
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') advance();
    while (!at_end() &&
           (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
            peek() == '.' || peek() == 'e' || peek() == 'E' ||
            peek() == '+' || peek() == '-')) {
      advance();
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size() ||
        token.empty()) {
      return fail("invalid number");
    }
    out = JsonValue(value);
    return true;
  }

  bool parse_hex4(unsigned& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) return fail("truncated \\u escape");
      const char c = advance();
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape digit");
      }
    }
    return true;
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = advance();
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return fail("truncated escape sequence");
      const char e = advance();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("invalid escape sequence");
      }
    }
  }

  bool parse_array(JsonValue& out) {
    if (!expect('[')) return false;
    if (depth_ >= kMaxDepth) return fail("nesting too deep");
    ++depth_;
    JsonArray items;
    skip_ws();
    if (!at_end() && peek() == ']') {
      advance();
      --depth_;
      out = JsonValue(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item;
      if (!parse_value(item)) return false;
      items.push_back(std::move(item));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        advance();
        continue;
      }
      if (peek() == ']') {
        advance();
        --depth_;
        out = JsonValue(std::move(items));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue& out) {
    if (!expect('{')) return false;
    if (depth_ >= kMaxDepth) return fail("nesting too deep");
    ++depth_;
    JsonObject members;
    skip_ws();
    if (!at_end() && peek() == '}') {
      advance();
      --depth_;
      out = JsonValue(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (at_end() || peek() != '"') return fail("expected object key");
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        advance();
        continue;
      }
      if (peek() == '}') {
        advance();
        --depth_;
        out = JsonValue(std::move(members));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
  std::size_t depth_ = 0;  ///< open containers; bounded by kMaxDepth
  JsonError error_;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double v, std::string& out) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void dump_value(const JsonValue& v, std::string& out, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      dump_number(v.as_number(), out);
      return;
    case JsonValue::Kind::kString:
      dump_string(v.as_string(), out);
      return;
    case JsonValue::Kind::kArray: {
      const JsonArray& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < a.size(); ++i) {
        out += pad_in;
        dump_value(a[i], out, indent + 1);
        if (i + 1 < a.size()) out += ",";
        out += "\n";
      }
      out += pad + "]";
      return;
    }
    case JsonValue::Kind::kObject: {
      const JsonObject& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < o.size(); ++i) {
        out += pad_in;
        dump_string(o[i].first, out);
        out += ": ";
        dump_value(o[i].second, out, indent + 1);
        if (i + 1 < o.size()) out += ",";
        out += "\n";
      }
      out += pad + "}";
      return;
    }
  }
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonError::to_string() const {
  return "line " + std::to_string(line) + ", column " +
         std::to_string(column) + ": " + message;
}

JsonParseResult json_parse(std::string_view text) {
  return Parser(text).parse();
}

std::string json_dump(const JsonValue& value) {
  std::string out;
  dump_value(value, out, 0);
  out += "\n";
  return out;
}

bool json_to_u64(const JsonValue* v, std::uint64_t& out) noexcept {
  if (v == nullptr || !v->is_number()) return false;
  const double d = v->as_number();
  // 2^53: the largest range where every integer has an exact double
  // representation. `!(d >= 0.0)` also rejects NaN.
  constexpr double kMaxExact = 9007199254740992.0;
  if (!(d >= 0.0) || d > kMaxExact) return false;
  if (d != std::floor(d)) return false;
  out = static_cast<std::uint64_t>(d);
  return true;
}

}  // namespace carpool::chaos
