#include "chaos/runner.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>

#include "carpool/transceiver.hpp"
#include "chaos/checkpoint.hpp"
#include "channel/shadowing.hpp"
#include "impair/impair.hpp"
#include "mac/domain_sim.hpp"
#include "mac/simulator.hpp"
#include "obs/registry.hpp"
#include "par/par.hpp"
#include "phy/frame.hpp"
#include "sim/multi_bss.hpp"
#include "sim/topology.hpp"
#include "traffic/generators.hpp"

namespace carpool::chaos {
namespace {

constexpr double kBoundaryEps = 1e-9;

/// Multi-BSS context for a topology scenario, built once per campaign:
/// the AP grid, every STA's mobility path, and the pre-computed
/// association timeline whose handover instants become episode cuts.
/// Null for classic single-collision-domain scenarios.
struct TopoCtx {
  sim::Topology topo;
  std::vector<sim::MobilityPath> paths;  ///< indexed by STA id; [0] unused
  sim::AssociationTimeline timeline;
};

std::optional<TopoCtx> make_topo_ctx(const Scenario& s) {
  if (!s.topology.has_value()) return std::nullopt;
  sim::Topology topo(*s.topology, s.power_magnitude);
  std::vector<sim::MobilityPath> paths(s.num_stas + 1);
  for (const MobilityTrack& t : s.mobility) {
    if (t.sta < paths.size()) {
      paths[t.sta] = sim::MobilityPath(t.waypoints);
    }
  }
  sim::AssociationTimeline timeline(topo, s.num_stas, paths, s.duration);
  return TopoCtx{std::move(topo), std::move(paths), std::move(timeline)};
}

/// One contiguous slice of the timeline with constant membership,
/// traffic phase, and interference set.
struct Episode {
  double start = 0.0;
  double stop = 0.0;
  std::vector<bool> joined;  ///< indexed by NodeId; [0] unused
  const TrafficPhase* phase = nullptr;  ///< nullptr = idle segment
  double max_intensity = 0.0;  ///< strongest overlapping interference
};

/// Timeline -> episodes: split at churn, traffic, and interference
/// boundaries so each slice runs under a constant configuration.
/// `extra_cuts` adds topology handover instants, so within an episode
/// every STA's association is constant too.
std::vector<Episode> segment_timeline(const Scenario& s,
                                      const std::vector<double>& extra_cuts =
                                          {}) {
  std::vector<double> cuts{0.0, s.duration};
  for (const ChurnEvent& e : s.churn) cuts.push_back(e.time);
  for (const TrafficPhase& p : s.traffic) cuts.push_back(p.start);
  for (const InterferenceEpisode& e : s.interference) {
    cuts.push_back(e.start);
    cuts.push_back(e.stop);
  }
  cuts.insert(cuts.end(), extra_cuts.begin(), extra_cuts.end());
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end(),
                         [](double a, double b) {
                           return std::fabs(a - b) < kBoundaryEps;
                         }),
             cuts.end());

  std::vector<Episode> out;
  std::vector<bool> joined(s.num_stas + 1, true);
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double start = cuts[i];
    const double stop = cuts[i + 1];
    if (start < -kBoundaryEps || start >= s.duration - kBoundaryEps) {
      continue;
    }
    // Membership in force at this slice: all churn up to its start.
    for (const ChurnEvent& e : s.churn) {
      if (e.time <= start + kBoundaryEps && e.sta < joined.size()) {
        joined[e.sta] = e.join;
      }
    }
    Episode ep;
    ep.start = start;
    ep.stop = std::min(stop, s.duration);
    ep.joined = joined;
    for (const TrafficPhase& p : s.traffic) {
      if (p.start <= start + kBoundaryEps) ep.phase = &p;
    }
    for (const InterferenceEpisode& e : s.interference) {
      if (e.start < ep.stop - kBoundaryEps &&
          e.stop > ep.start + kBoundaryEps) {
        ep.max_intensity = std::max(ep.max_intensity, e.intensity);
      }
    }
    out.push_back(std::move(ep));
  }
  return out;
}

/// Append the traffic-phase flows of one STA (`sta` is the id the flows
/// address inside the simulator that consumes them — the global id in the
/// single-domain path, the domain-local id in a multi-BSS domain).
void append_flows(std::vector<mac::FlowSpec>& flows, const TrafficPhase& p,
                  mac::NodeId sta) {
  switch (p.kind) {
    case TrafficKind::kCbr:
      flows.push_back(traffic::make_cbr_flow(sta, p.frame_bytes,
                                             p.interval));
      break;
    case TrafficKind::kVoip: {
      auto call = traffic::make_voip_call(sta);
      flows.insert(flows.end(), std::make_move_iterator(call.begin()),
                   std::make_move_iterator(call.end()));
      break;
    }
    case TrafficKind::kPoisson:
      flows.push_back(traffic::make_poisson_flow(
          sta, p.interval, traffic::TraceKind::kLibrary, false));
      break;
    case TrafficKind::kSigcomm: {
      auto bg = traffic::make_sigcomm_background(sta);
      flows.insert(flows.end(), std::make_move_iterator(bg.begin()),
                   std::make_move_iterator(bg.end()));
      flows.push_back(traffic::make_cbr_flow(sta, p.frame_bytes,
                                             p.interval));
      break;
    }
  }
}

/// Flows for one episode under its traffic phase.
std::vector<mac::FlowSpec> build_flows(const Episode& ep,
                                       const Scenario& s) {
  std::vector<mac::FlowSpec> flows;
  if (ep.phase == nullptr) return flows;
  for (mac::NodeId sta = 1; sta <= s.num_stas; ++sta) {
    if (!ep.joined[sta]) continue;
    append_flows(flows, *ep.phase, sta);
  }
  return flows;
}

/// PHY decode probe harness: one real Carpool frame per probe pushed
/// through a trace-gated Gilbert-Elliott chain, decoded by a real
/// CarpoolReceiver. Probe index == chain frame index, so the episode
/// trace is computable up front from the scenario's interference
/// schedule and the whole probe sequence replays bit for bit.
///
/// Each probe targets one STA, and a multi-BSS campaign runs one harness
/// per collision domain holding exactly the probes whose target STA is
/// associated with that domain's AP at probe time: a probe measures the
/// link the STA is actually on, not AP 0's. Domain 0 keeps the legacy
/// chain salt, so single-domain scenarios are unchanged.
class ProbeHarness {
 public:
  struct Probe {
    double time = 0.0;
    std::uint32_t sta = 1;  ///< target STA (global id)
  };

  /// `shadow` (nullable) is the repeat's correlated-shadowing process;
  /// together with the scenario's recorded SNR trace and the topology
  /// SINR of the probed link it contributes a per-probe gain offset so
  /// measured channels reach the real PHY decode path, not just the
  /// analytic MAC model.
  ProbeHarness(const Scenario& s, std::uint64_t repeat,
               const channel::CorrelatedShadowing* shadow,
               const TopoCtx* topo, std::uint32_t domain,
               std::vector<Probe> probes)
      : chain_(derive_seed(s.seed, repeat, 0x70726f62ULL + domain)),
        probes_(std::move(probes)) {
    if (probes_.empty()) return;
    // Recorded-trace / shadowing / topology gain per probe, applied
    // before the interference stage (signal power moves first,
    // interference power is layered on top). Offsets are evaluated for
    // the probe's target STA on its associated AP's link.
    if (!s.snr_trace.empty() || shadow != nullptr || topo != nullptr) {
      static const sim::MobilityPath kNoPath;
      impair::SnrOffsetTraceConfig offsets;
      offsets.offset_db.resize(probes_.size(), 0.0);
      for (std::size_t i = 0; i < probes_.size(); ++i) {
        const double t = probes_[i].time;
        const std::uint32_t sta = probes_[i].sta;
        double off = 0.0;
        if (topo != nullptr) {
          const sim::MobilityPath& path =
              sta < topo->paths.size() ? topo->paths[sta] : kNoPath;
          off += topo->topo.sinr_db(domain,
                                    topo->topo.position(sta, path, t)) -
                 s.default_snr_db;
        }
        if (!s.snr_trace.empty()) {
          off += s.snr_trace.snr_at(sta, t, s.default_snr_db) -
                 s.default_snr_db;
        }
        if (shadow != nullptr && sta >= 1) {
          off += shadow->offset_db(sta - 1, t);
        }
        offsets.offset_db[i] = off;
      }
      chain_.add(impair::make_snr_offset_trace(std::move(offsets)));
    }
    // Map interference episodes onto probe-index spans.
    impair::EpisodeTrace trace;
    std::uint64_t span_first = 0;
    bool open = false;
    for (std::size_t i = 0; i < probes_.size(); ++i) {
      bool inside = false;
      for (const InterferenceEpisode& e : s.interference) {
        if (probes_[i].time >= e.start && probes_[i].time < e.stop) {
          inside = true;
          break;
        }
      }
      if (inside && !open) {
        span_first = i;
        open = true;
      } else if (!inside && open) {
        trace.spans.push_back({span_first, i - 1});
        open = false;
      }
    }
    if (open) trace.spans.push_back({span_first, probes_.size() - 1});

    impair::GilbertElliottConfig ge;
    ge.bad_noise_power = 1.0;
    chain_.add(impair::make_trace_gated(std::move(trace),
                                        impair::make_gilbert_elliott(ge)));

    // One deterministic two-subframe frame shared by every probe; the
    // impairment chain's (seed, frame) streams supply the per-probe
    // variation.
    Rng rng(derive_seed(s.seed, repeat, 0x70736475ULL));
    const MacAddress self{{0x02, 0xC4, 0x47, 0x00, 0x00, 0x01}};
    std::vector<SubframeSpec> subframes(2);
    for (SubframeSpec& sub : subframes) {
      sub.receiver = self;
      Bytes body(200);
      for (std::uint8_t& b : body) {
        b = static_cast<std::uint8_t>(rng.uniform_int(256));
      }
      sub.psdu = append_fcs(body);
      sub.mcs_index = 2;
    }
    const CarpoolTransmitter tx;
    wave_ = tx.build(subframes);
    CarpoolRxConfig rx_cfg;
    rx_cfg.self = self;
    rx_ = std::make_unique<CarpoolReceiver>(rx_cfg);
  }

  [[nodiscard]] const std::vector<Probe>& probes() const noexcept {
    return probes_;
  }

  /// Run the next scheduled probe and return the decode result.
  [[nodiscard]] CarpoolRxResult fire() {
    const CxVec rx_wave = chain_.run(wave_);
    obs::Registry::current().counter("chaos.probes").add();
    return rx_->receive(rx_wave);
  }

 private:
  impair::ImpairmentChain chain_;
  std::vector<Probe> probes_;
  CxVec wave_;
  std::unique_ptr<CarpoolReceiver> rx_;
};

/// The whole timeline's probe schedule, partitioned by collision domain:
/// probe k fires at (k+1)*probe_interval and targets STA (k % num_stas)+1;
/// its domain is that STA's associated AP at probe time (always 0 without
/// a topology — the classic single-domain schedule, unchanged).
std::vector<std::vector<ProbeHarness::Probe>> plan_probes(
    const Scenario& s, const TopoCtx* topo) {
  const std::size_t n_domains =
      topo != nullptr ? topo->topo.ap_count() : 1;
  std::vector<std::vector<ProbeHarness::Probe>> plan(n_domains);
  if (s.probe_interval <= 0.0 || s.num_stas == 0) return plan;
  std::size_t k = 0;
  for (double t = s.probe_interval; t < s.duration;
       t += s.probe_interval, ++k) {
    ProbeHarness::Probe probe;
    probe.time = t;
    probe.sta = static_cast<std::uint32_t>(k % s.num_stas) + 1;
    std::size_t domain = 0;
    if (topo != nullptr) domain = topo->timeline.ap_at(probe.sta, t);
    plan[domain].push_back(probe);
  }
  return plan;
}

// ----------------------------------------------------- repeat execution
//
// One full timeline pass, extracted so the serial loop and the parallel
// wave scheduler (docs/PARALLELISM.md) run the *same* code. A `live`
// pass runs with the real campaign coordinates — frame budget and fault
// injection armed, violations stamped with campaign-wide frame counts. A
// detached pass (live == false) runs the identical simulation from frame
// base 0 with those stop checks disarmed; the frame base feeds only stop
// checks and recorded coordinates (see StepInvariants), so a detached
// pass is bit-identical to a live one right up to the first stop event.

struct RepeatOutcome {
  std::vector<EpisodeSummary> summaries;
  std::vector<std::uint64_t> episode_steps;  ///< observer calls per episode
  std::uint64_t judged = 0;   ///< reception judgements across the repeat
  std::uint64_t steps = 0;    ///< observer invocations
  std::uint64_t probes = 0;   ///< PHY decode probes executed
  std::size_t episodes_run = 0;
  double sim_seconds = 0.0;
  std::vector<Violation> violations;
  MarginTracker margins;  ///< per-invariant minima over the repeat
  bool stopped = false;  ///< a stop event fired (violation/inject/budget)
};

RepeatOutcome run_one_repeat(const Scenario& s,
                             const std::vector<Episode>& episodes,
                             const TopoCtx* topo, std::size_t repeat,
                             std::uint64_t campaign_base,
                             const SoakOptions& opts, bool live) {
  RepeatOutcome out;

  // Correlated shadowing (channel/shadowing.hpp): one process per repeat
  // spanning the whole timeline, seeded from (scenario seed, repeat) so
  // serial and detached passes see identical offsets. Station positions
  // come from the first mobility waypoint when present, else the testbed
  // layout's receiver grid.
  const sim::TestbedLayout shadow_layout;
  std::optional<channel::CorrelatedShadowing> shadowing;
  if (s.shadowing.has_value() && s.num_stas > 0) {
    std::vector<std::pair<double, double>> positions;
    positions.reserve(s.num_stas);
    for (std::uint32_t sta = 1; sta <= s.num_stas; ++sta) {
      const sim::Point* p = nullptr;
      for (const MobilityTrack& t : s.mobility) {
        if (t.sta == sta && !t.waypoints.empty()) {
          p = &t.waypoints.front().p;
          break;
        }
      }
      if (p != nullptr) {
        positions.emplace_back(p->x, p->y);
      } else {
        const auto& rx = shadow_layout.receivers();
        const sim::Point& q = rx[(sta - 1) % rx.size()];
        positions.emplace_back(q.x, q.y);
      }
    }
    channel::ShadowingConfig sc;
    sc.sigma_db = s.shadowing->sigma_db;
    sc.decorr_distance_m = s.shadowing->decorr_distance;
    sc.decorr_time_s = s.shadowing->decorr_time;
    sc.sample_interval_s = s.shadowing->sample_interval;
    shadowing.emplace(sc, std::move(positions), s.duration,
                      derive_seed(s.seed, repeat, 0x73686164ULL));
  }
  const channel::CorrelatedShadowing* shadow =
      shadowing.has_value() ? &*shadowing : nullptr;

  // One probe harness per collision domain, each holding the probes whose
  // target STA is associated with that domain (always one domain, all
  // probes, without a topology).
  std::vector<std::vector<ProbeHarness::Probe>> probe_plan =
      plan_probes(s, topo);
  const std::size_t n_domains = probe_plan.size();
  std::vector<ProbeHarness> probes;
  probes.reserve(n_domains);
  for (std::size_t d = 0; d < n_domains; ++d) {
    probes.emplace_back(s, repeat, shadow, topo,
                        static_cast<std::uint32_t>(d),
                        std::move(probe_plan[d]));
  }
  std::vector<std::size_t> next_probe(n_domains, 0);
  bool stop_campaign = false;
  bool injected_done = false;

  for (std::size_t ei = 0; ei < episodes.size() && !stop_campaign; ++ei) {
    const Episode& ep = episodes[ei];
    const double ep_start = ep.start;

    bool stop_episode = false;
    std::uint64_t episode_judged_total = 0;
    std::uint64_t episode_steps_total = 0;
    EpisodeSummary summary;
    summary.index = ei;
    summary.repeat = repeat;
    summary.start = ep.start;
    summary.stop = ep.stop;
    summary.intensity = ep.max_intensity;

    // One collision domain per AP, run sequentially in AP order (the
    // multi-BSS serial reference; whole-repeat sharding happens a level
    // up). The classic path is the one-domain special case.
    for (std::size_t d = 0; d < n_domains && !stop_episode; ++d) {
      // STAs this domain serves during the episode: joined, and (with a
      // topology) associated with AP `d` for the whole slice — episodes
      // are cut at handover instants, so association is constant here.
      std::vector<mac::NodeId> members;
      for (mac::NodeId sta = 1; sta <= s.num_stas; ++sta) {
        if (!ep.joined[sta]) continue;
        if (topo != nullptr &&
            topo->timeline.ap_at(sta, ep.start) != d) {
          continue;
        }
        members.push_back(sta);
      }
      if (topo != nullptr && members.empty()) {
        // An AP serving nobody this slice has no collision domain to
        // run; its pending probes fire at catch-up the next time the
        // domain is active. The classic path never skips: it always ran
        // a full-width simulator even when churn emptied the cell.
        continue;
      }

      const std::uint64_t frame_base =
          campaign_base + out.judged + episode_judged_total;

      mac::SimConfig cfg;
      cfg.scheme = s.scheme;
      cfg.duration = ep.stop - ep.start;
      cfg.link_policy = s.link_policy;
      cfg.default_snr_db = s.default_snr_db;

      if (topo == nullptr) {
        // Single collision domain: global STA numbering, mobility over
        // the testbed pathloss map.
        cfg.num_stas = s.num_stas;
        cfg.seed = derive_seed(s.seed, repeat, ei);

        // Time-varying SNR: mobility via the testbed pathloss map, plus
        // the penalty of every interference episode in force at the
        // absolute time of the judgement.
        const sim::TestbedLayout layout;
        std::vector<sim::MobilityPath> paths(s.num_stas + 1);
        std::vector<bool> has_path(s.num_stas + 1, false);
        for (const MobilityTrack& t : s.mobility) {
          if (t.sta < paths.size()) {
            paths[t.sta] = sim::MobilityPath(t.waypoints);
            has_path[t.sta] = true;
          }
        }
        cfg.sta_snr_fn = [&s, layout, paths = std::move(paths),
                          has_path = std::move(has_path), ep_start,
                          shadow](mac::NodeId sta, double now) {
          const double t = ep_start + now;
          double snr = s.default_snr_db;
          if (sta < has_path.size() && has_path[sta]) {
            snr = layout.snr_db_along(paths[sta], t, s.power_magnitude);
          }
          // Recorded channel: where the capture has samples for this STA
          // the measured SNR replaces the synthetic base (step-hold
          // between samples); interference penalties and shadowing still
          // layer on.
          if (!s.snr_trace.empty()) {
            snr = s.snr_trace.snr_at(static_cast<std::uint32_t>(sta), t,
                                     snr);
          }
          for (const InterferenceEpisode& e : s.interference) {
            if (t < e.start || t >= e.stop) continue;
            if (!e.stas.empty() &&
                std::find(e.stas.begin(), e.stas.end(),
                          static_cast<std::uint32_t>(sta)) ==
                    e.stas.end()) {
              continue;
            }
            snr -= e.snr_penalty_db;
          }
          if (shadow != nullptr && sta >= 1) {
            snr += shadow->offset_db(static_cast<std::size_t>(sta) - 1, t);
          }
          return snr;
        };
      } else {
        // Multi-BSS domain: local STA numbering (local l = members[l-1]),
        // SNR base from the topology SINR of this AP at the STA's
        // position; recorded traces, interference penalties, and
        // shadowing layer on top exactly as in the single-domain path.
        cfg.num_stas = members.size();
        cfg.seed = sim::MultiBssSim::domain_seed(
            derive_seed(s.seed, repeat, ei), d, ei);
        cfg.sta_snr_fn = [&s, topo, d, members, ep_start,
                          shadow](mac::NodeId local, double now) {
          const double t = ep_start + now;
          const mac::NodeId sta = members[local - 1];
          const sim::MobilityPath& path = topo->paths[sta];
          double snr =
              topo->topo.sinr_db(d, topo->topo.position(sta, path, t));
          if (!s.snr_trace.empty()) {
            snr = s.snr_trace.snr_at(static_cast<std::uint32_t>(sta), t,
                                     snr);
          }
          for (const InterferenceEpisode& e : s.interference) {
            if (t < e.start || t >= e.stop) continue;
            if (!e.stas.empty() &&
                std::find(e.stas.begin(), e.stas.end(),
                          static_cast<std::uint32_t>(sta)) ==
                    e.stas.end()) {
              continue;
            }
            snr -= e.snr_penalty_db;
          }
          if (shadow != nullptr && sta >= 1) {
            snr += shadow->offset_db(static_cast<std::size_t>(sta) - 1, t);
          }
          return snr;
        };
      }

      StepInvariants checker(frame_base, ep.start, ei, repeat,
                             &out.margins);
      std::uint64_t episode_judged = 0;
      std::uint64_t episode_steps = 0;
      ProbeHarness& domain_probes = probes[d];
      std::size_t& probe_cursor = next_probe[d];
      cfg.observer = [&](const mac::SimStepView& view) {
        ++out.steps;
        ++episode_steps;
        episode_judged = view.frames_judged;

        if (auto v = checker.check(view)) {
          out.violations.push_back(std::move(*v));
          stop_campaign = stop_episode = true;
          return false;
        }

        // Deliberately seeded fault: trips the moment the campaign-wide
        // judgement count crosses the scripted frame. Recorded with
        // exactly that frame so replay and shrinking compare bit for bit.
        if (live && s.inject && !injected_done &&
            frame_base + view.frames_judged >= s.inject->frame) {
          injected_done = true;
          Violation v;
          v.invariant = "injected";
          v.detail = "deliberately seeded fault (scenario "
                     "inject_violation)";
          v.frame = s.inject->frame;
          v.time = ep.start + view.now;
          v.episode = ei;
          v.repeat = repeat;
          out.violations.push_back(std::move(v));
          stop_campaign = stop_episode = true;
          return false;
        }

        // PHY decode probes due by now on this domain's link.
        while (probe_cursor < domain_probes.probes().size() &&
               domain_probes.probes()[probe_cursor].time <=
                   ep.start + view.now) {
          ++probe_cursor;
          ++out.probes;
          const CarpoolRxResult rx = domain_probes.fire();
          if (auto v = check_decode(rx, frame_base + view.frames_judged,
                                    ep.start + view.now, ei, repeat,
                                    opts.rte_norm_bound, &out.margins)) {
            out.violations.push_back(std::move(*v));
            stop_campaign = stop_episode = true;
            return false;
          }
        }

        if (live && opts.max_frames > 0 &&
            frame_base + view.frames_judged >= opts.max_frames) {
          stop_campaign = stop_episode = true;  // budget, not a violation
          return false;
        }
        return true;
      };

      mac::DomainSim sim(cfg, static_cast<std::uint32_t>(d));
      if (topo == nullptr) {
        for (mac::FlowSpec& f : build_flows(ep, s)) {
          sim.add_flow(std::move(f));
        }
      } else if (ep.phase != nullptr) {
        std::vector<mac::FlowSpec> flows;
        for (std::size_t local = 1; local <= members.size(); ++local) {
          append_flows(flows, *ep.phase,
                       static_cast<mac::NodeId>(local));
        }
        for (mac::FlowSpec& f : flows) sim.add_flow(std::move(f));
      }
      const mac::SimResult res = sim.run();

      // Episode-end invariants run only on domains that completed without
      // a stop event: a stopping repeat is re-run live anyway, so
      // skipping its partial slice keeps detached and live passes
      // bit-identical.
      if (!stop_episode) {
        if (opts.check_fairness) {
          if (auto v = check_fairness(res, opts.fairness,
                                      frame_base + episode_judged, ep.stop,
                                      ei, repeat, &out.margins)) {
            out.violations.push_back(std::move(*v));
            stop_campaign = stop_episode = true;
          }
        }
        if (!stop_episode && opts.check_energy) {
          if (auto v = check_energy(res, frame_base + episode_judged,
                                    ep.stop, ei, repeat, &out.margins)) {
            out.violations.push_back(std::move(*v));
            stop_campaign = stop_episode = true;
          }
        }
      }

      episode_judged_total += episode_judged;
      episode_steps_total += episode_steps;
      out.sim_seconds += res.duration;
      summary.goodput_bps +=
          res.downlink_goodput_bps + res.uplink_goodput_bps;
      if (topo != nullptr) {
        obs::Registry::current().counter("sim.bss_domain_runs").add();
      }
    }

    out.judged += episode_judged_total;
    ++out.episodes_run;
    summary.frames_judged = episode_judged_total;
    out.summaries.push_back(summary);
    out.episode_steps.push_back(episode_steps_total);
    if (stop_episode) break;
  }

  out.stopped = stop_campaign;
  return out;
}

/// Append a finished repeat's output to the campaign report.
void consume_repeat(SoakReport& report, RepeatOutcome&& o) {
  report.frames_judged += o.judged;
  report.steps += o.steps;
  report.probes += o.probes;
  report.episodes_run += o.episodes_run;
  report.sim_seconds += o.sim_seconds;
  std::move(o.summaries.begin(), o.summaries.end(),
            std::back_inserter(report.episode_summaries));
  std::move(o.violations.begin(), o.violations.end(),
            std::back_inserter(report.violations));
  report.margins.merge_from(o.margins);
}

/// Would the serial campaign have stopped inside this repeat? True when
/// the detached pass hit a violation, or when the real campaign frame
/// base pushes some observed step across the frame budget or the
/// scripted injection frame. Exactness: within an episode
/// view.frames_judged is monotone and ends at the summary's count, so a
/// threshold is crossed at some observer step iff it is crossed at the
/// episode's final count — provided the observer fired at all, hence the
/// episode_steps guard. Which stop event wins (and at which coordinates)
/// is settled by the authoritative live re-run, not here.
bool repeat_is_stopping(const RepeatOutcome& o, const Scenario& s,
                        const SoakOptions& opts,
                        std::uint64_t campaign_base) {
  if (!o.violations.empty() || o.stopped) return true;
  std::uint64_t base = campaign_base;
  for (std::size_t i = 0; i < o.summaries.size(); ++i) {
    const std::uint64_t judged = o.summaries[i].frames_judged;
    if (o.episode_steps[i] > 0) {
      if (opts.max_frames > 0 && base + judged >= opts.max_frames) {
        return true;
      }
      if (s.inject && base + judged >= s.inject->frame) return true;
    }
    base += judged;
  }
  return false;
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t repeat,
                          std::uint64_t salt) noexcept {
  std::uint64_t sm = seed ^ (0x9e3779b97f4a7c15ULL * (repeat + 1)) ^
                     (0xbf58476d1ce4e5b9ULL * (salt + 1));
  return splitmix64(sm);
}

SoakReport SoakRunner::run(const Scenario& scenario) const {
  // Everything a detached repeat job reads lives in this jointly-owned
  // block: parallel wave jobs capture the shared_ptr by value, so a
  // watchdog-abandoned attempt thread (detached in
  // par::detail::run_attempt_with_watchdog) that outlives this frame —
  // or this SoakRunner — still runs against live scenario, episode,
  // topology, and option state instead of dangling references. Episode
  // phase pointers alias ctx->s.traffic, which is why the scenario and
  // its episodes must share one lifetime.
  struct CampaignCtx {
    Scenario s;
    SoakOptions opts;
    std::optional<TopoCtx> topo;
    std::vector<Episode> episodes;
  };
  auto ctx = std::make_shared<CampaignCtx>();
  ctx->s = scenario;
  ctx->opts = opts_;
  Scenario& s = ctx->s;
  if (s.traffic.empty()) {
    // An empty mix would soak an idle channel; default to the steady CBR
    // load every built-in scenario uses.
    s.traffic.push_back({0.0, TrafficKind::kCbr, 1200, 4e-3});
  }

  SoakReport report;

  // ----- checkpoint resume (docs/FAULT_TOLERANCE.md) -----
  // Digests are computed over the *effective* scenario (after the
  // traffic default above), matching what make_checkpoint records.
  std::size_t start_repeat = 0;
  const bool checkpointing = !opts_.checkpoint_dir.empty();
  const std::string ck_path =
      checkpointing ? checkpoint_path(opts_.checkpoint_dir, s.name)
                    : std::string();
  if (checkpointing && opts_.resume) {
    std::ifstream in(ck_path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      const CheckpointParseResult parsed = checkpoint_from_json(buf.str());
      if (!parsed.ok()) {
        report.resume_error =
            ck_path + ": " + parsed.error.to_string();
        return report;
      }
      const CampaignCheckpoint& ck = *parsed.checkpoint;
      if (ck.schema_version != kCheckpointSchemaVersion) {
        report.resume_error =
            ck_path + ": schema_version " +
            std::to_string(ck.schema_version) + " (want " +
            std::to_string(kCheckpointSchemaVersion) + ")";
        return report;
      }
      if (ck.scenario_digest != scenario_digest(s)) {
        report.resume_error =
            ck_path + ": scenario digest mismatch (checkpoint is for a "
                      "different scenario)";
        return report;
      }
      if (ck.options_digest != soak_options_digest(opts_)) {
        report.resume_error =
            ck_path + ": options digest mismatch (campaign knobs "
                      "changed since the checkpoint)";
        return report;
      }
      report.resumed = true;
      report.resumed_repeats = ck.repeats_done;
      report.frames_judged = ck.frames_judged;
      report.steps = ck.steps;
      report.probes = ck.probes;
      report.episodes_run = ck.episodes_run;
      report.sim_seconds = ck.sim_seconds;
      report.episode_summaries = ck.episodes;
      report.repeats = ck.repeats_done;
      for (const auto& [name, margin] : ck.margins) {
        report.margins.observe(name, margin);
      }
      obs::Registry::current().restore(ck.registry);
      if (obs::SpanCollector* sc = obs::SpanCollector::current();
          sc != nullptr) {
        sc->restore_allocated(ck.span_watermark);
      }
      start_repeat = ck.repeats_done;
      obs::Registry::current().counter("chaos.checkpoint_resume").add();
    }
    // No checkpoint file yet: fall through to a fresh campaign.
  }

  // Campaign-start instrumentation is part of the restored snapshot on a
  // resume — adding it again would double-count.
  if (!report.resumed) {
    obs::Registry::current().counter("chaos.campaigns").add();
  }

  // Multi-BSS topology: build the campus once per campaign and cut the
  // timeline at handover instants so every episode slice has constant
  // associations (docs/MULTI_AP.md).
  ctx->topo = make_topo_ctx(s);
  const TopoCtx* topo = ctx->topo.has_value() ? &*ctx->topo : nullptr;
  if (topo != nullptr && !report.resumed) {
    obs::Registry& reg = obs::Registry::current();
    reg.counter("mac.roam_handover")
        .add(topo->timeline.handovers().size());
    reg.set_gauge("sim.bss_ap_count",
                  static_cast<double>(topo->topo.ap_count()));
    std::size_t cochannel_pairs = 0;
    for (std::size_t a = 0; a < topo->topo.ap_count(); ++a) {
      for (std::size_t b = a + 1; b < topo->topo.ap_count(); ++b) {
        if (topo->topo.channel_of(a) == topo->topo.channel_of(b)) {
          ++cochannel_pairs;
        }
      }
    }
    reg.set_gauge("sim.bss_cochannel_pairs",
                  static_cast<double>(cochannel_pairs));
  }

  ctx->episodes = segment_timeline(
      s, topo != nullptr ? topo->timeline.handover_times()
                         : std::vector<double>{});
  const std::vector<Episode>& episodes = ctx->episodes;
  const std::size_t max_repeats =
      std::max<std::size_t>(1, opts_.max_repeats);
  const std::size_t threads =
      opts_.threads == 0 ? par::hardware_threads() : opts_.threads;

  // Flush a resumable checkpoint covering exactly `repeats_done` cleanly
  // consumed repeats. Only clean, non-degraded prefixes are recorded: a
  // checkpoint written past a quarantined repeat or a violation would
  // resume into a hole. Flushes happen strictly *before* the
  // end-of-campaign finalization below, so a resumed run replays the
  // finalization (goodput mean, cliff check, end counters) itself and
  // lands on the uninterrupted run's exact registry state.
  const std::size_t checkpoint_every =
      std::max<std::size_t>(1, opts_.checkpoint_every);
  const auto flush_checkpoint = [&](std::size_t repeats_done) {
    if (!checkpointing) return;
    if (!report.violations.empty()) return;
    if (report.degraded.degraded()) return;
    const CampaignCheckpoint ck =
        make_checkpoint(s, opts_, report, repeats_done);
    if (write_checkpoint_file(ck_path, ck)) {
      report.checkpoint_path = ck_path;
      obs::Registry::current().counter("chaos.checkpoint_write").add();
    }
  };

  // A resumed campaign that already met its budget (or was single-pass)
  // has no repeats left — skip straight to finalization.
  const bool already_complete =
      report.resumed && (opts_.max_frames == 0 ||
                         report.frames_judged >= opts_.max_frames);

  // Retry/fault-injection campaigns route through the wave scheduler
  // even at threads<=1, so injected faults and retries behave
  // identically at any thread count. Single-pass runs (max_frames == 0)
  // have exactly one repeat and keep the classic serial path —
  // re-running the whole campaign is the retry story there.
  const bool resilient =
      opts_.retry.enabled() || opts_.fault_plan.has_value();

  if (already_complete) {
    // Nothing to run.
  } else if ((threads <= 1 && !resilient) || opts_.max_frames == 0) {
    // Serial campaign: every repeat live, in order. A single-pass run
    // (max_frames == 0) has exactly one repeat, so there is nothing to
    // parallelise regardless of the thread knob.
    for (std::size_t repeat = start_repeat; repeat < max_repeats;
         ++repeat) {
      report.repeats = repeat + 1;
      RepeatOutcome o = run_one_repeat(s, episodes, topo, repeat,
                                       report.frames_judged, opts_,
                                       /*live=*/true);
      const bool stopped = o.stopped;
      consume_repeat(report, std::move(o));
      if (stopped) break;
      if (opts_.max_frames == 0) break;
      if (report.frames_judged >= opts_.max_frames) break;
      if ((repeat + 1) % checkpoint_every == 0) {
        flush_checkpoint(repeat + 1);
      }
    }
  } else {
    // Parallel campaign: waves of detached repeats fan across the pool,
    // each under its own metric shard. Walking the wave in repeat order,
    // clean repeats are consumed as-is (a detached pass with no stop
    // event is bit-identical to the live pass, so shard metrics merge
    // into the ambient registry and the outcome joins the report). The
    // first repeat the serial campaign would have stopped in is re-run
    // live on this thread with the real frame base — that re-run, not
    // the detached shard, supplies the authoritative violations,
    // coordinates, and metrics; the shard and everything after it in
    // the wave are discarded. Net: the SoakReport and the ambient
    // registry are bit-for-bit what the serial loop produces.
    std::size_t next_repeat = start_repeat;
    std::size_t last_flush = start_repeat;
    bool stop = false;
    while (!stop && next_repeat < max_repeats &&
           report.frames_judged < opts_.max_frames) {
      const std::size_t wave =
          std::min(std::max<std::size_t>(1, threads),
                   max_repeats - next_repeat);
      // Captures by value only: `base` because this thread mutates
      // next_repeat while detached attempts may still be running, and
      // `ctx` so an abandoned attempt keeps the campaign state alive
      // (run_sharded_resilient copies the callable into shared state
      // that outlives this frame).
      const std::size_t base = next_repeat;
      const auto repeat_job = [ctx, base](const par::ShardInfo& info) {
        const TopoCtx* job_topo =
            ctx->topo.has_value() ? &*ctx->topo : nullptr;
        return run_one_repeat(ctx->s, ctx->episodes, job_topo,
                              base + info.index,
                              /*campaign_base=*/0, ctx->opts,
                              /*live=*/false);
      };
      par::Sharded<RepeatOutcome> shards;
      par::DegradedReport wave_degraded;
      if (resilient) {
        // Fault-plan entries address campaign repeat numbers; re-base
        // them onto this wave's shard indices.
        par::FaultPlan windowed;
        const par::FaultPlan* plan = nullptr;
        if (opts_.fault_plan.has_value()) {
          windowed = opts_.fault_plan->window(next_repeat, wave);
          plan = &windowed;
        }
        shards = par::run_sharded_resilient(wave, threads, opts_.retry,
                                            plan, repeat_job,
                                            &wave_degraded);
      } else {
        shards = par::run_sharded_keep(wave, threads, repeat_job);
      }
      // Quarantined repeats: remap wave-local indices back to campaign
      // repeat numbers and keep going — the campaign degrades, it does
      // not abort. Their default-constructed outcomes are skipped below.
      std::vector<char> lost(wave, 0);
      for (const par::QuarantinedShard& q : wave_degraded.quarantined) {
        lost[q.index] = 1;
        report.degraded.quarantined.push_back(
            {next_repeat + q.index, q.attempts, q.error});
      }
      report.degraded.retries += wave_degraded.retries;
      report.degraded.stalls += wave_degraded.stalls;
      for (std::size_t i = 0; i < wave; ++i) {
        const std::size_t repeat = next_repeat + i;
        report.repeats = repeat + 1;
        if (lost[i] != 0) continue;
        if (repeat_is_stopping(shards.results[i], s, opts_,
                               report.frames_judged)) {
          RepeatOutcome real =
              run_one_repeat(s, episodes, topo, repeat,
                             report.frames_judged, opts_, /*live=*/true);
          const bool stopped = real.stopped;
          consume_repeat(report, std::move(real));
          if (stopped || report.frames_judged >= opts_.max_frames) {
            stop = true;
            break;
          }
          continue;
        }
        if (shards.metrics[i] != nullptr) {
          obs::Registry::current().merge_from(*shards.metrics[i]);
        }
        // Span buffers follow the same consume-or-discard rule as shard
        // metrics: clean repeats merge index-ordered; a stopping repeat's
        // detached shard was discarded above because the live re-run
        // already wrote the authoritative spans into the ambient
        // collector.
        if (i < shards.spans.size() && shards.spans[i] != nullptr) {
          if (obs::SpanCollector* sc = obs::SpanCollector::current();
              sc != nullptr) {
            sc->merge_from(*shards.spans[i]);
          }
        }
        consume_repeat(report, std::move(shards.results[i]));
      }
      next_repeat += wave;
      if (!stop && next_repeat - last_flush >= checkpoint_every) {
        flush_checkpoint(next_repeat);
        last_flush = next_repeat;
      }
    }
  }

  // Final checkpoint: a clean, non-degraded campaign leaves a resume
  // point covering everything it consumed, so `--resume` after the fact
  // is a no-op that reproduces the same report and fingerprint.
  flush_checkpoint(report.repeats);

  // Judged-episode goodput mean, reduced in episode order (KahanSum for
  // stability; the fixed order is what makes it thread-count invariant).
  par::KahanSum goodput_sum;
  std::size_t goodput_n = 0;
  for (const EpisodeSummary& ep : report.episode_summaries) {
    if (ep.frames_judged > 0) {
      goodput_sum.add(ep.goodput_bps);
      ++goodput_n;
    }
  }
  if (goodput_n > 0) {
    report.mean_goodput_bps =
        goodput_sum.value() / static_cast<double>(goodput_n);
  }

  if (report.violations.empty() && opts_.check_cliffs) {
    if (auto v = check_goodput_cliffs(report.episode_summaries, 0.10,
                                      &report.margins)) {
      report.violations.push_back(std::move(*v));
    }
  }

  obs::Registry& reg = obs::Registry::current();
  reg.counter("chaos.violations").add(report.violations.size());
  reg.counter("chaos.frames_judged").add(report.frames_judged);

  if (!report.violations.empty() && !opts_.bundle_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts_.bundle_dir, ec);
    if (!ec) {
      ReproBundle bundle{scenario, report.violations.front()};
      const std::string path = opts_.bundle_dir + "/bundle_" + s.name +
                               "_" + bundle.violation.invariant + ".json";
      std::ofstream out(path);
      if (out) {
        out << bundle_to_json(bundle);
        report.bundle_path = path;
        reg.counter("chaos.bundles_written").add();
      }
    }
  }

  return report;
}

// -------------------------------------------------------- repro bundles

std::string bundle_to_json(const ReproBundle& bundle) {
  JsonObject root;
  json_set(root, "schema_version", JsonValue(1.0));
  JsonObject v;
  json_set(v, "invariant", JsonValue(bundle.violation.invariant));
  json_set(v, "detail", JsonValue(bundle.violation.detail));
  json_set(v, "frame",
           JsonValue(static_cast<double>(bundle.violation.frame)));
  json_set(v, "time", JsonValue(bundle.violation.time));
  json_set(v, "episode",
           JsonValue(static_cast<double>(bundle.violation.episode)));
  json_set(v, "repeat",
           JsonValue(static_cast<double>(bundle.violation.repeat)));
  json_set(root, "violation", JsonValue(std::move(v)));
  json_set(root, "scenario", scenario_to_value(bundle.scenario));
  return json_dump(JsonValue(std::move(root)));
}

BundleParseResult bundle_from_json(std::string_view text) {
  BundleParseResult out;
  const JsonParseResult doc = json_parse(text);
  if (!doc.ok()) {
    out.error.message = "JSON syntax error at " + doc.error.to_string();
    return out;
  }
  const JsonValue& root = *doc.value;
  if (!root.is_object()) {
    out.error.message = "bundle must be a JSON object";
    return out;
  }
  const JsonValue* v = root.find("violation");
  if (v == nullptr || !v->is_object()) {
    out.error.path = "violation";
    out.error.message = "required object missing";
    return out;
  }
  ReproBundle bundle;
  const JsonValue* inv = v->find("invariant");
  if (inv == nullptr || !inv->is_string()) {
    out.error.path = "violation.invariant";
    out.error.message = "expected a string";
    return out;
  }
  bundle.violation.invariant = inv->as_string();
  if (const JsonValue* d = v->find("detail");
      d != nullptr && d->is_string()) {
    bundle.violation.detail = d->as_string();
  }
  const JsonValue* frame = v->find("frame");
  if (frame == nullptr || !frame->is_number() ||
      frame->as_number() < 0.0 ||
      frame->as_number() != std::floor(frame->as_number())) {
    out.error.path = "violation.frame";
    out.error.message = "expected a non-negative integer";
    return out;
  }
  bundle.violation.frame =
      static_cast<std::uint64_t>(frame->as_number());
  if (const JsonValue* t = v->find("time");
      t != nullptr && t->is_number()) {
    bundle.violation.time = t->as_number();
  }
  if (const JsonValue* e = v->find("episode");
      e != nullptr && e->is_number()) {
    bundle.violation.episode =
        static_cast<std::size_t>(e->as_number());
  }
  if (const JsonValue* r = v->find("repeat");
      r != nullptr && r->is_number()) {
    bundle.violation.repeat = static_cast<std::size_t>(r->as_number());
  }
  const JsonValue* sc = root.find("scenario");
  if (sc == nullptr) {
    out.error.path = "scenario";
    out.error.message = "required object missing";
    return out;
  }
  ScenarioParseResult parsed = scenario_from_value(*sc);
  if (!parsed.ok()) {
    out.error.path = "scenario." + parsed.error.path;
    out.error.message = parsed.error.message;
    return out;
  }
  bundle.scenario = std::move(*parsed.scenario);
  out.bundle = std::move(bundle);
  return out;
}

ReplayResult replay_bundle(const ReproBundle& bundle) {
  SoakOptions opts;
  // Run far enough to cross the recorded frame even when the violation
  // happened on a later timeline repeat; skip campaign-level checks.
  opts.max_frames = bundle.violation.frame + 1;
  opts.check_cliffs = false;
  const SoakReport report = SoakRunner(opts).run(bundle.scenario);

  ReplayResult out;
  if (!report.violations.empty()) {
    out.violation = report.violations.front();
    out.reproduced =
        out.violation->invariant == bundle.violation.invariant &&
        out.violation->frame == bundle.violation.frame &&
        out.violation->episode == bundle.violation.episode &&
        out.violation->repeat == bundle.violation.repeat;
  }
  return out;
}

}  // namespace carpool::chaos
