#include "chaos/checkpoint.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "chaos/json.hpp"
#include "obs/span.hpp"

namespace carpool::chaos {
namespace {

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix_u64(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ static_cast<std::uint8_t>(v >> (8 * i))) * 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix_double(std::uint64_t h, double v) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return mix_u64(h, bits);
}

std::string hex_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
  return buf;
}

bool parse_hex_u64(const JsonValue* v, std::uint64_t& out) {
  if (v == nullptr || !v->is_string()) return false;
  const std::string& s = v->as_string();
  if (s.size() < 3 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X')) {
    return false;
  }
  char* end = nullptr;
  out = std::strtoull(s.c_str() + 2, &end, 16);
  return end != nullptr && *end == '\0';
}

// ------------------------------------------------------- field readers
// All return false (and fill `err` with a dotted path) on shape errors,
// so checkpoint_from_json never throws.

bool want_u64(const JsonValue* v, const char* path, std::uint64_t& out,
              ScenarioError& err) {
  if (!json_to_u64(v, out)) {
    err = {path, "expected a non-negative integer (<= 2^53)"};
    return false;
  }
  return true;
}

bool want_double(const JsonValue* v, const char* path, double& out,
                 ScenarioError& err) {
  if (v == nullptr || !v->is_number()) {
    err = {path, "expected a number"};
    return false;
  }
  out = v->as_number();
  return true;
}

bool want_string(const JsonValue* v, const char* path, std::string& out,
                 ScenarioError& err) {
  if (v == nullptr || !v->is_string()) {
    err = {path, "expected a string"};
    return false;
  }
  out = v->as_string();
  return true;
}

JsonValue episode_to_value(const EpisodeSummary& e) {
  JsonObject o;
  json_set(o, "index", JsonValue(static_cast<double>(e.index)));
  json_set(o, "repeat", JsonValue(static_cast<double>(e.repeat)));
  json_set(o, "start", JsonValue(e.start));
  json_set(o, "stop", JsonValue(e.stop));
  json_set(o, "intensity", JsonValue(e.intensity));
  json_set(o, "goodput_bps", JsonValue(e.goodput_bps));
  json_set(o, "frames_judged",
           JsonValue(static_cast<double>(e.frames_judged)));
  return JsonValue(std::move(o));
}

}  // namespace

std::uint64_t scenario_digest(const Scenario& s) {
  return fnv1a(scenario_to_json(s));
}

std::uint64_t soak_options_digest(const SoakOptions& opts) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix_u64(h, opts.max_frames);
  h = mix_u64(h, opts.check_cliffs ? 1 : 0);
  h = mix_u64(h, opts.check_fairness ? 1 : 0);
  h = mix_double(h, opts.fairness.jain_floor);
  h = mix_double(h, opts.fairness.min_share_floor);
  h = mix_u64(h, opts.fairness.min_frames);
  h = mix_u64(h, opts.check_energy ? 1 : 0);
  h = mix_double(h, opts.rte_norm_bound);
  return h;
}

std::string checkpoint_to_json(const CampaignCheckpoint& ck) {
  JsonObject root;
  json_set(root, "schema_version",
           JsonValue(static_cast<double>(ck.schema_version)));
  json_set(root, "scenario_name", JsonValue(ck.scenario_name));
  json_set(root, "scenario_digest", JsonValue(hex_u64(ck.scenario_digest)));
  json_set(root, "options_digest", JsonValue(hex_u64(ck.options_digest)));
  json_set(root, "repeats_done",
           JsonValue(static_cast<double>(ck.repeats_done)));
  json_set(root, "frames_judged",
           JsonValue(static_cast<double>(ck.frames_judged)));
  json_set(root, "steps", JsonValue(static_cast<double>(ck.steps)));
  json_set(root, "probes", JsonValue(static_cast<double>(ck.probes)));
  json_set(root, "episodes_run",
           JsonValue(static_cast<double>(ck.episodes_run)));
  json_set(root, "sim_seconds", JsonValue(ck.sim_seconds));
  json_set(root, "span_watermark",
           JsonValue(static_cast<double>(ck.span_watermark)));

  JsonArray episodes;
  episodes.reserve(ck.episodes.size());
  for (const EpisodeSummary& e : ck.episodes) {
    episodes.push_back(episode_to_value(e));
  }
  json_set(root, "episodes", JsonValue(std::move(episodes)));

  JsonObject margins;
  for (const auto& [name, margin] : ck.margins) {
    json_set(margins, name, JsonValue(margin));
  }
  json_set(root, "margins", JsonValue(std::move(margins)));

  JsonObject counters;
  for (const auto& row : ck.registry.counters) {
    json_set(counters, row.name, JsonValue(static_cast<double>(row.value)));
  }
  JsonObject gauges;
  for (const auto& row : ck.registry.gauges) {
    json_set(gauges, row.name, JsonValue(row.value));
  }
  JsonObject histograms;
  for (const auto& row : ck.registry.histograms) {
    JsonObject hist;
    json_set(hist, "unit", JsonValue(row.unit));
    json_set(hist, "count", JsonValue(static_cast<double>(row.count)));
    json_set(hist, "sum", JsonValue(row.sum));
    json_set(hist, "min", JsonValue(row.min));
    json_set(hist, "max", JsonValue(row.max));
    JsonArray bounds;
    bounds.reserve(row.bounds.size());
    for (const double b : row.bounds) bounds.push_back(JsonValue(b));
    json_set(hist, "bounds", JsonValue(std::move(bounds)));
    JsonArray buckets;
    buckets.reserve(row.buckets.size());
    for (const std::uint64_t b : row.buckets) {
      buckets.push_back(JsonValue(static_cast<double>(b)));
    }
    json_set(hist, "buckets", JsonValue(std::move(buckets)));
    json_set(histograms, row.name, JsonValue(std::move(hist)));
  }
  JsonObject registry;
  json_set(registry, "counters", JsonValue(std::move(counters)));
  json_set(registry, "gauges", JsonValue(std::move(gauges)));
  json_set(registry, "histograms", JsonValue(std::move(histograms)));
  json_set(root, "registry", JsonValue(std::move(registry)));

  return json_dump(JsonValue(std::move(root)));
}

CheckpointParseResult checkpoint_from_json(std::string_view text) {
  CheckpointParseResult result;
  const JsonParseResult parsed = json_parse(text);
  if (!parsed.ok()) {
    result.error = {"", "checkpoint JSON: " + parsed.error.to_string()};
    return result;
  }
  const JsonValue& root = *parsed.value;
  if (!root.is_object()) {
    result.error = {"", "checkpoint root must be an object"};
    return result;
  }

  CampaignCheckpoint ck;
  ScenarioError err;
  std::uint64_t u = 0;
  if (!want_u64(root.find("schema_version"), "schema_version", u, err)) {
    result.error = err;
    return result;
  }
  ck.schema_version = static_cast<std::int64_t>(u);
  if (!want_string(root.find("scenario_name"), "scenario_name",
                   ck.scenario_name, err)) {
    result.error = err;
    return result;
  }
  if (!parse_hex_u64(root.find("scenario_digest"), ck.scenario_digest)) {
    result.error = {"scenario_digest", "expected a 0x-prefixed hex string"};
    return result;
  }
  if (!parse_hex_u64(root.find("options_digest"), ck.options_digest)) {
    result.error = {"options_digest", "expected a 0x-prefixed hex string"};
    return result;
  }
  if (!want_u64(root.find("repeats_done"), "repeats_done", u, err)) {
    result.error = err;
    return result;
  }
  ck.repeats_done = static_cast<std::size_t>(u);
  if (!want_u64(root.find("frames_judged"), "frames_judged",
                ck.frames_judged, err) ||
      !want_u64(root.find("steps"), "steps", ck.steps, err) ||
      !want_u64(root.find("probes"), "probes", ck.probes, err)) {
    result.error = err;
    return result;
  }
  if (!want_u64(root.find("episodes_run"), "episodes_run", u, err)) {
    result.error = err;
    return result;
  }
  ck.episodes_run = static_cast<std::size_t>(u);
  if (!want_double(root.find("sim_seconds"), "sim_seconds", ck.sim_seconds,
                   err) ||
      !want_u64(root.find("span_watermark"), "span_watermark",
                ck.span_watermark, err)) {
    result.error = err;
    return result;
  }

  const JsonValue* episodes = root.find("episodes");
  if (episodes == nullptr || !episodes->is_array()) {
    result.error = {"episodes", "expected an array"};
    return result;
  }
  for (const JsonValue& ev : episodes->as_array()) {
    if (!ev.is_object()) {
      result.error = {"episodes[]", "expected an object"};
      return result;
    }
    EpisodeSummary e;
    if (!want_u64(ev.find("index"), "episodes[].index", u, err)) {
      result.error = err;
      return result;
    }
    e.index = static_cast<std::size_t>(u);
    if (!want_u64(ev.find("repeat"), "episodes[].repeat", u, err)) {
      result.error = err;
      return result;
    }
    e.repeat = static_cast<std::size_t>(u);
    if (!want_double(ev.find("start"), "episodes[].start", e.start, err) ||
        !want_double(ev.find("stop"), "episodes[].stop", e.stop, err) ||
        !want_double(ev.find("intensity"), "episodes[].intensity",
                     e.intensity, err) ||
        !want_double(ev.find("goodput_bps"), "episodes[].goodput_bps",
                     e.goodput_bps, err) ||
        !want_u64(ev.find("frames_judged"), "episodes[].frames_judged",
                  e.frames_judged, err)) {
      result.error = err;
      return result;
    }
    ck.episodes.push_back(e);
  }

  const JsonValue* margins = root.find("margins");
  if (margins == nullptr || !margins->is_object()) {
    result.error = {"margins", "expected an object"};
    return result;
  }
  for (const auto& [name, mv] : margins->as_object()) {
    if (!mv.is_number()) {
      result.error = {"margins." + name, "expected a number"};
      return result;
    }
    ck.margins.emplace_back(name, mv.as_number());
  }

  const JsonValue* registry = root.find("registry");
  if (registry == nullptr || !registry->is_object()) {
    result.error = {"registry", "expected an object"};
    return result;
  }
  const JsonValue* counters = registry->find("counters");
  if (counters == nullptr || !counters->is_object()) {
    result.error = {"registry.counters", "expected an object"};
    return result;
  }
  for (const auto& [name, cv] : counters->as_object()) {
    obs::MetricsSnapshot::CounterRow row;
    row.name = name;
    if (!json_to_u64(&cv, row.value)) {
      result.error = {"registry.counters." + name,
                      "expected a non-negative integer (<= 2^53)"};
      return result;
    }
    ck.registry.counters.push_back(std::move(row));
  }
  const JsonValue* gauges = registry->find("gauges");
  if (gauges == nullptr || !gauges->is_object()) {
    result.error = {"registry.gauges", "expected an object"};
    return result;
  }
  for (const auto& [name, gv] : gauges->as_object()) {
    if (!gv.is_number()) {
      result.error = {"registry.gauges." + name, "expected a number"};
      return result;
    }
    obs::MetricsSnapshot::GaugeRow row;
    row.name = name;
    row.value = gv.as_number();
    ck.registry.gauges.push_back(std::move(row));
  }
  const JsonValue* histograms = registry->find("histograms");
  if (histograms == nullptr || !histograms->is_object()) {
    result.error = {"registry.histograms", "expected an object"};
    return result;
  }
  for (const auto& [name, hv] : histograms->as_object()) {
    if (!hv.is_object()) {
      result.error = {"registry.histograms." + name, "expected an object"};
      return result;
    }
    obs::MetricsSnapshot::HistogramRow row;
    row.name = name;
    if (!want_string(hv.find("unit"), "registry.histograms[].unit",
                     row.unit, err) ||
        !want_u64(hv.find("count"), "registry.histograms[].count",
                  row.count, err) ||
        !want_double(hv.find("sum"), "registry.histograms[].sum", row.sum,
                     err) ||
        !want_double(hv.find("min"), "registry.histograms[].min", row.min,
                     err) ||
        !want_double(hv.find("max"), "registry.histograms[].max", row.max,
                     err)) {
      result.error = err;
      return result;
    }
    const JsonValue* bounds = hv.find("bounds");
    const JsonValue* buckets = hv.find("buckets");
    if (bounds == nullptr || !bounds->is_array() || buckets == nullptr ||
        !buckets->is_array()) {
      result.error = {"registry.histograms." + name,
                      "expected bounds/buckets arrays"};
      return result;
    }
    for (const JsonValue& b : bounds->as_array()) {
      if (!b.is_number()) {
        result.error = {"registry.histograms." + name + ".bounds",
                        "expected numbers"};
        return result;
      }
      row.bounds.push_back(b.as_number());
    }
    for (const JsonValue& b : buckets->as_array()) {
      std::uint64_t bucket = 0;
      if (!json_to_u64(&b, bucket)) {
        result.error = {"registry.histograms." + name + ".buckets",
                        "expected non-negative integers (<= 2^53)"};
        return result;
      }
      row.buckets.push_back(bucket);
    }
    if (row.buckets.size() != row.bounds.size() + 1) {
      result.error = {"registry.histograms." + name,
                      "buckets must have bounds+1 entries"};
      return result;
    }
    row.mean = row.count == 0
                   ? 0.0
                   : row.sum / static_cast<double>(row.count);
    ck.registry.histograms.push_back(std::move(row));
  }

  result.checkpoint = std::move(ck);
  return result;
}

std::string checkpoint_path(const std::string& dir,
                            const std::string& scenario_name) {
  std::string safe;
  safe.reserve(scenario_name.size());
  for (const char c : scenario_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    safe += ok ? c : '_';
  }
  if (safe.empty()) safe = "scenario";
  return dir + "/checkpoint_" + safe + ".json";
}

bool write_state_file_atomic(const std::string& path,
                             std::string_view contents) {
  const std::filesystem::path target(path);
  std::error_code ec;
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
    // "already exists" is fine; real failures surface at the write below.
  }
  const std::string tmp = path + ".tmp";
#if defined(_WIN32)
  // No portable fsync: fall back to plain buffered write + rename.
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) return false;
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    if (!out) return false;
  }
#else
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  bool ok = true;
  std::size_t off = 0;
  while (off < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  // fsync before rename: otherwise a power loss after the rename can
  // leave a zero-length or torn file under the *final* name, which a
  // later --resume parses and aborts on.
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (!ok) {
    std::filesystem::remove(std::filesystem::path(tmp), ec);
    return false;
  }
#endif
  std::filesystem::rename(std::filesystem::path(tmp), target, ec);
  if (ec) {
    std::filesystem::remove(std::filesystem::path(tmp), ec);
    return false;
  }
#if !defined(_WIN32)
  // Make the rename durable too. Best effort: the file data is already
  // safe, and some filesystems reject opening directories.
  const std::string dir = target.has_parent_path()
                              ? target.parent_path().string()
                              : std::string(".");
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
#endif
  return true;
}

bool write_checkpoint_file(const std::string& path,
                           const CampaignCheckpoint& ck) {
  return write_state_file_atomic(path, checkpoint_to_json(ck));
}

CampaignCheckpoint make_checkpoint(const Scenario& scenario,
                                   const SoakOptions& opts,
                                   const SoakReport& report,
                                   std::size_t repeats_done) {
  CampaignCheckpoint ck;
  ck.scenario_name = scenario.name;
  ck.scenario_digest = scenario_digest(scenario);
  ck.options_digest = soak_options_digest(opts);
  ck.repeats_done = repeats_done;
  ck.frames_judged = report.frames_judged;
  ck.steps = report.steps;
  ck.probes = report.probes;
  ck.episodes_run = report.episodes_run;
  ck.sim_seconds = report.sim_seconds;
  ck.episodes = report.episode_summaries;
  for (const auto& [name, margin] : report.margins.minima()) {
    ck.margins.emplace_back(name, margin);
  }
  ck.registry = obs::Registry::current().snapshot();
  if (const obs::SpanCollector* spans = obs::SpanCollector::current();
      spans != nullptr) {
    ck.span_watermark = spans->allocated();
  }
  return ck;
}

}  // namespace carpool::chaos
