#pragma once

// carpool::chaos — coverage-guided scenario fuzzing (docs/SOAK.md).
//
// The fuzzer hill-climbs two signals the soak engine already produces:
//   * coverage — a log2-bucketed digest of the obs counter surface after
//     an evaluation (coverage_signature). A mutant that drives any
//     counter into a bucket no corpus entry has seen is novel.
//   * invariant margins — SoakReport::min_margin(), the smallest
//     proximity-to-violation distance any invariant reported
//     (chaos/invariants.hpp). Smaller is closer to a bug.
// Each round the engine picks parents from the corpus (tournament by
// margin), applies one typed schema-valid mutation per mutant
// (ScenarioMutator — mutants always pass scenario_from_json validation
// by construction), evaluates the batch, and keeps mutants that are
// novel or tighten a known signature's margin. Violations become repro
// bundles and are auto-shrunk (chaos/shrink.hpp).
//
// Determinism: every RNG stream derives from (fuzz seed, round); mutant
// generation is serial; evaluations run inside private obs::Registry
// scopes and are consumed strictly in batch-index order, with each
// kept evaluation's metrics merged into the ambient registry at consume
// time. Corpus evolution, hits, and the ambient metric surface are
// therefore bit-identical at any --threads count.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/runner.hpp"
#include "chaos/scenario.hpp"
#include "common/rng.hpp"
#include "obs/registry.hpp"

namespace carpool::chaos {

/// Log2-bucketed FNV-1a digest of a registry's counter surface: for
/// every non-zero counter, (name, floor(log2(value)) + 1) feeds the
/// hash in sorted-name order. AFL-style hit-count bucketing — a counter
/// moving 3 -> 5 is the same signature, 3 -> 300 is a new one.
[[nodiscard]] std::uint64_t coverage_signature(const obs::Registry& reg);

struct MutatorConfig {
  /// Permit the inject_fault mutation (plants a scripted
  /// InjectedViolation). Off by default: injected faults are test
  /// scaffolding, not bugs, so a discovery campaign must not seed them.
  bool allow_inject = false;
  /// Ceiling for an injected fault's frame — keep it inside the
  /// per-evaluation frame budget or the fault can never fire.
  std::uint64_t inject_max_frame = 4000;
};

/// One applied mutation: the mutated scenario plus the (static-storage)
/// name of the operator that produced it.
struct Mutation {
  Scenario scenario;
  std::string_view op;
};

/// Typed, schema-valid-by-construction scenario mutator. Operators:
/// interference episode split / shift / intensify / add / drop, churn
/// add / drop, mobility waypoint jitter / track add, traffic phase
/// swap / retime, duration scale, reseed, SNR nudge, shadowing perturb,
/// and (gated) inject_fault. Every operator clamps its output to the
/// scenario schema's validation rules, so mutate() never produces a
/// scenario scenario_from_json would reject.
class ScenarioMutator {
 public:
  explicit ScenarioMutator(MutatorConfig config = {}) : config_(config) {}

  /// Apply one randomly chosen applicable operator. Operators that need
  /// absent structure (e.g. episode split with no interference) pass
  /// and another is drawn; reseed always applies, so this terminates.
  [[nodiscard]] Mutation mutate(const Scenario& base, Rng& rng) const;

  [[nodiscard]] const MutatorConfig& config() const noexcept {
    return config_;
  }

 private:
  MutatorConfig config_;
};

/// A corpus resident: the scenario, the coverage signature it produced,
/// and the smallest invariant margin its evaluation observed.
struct CorpusEntry {
  Scenario scenario;
  std::uint64_t signature = 0;
  double min_margin = 1.0;
  std::size_t round = 0;   ///< round the entry was admitted
  std::string op;          ///< operator that produced it ("seed" for seeds)
};

/// A violation the fuzzer found: the mutant, its violation, and the
/// auto-shrunk reproduction.
struct FuzzHit {
  Scenario scenario;        ///< mutant that violated
  Violation violation;
  Scenario shrunk;          ///< minimal reproducing scenario
  /// What `shrunk` actually produces — coordinates (episode, frame) can
  /// legitimately drift during reduction for non-injected invariants, so
  /// replaying {shrunk, violation} would spuriously fail. {shrunk,
  /// shrunk_violation} is always a self-contained, replayable bundle.
  Violation shrunk_violation;
  double timeline_ratio = 1.0;  ///< shrunk / original timeline length
  std::string bundle_path;  ///< non-empty when a bundle file was written
  std::size_t round = 0;
  std::size_t batch_index = 0;
  std::string op;           ///< operator that produced the mutant
};

struct FuzzOptions {
  std::size_t rounds = 16;       ///< mutation rounds after seeding
  std::size_t batch = 8;         ///< mutants evaluated per round
  std::uint64_t eval_frames = 4000;  ///< soak frame budget per evaluation
  std::uint64_t seed = 1;        ///< fuzz campaign seed
  std::size_t threads = 1;       ///< evaluation fan-out (carpool::par)
  std::size_t corpus_max = 64;   ///< eviction threshold (largest margin goes)
  bool stop_on_violation = true;
  bool shrink_hits = true;       ///< delta-debug hits into minimal repros
  bool allow_inject = false;     ///< arm the inject_fault operator
  std::string bundle_dir;        ///< write hit (and shrunk) bundles here
  double rte_norm_bound = 1e3;   ///< forwarded to the per-eval SoakOptions

  /// When non-empty, flush the corpus + campaign counters to
  /// `<dir>/fuzz_state.json` after every clean round
  /// (docs/FAULT_TOLERANCE.md). With `resume`, reload that state and
  /// continue from the next round: because each round's RNG derives
  /// purely from (seed, round) and the corpus round-trips bit-exactly
  /// through JSON, resumed corpus evolution is bit-identical to an
  /// uninterrupted campaign (corpus_digest is the canary; the ambient
  /// metric surface restarts from zero on resume).
  std::string checkpoint_dir;
  bool resume = false;
};

struct FuzzReport {
  std::size_t rounds_run = 0;
  std::uint64_t evals = 0;          ///< evaluations consumed
  std::uint64_t corpus_adds = 0;    ///< admissions (novel or tightened)
  std::vector<CorpusEntry> corpus;  ///< final corpus, admission order
  std::vector<FuzzHit> hits;

  /// True when this campaign restored a corpus from fuzz_state.json.
  bool resumed = false;
  /// Non-empty when --resume found a state file it could not use
  /// (version or seed mismatch, parse failure); the campaign did not
  /// run.
  std::string resume_error;

  [[nodiscard]] bool found() const noexcept { return !hits.empty(); }

  /// Order-stable digest of the evolved corpus: every entry's serialized
  /// scenario, signature, and margin bit pattern, FNV-1a folded in
  /// admission order. Equal digests mean bit-identical corpus evolution
  /// — the quantity the thread-count determinism test compares.
  [[nodiscard]] std::uint64_t corpus_digest() const;
};

/// Deterministic coverage-guided fuzz campaign over a seed corpus.
class FuzzEngine {
 public:
  explicit FuzzEngine(FuzzOptions opts = {}) : opts_(std::move(opts)) {}

  /// Seed the corpus by evaluating `seeds`, then run mutation rounds.
  /// Seeds that violate immediately count as hits.
  [[nodiscard]] FuzzReport run(const std::vector<Scenario>& seeds) const;

  [[nodiscard]] const FuzzOptions& options() const noexcept {
    return opts_;
  }

 private:
  FuzzOptions opts_;
};

}  // namespace carpool::chaos
