#pragma once

// carpool::chaos — auto-shrinking of failing scenarios (docs/SOAK.md).
//
// Given a repro bundle, delta-debug the timeline down to a minimal
// scenario that still reproduces the violation: greedily drop churn
// events, interference episodes, mobility tracks, and trailing traffic
// phases, halve the duration, and halve the station count — accepting a
// candidate only when a re-run still produces the same invariant (and,
// for injected faults, the exact same frame). Passes repeat to a
// fixpoint. Every candidate evaluation is a full deterministic soak, so
// the result is trustworthy by construction rather than by heuristic.

#include <cstdint>

#include "chaos/runner.hpp"

namespace carpool::chaos {

struct ShrinkResult {
  Scenario scenario;        ///< minimal reproducing scenario
  Violation violation;      ///< the violation it produces
  std::size_t attempts = 0; ///< candidate re-runs evaluated
  std::size_t accepted = 0; ///< candidates that kept reproducing
  /// shrunk timeline length / original timeline length — the acceptance
  /// metric (a seeded fault must shrink to <= 25%).
  double timeline_ratio = 1.0;
};

/// Shrink `bundle.scenario` while preserving its violation. The input
/// bundle must itself reproduce (callers verify with replay_bundle
/// first); if it does not, the original scenario comes back unchanged
/// with timeline_ratio 1.0.
[[nodiscard]] ShrinkResult shrink_bundle(const ReproBundle& bundle);

}  // namespace carpool::chaos
