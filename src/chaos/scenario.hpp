#pragma once

// carpool::chaos — scenario model for the soak engine (docs/SOAK.md).
//
// A Scenario is a deterministic timeline: per-STA mobility waypoints that
// move TestbedLayout SNRs over time, scripted interference episodes (a
// Gilbert-Elliott stage keyed on/off by the schedule, plus an SNR penalty
// on the analytic MAC path), STA join/leave churn, and traffic-mix
// phases. Together with a seed it fully determines a campaign: the
// SoakRunner derives every RNG stream from (scenario seed, repeat,
// episode index), so a (scenario, seed, frame) triple replays bit for
// bit — the contract repro bundles and the shrinker rely on.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chaos/json.hpp"
#include "chaos/snr_trace.hpp"
#include "mac/link_state.hpp"
#include "mac/scheme.hpp"
#include "sim/testbed.hpp"
#include "sim/topology.hpp"

namespace carpool::chaos {

/// One STA's movement through the room (absolute scenario time).
struct MobilityTrack {
  std::uint32_t sta = 0;
  std::vector<sim::TimedPoint> waypoints;
};

/// A scripted interference episode: while [start, stop) is in force the
/// affected STAs lose `snr_penalty_db` on the analytic MAC path and PHY
/// decode probes falling inside the window run through a Gilbert-Elliott
/// stage scaled by `intensity` (1.0 = the default bad-state power).
struct InterferenceEpisode {
  double start = 0.0;
  double stop = 0.0;
  double snr_penalty_db = 10.0;
  double intensity = 1.0;
  std::vector<std::uint32_t> stas;  ///< empty = all stations
};

/// STA membership change at `time`. STAs 1..num_stas all start joined.
struct ChurnEvent {
  double time = 0.0;
  std::uint32_t sta = 0;
  bool join = false;  ///< false = leave
};

enum class TrafficKind {
  kCbr,      ///< fixed-size, fixed-interval downlink
  kVoip,     ///< Brady ON/OFF voice, both directions
  kPoisson,  ///< Poisson downlink, trace-matched sizes
  kSigcomm,  ///< SIGCOMM'08 background uplink + CBR downlink
};

[[nodiscard]] std::string_view traffic_kind_name(TrafficKind kind) noexcept;

/// Traffic mix in force from `start` until the next phase begins.
struct TrafficPhase {
  double start = 0.0;
  TrafficKind kind = TrafficKind::kCbr;
  std::size_t frame_bytes = 1200;  ///< CBR frame size
  double interval = 4e-3;          ///< CBR / Poisson mean interval (s)
};

/// Gudmundson-style correlated shadowing between stations
/// (channel/shadowing.hpp): per-STA log-normal dB offsets with
/// exponential spatial correlation between nearby STAs and AR(1)
/// temporal correlation, layered on top of the synthetic or recorded SNR
/// base. The runner derives the process seed from (scenario seed,
/// repeat), so campaigns stay bit-reproducible.
struct ShadowingSpec {
  double sigma_db = 4.0;          ///< marginal std-dev (dB)
  double decorr_distance = 5.0;   ///< spatial e-folding distance (m)
  double decorr_time = 1.0;       ///< temporal e-folding time (s)
  double sample_interval = 0.1;   ///< process time-grid step (s)
};

/// A deliberately seeded fault: the runner reports an "injected"
/// violation the moment the campaign-wide reception-judgement count
/// crosses `frame`. Exists so repro bundles and the shrinker can be
/// tested end to end against a violation with a known ground truth.
struct InjectedViolation {
  std::uint64_t frame = 0;
};

struct Scenario {
  std::string name = "scenario";
  std::uint64_t seed = 1;
  double duration = 10.0;          ///< timeline length (sim seconds)
  std::size_t num_stas = 8;
  mac::Scheme scheme = mac::Scheme::kCarpool;
  double power_magnitude = 0.1;    ///< USRP TX power knob (testbed SNR map)
  double default_snr_db = 25.0;    ///< STAs without a mobility track
  double probe_interval = 0.0;     ///< PHY decode probe period; 0 = off
  mac::LinkPolicyConfig link_policy{};  ///< defaults: all layers off

  std::vector<MobilityTrack> mobility;
  std::vector<InterferenceEpisode> interference;
  std::vector<ChurnEvent> churn;
  std::vector<TrafficPhase> traffic;
  std::optional<InjectedViolation> inject;

  /// Multi-BSS topology (sim/topology.hpp): AP grid + channel reuse plan
  /// + roaming parameters. When set, the runner segments episodes at
  /// handover instants, runs one collision domain per AP, derives each
  /// STA's SNR base from the topology SINR of its *associated* AP, and
  /// decode probes target that AP too. Disengaged = the classic single
  /// implicit collision domain.
  std::optional<sim::TopologySpec> topology;

  /// Recorded per-STA SNR timeline (chaos/snr_trace.hpp); where samples
  /// exist they replace the synthetic mobility/testbed SNR base. Empty =
  /// fully synthetic channel.
  SnrTrace snr_trace;
  /// Correlated shadowing layered on the SNR base; disengaged = none.
  std::optional<ShadowingSpec> shadowing;

  /// Total timeline length — the quantity the shrinker's acceptance
  /// ratio is measured against.
  [[nodiscard]] double timeline_seconds() const noexcept { return duration; }
};

/// Structured scenario-validation failure: `path` is a dotted JSON path
/// ("interference[2].stop"), `message` says what is wrong with it.
struct ScenarioError {
  std::string path;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return path.empty() ? message : path + ": " + message;
  }
};

struct ScenarioParseResult {
  std::optional<Scenario> scenario;
  ScenarioError error;  ///< meaningful iff !scenario

  [[nodiscard]] bool ok() const noexcept { return scenario.has_value(); }
};

/// Parse + validate a scenario from JSON text. Never throws: syntax
/// errors surface with line/column, schema errors with a dotted path.
[[nodiscard]] ScenarioParseResult scenario_from_json(std::string_view text);

/// Validate an already-parsed document (repro bundles embed scenarios).
[[nodiscard]] ScenarioParseResult scenario_from_value(const JsonValue& v);

/// Serialize; scenario_from_json(scenario_to_json(s)) reproduces `s`
/// field for field (the round-trip the chaos tests pin).
[[nodiscard]] std::string scenario_to_json(const Scenario& s);
[[nodiscard]] JsonValue scenario_to_value(const Scenario& s);

/// The built-in scenarios `tools/soak` runs when no file is given:
/// "steady" (static mix, no chaos), "roaming" (mobility + churn), and
/// "interference_ladder" (stepped episode intensities for the cliff
/// check). All are expected to complete violation-free.
[[nodiscard]] std::vector<Scenario> default_scenarios();

}  // namespace carpool::chaos
