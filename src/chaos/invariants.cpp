#include "chaos/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "carpool/transceiver.hpp"
#include "mac/energy.hpp"
#include "mac/params.hpp"

namespace carpool::chaos {
namespace {

constexpr double kTimeEps = 1e-9;
/// Absolute slack for the energy ledger: time accounting happens in
/// seconds-scale doubles, so per-node sums drift by at most a few ULPs
/// per event.
constexpr double kEnergyEps = 1e-6;

bool finite(double v) { return std::isfinite(v); }

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

// ---------------------------------------------------------- MarginTracker

void MarginTracker::observe(std::string_view invariant, double margin) {
  if (!std::isfinite(margin)) margin = -1.0;
  auto it = minima_.find(invariant);
  if (it == minima_.end()) {
    minima_.emplace(std::string(invariant), margin);
  } else {
    it->second = std::min(it->second, margin);
  }
}

double MarginTracker::overall() const noexcept {
  double out = 1.0;
  for (const auto& [name, m] : minima_) out = std::min(out, m);
  return out;
}

void MarginTracker::merge_from(const MarginTracker& other) {
  for (const auto& [name, m] : other.minima_) observe(name, m);
}

// --------------------------------------------------------- StepInvariants

Violation StepInvariants::make(const mac::SimStepView& view,
                               std::string invariant,
                               std::string detail) const {
  Violation v;
  v.invariant = std::move(invariant);
  v.detail = std::move(detail);
  v.frame = frame_base_ + view.frames_judged;
  v.time = time_base_ + view.now;
  v.episode = episode_;
  v.repeat = repeat_;
  return v;
}

void StepInvariants::observe(std::string_view invariant,
                             double margin) const {
  if (margins_ != nullptr) margins_->observe(invariant, margin);
}

std::optional<Violation> StepInvariants::check(
    const mac::SimStepView& view) {
  if (tripped_) return std::nullopt;
  const mac::SimResult& t = *view.totals;
  const mac::MacParams& p = *view.params;

  // accounting_balance: every generated frame is delivered, dropped, or
  // still queued — nothing leaks between the traffic generators, the
  // per-STA queues, and the reception judgements. Binary margin: frame
  // accounting either balances or it does not.
  const std::uint64_t accounted = t.dl_frames_delivered +
                                  t.ul_frames_delivered +
                                  t.dl_frames_dropped + t.ul_frames_dropped +
                                  view.frames_inflight;
  observe("accounting_balance", accounted == view.frames_generated ? 1.0
                                                                   : 0.0);
  if (accounted != view.frames_generated) {
    tripped_ = true;
    return make(view, "accounting_balance",
                "generated " + std::to_string(view.frames_generated) +
                    " != delivered+dropped+inflight " +
                    std::to_string(accounted));
  }

  // nav_seq_ack: the resolved TXOP's ACK overhead must equal the
  // sequential-ACK arithmetic, and Eq. (1)/(2) must stay mutually
  // consistent: nav_data(p, D, N) - D == nav_i(p, N+1). Margin: worst
  // normalized arithmetic error against the kTimeEps tolerance.
  if (!view.txop.collision && view.txop.subunits > 0) {
    const double single = p.sifs + p.ack_duration();
    const double expected =
        view.txop.sequential_ack
            ? static_cast<double>(view.txop.subunits) * single
            : single;
    double worst_err = std::fabs(view.txop.ack_overhead - expected);
    if (worst_err > kTimeEps) {
      observe("nav_seq_ack", 1.0 - worst_err / kTimeEps);
      tripped_ = true;
      return make(view, "nav_seq_ack",
                  "ack_overhead " + fmt(view.txop.ack_overhead) +
                      " != expected " + fmt(expected) + " for " +
                      std::to_string(view.txop.subunits) + " subunits");
    }
    if (view.txop.sequential_ack) {
      const double nav_tail =
          mac::nav_data(p, view.txop.data_duration, view.txop.subunits) -
          view.txop.data_duration;
      const double eq2_tail = mac::nav_i(p, view.txop.subunits + 1);
      worst_err = std::max(
          worst_err, std::max(std::fabs(nav_tail - eq2_tail),
                              std::fabs(nav_tail - view.txop.ack_overhead)));
      if (worst_err > kTimeEps) {
        observe("nav_seq_ack", 1.0 - worst_err / kTimeEps);
        tripped_ = true;
        return make(view, "nav_seq_ack",
                    "Eq.(1)/(2) mismatch: nav_data tail " + fmt(nav_tail) +
                        ", nav_i(N+1) " + fmt(eq2_tail) +
                        ", ack_overhead " + fmt(view.txop.ack_overhead));
      }
    }
    observe("nav_seq_ack", 1.0 - worst_err / kTimeEps);
  }

  // no_total_suspension: with suspension gating on, the machine may
  // suspend every STA transiently, but some suspension must expire within
  // the configured maximum backoff — otherwise downlink scheduling has
  // deadlocked. Margin: the fraction of STAs still schedulable; once all
  // are suspended, the remaining wake headroom (scaled below the
  // one-STA-free level so the gradient stays monotone as the campaign
  // approaches the deadlock).
  if (view.links != nullptr && view.links->policy().suspension &&
      view.num_stas > 0) {
    std::size_t suspended = 0;
    double earliest_wake = std::numeric_limits<double>::infinity();
    for (mac::NodeId sta = 1; sta <= view.num_stas; ++sta) {
      const mac::StaLinkState& s = view.links->state(sta);
      if (s.health == mac::LinkHealth::kSuspended) {
        ++suspended;
        earliest_wake = std::min(earliest_wake, s.suspended_until);
      }
    }
    const double n = static_cast<double>(view.num_stas);
    const bool all_suspended = suspended == view.num_stas;
    if (!all_suspended) {
      observe("no_total_suspension",
              1.0 - static_cast<double>(suspended) / n);
    } else {
      const double max_timeout = view.links->policy().max_timeout;
      const double headroom =
          view.now + max_timeout - earliest_wake;  // > 0 means it wakes
      const double scale = max_timeout > 0.0 ? max_timeout : 1.0;
      observe("no_total_suspension",
              std::min(headroom / scale, 1.0) / n);
      if (headroom < -kTimeEps) {
        tripped_ = true;
        return make(view, "no_total_suspension",
                    "all " + std::to_string(view.num_stas) +
                        " STAs suspended; earliest wake " +
                        fmt(earliest_wake) + " > now " + fmt(view.now) +
                        " + max_timeout " + fmt(max_timeout));
      }
    }
  }

  // sane_metrics: counters never run backwards, airtime stays inside
  // elapsed time, nothing is NaN/Inf. Margin: the idle fraction of the
  // elapsed time (how much room busy airtime has left); the binary
  // sub-conditions drop the margin to 0 when they fail.
  if (view.frames_generated < last_generated_ ||
      view.frames_judged < last_judged_) {
    observe("sane_metrics", 0.0);
    tripped_ = true;
    return make(view, "sane_metrics", "frame counters ran backwards");
  }
  last_generated_ = view.frames_generated;
  last_judged_ = view.frames_judged;
  const double busy_airtime =
      t.airtime_payload + t.airtime_overhead + t.airtime_collision;
  if (!finite(busy_airtime) || !finite(view.now)) {
    observe("sane_metrics", 0.0);
    tripped_ = true;
    return make(view, "sane_metrics", "non-finite airtime or clock");
  }
  const double airtime_margin =
      view.now > kTimeEps ? (view.now - busy_airtime) / view.now : 1.0;
  observe("sane_metrics", std::min(airtime_margin, 1.0));
  if (busy_airtime > view.now + kTimeEps) {
    tripped_ = true;
    return make(view, "sane_metrics",
                "busy airtime " + fmt(busy_airtime) +
                    " exceeds elapsed time " + fmt(view.now));
  }
  if (t.airtime_payload < 0.0 || t.airtime_overhead < 0.0 ||
      t.airtime_collision < 0.0) {
    observe("sane_metrics", 0.0);
    tripped_ = true;
    return make(view, "sane_metrics", "negative airtime bucket");
  }

  return std::nullopt;
}

// ----------------------------------------------------------- check_decode

std::optional<Violation> check_decode(const CarpoolRxResult& rx,
                                      std::uint64_t frame, double time,
                                      std::size_t episode,
                                      std::size_t repeat,
                                      double rte_norm_bound,
                                      MarginTracker* margins) {
  auto make = [&](std::string invariant, std::string detail) {
    Violation v;
    v.invariant = std::move(invariant);
    v.detail = std::move(detail);
    v.frame = frame;
    v.time = time;
    v.episode = episode;
    v.repeat = repeat;
    return v;
  };
  auto observe = [&](std::string_view invariant, double margin) {
    if (margins != nullptr) margins->observe(invariant, margin);
  };

  // decode_no_throw: receive() promises containment; kInternalError means
  // an exception escaped the decode walk and was caught at the boundary.
  const bool contained = rx.status != DecodeStatus::kInternalError;
  observe("decode_no_throw", contained ? 1.0 : 0.0);
  if (!contained) {
    return make("decode_no_throw",
                "receive() reported kInternalError (contained exception)");
  }

  // decode_accounting: the decode walk can only produce subframe entries
  // for Bloom-matched indices, an FCS pass implies a completed decode,
  // and the symbol counters must be finite and consistent.
  if (rx.subframes.size() > rx.matched.size()) {
    observe("decode_accounting", 0.0);
    return make("decode_accounting",
                std::to_string(rx.subframes.size()) +
                    " decoded subframes but only " +
                    std::to_string(rx.matched.size()) + " matched");
  }
  for (const DecodedSubframe& sub : rx.subframes) {
    if (sub.fcs_ok && !sub.decoded) {
      observe("decode_accounting", 0.0);
      return make("decode_accounting",
                  "subframe " + std::to_string(sub.index) +
                      " has fcs_ok without decoded");
    }
  }
  if (!std::isfinite(rx.sync_quality)) {
    observe("decode_accounting", 0.0);
    return make("decode_accounting", "non-finite sync_quality");
  }
  observe("decode_accounting", 1.0);

  // rte_bounded: RTE updates must never blow the running channel
  // estimate up to NaN/Inf or an absurd magnitude — the failure mode the
  // poisoning guard exists to prevent. Margin: remaining fraction of the
  // norm bound, the smoothest hill-climb signal the fuzzer gets from the
  // PHY (a scenario that drives the estimate to 0.9*bound is one mutation
  // away from the blow-up).
  if (!std::isfinite(rx.rte_estimate_norm) || rx.rte_estimate_norm < 0.0) {
    observe("rte_bounded", -1.0);
    return make("rte_bounded",
                "RTE estimate RMS " + fmt(rx.rte_estimate_norm) +
                    " outside [0, " + fmt(rte_norm_bound) + "]");
  }
  observe("rte_bounded", 1.0 - rx.rte_estimate_norm / rte_norm_bound);
  if (rx.rte_estimate_norm > rte_norm_bound) {
    return make("rte_bounded",
                "RTE estimate RMS " + fmt(rx.rte_estimate_norm) +
                    " outside [0, " + fmt(rte_norm_bound) + "]");
  }

  return std::nullopt;
}

// --------------------------------------------------------- check_fairness

std::optional<Violation> check_fairness(const mac::SimResult& res,
                                        const FairnessConfig& cfg,
                                        std::uint64_t frame, double time,
                                        std::size_t episode,
                                        std::size_t repeat,
                                        MarginTracker* margins) {
  // Share statistics only mean something when the episode actually
  // carried downlink traffic to several stations.
  if (res.dl_frames_delivered < cfg.min_frames) return std::nullopt;
  double sum = 0.0;
  double sum_sq = 0.0;
  double min_served = std::numeric_limits<double>::infinity();
  std::size_t served = 0;
  for (std::size_t i = 1; i < res.per_sta_goodput_bps.size(); ++i) {
    const double x = res.per_sta_goodput_bps[i];
    if (x <= 0.0) continue;
    ++served;
    sum += x;
    sum_sq += x * x;
    min_served = std::min(min_served, x);
  }
  if (served < 2 || sum_sq <= 0.0) return std::nullopt;

  const double n = static_cast<double>(served);
  const double jain = sum * sum / (n * sum_sq);
  const double mean = sum / n;
  const double min_share = min_served / mean;

  const double jain_margin =
      (jain - cfg.jain_floor) / (1.0 - cfg.jain_floor);
  const double share_margin =
      (min_share - cfg.min_share_floor) / (1.0 - cfg.min_share_floor);
  if (margins != nullptr) {
    margins->observe("fairness_floor",
                     std::min(jain_margin, share_margin));
  }

  if (jain < cfg.jain_floor || min_share < cfg.min_share_floor) {
    Violation v;
    v.invariant = "fairness_floor";
    v.detail = "Jain index " + fmt(jain) + " (floor " +
               fmt(cfg.jain_floor) + "), worst served share " +
               fmt(min_share) + " of mean (floor " +
               fmt(cfg.min_share_floor) + ") over " +
               std::to_string(served) + " served STAs";
    v.frame = frame;
    v.time = time;
    v.episode = episode;
    v.repeat = repeat;
    return v;
  }
  return std::nullopt;
}

// ----------------------------------------------------------- check_energy

std::optional<Violation> check_energy(const mac::SimResult& res,
                                      std::uint64_t frame, double time,
                                      std::size_t episode,
                                      std::size_t repeat,
                                      MarginTracker* margins) {
  const mac::PowerModel power{};
  const double T = res.duration;
  double min_margin = 1.0;
  std::string detail;
  for (std::size_t node = 0; node < res.node_energy.size(); ++node) {
    const mac::NodeEnergy& ne = res.node_energy[node];
    if (!finite(ne.tx_seconds) || !finite(ne.rx_seconds) ||
        !finite(ne.idle_seconds) || !finite(ne.joules)) {
      min_margin = -1.0;
      detail = "node " + std::to_string(node) + " non-finite energy ledger";
      break;
    }
    const double active = ne.tx_seconds + ne.rx_seconds;
    // Active time fits inside the episode; margin is the idle fraction.
    const double fit_margin = T > 0.0 ? (T - active) / T : 1.0;
    if (fit_margin < min_margin) {
      min_margin = fit_margin;
      detail = "node " + std::to_string(node) + " active " + fmt(active) +
               " s exceeds episode " + fmt(T) + " s";
    }
    if (ne.tx_seconds < -kEnergyEps || ne.rx_seconds < -kEnergyEps ||
        ne.idle_seconds < -kEnergyEps) {
      min_margin = std::min(min_margin, -1.0);
      detail = "node " + std::to_string(node) + " negative time bucket";
    }
    // The ledger the simulator writes: idle clamped at zero, joules from
    // the paper's Sec. 8 power model (mac/energy.hpp).
    const double expect_idle = std::max(0.0, T - active);
    const double expect_joules = ne.tx_seconds * power.tx_watts +
                                 ne.rx_seconds * power.rx_watts +
                                 expect_idle * power.idle_watts;
    const double idle_err = std::fabs(ne.idle_seconds - expect_idle);
    const double joule_err = std::fabs(ne.joules - expect_joules);
    const double idle_tol = kEnergyEps * (1.0 + T);
    const double joule_tol = kEnergyEps * (1.0 + std::fabs(expect_joules));
    const double ledger_margin =
        std::min(1.0 - idle_err / idle_tol, 1.0 - joule_err / joule_tol);
    if (ledger_margin < min_margin) {
      min_margin = ledger_margin;
      detail = "node " + std::to_string(node) + " ledger drift: idle " +
               fmt(ne.idle_seconds) + " vs " + fmt(expect_idle) +
               ", joules " + fmt(ne.joules) + " vs " + fmt(expect_joules);
    }
  }
  if (margins != nullptr && !res.node_energy.empty()) {
    margins->observe("energy_consistency", min_margin);
  }
  // The fit check gets the same absolute slack as the ledger checks
  // (double accumulation across many events), expressed in margin units.
  if (min_margin < (T > 0.0 ? -kEnergyEps * (1.0 + T) / T : 0.0)) {
    Violation v;
    v.invariant = "energy_consistency";
    v.detail = detail;
    v.frame = frame;
    v.time = time;
    v.episode = episode;
    v.repeat = repeat;
    return v;
  }
  return std::nullopt;
}

// --------------------------------------------------- check_goodput_cliffs

std::optional<Violation> check_goodput_cliffs(
    const std::vector<EpisodeSummary>& episodes, double cliff_fraction,
    MarginTracker* margins) {
  // Group by intensity rung; ignore rungs whose episodes judged nothing
  // (an idle rung's zero goodput is not a cliff).
  std::map<double, std::pair<double, std::size_t>> rungs;  // sum, count
  for (const EpisodeSummary& e : episodes) {
    if (e.frames_judged == 0) continue;
    auto& [sum, n] = rungs[e.intensity];
    sum += e.goodput_bps;
    ++n;
  }
  if (rungs.size() < 2) return std::nullopt;

  double prev_intensity = 0.0;
  double prev_mean = 0.0;
  bool have_prev = false;
  std::optional<Violation> out;
  for (const auto& [intensity, acc] : rungs) {
    const double mean = acc.first / static_cast<double>(acc.second);
    // Only flag a cliff when the gentler rung was actually carrying
    // traffic; comparing two starved rungs is noise.
    if (have_prev && prev_mean > 1e5) {
      // Margin: how far the retained fraction sits above the cliff floor,
      // normalized so holding 100% of the gentler rung's goodput is 1.
      const double ratio = mean / prev_mean;
      if (margins != nullptr) {
        margins->observe("goodput_cliff",
                         std::min((ratio - cliff_fraction) /
                                      (1.0 - cliff_fraction),
                                  1.0));
      }
      if (!out && ratio < cliff_fraction) {
        Violation v;
        v.invariant = "goodput_cliff";
        v.detail = "mean goodput fell from " + fmt(prev_mean) +
                   " bps (intensity " + fmt(prev_intensity) + ") to " +
                   fmt(mean) + " bps (intensity " + fmt(intensity) +
                   "), below the " + fmt(cliff_fraction) +
                   " adjacent-rung floor";
        out = std::move(v);
      }
    }
    prev_intensity = intensity;
    prev_mean = mean;
    have_prev = true;
  }
  return out;
}

}  // namespace carpool::chaos
