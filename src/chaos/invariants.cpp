#include "chaos/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "carpool/transceiver.hpp"
#include "mac/params.hpp"

namespace carpool::chaos {
namespace {

constexpr double kTimeEps = 1e-9;

bool finite(double v) { return std::isfinite(v); }

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

Violation StepInvariants::make(const mac::SimStepView& view,
                               std::string invariant,
                               std::string detail) const {
  Violation v;
  v.invariant = std::move(invariant);
  v.detail = std::move(detail);
  v.frame = frame_base_ + view.frames_judged;
  v.time = time_base_ + view.now;
  v.episode = episode_;
  v.repeat = repeat_;
  return v;
}

std::optional<Violation> StepInvariants::check(
    const mac::SimStepView& view) {
  if (tripped_) return std::nullopt;
  const mac::SimResult& t = *view.totals;
  const mac::MacParams& p = *view.params;

  // accounting_balance: every generated frame is delivered, dropped, or
  // still queued — nothing leaks between the traffic generators, the
  // per-STA queues, and the reception judgements.
  const std::uint64_t accounted = t.dl_frames_delivered +
                                  t.ul_frames_delivered +
                                  t.dl_frames_dropped + t.ul_frames_dropped +
                                  view.frames_inflight;
  if (accounted != view.frames_generated) {
    tripped_ = true;
    return make(view, "accounting_balance",
                "generated " + std::to_string(view.frames_generated) +
                    " != delivered+dropped+inflight " +
                    std::to_string(accounted));
  }

  // nav_seq_ack: the resolved TXOP's ACK overhead must equal the
  // sequential-ACK arithmetic, and Eq. (1)/(2) must stay mutually
  // consistent: nav_data(p, D, N) - D == nav_i(p, N+1).
  if (!view.txop.collision && view.txop.subunits > 0) {
    const double single = p.sifs + p.ack_duration();
    const double expected =
        view.txop.sequential_ack
            ? static_cast<double>(view.txop.subunits) * single
            : single;
    if (std::fabs(view.txop.ack_overhead - expected) > kTimeEps) {
      tripped_ = true;
      return make(view, "nav_seq_ack",
                  "ack_overhead " + fmt(view.txop.ack_overhead) +
                      " != expected " + fmt(expected) + " for " +
                      std::to_string(view.txop.subunits) + " subunits");
    }
    if (view.txop.sequential_ack) {
      const double nav_tail =
          mac::nav_data(p, view.txop.data_duration, view.txop.subunits) -
          view.txop.data_duration;
      const double eq2_tail = mac::nav_i(p, view.txop.subunits + 1);
      if (std::fabs(nav_tail - eq2_tail) > kTimeEps ||
          std::fabs(nav_tail - view.txop.ack_overhead) > kTimeEps) {
        tripped_ = true;
        return make(view, "nav_seq_ack",
                    "Eq.(1)/(2) mismatch: nav_data tail " + fmt(nav_tail) +
                        ", nav_i(N+1) " + fmt(eq2_tail) +
                        ", ack_overhead " + fmt(view.txop.ack_overhead));
      }
    }
  }

  // no_total_suspension: with suspension gating on, the machine may
  // suspend every STA transiently, but some suspension must expire within
  // the configured maximum backoff — otherwise downlink scheduling has
  // deadlocked.
  if (view.links != nullptr && view.links->policy().suspension &&
      view.num_stas > 0) {
    bool all_suspended = true;
    double earliest_wake = std::numeric_limits<double>::infinity();
    for (mac::NodeId sta = 1; sta <= view.num_stas; ++sta) {
      const mac::StaLinkState& s = view.links->state(sta);
      if (s.health != mac::LinkHealth::kSuspended) {
        all_suspended = false;
        break;
      }
      earliest_wake = std::min(earliest_wake, s.suspended_until);
    }
    if (all_suspended &&
        earliest_wake >
            view.now + view.links->policy().max_timeout + kTimeEps) {
      tripped_ = true;
      return make(view, "no_total_suspension",
                  "all " + std::to_string(view.num_stas) +
                      " STAs suspended; earliest wake " +
                      fmt(earliest_wake) + " > now " + fmt(view.now) +
                      " + max_timeout " +
                      fmt(view.links->policy().max_timeout));
    }
  }

  // sane_metrics: counters never run backwards, airtime stays inside
  // elapsed time (one in-flight sequence of slack), nothing is NaN/Inf.
  if (view.frames_generated < last_generated_ ||
      view.frames_judged < last_judged_) {
    tripped_ = true;
    return make(view, "sane_metrics", "frame counters ran backwards");
  }
  last_generated_ = view.frames_generated;
  last_judged_ = view.frames_judged;
  const double busy_airtime =
      t.airtime_payload + t.airtime_overhead + t.airtime_collision;
  if (!finite(busy_airtime) || !finite(view.now)) {
    tripped_ = true;
    return make(view, "sane_metrics", "non-finite airtime or clock");
  }
  if (busy_airtime > view.now + kTimeEps) {
    tripped_ = true;
    return make(view, "sane_metrics",
                "busy airtime " + fmt(busy_airtime) +
                    " exceeds elapsed time " + fmt(view.now));
  }
  if (t.airtime_payload < 0.0 || t.airtime_overhead < 0.0 ||
      t.airtime_collision < 0.0) {
    tripped_ = true;
    return make(view, "sane_metrics", "negative airtime bucket");
  }

  return std::nullopt;
}

std::optional<Violation> check_decode(const CarpoolRxResult& rx,
                                      std::uint64_t frame, double time,
                                      std::size_t episode,
                                      std::size_t repeat,
                                      double rte_norm_bound) {
  auto make = [&](std::string invariant, std::string detail) {
    Violation v;
    v.invariant = std::move(invariant);
    v.detail = std::move(detail);
    v.frame = frame;
    v.time = time;
    v.episode = episode;
    v.repeat = repeat;
    return v;
  };

  // decode_no_throw: receive() promises containment; kInternalError means
  // an exception escaped the decode walk and was caught at the boundary.
  if (rx.status == DecodeStatus::kInternalError) {
    return make("decode_no_throw",
                "receive() reported kInternalError (contained exception)");
  }

  // decode_accounting: the decode walk can only produce subframe entries
  // for Bloom-matched indices, an FCS pass implies a completed decode,
  // and the symbol counters must be finite and consistent.
  if (rx.subframes.size() > rx.matched.size()) {
    return make("decode_accounting",
                std::to_string(rx.subframes.size()) +
                    " decoded subframes but only " +
                    std::to_string(rx.matched.size()) + " matched");
  }
  for (const DecodedSubframe& sub : rx.subframes) {
    if (sub.fcs_ok && !sub.decoded) {
      return make("decode_accounting",
                  "subframe " + std::to_string(sub.index) +
                      " has fcs_ok without decoded");
    }
  }
  if (!std::isfinite(rx.sync_quality)) {
    return make("decode_accounting", "non-finite sync_quality");
  }

  // rte_bounded: RTE updates must never blow the running channel
  // estimate up to NaN/Inf or an absurd magnitude — the failure mode the
  // poisoning guard exists to prevent.
  if (!std::isfinite(rx.rte_estimate_norm) ||
      rx.rte_estimate_norm > rte_norm_bound ||
      rx.rte_estimate_norm < 0.0) {
    return make("rte_bounded",
                "RTE estimate RMS " + fmt(rx.rte_estimate_norm) +
                    " outside [0, " + fmt(rte_norm_bound) + "]");
  }

  return std::nullopt;
}

std::optional<Violation> check_goodput_cliffs(
    const std::vector<EpisodeSummary>& episodes, double cliff_fraction) {
  // Group by intensity rung; ignore rungs whose episodes judged nothing
  // (an idle rung's zero goodput is not a cliff).
  std::map<double, std::pair<double, std::size_t>> rungs;  // sum, count
  for (const EpisodeSummary& e : episodes) {
    if (e.frames_judged == 0) continue;
    auto& [sum, n] = rungs[e.intensity];
    sum += e.goodput_bps;
    ++n;
  }
  if (rungs.size() < 2) return std::nullopt;

  double prev_intensity = 0.0;
  double prev_mean = 0.0;
  bool have_prev = false;
  for (const auto& [intensity, acc] : rungs) {
    const double mean = acc.first / static_cast<double>(acc.second);
    // Only flag a cliff when the gentler rung was actually carrying
    // traffic; comparing two starved rungs is noise.
    if (have_prev && prev_mean > 1e5 &&
        mean < cliff_fraction * prev_mean) {
      Violation v;
      v.invariant = "goodput_cliff";
      v.detail = "mean goodput fell from " + fmt(prev_mean) +
                 " bps (intensity " + fmt(prev_intensity) + ") to " +
                 fmt(mean) + " bps (intensity " + fmt(intensity) +
                 "), below the " + fmt(cliff_fraction) +
                 " adjacent-rung floor";
      return v;
    }
    prev_intensity = intensity;
    prev_mean = mean;
    have_prev = true;
  }
  return std::nullopt;
}

}  // namespace carpool::chaos
