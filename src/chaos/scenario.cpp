#include "chaos/scenario.hpp"

#include <cmath>
#include <limits>

namespace carpool::chaos {
namespace {

// ---------------------------------------------------------- field access
//
// All readers share the convention: on failure they record the first
// error (dotted path + message) and return false, so parse_scenario can
// bail out early without exceptions.

struct Ctx {
  ScenarioError error;
  bool failed = false;

  bool fail(std::string path, std::string message) {
    if (!failed) {
      error.path = std::move(path);
      error.message = std::move(message);
      failed = true;
    }
    return false;
  }
};

bool read_number(Ctx& ctx, const JsonValue& obj, const std::string& path,
                 std::string_view key, double& out, bool required) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    if (required) {
      return ctx.fail(path + std::string(key), "required field missing");
    }
    return true;
  }
  if (!v->is_number()) {
    return ctx.fail(path + std::string(key), "expected a number");
  }
  out = v->as_number();
  if (!std::isfinite(out)) {
    return ctx.fail(path + std::string(key), "must be finite");
  }
  return true;
}

bool read_uint(Ctx& ctx, const JsonValue& obj, const std::string& path,
               std::string_view key, std::uint64_t& out, bool required) {
  double d = static_cast<double>(out);
  if (!read_number(ctx, obj, path, key, d, required)) return false;
  if (d < 0.0 || d != std::floor(d)) {
    return ctx.fail(path + std::string(key),
                    "expected a non-negative integer");
  }
  out = static_cast<std::uint64_t>(d);
  return true;
}

bool read_bool(Ctx& ctx, const JsonValue& obj, const std::string& path,
               std::string_view key, bool& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_bool()) {
    return ctx.fail(path + std::string(key), "expected a boolean");
  }
  out = v->as_bool();
  return true;
}

bool read_string(Ctx& ctx, const JsonValue& obj, const std::string& path,
                 std::string_view key, std::string& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_string()) {
    return ctx.fail(path + std::string(key), "expected a string");
  }
  out = v->as_string();
  return true;
}

bool parse_scheme(Ctx& ctx, const std::string& name, mac::Scheme& out) {
  if (name == "carpool") {
    out = mac::Scheme::kCarpool;
  } else if (name == "dcf" || name == "802.11") {
    out = mac::Scheme::kDcf80211;
  } else if (name == "ampdu") {
    out = mac::Scheme::kAmpdu;
  } else if (name == "mu") {
    out = mac::Scheme::kMuAggregation;
  } else if (name == "wifox") {
    out = mac::Scheme::kWiFox;
  } else {
    return ctx.fail("scheme", "unknown scheme '" + name +
                                  "' (carpool|dcf|ampdu|mu|wifox)");
  }
  return true;
}

bool parse_traffic_kind(Ctx& ctx, const std::string& path,
                        const std::string& name, TrafficKind& out) {
  if (name == "cbr") {
    out = TrafficKind::kCbr;
  } else if (name == "voip") {
    out = TrafficKind::kVoip;
  } else if (name == "poisson") {
    out = TrafficKind::kPoisson;
  } else if (name == "sigcomm") {
    out = TrafficKind::kSigcomm;
  } else {
    return ctx.fail(path, "unknown traffic kind '" + name +
                              "' (cbr|voip|poisson|sigcomm)");
  }
  return true;
}

bool parse_mobility(Ctx& ctx, const JsonValue& v, Scenario& s) {
  const JsonValue* arr = v.find("mobility");
  if (arr == nullptr) return true;
  if (!arr->is_array()) return ctx.fail("mobility", "expected an array");
  for (std::size_t i = 0; i < arr->as_array().size(); ++i) {
    const std::string path = "mobility[" + std::to_string(i) + "].";
    const JsonValue& t = arr->as_array()[i];
    if (!t.is_object()) {
      return ctx.fail("mobility[" + std::to_string(i) + "]",
                      "expected an object");
    }
    MobilityTrack track;
    std::uint64_t sta = 0;
    if (!read_uint(ctx, t, path, "sta", sta, true)) return false;
    if (sta == 0 || sta > s.num_stas) {
      return ctx.fail(path + "sta", "must be in [1, num_stas]");
    }
    track.sta = static_cast<std::uint32_t>(sta);
    const JsonValue* wps = t.find("waypoints");
    if (wps == nullptr || !wps->is_array()) {
      return ctx.fail(path + "waypoints", "expected an array");
    }
    double prev_t = -std::numeric_limits<double>::infinity();
    for (std::size_t w = 0; w < wps->as_array().size(); ++w) {
      const std::string wpath = path + "waypoints[" + std::to_string(w) +
                                "].";
      const JsonValue& wp = wps->as_array()[w];
      if (!wp.is_object()) {
        return ctx.fail(wpath, "expected an object");
      }
      sim::TimedPoint tp;
      if (!read_number(ctx, wp, wpath, "t", tp.time, true)) return false;
      if (!read_number(ctx, wp, wpath, "x", tp.p.x, true)) return false;
      if (!read_number(ctx, wp, wpath, "y", tp.p.y, true)) return false;
      if (tp.time <= prev_t) {
        return ctx.fail(wpath + "t", "waypoint times must be strictly "
                                     "increasing");
      }
      prev_t = tp.time;
      track.waypoints.push_back(tp);
    }
    s.mobility.push_back(std::move(track));
  }
  return true;
}

bool parse_interference(Ctx& ctx, const JsonValue& v, Scenario& s) {
  const JsonValue* arr = v.find("interference");
  if (arr == nullptr) return true;
  if (!arr->is_array()) {
    return ctx.fail("interference", "expected an array");
  }
  for (std::size_t i = 0; i < arr->as_array().size(); ++i) {
    const std::string path = "interference[" + std::to_string(i) + "].";
    const JsonValue& e = arr->as_array()[i];
    if (!e.is_object()) {
      return ctx.fail("interference[" + std::to_string(i) + "]",
                      "expected an object");
    }
    InterferenceEpisode ep;
    if (!read_number(ctx, e, path, "start", ep.start, true)) return false;
    if (!read_number(ctx, e, path, "stop", ep.stop, true)) return false;
    if (!read_number(ctx, e, path, "snr_penalty_db", ep.snr_penalty_db,
                     false)) {
      return false;
    }
    if (!read_number(ctx, e, path, "intensity", ep.intensity, false)) {
      return false;
    }
    if (ep.stop <= ep.start) {
      return ctx.fail(path + "stop", "must be greater than start");
    }
    if (ep.intensity < 0.0) {
      return ctx.fail(path + "intensity", "must be non-negative");
    }
    const JsonValue* stas = e.find("stas");
    if (stas != nullptr) {
      if (!stas->is_array()) {
        return ctx.fail(path + "stas", "expected an array");
      }
      for (const JsonValue& sv : stas->as_array()) {
        if (!sv.is_number() || sv.as_number() < 1.0 ||
            sv.as_number() != std::floor(sv.as_number())) {
          return ctx.fail(path + "stas", "expected STA ids >= 1");
        }
        ep.stas.push_back(static_cast<std::uint32_t>(sv.as_number()));
      }
    }
    s.interference.push_back(std::move(ep));
  }
  return true;
}

bool parse_churn(Ctx& ctx, const JsonValue& v, Scenario& s) {
  const JsonValue* arr = v.find("churn");
  if (arr == nullptr) return true;
  if (!arr->is_array()) return ctx.fail("churn", "expected an array");
  for (std::size_t i = 0; i < arr->as_array().size(); ++i) {
    const std::string path = "churn[" + std::to_string(i) + "].";
    const JsonValue& e = arr->as_array()[i];
    if (!e.is_object()) {
      return ctx.fail("churn[" + std::to_string(i) + "]",
                      "expected an object");
    }
    ChurnEvent ev;
    if (!read_number(ctx, e, path, "time", ev.time, true)) return false;
    std::uint64_t sta = 0;
    if (!read_uint(ctx, e, path, "sta", sta, true)) return false;
    if (sta == 0 || sta > s.num_stas) {
      return ctx.fail(path + "sta", "must be in [1, num_stas]");
    }
    ev.sta = static_cast<std::uint32_t>(sta);
    std::string kind;
    if (!read_string(ctx, e, path, "event", kind)) return false;
    if (kind == "join") {
      ev.join = true;
    } else if (kind == "leave") {
      ev.join = false;
    } else {
      return ctx.fail(path + "event", "expected \"join\" or \"leave\"");
    }
    s.churn.push_back(ev);
  }
  return true;
}

bool parse_traffic(Ctx& ctx, const JsonValue& v, Scenario& s) {
  const JsonValue* arr = v.find("traffic");
  if (arr == nullptr) return true;
  if (!arr->is_array()) return ctx.fail("traffic", "expected an array");
  double prev_start = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < arr->as_array().size(); ++i) {
    const std::string path = "traffic[" + std::to_string(i) + "].";
    const JsonValue& e = arr->as_array()[i];
    if (!e.is_object()) {
      return ctx.fail("traffic[" + std::to_string(i) + "]",
                      "expected an object");
    }
    TrafficPhase phase;
    if (!read_number(ctx, e, path, "start", phase.start, true)) {
      return false;
    }
    if (phase.start <= prev_start) {
      return ctx.fail(path + "start",
                      "phase starts must be strictly increasing");
    }
    prev_start = phase.start;
    std::string kind = "cbr";
    if (!read_string(ctx, e, path, "kind", kind)) return false;
    if (!parse_traffic_kind(ctx, path + "kind", kind, phase.kind)) {
      return false;
    }
    std::uint64_t bytes = phase.frame_bytes;
    if (!read_uint(ctx, e, path, "frame_bytes", bytes, false)) return false;
    if (bytes == 0 || bytes > 4000) {
      return ctx.fail(path + "frame_bytes", "must be in [1, 4000]");
    }
    phase.frame_bytes = static_cast<std::size_t>(bytes);
    if (!read_number(ctx, e, path, "interval", phase.interval, false)) {
      return false;
    }
    if (phase.interval <= 0.0) {
      return ctx.fail(path + "interval", "must be positive");
    }
    s.traffic.push_back(phase);
  }
  return true;
}

bool parse_link_policy(Ctx& ctx, const JsonValue& v, Scenario& s) {
  const JsonValue* lp = v.find("link_policy");
  if (lp == nullptr) return true;
  if (!lp->is_object()) {
    return ctx.fail("link_policy", "expected an object");
  }
  const std::string path = "link_policy.";
  mac::LinkPolicyConfig& c = s.link_policy;
  if (!read_bool(ctx, *lp, path, "rate_adaptation", c.rate_adaptation)) {
    return false;
  }
  if (!read_bool(ctx, *lp, path, "feedback", c.feedback)) return false;
  if (!read_bool(ctx, *lp, path, "suspension", c.suspension)) return false;
  return true;
}

bool parse_topology(Ctx& ctx, const JsonValue& v, Scenario& s) {
  const JsonValue* topo = v.find("topology");
  if (topo == nullptr) return true;
  if (!topo->is_object()) {
    return ctx.fail("topology", "expected an object");
  }
  const std::string path = "topology.";
  sim::TopologySpec spec;
  std::uint64_t ap_count = spec.ap_count;
  if (!read_uint(ctx, *topo, path, "ap_count", ap_count, false)) {
    return false;
  }
  if (ap_count == 0 || ap_count > 1024) {
    return ctx.fail(path + "ap_count", "must be in [1, 1024]");
  }
  spec.ap_count = static_cast<std::size_t>(ap_count);
  if (!read_number(ctx, *topo, path, "ap_spacing", spec.ap_spacing, false)) {
    return false;
  }
  if (spec.ap_spacing <= 0.0) {
    return ctx.fail(path + "ap_spacing", "must be positive");
  }
  std::uint64_t channels = spec.channel_count;
  if (!read_uint(ctx, *topo, path, "channel_count", channels, false)) {
    return false;
  }
  if (channels == 0) {
    return ctx.fail(path + "channel_count", "must be >= 1");
  }
  spec.channel_count = static_cast<std::size_t>(channels);
  if (!read_number(ctx, *topo, path, "roam_hysteresis_db",
                   spec.roam_hysteresis_db, false)) {
    return false;
  }
  if (spec.roam_hysteresis_db < 0.0) {
    return ctx.fail(path + "roam_hysteresis_db", "must be non-negative");
  }
  if (!read_number(ctx, *topo, path, "roam_interval", spec.roam_interval,
                   false)) {
    return false;
  }
  if (spec.roam_interval <= 0.0) {
    return ctx.fail(path + "roam_interval", "must be positive");
  }
  if (!read_number(ctx, *topo, path, "activity_factor",
                   spec.activity_factor, false)) {
    return false;
  }
  if (spec.activity_factor < 0.0 || spec.activity_factor > 1.0) {
    return ctx.fail(path + "activity_factor", "must be in [0, 1]");
  }
  if (!read_number(ctx, *topo, path, "cell_size", spec.cell_size, false)) {
    return false;
  }
  if (spec.cell_size <= 0.0) {
    return ctx.fail(path + "cell_size", "must be positive");
  }
  s.topology = spec;
  return true;
}

bool parse_snr_trace(Ctx& ctx, const JsonValue& v, Scenario& s) {
  const JsonValue* arr = v.find("snr_trace");
  if (arr == nullptr) return true;
  if (!arr->is_array()) return ctx.fail("snr_trace", "expected an array");
  std::vector<SnrSample> samples;
  for (std::size_t i = 0; i < arr->as_array().size(); ++i) {
    const std::string path = "snr_trace[" + std::to_string(i) + "].";
    const JsonValue& e = arr->as_array()[i];
    if (!e.is_object()) {
      return ctx.fail("snr_trace[" + std::to_string(i) + "]",
                      "expected an object");
    }
    SnrSample sample;
    if (!read_number(ctx, e, path, "t", sample.time, true)) return false;
    if (sample.time < 0.0) {
      return ctx.fail(path + "t", "must be non-negative");
    }
    std::uint64_t sta = 0;
    if (!read_uint(ctx, e, path, "sta", sta, true)) return false;
    if (sta == 0 || sta > s.num_stas) {
      return ctx.fail(path + "sta", "must be in [1, num_stas]");
    }
    sample.sta = static_cast<std::uint32_t>(sta);
    if (!read_number(ctx, e, path, "snr_db", sample.snr_db, true)) {
      return false;
    }
    samples.push_back(sample);
  }
  s.snr_trace = SnrTrace(std::move(samples));
  return true;
}

bool parse_shadowing(Ctx& ctx, const JsonValue& v, Scenario& s) {
  const JsonValue* sh = v.find("shadowing");
  if (sh == nullptr) return true;
  if (!sh->is_object()) {
    return ctx.fail("shadowing", "expected an object");
  }
  const std::string path = "shadowing.";
  ShadowingSpec spec;
  if (!read_number(ctx, *sh, path, "sigma_db", spec.sigma_db, false)) {
    return false;
  }
  if (!read_number(ctx, *sh, path, "decorrelation_distance",
                   spec.decorr_distance, false)) {
    return false;
  }
  if (!read_number(ctx, *sh, path, "decorrelation_time", spec.decorr_time,
                   false)) {
    return false;
  }
  if (!read_number(ctx, *sh, path, "sample_interval", spec.sample_interval,
                   false)) {
    return false;
  }
  if (spec.sigma_db < 0.0) {
    return ctx.fail(path + "sigma_db", "must be non-negative");
  }
  if (spec.decorr_distance <= 0.0) {
    return ctx.fail(path + "decorrelation_distance", "must be positive");
  }
  if (spec.decorr_time <= 0.0) {
    return ctx.fail(path + "decorrelation_time", "must be positive");
  }
  if (spec.sample_interval <= 0.0) {
    return ctx.fail(path + "sample_interval", "must be positive");
  }
  s.shadowing = spec;
  return true;
}

// ------------------------------------------------------------- emitters

JsonValue point_value(const sim::TimedPoint& tp) {
  JsonObject o;
  json_set(o, "t", JsonValue(tp.time));
  json_set(o, "x", JsonValue(tp.p.x));
  json_set(o, "y", JsonValue(tp.p.y));
  return JsonValue(std::move(o));
}

}  // namespace

std::string_view traffic_kind_name(TrafficKind kind) noexcept {
  switch (kind) {
    case TrafficKind::kCbr:
      return "cbr";
    case TrafficKind::kVoip:
      return "voip";
    case TrafficKind::kPoisson:
      return "poisson";
    case TrafficKind::kSigcomm:
      return "sigcomm";
  }
  return "?";
}

ScenarioParseResult scenario_from_value(const JsonValue& v) {
  ScenarioParseResult out;
  Ctx ctx;
  if (!v.is_object()) {
    ctx.fail("", "scenario must be a JSON object");
    out.error = ctx.error;
    return out;
  }
  Scenario s;
  read_string(ctx, v, "", "name", s.name);
  read_uint(ctx, v, "", "seed", s.seed, false);
  read_number(ctx, v, "", "duration", s.duration, true);
  std::uint64_t num_stas = s.num_stas;
  read_uint(ctx, v, "", "num_stas", num_stas, false);
  std::string scheme;
  read_string(ctx, v, "", "scheme", scheme);
  read_number(ctx, v, "", "power_magnitude", s.power_magnitude, false);
  read_number(ctx, v, "", "default_snr_db", s.default_snr_db, false);
  read_number(ctx, v, "", "probe_interval", s.probe_interval, false);
  if (!ctx.failed) {
    if (s.duration <= 0.0) {
      ctx.fail("duration", "must be positive");
    } else if (num_stas == 0 || num_stas > 64) {
      ctx.fail("num_stas", "must be in [1, 64]");
    } else if (s.probe_interval < 0.0) {
      ctx.fail("probe_interval", "must be non-negative");
    } else {
      s.num_stas = static_cast<std::size_t>(num_stas);
      if (!scheme.empty()) parse_scheme(ctx, scheme, s.scheme);
    }
  }
  if (!ctx.failed) {
    parse_link_policy(ctx, v, s);
    parse_mobility(ctx, v, s);
    parse_interference(ctx, v, s);
    parse_churn(ctx, v, s);
    parse_traffic(ctx, v, s);
    parse_topology(ctx, v, s);
    parse_snr_trace(ctx, v, s);
    parse_shadowing(ctx, v, s);
  }
  if (!ctx.failed) {
    const JsonValue* inj = v.find("inject_violation");
    if (inj != nullptr) {
      if (!inj->is_object()) {
        ctx.fail("inject_violation", "expected an object");
      } else {
        InjectedViolation iv;
        if (read_uint(ctx, *inj, "inject_violation.", "frame", iv.frame,
                      true)) {
          s.inject = iv;
        }
      }
    }
  }
  if (ctx.failed) {
    out.error = ctx.error;
    return out;
  }
  out.scenario = std::move(s);
  return out;
}

ScenarioParseResult scenario_from_json(std::string_view text) {
  const JsonParseResult doc = json_parse(text);
  if (!doc.ok()) {
    ScenarioParseResult out;
    out.error.path = "";
    out.error.message = "JSON syntax error at " + doc.error.to_string();
    return out;
  }
  return scenario_from_value(*doc.value);
}

JsonValue scenario_to_value(const Scenario& s) {
  JsonObject root;
  json_set(root, "name", JsonValue(s.name));
  json_set(root, "seed", JsonValue(static_cast<double>(s.seed)));
  json_set(root, "duration", JsonValue(s.duration));
  json_set(root, "num_stas", JsonValue(static_cast<double>(s.num_stas)));
  std::string scheme = "carpool";
  switch (s.scheme) {
    case mac::Scheme::kDcf80211: scheme = "dcf"; break;
    case mac::Scheme::kAmpdu: scheme = "ampdu"; break;
    case mac::Scheme::kMuAggregation: scheme = "mu"; break;
    case mac::Scheme::kWiFox: scheme = "wifox"; break;
    case mac::Scheme::kCarpool: scheme = "carpool"; break;
  }
  json_set(root, "scheme", JsonValue(std::move(scheme)));
  json_set(root, "power_magnitude", JsonValue(s.power_magnitude));
  json_set(root, "default_snr_db", JsonValue(s.default_snr_db));
  json_set(root, "probe_interval", JsonValue(s.probe_interval));
  {
    JsonObject lp;
    json_set(lp, "rate_adaptation", JsonValue(s.link_policy.rate_adaptation));
    json_set(lp, "feedback", JsonValue(s.link_policy.feedback));
    json_set(lp, "suspension", JsonValue(s.link_policy.suspension));
    json_set(root, "link_policy", JsonValue(std::move(lp)));
  }
  {
    JsonArray tracks;
    for (const MobilityTrack& t : s.mobility) {
      JsonObject o;
      json_set(o, "sta", JsonValue(static_cast<double>(t.sta)));
      JsonArray wps;
      for (const sim::TimedPoint& tp : t.waypoints) {
        wps.push_back(point_value(tp));
      }
      json_set(o, "waypoints", JsonValue(std::move(wps)));
      tracks.push_back(JsonValue(std::move(o)));
    }
    json_set(root, "mobility", JsonValue(std::move(tracks)));
  }
  {
    JsonArray eps;
    for (const InterferenceEpisode& e : s.interference) {
      JsonObject o;
      json_set(o, "start", JsonValue(e.start));
      json_set(o, "stop", JsonValue(e.stop));
      json_set(o, "snr_penalty_db", JsonValue(e.snr_penalty_db));
      json_set(o, "intensity", JsonValue(e.intensity));
      if (!e.stas.empty()) {
        JsonArray stas;
        for (const std::uint32_t sta : e.stas) {
          stas.push_back(JsonValue(static_cast<double>(sta)));
        }
        json_set(o, "stas", JsonValue(std::move(stas)));
      }
      eps.push_back(JsonValue(std::move(o)));
    }
    json_set(root, "interference", JsonValue(std::move(eps)));
  }
  {
    JsonArray churn;
    for (const ChurnEvent& e : s.churn) {
      JsonObject o;
      json_set(o, "time", JsonValue(e.time));
      json_set(o, "sta", JsonValue(static_cast<double>(e.sta)));
      json_set(o, "event",
               JsonValue(std::string(e.join ? "join" : "leave")));
      churn.push_back(JsonValue(std::move(o)));
    }
    json_set(root, "churn", JsonValue(std::move(churn)));
  }
  {
    JsonArray traffic;
    for (const TrafficPhase& p : s.traffic) {
      JsonObject o;
      json_set(o, "start", JsonValue(p.start));
      json_set(o, "kind", JsonValue(std::string(traffic_kind_name(p.kind))));
      json_set(o, "frame_bytes",
               JsonValue(static_cast<double>(p.frame_bytes)));
      json_set(o, "interval", JsonValue(p.interval));
      traffic.push_back(JsonValue(std::move(o)));
    }
    json_set(root, "traffic", JsonValue(std::move(traffic)));
  }
  if (s.topology) {
    JsonObject o;
    json_set(o, "ap_count",
             JsonValue(static_cast<double>(s.topology->ap_count)));
    json_set(o, "ap_spacing", JsonValue(s.topology->ap_spacing));
    json_set(o, "channel_count",
             JsonValue(static_cast<double>(s.topology->channel_count)));
    json_set(o, "roam_hysteresis_db",
             JsonValue(s.topology->roam_hysteresis_db));
    json_set(o, "roam_interval", JsonValue(s.topology->roam_interval));
    json_set(o, "activity_factor", JsonValue(s.topology->activity_factor));
    json_set(o, "cell_size", JsonValue(s.topology->cell_size));
    json_set(root, "topology", JsonValue(std::move(o)));
  }
  if (!s.snr_trace.empty()) {
    JsonArray samples;
    for (const SnrSample& sample : s.snr_trace.samples()) {
      JsonObject o;
      json_set(o, "t", JsonValue(sample.time));
      json_set(o, "sta", JsonValue(static_cast<double>(sample.sta)));
      json_set(o, "snr_db", JsonValue(sample.snr_db));
      samples.push_back(JsonValue(std::move(o)));
    }
    json_set(root, "snr_trace", JsonValue(std::move(samples)));
  }
  if (s.shadowing) {
    JsonObject o;
    json_set(o, "sigma_db", JsonValue(s.shadowing->sigma_db));
    json_set(o, "decorrelation_distance",
             JsonValue(s.shadowing->decorr_distance));
    json_set(o, "decorrelation_time", JsonValue(s.shadowing->decorr_time));
    json_set(o, "sample_interval", JsonValue(s.shadowing->sample_interval));
    json_set(root, "shadowing", JsonValue(std::move(o)));
  }
  if (s.inject) {
    JsonObject o;
    json_set(o, "frame", JsonValue(static_cast<double>(s.inject->frame)));
    json_set(root, "inject_violation", JsonValue(std::move(o)));
  }
  return JsonValue(std::move(root));
}

std::string scenario_to_json(const Scenario& s) {
  return json_dump(scenario_to_value(s));
}

std::vector<Scenario> default_scenarios() {
  std::vector<Scenario> out;

  {
    Scenario s;
    s.name = "steady";
    s.seed = 42;
    s.duration = 10.0;
    s.num_stas = 8;
    s.link_policy.rate_adaptation = true;
    s.link_policy.feedback = true;
    s.link_policy.suspension = true;
    s.traffic.push_back({0.0, TrafficKind::kCbr, 1200, 4e-3});
    out.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "roaming";
    s.seed = 7;
    s.duration = 12.0;
    s.num_stas = 6;
    s.probe_interval = 0.5;
    s.link_policy.rate_adaptation = true;
    s.link_policy.feedback = true;
    s.link_policy.suspension = true;
    // STA 1 walks from near the AP to the far corner and back.
    MobilityTrack t;
    t.sta = 1;
    t.waypoints = {{0.0, {5.0, 4.0}}, {6.0, {9.5, 9.5}}, {12.0, {5.0, 4.0}}};
    s.mobility.push_back(std::move(t));
    s.churn.push_back({4.0, 5, false});
    s.churn.push_back({8.0, 5, true});
    s.traffic.push_back({0.0, TrafficKind::kCbr, 1200, 4e-3});
    s.traffic.push_back({6.0, TrafficKind::kVoip, 120, 1e-2});
    out.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "interference_ladder";
    s.seed = 99;
    s.duration = 16.0;
    s.num_stas = 6;
    s.probe_interval = 0.25;
    s.link_policy.rate_adaptation = true;
    s.link_policy.feedback = true;
    s.link_policy.suspension = true;
    // Stepped episode intensities: the cliff invariant compares goodput
    // across adjacent rungs (0 -> 4 -> 8 -> 12 dB penalty).
    s.interference.push_back({4.0, 8.0, 4.0, 0.5, {}});
    s.interference.push_back({8.0, 12.0, 8.0, 1.0, {}});
    s.interference.push_back({12.0, 16.0, 12.0, 1.5, {}});
    s.traffic.push_back({0.0, TrafficKind::kCbr, 1200, 4e-3});
    out.push_back(std::move(s));
  }

  return out;
}

}  // namespace carpool::chaos
