#include "chaos/snr_trace.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>

#include "chaos/json.hpp"

namespace carpool::chaos {
namespace {

/// Walk `text` line by line, handing each non-blank, non-comment line to
/// `fn(line_text, line_number)`; stops early when `fn` returns false.
template <class Fn>
void for_each_line(std::string_view text, Fn&& fn) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    ++line_no;
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = nl == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' ||
            line.back() == '\t')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    if (line.empty() || line.front() == '#') continue;
    if (!fn(line, line_no)) return;
  }
}

bool parse_double(std::string_view field, double& out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end && std::isfinite(out);
}

/// Shared field validation; returns a non-empty message on failure.
std::string validate_sample(double time, double sta, double snr) {
  if (!std::isfinite(time) || time < 0.0) {
    return "time must be a finite non-negative number";
  }
  if (sta < 1.0 || sta != std::floor(sta) || sta > 1e9) {
    return "sta must be an integer >= 1";
  }
  if (!std::isfinite(snr)) return "snr_db must be finite";
  return {};
}

}  // namespace

std::string SnrTraceError::to_string() const {
  return line > 0 ? "line " + std::to_string(line) + ": " + message
                  : message;
}

SnrTrace::SnrTrace(std::vector<SnrSample> samples)
    : samples_(std::move(samples)) {
  std::stable_sort(samples_.begin(), samples_.end(),
                   [](const SnrSample& a, const SnrSample& b) {
                     return a.time < b.time;
                   });
  for (const SnrSample& s : samples_) {
    per_sta_[s.sta].emplace_back(s.time, s.snr_db);
    max_sta_ = std::max(max_sta_, s.sta);
  }
}

double SnrTrace::snr_at(std::uint32_t sta, double time,
                        double fallback_db) const {
  const auto it = per_sta_.find(sta);
  if (it == per_sta_.end()) return fallback_db;
  const auto& series = it->second;
  // Last sample with sample.time <= time.
  auto up = std::upper_bound(
      series.begin(), series.end(), time,
      [](double t, const std::pair<double, double>& s) {
        return t < s.first;
      });
  if (up == series.begin()) return fallback_db;
  return std::prev(up)->second;
}

double SnrTrace::mean_snr_at(double time, double fallback_db) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [sta, series] : per_sta_) {
    auto up = std::upper_bound(
        series.begin(), series.end(), time,
        [](double t, const std::pair<double, double>& s) {
          return t < s.first;
        });
    if (up == series.begin()) continue;
    sum += std::prev(up)->second;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : fallback_db;
}

SnrTraceParseResult snr_trace_from_csv(std::string_view text) {
  SnrTraceParseResult out;
  std::vector<SnrSample> samples;
  bool failed = false;
  for_each_line(text, [&](std::string_view line, std::size_t line_no) {
    // Split into exactly three comma-separated fields.
    std::array<std::string_view, 3> fields;
    std::size_t count = 0;
    std::size_t pos = 0;
    while (count < 3) {
      const std::size_t comma = line.find(',', pos);
      std::string_view f = comma == std::string_view::npos
                               ? line.substr(pos)
                               : line.substr(pos, comma - pos);
      while (!f.empty() && (f.front() == ' ' || f.front() == '\t')) {
        f.remove_prefix(1);
      }
      while (!f.empty() && (f.back() == ' ' || f.back() == '\t')) {
        f.remove_suffix(1);
      }
      fields[count++] = f;
      if (comma == std::string_view::npos) break;
      pos = comma + 1;
    }
    if (count != 3 || line.find(',', pos) != std::string_view::npos) {
      out.error = {"expected 3 comma-separated fields (time,sta,snr_db)",
                   line_no};
      failed = true;
      return false;
    }
    double time = 0.0;
    double sta = 0.0;
    double snr = 0.0;
    if (!parse_double(fields[0], time) || !parse_double(fields[1], sta) ||
        !parse_double(fields[2], snr)) {
      // A non-numeric first row is a header; skip it once at the top.
      if (samples.empty() && !parse_double(fields[0], time)) return true;
      out.error = {"expected numeric fields (time,sta,snr_db)", line_no};
      failed = true;
      return false;
    }
    if (std::string msg = validate_sample(time, sta, snr); !msg.empty()) {
      out.error = {std::move(msg), line_no};
      failed = true;
      return false;
    }
    samples.push_back(
        {time, static_cast<std::uint32_t>(sta), snr});
    return true;
  });
  if (failed) return out;
  if (samples.empty()) {
    out.error = {"capture log holds no samples", 0};
    return out;
  }
  out.trace = SnrTrace(std::move(samples));
  return out;
}

SnrTraceParseResult snr_trace_from_jsonl(std::string_view text) {
  SnrTraceParseResult out;
  std::vector<SnrSample> samples;
  bool failed = false;
  for_each_line(text, [&](std::string_view line, std::size_t line_no) {
    const JsonParseResult doc = json_parse(line);
    if (!doc.ok()) {
      out.error = {"bad JSON object: " + doc.error.to_string(), line_no};
      failed = true;
      return false;
    }
    if (!doc.value->is_object()) {
      out.error = {"expected a JSON object per line", line_no};
      failed = true;
      return false;
    }
    const JsonValue* t = doc.value->find("t");
    if (t == nullptr) t = doc.value->find("time");
    const JsonValue* sta = doc.value->find("sta");
    const JsonValue* snr = doc.value->find("snr_db");
    if (snr == nullptr) snr = doc.value->find("snr");
    if (t == nullptr || !t->is_number() || sta == nullptr ||
        !sta->is_number() || snr == nullptr || !snr->is_number()) {
      out.error = {"expected numeric fields t/time, sta, snr_db/snr",
                   line_no};
      failed = true;
      return false;
    }
    if (std::string msg = validate_sample(t->as_number(), sta->as_number(),
                                          snr->as_number());
        !msg.empty()) {
      out.error = {std::move(msg), line_no};
      failed = true;
      return false;
    }
    samples.push_back({t->as_number(),
                       static_cast<std::uint32_t>(sta->as_number()),
                       snr->as_number()});
    return true;
  });
  if (failed) return out;
  if (samples.empty()) {
    out.error = {"capture log holds no samples", 0};
    return out;
  }
  out.trace = SnrTrace(std::move(samples));
  return out;
}

SnrTraceParseResult snr_trace_from_text(std::string_view text) {
  for (const char c : text) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') continue;
    if (c == '#') {
      // Comment prefix — skip to the end of this line and keep sniffing.
      const std::size_t nl = text.find('\n');
      if (nl == std::string_view::npos) break;
      return snr_trace_from_text(text.substr(nl + 1));
    }
    return c == '{' ? snr_trace_from_jsonl(text) : snr_trace_from_csv(text);
  }
  SnrTraceParseResult out;
  out.error = {"capture log holds no samples", 0};
  return out;
}

}  // namespace carpool::chaos
