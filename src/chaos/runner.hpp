#pragma once

// carpool::chaos — the soak engine (docs/SOAK.md).
//
// SoakRunner executes a Scenario as a campaign: the timeline is split
// into episodes at churn, traffic-phase, and interference boundaries;
// each episode runs one MAC Simulator whose observer evaluates the
// cross-layer invariants (chaos/invariants.hpp) after every resolved
// channel event and fires real PHY decode probes through a trace-gated
// ImpairmentChain on the scenario's probe schedule. With a frame budget
// the timeline repeats (fresh derived seeds per repeat) until the budget
// is spent — `tools/soak --frames 1000000` style campaigns.
//
// Determinism: every RNG stream is derived from (scenario seed, repeat,
// episode) via splitmix64, and the campaign-wide reception-judgement
// count is the frame coordinate. A Violation therefore pins an exact
// (scenario, seed, frame) triple; the emitted ReproBundle replays it bit
// for bit, and the shrinker (chaos/shrink.hpp) delta-debugs the timeline
// while preserving that reproduction.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chaos/invariants.hpp"
#include "chaos/scenario.hpp"
#include "par/par.hpp"

namespace carpool::chaos {

struct SoakOptions {
  /// Campaign frame budget in reception judgements. 0 = run the timeline
  /// exactly once; otherwise the timeline repeats until the budget is
  /// reached (or a violation stops the campaign).
  std::uint64_t max_frames = 0;

  /// Safety cap on timeline repeats when chasing a frame budget.
  std::size_t max_repeats = 100000;

  /// Evaluate the campaign-level goodput_cliff invariant at the end.
  bool check_cliffs = true;

  /// Evaluate the episode-level fairness_floor invariant (per-STA
  /// downlink share collapse) on every completed episode.
  bool check_fairness = true;
  FairnessConfig fairness{};

  /// Evaluate the episode-level energy_consistency invariant (per-node
  /// energy-ledger recomputation) on every completed episode.
  bool check_energy = true;

  /// Ceiling for the rte_bounded probe invariant.
  double rte_norm_bound = 1e3;

  /// When non-empty, the first violation writes a repro bundle JSON into
  /// this directory (created if missing); path lands in
  /// SoakReport::bundle_path.
  std::string bundle_dir;

  /// Worker threads for timeline repeats (docs/PARALLELISM.md). 1 runs
  /// the classic serial loop; 0 means "auto" (hardware_concurrency); N>1
  /// fans detached repeats across a carpool::par pool and merges them in
  /// repeat order, with the stopping repeat re-run serially so the
  /// SoakReport — violations, coordinates, frame counts, obs metrics —
  /// is bit-for-bit identical to threads=1 at any worker count. Only
  /// frame-budget campaigns (max_frames > 0) have repeats to parallelise;
  /// single-pass runs ignore this knob. Repro bundles and the shrinker
  /// stay strictly serial-replayable either way.
  std::size_t threads = 1;

  // ----- fault tolerance (docs/FAULT_TOLERANCE.md) -----

  /// Retry/watchdog policy for repeat shards. Default-disabled
  /// (max_attempts 1, no watchdog): a throwing repeat kills the
  /// campaign exactly as before. With retries enabled, repeats that
  /// throw or stall are retried with attempt-local state (a successful
  /// retry is bit-identical to a first-try success) and exhausted
  /// repeats land in SoakReport::degraded instead of aborting.
  par::RetryPolicy retry{};

  /// Deterministic fault injection for the retry machinery (tests and
  /// drills). Faults address *campaign repeat numbers*; the runner
  /// windows the plan per wave. Disengaged = no injection.
  std::optional<par::FaultPlan> fault_plan;

  /// When non-empty, flush a resumable campaign checkpoint
  /// (chaos/checkpoint.hpp) into this directory every
  /// `checkpoint_every` completed repeats and once at the clean end.
  std::string checkpoint_dir;
  std::size_t checkpoint_every = 8;

  /// Resume from `checkpoint_dir`'s checkpoint for this scenario if one
  /// exists and matches (schema, scenario digest, options digest). A
  /// missing checkpoint file starts fresh; a mismatched one aborts the
  /// campaign with SoakReport::resume_error set.
  bool resume = false;
};

struct SoakReport {
  std::uint64_t frames_judged = 0;  ///< campaign-wide judgement count
  std::uint64_t steps = 0;          ///< observer invocations
  std::uint64_t probes = 0;         ///< PHY decode probes executed
  std::size_t episodes_run = 0;
  std::size_t repeats = 0;          ///< timeline passes completed/attempted
  double sim_seconds = 0.0;         ///< simulated time covered
  double mean_goodput_bps = 0.0;    ///< judged-episode mean (DL + UL)

  std::vector<Violation> violations;       ///< empty on a clean campaign
  std::vector<EpisodeSummary> episode_summaries;
  std::string bundle_path;  ///< non-empty when a bundle was written

  /// Minimum observed margin per invariant across the campaign
  /// (invariants.hpp): the proximity-to-violation signal the fuzzer
  /// hill-climbs. Thread-count independent (minima merge commutatively).
  MarginTracker margins;

  // ----- fault tolerance (docs/FAULT_TOLERANCE.md) -----

  /// Quarantined repeats + retry/stall totals. degraded.degraded() means
  /// some repeats were lost after exhausting retries — the campaign
  /// completed on the surviving repeats and this report says which died.
  par::DegradedReport degraded;
  /// True when this campaign restored state from a checkpoint.
  bool resumed = false;
  /// Completed repeats restored from the checkpoint (0 unless resumed).
  std::size_t resumed_repeats = 0;
  /// Last checkpoint file written (empty when checkpointing is off or
  /// nothing flushed).
  std::string checkpoint_path;
  /// Non-empty when --resume found a checkpoint it could not use
  /// (version/digest mismatch or parse failure); the campaign did not
  /// run.
  std::string resume_error;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }

  /// Smallest margin across every evaluated invariant (1.0 when none).
  [[nodiscard]] double min_margin() const noexcept {
    return margins.overall();
  }
};

class SoakRunner {
 public:
  explicit SoakRunner(SoakOptions opts = {}) : opts_(std::move(opts)) {}

  /// Execute one campaign. Stops at the first violation.
  [[nodiscard]] SoakReport run(const Scenario& scenario) const;

  [[nodiscard]] const SoakOptions& options() const noexcept {
    return opts_;
  }

 private:
  SoakOptions opts_;
};

// -------------------------------------------------------- repro bundles

/// Everything needed to replay a violation bit for bit: the scenario
/// (seed included) and the violation's coordinates.
struct ReproBundle {
  Scenario scenario;
  Violation violation;
};

[[nodiscard]] std::string bundle_to_json(const ReproBundle& bundle);

struct BundleParseResult {
  std::optional<ReproBundle> bundle;
  ScenarioError error;  ///< meaningful iff !bundle

  [[nodiscard]] bool ok() const noexcept { return bundle.has_value(); }
};

/// Parse + validate a bundle. Never throws; malformed input (bad JSON,
/// missing fields, invalid embedded scenario) yields a structured error.
[[nodiscard]] BundleParseResult bundle_from_json(std::string_view text);

struct ReplayResult {
  /// True when the re-run produced the same invariant at the same
  /// campaign frame (and episode/repeat coordinates).
  bool reproduced = false;
  std::optional<Violation> violation;  ///< what the re-run actually hit
};

/// Re-run a bundle's scenario far enough to cross the recorded frame and
/// compare outcomes. Campaign-level checks are skipped: a bundle pins a
/// step/probe/injected violation, not a whole-campaign statistic.
[[nodiscard]] ReplayResult replay_bundle(const ReproBundle& bundle);

/// Derived-seed helper shared by the runner and tests: one splitmix64
/// step over a (seed, repeat, salt) mix.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed,
                                        std::uint64_t repeat,
                                        std::uint64_t salt) noexcept;

}  // namespace carpool::chaos
