#pragma once

// carpool::chaos — cross-layer invariant checks the soak runner evaluates
// at every simulator observation point, on every PHY decode probe, per
// episode, and over the whole campaign (docs/SOAK.md lists them with
// their rationale):
//
//  step-level (SimStepView):
//   - accounting_balance : frames_generated == delivered + dropped +
//                          inflight (both directions combined)
//   - nav_seq_ack        : the TXOP's ACK overhead matches the
//                          sequential-ACK arithmetic of Eq. (1)/(2)
//   - no_total_suspension: the link-state machine never wedges every STA
//                          in kSuspended past the maximum backoff
//   - sane_metrics       : counters monotone, airtime sums bounded by
//                          elapsed time, no NaN/Inf anywhere
//
//  probe-level (CarpoolRxResult from a real decode):
//   - decode_no_throw    : receive() contained everything (no
//                          kInternalError)
//   - decode_accounting  : matched/decoded/FCS counts are mutually
//                          consistent
//   - rte_bounded        : the running channel estimate stayed finite and
//                          within a generous norm bound
//
//  episode-level (SimResult at episode end):
//   - fairness_floor     : per-STA downlink shares never collapse — Jain's
//                          index and the worst served STA's share of the
//                          mean both stay above conservative floors
//   - energy_consistency : the per-node energy ledger is internally
//                          consistent (tx+rx <= elapsed, idle >= 0, joules
//                          recomputable from the power model)
//
//  campaign-level:
//   - goodput_cliff      : mean goodput must not fall off a cliff
//                          (> 90% loss) between adjacent interference
//                          intensity rungs — degradation should be
//                          gradual, the property the robustness work
//                          (docs/ROBUSTNESS.md) is meant to buy.
//
// Every check additionally reports a *margin*: a normalized
// proximity-to-violation distance (1 = full headroom, <= 0 = violated)
// recorded into an optional MarginTracker. The fuzzer
// (chaos/fuzz.hpp) hill-climbs campaigns whose minimum margins shrink —
// scenarios that get *close* to a violation are the interesting ones.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mac/simulator.hpp"

namespace carpool {
struct CarpoolRxResult;  // carpool/transceiver.hpp
}  // namespace carpool

namespace carpool::chaos {

/// One invariant violation, with enough coordinates to replay it:
/// (scenario seed, `frame`) identifies the exact reception judgement /
/// probe at which the condition first failed.
struct Violation {
  std::string invariant;   ///< stable name from the list above
  std::string detail;      ///< human-readable diagnosis
  std::uint64_t frame = 0; ///< campaign-wide judgement count when tripped
  double time = 0.0;       ///< absolute scenario time
  std::size_t episode = 0; ///< episode index within the repeat
  std::size_t repeat = 0;  ///< timeline repeat the campaign was on
};

/// Per-episode rollup the campaign-level checks run over.
struct EpisodeSummary {
  std::size_t index = 0;       ///< episode index within its repeat
  std::size_t repeat = 0;
  double start = 0.0;          ///< absolute scenario time
  double stop = 0.0;
  double intensity = 0.0;      ///< max active interference intensity
  double goodput_bps = 0.0;    ///< downlink + uplink goodput
  std::uint64_t frames_judged = 0;
};

/// Accumulates the minimum observed margin per invariant across a
/// campaign. Margins are normalized proximity-to-violation distances:
/// 1.0 means full headroom, 0.0 the violation boundary, negative values
/// a violated condition. Binary invariants (no meaningful gradient)
/// report 1.0 / 0.0. Minima merge commutatively, so parallel campaigns
/// produce thread-count-independent trackers.
class MarginTracker {
 public:
  void observe(std::string_view invariant, double margin);

  /// Per-invariant minima observed so far; only invariants that were
  /// actually evaluated appear.
  [[nodiscard]] const std::map<std::string, double, std::less<>>& minima()
      const noexcept {
    return minima_;
  }

  /// Minimum across every tracked invariant; 1.0 when nothing was
  /// observed.
  [[nodiscard]] double overall() const noexcept;

  /// Pointwise-minimum merge (commutative, associative).
  void merge_from(const MarginTracker& other);

 private:
  std::map<std::string, double, std::less<>> minima_;
};

/// Floors for the per-STA fairness invariant. The defaults are
/// deliberately conservative: they catch starvation collapse (one STA
/// effectively shut out while the channel carries traffic), not ordinary
/// inequality under interference.
struct FairnessConfig {
  double jain_floor = 0.1;       ///< Jain's index over served STAs
  double min_share_floor = 0.01; ///< worst served STA / mean served STA
  /// Episodes that judged fewer downlink frames than this are skipped —
  /// a starved or near-idle slice has no meaningful share statistics.
  std::uint64_t min_frames = 100;
};

/// Stateful step checker: one instance per episode (monotonicity state
/// resets with the simulator it watches). When `margins` is non-null,
/// every evaluated condition records its margin there.
class StepInvariants {
 public:
  /// `frame_base` is the campaign-wide judgement count at episode start;
  /// `time_base` the episode's absolute start time. Both only shift the
  /// coordinates recorded in a Violation.
  StepInvariants(std::uint64_t frame_base, double time_base,
                 std::size_t episode, std::size_t repeat,
                 MarginTracker* margins = nullptr)
      : frame_base_(frame_base),
        time_base_(time_base),
        episode_(episode),
        repeat_(repeat),
        margins_(margins) {}

  /// Evaluate every step invariant; the first failure is returned and
  /// latched (subsequent calls keep returning nothing new).
  [[nodiscard]] std::optional<Violation> check(const mac::SimStepView& view);

 private:
  [[nodiscard]] Violation make(const mac::SimStepView& view,
                               std::string invariant,
                               std::string detail) const;
  void observe(std::string_view invariant, double margin) const;

  std::uint64_t frame_base_;
  double time_base_;
  std::size_t episode_;
  std::size_t repeat_;
  MarginTracker* margins_;
  std::uint64_t last_generated_ = 0;
  std::uint64_t last_judged_ = 0;
  bool tripped_ = false;
};

/// Probe-level checks on a real CarpoolReceiver decode. `rte_norm_bound`
/// is the generous ceiling on the running channel estimate's RMS
/// magnitude (unit-power constellations put legitimate values near 1).
[[nodiscard]] std::optional<Violation> check_decode(
    const CarpoolRxResult& rx, std::uint64_t frame, double time,
    std::size_t episode, std::size_t repeat, double rte_norm_bound = 1e3,
    MarginTracker* margins = nullptr);

/// Episode-level fairness floor over the simulator's per-STA downlink
/// goodputs: Jain's index ((sum x)^2 / (n sum x^2)) across served STAs
/// and the worst served STA's share of the served mean must both clear
/// their floors. Skipped (no margin recorded) when fewer than two STAs
/// were served or the episode judged fewer than `cfg.min_frames`
/// downlink frames.
[[nodiscard]] std::optional<Violation> check_fairness(
    const mac::SimResult& res, const FairnessConfig& cfg,
    std::uint64_t frame, double time, std::size_t episode,
    std::size_t repeat, MarginTracker* margins = nullptr);

/// Episode-level energy-ledger consistency: for every node, active time
/// (tx + rx) fits inside the episode, idle time is non-negative, and the
/// recorded joules equal tx*txW + rx*rxW + idle*idleW under the power
/// model the simulator integrates with (mac/energy.hpp defaults).
[[nodiscard]] std::optional<Violation> check_energy(
    const mac::SimResult& res, std::uint64_t frame, double time,
    std::size_t episode, std::size_t repeat,
    MarginTracker* margins = nullptr);

/// Campaign-level cliff check over per-episode summaries grouped by
/// interference intensity rung. A violation means mean goodput at some
/// rung fell below `cliff_fraction` of the next-gentler rung's.
[[nodiscard]] std::optional<Violation> check_goodput_cliffs(
    const std::vector<EpisodeSummary>& episodes,
    double cliff_fraction = 0.10, MarginTracker* margins = nullptr);

}  // namespace carpool::chaos
