#pragma once

// carpool::chaos — cross-layer invariant checks the soak runner evaluates
// at every simulator observation point, on every PHY decode probe, and
// over the whole campaign (docs/SOAK.md lists them with their rationale):
//
//  step-level (SimStepView):
//   - accounting_balance : frames_generated == delivered + dropped +
//                          inflight (both directions combined)
//   - nav_seq_ack        : the TXOP's ACK overhead matches the
//                          sequential-ACK arithmetic of Eq. (1)/(2)
//   - no_total_suspension: the link-state machine never wedges every STA
//                          in kSuspended past the maximum backoff
//   - sane_metrics       : counters monotone, airtime sums bounded by
//                          elapsed time, no NaN/Inf anywhere
//
//  probe-level (CarpoolRxResult from a real decode):
//   - decode_no_throw    : receive() contained everything (no
//                          kInternalError)
//   - decode_accounting  : matched/decoded/FCS counts are mutually
//                          consistent
//   - rte_bounded        : the running channel estimate stayed finite and
//                          within a generous norm bound
//
//  campaign-level:
//   - goodput_cliff      : mean goodput must not fall off a cliff
//                          (> 90% loss) between adjacent interference
//                          intensity rungs — degradation should be
//                          gradual, the property the robustness work
//                          (docs/ROBUSTNESS.md) is meant to buy.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mac/simulator.hpp"

namespace carpool {
struct CarpoolRxResult;  // carpool/transceiver.hpp
}  // namespace carpool

namespace carpool::chaos {

/// One invariant violation, with enough coordinates to replay it:
/// (scenario seed, `frame`) identifies the exact reception judgement /
/// probe at which the condition first failed.
struct Violation {
  std::string invariant;   ///< stable name from the list above
  std::string detail;      ///< human-readable diagnosis
  std::uint64_t frame = 0; ///< campaign-wide judgement count when tripped
  double time = 0.0;       ///< absolute scenario time
  std::size_t episode = 0; ///< episode index within the repeat
  std::size_t repeat = 0;  ///< timeline repeat the campaign was on
};

/// Per-episode rollup the campaign-level checks run over.
struct EpisodeSummary {
  std::size_t index = 0;       ///< episode index within its repeat
  std::size_t repeat = 0;
  double start = 0.0;          ///< absolute scenario time
  double stop = 0.0;
  double intensity = 0.0;      ///< max active interference intensity
  double goodput_bps = 0.0;    ///< downlink + uplink goodput
  std::uint64_t frames_judged = 0;
};

/// Stateful step checker: one instance per episode (monotonicity state
/// resets with the simulator it watches).
class StepInvariants {
 public:
  /// `frame_base` is the campaign-wide judgement count at episode start;
  /// `time_base` the episode's absolute start time. Both only shift the
  /// coordinates recorded in a Violation.
  StepInvariants(std::uint64_t frame_base, double time_base,
                 std::size_t episode, std::size_t repeat)
      : frame_base_(frame_base),
        time_base_(time_base),
        episode_(episode),
        repeat_(repeat) {}

  /// Evaluate every step invariant; the first failure is returned and
  /// latched (subsequent calls keep returning nothing new).
  [[nodiscard]] std::optional<Violation> check(const mac::SimStepView& view);

 private:
  [[nodiscard]] Violation make(const mac::SimStepView& view,
                               std::string invariant,
                               std::string detail) const;

  std::uint64_t frame_base_;
  double time_base_;
  std::size_t episode_;
  std::size_t repeat_;
  std::uint64_t last_generated_ = 0;
  std::uint64_t last_judged_ = 0;
  bool tripped_ = false;
};

/// Probe-level checks on a real CarpoolReceiver decode. `rte_norm_bound`
/// is the generous ceiling on the running channel estimate's RMS
/// magnitude (unit-power constellations put legitimate values near 1).
[[nodiscard]] std::optional<Violation> check_decode(
    const CarpoolRxResult& rx, std::uint64_t frame, double time,
    std::size_t episode, std::size_t repeat, double rte_norm_bound = 1e3);

/// Campaign-level cliff check over per-episode summaries grouped by
/// interference intensity rung. A violation means mean goodput at some
/// rung fell below `cliff_fraction` of the next-gentler rung's.
[[nodiscard]] std::optional<Violation> check_goodput_cliffs(
    const std::vector<EpisodeSummary>& episodes,
    double cliff_fraction = 0.10);

}  // namespace carpool::chaos
