#pragma once

// carpool::chaos — recorded SNR timelines for measured-channel campaigns
// (docs/SOAK.md, "Recorded channel traces").
//
// A capture log from a real deployment — per-STA SNR samples over time —
// becomes a SnrTrace: a step-hold timeline the soak runner consults
// instead of the synthetic testbed map wherever samples exist. Traces
// ingest from CSV ("time,sta,snr_db" rows) or JSONL (one object per
// line) and embed *inline* in the scenario JSON ("snr_trace": [...]), so
// repro bundles carrying a measured channel stay self-contained and
// replay bit for bit with no sidecar files.
//
// Parsing follows the chaos contract: never throws, malformed input
// yields a structured error with the offending line.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace carpool::chaos {

/// One recorded measurement: STA `sta` observed `snr_db` at `time`
/// seconds into the capture.
struct SnrSample {
  double time = 0.0;
  std::uint32_t sta = 0;
  double snr_db = 0.0;
};

/// An immutable per-STA step-hold SNR timeline. Construction normalizes
/// sample order (stable sort by time), so serialize -> parse round-trips
/// are idempotent and lookup is a binary search.
class SnrTrace {
 public:
  SnrTrace() = default;
  explicit SnrTrace(std::vector<SnrSample> samples);

  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }

  /// Samples in normalized (time-sorted, stable) order.
  [[nodiscard]] const std::vector<SnrSample>& samples() const noexcept {
    return samples_;
  }

  /// Step-hold lookup: the value of STA `sta`'s latest sample at or
  /// before `time`. Before the STA's first sample — or when the STA has
  /// no samples at all — `fallback_db` (the scenario's synthetic SNR) is
  /// returned, so a partial capture degrades gracefully.
  [[nodiscard]] double snr_at(std::uint32_t sta, double time,
                              double fallback_db) const;

  /// Step-hold mean over every STA that has a sample at or before
  /// `time`; `fallback_db` when none does. The probe harness uses this
  /// as the frame-level channel quality of a broadcast probe.
  [[nodiscard]] double mean_snr_at(double time, double fallback_db) const;

  /// Largest STA id appearing in the trace (0 when empty).
  [[nodiscard]] std::uint32_t max_sta() const noexcept { return max_sta_; }

 private:
  std::vector<SnrSample> samples_;  ///< sorted by time (stable)
  /// Per-STA (time, snr) series for O(log n) lookup.
  std::map<std::uint32_t, std::vector<std::pair<double, double>>> per_sta_;
  std::uint32_t max_sta_ = 0;
};

/// Structured ingestion failure: `line` is 1-based in the input text.
struct SnrTraceError {
  std::string message;
  std::size_t line = 0;

  [[nodiscard]] std::string to_string() const;
};

struct SnrTraceParseResult {
  std::optional<SnrTrace> trace;
  SnrTraceError error;  ///< meaningful iff !trace

  [[nodiscard]] bool ok() const noexcept { return trace.has_value(); }
};

/// Parse a CSV capture log: `time,sta,snr_db` per row. A header row, `#`
/// comments, and blank lines are skipped. STA ids must be >= 1; times
/// and SNRs finite, times non-negative.
[[nodiscard]] SnrTraceParseResult snr_trace_from_csv(std::string_view text);

/// Parse a JSONL capture log: one object per line with keys `t` (or
/// `time`), `sta`, and `snr_db` (or `snr`). Same field constraints as
/// the CSV reader; blank lines and `#` comments are skipped.
[[nodiscard]] SnrTraceParseResult snr_trace_from_jsonl(
    std::string_view text);

/// Sniff the format (first non-space character `{` selects JSONL) and
/// dispatch to the matching reader.
[[nodiscard]] SnrTraceParseResult snr_trace_from_text(std::string_view text);

}  // namespace carpool::chaos
