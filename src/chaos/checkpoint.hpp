#pragma once

// carpool::chaos — campaign checkpoint/resume (docs/FAULT_TOLERANCE.md).
//
// A CampaignCheckpoint is everything a frame-budget soak campaign has
// accumulated after N completed timeline repeats: the report counters,
// every episode summary, the invariant-margin minima, a full snapshot of
// the ambient obs::Registry, and the span-id watermark. The runner
// flushes one atomically (write-to-temp + rename) every
// `checkpoint_every` repeats; `soak --resume` reloads it, restores the
// registry/margins/report state, and continues from repeat N — and
// because repeats derive their seeds purely from (scenario seed,
// repeat), the resumed campaign's final metrics fingerprint is
// bit-identical to an uninterrupted run's, at any thread count.
//
// The file is versioned (`schema_version`) and self-validating: it
// records digests of the scenario and of the semantic soak options, so a
// checkpoint can never silently resume a *different* campaign. Parsing
// never throws; a bad or mismatched file yields a structured error the
// caller surfaces (and then starts fresh or aborts, its choice).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "chaos/runner.hpp"
#include "chaos/scenario.hpp"
#include "obs/registry.hpp"

namespace carpool::chaos {

/// Bump when the checkpoint JSON layout changes; a resume against a
/// different version is rejected (restart fresh rather than misread).
inline constexpr std::int64_t kCheckpointSchemaVersion = 1;

/// Resumable campaign state after `repeats_done` completed repeats.
struct CampaignCheckpoint {
  std::int64_t schema_version = kCheckpointSchemaVersion;
  std::string scenario_name;
  std::uint64_t scenario_digest = 0;  ///< FNV-1a over scenario_to_json
  std::uint64_t options_digest = 0;   ///< semantic SoakOptions knobs only

  std::size_t repeats_done = 0;  ///< completed, cleanly-consumed repeats
  std::uint64_t frames_judged = 0;
  std::uint64_t steps = 0;
  std::uint64_t probes = 0;
  std::size_t episodes_run = 0;
  double sim_seconds = 0.0;

  std::vector<EpisodeSummary> episodes;
  /// MarginTracker minima, (invariant, min margin) in map order.
  std::vector<std::pair<std::string, double>> margins;
  /// Full ambient-registry snapshot (counters/gauges/histograms with raw
  /// buckets). Counter values above 2^53 would lose precision in JSON;
  /// campaign counters sit many orders of magnitude below that.
  obs::MetricsSnapshot registry;
  /// SpanCollector::allocated() at checkpoint time, so resumed runs
  /// allocate span ids past the interrupted run's.
  std::uint64_t span_watermark = 0;
};

/// FNV-1a over the scenario's canonical JSON serialization.
[[nodiscard]] std::uint64_t scenario_digest(const Scenario& s);

/// Digest of the *semantic* campaign knobs: max_frames, invariant
/// toggles, fairness floors, rte_norm_bound. Deliberately excludes
/// threads, max_repeats, bundle_dir, and every checkpoint/retry knob —
/// those change scheduling or bookkeeping, never results, and an
/// interrupted campaign is routinely resumed at a different thread
/// count.
[[nodiscard]] std::uint64_t soak_options_digest(const SoakOptions& opts);

[[nodiscard]] std::string checkpoint_to_json(const CampaignCheckpoint& ck);

struct CheckpointParseResult {
  std::optional<CampaignCheckpoint> checkpoint;
  ScenarioError error;  ///< meaningful iff !checkpoint

  [[nodiscard]] bool ok() const noexcept { return checkpoint.has_value(); }
};

/// Parse a checkpoint document. Never throws; structural problems yield
/// a dotted-path error. (Digest *matching* is the caller's job — the
/// parser only decodes.)
[[nodiscard]] CheckpointParseResult checkpoint_from_json(
    std::string_view text);

/// `<dir>/checkpoint_<scenario>.json`, scenario name sanitized to
/// [A-Za-z0-9._-].
[[nodiscard]] std::string checkpoint_path(const std::string& dir,
                                          const std::string& scenario_name);

/// Write `contents` to `path` atomically and durably: temp file in the
/// same directory, flushed and fsync'd, then renamed over `path`, with
/// the directory fsync'd afterwards so the rename itself survives a
/// power loss (without the syncs, a crash can leave the renamed file
/// empty or torn — and a torn state file turns `--resume` into an
/// abort). Creates parent directories as needed. Returns false on any
/// I/O failure and never corrupts an existing file at `path`. Shared by
/// the campaign checkpoint and fuzz-state writers.
[[nodiscard]] bool write_state_file_atomic(const std::string& path,
                                           std::string_view contents);

/// Serialize + write via write_state_file_atomic. Returns false on any
/// I/O failure — a failed flush must never corrupt the previous
/// checkpoint.
[[nodiscard]] bool write_checkpoint_file(const std::string& path,
                                         const CampaignCheckpoint& ck);

/// Assemble a checkpoint from live campaign state: `report` as
/// accumulated so far, the ambient Registry::current() snapshot, and the
/// ambient span collector's watermark (0 when tracing is off).
[[nodiscard]] CampaignCheckpoint make_checkpoint(const Scenario& scenario,
                                                 const SoakOptions& opts,
                                                 const SoakReport& report,
                                                 std::size_t repeats_done);

}  // namespace carpool::chaos
