#pragma once

// carpool::chaos — minimal JSON reader/writer for scenario files and
// repro bundles (docs/SOAK.md).
//
// Strict subset of RFC 8259 sufficient for our schemas: objects, arrays,
// strings (with \uXXXX escapes decoded to UTF-8), numbers, booleans,
// null. Parsing never throws: malformed input yields a structured
// JsonError carrying the 1-based line/column and a message, so a bad
// scenario file becomes a diagnostic rather than a crash — one of the
// repro-bundle robustness requirements the chaos tests pin down.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace carpool::chaos {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// Ordered map: scenario files diff cleanly when keys keep their order.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

/// A parsed JSON document node (immutable after parse).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::kString), string_(std::move(s)) {}
  explicit JsonValue(JsonArray a)
      : kind_(Kind::kArray), array_(std::move(a)) {}
  explicit JsonValue(JsonObject o)
      : kind_(Kind::kObject), object_(std::move(o)) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept {
    return kind_ == Kind::kNull;
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return kind_ == Kind::kBool;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind_ == Kind::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_number() const noexcept { return number_; }
  [[nodiscard]] const std::string& as_string() const noexcept {
    return string_;
  }
  [[nodiscard]] const JsonArray& as_array() const noexcept { return array_; }
  [[nodiscard]] const JsonObject& as_object() const noexcept {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

/// Where and why parsing failed. `line`/`column` are 1-based positions in
/// the input text.
struct JsonError {
  std::string message;
  std::size_t line = 0;
  std::size_t column = 0;

  [[nodiscard]] std::string to_string() const;
};

struct JsonParseResult {
  std::optional<JsonValue> value;  ///< engaged iff parsing succeeded
  JsonError error;                 ///< meaningful iff !value

  [[nodiscard]] bool ok() const noexcept { return value.has_value(); }
};

/// Parse a complete JSON document (trailing garbage is an error).
[[nodiscard]] JsonParseResult json_parse(std::string_view text);

/// Serialize with 2-space indentation and `\n` line ends. Numbers that
/// hold integral values print without a decimal point so frame indices
/// and seeds round-trip textually.
[[nodiscard]] std::string json_dump(const JsonValue& value);

/// Validated number -> u64 for the double-backed state-file schemas:
/// true iff `v` is a finite, integral JSON number within [0, 2^53] (the
/// precision bound the format already assumes). Guards the static_cast
/// in never-throwing parsers — converting NaN, an infinity, or an
/// out-of-range double to an integer is undefined behaviour, and a
/// corrupted or hand-edited file must become a diagnostic, not UB.
[[nodiscard]] bool json_to_u64(const JsonValue* v,
                               std::uint64_t& out) noexcept;

// ------------------------------------------------- building convenience

/// Append a member to an object under construction.
inline void json_set(JsonObject& obj, std::string key, JsonValue v) {
  obj.emplace_back(std::move(key), std::move(v));
}

}  // namespace carpool::chaos
