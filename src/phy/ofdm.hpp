#pragma once

// OFDM symbol construction for the 20 MHz 802.11a/g PHY: 64-point FFT,
// 48 data subcarriers, 4 pilot subcarriers at {-21,-7,+7,+21}, 16-sample
// cyclic prefix (symbol = 80 samples = 4 us at 20 Msps).

#include <array>
#include <cstdint>
#include <span>

#include "dsp/complex_vec.hpp"

namespace carpool {

inline constexpr std::size_t kFftSize = 64;
inline constexpr std::size_t kCpLen = 16;
inline constexpr std::size_t kSymbolLen = kFftSize + kCpLen;  // 80
inline constexpr std::size_t kNumDataSubcarriers = 48;
inline constexpr std::size_t kNumPilots = 4;
inline constexpr double kSymbolDuration = 4e-6;  // seconds
inline constexpr double kSampleRate = 20e6;

/// FFT bin indices of the 48 data subcarriers, in transmit order
/// (subcarrier -26 first, +26 last, skipping DC and pilots).
std::span<const std::size_t> data_bins() noexcept;

/// FFT bin indices of the pilot subcarriers {-21,-7,+7,+21}.
std::span<const std::size_t> pilot_bins() noexcept;

/// Base pilot values {+1,+1,+1,-1} before the polarity sequence.
std::span<const double> pilot_base() noexcept;

/// Pilot polarity p_n (127-periodic sequence of +-1, Clause 17.3.5.9).
/// Index 0 is used by the SIG symbol.
double pilot_polarity(std::size_t symbol_index) noexcept;

/// Build one OFDM symbol (80 time samples).
///  - `data`: 48 complex points mapped onto the data subcarriers
///  - `symbol_index`: selects pilot polarity
///  - `phase_offset`: extra rotation applied to *all* data and pilot
///    subcarriers — the Carpool side-channel injection (0 for legacy)
CxVec assemble_symbol(std::span<const Cx> data, std::size_t symbol_index,
                      double phase_offset = 0.0);

/// Undo the CP and FFT: 80 time samples -> 64 frequency bins (normalised
/// so an ideal channel returns the transmitted points).
CxVec extract_symbol(std::span<const Cx> samples);

/// Batched extract_symbol over `count` back-to-back 80-sample symbols
/// (samples must hold at least count * kSymbolLen entries): returns
/// count * kFftSize bins, symbol s at offset s * kFftSize. One
/// dsp::fft_batch sweep — the SIMD tiers carry one symbol per vector
/// lane — with bit-identical bins to per-symbol extraction.
CxVec extract_symbols(std::span<const Cx> samples, std::size_t count);

/// Gather the data subcarriers (48) out of 64 frequency bins.
CxVec gather_data(std::span<const Cx> bins);

/// Gather the pilot subcarriers (4) out of 64 frequency bins.
CxVec gather_pilots(std::span<const Cx> bins);

}  // namespace carpool
