#include "phy/ofdm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"
#include "dsp/kernels.hpp"
#include "fec/scrambler.hpp"
#include "obs/timer.hpp"

namespace carpool {
namespace {

constexpr std::size_t bin_of(int subcarrier) {
  return subcarrier >= 0 ? static_cast<std::size_t>(subcarrier)
                         : kFftSize - static_cast<std::size_t>(-subcarrier);
}

std::array<std::size_t, kNumDataSubcarriers> make_data_bins() {
  std::array<std::size_t, kNumDataSubcarriers> bins{};
  std::size_t idx = 0;
  for (int sc = -26; sc <= 26; ++sc) {
    if (sc == 0 || sc == -21 || sc == -7 || sc == 7 || sc == 21) continue;
    bins[idx++] = bin_of(sc);
  }
  return bins;
}

const std::array<std::size_t, kNumDataSubcarriers> kDataBins = make_data_bins();
constexpr std::array<std::size_t, kNumPilots> kPilotBins{
    bin_of(-21), bin_of(-7), bin_of(7), bin_of(21)};
constexpr std::array<double, kNumPilots> kPilotBase{1.0, 1.0, 1.0, -1.0};

// Normalise so the time-domain symbol has unit mean power when the 52
// occupied bins carry unit-power points.
const double kScale = static_cast<double>(kFftSize) / std::sqrt(52.0);

std::array<double, 127> make_polarity() {
  // The polarity sequence equals 1 - 2*s_n where s_n is the output of the
  // 802.11 scrambler LFSR seeded with all ones.
  std::array<double, 127> seq{};
  Scrambler lfsr(0x7F);
  for (double& value : seq) value = lfsr.next_bit() ? -1.0 : 1.0;
  return seq;
}

const std::array<double, 127> kPolarity = make_polarity();

}  // namespace

std::span<const std::size_t> data_bins() noexcept { return kDataBins; }
std::span<const std::size_t> pilot_bins() noexcept { return kPilotBins; }
std::span<const double> pilot_base() noexcept { return kPilotBase; }

double pilot_polarity(std::size_t symbol_index) noexcept {
  return kPolarity[symbol_index % kPolarity.size()];
}

CxVec assemble_symbol(std::span<const Cx> data, std::size_t symbol_index,
                      double phase_offset) {
  if (data.size() != kNumDataSubcarriers) {
    throw std::invalid_argument("assemble_symbol: need 48 data points");
  }
  OBS_TIMED_SPAN("phy.ofdm_modulate");
  CxVec bins(kFftSize, Cx{});
  const Cx rotation = cx_exp(phase_offset);
  for (std::size_t i = 0; i < kNumDataSubcarriers; ++i) {
    bins[kDataBins[i]] = data[i] * rotation;
  }
  const double polarity = pilot_polarity(symbol_index);
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    bins[kPilotBins[i]] = Cx{kPilotBase[i] * polarity, 0.0} * rotation;
  }
  CxVec time = ifft(bins);
  scale(time, kScale);

  CxVec symbol;
  symbol.reserve(kSymbolLen);
  symbol.insert(symbol.end(), time.end() - kCpLen, time.end());
  symbol.insert(symbol.end(), time.begin(), time.end());
  return symbol;
}

CxVec extract_symbol(std::span<const Cx> samples) {
  if (samples.size() != kSymbolLen) {
    throw std::invalid_argument("extract_symbol: need 80 samples");
  }
  OBS_TIMED_SPAN("phy.ofdm_demodulate");
  CxVec time(samples.begin() + kCpLen, samples.end());
  fft_inplace(time);
  scale(time, 1.0 / kScale);
  return time;
}

CxVec extract_symbols(std::span<const Cx> samples, std::size_t count) {
  if (samples.size() < count * kSymbolLen) {
    throw std::invalid_argument("extract_symbols: not enough samples");
  }
  OBS_TIMED_SPAN("phy.ofdm_demodulate");
  CxVec bins(count * kFftSize);
  for (std::size_t s = 0; s < count; ++s) {
    const Cx* src = samples.data() + s * kSymbolLen + kCpLen;
    std::copy(src, src + kFftSize, bins.begin() + s * kFftSize);
  }
  dsp::active_backend().fft_batch(bins.data(), kFftSize, count, -1);
  scale(bins, 1.0 / kScale);
  return bins;
}

CxVec gather_data(std::span<const Cx> bins) {
  if (bins.size() != kFftSize) {
    throw std::invalid_argument("gather_data: need 64 bins");
  }
  CxVec out(kNumDataSubcarriers);
  for (std::size_t i = 0; i < kNumDataSubcarriers; ++i) {
    out[i] = bins[kDataBins[i]];
  }
  return out;
}

CxVec gather_pilots(std::span<const Cx> bins) {
  if (bins.size() != kFftSize) {
    throw std::invalid_argument("gather_pilots: need 64 bins");
  }
  CxVec out(kNumPilots);
  for (std::size_t i = 0; i < kNumPilots; ++i) out[i] = bins[kPilotBins[i]];
  return out;
}

}  // namespace carpool
