#include "phy/constellation.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace carpool {
namespace {

// Gray-coded PAM levels per axis, indexed by the axis bits packed with the
// first (earliest) bit as LSB. Values follow IEEE 802.11 Tables 17-(9..11).
constexpr std::array<double, 2> kPam2{-1.0, 1.0};
constexpr std::array<double, 4> kPam4{-3.0, 3.0, -1.0, 1.0};
constexpr std::array<double, 8> kPam8{-7.0, 7.0, -1.0, 1.0,
                                      -5.0, 5.0, -3.0, 3.0};

double pam_level(unsigned packed, std::size_t bits_per_axis) {
  switch (bits_per_axis) {
    case 1:
      return kPam2[packed];
    case 2:
      return kPam4[packed];
    case 3:
      return kPam8[packed];
    default:
      throw std::logic_error("pam_level: unsupported axis width");
  }
}

double normalization(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk:
      return 1.0;
    case Modulation::kQpsk:
      return 1.0 / std::sqrt(2.0);
    case Modulation::kQam16:
      return 1.0 / std::sqrt(10.0);
    case Modulation::kQam64:
      return 1.0 / std::sqrt(42.0);
  }
  throw std::logic_error("unknown modulation");
}

}  // namespace

std::size_t bits_per_symbol(Modulation mod) noexcept {
  switch (mod) {
    case Modulation::kBpsk:
      return 1;
    case Modulation::kQpsk:
      return 2;
    case Modulation::kQam16:
      return 4;
    case Modulation::kQam64:
      return 6;
  }
  return 1;
}

std::string_view modulation_name(Modulation mod) noexcept {
  switch (mod) {
    case Modulation::kBpsk:
      return "BPSK";
    case Modulation::kQpsk:
      return "QPSK";
    case Modulation::kQam16:
      return "QAM16";
    case Modulation::kQam64:
      return "QAM64";
  }
  return "?";
}

Constellation::Constellation(Modulation mod)
    : mod_(mod), nbits_(bits_per_symbol(mod)) {
  const double norm = normalization(mod);
  const std::size_t count = std::size_t{1} << nbits_;
  points_.resize(count);
  for (std::size_t label = 0; label < count; ++label) {
    if (mod == Modulation::kBpsk) {
      points_[label] = Cx{pam_level(static_cast<unsigned>(label), 1), 0.0};
      continue;
    }
    const std::size_t axis_bits = nbits_ / 2;
    const unsigned mask = (1u << axis_bits) - 1u;
    const unsigned i_packed = static_cast<unsigned>(label) & mask;
    const unsigned q_packed = (static_cast<unsigned>(label) >> axis_bits) & mask;
    points_[label] = norm * Cx{pam_level(i_packed, axis_bits),
                               pam_level(q_packed, axis_bits)};
  }
}

Cx Constellation::map(std::span<const std::uint8_t> bits) const {
  if (bits.size() != nbits_) {
    throw std::invalid_argument("Constellation::map: wrong bit count");
  }
  unsigned label = 0;
  for (std::size_t i = 0; i < nbits_; ++i) {
    label |= static_cast<unsigned>(bits[i] & 1u) << i;
  }
  return points_[label];
}

CxVec Constellation::map_all(std::span<const std::uint8_t> bits) const {
  if (bits.size() % nbits_ != 0) {
    throw std::invalid_argument("Constellation::map_all: size mismatch");
  }
  CxVec out;
  out.reserve(bits.size() / nbits_);
  for (std::size_t i = 0; i < bits.size(); i += nbits_) {
    out.push_back(map(bits.subspan(i, nbits_)));
  }
  return out;
}

Bits Constellation::demap_hard(Cx received) const {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t label = 0; label < points_.size(); ++label) {
    const double d = std::norm(received - points_[label]);
    if (d < best_dist) {
      best_dist = d;
      best = label;
    }
  }
  Bits bits(nbits_);
  for (std::size_t i = 0; i < nbits_; ++i) {
    bits[i] = static_cast<std::uint8_t>((best >> i) & 1u);
  }
  return bits;
}

void Constellation::demap_soft(Cx received, double gain, SoftBits& out) const {
  // Max-log LLR per bit: min distance over points with the bit = 0 minus
  // min distance over points with the bit = 1; positive favours bit 1.
  for (std::size_t bit = 0; bit < nbits_; ++bit) {
    double min0 = std::numeric_limits<double>::infinity();
    double min1 = std::numeric_limits<double>::infinity();
    for (std::size_t label = 0; label < points_.size(); ++label) {
      const double d = std::norm(received - points_[label]);
      if ((label >> bit) & 1u) {
        min1 = std::min(min1, d);
      } else {
        min0 = std::min(min0, d);
      }
    }
    out.push_back(gain * (min0 - min1));
  }
}

const Constellation& constellation(Modulation mod) {
  static const Constellation bpsk{Modulation::kBpsk};
  static const Constellation qpsk{Modulation::kQpsk};
  static const Constellation qam16{Modulation::kQam16};
  static const Constellation qam64{Modulation::kQam64};
  switch (mod) {
    case Modulation::kBpsk:
      return bpsk;
    case Modulation::kQpsk:
      return qpsk;
    case Modulation::kQam16:
      return qam16;
    case Modulation::kQam64:
      return qam64;
  }
  throw std::logic_error("unknown modulation");
}

}  // namespace carpool
