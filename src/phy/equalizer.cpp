#include "phy/equalizer.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "dsp/kernels.hpp"
#include "obs/timer.hpp"

namespace carpool {

SymbolEqualization equalize_symbol(std::span<const Cx> bins,
                                   std::span<const Cx> h,
                                   std::size_t symbol_index) {
  if (bins.size() != kFftSize || h.size() != kFftSize) {
    throw std::invalid_argument("equalize_symbol: need 64-bin inputs");
  }
  OBS_SCOPED_TIMER("phy.equalize");
  // Pilot phase estimate: correlate equalized pilots against expectation.
  // This stays on the shared serial path (dsp::pilot_estimate) so the
  // derotation below is identical no matter which backend equalizes.
  const double polarity = pilot_polarity(symbol_index);
  const auto pbins = pilot_bins();
  const auto pbase = pilot_base();
  std::array<Cx, kNumPilots> pilot_rx;
  std::array<Cx, kNumPilots> pilot_h;
  std::array<double, kNumPilots> expected;
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    pilot_rx[i] = bins[pbins[i]];
    pilot_h[i] = h[pbins[i]];
    expected[i] = pbase[i] * polarity;
  }
  const dsp::PilotEstimate pilots = dsp::pilot_estimate(
      pilot_rx.data(), pilot_h.data(), expected.data(), kNumPilots);
  SymbolEqualization out;
  out.phase_offset = std::arg(pilots.corr);
  // |sum| / sum|.| is 1 when all pilots agree in phase, < 1 otherwise.
  out.pilot_quality = pilots.magnitude_sum > 0.0
                          ? std::abs(pilots.corr) / pilots.magnitude_sum
                          : 0.0;

  // Gather the 48 data subcarriers into contiguous arrays and hand the
  // whole symbol to the active kernel backend (docs/KERNELS.md): one
  // equalize-and-derotate sweep instead of 48 scalar divisions. h == 0
  // marks an erased subcarrier (data 0, gain 0) on every backend.
  const Cx derotate = cx_exp(-out.phase_offset);
  const auto dbins = data_bins();
  std::array<Cx, kNumDataSubcarriers> data_rx;
  std::array<Cx, kNumDataSubcarriers> data_h;
  for (std::size_t i = 0; i < kNumDataSubcarriers; ++i) {
    data_rx[i] = bins[dbins[i]];
    data_h[i] = h[dbins[i]];
  }
  out.data.resize(kNumDataSubcarriers);
  out.gains.resize(kNumDataSubcarriers);
  dsp::active_backend().equalize(data_rx.data(), data_h.data(),
                                 kNumDataSubcarriers, derotate,
                                 out.data.data(), out.gains.data());
  return out;
}

CxVec reference_bins(std::span<const Cx> data_points, std::size_t symbol_index,
                     double phase_offset) {
  if (data_points.size() != kNumDataSubcarriers) {
    throw std::invalid_argument("reference_bins: need 48 data points");
  }
  CxVec bins(kFftSize, Cx{});
  const Cx rotation = cx_exp(phase_offset);
  const auto dbins = data_bins();
  for (std::size_t i = 0; i < kNumDataSubcarriers; ++i) {
    bins[dbins[i]] = data_points[i] * rotation;
  }
  const double polarity = pilot_polarity(symbol_index);
  const auto pbins = pilot_bins();
  const auto pbase = pilot_base();
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    bins[pbins[i]] = Cx{pbase[i] * polarity, 0.0} * rotation;
  }
  return bins;
}

}  // namespace carpool
