#include "phy/equalizer.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/timer.hpp"

namespace carpool {

SymbolEqualization equalize_symbol(std::span<const Cx> bins,
                                   std::span<const Cx> h,
                                   std::size_t symbol_index) {
  if (bins.size() != kFftSize || h.size() != kFftSize) {
    throw std::invalid_argument("equalize_symbol: need 64-bin inputs");
  }
  OBS_SCOPED_TIMER("phy.equalize");
  // Pilot phase estimate: correlate equalized pilots against expectation.
  const double polarity = pilot_polarity(symbol_index);
  const auto pbins = pilot_bins();
  const auto pbase = pilot_base();
  Cx corr{};
  double magnitude_sum = 0.0;
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    const Cx hk = h[pbins[i]];
    if (hk == Cx{}) continue;
    const Cx eq = bins[pbins[i]] / hk;
    const double expected = pbase[i] * polarity;
    corr += eq * expected;  // expected is real +-1
    magnitude_sum += std::abs(eq);
  }
  SymbolEqualization out;
  out.phase_offset = std::arg(corr);
  // |sum| / sum|.| is 1 when all pilots agree in phase, < 1 otherwise.
  out.pilot_quality =
      magnitude_sum > 0.0 ? std::abs(corr) / magnitude_sum : 0.0;

  const Cx derotate = cx_exp(-out.phase_offset);
  const auto dbins = data_bins();
  out.data.resize(kNumDataSubcarriers);
  out.gains.resize(kNumDataSubcarriers);
  for (std::size_t i = 0; i < kNumDataSubcarriers; ++i) {
    const Cx hk = h[dbins[i]];
    if (hk == Cx{}) {
      out.data[i] = Cx{};
      out.gains[i] = 0.0;
      continue;
    }
    out.data[i] = bins[dbins[i]] / hk * derotate;
    out.gains[i] = std::norm(hk);
  }
  return out;
}

CxVec reference_bins(std::span<const Cx> data_points, std::size_t symbol_index,
                     double phase_offset) {
  if (data_points.size() != kNumDataSubcarriers) {
    throw std::invalid_argument("reference_bins: need 48 data points");
  }
  CxVec bins(kFftSize, Cx{});
  const Cx rotation = cx_exp(phase_offset);
  const auto dbins = data_bins();
  for (std::size_t i = 0; i < kNumDataSubcarriers; ++i) {
    bins[dbins[i]] = data_points[i] * rotation;
  }
  const double polarity = pilot_polarity(symbol_index);
  const auto pbins = pilot_bins();
  const auto pbase = pilot_base();
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    bins[pbins[i]] = Cx{pbase[i] * polarity, 0.0} * rotation;
  }
  return bins;
}

}  // namespace carpool
