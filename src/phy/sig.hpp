#pragma once

// Legacy SIG field (Clause 17.3.4): one BPSK rate-1/2 OFDM symbol carrying
// RATE (4 bits), LENGTH (12 bits), even parity and 6 tail bits. The SIG is
// never scrambled — Carpool receivers exploit this to read subframe
// lengths and skip ahead without descrambler state (paper Sec. 4.1).

#include <cstdint>
#include <optional>
#include <span>

#include "common/bits.hpp"
#include "dsp/complex_vec.hpp"
#include "fec/convolutional.hpp"
#include "phy/mcs.hpp"

namespace carpool {

struct SigInfo {
  std::size_t mcs_index = 0;
  std::size_t length_bytes = 0;  ///< PSDU length, 1..4095
};

/// Maximum PSDU length encodable in the 12-bit LENGTH field.
inline constexpr std::size_t kMaxSigLength = 4095;

/// Encode the SIG as 48 BPSK points ready for assemble_symbol().
CxVec encode_sig(const SigInfo& info);

/// The SIG's 48 coded bits *before* interleaving — the bits a receiver
/// recovers by hard demapping + deinterleaving, and therefore the bits the
/// Carpool side channel checksums for the SIG symbol.
Bits sig_coded_bits(const SigInfo& info);

/// Decode SIG from 48 equalized points (+ per-subcarrier gains for soft
/// decisions). Returns nullopt if the parity check or rate code fails.
std::optional<SigInfo> decode_sig(std::span<const Cx> points,
                                  std::span<const double> gains);

}  // namespace carpool
