#pragma once

// Modulation and coding schemes for the 20 MHz OFDM PHY (802.11a/g rates;
// the MAC simulator additionally models 802.11n rates as plain bit rates).

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "fec/convolutional.hpp"
#include "phy/constellation.hpp"

namespace carpool {

struct Mcs {
  Modulation modulation;
  CodeRate code_rate;
  double data_rate_bps;     ///< PHY data rate
  std::size_t n_bpsc;       ///< coded bits per subcarrier
  std::size_t n_cbps;       ///< coded bits per OFDM symbol (48 carriers)
  std::size_t n_dbps;       ///< data bits per OFDM symbol
  std::string_view name;
};

/// 802.11a/g rate set: 6, 9, 12, 18, 24, 36, 48, 54 Mbit/s.
std::span<const Mcs> mcs_table() noexcept;

/// Lookup by index (0..7). Throws std::out_of_range on bad index.
const Mcs& mcs(std::size_t index);

/// The lowest ("basic") rate: BPSK 1/2, 6 Mbit/s. Used by SIG and A-HDR.
const Mcs& basic_mcs() noexcept;

/// Index of an MCS in the table (for SIG encoding). Throws if not found.
std::size_t mcs_index(const Mcs& m);

/// Number of OFDM data symbols needed for `psdu_bytes` of MAC payload at
/// this MCS, including SERVICE (16) and tail (6) bits, with padding.
std::size_t num_data_symbols(const Mcs& m, std::size_t psdu_bytes);

}  // namespace carpool
