#include "phy/sig.hpp"

#include <array>
#include <stdexcept>

#include "fec/interleaver.hpp"
#include "fec/viterbi.hpp"

namespace carpool {
namespace {

// RATE field codes (R1..R4 transmitted first-to-last), Clause 17.3.4.2,
// indexed by MCS table position (6..54 Mbit/s).
constexpr std::array<std::uint8_t, 8> kRateCodes{
    0b1011,  // 6  Mbit/s: R1=1 R2=1 R3=0 R4=1 stored LSB-first
    0b1111,  // 9
    0b1010,  // 12
    0b1110,  // 18
    0b1001,  // 24
    0b1101,  // 36
    0b1000,  // 48
    0b1100,  // 54
};

const Interleaver& sig_interleaver() {
  static const Interleaver il{48, 1};
  return il;
}

Bits sig_bits(const SigInfo& info) {
  if (info.mcs_index >= kRateCodes.size()) {
    throw std::invalid_argument("encode_sig: bad mcs index");
  }
  if (info.length_bytes == 0 || info.length_bytes > kMaxSigLength) {
    throw std::invalid_argument("encode_sig: length out of range");
  }
  BitWriter w;
  w.put_bits(kRateCodes[info.mcs_index], 4);
  w.put_bit(0);  // reserved
  w.put_bits(info.length_bytes, 12);
  // Even parity over the first 17 bits.
  std::uint8_t parity = 0;
  for (const std::uint8_t b : w.bits()) parity ^= (b & 1u);
  w.put_bit(parity);
  w.put_bits(0, 6);  // tail
  return w.take();
}

}  // namespace

Bits sig_coded_bits(const SigInfo& info) {
  // Rate-1/2 encoding; the 6 tail bits terminate the trellis, so no extra
  // tail is appended.
  return ConvolutionalCode::encode(sig_bits(info));
}

CxVec encode_sig(const SigInfo& info) {
  const Bits interleaved = sig_interleaver().interleave(sig_coded_bits(info));
  return constellation(Modulation::kBpsk).map_all(interleaved);
}

std::optional<SigInfo> decode_sig(std::span<const Cx> points,
                                  std::span<const double> gains) {
  if (points.size() != 48 || gains.size() != 48) {
    throw std::invalid_argument("decode_sig: need 48 points");
  }
  const Constellation& bpsk = constellation(Modulation::kBpsk);
  SoftBits soft;
  soft.reserve(48);
  for (std::size_t i = 0; i < 48; ++i) {
    bpsk.demap_soft(points[i], gains[i], soft);
  }
  const SoftBits deinterleaved = sig_interleaver().deinterleave(soft);
  static const ViterbiDecoder viterbi;
  const Bits decoded = viterbi.decode(deinterleaved, /*terminated=*/true);

  BitReader r(decoded);
  const auto rate_code = static_cast<std::uint8_t>(r.get_bits(4));
  const std::uint8_t reserved = r.get_bit();
  const std::size_t length = r.get_bits(12);
  const std::uint8_t parity = r.get_bit();

  std::uint8_t expect = 0;
  for (std::size_t i = 0; i < 17; ++i) expect ^= (decoded[i] & 1u);
  if (expect != (parity & 1u) || reserved != 0) return std::nullopt;
  if (length == 0) return std::nullopt;

  for (std::size_t idx = 0; idx < kRateCodes.size(); ++idx) {
    if (kRateCodes[idx] == rate_code) return SigInfo{idx, length};
  }
  return std::nullopt;
}

}  // namespace carpool
