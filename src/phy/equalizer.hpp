#pragma once

// Per-symbol equalisation and pilot phase tracking.
//
// The receiver divides each subcarrier by the channel estimate (zero
// forcing), then measures the residual *common* phase of the symbol from
// the four pilot subcarriers and derotates the data subcarriers by it.
// This common phase is the sum of residual-CFO drift and any phase the
// transmitter injected — which is exactly the observable the Carpool side
// channel modulates (paper Sec. 5.2).

#include <span>
#include <vector>

#include "dsp/complex_vec.hpp"
#include "phy/ofdm.hpp"

namespace carpool {

struct SymbolEqualization {
  CxVec data;                 ///< 48 equalized, phase-compensated points
  std::vector<double> gains;  ///< |H_k|^2 per data subcarrier (soft weights)
  double phase_offset = 0.0;  ///< measured common phase (radians)
  double pilot_quality = 0.0; ///< magnitude of the pilot correlation (0..1)
};

/// Equalize one OFDM symbol.
///  - `bins`: 64 frequency bins from extract_symbol()
///  - `h`: channel estimate on the 64-bin grid
///  - `symbol_index`: selects the expected pilot polarity
SymbolEqualization equalize_symbol(std::span<const Cx> bins,
                                   std::span<const Cx> h,
                                   std::size_t symbol_index);

/// Reconstruct the 64-bin frequency-domain view a transmitter would have
/// produced for these 48 data points (plus pilots), including an injected
/// phase offset; used to form "data pilot" channel estimates.
CxVec reference_bins(std::span<const Cx> data_points, std::size_t symbol_index,
                     double phase_offset);

}  // namespace carpool
