#include "phy/mcs.hpp"

#include <stdexcept>

namespace carpool {
namespace {

constexpr std::array<Mcs, 8> kMcsTable{{
    {Modulation::kBpsk, CodeRate::kHalf, 6e6, 1, 48, 24, "BPSK-1/2 (6M)"},
    {Modulation::kBpsk, CodeRate::kThreeQuarters, 9e6, 1, 48, 36,
     "BPSK-3/4 (9M)"},
    {Modulation::kQpsk, CodeRate::kHalf, 12e6, 2, 96, 48, "QPSK-1/2 (12M)"},
    {Modulation::kQpsk, CodeRate::kThreeQuarters, 18e6, 2, 96, 72,
     "QPSK-3/4 (18M)"},
    {Modulation::kQam16, CodeRate::kHalf, 24e6, 4, 192, 96,
     "QAM16-1/2 (24M)"},
    {Modulation::kQam16, CodeRate::kThreeQuarters, 36e6, 4, 192, 144,
     "QAM16-3/4 (36M)"},
    {Modulation::kQam64, CodeRate::kTwoThirds, 48e6, 6, 288, 192,
     "QAM64-2/3 (48M)"},
    {Modulation::kQam64, CodeRate::kThreeQuarters, 54e6, 6, 288, 216,
     "QAM64-3/4 (54M)"},
}};

}  // namespace

std::span<const Mcs> mcs_table() noexcept { return kMcsTable; }

const Mcs& mcs(std::size_t index) {
  if (index >= kMcsTable.size()) throw std::out_of_range("mcs index");
  return kMcsTable[index];
}

const Mcs& basic_mcs() noexcept { return kMcsTable[0]; }

std::size_t mcs_index(const Mcs& m) {
  for (std::size_t i = 0; i < kMcsTable.size(); ++i) {
    if (&kMcsTable[i] == &m ||
        (kMcsTable[i].modulation == m.modulation &&
         kMcsTable[i].code_rate == m.code_rate)) {
      return i;
    }
  }
  throw std::invalid_argument("mcs_index: not a table entry");
}

std::size_t num_data_symbols(const Mcs& m, std::size_t psdu_bytes) {
  // SERVICE (16 bits) + PSDU + tail (6 bits), rounded up to N_DBPS.
  const std::size_t payload_bits = 16 + 8 * psdu_bytes + 6;
  return (payload_bits + m.n_dbps - 1) / m.n_dbps;
}

}  // namespace carpool
