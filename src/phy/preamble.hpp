#pragma once

// Legacy (802.11a/g) PLCP preamble: 8 us short training field (STF) for
// AGC/coarse CFO and 8 us long training field (LTF) for fine CFO and the
// initial channel estimate. 320 samples total at 20 Msps.

#include <span>

#include "dsp/complex_vec.hpp"
#include "phy/ofdm.hpp"

namespace carpool {

inline constexpr std::size_t kStfLen = 160;
inline constexpr std::size_t kLtfLen = 160;
inline constexpr std::size_t kPreambleLen = kStfLen + kLtfLen;
inline constexpr std::size_t kLtfCpLen = 32;

/// Known LTF frequency-domain sequence on the 64-bin grid (+-1 on the 52
/// occupied subcarriers, 0 elsewhere).
std::span<const Cx> ltf_freq() noexcept;

/// STF waveform: 10 repetitions of the 16-sample short symbol.
CxVec stf_waveform();

/// LTF waveform: 32-sample CP followed by two 64-sample long symbols.
CxVec ltf_waveform();

/// Full legacy preamble (STF + LTF).
CxVec preamble_waveform();

/// Channel estimate from a received LTF (160 samples): average of the two
/// long symbols divided by the known sequence; zero on unused bins.
CxVec estimate_channel_from_ltf(std::span<const Cx> ltf_samples);

/// Coarse CFO estimate from the STF's 16-sample periodicity. Returns the
/// offset in radians per sample.
double estimate_coarse_cfo(std::span<const Cx> stf_samples);

/// Fine CFO estimate from the LTF's 64-sample repetition, radians/sample.
double estimate_fine_cfo(std::span<const Cx> ltf_samples);

/// Derotate `samples` in place by `radians_per_sample`, starting at
/// accumulated phase `start_phase` (returns the phase after the block so
/// correction can continue seamlessly across blocks).
double apply_cfo_correction(std::span<Cx> samples, double radians_per_sample,
                            double start_phase = 0.0);

}  // namespace carpool
