#include "phy/sync.hpp"

#include <cmath>

namespace carpool {

std::optional<SyncResult> detect_frame(std::span<const Cx> samples,
                                       const SyncConfig& config) {
  constexpr std::size_t kLag = 16;      // STF short-symbol period
  constexpr std::size_t kWindow = 64;   // correlation window
  if (samples.size() < kWindow + kLag) return std::nullopt;

  // Sliding autocorrelation C(n) = sum_{i<W} x[n+i] conj(x[n+i+L]) against
  // energy E(n); the normalised metric |C|/E approaches 1 inside the STF.
  Cx corr{};
  double energy_acc = 0.0;
  for (std::size_t i = 0; i < kWindow; ++i) {
    corr += samples[i] * std::conj(samples[i + kLag]);
    energy_acc += std::norm(samples[i + kLag]);
  }

  std::size_t run = 0;
  std::size_t run_start = 0;
  double best_metric = 0.0;
  const std::size_t last = samples.size() - kWindow - kLag;
  for (std::size_t n = 0;; ++n) {
    const double metric =
        energy_acc > 1e-30 ? std::abs(corr) / energy_acc : 0.0;
    if (metric > config.threshold) {
      if (run == 0) run_start = n;
      ++run;
      best_metric = std::max(best_metric, metric);
      if (run >= config.min_run) {
        return SyncResult{run_start, best_metric};
      }
    } else {
      run = 0;
      best_metric = 0.0;
    }
    if (n >= last) break;
    corr += samples[n + kWindow] * std::conj(samples[n + kWindow + kLag]) -
            samples[n] * std::conj(samples[n + kLag]);
    energy_acc += std::norm(samples[n + kWindow + kLag]) -
                  std::norm(samples[n + kLag]);
    energy_acc = std::max(energy_acc, 0.0);
  }
  return std::nullopt;
}

}  // namespace carpool
