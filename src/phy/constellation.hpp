#pragma once

// IEEE 802.11a/g/n constellation mappings with standard Gray coding and
// unit-average-power normalisation (Clause 17.3.5.8):
//   BPSK {+-1}, QPSK (+-1 +-j)/sqrt(2), 16-QAM {+-1,+-3}/sqrt(10),
//   64-QAM {+-1,..,+-7}/sqrt(42).

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/bits.hpp"
#include "dsp/complex_vec.hpp"
#include "fec/convolutional.hpp"

namespace carpool {

enum class Modulation { kBpsk, kQpsk, kQam16, kQam64 };

/// Coded bits per subcarrier (N_BPSC): 1, 2, 4, 6.
std::size_t bits_per_symbol(Modulation mod) noexcept;

std::string_view modulation_name(Modulation mod) noexcept;

class Constellation {
 public:
  explicit Constellation(Modulation mod);

  [[nodiscard]] Modulation modulation() const noexcept { return mod_; }
  [[nodiscard]] std::size_t bits_per_point() const noexcept { return nbits_; }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

  /// All constellation points indexed by their bit label (LSB-first).
  [[nodiscard]] std::span<const Cx> points() const noexcept { return points_; }

  /// Map `nbits` bits (LSB-first) to a point.
  [[nodiscard]] Cx map(std::span<const std::uint8_t> bits) const;

  /// Map a full bit stream; size must be a multiple of bits_per_point().
  [[nodiscard]] CxVec map_all(std::span<const std::uint8_t> bits) const;

  /// Hard decision: nearest point's bit label.
  [[nodiscard]] Bits demap_hard(Cx received) const;

  /// Max-log soft demapping: one soft value per bit, positive = bit 1.
  /// `gain` scales confidence (use |H_k|^2 so faded subcarriers count
  /// less after zero-forcing equalisation).
  void demap_soft(Cx received, double gain, SoftBits& out) const;

 private:
  Modulation mod_;
  std::size_t nbits_;
  CxVec points_;
};

/// Shared immutable instance per modulation.
const Constellation& constellation(Modulation mod);

}  // namespace carpool
