#pragma once

// Packet detection and coarse timing from the STF's 16-sample periodicity
// (Schmidl & Cox style autocorrelation). The MAC simulator hands receivers
// exact frame timing, so this module exists for completeness and is
// exercised by tests and the quickstart example.

#include <optional>
#include <span>

#include "dsp/complex_vec.hpp"

namespace carpool {

struct SyncResult {
  std::size_t frame_start = 0;  ///< estimated index of the first STF sample
  double metric = 0.0;          ///< peak autocorrelation metric (0..1)
};

struct SyncConfig {
  double threshold = 0.8;    ///< detection threshold on the metric
  std::size_t min_run = 48;  ///< samples the metric must stay above it
};

/// Scan `samples` for an STF. Returns nullopt if none is found.
std::optional<SyncResult> detect_frame(std::span<const Cx> samples,
                                       const SyncConfig& config = {});

}  // namespace carpool
