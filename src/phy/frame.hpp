#pragma once

// Legacy PPDU assembly and reception: preamble + SIG + DATA. The DATA path
// helpers are shared with the Carpool transceiver, which inserts an A-HDR
// and per-subframe SIGs and injects side-channel phase offsets.

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/bits.hpp"
#include "dsp/complex_vec.hpp"
#include "phy/equalizer.hpp"
#include "phy/mcs.hpp"
#include "phy/ofdm.hpp"
#include "phy/preamble.hpp"
#include "phy/sig.hpp"

namespace carpool {

/// Fixed scrambler seed used by both ends (a real receiver recovers the
/// seed from the SERVICE field; fixing it keeps simulations deterministic
/// without changing any error behaviour).
inline constexpr std::uint8_t kScramblerSeed = 0x5D;

/// Structured decode outcome for the reception paths. Real captures are
/// truncated, jammed, and corrupted; receivers report what went wrong
/// instead of throwing, so one bad (sub)frame never takes down a decode
/// loop (see docs/ROBUSTNESS.md).
enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kTruncated,      ///< waveform shorter than the span a field required
  kSyncLost,       ///< preamble unusable (no LTF periodicity to lock to)
  kSigCorrupt,     ///< a SIG failed parity/rate checks; cannot walk past it
  kAhdrMiss,       ///< A-HDR decoded but no Bloom match for this receiver
  kFcsFail,        ///< payload demodulated but its FCS (or Viterbi) failed
  kBadConfig,      ///< receiver configuration invalid (see config_error())
  kInternalError,  ///< unexpected exception contained by the decode path
};

[[nodiscard]] std::string_view to_string(DecodeStatus status) noexcept;

/// MAC-level FCS helpers (CRC-32 appended little-endian).
Bytes append_fcs(std::span<const std::uint8_t> body);
bool check_fcs(std::span<const std::uint8_t> frame_with_fcs);

/// --- TX data path (shared with Carpool) ---

/// SERVICE + PSDU + tail + pad, scrambled, tail bits re-zeroed; output
/// length is num_data_symbols(mcs, psdu.size()) * n_dbps.
Bits build_data_bits(std::span<const std::uint8_t> psdu, const Mcs& m);

/// Convolutional-encode (unterminated) and puncture; output length is a
/// multiple of n_cbps.
Bits code_data_bits(std::span<const std::uint8_t> data_bits, const Mcs& m);

/// Per-symbol constellation points: interleave + map each n_cbps block.
/// Returns one 48-point vector per OFDM symbol.
std::vector<CxVec> modulate_coded(std::span<const std::uint8_t> coded,
                                  const Mcs& m);

/// --- RX data path (shared with Carpool) ---

/// Inverse of modulate_coded for one symbol: soft demap (weighted by
/// per-subcarrier gain) + deinterleave. Appends n_cbps soft values to `out`.
void demap_symbol_soft(std::span<const Cx> points,
                       std::span<const double> gains, const Mcs& m,
                       SoftBits& out);

/// Hard demap + deinterleave one symbol (n_cbps bits): the bits a
/// symbol-level CRC covers.
Bits demap_symbol_hard(std::span<const Cx> points, const Mcs& m);

/// Viterbi-decode a soft coded stream and descramble; returns the PSDU
/// (length from SIG). Returns nullopt if the stream is too short.
std::optional<Bytes> decode_data_bits(std::span<const double> soft,
                                      const Mcs& m, std::size_t psdu_len);

/// --- Full legacy transceiver ---

class LegacyTransmitter {
 public:
  /// Build a complete PPDU waveform for one PSDU at the given MCS.
  [[nodiscard]] CxVec build(std::span<const std::uint8_t> psdu,
                            const Mcs& m) const;
};

/// Result of the shared preamble front end.
struct Frontend {
  CxVec corrected;  ///< CFO-corrected copy of the waveform
  CxVec h;          ///< initial channel estimate (64 bins)
  double cfo_radians_per_sample = 0.0;
  std::size_t data_start = kPreambleLen;  ///< index of the first symbol
  DecodeStatus status = DecodeStatus::kOk;
  /// Normalised correlation of the two LTF repeats (1 = textbook
  /// preamble, ~0 = noise). Diagnostic behind the kSyncLost verdict.
  double sync_quality = 0.0;

  [[nodiscard]] bool ok() const noexcept {
    return status == DecodeStatus::kOk;
  }
};

/// Run STF/LTF processing on a received waveform that starts at sample 0.
/// Never throws on malformed input: a waveform shorter than the preamble
/// comes back as kTruncated (with empty estimates) and a destroyed
/// preamble as kSyncLost; callers check Frontend::ok() before using the
/// estimates.
Frontend receive_frontend(std::span<const Cx> waveform);

struct LegacyRxResult {
  DecodeStatus status = DecodeStatus::kOk;
  bool sig_ok = false;
  SigInfo sig;
  bool decoded = false;  ///< PSDU extracted (correctness judged by FCS)
  bool fcs_ok = false;
  Bytes psdu;
  std::vector<double> phase_offsets;   ///< measured common phase per symbol
  std::vector<Bits> raw_symbol_bits;   ///< hard coded bits per data symbol
};

class LegacyReceiver {
 public:
  /// Decode a waveform (frame assumed to start at sample 0, as the MAC
  /// simulator provides exact timing; see phy/sync.hpp for detection).
  [[nodiscard]] LegacyRxResult receive(std::span<const Cx> waveform) const;
};

}  // namespace carpool
