#include "phy/frame.hpp"

#include <stdexcept>

#include "common/crc.hpp"
#include "fec/interleaver.hpp"
#include "fec/scrambler.hpp"
#include "fec/viterbi.hpp"

namespace carpool {
namespace {

const Interleaver& interleaver_for(const Mcs& m) {
  static const Interleaver il_bpsk{48, 1};
  static const Interleaver il_qpsk{96, 2};
  static const Interleaver il_qam16{192, 4};
  static const Interleaver il_qam64{288, 6};
  switch (m.modulation) {
    case Modulation::kBpsk:
      return il_bpsk;
    case Modulation::kQpsk:
      return il_qpsk;
    case Modulation::kQam16:
      return il_qam16;
    case Modulation::kQam64:
      return il_qam64;
  }
  throw std::logic_error("unknown modulation");
}

const ViterbiDecoder& viterbi() {
  static const ViterbiDecoder decoder;
  return decoder;
}

}  // namespace

std::string_view to_string(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kTruncated:
      return "truncated";
    case DecodeStatus::kSyncLost:
      return "sync_lost";
    case DecodeStatus::kSigCorrupt:
      return "sig_corrupt";
    case DecodeStatus::kAhdrMiss:
      return "ahdr_miss";
    case DecodeStatus::kFcsFail:
      return "fcs_fail";
    case DecodeStatus::kBadConfig:
      return "bad_config";
    case DecodeStatus::kInternalError:
      return "internal_error";
  }
  return "unknown";
}

Bytes append_fcs(std::span<const std::uint8_t> body) {
  Bytes out(body.begin(), body.end());
  const std::uint32_t crc = crc32(body);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFFu));
  }
  return out;
}

bool check_fcs(std::span<const std::uint8_t> frame_with_fcs) {
  if (frame_with_fcs.size() < 4) return false;
  const auto body = frame_with_fcs.first(frame_with_fcs.size() - 4);
  const std::uint32_t crc = crc32(body);
  for (int i = 0; i < 4; ++i) {
    if (frame_with_fcs[body.size() + static_cast<std::size_t>(i)] !=
        static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFFu)) {
      return false;
    }
  }
  return true;
}

Bits build_data_bits(std::span<const std::uint8_t> psdu, const Mcs& m) {
  const std::size_t n_sym = num_data_symbols(m, psdu.size());
  const std::size_t total = n_sym * m.n_dbps;

  BitWriter w;
  w.put_bits(0, 16);  // SERVICE (scrambler init + reserved)
  w.append(bytes_to_bits(psdu));
  const std::size_t tail_pos = w.size();
  w.put_bits(0, 6);  // tail
  while (w.size() < total) w.put_bit(0);  // pad

  Scrambler scrambler(kScramblerSeed);
  Bits scrambled = scrambler.process(w.bits());
  // Tail bits are reset to zero after scrambling (Clause 17.3.5.3) so the
  // trellis reaches the zero state at the end of the PSDU.
  for (std::size_t i = tail_pos; i < tail_pos + 6; ++i) scrambled[i] = 0;
  return scrambled;
}

Bits code_data_bits(std::span<const std::uint8_t> data_bits, const Mcs& m) {
  const Bits coded = ConvolutionalCode::encode(data_bits);
  return ConvolutionalCode::puncture(coded, m.code_rate);
}

std::vector<CxVec> modulate_coded(std::span<const std::uint8_t> coded,
                                  const Mcs& m) {
  if (coded.size() % m.n_cbps != 0) {
    throw std::invalid_argument("modulate_coded: not a whole symbol count");
  }
  const Interleaver& il = interleaver_for(m);
  const Constellation& con = constellation(m.modulation);
  std::vector<CxVec> symbols;
  symbols.reserve(coded.size() / m.n_cbps);
  for (std::size_t off = 0; off < coded.size(); off += m.n_cbps) {
    const Bits block = il.interleave(coded.subspan(off, m.n_cbps));
    symbols.push_back(con.map_all(block));
  }
  return symbols;
}

void demap_symbol_soft(std::span<const Cx> points,
                       std::span<const double> gains, const Mcs& m,
                       SoftBits& out) {
  if (points.size() != kNumDataSubcarriers ||
      gains.size() != kNumDataSubcarriers) {
    throw std::invalid_argument("demap_symbol_soft: need 48 points");
  }
  const Constellation& con = constellation(m.modulation);
  SoftBits interleaved;
  interleaved.reserve(m.n_cbps);
  for (std::size_t i = 0; i < points.size(); ++i) {
    con.demap_soft(points[i], gains[i], interleaved);
  }
  const SoftBits block = interleaver_for(m).deinterleave(interleaved);
  out.insert(out.end(), block.begin(), block.end());
}

Bits demap_symbol_hard(std::span<const Cx> points, const Mcs& m) {
  if (points.size() != kNumDataSubcarriers) {
    throw std::invalid_argument("demap_symbol_hard: need 48 points");
  }
  const Constellation& con = constellation(m.modulation);
  Bits interleaved;
  interleaved.reserve(m.n_cbps);
  for (const Cx& p : points) {
    const Bits bits = con.demap_hard(p);
    interleaved.insert(interleaved.end(), bits.begin(), bits.end());
  }
  return interleaver_for(m).deinterleave(std::span<const std::uint8_t>(
      interleaved.data(), interleaved.size()));
}

std::optional<Bytes> decode_data_bits(std::span<const double> soft,
                                      const Mcs& m, std::size_t psdu_len) {
  const SoftBits full = ConvolutionalCode::depuncture(soft, m.code_rate);
  const std::size_t needed_bits = 16 + 8 * psdu_len;
  if (full.size() / 2 < needed_bits) return std::nullopt;
  Bits decoded = viterbi().decode(full, /*terminated=*/false);

  Scrambler scrambler(kScramblerSeed);
  const Bits descrambled = scrambler.process(decoded);
  if (descrambled.size() < needed_bits) return std::nullopt;
  return bits_to_bytes(std::span<const std::uint8_t>(
      descrambled.data() + 16, 8 * psdu_len));
}

CxVec LegacyTransmitter::build(std::span<const std::uint8_t> psdu,
                               const Mcs& m) const {
  CxVec wave = preamble_waveform();

  const CxVec sig_points = encode_sig(SigInfo{mcs_index(m), psdu.size()});
  const CxVec sig_symbol = assemble_symbol(sig_points, /*symbol_index=*/0);
  wave.insert(wave.end(), sig_symbol.begin(), sig_symbol.end());

  const Bits data_bits = build_data_bits(psdu, m);
  const Bits coded = code_data_bits(data_bits, m);
  const std::vector<CxVec> symbols = modulate_coded(coded, m);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const CxVec sym = assemble_symbol(symbols[i], /*symbol_index=*/i + 1);
    wave.insert(wave.end(), sym.begin(), sym.end());
  }
  return wave;
}

Frontend receive_frontend(std::span<const Cx> waveform) {
  Frontend fe;
  if (waveform.size() < kPreambleLen) {
    // Length is checked up front so the STF/LTF estimators below always
    // see full spans; a short capture reports kTruncated instead of the
    // std::invalid_argument the estimators reserve for contract misuse.
    fe.status = DecodeStatus::kTruncated;
    return fe;
  }
  fe.corrected.assign(waveform.begin(), waveform.end());

  const double coarse =
      estimate_coarse_cfo(std::span<const Cx>(fe.corrected).first(kStfLen));
  apply_cfo_correction(fe.corrected, coarse);

  const double fine = estimate_fine_cfo(
      std::span<const Cx>(fe.corrected).subspan(kStfLen, kLtfLen));
  apply_cfo_correction(fe.corrected, fine);

  fe.cfo_radians_per_sample = coarse + fine;

  // Post-correction LTF repeat correlation: the two 64-sample FFT windows
  // are identical on the air, so |corr| / power ~ S/(S+N). Pure noise or a
  // grossly mistimed capture scores near zero — below the threshold there
  // is no preamble to estimate a channel from.
  const std::span<const Cx> ltf(fe.corrected.data() + kStfLen, kLtfLen);
  Cx corr{};
  double power = 0.0;
  for (std::size_t n = kLtfCpLen; n < kLtfCpLen + kFftSize; ++n) {
    corr += std::conj(ltf[n]) * ltf[n + kFftSize];
    power += 0.5 * (std::norm(ltf[n]) + std::norm(ltf[n + kFftSize]));
  }
  fe.sync_quality = power > 0.0 ? std::abs(corr) / power : 0.0;
  // Pure noise scores ~1/sqrt(64) ≈ 0.12 on this 64-lag statistic, so the
  // threshold sits well above the noise floor. 0.3 corresponds to roughly
  // -4 dB SNR — frames that weak cannot be decoded anyway.
  if (fe.sync_quality < 0.3) {
    fe.status = DecodeStatus::kSyncLost;
    return fe;
  }

  fe.h = estimate_channel_from_ltf(
      std::span<const Cx>(fe.corrected).subspan(kStfLen, kLtfLen));
  return fe;
}

LegacyRxResult LegacyReceiver::receive(std::span<const Cx> waveform) const {
  LegacyRxResult result;
  if (waveform.size() < kPreambleLen + kSymbolLen) {
    result.status = DecodeStatus::kTruncated;
    return result;
  }
  const Frontend fe = receive_frontend(waveform);
  if (!fe.ok()) {
    result.status = fe.status;
    return result;
  }
  const std::span<const Cx> wave(fe.corrected);

  // SIG.
  const CxVec sig_bins =
      extract_symbol(wave.subspan(fe.data_start, kSymbolLen));
  const SymbolEqualization sig_eq = equalize_symbol(sig_bins, fe.h, 0);
  const auto sig = decode_sig(sig_eq.data, sig_eq.gains);
  if (!sig) {
    result.status = DecodeStatus::kSigCorrupt;
    return result;
  }
  result.sig_ok = true;
  result.sig = *sig;

  const Mcs& m = mcs(sig->mcs_index);
  const std::size_t n_sym = num_data_symbols(m, sig->length_bytes);
  const std::size_t frame_end =
      fe.data_start + kSymbolLen + n_sym * kSymbolLen;
  if (waveform.size() < frame_end) {
    result.status = DecodeStatus::kTruncated;
    return result;
  }

  SoftBits soft;
  soft.reserve(n_sym * m.n_cbps);
  const CxVec all_bins =
      extract_symbols(wave.subspan(fe.data_start + kSymbolLen), n_sym);
  for (std::size_t i = 0; i < n_sym; ++i) {
    const std::span<const Cx> bins(all_bins.data() + i * kFftSize, kFftSize);
    const SymbolEqualization eq = equalize_symbol(bins, fe.h, i + 1);
    result.phase_offsets.push_back(eq.phase_offset);
    result.raw_symbol_bits.push_back(demap_symbol_hard(eq.data, m));
    demap_symbol_soft(eq.data, eq.gains, m, soft);
  }

  auto psdu = decode_data_bits(soft, m, sig->length_bytes);
  if (!psdu) {
    result.status = DecodeStatus::kFcsFail;
    return result;
  }
  result.decoded = true;
  result.psdu = std::move(*psdu);
  result.fcs_ok = check_fcs(result.psdu);
  if (!result.fcs_ok) result.status = DecodeStatus::kFcsFail;
  return result;
}

}  // namespace carpool
