#include "phy/preamble.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace carpool {
namespace {

constexpr std::size_t bin_of(int subcarrier) {
  return subcarrier >= 0 ? static_cast<std::size_t>(subcarrier)
                         : kFftSize - static_cast<std::size_t>(-subcarrier);
}

// LTF sequence on subcarriers -26..+26 (Clause 17.3.3).
constexpr std::array<int, 53> kLtfSeq{
    1, 1, -1, -1, 1,  1,  -1, 1,  -1, 1,  1,  1,  1,  1, 1, -1, -1, 1,
    1, -1, 1, -1, 1,  1,  1,  1,  0,  1,  -1, -1, 1,  1, -1, 1,  -1, 1,
    -1, -1, -1, -1, -1, 1,  1,  -1, -1, 1,  -1, 1,  -1, 1, 1,  1,  1};

// STF sequence on subcarriers -26..+26 before the sqrt(13/6) factor;
// entries are multiples of (1+j) (Clause 17.3.3).
constexpr std::array<int, 53> kStfSeq{
    0, 0, 1, 0, 0, 0, -1, 0, 0, 0, 1, 0, 0, 0, -1, 0, 0, 0, -1, 0, 0, 0,
    1, 0, 0, 0, 0,  0, 0, 0, -1, 0, 0, 0, -1, 0, 0, 0, 1, 0, 0, 0, 1, 0,
    0, 0, 1, 0, 0,  0, 1,  0, 0};

CxVec make_ltf_freq() {
  CxVec bins(kFftSize, Cx{});
  for (int sc = -26; sc <= 26; ++sc) {
    bins[bin_of(sc)] = Cx{static_cast<double>(kLtfSeq[sc + 26]), 0.0};
  }
  return bins;
}

CxVec make_stf_freq() {
  const double amp = std::sqrt(13.0 / 6.0);
  CxVec bins(kFftSize, Cx{});
  for (int sc = -26; sc <= 26; ++sc) {
    const double v = static_cast<double>(kStfSeq[sc + 26]);
    bins[bin_of(sc)] = Cx{v * amp, v * amp};
  }
  return bins;
}

const CxVec kLtfFreq = make_ltf_freq();
const CxVec kStfFreq = make_stf_freq();

// Unit-mean-power scaling (see ofdm.cpp): total bin power of the LTF is 52,
// of the STF is 12 * (13/6) * 2 = 26... times |1+j|^2 per occupied entry.
double bins_power(const CxVec& bins) {
  double p = 0.0;
  for (const Cx& b : bins) p += std::norm(b);
  return p;
}

}  // namespace

std::span<const Cx> ltf_freq() noexcept { return kLtfFreq; }

CxVec stf_waveform() {
  CxVec time = ifft(kStfFreq);
  const double gain =
      static_cast<double>(kFftSize) / std::sqrt(bins_power(kStfFreq));
  scale(time, gain);
  // Only bins that are multiples of 4 are occupied, so `time` is periodic
  // with period 16; tile the first period to 160 samples.
  CxVec out;
  out.reserve(kStfLen);
  for (std::size_t i = 0; i < kStfLen; ++i) out.push_back(time[i % 16]);
  return out;
}

CxVec ltf_waveform() {
  CxVec time = ifft(kLtfFreq);
  const double gain =
      static_cast<double>(kFftSize) / std::sqrt(bins_power(kLtfFreq));
  scale(time, gain);
  CxVec out;
  out.reserve(kLtfLen);
  out.insert(out.end(), time.end() - kLtfCpLen, time.end());
  out.insert(out.end(), time.begin(), time.end());
  out.insert(out.end(), time.begin(), time.end());
  return out;
}

CxVec preamble_waveform() {
  CxVec out = stf_waveform();
  const CxVec ltf = ltf_waveform();
  out.insert(out.end(), ltf.begin(), ltf.end());
  return out;
}

CxVec estimate_channel_from_ltf(std::span<const Cx> ltf_samples) {
  if (ltf_samples.size() != kLtfLen) {
    throw std::invalid_argument("estimate_channel_from_ltf: need 160 samples");
  }
  const double gain =
      static_cast<double>(kFftSize) / std::sqrt(bins_power(kLtfFreq));
  CxVec sym1(ltf_samples.begin() + kLtfCpLen,
             ltf_samples.begin() + kLtfCpLen + kFftSize);
  CxVec sym2(ltf_samples.begin() + kLtfCpLen + kFftSize, ltf_samples.end());
  fft_inplace(sym1);
  fft_inplace(sym2);
  CxVec h(kFftSize, Cx{});
  for (std::size_t k = 0; k < kFftSize; ++k) {
    if (kLtfFreq[k] == Cx{}) continue;
    const Cx avg = (sym1[k] + sym2[k]) / 2.0;
    // Undo the known sequence and the transmit gain. The LTF gain equals
    // the data-symbol scale (both have 52 unit-power bins), so this H
    // applies directly to extract_symbol() output.
    h[k] = avg / (kLtfFreq[k] * gain);
  }
  return h;
}

double estimate_coarse_cfo(std::span<const Cx> stf_samples) {
  if (stf_samples.size() != kStfLen) {
    throw std::invalid_argument("estimate_coarse_cfo: need 160 samples");
  }
  Cx acc{};
  // Skip the first short symbol (AGC settling in real receivers).
  for (std::size_t n = 16; n + 16 < kStfLen; ++n) {
    acc += std::conj(stf_samples[n]) * stf_samples[n + 16];
  }
  return std::arg(acc) / 16.0;
}

double estimate_fine_cfo(std::span<const Cx> ltf_samples) {
  if (ltf_samples.size() != kLtfLen) {
    throw std::invalid_argument("estimate_fine_cfo: need 160 samples");
  }
  Cx acc{};
  for (std::size_t n = kLtfCpLen; n < kLtfCpLen + kFftSize; ++n) {
    acc += std::conj(ltf_samples[n]) * ltf_samples[n + kFftSize];
  }
  return std::arg(acc) / static_cast<double>(kFftSize);
}

double apply_cfo_correction(std::span<Cx> samples, double radians_per_sample,
                            double start_phase) {
  double phase = start_phase;
  for (Cx& s : samples) {
    s *= cx_exp(-phase);
    phase += radians_per_sample;
  }
  return phase;
}

}  // namespace carpool
