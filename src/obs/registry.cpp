#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace carpool::obs {
namespace {

/// JSON-safe number: non-finite doubles have no JSON literal, map to null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void atomic_fetch_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_fetch_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds, std::string unit)
    : bounds_(std::move(upper_bounds)),
      unit_(std::move(unit)),
      buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be sorted ascending");
  }
}

void Histogram::record(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_fetch_min(min_, v);
  atomic_fetch_max(max_, v);
}

double Histogram::percentile(double p) const {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Histogram::percentile: p outside [0, 1]");
  }
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      p * static_cast<double>(n - 1) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += bucket_count(i);
    if (seen > rank) {
      return i < bounds_.size() ? bounds_[i] : max();
    }
  }
  return max();
}

void Histogram::merge_from(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument(
        "Histogram::merge_from: bucket bounds differ");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  const std::uint64_t n = other.count();
  if (n != 0) {
    count_.fetch_add(n, std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
    atomic_fetch_min(min_, other.min());
    atomic_fetch_max(max_, other.max());
  }
}

void Histogram::restore_add(const std::vector<std::uint64_t>& buckets,
                            std::uint64_t count, double sum, double min,
                            double max) {
  if (buckets.size() != buckets_.size()) {
    throw std::invalid_argument(
        "Histogram::restore_add: bucket count mismatch");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets[i] != 0) {
      buckets_[i].fetch_add(buckets[i], std::memory_order_relaxed);
    }
  }
  if (count != 0) {
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
    atomic_fetch_min(min_, min);
    atomic_fetch_max(max_, max);
  }
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

namespace {
/// Innermost ScopedCurrent override on this thread; null = use global().
thread_local Registry* t_current_registry = nullptr;
}  // namespace

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry& Registry::current() noexcept {
  return t_current_registry != nullptr ? *t_current_registry : global();
}

Registry::ScopedCurrent::ScopedCurrent(Registry& registry) noexcept
    : previous_(t_current_registry) {
  t_current_registry = &registry;
}

Registry::ScopedCurrent::~ScopedCurrent() {
  t_current_registry = previous_;
}

void Registry::attach_meta(std::string_view name) {
  if (meta_.find(name) != meta_.end()) return;
  if (const MetricMeta* meta = find_metric_meta(name); meta != nullptr) {
    meta_.emplace(std::string(name), meta);
  }
}

Counter& Registry::counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
    attach_meta(name);
  }
  return *it->second;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

Gauge& Registry::gauge(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
    attach_meta(name);
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds, std::string unit) {
  const std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(
                                             std::move(bounds),
                                             std::move(unit)))
             .first;
    attach_meta(name);
  }
  return *it->second;
}

Histogram& Registry::latency_histogram(std::string_view name) {
  // 250 ns .. 1 s in 1-2.5-5 decades: fine enough to separate a cache miss
  // from a Viterbi decode, coarse enough that every export stays small.
  static const std::vector<double> kLatencyBoundsNs{
      250.0, 500.0, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5,
      2.5e5, 5e5,   1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8, 1e9};
  return histogram(name, kLatencyBoundsNs, "ns");
}

void Registry::merge_from(const Registry& other) {
  if (&other == this) return;
  const std::scoped_lock lock(mutex_, other.mutex_);
  for (const auto& [name, c] : other.counters_) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(name, std::make_unique<Counter>()).first;
      attach_meta(name);
    }
    // Registration is carried over even at zero so a merged export has the
    // same key set as a serial run that executed the same call sites.
    const std::uint64_t v = c->value();
    if (v != 0) it->second->add(v);
  }
  for (const auto& [name, g] : other.gauges_) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
      attach_meta(name);
    }
    it->second->set(g->value());
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_
               .emplace(name, std::make_unique<Histogram>(h->bounds(),
                                                          h->unit()))
               .first;
      attach_meta(name);
    }
    it->second->merge_from(*h);
  }
}

const MetricMeta* Registry::metric_meta(std::string_view name) const {
  const std::scoped_lock lock(mutex_);
  const auto it = meta_.find(name);
  return it == meta_.end() ? nullptr : it->second;
}

MetricsSnapshot Registry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  const auto meta_for = [this](const std::string& name) -> const MetricMeta* {
    const auto it = meta_.find(name);
    return it == meta_.end() ? nullptr : it->second;
  };
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value(), meta_for(name)});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value(), meta_for(name)});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    const std::uint64_t n = h->count();
    MetricsSnapshot::HistogramRow& row = snap.histograms.emplace_back();
    row.name = name;
    row.unit = h->unit();
    row.count = n;
    row.sum = h->sum();
    row.mean = h->mean();
    row.min = n == 0 ? 0.0 : h->min();
    row.max = n == 0 ? 0.0 : h->max();
    row.p50 = h->percentile(0.5);
    row.p99 = h->percentile(0.99);
    row.meta = meta_for(name);
    row.bounds = h->bounds();
    row.buckets.reserve(row.bounds.size() + 1);
    for (std::size_t i = 0; i <= row.bounds.size(); ++i) {
      row.buckets.push_back(h->bucket_count(i));
    }
  }
  return snap;
}

void Registry::restore(const MetricsSnapshot& snap) {
  for (const auto& row : snap.counters) {
    // Register even zero-valued counters: key-set parity with the
    // snapshotted run keeps the fingerprint input and export schema
    // identical after a resume.
    Counter& c = counter(row.name);
    if (row.value != 0) c.add(row.value);
  }
  for (const auto& row : snap.gauges) {
    gauge(row.name).set(row.value);
  }
  for (const auto& row : snap.histograms) {
    histogram(row.name, row.bounds, row.unit)
        .restore_add(row.buckets, row.count, row.sum, row.min, row.max);
  }
}

std::uint64_t Registry::fingerprint() const {
  const std::scoped_lock lock(mutex_);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix_byte = [&h](std::uint8_t b) {
    h = (h ^ b) * 0x100000001b3ULL;  // FNV-1a prime
  };
  const auto mix_str = [&](std::string_view s) {
    for (const char c : s) mix_byte(static_cast<std::uint8_t>(c));
    mix_byte(0);  // terminator: "ab"+"c" must differ from "a"+"bc"
  };
  const auto mix_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  // "ops" metrics (retry/quarantine/checkpoint bookkeeping) count
  // wall-clock accidents, not simulation events: a retried shard or a
  // resumed campaign must fingerprint identically to a clean run.
  const auto is_ops = [this](const std::string& name) {
    const auto it = meta_.find(name);
    return it != meta_.end() && it->second->layer == std::string_view("ops");
  };
  for (const auto& [name, c] : counters_) {
    if (is_ops(name)) continue;
    mix_str(name);
    mix_u64(c->value());
  }
  for (const auto& [name, g] : gauges_) {
    if (is_ops(name)) continue;
    mix_str(name);
    double v = g->value();
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix_u64(bits);
  }
  return h;
}

std::string Registry::to_json(std::string_view bench) const {
  const std::scoped_lock lock(mutex_);
  std::ostringstream os;
  os << "{\n  \"schema_version\": 2";
  if (!bench.empty()) {
    os << ",\n  \"bench\": \"" << json_escape(bench) << '"';
  }
  os << ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << c->value();
    first = false;
  }
  os << (first ? "}" : "\n  }");
  os << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << json_number(g->value());
    first = false;
  }
  os << (first ? "}" : "\n  }");
  os << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": {";
    if (!h->unit().empty()) {
      os << "\"unit\": \"" << json_escape(h->unit()) << "\", ";
    }
    os << "\"count\": " << h->count() << ", \"sum\": "
       << json_number(h->sum()) << ", \"min\": " << json_number(h->min())
       << ", \"max\": " << json_number(h->max())
       << ", \"mean\": " << json_number(h->mean())
       << ", \"p50\": " << json_number(h->percentile(0.5))
       << ", \"p99\": " << json_number(h->percentile(0.99))
       << ", \"buckets\": [";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i <= bounds.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": "
         << (i < bounds.size() ? json_number(bounds[i])
                               : std::string("\"+Inf\""))
         << ", \"count\": " << h->bucket_count(i) << '}';
    }
    os << "]}";
    first = false;
  }
  os << (first ? "}" : "\n  }");
  // schema_version 2: per-metric unit / layer / description resolved from
  // the static catalog (metrics_meta.hpp). Uncataloged metrics (ad-hoc
  // test names) simply have no entry here.
  os << ",\n  \"meta\": {";
  first = true;
  for (const auto& [name, meta] : meta_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": {\"unit\": \"" << json_escape(meta->unit)
       << "\", \"layer\": \"" << json_escape(meta->layer)
       << "\", \"description\": \"" << json_escape(meta->description)
       << "\"}";
    first = false;
  }
  os << (first ? "}" : "\n  }");
  os << "\n}\n";
  return os.str();
}

std::string Registry::to_text() const {
  const std::scoped_lock lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " = " << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << name << " = " << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ": count=" << h->count() << " mean=" << h->mean()
       << " p50=" << h->percentile(0.5) << " p99=" << h->percentile(0.99)
       << " max=" << (h->count() ? h->max() : 0.0);
    if (!h->unit().empty()) os << ' ' << h->unit();
    os << '\n';
  }
  return os.str();
}

bool Registry::write_json(const std::string& path,
                          std::string_view bench) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json(bench);
  return static_cast<bool>(out);
}

void Registry::reset_values() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace carpool::obs
