#pragma once

// carpool::obs — RAII latency profiling hooks.
//
// OBS_SCOPED_TIMER("phy.equalize") records the enclosing scope's wall time
// (nanoseconds, steady clock) into a canonical latency histogram in the
// *current* registry (obs::Registry::current()): the thread's shard-local
// metric scope when the parallel sweep engine installed one, the global
// registry otherwise. The handle is resolved on scope entry — one
// mutex-guarded map lookup, uncontended for shard-local registries — which
// is cheap against the stages these timers wrap (Viterbi, FFT,
// equalization), but do not wrap single-digit-nanosecond code.
//
// The CMake option CARPOOL_ENABLE_PROFILING (default ON) compiles the
// hooks out entirely when OFF (it defines CARPOOL_PROFILING_ENABLED=0).

#include <chrono>

#include "obs/registry.hpp"
#include "obs/span.hpp"

#ifndef CARPOOL_PROFILING_ENABLED
#define CARPOOL_PROFILING_ENABLED 1
#endif

namespace carpool::obs {

/// True when OBS_SCOPED_TIMER call sites are compiled into this binary.
constexpr bool profiling_compiled_in() noexcept {
  return CARPOOL_PROFILING_ENABLED != 0;
}

/// Records elapsed nanoseconds into `hist` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) noexcept
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_.record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

 private:
  Histogram& hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace carpool::obs

#define OBS_CONCAT_INNER(a, b) a##b
#define OBS_CONCAT(a, b) OBS_CONCAT_INNER(a, b)

#if CARPOOL_PROFILING_ENABLED
#define OBS_SCOPED_TIMER(name)                                           \
  const ::carpool::obs::ScopedTimer OBS_CONCAT(obs_scoped_timer_,        \
                                               __LINE__)(               \
      ::carpool::obs::Registry::current().latency_histogram(name))
#else
#define OBS_SCOPED_TIMER(name) static_cast<void>(0)
#endif

/// Scoped timer plus a leaf span: the stage's wall time lands in its
/// latency histogram as before, and — when tracing is compiled in and a
/// SpanCollector is installed — the same interval attaches to the
/// innermost open span (e.g. fec.viterbi_decode under carpool.rx_subframe)
/// so per-stage time is visible inside one frame's Perfetto timeline, not
/// just as an aggregate histogram. With tracing off the Span half costs
/// one null check the optimizer deletes.
#define OBS_TIMED_SPAN(name)       \
  OBS_SCOPED_TIMER(name);          \
  const ::carpool::obs::Span OBS_CONCAT(obs_timed_span_, __LINE__)(name)
