#include "obs/stats_writer.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string_view>

namespace carpool::obs {
namespace {

/// RFC-4180 quoting: wrap in quotes when the cell contains a comma,
/// quote, or newline; double embedded quotes.
void append_cell(std::string& out, std::string_view s) {
  if (s.find_first_of(",\"\n") == std::string_view::npos) {
    out += s;
    return;
  }
  out += '"';
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

void append_num(std::string& out, double v) {
  if (!std::isfinite(v)) return;  // empty cell
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string StatsWriter::to_csv(const MetricsSnapshot& snap) {
  std::string out =
      "metric,type,layer,unit,value,count,sum,mean,min,max,p50,p99,"
      "description\n";
  const auto meta_cells = [&out](const MetricMeta* meta,
                                 std::string_view fallback_unit) {
    append_cell(out, meta != nullptr ? meta->layer : std::string_view{});
    out += ',';
    append_cell(out, meta != nullptr ? meta->unit : fallback_unit);
    out += ',';
  };
  const auto description_cell = [&out](const MetricMeta* meta) {
    append_cell(out, meta != nullptr ? meta->description
                                     : std::string_view{});
    out += '\n';
  };
  for (const auto& c : snap.counters) {
    append_cell(out, c.name);
    out += ",counter,";
    meta_cells(c.meta, "count");
    out += std::to_string(c.value);
    out += ",,,,,,,,";  // count..p99 empty for scalars
    description_cell(c.meta);
  }
  for (const auto& g : snap.gauges) {
    append_cell(out, g.name);
    out += ",gauge,";
    meta_cells(g.meta, {});
    append_num(out, g.value);
    out += ",,,,,,,,";
    description_cell(g.meta);
  }
  for (const auto& h : snap.histograms) {
    append_cell(out, h.name);
    out += ",histogram,";
    meta_cells(h.meta, h.unit);
    out += ',';  // value empty for distributions
    out += std::to_string(h.count);
    out += ',';
    append_num(out, h.sum);
    out += ',';
    append_num(out, h.mean);
    out += ',';
    append_num(out, h.min);
    out += ',';
    append_num(out, h.max);
    out += ',';
    append_num(out, h.p50);
    out += ',';
    append_num(out, h.p99);
    out += ',';
    description_cell(h.meta);
  }
  return out;
}

bool StatsWriter::write_csv(const std::string& path,
                            const Registry& registry) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_csv(registry.snapshot());
  return static_cast<bool>(out);
}

}  // namespace carpool::obs
