#pragma once

// carpool::obs — causal, cross-layer frame-lifecycle spans.
//
// A Span is one timed, named interval in the frame lifecycle with a
// parent link, so a whole TXOP reassembles into a tree:
//
//   mac.txop                       (sim time, per resolved channel event)
//     mac.frame                    (the aggregate PHY frame on air)
//       mac.subframe               (one receiver's slice, ACK outcome)
//     carpool.rx_frame             (a real decode probe, wall time)
//       carpool.rx_subframe        (per-subframe DecodeStatus)
//         fec.viterbi_decode       (leaf: OBS_TIMED_SPAN hot-path site)
//
// Spans are collected into the thread's ambient SpanCollector
// (SpanCollector::current(), installed RAII-style like
// obs::Registry::ScopedCurrent). Instrumentation sites construct a Span
// unconditionally; when no collector is installed — or the binary was
// built with CARPOOL_ENABLE_TRACE=OFF, which makes current() a
// compile-time nullptr — every operation is a no-op the optimizer
// removes, so the default build pays nothing.
//
// Determinism contract (docs/PARALLELISM.md): span ids are allocated
// per-collector starting at 1, the parallel sweep engine gives each
// shard its own collector, and merge_from() remaps ids by offset while
// appending records in job-index order — so the merged record sequence
// is bit-identical to a serial run at any thread count. Wall-clock
// fields (wall_start_ns / wall_ns) are excluded from fingerprint(); the
// sim-time fields, ids, names, and outcomes are all deterministic.
//
// Exporters: write_jsonl() streams one `"type":"span"` object per line
// into the existing TraceSink, and obs::ChromeTraceWriter
// (chrome_trace.hpp) converts records into a Chrome trace-event file
// that opens directly in Perfetto / chrome://tracing.

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace carpool::obs {

/// Frame-lifecycle coordinates a span carries. -1 = not applicable.
struct SpanIds {
  std::int64_t txop = -1;      ///< resolved-channel-event ordinal
  std::int64_t frame = -1;     ///< aggregate PHY frame ordinal
  std::int64_t subframe = -1;  ///< subframe index within the frame
  std::int64_t sta = -1;       ///< receiver STA (0 = AP)
};

/// One completed span. Either a sim-time interval (sim_start >= 0,
/// seconds on the simulated timeline) or a wall-time leaf
/// (wall_start_ns/wall_ns, steady-clock ns relative to the collector's
/// epoch) — never both, so exports and fingerprints know which timeline
/// a record lives on.
struct SpanRecord {
  std::uint64_t id = 0;      ///< unique within a collector, > 0
  std::uint64_t parent = 0;  ///< 0 = root
  std::string name;
  SpanIds ids;
  double sim_start = -1.0;
  double sim_duration = 0.0;
  std::uint64_t wall_start_ns = 0;
  std::uint64_t wall_ns = 0;
  std::string outcome;  ///< "" | "ok" | "collision" | DecodeStatus name...

  [[nodiscard]] bool on_sim_timeline() const noexcept {
    return sim_start >= 0.0;
  }
};

/// Buffer of completed spans plus the open-span stack for one thread.
/// A collector is single-threaded by construction: each parallel shard
/// gets its own (carpool::par installs it alongside the shard registry),
/// and shards merge index-ordered afterwards.
class SpanCollector {
 public:
  /// `max_records` caps the buffer; past it spans are dropped (counted
  /// in dropped() and the `obs.spans_dropped` registry counter) so a
  /// long soak cannot grow memory without bound. 0 = unbounded.
  explicit SpanCollector(std::size_t max_records = kDefaultMaxRecords)
      : max_records_(max_records) {}

  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  static constexpr std::size_t kDefaultMaxRecords = 1u << 20;

  /// The collector instrumentation writes to on this thread, or nullptr
  /// when none is installed. With CARPOOL_ENABLE_TRACE=OFF this is a
  /// compile-time nullptr, which is what deletes every span call site
  /// from the default build.
  [[nodiscard]] static SpanCollector* current() noexcept {
#if CARPOOL_TRACE_ENABLED
    return current_impl();
#else
    return nullptr;
#endif
  }

  /// RAII thread-local install, mirroring Registry::ScopedCurrent.
  class ScopedCurrent {
   public:
    explicit ScopedCurrent(SpanCollector& collector) noexcept;
    ~ScopedCurrent();
    ScopedCurrent(const ScopedCurrent&) = delete;
    ScopedCurrent& operator=(const ScopedCurrent&) = delete;

   private:
    SpanCollector* previous_;
  };

  /// Emit a completed span directly (non-RAII call sites that know the
  /// whole interval up front, e.g. per-subframe MAC slices). Returns the
  /// record's id, or 0 if the record was dropped at the cap.
  std::uint64_t emit(SpanRecord record);

  /// Id of the innermost open Span on this collector, 0 when none —
  /// what a new span or emit() call parents itself to.
  [[nodiscard]] std::uint64_t open_span() const noexcept {
    return stack_.empty() ? 0 : stack_.back();
  }

  [[nodiscard]] const std::vector<SpanRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Ids handed out so far (the merge/remap watermark). Campaign
  /// checkpoints persist this so a resumed run allocates ids past the
  /// interrupted run's — keeping merged id sequences identical to an
  /// uninterrupted campaign (docs/FAULT_TOLERANCE.md).
  [[nodiscard]] std::uint64_t allocated() const noexcept {
    return allocated_;
  }
  /// Fast-forward the id watermark to at least `watermark` (checkpoint
  /// resume). Never rewinds — ids stay unique within the collector.
  void restore_allocated(std::uint64_t watermark) noexcept {
    allocated_ = std::max(allocated_, watermark);
  }

  /// Append another collector's records, remapping its ids past this
  /// collector's allocation watermark so parent/child links stay intact
  /// and ids stay unique. Callers merge shards in job-index order; the
  /// result is then bit-identical to a serial run's record sequence.
  void merge_from(const SpanCollector& other);

  /// Order-stable FNV-1a digest over the deterministic span surface:
  /// record order, ids, parents, names, frame-lifecycle coordinates,
  /// sim intervals, and outcomes. Wall-clock fields are excluded — two
  /// runs of a deterministic workload must produce equal fingerprints
  /// at any thread count.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Stream every record into `sink` as one `"type":"span"` JSONL
  /// object per line (schema in docs/OBSERVABILITY.md).
  void write_jsonl(TraceSink& sink) const;

  void clear();

 private:
  friend class Span;
  [[nodiscard]] static SpanCollector* current_impl() noexcept;

  std::uint64_t alloc_id() noexcept { return ++allocated_; }
  void push_open(std::uint64_t id) { stack_.push_back(id); }
  void pop_open(std::uint64_t id);

  std::size_t max_records_;
  std::uint64_t allocated_ = 0;  ///< ids handed out so far
  std::uint64_t dropped_ = 0;
  std::vector<SpanRecord> records_;
  std::vector<std::uint64_t> stack_;  ///< open span ids, innermost last
};

/// RAII span: opens against the ambient collector on construction
/// (parenting itself to the innermost open span on this thread) and
/// appends its record on destruction. When no collector is installed —
/// or tracing is compiled out — construction is a no-op.
class Span {
 public:
  explicit Span(std::string_view name) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// Place the span on the simulated timeline instead of recording wall
  /// time (seconds; MAC-layer spans use this).
  Span& sim_interval(double start, double duration) noexcept;
  Span& ids(const SpanIds& ids) noexcept;
  Span& outcome(std::string_view outcome);

  /// 0 when inactive (no collector / tracing off).
  [[nodiscard]] std::uint64_t id() const noexcept {
    return collector_ == nullptr ? 0 : record_.id;
  }
  [[nodiscard]] bool active() const noexcept { return collector_ != nullptr; }

 private:
  SpanCollector* collector_;  ///< null = inert span
  SpanRecord record_;
  std::uint64_t start_ns_ = 0;
  bool has_sim_interval_ = false;
};

}  // namespace carpool::obs
