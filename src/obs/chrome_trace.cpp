#include "obs/chrome_trace.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace carpool::obs {
namespace {

constexpr int kPid = 1;
constexpr int kTidSim = 1;
constexpr int kTidWall = 2;
/// Breathing room between re-based wall-clock roots (µs).
constexpr double kRootGapUs = 10.0;

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

void append_args(std::string& out, const SpanRecord& r) {
  out += "\"args\":{\"span\":" + std::to_string(r.id) +
         ",\"parent\":" + std::to_string(r.parent);
  if (r.ids.txop >= 0) out += ",\"txop\":" + std::to_string(r.ids.txop);
  if (r.ids.frame >= 0) out += ",\"frame\":" + std::to_string(r.ids.frame);
  if (r.ids.subframe >= 0) {
    out += ",\"subframe\":" + std::to_string(r.ids.subframe);
  }
  if (r.ids.sta >= 0) out += ",\"sta\":" + std::to_string(r.ids.sta);
  if (!r.outcome.empty()) {
    out += ",\"outcome\":\"";
    append_escaped(out, r.outcome);
    out += '"';
  }
  out += '}';
}

void append_complete_event(std::string& out, const SpanRecord& r, int tid,
                           double ts_us, double dur_us) {
  out += "{\"name\":\"";
  append_escaped(out, r.name);
  out += "\",\"ph\":\"X\",\"pid\":" + std::to_string(kPid) +
         ",\"tid\":" + std::to_string(tid) + ",\"ts\":" + num(ts_us) +
         ",\"dur\":" + num(dur_us) + ",";
  append_args(out, r);
  out += '}';
}

void append_flow_event(std::string& out, char ph, std::uint64_t flow_id,
                       int tid, double ts_us) {
  out += "{\"name\":\"decode\",\"cat\":\"causal\",\"ph\":\"";
  out += ph;
  if (ph == 'f') out += "\",\"bp\":\"e";
  out += "\",\"id\":" + std::to_string(flow_id) +
         ",\"pid\":" + std::to_string(kPid) +
         ",\"tid\":" + std::to_string(tid) + ",\"ts\":" + num(ts_us) + '}';
}

void append_thread_name(std::string& out, int tid, std::string_view name) {
  out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(kPid) + ",\"tid\":" + std::to_string(tid) +
         ",\"args\":{\"name\":\"";
  append_escaped(out, name);
  out += "\"}}";
}

}  // namespace

std::string ChromeTraceWriter::to_json(
    const std::vector<SpanRecord>& records) {
  std::unordered_map<std::uint64_t, const SpanRecord*> by_id;
  by_id.reserve(records.size());
  for (const SpanRecord& r : records) by_id.emplace(r.id, &r);

  // Find each wall-clock record's wall root: the topmost ancestor that is
  // itself on the wall clock. RAII order appends children before parents,
  // so the chain may pass through ids not yet "placed" — this walk only
  // needs the static parent links.
  const auto wall_root_of = [&](const SpanRecord& r) -> const SpanRecord* {
    const SpanRecord* cur = &r;
    while (cur->parent != 0) {
      const auto it = by_id.find(cur->parent);
      if (it == by_id.end() || it->second->on_sim_timeline()) break;
      cur = it->second;
    }
    return cur;
  };

  // Assign each wall root a cursor slot in first-appearance order (the
  // first appearance is usually a leaf of that root, which preserves
  // causal ordering across roots).
  std::unordered_map<std::uint64_t, double> root_ts_us;
  std::vector<const SpanRecord*> roots_in_order;
  for (const SpanRecord& r : records) {
    if (r.on_sim_timeline()) continue;
    const SpanRecord* root = wall_root_of(r);
    if (root_ts_us.find(root->id) == root_ts_us.end()) {
      root_ts_us.emplace(root->id, 0.0);  // placeholder, cursor pass below
      roots_in_order.push_back(root);
    }
  }
  double cursor_us = 0.0;
  for (const SpanRecord* root : roots_in_order) {
    root_ts_us[root->id] = cursor_us;
    cursor_us += static_cast<double>(root->wall_ns) / 1e3 + kRootGapUs;
  }

  std::string out;
  out.reserve(256 + records.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  append_thread_name(out, kTidSim, "MAC (sim time)");
  out += ",\n";
  append_thread_name(out, kTidWall, "PHY decode (wall)");

  std::uint64_t next_flow = 1;
  for (const SpanRecord& r : records) {
    out += ",\n";
    if (r.on_sim_timeline()) {
      append_complete_event(out, r, kTidSim, r.sim_start * 1e6,
                            r.sim_duration * 1e6);
      continue;
    }
    const SpanRecord* root = wall_root_of(r);
    const double base_us = root_ts_us[root->id];
    const double offset_us =
        static_cast<double>(r.wall_start_ns - root->wall_start_ns) / 1e3;
    const double ts_us = base_us + offset_us;
    append_complete_event(out, r, kTidWall, ts_us,
                          static_cast<double>(r.wall_ns) / 1e3);
    // Arrow from the causing sim-time span to this wall-clock root.
    if (&r == root && r.parent != 0) {
      const auto it = by_id.find(r.parent);
      if (it != by_id.end() && it->second->on_sim_timeline()) {
        const std::uint64_t flow = next_flow++;
        out += ",\n";
        append_flow_event(out, 's', flow, kTidSim,
                          it->second->sim_start * 1e6);
        out += ",\n";
        append_flow_event(out, 'f', flow, kTidWall, ts_us);
      }
    }
  }
  out += "\n]}\n";
  return out;
}

bool ChromeTraceWriter::write(const std::string& path,
                              const std::vector<SpanRecord>& records) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json(records);
  return static_cast<bool>(out);
}

}  // namespace carpool::obs
