#pragma once

// carpool::obs — structured JSONL event tracing.
//
// A TraceSink appends one JSON object per line, either to a file or to an
// in-memory buffer (tests). Events are built with a fluent TraceEvent that
// commits on destruction, so a call site reads:
//
//   OBS_TRACE(sink, obs_ts.event("mac.collision").f("t", now).f("n", k));
//
// Emission call sites are compiled in only when the CMake option
// CARPOOL_ENABLE_TRACE is ON (it defines CARPOOL_TRACE_ENABLED=1); with
// the gate off OBS_TRACE expands to a no-op and the event-building code
// vanishes from the binary. The TraceSink type itself always exists so
// configs carrying a sink pointer compile under both settings.

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>

#ifndef CARPOOL_TRACE_ENABLED
#define CARPOOL_TRACE_ENABLED 0
#endif

namespace carpool::obs {

/// True when OBS_TRACE call sites are compiled into this binary.
constexpr bool trace_compiled_in() noexcept {
  return CARPOOL_TRACE_ENABLED != 0;
}

class TraceSink;

/// One JSONL event under construction; writes itself to the sink when it
/// goes out of scope. Move-only, meant to live for a single statement.
class TraceEvent {
 public:
  TraceEvent(TraceSink& sink, std::string_view type);
  TraceEvent(const TraceEvent&) = delete;
  TraceEvent& operator=(const TraceEvent&) = delete;
  TraceEvent(TraceEvent&& other) noexcept;
  TraceEvent& operator=(TraceEvent&&) = delete;
  ~TraceEvent();

  TraceEvent& f(std::string_view key, double v);
  TraceEvent& f(std::string_view key, std::uint64_t v);
  TraceEvent& f(std::string_view key, std::int64_t v);
  TraceEvent& f(std::string_view key, int v) {
    return f(key, static_cast<std::int64_t>(v));
  }
  TraceEvent& f(std::string_view key, unsigned v) {
    return f(key, static_cast<std::uint64_t>(v));
  }
  TraceEvent& f(std::string_view key, bool v);
  TraceEvent& f(std::string_view key, std::string_view v);
  TraceEvent& f(std::string_view key, const char* v) {
    return f(key, std::string_view(v));
  }

 private:
  TraceSink* sink_;  ///< null after move-from
  std::string buf_;
};

/// Thread-safe JSONL writer. File mode truncates the target on open
/// unless Options::append is set.
class TraceSink {
 public:
  struct Options {
    /// File mode: append to an existing trace instead of truncating, so
    /// a nightly soak can accumulate across invocations.
    bool append = false;
    /// Maximum events to write; past the cap events are silently dropped
    /// and counted in dropped() plus the `obs.trace_dropped` registry
    /// counter, so an unattended soak cannot fill the disk. 0 = no cap.
    std::uint64_t max_events = 0;
  };

  /// In-memory sink; lines are retrievable via str().
  TraceSink();
  explicit TraceSink(Options options);
  /// File sink. Throws std::runtime_error if the file cannot be opened.
  explicit TraceSink(const std::string& path);
  TraceSink(const std::string& path, Options options);

  [[nodiscard]] TraceEvent event(std::string_view type) {
    return TraceEvent(*this, type);
  }

  [[nodiscard]] std::uint64_t events_written() const noexcept {
    return events_.load(std::memory_order_relaxed);
  }

  /// Events refused because events_written() hit Options::max_events.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  void flush();

  /// In-memory mode only: every line written so far.
  [[nodiscard]] std::string str() const;

 private:
  friend class TraceEvent;
  void write_line(std::string_view line);

  mutable std::mutex mutex_;
  std::ofstream file_;
  bool to_file_ = false;
  Options options_;
  std::string buffer_;
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace carpool::obs

#if CARPOOL_TRACE_ENABLED
/// Emit a trace event iff `sink` (a TraceSink*) is non-null. Inside `stmt`
/// the sink is available by reference as `obs_ts`.
#define OBS_TRACE(sink, stmt)                   \
  do {                                          \
    if ((sink) != nullptr) {                    \
      ::carpool::obs::TraceSink& obs_ts = *(sink); \
      stmt;                                     \
    }                                           \
  } while (0)
#else
// Gate off: the statement is still type-checked (so both configurations
// stay compilable and trace-only variables count as used) but sits behind
// a constant-false branch the optimizer deletes — no events are ever
// written and release binaries carry no emission code.
#define OBS_TRACE(sink, stmt)                      \
  do {                                             \
    if (false) {                                   \
      ::carpool::obs::TraceSink& obs_ts = *(sink); \
      stmt;                                        \
    }                                              \
  } while (0)
#endif
