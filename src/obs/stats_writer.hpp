#pragma once

// carpool::obs — columnar CSV export of a metrics registry.
//
// One row per metric, uniform columns, in the spirit of DNNsim's
// Statistics/StatsWriter layer: every bench and soak run can drop a
// spreadsheet-ready CSV next to its BENCH_*.json without the consumer
// writing a JSON flattener. Columns:
//
//   metric,type,layer,unit,value,count,sum,mean,min,max,p50,p99,description
//
// Counters fill `value` (and type "counter"), gauges fill `value`
// (type "gauge"), histograms fill the distribution columns (type
// "histogram"). `layer`, `unit`, and `description` come from the
// schema_version-2 metadata catalog (metrics_meta.hpp); uncataloged
// metrics leave them blank (histograms fall back to their own unit).

#include <string>

#include "obs/registry.hpp"

namespace carpool::obs {

class StatsWriter {
 public:
  /// Render `snap` as a CSV document (header + one row per metric).
  [[nodiscard]] static std::string to_csv(const MetricsSnapshot& snap);

  /// snapshot() + to_csv() to a file; false if the file cannot be written.
  static bool write_csv(const std::string& path, const Registry& registry);
};

}  // namespace carpool::obs
