#include "obs/span.hpp"

#include <algorithm>
#include <chrono>

#include "obs/registry.hpp"

namespace carpool::obs {
namespace {

thread_local SpanCollector* t_current_collector = nullptr;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_str(std::uint64_t& h, std::string_view s) noexcept {
  fnv_bytes(h, s.data(), s.size());
  h ^= 0xFFu;  // length terminator so "ab","c" != "a","bc"
  h *= kFnvPrime;
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) noexcept {
  fnv_bytes(h, &v, sizeof(v));
}

void fnv_i64(std::uint64_t& h, std::int64_t v) noexcept {
  fnv_bytes(h, &v, sizeof(v));
}

void fnv_f64(std::uint64_t& h, double v) noexcept {
  // Hash the IEEE bit pattern; +0.0 and -0.0 differ, which is fine for a
  // determinism canary (a deterministic workload reproduces the sign too).
  fnv_bytes(h, &v, sizeof(v));
}

}  // namespace

SpanCollector::ScopedCurrent::ScopedCurrent(SpanCollector& collector) noexcept
    : previous_(t_current_collector) {
  t_current_collector = &collector;
}

SpanCollector::ScopedCurrent::~ScopedCurrent() {
  t_current_collector = previous_;
}

SpanCollector* SpanCollector::current_impl() noexcept {
  return t_current_collector;
}

std::uint64_t SpanCollector::emit(SpanRecord record) {
  if (max_records_ != 0 && records_.size() >= max_records_) {
    ++dropped_;
    Registry::current().counter("obs.spans_dropped").add();
    return 0;
  }
  if (record.id == 0) record.id = alloc_id();
  if (record.parent == 0) record.parent = open_span();
  const std::uint64_t id = record.id;
  records_.push_back(std::move(record));
  return id;
}

void SpanCollector::pop_open(std::uint64_t id) {
  // Spans are scoped objects, so destruction order normally makes this the
  // innermost entry; erase by value anyway so a moved/reordered span cannot
  // corrupt the stack.
  const auto it = std::find(stack_.rbegin(), stack_.rend(), id);
  if (it != stack_.rend()) stack_.erase(std::next(it).base());
}

void SpanCollector::merge_from(const SpanCollector& other) {
  if (&other == this) return;
  // Remap the other collector's ids past this one's allocation watermark.
  // Ids are dense per collector (alloc_id starts at 1), so offsetting by
  // the watermark keeps ids unique and preserves every parent link; merging
  // shards in job-index order then reproduces the serial id sequence.
  const std::uint64_t offset = allocated_;
  records_.reserve(records_.size() + other.records_.size());
  for (const SpanRecord& r : other.records_) {
    if (max_records_ != 0 && records_.size() >= max_records_) {
      ++dropped_;
      Registry::current().counter("obs.spans_dropped").add();
      continue;
    }
    SpanRecord copy = r;
    copy.id += offset;
    if (copy.parent != 0) copy.parent += offset;
    records_.push_back(std::move(copy));
  }
  allocated_ += other.allocated_;
  dropped_ += other.dropped_;
}

std::uint64_t SpanCollector::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  for (const SpanRecord& r : records_) {
    fnv_u64(h, r.id);
    fnv_u64(h, r.parent);
    fnv_str(h, r.name);
    fnv_i64(h, r.ids.txop);
    fnv_i64(h, r.ids.frame);
    fnv_i64(h, r.ids.subframe);
    fnv_i64(h, r.ids.sta);
    fnv_f64(h, r.sim_start);
    fnv_f64(h, r.sim_duration);
    // wall_start_ns / wall_ns deliberately excluded: wall clock varies run
    // to run, and the fingerprint must match at any thread count.
    fnv_str(h, r.outcome);
  }
  return h;
}

void SpanCollector::write_jsonl(TraceSink& sink) const {
  for (const SpanRecord& r : records_) {
    TraceEvent ev = sink.event("span");
    ev.f("id", r.id).f("parent", r.parent).f("name", r.name);
    if (r.ids.txop >= 0) ev.f("txop", r.ids.txop);
    if (r.ids.frame >= 0) ev.f("frame", r.ids.frame);
    if (r.ids.subframe >= 0) ev.f("subframe", r.ids.subframe);
    if (r.ids.sta >= 0) ev.f("sta", r.ids.sta);
    if (r.on_sim_timeline()) {
      ev.f("sim_start", r.sim_start).f("sim_duration", r.sim_duration);
    } else {
      ev.f("wall_start_ns", r.wall_start_ns).f("wall_ns", r.wall_ns);
    }
    if (!r.outcome.empty()) ev.f("outcome", r.outcome);
  }
}

void SpanCollector::clear() {
  records_.clear();
  stack_.clear();
  allocated_ = 0;
  dropped_ = 0;
}

Span::Span(std::string_view name) noexcept : collector_(SpanCollector::current()) {
  if (collector_ == nullptr) return;
  record_.id = collector_->alloc_id();
  record_.parent = collector_->open_span();
  record_.name = name;
  collector_->push_open(record_.id);
  start_ns_ = now_ns();
}

Span::~Span() {
  if (collector_ == nullptr) return;
  collector_->pop_open(record_.id);
  if (has_sim_interval_) {
    // Sim-time spans stay off the wall clock entirely so fingerprinted
    // output is reproducible.
    record_.wall_start_ns = 0;
    record_.wall_ns = 0;
  } else {
    record_.wall_start_ns = start_ns_;
    record_.wall_ns = now_ns() - start_ns_;
  }
  collector_->emit(std::move(record_));
}

Span& Span::sim_interval(double start, double duration) noexcept {
  if (collector_ != nullptr) {
    record_.sim_start = start;
    record_.sim_duration = duration;
    has_sim_interval_ = true;
  }
  return *this;
}

Span& Span::ids(const SpanIds& ids) noexcept {
  if (collector_ != nullptr) record_.ids = ids;
  return *this;
}

Span& Span::outcome(std::string_view outcome) {
  if (collector_ != nullptr) record_.outcome = outcome;
  return *this;
}

}  // namespace carpool::obs
