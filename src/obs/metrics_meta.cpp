#include "obs/metrics_meta.hpp"

#include <array>

namespace carpool::obs {
namespace {

struct CatalogEntry {
  std::string_view name;  ///< exact name, or a `prefix*` family
  MetricMeta meta;
};

// Keep this list in sync with every counter()/gauge()/latency_histogram()
// name literal in src/, bench/, and tools/ — tools/metric_lint enforces
// the sync as a CI step.
constexpr std::array kCatalog{
    // --- mac: per-STA link-state machine (src/mac/link_state.cpp) ---
    CatalogEntry{"mac.ls_transition",
                 {"count", "mac", "Link-state machine state transitions"}},
    CatalogEntry{"mac.ls_rate_up",
                 {"count", "mac", "Rate-adaptation steps to a faster MCS"}},
    CatalogEntry{"mac.ls_rate_down",
                 {"count", "mac", "Rate-adaptation steps to a slower MCS"}},
    CatalogEntry{"mac.lq_suspend",
                 {"count", "mac",
                  "STAs suspended from aggregation by the link gate"}},
    CatalogEntry{"mac.lq_probe",
                 {"count", "mac",
                  "Probe transmissions to suspended STAs"}},

    // --- impair: channel impairment engine (src/impair) ---
    CatalogEntry{"impair.frames",
                 {"count", "impair", "Frames passed through the impairment "
                                     "pipeline"}},
    CatalogEntry{"impair.ge_bad_periods",
                 {"count", "impair",
                  "Gilbert-Elliott bad-state periods entered"}},
    CatalogEntry{"impair.trace_gated_frames",
                 {"count", "impair",
                  "Frames gated by a replayed SNR trace segment"}},
    CatalogEntry{"impair.snr_offset_frames",
                 {"count", "impair",
                  "Frames scaled by a recorded-channel SNR offset"}},

    // --- phy: frontend, estimation, decode (src/phy, src/carpool) ---
    CatalogEntry{"phy.subframes_decoded",
                 {"count", "phy", "Subframes that reached FCS judgement"}},
    CatalogEntry{"phy.fcs_failures",
                 {"count", "phy", "Subframes whose FCS check failed"}},
    CatalogEntry{"phy.sig_failures",
                 {"count", "phy", "SIG field decode failures"}},
    CatalogEntry{"phy.decode_exceptions",
                 {"count", "phy",
                  "Receiver exceptions mapped to kInternalError"}},
    CatalogEntry{"phy.rte_updates",
                 {"count", "phy",
                  "Real-time channel-estimate updates applied"}},
    CatalogEntry{"phy.rte_delta_clamped",
                 {"count", "phy",
                  "RTE updates clamped by the per-symbol delta bound"}},
    CatalogEntry{"phy.rte_freeze",
                 {"count", "phy",
                  "RTE freezes after a divergence guard trip"}},
    CatalogEntry{"phy.rte_rollback",
                 {"count", "phy",
                  "RTE rollbacks to the preamble estimate"}},

    // --- carpool: A-HDR + side channel (src/carpool) ---
    CatalogEntry{"carpool.side_groups_verified",
                 {"count", "carpool",
                  "Side-channel groups that verified clean"}},
    CatalogEntry{"carpool.side_groups_failed",
                 {"count", "carpool",
                  "Side-channel groups that failed verification"}},

    // --- mac/sim: multi-BSS topology engine (src/sim) ---
    CatalogEntry{"mac.roam_handover",
                 {"count", "mac",
                  "STA handovers between APs on the association timeline"}},
    CatalogEntry{"sim.bss_epochs",
                 {"count", "sim",
                  "Epoch slices a multi-BSS campaign was cut into"}},
    CatalogEntry{"sim.bss_domains",
                 {"count", "sim",
                  "Per-(epoch, AP) collision domains simulated"}},
    CatalogEntry{"sim.bss_domains_idle",
                 {"count", "sim",
                  "Per-(epoch, AP) domains skipped with no associated "
                  "STA"}},
    CatalogEntry{"sim.bss_domain_runs",
                 {"count", "sim",
                  "Per-domain simulator runs inside soak episodes"}},
    CatalogEntry{"sim.bss_ap_count",
                 {"count", "sim", "Access points in the active topology"}},
    CatalogEntry{"sim.bss_cochannel_pairs",
                 {"count", "sim",
                  "AP pairs sharing a channel in the reuse plan"}},

    // --- chaos: soak engine (src/chaos) ---
    CatalogEntry{"chaos.campaigns",
                 {"count", "chaos", "Soak campaigns started"}},
    CatalogEntry{"chaos.probes",
                 {"count", "chaos", "Full-PHY decode probes fired"}},
    CatalogEntry{"chaos.frames_judged",
                 {"count", "chaos", "Frames judged across all campaigns"}},
    CatalogEntry{"chaos.violations",
                 {"count", "chaos", "Invariant violations detected"}},
    CatalogEntry{"chaos.bundles_written",
                 {"count", "chaos", "Repro bundles written to disk"}},
    CatalogEntry{"chaos.shrink_attempts",
                 {"count", "chaos", "Scenario mutations tried by the "
                                    "ddmin shrinker"}},
    CatalogEntry{"chaos.fuzz.rounds",
                 {"count", "chaos", "Fuzz mutation rounds completed"}},
    CatalogEntry{"chaos.fuzz.evals",
                 {"count", "chaos",
                  "Fuzz scenario evaluations consumed"}},
    CatalogEntry{"chaos.fuzz.corpus_adds",
                 {"count", "chaos",
                  "Fuzz corpus admissions (novel coverage or tightened "
                  "margin)"}},
    CatalogEntry{"chaos.fuzz.violations",
                 {"count", "chaos", "Invariant violations found by the "
                                    "fuzzer"}},

    // --- ops: fault-tolerance bookkeeping (docs/FAULT_TOLERANCE.md).
    // The whole "ops" layer is excluded from Registry::fingerprint():
    // these count wall-clock accidents (retries, stalls, resumes) that
    // must not perturb determinism comparisons. ---
    CatalogEntry{"par.shard_retry",
                 {"count", "ops",
                  "Shard attempts beyond the first (retries after a "
                  "throw, stall, or torn result)"}},
    CatalogEntry{"par.shard_stall",
                 {"count", "ops",
                  "Shard attempts abandoned by the per-attempt "
                  "watchdog"}},
    CatalogEntry{"par.shard_quarantine",
                 {"count", "ops",
                  "Shards quarantined after exhausting the retry "
                  "budget"}},
    CatalogEntry{"par.threads_env_invalid",
                 {"count", "ops",
                  "Unparseable CARPOOL_THREADS values ignored (fell "
                  "back to serial)"}},
    CatalogEntry{"dsp.kernel_env_invalid",
                 {"count", "ops",
                  "Unparseable CARPOOL_KERNEL values ignored (fell "
                  "back to the scalar backend)"}},
    CatalogEntry{"chaos.checkpoint_write",
                 {"count", "ops",
                  "Campaign checkpoints flushed to disk"}},
    CatalogEntry{"chaos.checkpoint_resume",
                 {"count", "ops",
                  "Campaigns resumed from a checkpoint"}},

    // --- obs: the observability layer itself ---
    // Cap overflows are collection bookkeeping, not simulation events: a
    // resumed campaign re-collects spans only for its remaining repeats,
    // so drop counts legitimately differ from an uninterrupted run's.
    // The "ops" layer keeps them out of Registry::fingerprint().
    CatalogEntry{"obs.trace_dropped",
                 {"count", "ops",
                  "Trace events dropped at the TraceSink max-event cap"}},
    CatalogEntry{"obs.spans_dropped",
                 {"count", "ops",
                  "Spans dropped at the SpanCollector record cap"}},

    // --- wall-clock stage timers (OBS_SCOPED_TIMER / OBS_TIMED_SPAN) ---
    CatalogEntry{"phy.equalize",
                 {"ns", "phy", "Per-symbol equalization wall time"}},
    CatalogEntry{"phy.ofdm_modulate",
                 {"ns", "phy", "OFDM modulation (IFFT + CP) wall time"}},
    CatalogEntry{"phy.ofdm_demodulate",
                 {"ns", "phy", "OFDM demodulation (FFT) wall time"}},
    CatalogEntry{"fec.viterbi_decode",
                 {"ns", "fec", "Viterbi decode wall time"}},
    CatalogEntry{"carpool.ahdr_encode",
                 {"ns", "carpool", "A-HDR Bloom-filter encode wall time"}},
    CatalogEntry{"carpool.ahdr_test",
                 {"ns", "carpool", "A-HDR Bloom-filter membership test "
                                   "wall time"}},

    // --- bench gauges (bench/*) ---
    CatalogEntry{"ablation.ge_static_goodput_bps",
                 {"bit/s", "bench",
                  "Downlink goodput under Gilbert-Elliott loss, static "
                  "MCS"}},
    CatalogEntry{"ablation.ge_feedback_goodput_bps",
                 {"bit/s", "bench",
                  "Downlink goodput under Gilbert-Elliott loss, feedback "
                  "rate adaptation"}},
    CatalogEntry{"robustness.goodput_frac.intensity_*",
                 {"ratio", "bench",
                  "Goodput under impairment as a fraction of the clean "
                  "channel, per intensity step"}},
    CatalogEntry{"robustness.monotone",
                 {"bool", "bench",
                  "1 when goodput degrades monotonically with intensity"}},
    CatalogEntry{"robustness.no_cliff",
                 {"bool", "bench",
                  "1 when no adjacent intensity step loses more than the "
                  "cliff bound"}},
    CatalogEntry{"robustness.status_matrix_ok",
                 {"bool", "bench",
                  "1 when the DecodeStatus matrix matches the golden "
                  "table"}},
    CatalogEntry{"fig13.*",
                 {"ratio", "bench",
                  "Bit error rate, RTE vs standard estimation (Fig. 13)"}},
    CatalogEntry{"multi_bss.goodput_bps.*",
                 {"bit/s", "bench",
                  "Aggregate downlink goodput of the campus, per AP-count "
                  "sweep point"}},
    CatalogEntry{"multi_bss.per_ap_goodput_bps.*",
                 {"bit/s", "bench",
                  "Mean per-AP downlink goodput, per AP-count sweep "
                  "point"}},
    CatalogEntry{"multi_bss.handovers.*",
                 {"count", "bench",
                  "Handovers over the campaign, per AP-count sweep "
                  "point"}},
    CatalogEntry{"multi_bss.scaling_monotone",
                 {"bool", "bench",
                  "1 when aggregate goodput is non-decreasing in AP count "
                  "(MPR-style scaling, arXiv:1006.4408)"}},

    // --- bench_micro kernel throughput (docs/KERNELS.md) ---
    // Absolute rates are informational (host-dependent); the simd_speedup
    // ratios gate in CI via bench_diff. Speedup names carry the best-tier
    // suffix (e.g. .avx512) so the gate only fires against baselines
    // recorded for the same tier.
    CatalogEntry{"micro.fft64.symbols_per_sec.*",
                 {"symbol/s", "bench",
                  "64-point OFDM FFTs per second, per kernel backend"}},
    CatalogEntry{"micro.viterbi.symbols_per_sec.*",
                 {"symbol/s", "bench",
                  "Viterbi ACS trellis steps per second, per kernel "
                  "backend"}},
    CatalogEntry{"micro.equalize.symbols_per_sec.*",
                 {"symbol/s", "bench",
                  "48-subcarrier OFDM symbol equalizations per second, "
                  "per kernel backend"}},
    CatalogEntry{"micro.ahdr.symbols_per_sec.*",
                 {"symbol/s", "bench",
                  "A-HDR keyed-hash finalizations per second, per kernel "
                  "backend"}},
    CatalogEntry{"micro.fft64.simd_speedup.*",
                 {"ratio", "bench",
                  "FFT symbols/sec speedup of the best SIMD tier over the "
                  "scalar reference"}},
    CatalogEntry{"micro.viterbi.simd_speedup.*",
                 {"ratio", "bench",
                  "Viterbi ACS speedup of the best SIMD tier over the "
                  "scalar reference"}},
    CatalogEntry{"micro.equalize.simd_speedup.*",
                 {"ratio", "bench",
                  "Equalizer speedup of the best SIMD tier over the "
                  "scalar reference"}},
    CatalogEntry{"micro.ahdr.simd_speedup.*",
                 {"ratio", "bench",
                  "A-HDR hash speedup of the best SIMD tier over the "
                  "scalar reference"}},
};

}  // namespace

const MetricMeta* find_metric_meta(std::string_view name) noexcept {
  const CatalogEntry* best = nullptr;
  std::size_t best_len = 0;
  for (const CatalogEntry& e : kCatalog) {
    if (!e.name.empty() && e.name.back() == '*') {
      const std::string_view prefix = e.name.substr(0, e.name.size() - 1);
      if (name.size() >= prefix.size() &&
          name.substr(0, prefix.size()) == prefix &&
          (best == nullptr || prefix.size() > best_len)) {
        best = &e;
        best_len = prefix.size();
      }
    } else if (e.name == name) {
      return &e.meta;  // exact match always wins
    }
  }
  return best == nullptr ? nullptr : &best->meta;
}

}  // namespace carpool::obs
