#pragma once

// carpool::obs — Chrome trace-event export for frame-lifecycle spans.
//
// Converts a SpanCollector's records into the Chrome trace-event JSON
// format (the `{"traceEvents":[...]}` flavor), which loads directly in
// Perfetto (https://ui.perfetto.dev) and chrome://tracing. Two tracks:
//
//   tid 1  "MAC (sim time)"    — spans on the simulated timeline
//                                (mac.txop / mac.frame / mac.subframe),
//                                1 sim second = 1 trace second
//   tid 2  "PHY decode (wall)" — wall-clock decode spans
//                                (carpool.rx_frame and below)
//
// Wall-clock roots are re-based onto a sequential cursor (each root
// placed after the previous one) so shard-interleaved soak output still
// renders as cleanly nested, non-overlapping decode pyramids; children
// keep their true offset within their root. A flow arrow links each
// wall-clock root back to the sim-time span that caused it, so clicking
// a TXOP walks straight into its decode.
//
// Span ids, frame-lifecycle coordinates, and outcomes ride along in each
// event's `args`, so Perfetto's query engine can slice by STA, subframe,
// or DecodeStatus.

#include <string>
#include <vector>

#include "obs/span.hpp"

namespace carpool::obs {

class ChromeTraceWriter {
 public:
  /// Render `records` as a complete Chrome trace-event JSON document.
  [[nodiscard]] static std::string to_json(
      const std::vector<SpanRecord>& records);

  /// to_json() to a file; returns false if the file cannot be written.
  static bool write(const std::string& path,
                    const std::vector<SpanRecord>& records);
};

}  // namespace carpool::obs
