#pragma once

// carpool::obs — process-wide metrics registry.
//
// Named counters, gauges, and fixed-bucket histograms, safe for concurrent
// writers. Writers pay one relaxed atomic RMW per update; name lookup is a
// mutex-guarded map access. Handles stay valid for the life of the
// registry: reset_values() zeroes metrics but never removes registrations.
//
// Instrumentation call sites resolve their registry through
// Registry::current(): by default that is the process-wide global(), but
// the parallel sweep engine (carpool::par, docs/PARALLELISM.md) installs a
// shard-local registry per worker job via Registry::ScopedCurrent, so
// metrics from independent (seed, scenario) shards accumulate in isolation
// and are merged into the global registry in deterministic job-index order
// with merge_from(). Because shard registries are private to one thread,
// the per-event name lookup is uncontended.
//
// Metrics are self-describing: find-or-create resolves the name against
// the static catalog in metrics_meta.hpp and remembers the unit / layer /
// description, which exporters surface as `schema_version: 2`.
//
// Exporters: to_json() produces the unified BENCH_*.json schema shared by
// every bench binary (see docs/OBSERVABILITY.md), to_text() a human
// summary, snapshot() a plain-data view for columnar exporters
// (obs::StatsWriter), and fingerprint() a 64-bit FNV-1a digest of the
// deterministic metric surface (counters + gauges; wall-clock histograms
// excluded) used by the CI serial-vs-parallel determinism canary.

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics_meta.hpp"

namespace carpool::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (e.g. a bench result or a configuration knob).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts samples <= bounds[i], plus one
/// overflow bucket. Also tracks count/sum/min/max for mean extraction.
class Histogram {
 public:
  /// `upper_bounds` must be sorted ascending; `unit` is advisory and only
  /// surfaces in exports (e.g. "ns" for latency histograms).
  explicit Histogram(std::vector<double> upper_bounds, std::string unit = {});

  void record(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  [[nodiscard]] double min() const noexcept {
    return min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// i in [0, bounds().size()]; the last index is the overflow bucket.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& unit() const noexcept { return unit_; }

  /// Nearest-rank percentile estimated from the bucket upper bounds.
  [[nodiscard]] double percentile(double p) const;

  /// Fold another histogram's samples into this one. Bucket counts and
  /// count/sum add, min/max combine. Throws std::invalid_argument when the
  /// bucket bounds differ — merging only makes sense shape-to-shape.
  void merge_from(const Histogram& other);

  /// Fold previously snapshotted raw contents back in (checkpoint
  /// resume): bucket counts and count/sum add, min/max combine exactly
  /// like merge_from. `buckets` must have bounds().size()+1 entries or
  /// std::invalid_argument is thrown. A count of zero is a no-op for
  /// min/max, so restoring an empty histogram keeps the +-inf sentinels.
  void restore_add(const std::vector<std::uint64_t>& buckets,
                   std::uint64_t count, double sum, double min, double max);

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::string unit_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Plain-data view of a registry at one instant, with catalog metadata
/// resolved per metric. Consumed by columnar exporters (StatsWriter) and
/// report tooling; safe to hold after the registry mutates.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
    const MetricMeta* meta = nullptr;  ///< null when uncataloged
  };
  struct GaugeRow {
    std::string name;
    double value = 0.0;
    const MetricMeta* meta = nullptr;
  };
  struct HistogramRow {
    std::string name;
    std::string unit;
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    const MetricMeta* meta = nullptr;
    /// Raw bucket shape + contents, enough to reconstruct the histogram
    /// exactly (campaign checkpoints round-trip registries through this
    /// snapshot — docs/FAULT_TOLERANCE.md). buckets has bounds.size()+1
    /// entries; the last is the overflow bucket.
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
  };
  std::vector<CounterRow> counters;    ///< sorted by name
  std::vector<GaugeRow> gauges;        ///< sorted by name
  std::vector<HistogramRow> histograms;  ///< sorted by name
};

class Registry {
 public:
  /// The process-wide registry. Tests may construct private registries.
  static Registry& global();

  /// The registry instrumentation writes to on this thread: the innermost
  /// ScopedCurrent override, or global() when none is installed. Every
  /// built-in counter/timer call site resolves through this, which is what
  /// lets the parallel executor give each shard its own metric scope.
  [[nodiscard]] static Registry& current() noexcept;

  /// RAII thread-local registry override. Install a shard-local registry
  /// for the duration of one sharded job; restores the previous override
  /// (or global()) on destruction. The installed registry must outlive the
  /// scope.
  class ScopedCurrent {
   public:
    explicit ScopedCurrent(Registry& registry) noexcept;
    ~ScopedCurrent();
    ScopedCurrent(const ScopedCurrent&) = delete;
    ScopedCurrent& operator=(const ScopedCurrent&) = delete;

   private:
    Registry* previous_;
  };

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. References remain valid until the registry dies.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       std::string unit = {});

  /// Histogram with the canonical latency buckets (nanoseconds, log-ish
  /// spacing 250 ns .. 1 s). All OBS_SCOPED_TIMER stages use this shape so
  /// exports are comparable across runs.
  Histogram& latency_histogram(std::string_view name);

  void set_gauge(std::string_view name, double v) { gauge(name).set(v); }

  /// Read a counter's current value without creating it: 0 if absent.
  /// Lets invariant checks poll "did X ever happen" counters without
  /// polluting the registry with never-incremented entries.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Fold another registry's metrics into this one: counters add, gauges
  /// overwrite (last merge wins — callers merge shards in job-index order
  /// so the outcome matches a serial run's write order), histograms merge
  /// bucket-wise. Registrations carry over even at zero so the export
  /// schema is identical to a serial run's. Self-merge is a no-op.
  void merge_from(const Registry& other);

  /// Rebuild this registry's contents from a snapshot (checkpoint
  /// resume, docs/FAULT_TOLERANCE.md): counters add their snapshotted
  /// values (registering zero-valued ones too, so the restored key set —
  /// and therefore the export schema and fingerprint input — matches the
  /// snapshotted run exactly), gauges set, histograms reconstruct from
  /// the raw bounds/buckets via restore_add. Call on a registry that
  /// does not already hold campaign state, or counts double.
  void restore(const MetricsSnapshot& snap);

  /// Catalog metadata resolved for `name` at find-or-create time; null
  /// when the metric does not exist yet or has no catalog entry.
  [[nodiscard]] const MetricMeta* metric_meta(std::string_view name) const;

  /// Plain-data copy of every metric plus its resolved metadata.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Order-stable 64-bit FNV-1a digest of the deterministic metric
  /// surface: every counter (name, value) and gauge (name, IEEE bit
  /// pattern), iterated in sorted name order. Histograms are excluded —
  /// their contents are wall-clock timings that vary run to run. Metrics
  /// whose catalog layer is "ops" (retry/quarantine/checkpoint
  /// bookkeeping, docs/FAULT_TOLERANCE.md) are excluded too: they count
  /// wall-clock accidents like retries and resumes, which must not
  /// perturb the faulted-vs-clean and resumed-vs-uninterrupted
  /// fingerprint comparisons. Two runs of a deterministic workload must
  /// produce equal fingerprints at any thread count; CI prints and
  /// compares them as the parallelism canary.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Unified JSON export (schema_version 2: values plus a `meta` section
  /// of unit / layer / description per cataloged metric). `bench` labels
  /// the run.
  [[nodiscard]] std::string to_json(std::string_view bench = {}) const;
  /// Aligned human-readable summary.
  [[nodiscard]] std::string to_text() const;
  /// to_json() to a file; returns false if the file cannot be written.
  bool write_json(const std::string& path, std::string_view bench = {}) const;

  /// Zero every metric but keep all registrations (handles stay valid).
  void reset_values();

 private:
  /// Resolve catalog metadata for a newly created metric. Caller holds
  /// mutex_; find_metric_meta itself is lock-free over static data, so
  /// this is safe from merge_from (which holds two registry mutexes).
  void attach_meta(std::string_view name);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  /// Metric name -> catalog entry (static storage), filled at creation.
  /// Uncataloged names get no entry.
  std::map<std::string, const MetricMeta*, std::less<>> meta_;
};

}  // namespace carpool::obs
