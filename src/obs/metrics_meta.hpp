#pragma once

// carpool::obs — self-describing metric metadata.
//
// Every metric name the instrumentation uses has a catalog entry here
// carrying its unit, owning layer, and a one-line description. The
// registry consults the catalog at find-or-create time and exports the
// resolved metadata in BENCH_*.json as `schema_version: 2`, so a
// downstream consumer (bench_report, the StatsWriter CSV, a human with
// jq) never has to guess what `phy.rte_delta_clamped` counts or whether
// `ablation.ge_static_goodput_bps` is bits or bytes.
//
// Catalog names ending in '*' are prefix families for dynamically
// constructed names (e.g. `robustness.goodput_frac.intensity_<n>`).
// tools/metric_lint greps source for metric-name literals and fails the
// build when one has no catalog entry, which keeps this file honest.

#include <string>
#include <string_view>

namespace carpool::obs {

/// Descriptive metadata for one metric (or one prefix family).
struct MetricMeta {
  std::string_view unit;   ///< "count", "ns", "bit/s", "ratio", "bool", ""
  std::string_view layer;  ///< "mac", "phy", "fec", "carpool", "chaos", ...
  std::string_view description;
};

/// Catalog lookup: exact name first, then the longest matching `prefix*`
/// family. Returns nullptr for unknown names (tests and ad-hoc probes
/// may create unregistered metrics; they export without metadata).
[[nodiscard]] const MetricMeta* find_metric_meta(
    std::string_view name) noexcept;

}  // namespace carpool::obs
