#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/registry.hpp"

namespace carpool::obs {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

TraceEvent::TraceEvent(TraceSink& sink, std::string_view type)
    : sink_(&sink) {
  buf_.reserve(96);
  buf_ += "{\"type\":\"";
  append_escaped(buf_, type);
  buf_ += '"';
}

TraceEvent::TraceEvent(TraceEvent&& other) noexcept
    : sink_(other.sink_), buf_(std::move(other.buf_)) {
  other.sink_ = nullptr;
}

TraceEvent::~TraceEvent() {
  if (sink_ == nullptr) return;
  buf_ += '}';
  sink_->write_line(buf_);
}

TraceEvent& TraceEvent::f(std::string_view key, double v) {
  buf_ += ",\"";
  append_escaped(buf_, key);
  buf_ += "\":";
  if (std::isfinite(v)) {
    char num[32];
    std::snprintf(num, sizeof(num), "%.9g", v);
    buf_ += num;
  } else {
    buf_ += "null";
  }
  return *this;
}

TraceEvent& TraceEvent::f(std::string_view key, std::uint64_t v) {
  buf_ += ",\"";
  append_escaped(buf_, key);
  buf_ += "\":";
  buf_ += std::to_string(v);
  return *this;
}

TraceEvent& TraceEvent::f(std::string_view key, std::int64_t v) {
  buf_ += ",\"";
  append_escaped(buf_, key);
  buf_ += "\":";
  buf_ += std::to_string(v);
  return *this;
}

TraceEvent& TraceEvent::f(std::string_view key, bool v) {
  buf_ += ",\"";
  append_escaped(buf_, key);
  buf_ += "\":";
  buf_ += v ? "true" : "false";
  return *this;
}

TraceEvent& TraceEvent::f(std::string_view key, std::string_view v) {
  buf_ += ",\"";
  append_escaped(buf_, key);
  buf_ += "\":\"";
  append_escaped(buf_, v);
  buf_ += '"';
  return *this;
}

TraceSink::TraceSink() = default;

TraceSink::TraceSink(Options options) : options_(options) {}

TraceSink::TraceSink(const std::string& path)
    : TraceSink(path, Options()) {}

TraceSink::TraceSink(const std::string& path, Options options)
    : file_(path, options.append ? std::ios::app : std::ios::trunc),
      to_file_(true),
      options_(options) {
  if (!file_) {
    throw std::runtime_error("TraceSink: cannot open " + path);
  }
}

void TraceSink::write_line(std::string_view line) {
  const std::scoped_lock lock(mutex_);
  if (options_.max_events != 0 &&
      events_.load(std::memory_order_relaxed) >= options_.max_events) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    Registry::current().counter("obs.trace_dropped").add();
    return;
  }
  if (to_file_) {
    file_ << line << '\n';
  } else {
    buffer_.append(line);
    buffer_ += '\n';
  }
  events_.fetch_add(1, std::memory_order_relaxed);
}

void TraceSink::flush() {
  const std::scoped_lock lock(mutex_);
  if (to_file_) file_.flush();
}

std::string TraceSink::str() const {
  const std::scoped_lock lock(mutex_);
  return buffer_;
}

}  // namespace carpool::obs
