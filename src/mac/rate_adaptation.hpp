#pragma once

// Per-station rate selection. The Carpool frame format lets every subframe
// use its own MCS (paper Sec. 4.1: "Different subframes can adopt
// different MCSs"); the MAC picks each receiver's PHY rate from its link
// SNR with a standard threshold table (802.11n single-stream rates).

#include <cstddef>
#include <span>
#include <vector>

namespace carpool::mac {

/// 802.11n MCS0-7 rates at 20 MHz, 800 ns GI.
inline constexpr double kHtRates[] = {6.5e6,  13e6,   19.5e6, 26e6,
                                      39e6,   52e6,   58.5e6, 65e6};

/// SNR thresholds (dB) above which each rate is sustainable (typical
/// waterfall values for 10% PER on flat channels).
inline constexpr double kHtThresholds[] = {5, 8, 11, 14, 18, 22, 26, 28};

/// Highest rate whose threshold the SNR clears; never below the base rate.
double rate_for_snr(double snr_db);

/// Rate table for a set of stations (index 0 = the AP placeholder, kept at
/// the max rate; index i = STA i).
std::vector<double> rates_for_snrs(std::span<const double> sta_snr_db);

}  // namespace carpool::mac
