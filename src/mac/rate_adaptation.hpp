#pragma once

// Per-station rate selection primitives. The Carpool frame format lets
// every subframe use its own MCS (paper Sec. 4.1: "Different subframes can
// adopt different MCSs"); this header holds the 802.11n single-stream
// threshold table and the pure SNR→rate lookup.
//
// Scheduling decisions no longer consume these tables directly: the
// per-STA LinkStateMachine (mac/link_state.hpp, docs/LINK_STATE.md) uses
// them as the static ceiling of its feedback hysteresis and hands
// ApQueues::build an explicit LinkSnapshot, whose accessors throw on the
// AP slot instead of silently returning a pinned placeholder rate.

#include <cstddef>
#include <span>
#include <vector>

namespace carpool::mac {

/// 802.11n MCS0-7 rates at 20 MHz, 800 ns GI.
inline constexpr double kHtRates[] = {6.5e6,  13e6,   19.5e6, 26e6,
                                      39e6,   52e6,   58.5e6, 65e6};

/// SNR thresholds (dB) above which each rate is sustainable (typical
/// waterfall values for 10% PER on flat channels).
inline constexpr double kHtThresholds[] = {5, 8, 11, 14, 18, 22, 26, 28};

/// Highest rate whose threshold the SNR clears; never below the base rate.
double rate_for_snr(double snr_db);

/// Rate table for a set of stations, addressed by NodeId: index i = STA i
/// (sta_snr_db[i - 1]). Index 0 is the AP and NOT a rate decision — it is
/// a placeholder kept only so NodeId indexes directly, and is pinned to
/// the max rate. Never feed rates[0] into airtime math; schedulers should
/// consume a LinkSnapshot instead, which enforces this contract by
/// throwing std::logic_error on the AP slot.
std::vector<double> rates_for_snrs(std::span<const double> sta_snr_db);

}  // namespace carpool::mac
