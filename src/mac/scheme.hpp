#pragma once

// The five MAC schemes evaluated in the paper (Sec. 7.2.1).

#include <string_view>

namespace carpool::mac {

enum class Scheme {
  kDcf80211,       ///< plain IEEE 802.11 DCF, one frame per TXOP
  kAmpdu,          ///< IEEE 802.11n A-MPDU: aggregate for ONE receiver
  kMuAggregation,  ///< multi-receiver aggregation, MAC-address header,
                   ///< standard channel estimation (no RTE)
  kWiFox,          ///< no aggregation; AP channel-access priority
  kCarpool,        ///< A-HDR aggregation + RTE + sequential ACK
};

constexpr std::string_view scheme_name(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kDcf80211:
      return "802.11";
    case Scheme::kAmpdu:
      return "A-MPDU";
    case Scheme::kMuAggregation:
      return "MU-Aggregation";
    case Scheme::kWiFox:
      return "WiFox";
    case Scheme::kCarpool:
      return "Carpool";
  }
  return "?";
}

/// Does the scheme aggregate frames for multiple receivers in one PHY
/// transmission?
constexpr bool is_multi_receiver(Scheme scheme) noexcept {
  return scheme == Scheme::kMuAggregation || scheme == Scheme::kCarpool;
}

/// Does the scheme's PHY run real-time channel estimation?
constexpr bool uses_rte(Scheme scheme) noexcept {
  return scheme == Scheme::kCarpool;
}

}  // namespace carpool::mac
