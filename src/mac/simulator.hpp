#pragma once

// Event-driven single-collision-domain 802.11 DCF simulator (paper
// Sec. 7.2.1): two kinds of contenders — one AP with per-STA downlink
// queues, and STAs with uplink background traffic — share a channel using
// CSMA/CA with binary exponential backoff. PHY reception is judged by a
// PhyErrorModel (trace-driven or analytic), collisions destroy all frames
// involved, and Carpool/MU transmissions use the sequential ACK of Sec. 4.2.
//
// The contention loop is a "virtual slot" simulation: between events the
// next transmission instant is computed directly from the minimum backoff
// counter, which is exact for an ideal slotted DCF and avoids per-slot
// events.

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "mac/aggregation.hpp"
#include "mac/energy.hpp"
#include "mac/frame.hpp"
#include "mac/link_state.hpp"
#include "mac/params.hpp"
#include "mac/phy_model.hpp"
#include "mac/scheme.hpp"
#include "obs/trace.hpp"

namespace carpool::mac {

/// A traffic flow: pull-based generator of frames. `next` is called with
/// the current time and must return the arrival time (>= now) and payload
/// size of the next frame, or a negative time for "no more frames".
struct FlowSpec {
  NodeId src = kApNode;
  NodeId dst = 0;
  std::function<std::pair<double, std::size_t>(double now, Rng& rng)> next;
};

struct SimResult;

/// What the TXOP that just resolved looked like (for SimStepView). On a
/// collision step only `collision` and `data_duration` (the busy period)
/// are meaningful.
struct SimTxopInfo {
  bool collision = false;
  bool downlink = false;
  bool sequential_ack = false;
  std::size_t subunits = 0;
  double data_duration = 0.0;  ///< busy period on a collision step
  double ack_overhead = 0.0;
};

/// Read-only view of the simulator's state handed to SimConfig::observer
/// after every resolved channel event (successful TXOP, slot-tie or
/// hidden-terminal collision). Everything referenced lives only for the
/// duration of the callback. The frame-accounting contract at an
/// observation point: every frame the traffic generators have produced is
/// in exactly one of {delivered, dropped, queued}, so
///   frames_generated == delivered + dropped + frames_inflight
/// holds on both directions combined — the invariant the chaos soak
/// engine checks every step (docs/SOAK.md).
struct SimStepView {
  double now = 0.0;  ///< time after the step completed
  std::uint64_t frames_generated = 0;  ///< arrivals accepted into queues
  std::uint64_t frames_judged = 0;     ///< per-MPDU reception judgements
  std::uint64_t frames_inflight = 0;   ///< queued at AP + all uplink queues
  std::size_t num_stas = 0;
  const SimResult* totals = nullptr;        ///< running counters
  const LinkStateMachine* links = nullptr;  ///< live link-state machine
  const MacParams* params = nullptr;
  SimTxopInfo txop;
};

/// Step observer: return false to stop the simulation early (metrics are
/// finalized over the elapsed time as usual).
using SimObserver = std::function<bool(const SimStepView&)>;

struct SimConfig {
  Scheme scheme = Scheme::kCarpool;
  MacParams params{};
  AggregationPolicy aggregation{};
  std::size_t num_stas = 20;
  double duration = 20.0;  ///< simulated seconds
  std::uint64_t seed = 1;

  /// Delivery deadline for downlink frames (seconds); expired frames are
  /// dropped at the AP and never count toward goodput. Infinity disables.
  double delivery_deadline = std::numeric_limits<double>::infinity();

  bool use_rts_cts = false;

  /// Fraction of STA pairs that are mutually hidden (cannot carrier-sense
  /// each other). A hidden station keeps counting down through a peer's
  /// transmission and collides with it at the AP; RTS/CTS shrinks the
  /// vulnerable window to the RTS, because the AP's CTS is heard by all
  /// (paper Sec. 4.2, Fig. 7). 0 = the paper's single-sensing-domain setup.
  double hidden_pair_fraction = 0.0;

  /// Per-STA link SNR in dB (index 0 = STA 1). Missing entries use 25 dB.
  std::vector<double> sta_snr_db;
  double default_snr_db = 25.0;
  double coherence_time = 5e-3;

  /// Time-varying SNR hook: when set, overrides sta_snr_db for every
  /// reception judgement with snr(sta, now). This is how scenario-scripted
  /// mobility (sim::MobilityPath waypoints moving TestbedLayout SNRs) and
  /// interference episodes reach the analytic MAC path (docs/SOAK.md).
  std::function<double(NodeId sta, double now)> sta_snr_fn;

  /// Called after every resolved channel event with a SimStepView; return
  /// false to stop the run early. The chaos soak engine hangs its
  /// cross-layer invariant checks off this hook.
  SimObserver observer;

  /// The single link-policy entry point: per-STA rate selection (static
  /// SNR thresholds and/or ACK-feedback hysteresis — Carpool subframes
  /// may use different MCSs) plus suspend/probe gating of dead links, all
  /// driven by one LinkStateMachine (docs/LINK_STATE.md). Defaults are
  /// all-off: every link uses params.data_rate_bps and nothing is ever
  /// suspended.
  LinkPolicyConfig link_policy;

  /// Stations 1..num_legacy_stas do not support Carpool (Sec. 4.3): under
  /// a multi-receiver scheme the AP serves them with plain legacy frames
  /// and never aggregates them with others.
  std::size_t num_legacy_stas = 0;

  /// WiFox: scale applied to the AP's contention window when its queue is
  /// backlogged (priority boost).
  double wifox_cw_scale = 0.25;
  std::size_t wifox_backlog_threshold = 4;

  std::shared_ptr<const PhyErrorModel> phy;  ///< defaults to Analytic

  /// Optional JSONL event sink for per-event MAC visibility: tx start/end,
  /// collisions, per-receiver sequential-ACK outcomes, partial-ACK
  /// retransmissions, deadline drops, and backoff redraws (see
  /// docs/OBSERVABILITY.md for the schema). Only consulted when the binary
  /// was built with CARPOOL_ENABLE_TRACE=ON; not owned by the simulator.
  obs::TraceSink* trace = nullptr;
};

struct NodeEnergy {
  double tx_seconds = 0.0;
  double rx_seconds = 0.0;
  double joules = 0.0;
  double idle_seconds = 0.0;
};

struct SimResult {
  double duration = 0.0;

  double downlink_goodput_bps = 0.0;
  double uplink_goodput_bps = 0.0;
  double mean_delay_s = 0.0;     ///< downlink enqueue -> delivery
  double p95_delay_s = 0.0;
  double max_delay_s = 0.0;

  std::uint64_t dl_frames_delivered = 0;
  std::uint64_t dl_frames_dropped = 0;   ///< retry limit or deadline
  std::uint64_t ul_frames_delivered = 0;
  std::uint64_t ul_frames_dropped = 0;
  std::uint64_t tx_attempts = 0;
  std::uint64_t collisions = 0;
  std::uint64_t subframe_failures = 0;   ///< FCS failures (PHY losses)
  std::uint64_t false_positive_decodes = 0;
  std::uint64_t lq_suspensions = 0;      ///< scheduling suspensions
  std::uint64_t lq_probes = 0;           ///< suspensions that timed out
  std::uint64_t ls_transitions = 0;      ///< link health-state changes
  std::uint64_t ls_rate_downgrades = 0;  ///< feedback rate step-downs
  std::uint64_t ls_rate_upgrades = 0;    ///< feedback rate step-ups

  /// Per-transition link-state decision trace; populated only when
  /// SimConfig::link_policy.record_transitions is set.
  std::vector<LinkTransition> link_transitions;

  double airtime_payload = 0.0;     ///< useful payload airtime
  double airtime_overhead = 0.0;    ///< PLCP/headers/SIFS/ACKs
  double airtime_collision = 0.0;
  double airtime_idle = 0.0;        ///< incl. DIFS/backoff

  double mean_ap_queue_depth = 0.0;
  double avg_aggregated_receivers = 0.0;  ///< mean subunits per AP TXOP

  /// Downlink goodput per STA (index 0 = AP, always 0).
  std::vector<double> per_sta_goodput_bps;

  /// Jain's fairness index over the per-STA downlink goodputs of stations
  /// that had downlink traffic: (sum x)^2 / (n * sum x^2); 1 = perfectly
  /// fair (Sec. 8 fairness discussion).
  double jain_fairness = 1.0;

  std::vector<NodeEnergy> node_energy;  ///< index 0 = AP
};

class Simulator {
 public:
  explicit Simulator(SimConfig config);

  /// Add a traffic flow (downlink if src == kApNode, else uplink).
  void add_flow(FlowSpec flow);

  /// Run to config.duration and return aggregate metrics.
  SimResult run();

 private:
  struct Contender;
  struct PendingArrival;

  SimConfig config_;
  std::vector<FlowSpec> flows_;
};

}  // namespace carpool::mac
