#pragma once

// AP-side queueing and the per-scheme transmission builders.
//
// The AP keeps one FIFO per associated STA. On winning a TXOP the scheme
// decides what goes on the air:
//   802.11 / WiFox : the globally oldest frame, alone
//   A-MPDU         : the oldest frame's STA, aggregated up to the caps
//   MU-Aggregation : up to max_receivers STAs (oldest-first), with a
//                    per-receiver MAC-address header at the basic rate
//   Carpool        : up to max_receivers STAs, A-HDR (2 symbols) and one
//                    SIG symbol per subframe
//
// Aggregation ends when the buffered size reaches the maximum frame size
// or the oldest frame's delay reaches the latency limit (Sec. 7.2.2).

#include <deque>
#include <span>
#include <vector>

#include "mac/frame.hpp"
#include "mac/link_state.hpp"
#include "mac/params.hpp"
#include "mac/scheme.hpp"

namespace carpool::mac {

struct AggregationPolicy {
  std::size_t max_aggregate_bytes = 65535;  ///< 802.11n A-MPDU cap
  std::size_t max_subframe_bytes = 4095;    ///< SIG LENGTH field cap
  std::size_t max_receivers = 8;            ///< Carpool kMaxReceivers
  double max_latency = 0.1;  ///< stop aggregating once the oldest queued
                             ///< frame is this old (seconds)
  /// Time-fairness control (paper Sec. 8): pick receivers with the least
  /// airtime occupancy first instead of the oldest head-of-line frame.
  /// Requires an occupancy table passed to build().
  bool time_fairness = false;
};

class ApQueues {
 public:
  void enqueue(MacFrame frame);

  [[nodiscard]] bool empty() const noexcept { return total_frames_ == 0; }
  [[nodiscard]] std::size_t depth() const noexcept { return total_frames_; }
  [[nodiscard]] std::size_t queued_bytes() const noexcept {
    return total_bytes_;
  }

  /// Remove frames whose age exceeds `max_age`; returns how many dropped.
  std::size_t drop_expired(double now, double max_age);

  /// Build the next transmission per `scheme`. Returns an empty-subunit
  /// transmission if nothing is queued. Frames leave the queues; failed
  /// subunits must be returned via requeue_front().
  /// `airtime_occupancy[sta]` (optional) feeds the time-fairness policy.
  /// `links` is the per-STA LinkStateMachine decision snapshot
  /// (docs/LINK_STATE.md): it supplies both each receiver's PHY rate (the
  /// Carpool format allows a different MCS per subframe; 0 = use
  /// params.data_rate_bps) and the blocked mask that holds suspended
  /// stations out of scheduling entirely until the machine probes them
  /// again. An empty snapshot means no policy: default rate, nobody
  /// blocked.
  /// `carpool_capable[sta]` (optional, 0/1 flags) marks stations that
  /// negotiated Carpool at association (Sec. 4.3); others always get
  /// legacy single-destination transmissions, even under a multi-receiver
  /// scheme.
  Transmission build(Scheme scheme, const MacParams& params,
                     const AggregationPolicy& policy, double now,
                     std::span<const double> airtime_occupancy = {},
                     const LinkSnapshot& links = {},
                     std::span<const std::uint8_t> carpool_capable = {});

  /// Put a failed subunit's frames back at the head of their queue.
  void requeue_front(const SubUnit& subunit);

 private:
  std::vector<std::deque<MacFrame>> queues_;  // index = dst NodeId
  std::size_t total_frames_ = 0;
  std::size_t total_bytes_ = 0;
};

/// Airtime of a single (non-aggregated) uplink/downlink frame plus ACK.
/// `rate_bps` overrides the PHY data rate (0 = params.data_rate_bps).
Transmission build_single_frame(const MacFrame& frame,
                                const MacParams& params,
                                double rate_bps = 0.0);

}  // namespace carpool::mac
