#include "mac/params.hpp"

#include <stdexcept>

namespace carpool::mac {

double nav_data(const MacParams& p, double payload_duration,
                std::size_t num_receivers) {
  return payload_duration +
         static_cast<double>(num_receivers) * (p.ack_duration() + p.sifs);
}

double nav_i(const MacParams& p, std::size_t i) {
  if (i == 0) throw std::invalid_argument("nav_i: i is 1-based");
  return static_cast<double>(i - 1) * (p.ack_duration() + p.sifs);
}

}  // namespace carpool::mac
