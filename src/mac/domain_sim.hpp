#pragma once

// Per-collision-domain event engine: one BSS, one virtual-slot event
// queue, one RNG stream tree derived from its own seed. This is the
// engine that used to live inside mac::Simulator; the split lets a
// multi-BSS topology (sim::Topology + sim::MultiBssSim) run one
// DomainSim per AP — each with its own backoff state, arrival queue,
// link-state machine, and obs scope — and shard whole domains across
// carpool::par with an index-ordered merge (docs/MULTI_AP.md).
//
// Determinism contract: a DomainSim is a pure function of (SimConfig,
// flows). All randomness comes from streams split off config.seed in a
// fixed order (traffic=1, phy=2, backoff=3, topology=4), so two
// DomainSims with identical configs produce identical SimResults and
// identical instrumentation — the property the 2-BSS regression anchor
// and the serial-vs-parallel fingerprint canary pin.

#include <cstdint>

#include "mac/simulator.hpp"

namespace carpool::mac {

class DomainSim {
 public:
  /// `domain` tags this engine's collision domain (AP index) for
  /// observability; it does not perturb the simulation. Seed derivation
  /// for multi-domain campaigns happens in the caller (the seed must be
  /// fully determined by the config so a single-BSS Simulator with the
  /// same config reproduces this domain bit for bit).
  explicit DomainSim(SimConfig config, std::uint32_t domain = 0);

  /// Add a traffic flow (downlink if src == kApNode, else uplink).
  void add_flow(FlowSpec flow);

  [[nodiscard]] std::uint32_t domain() const noexcept { return domain_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

  /// Run to config.duration and return aggregate metrics. Re-runnable:
  /// all mutable state is local to the call.
  SimResult run();

 private:
  SimConfig config_;
  std::uint32_t domain_ = 0;
  std::vector<FlowSpec> flows_;
};

}  // namespace carpool::mac
