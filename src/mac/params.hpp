#pragma once

// PHY/MAC timing parameters (paper Table 2, IEEE 802.11n values) and
// scheme-specific overheads used by the discrete-event simulator.

#include <cstdint>

namespace carpool::mac {

struct MacParams {
  double slot_time = 9e-6;
  double sifs = 10e-6;
  double difs = 28e-6;
  unsigned cw_min = 15;    ///< minimal contention window (time slots)
  unsigned cw_max = 1023;  ///< maximal contention window (time slots)
  double plcp_header = 28e-6;
  double propagation_delay = 1e-6;

  double data_rate_bps = 65e6;   ///< PHY rate for payloads (802.11n MCS)
  double basic_rate_bps = 6.5e6; ///< control/ACK/PHY-header rate

  unsigned retry_limit = 7;

  /// ACK frame: 14 bytes at basic rate + PLCP.
  [[nodiscard]] double ack_duration() const {
    return plcp_header + 14.0 * 8.0 / basic_rate_bps;
  }

  /// RTS (20 B) / CTS (14 B) at basic rate.
  [[nodiscard]] double rts_duration() const {
    return plcp_header + 20.0 * 8.0 / basic_rate_bps;
  }
  [[nodiscard]] double cts_duration() const {
    return plcp_header + 14.0 * 8.0 / basic_rate_bps;
  }

  /// Payload airtime at the data rate (MAC header included in `bits`).
  [[nodiscard]] double payload_duration(std::uint64_t bits) const {
    return static_cast<double>(bits) / data_rate_bps;
  }

  /// OFDM symbol duration implied by the data rate (for A-HDR/SIG costs we
  /// keep the 20 MHz 4 us symbol).
  static constexpr double symbol_duration = 4e-6;
};

/// Eq. (1): NAV set by a Carpool data frame covering N sequential ACKs.
double nav_data(const MacParams& p, double payload_duration,
                std::size_t num_receivers);

/// Eq. (2): NAV_i counted down by the receiver of the i-th subframe
/// (1-based) before sending its ACK.
double nav_i(const MacParams& p, std::size_t i);

}  // namespace carpool::mac
