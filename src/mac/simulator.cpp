#include "mac/simulator.hpp"

#include <stdexcept>
#include <utility>

#include "mac/domain_sim.hpp"

// mac::Simulator is the stable single-BSS entry point; since the
// multi-BSS refactor the actual event engine lives in mac::DomainSim
// (src/mac/domain_sim.cpp) and Simulator is a thin facade over one
// domain. Validation happens here too so error behavior is unchanged
// for callers that never touch DomainSim directly.

namespace carpool::mac {

Simulator::Simulator(SimConfig config) : config_(std::move(config)) {
  if (config_.num_stas == 0) {
    throw std::invalid_argument("Simulator: need at least one STA");
  }
  if (!config_.phy) {
    config_.phy = std::make_shared<AnalyticPhyModel>();
  }
}

void Simulator::add_flow(FlowSpec flow) {
  if (!flow.next) throw std::invalid_argument("add_flow: null generator");
  if (flow.src != kApNode && flow.dst != kApNode) {
    throw std::invalid_argument("add_flow: STA-to-STA flows unsupported");
  }
  const NodeId sta = flow.src == kApNode ? flow.dst : flow.src;
  if (sta == kApNode || sta > config_.num_stas) {
    throw std::invalid_argument("add_flow: STA id out of range");
  }
  flows_.push_back(std::move(flow));
}

SimResult Simulator::run() {
  DomainSim domain(config_);
  for (const FlowSpec& flow : flows_) {
    domain.add_flow(flow);
  }
  return domain.run();
}

}  // namespace carpool::mac
