#include "mac/aggregation.hpp"

#include <algorithm>
#include <stdexcept>

namespace carpool::mac {
namespace {

std::size_t symbols_for(double seconds) {
  return static_cast<std::size_t>(seconds / MacParams::symbol_duration + 0.5);
}

/// Pop frames for `dst` until the subunit or aggregate caps are hit.
/// `subunit_cap` is the SIG LENGTH limit for Carpool/MU subframes, or the
/// full A-MPDU limit when the subunit is the whole aggregate.
SubUnit pop_subunit(std::deque<MacFrame>& queue, NodeId dst,
                    std::size_t subunit_cap, std::size_t aggregate_budget,
                    bool allow_aggregation) {
  SubUnit su;
  su.dst = dst;
  while (!queue.empty()) {
    const MacFrame& head = queue.front();
    // Delimiters only exist between aggregated MPDUs.
    const std::size_t cost =
        head.on_air_bytes() + (allow_aggregation ? kMpduDelimiterBytes : 0);
    const std::size_t next_size = su.bytes + cost;
    if (!su.frames.empty() &&
        (!allow_aggregation || next_size > subunit_cap ||
         next_size > aggregate_budget)) {
      break;
    }
    su.bytes += cost;
    su.frames.push_back(head);
    queue.pop_front();
    if (!allow_aggregation) break;
  }
  return su;
}

}  // namespace

void ApQueues::enqueue(MacFrame frame) {
  if (frame.dst >= queues_.size()) queues_.resize(frame.dst + 1);
  total_bytes_ += frame.on_air_bytes();
  ++total_frames_;
  queues_[frame.dst].push_back(std::move(frame));
}

std::size_t ApQueues::drop_expired(double now, double max_age) {
  std::size_t dropped = 0;
  for (auto& queue : queues_) {
    while (!queue.empty() &&
           now - queue.front().enqueue_time > max_age) {
      total_bytes_ -= queue.front().on_air_bytes();
      --total_frames_;
      queue.pop_front();
      ++dropped;
    }
  }
  return dropped;
}

void ApQueues::requeue_front(const SubUnit& subunit) {
  if (subunit.frames.empty()) return;
  auto& queue = queues_[subunit.dst];
  for (auto it = subunit.frames.rbegin(); it != subunit.frames.rend(); ++it) {
    queue.push_front(*it);
    total_bytes_ += it->on_air_bytes();
    ++total_frames_;
  }
}

Transmission ApQueues::build(Scheme scheme, const MacParams& params,
                             const AggregationPolicy& policy, double now,
                             std::span<const double> airtime_occupancy,
                             const LinkSnapshot& links,
                             std::span<const std::uint8_t> carpool_capable) {
  Transmission tx;
  tx.src = kApNode;
  // Queue slot 0 belongs to the AP and is never a destination; the
  // snapshot is only ever consulted for real stations (it throws on 0).
  auto is_blocked = [&](std::size_t sta) {
    return sta != kApNode && links.blocked(static_cast<NodeId>(sta));
  };
  // STA with the oldest head-of-line frame among schedulable stations.
  long first = -1;
  double first_time = 0.0;
  for (std::size_t sta = 0; sta < queues_.size(); ++sta) {
    if (queues_[sta].empty() || is_blocked(sta)) continue;
    const double t = queues_[sta].front().enqueue_time;
    if (first < 0 || t < first_time) {
      first = static_cast<long>(sta);
      first_time = t;
    }
  }
  if (first < 0) return tx;

  auto capable = [&](NodeId sta) {
    return carpool_capable.empty() ||
           (sta < carpool_capable.size() && carpool_capable[sta] != 0);
  };
  // A legacy head-of-line station is served with a plain legacy frame
  // (Sec. 4.3: the AP runs the protocol version the client supports).
  Scheme effective = scheme;
  if (is_multi_receiver(scheme) &&
      !capable(static_cast<NodeId>(first))) {
    effective = Scheme::kDcf80211;
  }
  const Scheme original = scheme;
  scheme = effective;

  const bool aggregate_per_sta =
      scheme == Scheme::kAmpdu || is_multi_receiver(scheme);

  // Pick receivers oldest-head-of-line first, or least-airtime first
  // under time fairness (Sec. 8).
  std::vector<NodeId> order;
  if (is_multi_receiver(scheme)) {
    std::vector<std::pair<double, NodeId>> heads;
    for (std::size_t sta = 0; sta < queues_.size(); ++sta) {
      if (is_blocked(sta)) continue;
      if (!queues_[sta].empty()) {
        double key = queues_[sta].front().enqueue_time;
        if (policy.time_fairness && sta < airtime_occupancy.size()) {
          key = airtime_occupancy[sta];
        }
        heads.emplace_back(key, static_cast<NodeId>(sta));
      }
    }
    std::sort(heads.begin(), heads.end());
    for (const auto& [t, sta] : heads) {
      if (order.size() >= policy.max_receivers) break;
      if (is_multi_receiver(original) && !capable(sta)) continue;
      order.push_back(sta);
    }
  } else {
    order.push_back(static_cast<NodeId>(first));
  }

  // Multi-receiver subframes are bounded by the SIG LENGTH field; a plain
  // A-MPDU's single subunit may fill the whole 64 KB aggregate.
  const std::size_t subunit_cap = is_multi_receiver(scheme)
                                      ? policy.max_subframe_bytes
                                      : policy.max_aggregate_bytes;
  std::size_t budget = policy.max_aggregate_bytes;
  for (const NodeId dst : order) {
    if (budget < kMacHeaderBytes + kMpduDelimiterBytes) break;
    SubUnit su = pop_subunit(queues_[dst], dst, subunit_cap, budget,
                             aggregate_per_sta);
    if (su.frames.empty()) continue;
    budget -= std::min(budget, su.bytes);
    for (const MacFrame& f : su.frames) {
      total_bytes_ -= f.on_air_bytes();
      --total_frames_;
    }
    tx.subunits.push_back(std::move(su));
  }
  if (tx.subunits.empty()) return tx;

  // Durations and symbol geometry.
  const std::size_t n = tx.subunits.size();
  double offset = 0.0;  // payload-section time offset after the preamble
  double duration = params.plcp_header;
  switch (scheme) {
    case Scheme::kDcf80211:
    case Scheme::kWiFox:
    case Scheme::kAmpdu:
      break;
    case Scheme::kMuAggregation:
      // Per-receiver 48-bit MAC address headers at the basic rate
      // (the strawman cost the paper quantifies in Sec. 3).
      duration += static_cast<double>(48 * n) / params.basic_rate_bps;
      break;
    case Scheme::kCarpool:
      duration += 2.0 * MacParams::symbol_duration;  // A-HDR
      break;
  }
  for (SubUnit& su : tx.subunits) {
    if (scheme == Scheme::kCarpool) {
      duration += MacParams::symbol_duration;  // per-subframe SIG
      offset += MacParams::symbol_duration;
    }
    const double link_rate = links.rate_bps(su.dst);
    const double rate = link_rate > 0.0 ? link_rate : params.data_rate_bps;
    const double payload_time =
        8.0 * static_cast<double>(su.bytes) / rate;
    su.start_symbol = symbols_for(offset);
    su.num_symbols = std::max<std::size_t>(1, symbols_for(payload_time));
    offset += payload_time;
    duration += payload_time;
  }
  tx.data_duration = duration;
  tx.sequential_ack = is_multi_receiver(scheme);
  tx.ack_overhead =
      static_cast<double>(n) * (params.sifs + params.ack_duration());
  if (!tx.sequential_ack) {
    tx.ack_overhead = params.sifs + params.ack_duration();
  }
  (void)now;
  return tx;
}

Transmission build_single_frame(const MacFrame& frame,
                                const MacParams& params, double rate_bps) {
  Transmission tx;
  tx.src = frame.src;
  SubUnit su;
  su.dst = frame.dst;
  su.frames.push_back(frame);
  su.bytes = frame.on_air_bytes();
  const double rate = rate_bps > 0.0 ? rate_bps : params.data_rate_bps;
  const double payload_time = 8.0 * static_cast<double>(su.bytes) / rate;
  su.start_symbol = 0;
  su.num_symbols = std::max<std::size_t>(1, symbols_for(payload_time));
  tx.subunits.push_back(std::move(su));
  tx.data_duration = params.plcp_header + payload_time;
  tx.ack_overhead = params.sifs + params.ack_duration();
  tx.sequential_ack = false;
  return tx;
}

}  // namespace carpool::mac
