#include "mac/rate_adaptation.hpp"

namespace carpool::mac {

double rate_for_snr(double snr_db) {
  double rate = kHtRates[0];
  for (std::size_t i = 0; i < std::size(kHtRates); ++i) {
    if (snr_db >= kHtThresholds[i]) rate = kHtRates[i];
  }
  return rate;
}

std::vector<double> rates_for_snrs(std::span<const double> sta_snr_db) {
  std::vector<double> rates;
  rates.reserve(sta_snr_db.size() + 1);
  rates.push_back(kHtRates[std::size(kHtRates) - 1]);  // AP placeholder
  for (const double snr : sta_snr_db) rates.push_back(rate_for_snr(snr));
  return rates;
}

}  // namespace carpool::mac
