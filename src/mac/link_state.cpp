#include "mac/link_state.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "carpool/transceiver.hpp"
#include "mac/rate_adaptation.hpp"
#include "obs/registry.hpp"

namespace carpool::mac {
namespace {

constexpr std::size_t kNumRates = std::size(kHtRates);

std::size_t ladder_index_for_rate(double rate_bps) {
  std::size_t index = 0;
  for (std::size_t i = 0; i < kNumRates; ++i) {
    if (rate_bps >= kHtRates[i]) index = i;
  }
  return index;
}

std::size_t ladder_index_for_snr(double snr_db) {
  std::size_t index = 0;
  for (std::size_t i = 0; i < kNumRates; ++i) {
    if (snr_db >= kHtThresholds[i]) index = i;
  }
  return index;
}

void require_sta(NodeId sta, std::size_t table_size, const char* who) {
  if (sta == kApNode) {
    throw std::logic_error(std::string(who) +
                           ": NodeId 0 is the AP, never a downlink "
                           "destination (old rates_for_snrs() silently "
                           "pinned this slot to the max rate)");
  }
  if (sta >= table_size) {
    throw std::out_of_range(std::string(who) + ": STA id beyond the table");
  }
}

}  // namespace

std::string_view link_health_name(LinkHealth health) noexcept {
  switch (health) {
    case LinkHealth::kHealthy:
      return "healthy";
    case LinkHealth::kDegraded:
      return "degraded";
    case LinkHealth::kSuspended:
      return "suspended";
    case LinkHealth::kProbing:
      return "probing";
  }
  return "?";
}

double StaLinkState::delivery_ratio() const noexcept {
  if (window_len == 0) return 1.0;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < window_len; ++i) {
    delivered += (window_bits >> i) & 1u;
  }
  return static_cast<double>(delivered) / static_cast<double>(window_len);
}

AckFeedback feedback_from_decode(const CarpoolRxResult& rx, double time) {
  AckFeedback fb;
  fb.time = time;
  for (const DecodedSubframe& sub : rx.subframes) {
    if (sub.fcs_ok) {
      ++fb.frames_ok;
    } else {
      ++fb.frames_failed;
    }
  }
  // Bloom-matched subframes the walk never reached (truncation, corrupt
  // SIG) were addressed to us and lost.
  if (rx.matched.size() > rx.subframes.size()) {
    fb.frames_failed +=
        static_cast<std::uint32_t>(rx.matched.size() - rx.subframes.size());
  }
  // A decode that produced nothing at all is one lost subunit.
  if (fb.frames_ok == 0 && fb.frames_failed == 0) fb.frames_failed = 1;
  return fb;
}

double LinkSnapshot::rate_bps(NodeId sta) const {
  if (sta == kApNode) {
    throw std::logic_error(
        "LinkSnapshot::rate_bps: NodeId 0 is the AP, never a downlink "
        "destination");
  }
  if (sta >= decisions_.size()) return 0.0;
  return decisions_[sta].rate_bps;
}

bool LinkSnapshot::blocked(NodeId sta) const {
  if (sta == kApNode) {
    throw std::logic_error(
        "LinkSnapshot::blocked: NodeId 0 is the AP, never a downlink "
        "destination");
  }
  if (sta >= decisions_.size()) return false;
  return !decisions_[sta].schedulable;
}

LinkStateMachine::LinkStateMachine(const LinkPolicyConfig& policy,
                                   std::size_t num_stas,
                                   double default_rate_bps)
    : policy_(policy),
      default_rate_bps_(default_rate_bps),
      default_rate_index_(ladder_index_for_rate(default_rate_bps)) {
  // The delivery window lives in a 64-bit mask.
  policy_.window = std::clamp<std::size_t>(policy_.window, 1, 64);
  if (policy_.down_after == 0) policy_.down_after = 1;
  if (policy_.up_after == 0) policy_.up_after = 1;
  if (policy_.suspend_after == 0) policy_.suspend_after = 1;
  states_.resize(num_stas + 1);
  for (StaLinkState& s : states_) {
    s.rate_index = default_rate_index_;
    s.timeout = policy_.initial_timeout;
    s.snr_db = std::numeric_limits<double>::quiet_NaN();
  }
}

StaLinkState& LinkStateMachine::sta_state(NodeId sta) {
  require_sta(sta, states_.size(), "LinkStateMachine");
  return states_[sta];
}

const StaLinkState& LinkStateMachine::state(NodeId sta) const {
  require_sta(sta, states_.size(), "LinkStateMachine::state");
  return states_[sta];
}

std::size_t LinkStateMachine::ceiling_index(const StaLinkState& s) const {
  if (policy_.rate_adaptation && !std::isnan(s.snr_db)) {
    return ladder_index_for_snr(s.snr_db);
  }
  return default_rate_index_;
}

void LinkStateMachine::set_health(StaLinkState& s, NodeId sta, LinkHealth to,
                                  double when) {
  if (s.health == to) return;
  const LinkHealth from = s.health;
  s.health = to;
  ++transition_count_;
  obs::Registry::current().counter("mac.ls_transition").add();
  const double rate =
      (policy_.rate_adaptation || policy_.feedback) ? kHtRates[s.rate_index]
                                                    : default_rate_bps_;
  if (policy_.record_transitions) {
    log_.push_back(LinkTransition{when, sta, from, to, rate});
  }
  OBS_TRACE(trace_, obs_ts.event("mac.ls_transition")
                        .f("t", when)
                        .f("sta", static_cast<std::uint64_t>(sta))
                        .f("from", link_health_name(from))
                        .f("to", link_health_name(to))
                        .f("rate_bps", rate));
}

void LinkStateMachine::settle_delivering_health(StaLinkState& s, NodeId sta,
                                                double when) {
  set_health(s, sta,
             s.rate_index >= ceiling_index(s) ? LinkHealth::kHealthy
                                              : LinkHealth::kDegraded,
             when);
}

void LinkStateMachine::suspend(StaLinkState& s, NodeId sta, double when) {
  s.suspended_until = when + s.timeout;
  s.timeout = std::min(2.0 * s.timeout, policy_.max_timeout);
  ++suspensions_;
  obs::Registry::current().counter("mac.lq_suspend").add();
  OBS_TRACE(trace_, obs_ts.event("mac.lq_suspend")
                        .f("t", when)
                        .f("sta", static_cast<std::uint64_t>(sta))
                        .f("until", s.suspended_until));
  set_health(s, sta, LinkHealth::kSuspended, when);
}

void LinkStateMachine::observe_snr(NodeId sta, double snr_db) {
  StaLinkState& s = sta_state(sta);
  const bool first = std::isnan(s.snr_db);
  s.snr_db = first ? snr_db
                   : (1.0 - policy_.snr_alpha) * s.snr_db +
                         policy_.snr_alpha * snr_db;
  const std::size_t ceiling = ceiling_index(s);
  if (first || !policy_.feedback) {
    // Static selection tracks the ceiling directly; with feedback on the
    // first observation is the optimistic entry point.
    s.rate_index = ceiling;
  } else {
    // A falling ceiling clamps immediately; a rising one is only reached
    // by successful probes (Minstrel-style caution).
    s.rate_index = std::min(s.rate_index, ceiling);
  }
}

void LinkStateMachine::on_feedback(NodeId sta, const AckFeedback& feedback) {
  StaLinkState& s = sta_state(sta);
  if (!std::isnan(feedback.snr_db)) observe_snr(sta, feedback.snr_db);

  const bool delivered = feedback.delivered();
  s.window_bits = (s.window_bits << 1) | (delivered ? 1u : 0u);
  if (policy_.window < 64) {
    s.window_bits &= (std::uint64_t{1} << policy_.window) - 1;
  }
  s.window_len = std::min(s.window_len + 1, policy_.window);

  if (delivered) {
    s.fail_streak = 0;
    ++s.success_streak;
    s.timeout = policy_.initial_timeout;
    if (policy_.feedback && s.success_streak >= policy_.up_after &&
        s.rate_index < ceiling_index(s)) {
      ++s.rate_index;
      s.success_streak = 0;
      ++rate_upgrades_;
      obs::Registry::current().counter("mac.ls_rate_up").add();
    }
    settle_delivering_health(s, sta, feedback.time);
    return;
  }

  s.success_streak = 0;
  ++s.fail_streak;
  if (s.health == LinkHealth::kProbing && policy_.suspension) {
    // The probe failed: straight back to suspension, timeout doubled.
    suspend(s, sta, feedback.time);
    s.fail_streak = 0;
    return;
  }
  if (policy_.feedback && s.rate_index > 0 &&
      s.fail_streak >= policy_.down_after) {
    // Degraded links shed rate instead of being suspended outright.
    --s.rate_index;
    s.fail_streak = 0;
    ++rate_downgrades_;
    obs::Registry::current().counter("mac.ls_rate_down").add();
    set_health(s, sta, LinkHealth::kDegraded, feedback.time);
    return;
  }
  if (policy_.suspension && s.fail_streak >= policy_.suspend_after &&
      (!policy_.feedback || s.rate_index == 0)) {
    suspend(s, sta, feedback.time);
    s.fail_streak = 0;
  }
}

void LinkStateMachine::advance(double now) {
  if (!policy_.suspension) return;
  for (NodeId sta = 1; sta < states_.size(); ++sta) {
    StaLinkState& s = states_[sta];
    if (s.health == LinkHealth::kSuspended && now >= s.suspended_until) {
      s.suspended_until = 0.0;
      ++probes_;
      obs::Registry::current().counter("mac.lq_probe").add();
      OBS_TRACE(trace_, obs_ts.event("mac.lq_probe")
                            .f("t", now)
                            .f("sta", static_cast<std::uint64_t>(sta)));
      set_health(s, sta, LinkHealth::kProbing, now);
    }
  }
}

LinkSnapshot LinkStateMachine::snapshot() const {
  if (!policy_.active()) return LinkSnapshot{};
  std::vector<LinkDecision> decisions(states_.size());
  const bool rate_selection = policy_.rate_adaptation || policy_.feedback;
  for (NodeId sta = 1; sta < states_.size(); ++sta) {
    const StaLinkState& s = states_[sta];
    decisions[sta].rate_bps = rate_selection ? kHtRates[s.rate_index] : 0.0;
    decisions[sta].schedulable = s.health != LinkHealth::kSuspended;
  }
  return LinkSnapshot(std::move(decisions));
}

double LinkStateMachine::rate_bps(NodeId sta) const {
  require_sta(sta, states_.size(), "LinkStateMachine::rate_bps");
  if (!policy_.rate_adaptation && !policy_.feedback) return 0.0;
  return kHtRates[states_[sta].rate_index];
}

}  // namespace carpool::mac
