#pragma once

// Device power model from paper Sec. 8 (LinkSys WPC55AG measurements via
// E-MiLi): TX 1.71 W, RX 1.66 W, idle 1.22 W. The simulator accounts time
// per state for every node; Carpool nodes pay extra RX for Bloom false
// positives but go idle right after the A-HDR when no subframe matches.

namespace carpool::mac {

struct PowerModel {
  double tx_watts = 1.71;
  double rx_watts = 1.66;
  double idle_watts = 1.22;
};

class EnergyAccumulator {
 public:
  void add_tx(double seconds) noexcept { tx_ += seconds; }
  void add_rx(double seconds) noexcept { rx_ += seconds; }

  [[nodiscard]] double tx_seconds() const noexcept { return tx_; }
  [[nodiscard]] double rx_seconds() const noexcept { return rx_; }

  [[nodiscard]] double idle_seconds(double total) const noexcept {
    const double busy = tx_ + rx_;
    return busy > total ? 0.0 : total - busy;
  }

  /// Total energy over a run of `total` seconds.
  [[nodiscard]] double joules(double total,
                              const PowerModel& power = {}) const noexcept {
    return tx_ * power.tx_watts + rx_ * power.rx_watts +
           idle_seconds(total) * power.idle_watts;
  }

 private:
  double tx_ = 0.0;
  double rx_ = 0.0;
};

}  // namespace carpool::mac
