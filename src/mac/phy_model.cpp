#include "mac/phy_model.hpp"

#include <algorithm>
#include <cmath>

namespace carpool::mac {

double AnalyticPhyModel::symbol_error_prob(double snr_db,
                                           double staleness_ratio) const {
  const double effective_snr =
      snr_db - params_.stale_penalty_db * std::max(0.0, staleness_ratio);
  const double x =
      (effective_snr - params_.snr50_db) / params_.steepness_db;
  return 1.0 / (1.0 + std::exp(x));
}

double AnalyticPhyModel::rate_margin_db(double rate_bps) {
  // Mirror the 802.11n waterfall spacing: the SNR needed for MCS0 (6.5M)
  // is ~23 dB below what MCS7 (65M) needs. Piecewise from the same
  // threshold table used by rate adaptation.
  constexpr double kRates[] = {6.5e6, 13e6,  19.5e6, 26e6,
                               39e6,  52e6,  58.5e6, 65e6};
  constexpr double kThresholds[] = {5, 8, 11, 14, 18, 22, 26, 28};
  if (rate_bps <= 0.0 || rate_bps >= kRates[7]) return 0.0;
  double margin = kThresholds[7] - kThresholds[0];
  for (std::size_t i = 0; i < 8; ++i) {
    if (rate_bps >= kRates[i]) margin = kThresholds[7] - kThresholds[i];
  }
  return margin;
}

double AnalyticPhyModel::subframe_error_prob(
    const SubframeChannelQuery& query) const {
  // Success requires every symbol group to decode; staleness grows with
  // the symbol's distance from the last channel-estimate refresh: the
  // preamble (standard) or the last verified data pilot (RTE).
  const double effective_snr = query.snr_db + rate_margin_db(query.rate_bps);
  double success = 1.0;
  for (std::size_t s = 0; s < query.num_symbols; ++s) {
    double stale_symbols;
    if (query.rte) {
      stale_symbols = params_.rte_residual_symbols;
    } else {
      stale_symbols = static_cast<double>(query.start_symbol + s);
    }
    const double staleness =
        stale_symbols * params_.symbol_duration / query.coherence_time;
    success *= 1.0 - symbol_error_prob(effective_snr, staleness);
    if (success <= 1e-9) return 1.0;
  }
  return 1.0 - success;
}

double AnalyticPhyModel::control_error_prob(double snr_db) const {
  // Control frames ride the basic rate (MCS0-class robustness) right
  // after a fresh preamble: a few symbols at zero staleness with the full
  // low-rate margin.
  const double per_symbol =
      symbol_error_prob(snr_db + rate_margin_db(6.5e6), 0.0);
  return 1.0 - std::pow(1.0 - per_symbol, 4.0);
}

namespace {

/// splitmix64: one hashed uniform per (seed, Markov step).
double step_uniform(std::uint64_t seed, std::uint64_t step) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (step + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

GilbertElliottPhyModel::GilbertElliottPhyModel(
    std::shared_ptr<const PhyErrorModel> inner, const Params& params)
    : inner_(std::move(inner)), params_(params) {
  if (!inner_) inner_ = std::make_shared<AnalyticPhyModel>();
  if (params_.period <= 0.0) params_.period = 5e-3;
}

bool GilbertElliottPhyModel::state_at_step(std::uint64_t step) const {
  if (step < cursor_step_) {
    // Backward query: replay the chain from its (good) start state.
    cursor_step_ = 0;
    cursor_bad_ = false;
  }
  while (cursor_step_ < step) {
    const double u = step_uniform(params_.seed, cursor_step_);
    cursor_bad_ = cursor_bad_ ? u >= params_.p_bad_to_good
                              : u < params_.p_good_to_bad;
    ++cursor_step_;
  }
  return cursor_bad_;
}

bool GilbertElliottPhyModel::bad_at(double time) const {
  const double step = std::max(0.0, time) / params_.period;
  return state_at_step(static_cast<std::uint64_t>(step));
}

double GilbertElliottPhyModel::subframe_error_prob(
    const SubframeChannelQuery& query) const {
  SubframeChannelQuery faded = query;
  if (bad_at(query.time)) faded.snr_db -= params_.bad_snr_penalty_db;
  return inner_->subframe_error_prob(faded);
}

double GilbertElliottPhyModel::control_error_prob(double snr_db) const {
  const double snr =
      cursor_bad_ ? snr_db - params_.bad_snr_penalty_db : snr_db;
  return inner_->control_error_prob(snr);
}

}  // namespace carpool::mac
