#include "mac/domain_sim.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "carpool/bloom.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace carpool::mac {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct BackoffState {
  long counter = -1;  ///< -1 = needs a fresh draw
  unsigned cw;

  explicit BackoffState(unsigned cw_min) : cw(cw_min) {}

  void draw(Rng& rng, unsigned effective_cw) {
    counter = static_cast<long>(rng.uniform_int(effective_cw + 1));
  }
  void on_success(unsigned cw_min) {
    cw = cw_min;
    counter = -1;
  }
  void on_failure(unsigned cw_max) {
    cw = std::min(cw * 2 + 1, cw_max);
    counter = -1;
  }
};

struct ArrivalEvent {
  double time;
  std::size_t flow;
  std::size_t size;
  bool operator>(const ArrivalEvent& other) const { return time > other.time; }
};

}  // namespace

DomainSim::DomainSim(SimConfig config, std::uint32_t domain)
    : config_(std::move(config)), domain_(domain) {
  if (config_.num_stas == 0) {
    throw std::invalid_argument("DomainSim: need at least one STA");
  }
  if (!config_.phy) {
    config_.phy = std::make_shared<AnalyticPhyModel>();
  }
}

void DomainSim::add_flow(FlowSpec flow) {
  if (!flow.next) throw std::invalid_argument("add_flow: null generator");
  if (flow.src != kApNode && flow.dst != kApNode) {
    throw std::invalid_argument("add_flow: STA-to-STA flows unsupported");
  }
  const NodeId sta = flow.src == kApNode ? flow.dst : flow.src;
  if (sta == kApNode || sta > config_.num_stas) {
    throw std::invalid_argument("add_flow: STA id out of range");
  }
  flows_.push_back(std::move(flow));
}

SimResult DomainSim::run() {
  const MacParams& p = config_.params;
  const PhyErrorModel& phy = *config_.phy;
  Rng rng(config_.seed);
  Rng traffic_rng = rng.split(1);
  Rng phy_rng = rng.split(2);
  Rng backoff_rng = rng.split(3);

  double now = 0.0;
  auto sta_snr = [&](NodeId sta) {
    if (config_.sta_snr_fn) return config_.sta_snr_fn(sta, now);
    const std::size_t idx = sta - 1;
    return idx < config_.sta_snr_db.size() ? config_.sta_snr_db[idx]
                                           : config_.default_snr_db;
  };

  // --- state ---
  ApQueues ap_queues;
  std::vector<std::deque<MacFrame>> uplink(config_.num_stas + 1);
  BackoffState ap_backoff(p.cw_min);
  std::vector<BackoffState> sta_backoff(config_.num_stas + 1,
                                        BackoffState(p.cw_min));
  std::vector<EnergyAccumulator> energy(config_.num_stas + 1);
  std::vector<double> airtime_occupancy(config_.num_stas + 1, 0.0);

  // Per-STA link-state machine: one place decides every station's PHY
  // rate and whether it is schedulable at all (docs/LINK_STATE.md). The
  // machine is seeded with the configured link SNRs and fed every
  // sequential-ACK outcome below; it consumes no randomness.
  LinkStateMachine links(config_.link_policy, config_.num_stas,
                         p.data_rate_bps);
  links.set_trace(config_.trace);
  for (NodeId sta = 1; sta <= config_.num_stas; ++sta) {
    links.observe_snr(sta, sta_snr(sta));
  }
  auto rate_of = [&](NodeId node) {
    if (node == kApNode) return p.data_rate_bps;
    const double rate = links.rate_bps(node);
    return rate > 0.0 ? rate : p.data_rate_bps;
  };

  // Carpool capability table (Sec. 4.3 backward compatibility).
  std::vector<std::uint8_t> carpool_capable;
  if (config_.num_legacy_stas > 0) {
    carpool_capable.assign(config_.num_stas + 1, 1);
    for (NodeId sta = 1;
         sta <= std::min<std::size_t>(config_.num_legacy_stas,
                                      config_.num_stas);
         ++sta) {
      carpool_capable[sta] = 0;
    }
  }

  // Hidden-terminal map: hidden[a][b] = STAs a and b cannot sense each
  // other. The AP hears and is heard by everyone.
  std::vector<std::vector<bool>> hidden;
  if (config_.hidden_pair_fraction > 0.0) {
    Rng topo_rng = rng.split(4);
    hidden.assign(config_.num_stas + 1,
                  std::vector<bool>(config_.num_stas + 1, false));
    for (NodeId a = 1; a <= config_.num_stas; ++a) {
      for (NodeId b = a + 1; b <= config_.num_stas; ++b) {
        if (topo_rng.bernoulli(config_.hidden_pair_fraction)) {
          hidden[a][b] = hidden[b][a] = true;
        }
      }
    }
  }

  std::priority_queue<ArrivalEvent, std::vector<ArrivalEvent>,
                      std::greater<ArrivalEvent>>
      arrivals;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const auto [t, size] = flows_[i].next(0.0, traffic_rng);
    if (t >= 0.0) arrivals.push(ArrivalEvent{t, i, size});
  }

  SimResult result;
  result.duration = config_.duration;
  SampleSet delays;
  std::uint64_t dl_bytes = 0, ul_bytes = 0;
  std::vector<std::uint64_t> dl_bytes_per_sta(config_.num_stas + 1, 0);
  std::uint64_t frame_counter = 0;
  double queue_depth_integral = 0.0;
  double last_depth_sample = 0.0;
  std::uint64_t ap_txops = 0, ap_subunits = 0;

  double idle_start = 0.0;
  std::size_t slots_consumed = 0;
  std::uint64_t frames_judged = 0;
  bool observer_stop = false;

  // Invoke SimConfig::observer (when set) after a resolved channel event;
  // sets observer_stop when the callback asks to end the run.
  auto notify_observer = [&](const SimTxopInfo& txop) {
    if (!config_.observer) return;
    SimStepView view;
    view.now = now;
    view.frames_generated = frame_counter;
    view.frames_judged = frames_judged;
    std::uint64_t inflight = ap_queues.depth();
    for (NodeId sta = 1; sta <= config_.num_stas; ++sta) {
      inflight += uplink[sta].size();
    }
    view.frames_inflight = inflight;
    view.num_stas = config_.num_stas;
    view.totals = &result;
    view.links = &links;
    view.params = &p;
    view.txop = txop;
    if (!config_.observer(view)) observer_stop = true;
  };

  auto sample_queue_depth = [&](double t) {
    queue_depth_integral +=
        static_cast<double>(ap_queues.depth()) * (t - last_depth_sample);
    last_depth_sample = t;
  };

  auto deliver_arrival = [&](const ArrivalEvent& ev) {
    const FlowSpec& flow = flows_[ev.flow];
    MacFrame frame;
    frame.id = ++frame_counter;
    frame.src = flow.src;
    frame.dst = flow.dst;
    frame.payload_bytes = ev.size;
    frame.enqueue_time = ev.time;
    if (flow.src == kApNode) {
      sample_queue_depth(ev.time);
      ap_queues.enqueue(std::move(frame));
    } else {
      uplink[flow.src].push_back(std::move(frame));
    }
    const auto [t, size] = flows_[ev.flow].next(ev.time, traffic_rng);
    if (t >= 0.0) arrivals.push(ArrivalEvent{std::max(t, ev.time), ev.flow,
                                             size});
  };

  auto ap_active = [&] { return !ap_queues.empty(); };
  auto effective_ap_cw = [&]() -> unsigned {
    if (config_.scheme == Scheme::kWiFox &&
        ap_queues.depth() > config_.wifox_backlog_threshold) {
      const double scaled =
          std::max(1.0, config_.wifox_cw_scale * ap_backoff.cw);
      return static_cast<unsigned>(scaled);
    }
    return ap_backoff.cw;
  };

  const std::size_t retry_limit = p.retry_limit;

  // Frame-lifecycle span ordinals (docs/OBSERVABILITY.md): every resolved
  // channel event — success or collision — consumes a txop id, every
  // aggregate frame put on air a frame id. Counted unconditionally so the
  // ordinals are deterministic whether or not a SpanCollector is
  // installed.
  std::int64_t txop_seq = 0;
  std::int64_t frame_seq = 0;

  while (!observer_stop && now < config_.duration) {
    // 1. arrivals due now.
    while (!arrivals.empty() && arrivals.top().time <= now) {
      const ArrivalEvent ev = arrivals.top();
      arrivals.pop();
      deliver_arrival(ev);
    }

    // Expire overdue downlink frames.
    if (std::isfinite(config_.delivery_deadline)) {
      sample_queue_depth(now);
      const std::uint64_t expired =
          ap_queues.drop_expired(now, config_.delivery_deadline);
      result.dl_frames_dropped += expired;
      if (expired > 0) {
        OBS_TRACE(config_.trace, obs_ts.event("mac.deadline_drop")
                                     .f("t", now)
                                     .f("frames", expired));
      }
    }

    // 2. active contenders.
    std::vector<NodeId> active;
    if (ap_active()) active.push_back(kApNode);
    for (NodeId sta = 1; sta <= config_.num_stas; ++sta) {
      if (!uplink[sta].empty()) active.push_back(sta);
    }
    if (active.empty()) {
      if (arrivals.empty()) break;
      now = arrivals.top().time;
      idle_start = now;
      slots_consumed = 0;
      continue;
    }

    // 3. ensure backoff counters.
    for (const NodeId node : active) {
      BackoffState& b = node == kApNode ? ap_backoff : sta_backoff[node];
      if (b.counter < 0) {
        b.draw(backoff_rng, node == kApNode ? effective_ap_cw() : b.cw);
        OBS_TRACE(config_.trace,
                  obs_ts.event("mac.backoff_draw")
                      .f("t", now)
                      .f("node", static_cast<std::uint64_t>(node))
                      .f("cw", static_cast<std::uint64_t>(b.cw))
                      .f("counter", static_cast<std::int64_t>(b.counter)));
      }
    }

    long k = std::numeric_limits<long>::max();
    for (const NodeId node : active) {
      const BackoffState& b = node == kApNode ? ap_backoff : sta_backoff[node];
      k = std::min(k, b.counter);
    }
    const double tx_start =
        std::max(now, idle_start + p.difs +
                          static_cast<double>(slots_consumed +
                                              static_cast<std::size_t>(k)) *
                              p.slot_time);

    // Arrivals that land before the transmission starts interrupt the
    // countdown: burn the slots that elapsed and reconsider.
    if (!arrivals.empty() && arrivals.top().time < tx_start) {
      const double arr = arrivals.top().time;
      long burned = 0;
      if (arr > idle_start + p.difs) {
        burned = static_cast<long>((arr - idle_start - p.difs) / p.slot_time) -
                 static_cast<long>(slots_consumed);
        burned = std::clamp(burned, 0L, k);
      }
      for (const NodeId node : active) {
        BackoffState& b = node == kApNode ? ap_backoff : sta_backoff[node];
        b.counter -= burned;
      }
      slots_consumed += static_cast<std::size_t>(burned);
      now = arr;
      continue;
    }

    if (tx_start >= config_.duration) {
      now = config_.duration;
      break;
    }

    // 4. winners: counters that hit zero.
    std::vector<NodeId> winners;
    for (const NodeId node : active) {
      BackoffState& b = node == kApNode ? ap_backoff : sta_backoff[node];
      b.counter -= k;
      if (b.counter == 0) winners.push_back(node);
    }
    // WiFox gives a backlogged AP strict channel-access priority: on a
    // slot tie the AP's transmission captures the medium (the colliding
    // STAs resume their backoff as after any busy period).
    if (config_.scheme == Scheme::kWiFox && winners.size() > 1 &&
        ap_queues.depth() > config_.wifox_backlog_threshold) {
      const bool ap_tied =
          std::find(winners.begin(), winners.end(), kApNode) != winners.end();
      if (ap_tied) {
        for (const NodeId node : winners) {
          if (node != kApNode) sta_backoff[node].counter = -1;
        }
        winners.assign(1, kApNode);
      }
    }
    slots_consumed = 0;  // channel about to go busy
    now = tx_start;

    // Build the transmissions of all winners.
    std::vector<Transmission> txs;
    LinkSnapshot ap_snapshot;  ///< decisions the AP's build() used
    for (const NodeId node : winners) {
      if (node == kApNode) {
        sample_queue_depth(now);
        // Move suspended links whose timeout expired into Probing, then
        // freeze this TXOP's decisions: per-subframe rates + blocked mask.
        links.advance(now);
        ap_snapshot = links.snapshot();
        txs.push_back(ap_queues.build(config_.scheme, p, config_.aggregation,
                                      now, airtime_occupancy, ap_snapshot,
                                      carpool_capable));
      } else {
        txs.push_back(
            build_single_frame(uplink[node].front(), p, rate_of(node)));
        uplink[node].pop_front();
      }
    }

    const std::size_t n_winners = winners.size();
    result.tx_attempts += n_winners;

    // RTS/CTS exchange time (Fig. 7: one multicast RTS, then one CTS per
    // receiver for Carpool-style transmissions).
    auto control_time = [&](const Transmission& tx) {
      if (!config_.use_rts_cts) return 0.0;
      const std::size_t ncts = tx.sequential_ack ? tx.subunits.size() : 1;
      return p.rts_duration() +
             static_cast<double>(ncts) * (p.sifs + p.cts_duration()) + p.sifs;
    };

    if (n_winners > 1) {
      // Collision. With RTS/CTS only the RTS is wasted.
      ++result.collisions;
      double busy = 0.0;
      for (std::size_t w = 0; w < n_winners; ++w) {
        const double cost = config_.use_rts_cts
                                ? p.rts_duration()
                                : txs[w].data_duration;
        busy = std::max(busy, cost);
      }
      busy += p.sifs + p.ack_duration();  // timeout
      result.airtime_collision += busy;
      OBS_TRACE(config_.trace,
                obs_ts.event("mac.collision")
                    .f("t", now)
                    .f("kind", "slot_tie")
                    .f("winners", static_cast<std::uint64_t>(n_winners))
                    .f("busy_s", busy));

      for (std::size_t w = 0; w < n_winners; ++w) {
        const NodeId node = winners[w];
        BackoffState& b = node == kApNode ? ap_backoff : sta_backoff[node];
        b.on_failure(p.cw_max);
        energy[node].add_tx(config_.use_rts_cts ? p.rts_duration()
                                                : txs[w].data_duration);
        // Frames return to their queues with a retry charged.
        for (SubUnit& su : txs[w].subunits) {
          std::vector<MacFrame> keep;
          for (MacFrame& f : su.frames) {
            if (++f.retries <= retry_limit) {
              keep.push_back(f);
            } else if (node == kApNode) {
              ++result.dl_frames_dropped;
            } else {
              ++result.ul_frames_dropped;
            }
          }
          su.frames = std::move(keep);
          if (su.frames.empty()) continue;
          if (node == kApNode) {
            ap_queues.requeue_front(su);
          } else {
            for (auto it = su.frames.rbegin(); it != su.frames.rend(); ++it) {
              uplink[node].push_front(*it);
            }
          }
        }
      }
      {
        // Collision TXOP span: closes after the observer so any probe
        // decode it fires nests underneath.
        obs::Span txop_span("mac.txop");
        txop_span.ids({.txop = txop_seq})
            .sim_interval(now, busy)
            .outcome("collision");
        ++txop_seq;
        now += busy;
        idle_start = now;
        SimTxopInfo info;
        info.collision = true;
        info.data_duration = busy;
        notify_observer(info);
      }
      continue;
    }

    // Single winner: carry out the full sequence.
    const NodeId src = winners.front();
    Transmission& tx = txs.front();
    if (tx.subunits.empty()) {
      // Queue raced empty (deadline expiry); nothing to send.
      BackoffState& b = src == kApNode ? ap_backoff : sta_backoff[src];
      b.on_success(p.cw_min);
      idle_start = now;
      continue;
    }

    const double ctrl = control_time(tx);
    const double sequence = ctrl + tx.total_duration();
    const bool is_downlink = src == kApNode;
    if (obs::trace_compiled_in() && config_.trace != nullptr) {
      std::uint64_t n_frames = 0;
      for (const SubUnit& su : tx.subunits) n_frames += su.frames.size();
      OBS_TRACE(config_.trace,
                obs_ts.event("mac.tx_start")
                    .f("t", now)
                    .f("src", static_cast<std::uint64_t>(src))
                    .f("downlink", is_downlink)
                    .f("subunits",
                       static_cast<std::uint64_t>(tx.subunits.size()))
                    .f("frames", n_frames)
                    .f("duration_s", sequence));
    }

    // Hidden terminals: an active STA that cannot sense `src` keeps
    // counting down and fires into the ongoing transmission. With RTS/CTS
    // only the RTS is vulnerable — after the AP's CTS everyone defers.
    if (!hidden.empty() && src != kApNode) {
      const double vulnerable =
          config_.use_rts_cts ? p.rts_duration() : tx.data_duration;
      const long slots_in_window =
          static_cast<long>(vulnerable / p.slot_time);
      NodeId intruder = 0;
      for (const NodeId node : active) {
        if (node == src || node == kApNode || !hidden[src][node]) continue;
        BackoffState& b = sta_backoff[node];
        if (b.counter >= 0 && b.counter <= slots_in_window) {
          intruder = node;
          break;
        }
      }
      if (intruder != 0) {
        ++result.collisions;
        const double busy =
            vulnerable + p.sifs + p.ack_duration();  // timeout
        result.airtime_collision += busy;
        OBS_TRACE(config_.trace,
                  obs_ts.event("mac.collision")
                      .f("t", now)
                      .f("kind", "hidden_terminal")
                      .f("src", static_cast<std::uint64_t>(src))
                      .f("intruder", static_cast<std::uint64_t>(intruder))
                      .f("busy_s", busy));
        energy[src].add_tx(vulnerable);
        // Both parties lose their frames (retry accounting).
        auto requeue_loser = [&](NodeId node, Transmission& lost) {
          BackoffState& b =
              node == kApNode ? ap_backoff : sta_backoff[node];
          b.on_failure(p.cw_max);
          for (SubUnit& su : lost.subunits) {
            std::vector<MacFrame> keep;
            for (MacFrame& f : su.frames) {
              if (++f.retries <= retry_limit) {
                keep.push_back(f);
              } else {
                ++result.ul_frames_dropped;
              }
            }
            su.frames = std::move(keep);
            if (su.frames.empty()) continue;
            for (auto it = su.frames.rbegin(); it != su.frames.rend();
                 ++it) {
              uplink[node].push_front(*it);
            }
          }
        };
        requeue_loser(src, tx);
        Transmission intruder_tx =
            build_single_frame(uplink[intruder].front(), p,
                               rate_of(intruder));
        uplink[intruder].pop_front();
        energy[intruder].add_tx(intruder_tx.data_duration);
        requeue_loser(intruder, intruder_tx);
        sta_backoff[intruder].on_failure(p.cw_max);
        {
          obs::Span txop_span("mac.txop");
          txop_span.ids({.txop = txop_seq, .sta = src})
              .sim_interval(now, busy)
              .outcome("hidden_terminal");
          ++txop_seq;
          now += busy;
          idle_start = now;
          SimTxopInfo info;
          info.collision = true;
          info.data_duration = busy;
          notify_observer(info);
        }
        continue;
      }
    }
    if (is_downlink) {
      ++ap_txops;
      ap_subunits += tx.subunits.size();
    }

    // TXOP and frame spans stay open for the rest of this loop body, so
    // per-subframe slices, ACK outcomes, and any full-PHY decode probe the
    // end-of-iteration observer fires all nest under them. Both live on
    // the simulated timeline (no wall clock in fingerprinted output).
    const std::int64_t txop_id = txop_seq++;
    const std::int64_t frame_id = frame_seq++;
    obs::Span txop_span("mac.txop");
    txop_span.ids({.txop = txop_id, .sta = static_cast<std::int64_t>(src)})
        .sim_interval(now, sequence);
    obs::Span frame_span("mac.frame");
    frame_span
        .ids({.txop = txop_id,
              .frame = frame_id,
              .sta = static_cast<std::int64_t>(src)})
        .sim_interval(now + ctrl, tx.data_duration);

    // Judge reception frame by frame: every MPDU has its own FCS and is
    // selectively retransmitted (802.11n block ACK; Carpool's sequential
    // ACK reports per-subframe, and subframes carry per-MPDU checks too).
    std::size_t ok_subunits = 0;
    std::uint64_t delivered_payload_bits = 0;
    std::int64_t subframe_index = -1;
    for (SubUnit& su : tx.subunits) {
      ++subframe_index;
      const NodeId peer = is_downlink ? su.dst : kApNode;
      const double snr = is_downlink ? sta_snr(su.dst) : sta_snr(src);
      const bool ack_ok = !phy_rng.bernoulli(phy.control_error_prob(snr));

      bool any_delivered = false;
      std::uint64_t frames_ok = 0;
      std::uint64_t frames_dropped = 0;
      std::vector<MacFrame> failed;
      // Per-frame symbol spans within the subunit, at this link's rate —
      // for downlink, the rate the AP's build() actually used (frozen in
      // ap_snapshot; feedback during this judging loop must not shift it).
      double link_rate = rate_of(src);
      if (is_downlink) {
        const double decided = ap_snapshot.rate_bps(su.dst);
        link_rate = decided > 0.0 ? decided : p.data_rate_bps;
      }
      const double bytes_per_symbol =
          link_rate * MacParams::symbol_duration / 8.0;
      double byte_offset = 0.0;
      for (MacFrame f : su.frames) {
        SubframeChannelQuery query;
        query.snr_db = snr;
        query.start_symbol =
            su.start_symbol +
            static_cast<std::size_t>(byte_offset / bytes_per_symbol);
        query.num_symbols = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   static_cast<double>(f.on_air_bytes()) / bytes_per_symbol +
                   0.5));
        query.rte = uses_rte(config_.scheme);
        query.coherence_time = config_.coherence_time;
        query.rate_bps = link_rate;
        query.time = now;
        byte_offset += static_cast<double>(f.on_air_bytes());

        ++frames_judged;
        const bool data_ok =
            !phy_rng.bernoulli(phy.subframe_error_prob(query));
        if (data_ok && ack_ok) {
          any_delivered = true;
          ++frames_ok;
          const double delay = now + sequence - f.enqueue_time;
          if (is_downlink) {
            ++result.dl_frames_delivered;
            dl_bytes += f.payload_bytes;
            if (su.dst < dl_bytes_per_sta.size()) {
              dl_bytes_per_sta[su.dst] += f.payload_bytes;
            }
            delays.add(delay);
          } else {
            ++result.ul_frames_delivered;
            ul_bytes += f.payload_bytes;
          }
          delivered_payload_bits += 8 * f.payload_bytes;
        } else {
          ++result.subframe_failures;
          if (++f.retries <= retry_limit) {
            failed.push_back(std::move(f));
          } else {
            ++frames_dropped;
            if (is_downlink) {
              ++result.dl_frames_dropped;
            } else {
              ++result.ul_frames_dropped;
            }
          }
        }
      }
      // Sequential-ACK outcome for this receiver (paper Sec. 4.2): which
      // of its frames got through, and whether the ACK itself survived.
      OBS_TRACE(config_.trace,
                obs_ts.event("mac.ack")
                    .f("t", now + sequence)
                    .f("receiver", static_cast<std::uint64_t>(peer))
                    .f("ack_ok", ack_ok)
                    .f("delivered", any_delivered)
                    .f("frames_ok", frames_ok)
                    .f("frames_failed",
                       static_cast<std::uint64_t>(failed.size()))
                    .f("frames_dropped", frames_dropped));
      // Subframe span: this receiver's symbol slice of the aggregate
      // frame plus its sequential-ACK outcome. The whole interval is
      // known here, so it is emitted directly rather than held open.
      if (obs::SpanCollector* sc = obs::SpanCollector::current();
          sc != nullptr) {
        obs::SpanRecord rec;
        rec.parent = frame_span.id();
        rec.name = "mac.subframe";
        rec.ids = {.txop = txop_id,
                   .frame = frame_id,
                   .subframe = subframe_index,
                   .sta = static_cast<std::int64_t>(peer)};
        rec.sim_start = now + ctrl + static_cast<double>(su.start_symbol) *
                                         MacParams::symbol_duration;
        rec.sim_duration = static_cast<double>(su.num_symbols) *
                           MacParams::symbol_duration;
        rec.outcome =
            !ack_ok ? "ack_lost" : (any_delivered ? "ok" : "failed");
        sc->emit(std::move(rec));
      }
      if (any_delivered) {
        ++ok_subunits;
        // Receiver ACK transmission energy.
        energy[peer].add_tx(p.ack_duration());
      }
      if (is_downlink) {
        // Every sequential-ACK outcome feeds the link-state machine —
        // the same interface trace-driven PHY tables and real decodes
        // (feedback_from_decode) report through, so every PhyErrorModel
        // exercises identical policy code.
        AckFeedback fb;
        fb.time = now + sequence;
        fb.ack_ok = ack_ok;
        fb.frames_ok = static_cast<std::uint32_t>(frames_ok);
        fb.frames_failed = static_cast<std::uint32_t>(failed.size()) +
                           static_cast<std::uint32_t>(frames_dropped);
        fb.snr_db = snr;
        links.on_feedback(su.dst, fb);
      }
      if (is_downlink && su.dst < airtime_occupancy.size()) {
        airtime_occupancy[su.dst] +=
            p.payload_duration(8 * static_cast<std::uint64_t>(su.bytes));
      }
      if (!failed.empty()) {
        // Partial-ACK selective retransmission: only the failed MPDUs
        // return to the head of their queue.
        OBS_TRACE(config_.trace,
                  obs_ts.event("mac.retransmit")
                      .f("t", now + sequence)
                      .f("receiver", static_cast<std::uint64_t>(peer))
                      .f("frames",
                         static_cast<std::uint64_t>(failed.size())));
        SubUnit back = su;
        back.frames = std::move(failed);
        if (is_downlink) {
          ap_queues.requeue_front(back);
        } else {
          for (auto it = back.frames.rbegin(); it != back.frames.rend();
               ++it) {
            uplink[src].push_front(*it);
          }
        }
      }
    }

    OBS_TRACE(config_.trace,
              obs_ts.event("mac.tx_end")
                  .f("t", now + sequence)
                  .f("src", static_cast<std::uint64_t>(src))
                  .f("ok_subunits",
                     static_cast<std::uint64_t>(ok_subunits))
                  .f("delivered_bits", delivered_payload_bits));
    txop_span.outcome(ok_subunits > 0 ? "ok" : "failed");
    frame_span.outcome(ok_subunits > 0 ? "ok" : "failed");

    BackoffState& b = src == kApNode ? ap_backoff : sta_backoff[src];
    if (ok_subunits > 0) {
      b.on_success(p.cw_min);
    } else {
      b.on_failure(p.cw_max);
    }

    // --- energy accounting over the sequence ---
    energy[src].add_tx(ctrl > 0.0 ? p.rts_duration() + tx.data_duration
                                  : tx.data_duration);
    const bool carpool_like = config_.scheme == Scheme::kCarpool;
    for (NodeId sta = 1; sta <= config_.num_stas; ++sta) {
      if (sta == src) continue;
      bool addressed = false;
      double own_time = 0.0;
      for (const SubUnit& su : tx.subunits) {
        if (is_downlink && su.dst == sta) {
          addressed = true;
          own_time = static_cast<double>(su.num_symbols) *
                     MacParams::symbol_duration;
        }
      }
      if (addressed) {
        // Header + own subframe (Carpool) or whole frame (others).
        const double rx_time =
            carpool_like ? p.plcp_header + 2 * MacParams::symbol_duration +
                               own_time
                         : tx.data_duration;
        energy[sta].add_rx(rx_time);
      } else {
        // Overhearers: PHY header (+ A-HDR) then idle via NAV.
        double rx_time = p.plcp_header;
        if (carpool_like) rx_time += 2 * MacParams::symbol_duration;
        // Bloom false positive: decode one irrelevant subframe.
        if (carpool_like && is_downlink) {
          const double r = theoretical_fp_rate(tx.subunits.size(), 4);
          const double p_any = 1.0 - std::pow(1.0 - r,
                                              static_cast<double>(kMaxReceivers));
          if (phy_rng.bernoulli(p_any)) {
            const SubUnit& victim =
                tx.subunits[phy_rng.uniform_int(tx.subunits.size())];
            rx_time += static_cast<double>(victim.num_symbols) *
                       MacParams::symbol_duration;
            ++result.false_positive_decodes;
          }
        }
        energy[sta].add_rx(rx_time);
      }
    }
    if (!is_downlink) {
      energy[kApNode].add_rx(tx.data_duration);
    }

    // Airtime accounting.
    const double payload_time =
        static_cast<double>(delivered_payload_bits) / p.data_rate_bps;
    result.airtime_payload += payload_time;
    result.airtime_overhead += sequence - payload_time;

    now += sequence;
    idle_start = now;
    SimTxopInfo info;
    info.downlink = is_downlink;
    info.sequential_ack = tx.sequential_ack;
    info.subunits = tx.subunits.size();
    info.data_duration = tx.data_duration;
    info.ack_overhead = tx.ack_overhead;
    notify_observer(info);
  }

  sample_queue_depth(std::min(now, config_.duration));

  // --- finalize metrics ---
  result.lq_suspensions = links.suspensions();
  result.lq_probes = links.probes();
  result.ls_transitions = links.transition_count();
  result.ls_rate_downgrades = links.rate_downgrades();
  result.ls_rate_upgrades = links.rate_upgrades();
  result.link_transitions = links.transitions();

  const double T = config_.duration;
  result.downlink_goodput_bps = static_cast<double>(dl_bytes) * 8.0 / T;
  result.uplink_goodput_bps = static_cast<double>(ul_bytes) * 8.0 / T;
  if (!delays.empty()) {
    result.mean_delay_s = delays.mean();
    result.p95_delay_s = delays.percentile(0.95);
    result.max_delay_s = delays.percentile(1.0);
  }
  result.mean_ap_queue_depth = queue_depth_integral / T;
  result.airtime_idle =
      std::max(0.0, T - result.airtime_payload - result.airtime_overhead -
                        result.airtime_collision);
  result.avg_aggregated_receivers =
      ap_txops == 0 ? 0.0
                    : static_cast<double>(ap_subunits) /
                          static_cast<double>(ap_txops);
  result.per_sta_goodput_bps.resize(config_.num_stas + 1, 0.0);
  double fair_sum = 0.0, fair_sq = 0.0;
  std::size_t fair_n = 0;
  for (NodeId sta = 1; sta <= config_.num_stas; ++sta) {
    const double x = static_cast<double>(dl_bytes_per_sta[sta]) * 8.0 / T;
    result.per_sta_goodput_bps[sta] = x;
    if (x > 0.0) {
      fair_sum += x;
      fair_sq += x * x;
      ++fair_n;
    }
  }
  if (fair_n > 0 && fair_sq > 0.0) {
    result.jain_fairness =
        fair_sum * fair_sum / (static_cast<double>(fair_n) * fair_sq);
  }
  result.node_energy.resize(config_.num_stas + 1);
  for (NodeId node = 0; node <= config_.num_stas; ++node) {
    NodeEnergy& ne = result.node_energy[node];
    ne.tx_seconds = energy[node].tx_seconds();
    ne.rx_seconds = energy[node].rx_seconds();
    ne.idle_seconds = energy[node].idle_seconds(T);
    ne.joules = energy[node].joules(T);
  }
  return result;
}

}  // namespace carpool::mac
