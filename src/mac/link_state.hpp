#pragma once

// Per-STA link-state machine: the single place every downlink scheduling
// decision about a station's link is made.
//
// The Carpool frame format lets each subframe use its own MCS (paper
// Sec. 4.1), and a public WLAN link is a moving target — so the AP keeps,
// per station, a smoothed SNR estimate, a windowed subframe delivery
// ratio fed by sequential-ACK outcomes (Sec. 4.2), a consecutive-failure
// streak, and a health state:
//
//            K windowed failures                 failures at floor rate
//   Healthy ---------------------> Degraded ---------------------------+
//      ^  ^                          |   ^                             |
//      |  | M consecutive successes  |   | probe delivers (rate        v
//      |  +--------------------------+   |  still below the ceiling) Suspended
//      |                                 |                             |
//      |        probe delivers at        |        suspension timeout   |
//      +------- the SNR ceiling ------ Probing <-----------------------+
//                                        |      (exponential backoff)
//                                        +---> Suspended (probe fails;
//                                                timeout doubled)
//
// Three policy layers, individually switchable so the historic single-knob
// behaviours stay reachable (LinkPolicyConfig defaults = all off = every
// link at the configured default rate, nothing ever suspended):
//
//  - rate_adaptation: static SNR-threshold MCS ceiling (the old
//    SimConfig::rate_adaptation).
//  - feedback: Minstrel-style ACK-feedback hysteresis below that ceiling —
//    step the rate down after `down_after` consecutive failed sequential
//    ACKs, probe one step back up after `up_after` consecutive deliveries.
//  - suspension: suspend/probe gating of dead links (the old
//    SimConfig::link_quality): once the rate floor is reached (immediately,
//    when feedback is off) `suspend_after` further consecutive failures
//    block the STA out of downlink scheduling entirely until an
//    exponentially backed-off timeout expires and the AP probes it again.
//
// Consumers pull a LinkSnapshot — an immutable per-STA decision table
// (rate + schedulability) — and hand it to ApQueues::build; producers push
// AckFeedback records, one per sequential-ACK outcome, whether those
// outcomes came from the analytic PHY model, the trace-driven table, or a
// real CarpoolReceiver decode (feedback_from_decode). Both paths exercise
// exactly this policy code.

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "mac/frame.hpp"
#include "obs/trace.hpp"

namespace carpool {
struct CarpoolRxResult;  // carpool/transceiver.hpp
}  // namespace carpool

namespace carpool::mac {

enum class LinkHealth : std::uint8_t {
  kHealthy,    ///< delivering at the SNR-derived ceiling rate
  kDegraded,   ///< delivering, but stepped below the ceiling by feedback
  kSuspended,  ///< blocked out of downlink scheduling until a timeout
  kProbing,    ///< timeout expired; scheduled again, next ACK decides
};

[[nodiscard]] std::string_view link_health_name(LinkHealth health) noexcept;

/// The one link-policy entry point (SimConfig::link_policy). Defaults
/// reproduce the pre-LinkState behaviour bit for bit: fixed rate, no
/// gating, no state ever leaves kHealthy.
struct LinkPolicyConfig {
  /// Static SNR-threshold MCS selection: each STA's rate ceiling comes
  /// from the 802.11n waterfall table (rate_adaptation.hpp).
  bool rate_adaptation = false;

  /// ACK-feedback hysteresis below the ceiling (Minstrel-style).
  bool feedback = false;

  /// Suspend/probe gating of links whose sequential ACKs keep failing.
  bool suspension = false;

  /// EWMA weight of a fresh SNR observation (1 = latest sample wins).
  double snr_alpha = 0.25;

  /// Sliding window (in sequential-ACK outcomes) for the delivery ratio.
  std::size_t window = 16;

  /// Consecutive failed ACK outcomes before a one-step rate down.
  std::size_t down_after = 3;

  /// Consecutive delivered ACK outcomes before a one-step rate up probe.
  std::size_t up_after = 10;

  /// Consecutive failures at the floor rate before suspension.
  std::size_t suspend_after = 3;

  double initial_timeout = 20e-3;  ///< first suspension length (seconds)
  double max_timeout = 320e-3;     ///< exponential backoff cap

  /// Keep a per-transition decision trace (LinkStateMachine::transitions(),
  /// surfaced as SimResult::link_transitions). Off by default: long runs
  /// on flapping links would grow it without bound.
  bool record_transitions = false;

  /// Any layer active?
  [[nodiscard]] bool active() const noexcept {
    return rate_adaptation || feedback || suspension;
  }
};

/// One sequential-ACK outcome for one receiver — the single feedback
/// interface into the machine, shared by the analytic and trace-driven
/// simulator paths and by real PHY decodes (feedback_from_decode).
struct AckFeedback {
  double time = 0.0;  ///< when the outcome was learned (ACK time)
  bool ack_ok = true; ///< the sequential-ACK control frame itself survived
  std::uint32_t frames_ok = 0;      ///< MPDUs delivered in the subunit
  std::uint32_t frames_failed = 0;  ///< MPDUs lost (retrying or dropped)
  /// Optional fresh SNR observation folded into the smoothed estimate.
  double snr_db = std::numeric_limits<double>::quiet_NaN();

  /// The subunit counts as delivered when its ACK came back reporting at
  /// least one MPDU through (matches the sequential-ACK semantics the
  /// simulator and docs/ROBUSTNESS.md use).
  [[nodiscard]] bool delivered() const noexcept {
    return ack_ok && frames_ok > 0;
  }
};

/// Summarise a real CarpoolReceiver decode as ACK feedback: subframes
/// whose FCS verified count as delivered MPDUs, everything else decoded or
/// walked counts as failed. Lets testbed/PHY-trace experiments drive the
/// same policy code as the analytic simulator.
[[nodiscard]] AckFeedback feedback_from_decode(const CarpoolRxResult& rx,
                                               double time);

/// One per-STA scheduling decision inside a LinkSnapshot.
struct LinkDecision {
  /// PHY rate for this STA's subframes; 0 = caller's default rate.
  double rate_bps = 0.0;
  /// False = blocked out of downlink scheduling (suspended link).
  bool schedulable = true;
};

/// Immutable per-STA decision table consumed by ApQueues::build.
///
/// Indexing contract: the table is addressed by NodeId and **index 0 is
/// the AP**, which is never a valid downlink destination. Unlike the old
/// rates_for_snrs() convention — which silently pinned index 0 to the max
/// rate and let callers index it by accident — querying the AP here
/// throws std::logic_error. Stations beyond the table get defaults
/// (default rate, schedulable), so a snapshot built for N stations is
/// safe against late-joining queue indices.
class LinkSnapshot {
 public:
  LinkSnapshot() = default;  ///< empty: no policy, defaults for everyone

  /// `decisions[sta]` addressed by NodeId; decisions[0] is the AP slot
  /// and is ignored (kept so NodeId indexes directly).
  explicit LinkSnapshot(std::vector<LinkDecision> decisions)
      : decisions_(std::move(decisions)) {}

  [[nodiscard]] bool empty() const noexcept { return decisions_.empty(); }

  /// Rate for a STA's subframes (0 = caller's default). Throws
  /// std::logic_error for the AP (NodeId 0).
  [[nodiscard]] double rate_bps(NodeId sta) const;

  /// True when the STA must be held out of downlink scheduling. Throws
  /// std::logic_error for the AP (NodeId 0).
  [[nodiscard]] bool blocked(NodeId sta) const;

 private:
  std::vector<LinkDecision> decisions_;
};

/// A recorded state-machine decision (policy debugging, examples, tests).
struct LinkTransition {
  double time = 0.0;
  NodeId sta = 0;
  LinkHealth from = LinkHealth::kHealthy;
  LinkHealth to = LinkHealth::kHealthy;
  double rate_bps = 0.0;  ///< rate in force after the transition
};

/// Full per-STA state (inspection/tests; scheduling goes via LinkSnapshot).
struct StaLinkState {
  LinkHealth health = LinkHealth::kHealthy;
  double snr_db = 0.0;          ///< smoothed estimate
  std::size_t rate_index = 0;   ///< index into kHtRates
  std::size_t fail_streak = 0;  ///< consecutive failed ACK outcomes
  std::size_t success_streak = 0;
  double suspended_until = 0.0;
  double timeout = 0.0;         ///< next suspension length
  /// Sliding delivery window: bit i of `window_bits` is outcome i (newest
  /// = lowest bit), `window_len` entries valid.
  std::uint64_t window_bits = 0;
  std::size_t window_len = 0;

  [[nodiscard]] double delivery_ratio() const noexcept;
};

/// Owns one StaLinkState per station and turns ACK feedback into rate and
/// scheduling decisions. Deterministic: consumes no randomness, so
/// identical feedback sequences yield identical MCS schedules.
class LinkStateMachine {
 public:
  /// `default_rate_bps` is the rate used when rate selection is off (and
  /// the ladder entry feedback stepping starts from otherwise).
  LinkStateMachine(const LinkPolicyConfig& policy, std::size_t num_stas,
                   double default_rate_bps);

  /// Optional JSONL sink for mac.ls_transition / mac.lq_* events (not
  /// owned; only consulted when tracing is compiled in).
  void set_trace(obs::TraceSink* sink) noexcept { trace_ = sink; }

  /// Fold an SNR observation into the smoothed estimate (EWMA). Also used
  /// to seed initial link SNRs. Raises the rate ceiling immediately; a
  /// feedback-degraded rate stays until successes probe it back up.
  void observe_snr(NodeId sta, double snr_db);

  /// Report one sequential-ACK outcome for `sta`.
  void on_feedback(NodeId sta, const AckFeedback& feedback);

  /// Advance time: suspended STAs whose timeout expired become Probing
  /// (schedulable again). Call before taking a snapshot for a TXOP.
  void advance(double now);

  /// Decision table for ApQueues::build, reflecting current state.
  [[nodiscard]] LinkSnapshot snapshot() const;

  /// Current rate decision for one STA (0 = default rate). Valid for
  /// STAs only; NodeId 0 (the AP) throws std::logic_error.
  [[nodiscard]] double rate_bps(NodeId sta) const;

  [[nodiscard]] const StaLinkState& state(NodeId sta) const;
  [[nodiscard]] std::size_t num_stas() const noexcept {
    return states_.empty() ? 0 : states_.size() - 1;
  }
  [[nodiscard]] const LinkPolicyConfig& policy() const noexcept {
    return policy_;
  }

  [[nodiscard]] std::uint64_t suspensions() const noexcept {
    return suspensions_;
  }
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
  [[nodiscard]] std::uint64_t rate_downgrades() const noexcept {
    return rate_downgrades_;
  }
  [[nodiscard]] std::uint64_t rate_upgrades() const noexcept {
    return rate_upgrades_;
  }
  [[nodiscard]] std::uint64_t transition_count() const noexcept {
    return transition_count_;
  }
  /// Recorded only when policy().record_transitions.
  [[nodiscard]] const std::vector<LinkTransition>& transitions()
      const noexcept {
    return log_;
  }

 private:
  StaLinkState& sta_state(NodeId sta);
  [[nodiscard]] std::size_t ceiling_index(const StaLinkState& s) const;
  void set_health(StaLinkState& s, NodeId sta, LinkHealth to, double when);
  void settle_delivering_health(StaLinkState& s, NodeId sta, double when);
  void suspend(StaLinkState& s, NodeId sta, double when);

  LinkPolicyConfig policy_;
  double default_rate_bps_;
  std::size_t default_rate_index_;  ///< ladder entry point for feedback
  std::vector<StaLinkState> states_;  ///< index = NodeId; [0] unused (AP)
  obs::TraceSink* trace_ = nullptr;

  std::uint64_t suspensions_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t rate_downgrades_ = 0;
  std::uint64_t rate_upgrades_ = 0;
  std::uint64_t transition_count_ = 0;
  std::vector<LinkTransition> log_;
};

}  // namespace carpool::mac
