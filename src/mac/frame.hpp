#pragma once

// MAC-level frame and transmission descriptors for the event-driven
// simulator. (The bit-exact PHY frame lives in src/carpool; the MAC
// simulator works on sizes and durations, with reception judged by a
// PhyErrorModel, mirroring the paper's trace-driven methodology.)

#include <cstdint>
#include <limits>
#include <vector>

namespace carpool::mac {

using NodeId = std::uint32_t;

/// Node 0 is the AP; STAs are 1..num_stas.
inline constexpr NodeId kApNode = 0;

inline constexpr std::size_t kMacHeaderBytes = 28;   ///< header + FCS
inline constexpr std::size_t kMpduDelimiterBytes = 4;

struct MacFrame {
  std::uint64_t id = 0;
  NodeId src = kApNode;
  NodeId dst = 0;
  std::size_t payload_bytes = 0;   ///< IP payload (headers added by MAC)
  double enqueue_time = 0.0;
  unsigned retries = 0;

  [[nodiscard]] std::size_t on_air_bytes() const {
    return payload_bytes + kMacHeaderBytes;
  }
};

/// One receiver's share of a (possibly aggregated) transmission.
struct SubUnit {
  NodeId dst = 0;
  std::vector<MacFrame> frames;
  std::size_t bytes = 0;          ///< on-air bytes incl. MAC overheads
  std::size_t start_symbol = 0;   ///< first payload symbol in the frame
  std::size_t num_symbols = 0;
};

/// A fully-built MAC transmission ready for the air.
struct Transmission {
  NodeId src = kApNode;
  std::vector<SubUnit> subunits;
  double data_duration = 0.0;   ///< PLCP + headers + payload airtime
  double ack_overhead = 0.0;    ///< SIFS + ACK slots (sequential if multi)
  bool sequential_ack = false;  ///< Carpool / MU-Aggregation style

  [[nodiscard]] double total_duration() const {
    return data_duration + ack_overhead;
  }
  [[nodiscard]] std::size_t total_payload_bytes() const {
    std::size_t total = 0;
    for (const SubUnit& su : subunits) {
      for (const MacFrame& f : su.frames) total += f.payload_bytes;
    }
    return total;
  }
};

}  // namespace carpool::mac
