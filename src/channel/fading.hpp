#pragma once

// Time-varying frequency-selective channel model. This is the stand-in for
// the paper's indoor USRP links: a tapped-delay-line Rayleigh channel with
// an exponential power-delay profile whose taps evolve as a first-order
// Gauss-Markov process parameterised by coherence time, plus carrier
// frequency offset (CFO) and AWGN.
//
// The intra-frame tap evolution is what produces the paper's "BER bias"
// (Fig. 3): the preamble-based estimate goes stale over a long frame.
// Coherence times are swept over the 10 us - 100 ms range the paper cites.

#include <cstdint>
#include <span>

#include "channel/awgn.hpp"
#include "common/rng.hpp"
#include "dsp/complex_vec.hpp"

namespace carpool {

struct FadingConfig {
  double snr_db = 25.0;           ///< mean SNR at the receiver
  std::size_t num_taps = 4;       ///< multipath taps (1 = flat fading)
  double tap_decay = 0.5;         ///< power ratio between consecutive taps
  double coherence_time = 5e-3;   ///< seconds; smaller = faster variation
  double cfo_hz = 0.0;            ///< residual carrier frequency offset
  double sample_rate = 20e6;      ///< baseband sample rate (20 MHz channel)
  std::size_t update_interval = 80;  ///< samples between tap updates
                                     ///< (80 = one OFDM symbol incl. CP)
  bool rician_los = false;        ///< add a fixed line-of-sight component
  double rician_k_db = 6.0;       ///< LOS-to-scatter power ratio if rician
  /// Receiver sampling offset in whole samples (positive = the receiver's
  /// notion of "sample 0" is this many samples early). Small offsets stay
  /// inside the cyclic prefix and are absorbed by channel estimation.
  std::size_t timing_offset_samples = 0;
  std::uint64_t seed = 1;
};

class FadingChannel {
 public:
  explicit FadingChannel(const FadingConfig& config);

  /// Pass a waveform through the channel. Tap state, CFO phase and time
  /// advance across calls, so back-to-back frames see a continuously
  /// evolving channel, as on a real link.
  [[nodiscard]] CxVec transmit(std::span<const Cx> tx);

  /// Advance the channel state by `seconds` of idle air time.
  void idle(double seconds);

  /// Current frequency response sampled on an `n`-point grid (the true
  /// channel; used by tests and oracle decoding, never by receivers).
  [[nodiscard]] CxVec frequency_response(std::size_t n) const;

  [[nodiscard]] const FadingConfig& config() const noexcept { return config_; }

 private:
  void init_taps();
  void evolve(std::size_t samples);

  FadingConfig config_;
  Rng rng_;
  CxVec taps_;
  CxVec los_taps_;       // fixed LOS component (zero if not rician)
  double scatter_scale_ = 1.0;  // scale of the diffuse component
  double rho_ = 1.0;     // AR(1) coefficient per update interval
  double cfo_phase_ = 0.0;
  double cfo_step_ = 0.0;  // radians per sample
  std::size_t samples_since_update_ = 0;
};

}  // namespace carpool
