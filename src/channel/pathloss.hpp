#pragma once

// Log-distance path loss for the simulated 10 m x 10 m office testbed
// (paper Fig. 10), plus the mapping from the paper's USRP "power magnitude"
// knob (0.0125 - 0.2 of full scale) to transmit power in dBm.

#include <cstdint>

namespace carpool {

struct PathLossConfig {
  double reference_loss_db = 40.0;  ///< loss at 1 m, ~2.4 GHz indoor
  double exponent = 3.0;            ///< indoor office path-loss exponent
  /// Effective noise floor: thermal (-101 dBm over 20 MHz) + receiver
  /// noise figure + co-channel interference margin, chosen so the paper's
  /// USRP power sweep (0.0125-0.2) spans the same BER range as Fig. 11.
  double noise_floor_dbm = -86.0;
};

class PathLossModel {
 public:
  explicit PathLossModel(const PathLossConfig& config = {})
      : config_(config) {}

  /// Path loss in dB at distance `meters` (>= 0.1 m enforced).
  [[nodiscard]] double loss_db(double meters) const;

  /// SNR in dB at the receiver for a given transmit power.
  [[nodiscard]] double snr_db(double tx_power_dbm, double meters) const;

  [[nodiscard]] const PathLossConfig& config() const noexcept {
    return config_;
  }

 private:
  PathLossConfig config_;
};

/// The paper sets TX power as a fraction of the XCVR2450's 20 dBm full
/// scale ("power magnitude" 0.0125-0.2). The fraction scales amplitude, so
/// power in dBm is 20 + 20*log10(magnitude).
double usrp_power_magnitude_to_dbm(double magnitude);

}  // namespace carpool
