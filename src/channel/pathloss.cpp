#include "channel/pathloss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace carpool {

double PathLossModel::loss_db(double meters) const {
  const double d = std::max(meters, 0.1);
  return config_.reference_loss_db +
         10.0 * config_.exponent * std::log10(d);
}

double PathLossModel::snr_db(double tx_power_dbm, double meters) const {
  return tx_power_dbm - loss_db(meters) - config_.noise_floor_dbm;
}

double usrp_power_magnitude_to_dbm(double magnitude) {
  if (magnitude <= 0.0 || magnitude > 1.0) {
    throw std::invalid_argument("power magnitude must be in (0, 1]");
  }
  return 20.0 + amplitude_to_db(magnitude);
}

}  // namespace carpool
