#include "channel/shadowing.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace carpool::channel {
namespace {

/// Upper bound on time-grid size: a 20k x 64 grid is ~10 MB of doubles
/// worst case and fractions of that in practice.
constexpr std::size_t kMaxSteps = 20000;

/// Lower-triangular Cholesky factor of the spatial correlation matrix
/// R_ij = exp(-d_ij / d0), with a small diagonal jitter retry so nearly
/// coincident stations (R ~ all-ones) stay positive definite.
std::vector<double> cholesky_correlation(
    const std::vector<std::pair<double, double>>& pos, double d0) {
  const std::size_t n = pos.size();
  std::vector<double> r(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double dx = pos[i].first - pos[j].first;
      const double dy = pos[i].second - pos[j].second;
      const double d = std::sqrt(dx * dx + dy * dy);
      r[i * n + j] = std::exp(-d / std::max(d0, 1e-9));
    }
  }
  std::vector<double> l(n * n, 0.0);
  for (double jitter = 0.0; jitter < 1e-3; jitter = jitter * 10 + 1e-10) {
    bool ok = true;
    std::fill(l.begin(), l.end(), 0.0);
    for (std::size_t i = 0; i < n && ok; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double sum = r[i * n + j] + (i == j ? jitter : 0.0);
        for (std::size_t k = 0; k < j; ++k) {
          sum -= l[i * n + k] * l[j * n + k];
        }
        if (i == j) {
          if (sum <= 0.0) {
            ok = false;
            break;
          }
          l[i * n + i] = std::sqrt(sum);
        } else {
          l[i * n + j] = sum / l[j * n + j];
        }
      }
    }
    if (ok) return l;
  }
  // Degenerate geometry even with jitter: fall back to independent
  // stations (identity factor) rather than failing the campaign.
  std::fill(l.begin(), l.end(), 0.0);
  for (std::size_t i = 0; i < n; ++i) l[i * n + i] = 1.0;
  return l;
}

}  // namespace

CorrelatedShadowing::CorrelatedShadowing(
    const ShadowingConfig& cfg,
    std::vector<std::pair<double, double>> positions, double duration,
    std::uint64_t seed)
    : n_(positions.size()) {
  if (n_ == 0 || !(duration > 0.0) || !(cfg.sigma_db > 0.0)) {
    steps_ = 0;
    return;
  }
  dt_ = std::max(cfg.sample_interval_s, 1e-6);
  if (duration / dt_ > static_cast<double>(kMaxSteps)) {
    dt_ = duration / static_cast<double>(kMaxSteps);
  }
  steps_ = static_cast<std::size_t>(std::ceil(duration / dt_)) + 1;

  const std::vector<double> l =
      cholesky_correlation(positions, cfg.decorr_distance_m);
  const double a = std::exp(-dt_ / std::max(cfg.decorr_time_s, 1e-9));
  const double b = std::sqrt(std::max(0.0, 1.0 - a * a));

  grid_.assign(steps_ * n_, 0.0);
  Rng rng(seed);
  std::vector<double> w(n_, 0.0);
  std::vector<double> corr(n_, 0.0);
  for (std::size_t t = 0; t < steps_; ++t) {
    // Spatially correlated innovation: corr = L * w, w ~ N(0, I).
    for (double& x : w) x = rng.gaussian();
    for (std::size_t i = 0; i < n_; ++i) {
      double sum = 0.0;
      for (std::size_t k = 0; k <= i; ++k) sum += l[i * n_ + k] * w[k];
      corr[i] = sum;
    }
    double* row = &grid_[t * n_];
    if (t == 0) {
      for (std::size_t i = 0; i < n_; ++i) {
        row[i] = cfg.sigma_db * corr[i];
      }
    } else {
      const double* prev = &grid_[(t - 1) * n_];
      for (std::size_t i = 0; i < n_; ++i) {
        // AR(1) on the normalized process keeps the marginal variance at
        // sigma^2 for every step.
        row[i] = a * prev[i] + b * cfg.sigma_db * corr[i];
      }
    }
  }
}

double CorrelatedShadowing::offset_db(std::size_t sta_index,
                                      double time) const {
  if (sta_index >= n_ || steps_ == 0) return 0.0;
  const double pos = std::clamp(time / dt_, 0.0,
                                static_cast<double>(steps_ - 1));
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, steps_ - 1);
  const double frac = pos - static_cast<double>(lo);
  const double a = grid_[lo * n_ + sta_index];
  const double b = grid_[hi * n_ + sta_index];
  return a + frac * (b - a);
}

}  // namespace carpool::channel
