#pragma once

// Gudmundson-style correlated log-normal shadowing.
//
// Real indoor deployments do not shadow i.i.d.: two STAs behind the same
// pillar fade together, and one STA's shadowing decorrelates smoothly as
// time (people, doors) passes. This model produces a per-STA shadowing
// offset in dB that is
//
//   - log-normal:  offset_i(t) ~ N(0, sigma_db^2) marginally,
//   - spatially correlated:  E[z_i z_j] = exp(-d_ij / decorr_distance)
//     (Gudmundson '91 exponential correlation, applied across stations
//     through the Cholesky factor of the correlation matrix), and
//   - temporally correlated:  each grid step evolves as an AR(1) process
//     z_t = a z_{t-1} + sqrt(1 - a^2) L w_t  with a = exp(-dt / decorr_time),
//
// precomputed on a deterministic (seed-driven) time grid and linearly
// interpolated between grid points. Same seed + config + positions =>
// bit-identical offsets, so soak/fuzz campaigns using shadowing keep the
// repro-bundle replay contract (docs/SOAK.md).

#include <cstdint>
#include <utility>
#include <vector>

namespace carpool::channel {

struct ShadowingConfig {
  double sigma_db = 4.0;            ///< marginal std-dev of the offset
  double decorr_distance_m = 5.0;   ///< spatial e-folding distance
  double decorr_time_s = 1.0;       ///< temporal e-folding time
  double sample_interval_s = 0.1;   ///< time-grid step (clamped so the
                                    ///< grid never exceeds ~20k steps)
};

class CorrelatedShadowing {
 public:
  /// `positions[i]` is station i's representative (x, y) location in
  /// metres (one entry per station; index 0 = station 1). `duration` is
  /// the timeline length the grid must cover.
  CorrelatedShadowing(const ShadowingConfig& cfg,
                      std::vector<std::pair<double, double>> positions,
                      double duration, std::uint64_t seed);

  /// Shadowing offset in dB for 0-based station index `sta_index` at
  /// `time` seconds (linear interpolation on the grid; clamped at the
  /// ends). Out-of-range indices return 0.
  [[nodiscard]] double offset_db(std::size_t sta_index, double time) const;

  [[nodiscard]] std::size_t num_stations() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_steps() const noexcept { return steps_; }
  [[nodiscard]] double step_seconds() const noexcept { return dt_; }

 private:
  std::size_t n_ = 0;
  std::size_t steps_ = 0;
  double dt_ = 0.1;
  /// Row-major [step][station] offsets in dB.
  std::vector<double> grid_;
};

}  // namespace carpool::channel
