#include "channel/fading.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"
#include "dsp/fft.hpp"

namespace carpool {

FadingChannel::FadingChannel(const FadingConfig& config)
    : config_(config), rng_(config.seed) {
  if (config.num_taps == 0) {
    throw std::invalid_argument("FadingChannel: num_taps must be >= 1");
  }
  if (config.coherence_time <= 0.0 || config.sample_rate <= 0.0 ||
      config.update_interval == 0) {
    throw std::invalid_argument("FadingChannel: invalid timing config");
  }
  if (config.tap_decay <= 0.0 || config.tap_decay > 1.0) {
    throw std::invalid_argument("FadingChannel: tap_decay in (0,1]");
  }
  const double dt =
      static_cast<double>(config.update_interval) / config.sample_rate;
  rho_ = std::exp(-dt / config.coherence_time);
  cfo_step_ = kTwoPi * config.cfo_hz / config.sample_rate;
  init_taps();
}

void FadingChannel::init_taps() {
  const std::size_t L = config_.num_taps;
  // Exponential power-delay profile, normalised to unit total power.
  std::vector<double> power(L);
  double total = 0.0;
  for (std::size_t l = 0; l < L; ++l) {
    power[l] = std::pow(config_.tap_decay, static_cast<double>(l));
    total += power[l];
  }
  for (double& p : power) p /= total;

  double los_fraction = 0.0;
  if (config_.rician_los) {
    const double k = db_to_linear(config_.rician_k_db);
    los_fraction = k / (k + 1.0);
  }
  scatter_scale_ = 1.0 - los_fraction;

  taps_.assign(L, Cx{});
  los_taps_.assign(L, Cx{});
  // The LOS ray arrives on the first tap with a random but fixed phase.
  if (config_.rician_los) {
    los_taps_[0] = cx_exp(rng_.uniform(0.0, kTwoPi)) *
                   std::sqrt(power[0] * los_fraction);
  }
  for (std::size_t l = 0; l < L; ++l) {
    const double sigma = std::sqrt(power[l] * scatter_scale_ / 2.0);
    taps_[l] = los_taps_[l] +
               Cx{rng_.gaussian(0.0, sigma), rng_.gaussian(0.0, sigma)};
  }
}

void FadingChannel::evolve(std::size_t samples) {
  samples_since_update_ += samples;
  while (samples_since_update_ >= config_.update_interval) {
    samples_since_update_ -= config_.update_interval;
    const std::size_t L = config_.num_taps;
    std::vector<double> power(L);
    double total = 0.0;
    for (std::size_t l = 0; l < L; ++l) {
      power[l] = std::pow(config_.tap_decay, static_cast<double>(l));
      total += power[l];
    }
    const double innovation = std::sqrt(1.0 - rho_ * rho_);
    for (std::size_t l = 0; l < L; ++l) {
      const double p = power[l] / total * scatter_scale_;
      const double sigma = std::sqrt(p / 2.0);
      const Cx diffuse = taps_[l] - los_taps_[l];
      taps_[l] = los_taps_[l] + rho_ * diffuse +
                 innovation * Cx{rng_.gaussian(0.0, sigma),
                                 rng_.gaussian(0.0, sigma)};
    }
  }
}

CxVec FadingChannel::transmit(std::span<const Cx> tx) {
  // Receiver timing offset: prepend zeros so every sample appears `k`
  // positions late from the receiver's point of view.
  CxVec delayed;
  if (config_.timing_offset_samples > 0) {
    delayed.assign(config_.timing_offset_samples, Cx{});
    delayed.insert(delayed.end(), tx.begin(), tx.end());
    delayed.resize(tx.size());  // receiver window stays the same length
    tx = delayed;
  }
  CxVec rx(tx.size());
  const std::size_t L = config_.num_taps;
  std::size_t processed = 0;
  while (processed < tx.size()) {
    const std::size_t chunk =
        std::min(tx.size() - processed,
                 config_.update_interval - samples_since_update_);
    for (std::size_t n = processed; n < processed + chunk; ++n) {
      Cx acc{};
      for (std::size_t l = 0; l < L && l <= n; ++l) {
        acc += taps_[l] * tx[n - l];
      }
      acc *= cx_exp(cfo_phase_);
      cfo_phase_ = wrap_angle(cfo_phase_ + cfo_step_);
      rx[n] = acc;
    }
    evolve(chunk);
    processed += chunk;
  }

  const double signal_power = mean_power(tx);
  if (signal_power > 0.0) {
    add_awgn(rx, noise_power_for_snr(signal_power, config_.snr_db), rng_);
  }
  return rx;
}

void FadingChannel::idle(double seconds) {
  if (seconds < 0.0) throw std::invalid_argument("idle: negative duration");
  const auto samples = static_cast<std::size_t>(seconds * config_.sample_rate);
  evolve(samples);
  cfo_phase_ = wrap_angle(cfo_phase_ +
                          cfo_step_ * static_cast<double>(samples));
}

CxVec FadingChannel::frequency_response(std::size_t n) const {
  CxVec padded(n, Cx{});
  for (std::size_t l = 0; l < taps_.size() && l < n; ++l) padded[l] = taps_[l];
  fft_inplace(padded);
  return padded;
}

}  // namespace carpool
