#pragma once

// Additive white Gaussian noise.

#include <span>

#include "common/rng.hpp"
#include "dsp/complex_vec.hpp"

namespace carpool {

/// Add circularly-symmetric complex Gaussian noise of total power
/// `noise_power` (variance split evenly between I and Q) to `samples`.
void add_awgn(std::span<Cx> samples, double noise_power, Rng& rng);

/// Noise power that yields `snr_db` for a signal of power `signal_power`.
double noise_power_for_snr(double signal_power, double snr_db);

}  // namespace carpool
