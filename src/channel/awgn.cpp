#include "channel/awgn.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace carpool {

void add_awgn(std::span<Cx> samples, double noise_power, Rng& rng) {
  if (noise_power < 0.0) throw std::invalid_argument("negative noise power");
  if (noise_power == 0.0) return;
  const double sigma = std::sqrt(noise_power / 2.0);
  for (Cx& s : samples) {
    s += Cx{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma)};
  }
}

double noise_power_for_snr(double signal_power, double snr_db) {
  return signal_power / db_to_linear(snr_db);
}

}  // namespace carpool
