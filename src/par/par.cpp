#include "par/par.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace carpool::par {

namespace {

/// splitmix64: the repo's standard cheap seeded mixer (chaos::derive_seed
/// uses the same constants). Deterministic in its inputs, stateless.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t resolve_threads(long long cli_value) noexcept {
  if (cli_value == 0) return hardware_threads();
  if (cli_value > 0) return static_cast<std::size_t>(cli_value);
  const char* env = std::getenv("CARPOOL_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long long parsed = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 0) {
    // Garbage or negative: fall back to serial, but say so — a typo'd
    // CARPOOL_THREADS silently serializing a campaign is a nasty way to
    // lose a night of throughput. Warn once per process and leave a
    // breadcrumb counter for post-hoc triage.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "carpool: ignoring invalid CARPOOL_THREADS=\"%s\" "
                   "(want a non-negative integer); running serial\n",
                   env);
    }
    try {
      obs::Registry::current().counter("par.threads_env_invalid").add();
    } catch (...) {
      // resolve_threads is noexcept; a failed allocation in the counter
      // map must not terminate — the stderr warning already landed.
    }
    return 1;
  }
  return parsed == 0 ? hardware_threads()
                     : static_cast<std::size_t>(parsed);
}

FaultKind FaultPlan::at(std::size_t shard,
                        std::size_t attempt) const noexcept {
  for (const Entry& e : entries) {
    if (e.shard == shard && e.attempt == attempt) return e.kind;
  }
  return FaultKind::kNone;
}

FaultPlan FaultPlan::seeded(std::uint64_t seed, std::size_t shards,
                            double rate, FaultKind kind) {
  FaultPlan plan;
  for (std::size_t i = 0; i < shards; ++i) {
    const std::uint64_t draw = mix64(seed ^ mix64(i + 1));
    // Map the top 53 bits to [0, 1).
    const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
    if (u < rate) plan.entries.push_back({i, 0, kind});
  }
  return plan;
}

FaultPlan FaultPlan::window(std::size_t offset, std::size_t count) const {
  FaultPlan windowed;
  windowed.stall_seconds = stall_seconds;
  for (const Entry& e : entries) {
    if (e.shard >= offset && e.shard < offset + count) {
      windowed.entries.push_back({e.shard - offset, e.attempt, e.kind});
    }
  }
  return windowed;
}

double RetryPolicy::backoff_ms(std::size_t shard,
                               std::size_t attempt) const noexcept {
  if (attempt == 0) return 0.0;
  const double exp = backoff_base_ms * std::ldexp(1.0, static_cast<int>(
                         std::min<std::size_t>(attempt - 1, 30)));
  const std::uint64_t draw =
      mix64(backoff_seed ^ mix64(shard + 1) ^ mix64(attempt * 0x9e37ULL));
  const double jitter = 0.5 + static_cast<double>(draw >> 11) * 0x1.0p-53;
  return std::min(exp * jitter, backoff_max_ms);
}

std::string DegradedReport::to_string() const {
  std::string out = "degraded: " + std::to_string(quarantined.size()) +
                    " shard(s) quarantined, " + std::to_string(retries) +
                    " retr" + (retries == 1 ? "y" : "ies") + ", " +
                    std::to_string(stalls) + " stall(s)";
  for (const QuarantinedShard& q : quarantined) {
    out += "\n  shard " + std::to_string(q.index) + " after " +
           std::to_string(q.attempts) + " attempt(s): " + q.error;
  }
  return out;
}

namespace detail {

void backoff_sleep(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

bool run_attempt_with_watchdog(std::function<void()> body,
                               double timeout_seconds) {
  if (timeout_seconds <= 0.0) {
    body();
    return true;
  }
  // The attempt runs on its own thread; the shared block outlives both
  // sides so an overrunning (detached) attempt signals completion into
  // live memory even after the watchdog gave up on it.
  struct Shared {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
  };
  auto shared = std::make_shared<Shared>();
  std::thread attempt([shared, body = std::move(body)] {
    body();
    {
      const std::scoped_lock lock(shared->mutex);
      shared->done = true;
    }
    shared->cv.notify_all();
  });
  std::unique_lock lock(shared->mutex);
  const bool finished = shared->cv.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [&shared] { return shared->done; });
  lock.unlock();
  if (finished) {
    attempt.join();
    return true;
  }
  attempt.detach();  // abandoned: its outputs are never read
  return false;
}

}  // namespace detail

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = num_threads == 0 ? 1 : num_threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    const std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock,
                    [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      job();
    } catch (...) {
      const std::scoped_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::scoped_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace carpool::par
