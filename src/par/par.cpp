#include "par/par.hpp"

#include <cstdlib>

namespace carpool::par {

std::size_t hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t resolve_threads(long long cli_value) noexcept {
  if (cli_value == 0) return hardware_threads();
  if (cli_value > 0) return static_cast<std::size_t>(cli_value);
  const char* env = std::getenv("CARPOOL_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long long parsed = std::strtoll(env, &end, 10);
  if (end == env || parsed < 0) return 1;  // garbage or negative: serial
  return parsed == 0 ? hardware_threads()
                     : static_cast<std::size_t>(parsed);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = num_threads == 0 ? 1 : num_threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    const std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock,
                    [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      job();
    } catch (...) {
      const std::scoped_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::scoped_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace carpool::par
