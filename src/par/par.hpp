#pragma once

// carpool::par — parallel sweep engine (docs/PARALLELISM.md).
//
// Parameter sweeps, bench rung ladders, and chaos soak repeats are
// embarrassingly parallel: every (seed, repeat, scenario, config-point)
// job is an independent deterministic simulation. This module fans such
// jobs across a fixed-size thread pool and merges their outputs in
// *stable job-index order*, so the aggregate — result vectors, obs
// counters/gauges, float reductions — is bit-for-bit identical at any
// thread count, including the serial threads=1 path.
//
// The determinism contract rests on three rules:
//   1. Jobs are pure functions of their index (same seeds, same inputs,
//      no shared mutable state between jobs).
//   2. Each parallel job runs under a shard-local obs::Registry
//      (Registry::ScopedCurrent), so instrumentation from concurrent
//      shards never interleaves; shards merge into the ambient registry
//      in job-index order after the pool drains.
//   3. Float aggregates are reduced in job-index order (use KahanSum for
//      new aggregations; the compensation makes long reductions stable
//      without changing the order-determinism argument).
//
// Wall-clock latency histograms (OBS_SCOPED_TIMER) are inherently
// nondeterministic run to run; they merge bucket-wise but are excluded
// from obs::Registry::fingerprint(), the digest CI compares between
// serial and parallel runs.

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace carpool::par {

/// max(1, std::thread::hardware_concurrency()).
[[nodiscard]] std::size_t hardware_threads() noexcept;

/// Resolve a worker count from the conventional `--threads N` /
/// CARPOOL_THREADS knob shared by every sweep consumer:
///   cli_value < 0  — flag absent: use CARPOOL_THREADS if set, else 1
///                    (serial, today's exact code path);
///   cli_value == 0 — "auto": hardware_threads();
///   cli_value > 0  — exactly that many workers.
/// A CARPOOL_THREADS value of 0 likewise means "auto"; garbage is
/// ignored (serial).
[[nodiscard]] std::size_t resolve_threads(long long cli_value = -1) noexcept;

/// Compensated (Kahan) summation: deterministic for a fixed add order and
/// far less sensitive to the order-of-magnitude spread of per-shard
/// aggregates than naive accumulation.
class KahanSum {
 public:
  void add(double v) noexcept {
    const double y = v - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  [[nodiscard]] double value() const noexcept { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Fixed-size worker pool over a FIFO job queue. Jobs must not throw —
/// an exception escaping a job is captured (first one wins) and rethrown
/// from wait(); the pool itself keeps draining so shutdown never hangs.
/// The destructor drains the queue and joins every worker.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> job);

  /// Block until every submitted job has finished, then rethrow the first
  /// captured exception (if any). The pool stays usable afterwards.
  void wait();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Coordinates handed to every sharded job.
struct ShardInfo {
  std::size_t index = 0;  ///< job index, the determinism coordinate
  std::size_t total = 0;  ///< job count in this sharded run
  /// Shard-local metric scope (already installed as Registry::current()
  /// on the worker thread), or nullptr in the inline threads<=1 path
  /// where jobs write straight into the ambient registry exactly as a
  /// serial program would.
  obs::Registry* metrics = nullptr;
  /// Shard-local span buffer (already installed as
  /// obs::SpanCollector::current() on the worker thread). Non-null only
  /// when the caller had a collector installed when fanning out; inline
  /// jobs write straight into the ambient collector.
  obs::SpanCollector* spans = nullptr;
};

/// A sharded run's raw output: per-job results plus each shard's private
/// metric registry, both indexed by job. `metrics` is empty when the run
/// executed inline (threads<=1) — the ambient registry already holds
/// everything, which IS the serial code path.
template <class R>
struct Sharded {
  std::vector<R> results;
  std::vector<std::unique_ptr<obs::Registry>> metrics;
  /// Per-shard span buffers, indexed by job like `metrics`. Populated
  /// only when a SpanCollector was installed at fan-out time (tracing
  /// compiled in AND the driver opted in); empty otherwise, so the
  /// default build never allocates span state.
  std::vector<std::unique_ptr<obs::SpanCollector>> spans;
};

/// Run `jobs` independent jobs — `fn(const ShardInfo&) -> R` — across at
/// most `threads` workers and return results + shard registries WITHOUT
/// merging. Callers that consume only a prefix of the jobs (e.g. the soak
/// runner discarding over-run repeats past a frame budget) merge the
/// shard registries they actually keep, in index order.
///
/// threads <= 1 (or a single job) runs every job inline on the calling
/// thread, in index order, against the ambient registry: byte-for-byte
/// the behaviour of the pre-parallel serial loops.
///
/// R must be default-constructible and movable. If any job throws, the
/// lowest-index exception is rethrown after the pool drains (results and
/// shard registries are discarded), matching a serial loop that died at
/// the first failing job.
template <class Fn>
[[nodiscard]] auto run_sharded_keep(std::size_t jobs, std::size_t threads,
                                    Fn&& fn)
    -> Sharded<std::decay_t<std::invoke_result_t<Fn&, const ShardInfo&>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, const ShardInfo&>>;
  Sharded<R> out;
  out.results.resize(jobs);
  if (jobs == 0) return out;

  const std::size_t workers = std::min(threads == 0 ? 1 : threads, jobs);
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) {
      const ShardInfo info{i, jobs, nullptr};
      out.results[i] = fn(info);
    }
    return out;
  }

  out.metrics.resize(jobs);
  // Shard span buffers only when the caller is actually collecting spans
  // (a collector is installed on the fanning thread); workers must not
  // write into the caller's single-threaded collector.
  const bool collect_spans = obs::SpanCollector::current() != nullptr;
  if (collect_spans) out.spans.resize(jobs);
  std::vector<std::exception_ptr> errors(jobs);
  {
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < jobs; ++i) {
      out.metrics[i] = std::make_unique<obs::Registry>();
      if (collect_spans) {
        out.spans[i] = std::make_unique<obs::SpanCollector>();
      }
      pool.submit([&, i] {
        const obs::Registry::ScopedCurrent scope(*out.metrics[i]);
        std::optional<obs::SpanCollector::ScopedCurrent> span_scope;
        if (out.spans.size() == jobs) span_scope.emplace(*out.spans[i]);
        try {
          const ShardInfo info{i, jobs, out.metrics[i].get(),
                               out.spans.size() == jobs ? out.spans[i].get()
                                                        : nullptr};
          out.results[i] = fn(info);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait();
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return out;
}

/// Deterministic sharded map: run_sharded_keep + merge every shard's
/// metrics into the ambient registry (Registry::current()) in job-index
/// order. This is the right call for sweeps that consume every job —
/// bench rung ladders, parameter grids. Returns the per-job results.
template <class Fn>
[[nodiscard]] auto run_sharded(std::size_t jobs, std::size_t threads,
                               Fn&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const ShardInfo&>>> {
  auto sharded = run_sharded_keep(jobs, threads, std::forward<Fn>(fn));
  obs::Registry& target = obs::Registry::current();
  for (const auto& shard : sharded.metrics) {
    if (shard != nullptr) target.merge_from(*shard);
  }
  if (obs::SpanCollector* spans = obs::SpanCollector::current();
      spans != nullptr) {
    // Index-ordered like the metric merge, so the merged span sequence
    // (ids included) is bit-identical to a serial run's.
    for (const auto& shard : sharded.spans) {
      if (shard != nullptr) spans->merge_from(*shard);
    }
  }
  return std::move(sharded.results);
}

}  // namespace carpool::par
