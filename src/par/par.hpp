#pragma once

// carpool::par — parallel sweep engine (docs/PARALLELISM.md).
//
// Parameter sweeps, bench rung ladders, and chaos soak repeats are
// embarrassingly parallel: every (seed, repeat, scenario, config-point)
// job is an independent deterministic simulation. This module fans such
// jobs across a fixed-size thread pool and merges their outputs in
// *stable job-index order*, so the aggregate — result vectors, obs
// counters/gauges, float reductions — is bit-for-bit identical at any
// thread count, including the serial threads=1 path.
//
// The determinism contract rests on three rules:
//   1. Jobs are pure functions of their index (same seeds, same inputs,
//      no shared mutable state between jobs).
//   2. Each parallel job runs under a shard-local obs::Registry
//      (Registry::ScopedCurrent), so instrumentation from concurrent
//      shards never interleaves; shards merge into the ambient registry
//      in job-index order after the pool drains.
//   3. Float aggregates are reduced in job-index order (use KahanSum for
//      new aggregations; the compensation makes long reductions stable
//      without changing the order-determinism argument).
//
// Wall-clock latency histograms (OBS_SCOPED_TIMER) are inherently
// nondeterministic run to run; they merge bucket-wise but are excluded
// from obs::Registry::fingerprint(), the digest CI compares between
// serial and parallel runs.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace carpool::par {

/// max(1, std::thread::hardware_concurrency()).
[[nodiscard]] std::size_t hardware_threads() noexcept;

/// Resolve a worker count from the conventional `--threads N` /
/// CARPOOL_THREADS knob shared by every sweep consumer:
///   cli_value < 0  — flag absent: use CARPOOL_THREADS if set, else 1
///                    (serial, today's exact code path);
///   cli_value == 0 — "auto": hardware_threads();
///   cli_value > 0  — exactly that many workers.
/// A CARPOOL_THREADS value of 0 likewise means "auto"; garbage is
/// ignored (serial).
[[nodiscard]] std::size_t resolve_threads(long long cli_value = -1) noexcept;

/// Compensated (Kahan) summation: deterministic for a fixed add order and
/// far less sensitive to the order-of-magnitude spread of per-shard
/// aggregates than naive accumulation.
class KahanSum {
 public:
  void add(double v) noexcept {
    const double y = v - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  [[nodiscard]] double value() const noexcept { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Fixed-size worker pool over a FIFO job queue. Jobs must not throw —
/// an exception escaping a job is captured (first one wins) and rethrown
/// from wait(); the pool itself keeps draining so shutdown never hangs.
/// The destructor drains the queue and joins every worker.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> job);

  /// Block until every submitted job has finished, then rethrow the first
  /// captured exception (if any). The pool stays usable afterwards.
  void wait();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Coordinates handed to every sharded job.
struct ShardInfo {
  std::size_t index = 0;  ///< job index, the determinism coordinate
  std::size_t total = 0;  ///< job count in this sharded run
  /// Shard-local metric scope (already installed as Registry::current()
  /// on the worker thread), or nullptr in the inline threads<=1 path
  /// where jobs write straight into the ambient registry exactly as a
  /// serial program would.
  obs::Registry* metrics = nullptr;
  /// Shard-local span buffer (already installed as
  /// obs::SpanCollector::current() on the worker thread). Non-null only
  /// when the caller had a collector installed when fanning out; inline
  /// jobs write straight into the ambient collector.
  obs::SpanCollector* spans = nullptr;
};

/// A sharded run's raw output: per-job results plus each shard's private
/// metric registry, both indexed by job. `metrics` is empty when the run
/// executed inline (threads<=1) — the ambient registry already holds
/// everything, which IS the serial code path.
template <class R>
struct Sharded {
  std::vector<R> results;
  std::vector<std::unique_ptr<obs::Registry>> metrics;
  /// Per-shard span buffers, indexed by job like `metrics`. Populated
  /// only when a SpanCollector was installed at fan-out time (tracing
  /// compiled in AND the driver opted in); empty otherwise, so the
  /// default build never allocates span state.
  std::vector<std::unique_ptr<obs::SpanCollector>> spans;
};

// ---------------------------------------------------------------------------
// Fault tolerance (docs/FAULT_TOLERANCE.md)
// ---------------------------------------------------------------------------

/// What an injected fault does to a (shard, attempt) execution.
enum class FaultKind {
  kNone = 0,
  kThrow,  ///< the job throws std::runtime_error after running
  kStall,  ///< the job sleeps past the watchdog before returning
  kTorn,   ///< the job returns a default-constructed ("torn") result
};

/// Deterministic fault-injection plan, mirroring impair::ImpairmentChain:
/// a fixed table of (shard, attempt) -> FaultKind entries consulted by
/// run_sharded_resilient before each attempt. Because the table is data,
/// not randomness sampled at run time, the same plan produces the same
/// fault schedule at any thread count.
struct FaultPlan {
  struct Entry {
    std::size_t shard = 0;
    std::size_t attempt = 0;  ///< 0-based attempt number the fault hits
    FaultKind kind = FaultKind::kThrow;
  };

  std::vector<Entry> entries;
  /// How long a kStall fault sleeps. Tests pair a short stall with an
  /// even shorter RetryPolicy::watchdog_seconds.
  double stall_seconds = 0.25;

  /// Fault scheduled for this (shard, attempt), or kNone.
  [[nodiscard]] FaultKind at(std::size_t shard,
                             std::size_t attempt) const noexcept;

  /// Seeded plan: each of `shards` shards independently gets a
  /// first-attempt fault of `kind` with probability ~`rate` drawn from a
  /// splitmix64 stream over (seed, shard). Deterministic in its inputs.
  [[nodiscard]] static FaultPlan seeded(std::uint64_t seed,
                                        std::size_t shards, double rate,
                                        FaultKind kind = FaultKind::kThrow);

  /// Re-base this plan onto a window of shards [offset, offset+count):
  /// entries inside the window survive with shard indices shifted to be
  /// window-local; entries outside are dropped. Lets a campaign address
  /// faults by global repeat number while fanning out wave by wave.
  [[nodiscard]] FaultPlan window(std::size_t offset,
                                 std::size_t count) const;
};

/// Retry + watchdog policy for run_sharded_resilient. Disabled by
/// default (max_attempts == 1, no watchdog): the resilient runner then
/// degenerates to run_sharded_keep semantics.
struct RetryPolicy {
  std::size_t max_attempts = 1;  ///< total tries per shard (>= 1)
  double backoff_base_ms = 1.0;  ///< first retry delay before jitter
  double backoff_max_ms = 100.0;
  /// Seed for the deterministic backoff jitter stream. Backoff only
  /// shifts wall clock, never results, so this does not participate in
  /// the determinism contract — it exists so retry storms de-correlate
  /// reproducibly.
  std::uint64_t backoff_seed = 0x6261636bULL;
  /// Per-attempt wall-clock budget in seconds; <= 0 disables the
  /// watchdog. An attempt that overruns is abandoned (its worker thread
  /// is detached and its outputs discarded) and counts as a failure.
  double watchdog_seconds = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return max_attempts > 1 || watchdog_seconds > 0.0;
  }

  /// Deterministic backoff before `attempt` (1-based retry number) of
  /// `shard`: base * 2^(attempt-1), jittered to [0.5, 1.5) by a
  /// splitmix64 draw over (backoff_seed, shard, attempt), clamped to
  /// backoff_max_ms.
  [[nodiscard]] double backoff_ms(std::size_t shard,
                                  std::size_t attempt) const noexcept;
};

/// One shard that exhausted its retry budget.
struct QuarantinedShard {
  std::size_t index = 0;
  std::size_t attempts = 0;
  std::string error;  ///< what() of the final failure (or "stall")
};

/// Outcome summary of a resilient sharded run: which shards were
/// quarantined (their result slots hold default-constructed values and
/// their metric registries are dropped) and how much retrying happened.
struct DegradedReport {
  std::vector<QuarantinedShard> quarantined;
  std::size_t retries = 0;  ///< extra attempts beyond the first, total
  std::size_t stalls = 0;   ///< attempts abandoned by the watchdog

  [[nodiscard]] bool degraded() const noexcept { return !quarantined.empty(); }
  [[nodiscard]] std::string to_string() const;
};

namespace detail {

/// Sleep for a deterministic-in-inputs backoff (wall clock only).
void backoff_sleep(double ms);

/// Run `body` with a wall-clock budget. timeout_seconds <= 0 runs it
/// inline and returns true. Otherwise `body` runs on a fresh thread;
/// if it finishes in time the thread is joined and true is returned,
/// else the thread is detached (the attempt's shared state keeps it
/// memory-safe until it dies) and false is returned.
[[nodiscard]] bool run_attempt_with_watchdog(std::function<void()> body,
                                             double timeout_seconds);

/// Thrown into a job by FaultKind::kThrow.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

}  // namespace detail

/// Run `jobs` independent jobs — `fn(const ShardInfo&) -> R` — across at
/// most `threads` workers and return results + shard registries WITHOUT
/// merging. Callers that consume only a prefix of the jobs (e.g. the soak
/// runner discarding over-run repeats past a frame budget) merge the
/// shard registries they actually keep, in index order.
///
/// threads <= 1 (or a single job) runs every job inline on the calling
/// thread, in index order, against the ambient registry: byte-for-byte
/// the behaviour of the pre-parallel serial loops.
///
/// R must be default-constructible and movable. If any job throws, the
/// lowest-index exception is rethrown after the pool drains (results and
/// shard registries are discarded), matching a serial loop that died at
/// the first failing job.
template <class Fn>
[[nodiscard]] auto run_sharded_keep(std::size_t jobs, std::size_t threads,
                                    Fn&& fn)
    -> Sharded<std::decay_t<std::invoke_result_t<Fn&, const ShardInfo&>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, const ShardInfo&>>;
  Sharded<R> out;
  out.results.resize(jobs);
  if (jobs == 0) return out;

  const std::size_t workers = std::min(threads == 0 ? 1 : threads, jobs);
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) {
      const ShardInfo info{i, jobs, nullptr};
      out.results[i] = fn(info);
    }
    return out;
  }

  out.metrics.resize(jobs);
  // Shard span buffers only when the caller is actually collecting spans
  // (a collector is installed on the fanning thread); workers must not
  // write into the caller's single-threaded collector.
  const bool collect_spans = obs::SpanCollector::current() != nullptr;
  if (collect_spans) out.spans.resize(jobs);
  std::vector<std::exception_ptr> errors(jobs);
  {
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < jobs; ++i) {
      out.metrics[i] = std::make_unique<obs::Registry>();
      if (collect_spans) {
        out.spans[i] = std::make_unique<obs::SpanCollector>();
      }
      pool.submit([&, i] {
        const obs::Registry::ScopedCurrent scope(*out.metrics[i]);
        std::optional<obs::SpanCollector::ScopedCurrent> span_scope;
        if (out.spans.size() == jobs) span_scope.emplace(*out.spans[i]);
        try {
          const ShardInfo info{i, jobs, out.metrics[i].get(),
                               out.spans.size() == jobs ? out.spans[i].get()
                                                        : nullptr};
          out.results[i] = fn(info);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait();
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return out;
}

/// Fault-tolerant variant of run_sharded_keep (docs/FAULT_TOLERANCE.md):
/// each shard gets up to `policy.max_attempts` tries, each attempt under
/// an optional wall-clock watchdog, with deterministic seeded backoff
/// between tries. Every attempt runs against *attempt-local* metric and
/// span state that is committed into the returned Sharded<R> only on
/// success, so a failed or abandoned attempt leaves zero trace in the
/// merged output — a successful retry is bit-identical to a first-try
/// success. Shards that exhaust the budget are quarantined: their result
/// slots keep default-constructed values, their registry slots stay
/// null, and they are listed in `*degraded` (which is always assigned
/// when non-null). When `degraded == nullptr`, a quarantined shard
/// instead rethrows (lowest index first), matching run_sharded_keep.
///
/// `faults`, when non-null, injects the planned failures — the test
/// harness for this machinery. Unlike run_sharded_keep, the threads<=1
/// path also uses attempt-local registries (committed in index order),
/// so fault injection and retry behave identically at any thread count.
///
/// Ops counters (par.shard_retry / par.shard_stall /
/// par.shard_quarantine) are recorded on the *calling* thread's ambient
/// registry after the pool drains; the "ops" catalog layer is excluded
/// from Registry::fingerprint(), so retries never perturb the
/// determinism canary.
template <class Fn>
[[nodiscard]] auto run_sharded_resilient(std::size_t jobs,
                                         std::size_t threads,
                                         const RetryPolicy& policy,
                                         const FaultPlan* faults, Fn&& fn,
                                         DegradedReport* degraded = nullptr)
    -> Sharded<std::decay_t<std::invoke_result_t<Fn&, const ShardInfo&>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, const ShardInfo&>>;
  Sharded<R> out;
  out.results.resize(jobs);
  if (degraded != nullptr) *degraded = DegradedReport{};
  if (jobs == 0) return out;

  out.metrics.resize(jobs);
  const bool collect_spans = obs::SpanCollector::current() != nullptr;
  if (collect_spans) out.spans.resize(jobs);

  // The callable is shared so a watchdog-abandoned attempt thread can
  // keep running it safely after this frame returns control to the
  // caller. Anything the callable needs must be captured *by value*
  // (cheap handles or shared_ptr ownership) when a watchdog is armed:
  // an abandoned attempt can outlive not just this frame but the
  // caller's entire stack, so by-reference captures of locals are a
  // use-after-scope waiting to happen. (The soak runner's wave jobs
  // capture a shared_ptr campaign context for exactly this reason.)
  auto shared_fn = std::make_shared<std::decay_t<Fn>>(std::forward<Fn>(fn));

  struct ShardState {
    std::size_t attempts = 0;
    std::size_t stalls = 0;
    bool ok = false;
    std::string error;
  };
  std::vector<ShardState> states(jobs);

  const std::size_t max_attempts = std::max<std::size_t>(1, policy.max_attempts);
  const double stall_seconds = faults != nullptr ? faults->stall_seconds : 0.0;

  // Runs one shard's full attempt loop. Job exceptions are captured per
  // attempt inside `body`; this outer try/catch additionally contains
  // failures of the retry machinery itself (allocation of attempt
  // state, error-string construction) by quarantining the shard — a
  // bad_alloc here must not escape into ThreadPool::wait() and abort
  // the very campaign this machinery exists to keep alive.
  auto run_shard = [&out, &states, &policy, faults, shared_fn, jobs,
                    max_attempts, stall_seconds,
                    collect_spans](std::size_t i) {
    ShardState& st = states[i];
    try {
      for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
          detail::backoff_sleep(policy.backoff_ms(i, attempt));
        }
        st.attempts = attempt + 1;
        const FaultKind fault =
            faults != nullptr ? faults->at(i, attempt) : FaultKind::kNone;

        // Attempt-local state owned jointly with the attempt body, so an
        // abandoned attempt finishes (or dies) against live memory.
        struct Attempt {
          std::unique_ptr<obs::Registry> metrics =
              std::make_unique<obs::Registry>();
          std::unique_ptr<obs::SpanCollector> spans;
          R result{};
          std::exception_ptr error;
        };
        auto att = std::make_shared<Attempt>();
        if (collect_spans) {
          att->spans = std::make_unique<obs::SpanCollector>();
        }

        auto body = [att, shared_fn, i, jobs, fault, stall_seconds] {
          const obs::Registry::ScopedCurrent scope(*att->metrics);
          std::optional<obs::SpanCollector::ScopedCurrent> span_scope;
          if (att->spans != nullptr) span_scope.emplace(*att->spans);
          try {
            const ShardInfo info{i, jobs, att->metrics.get(),
                                 att->spans.get()};
            R r = (*shared_fn)(info);
            switch (fault) {
              case FaultKind::kThrow:
                throw detail::InjectedFault("injected fault (shard " +
                                            std::to_string(i) + ")");
              case FaultKind::kStall:
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(stall_seconds));
                break;
              case FaultKind::kTorn:
                r = R{};
                break;
              case FaultKind::kNone:
                break;
            }
            att->result = std::move(r);
          } catch (...) {
            att->error = std::current_exception();
          }
        };

        bool finished = true;
        if (policy.watchdog_seconds > 0.0) {
          finished = detail::run_attempt_with_watchdog(
              body, policy.watchdog_seconds);
        } else {
          body();
        }

        if (!finished) {
          ++st.stalls;
          st.error = "stall: watchdog expired after " +
                     std::to_string(policy.watchdog_seconds) + "s";
          continue;
        }
        if (att->error != nullptr) {
          try {
            std::rethrow_exception(att->error);
          } catch (const std::exception& e) {
            st.error = e.what();
          } catch (...) {
            st.error = "unknown exception";
          }
          continue;
        }
        if (fault == FaultKind::kTorn) {
          st.error = "torn result (injected)";
          continue;
        }

        // Success: commit this attempt's outputs. Failed attempts above
        // never reach here, so their metric/span state is dropped whole.
        out.results[i] = std::move(att->result);
        out.metrics[i] = std::move(att->metrics);
        if (collect_spans) out.spans[i] = std::move(att->spans);
        st.ok = true;
        return;
      }
    } catch (const std::exception& e) {
      st.ok = false;
      try {
        st.error = e.what();
      } catch (...) {
        st.error.clear();
      }
    } catch (...) {
      st.ok = false;
    }
  };

  const std::size_t workers = std::min(threads == 0 ? 1 : threads, jobs);
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) run_shard(i);
  } else {
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < jobs; ++i) {
      pool.submit([&run_shard, i] { run_shard(i); });
    }
    pool.wait();
  }

  DegradedReport report;
  for (std::size_t i = 0; i < jobs; ++i) {
    const ShardState& st = states[i];
    if (st.attempts > 1) report.retries += st.attempts - 1;
    report.stalls += st.stalls;
    if (!st.ok) report.quarantined.push_back({i, st.attempts, st.error});
  }

  // Ops bookkeeping on the calling thread; the "ops" layer is excluded
  // from Registry::fingerprint() so this never perturbs determinism
  // comparisons between faulted and fault-free runs.
  obs::Registry& ambient = obs::Registry::current();
  if (report.retries > 0) {
    ambient.counter("par.shard_retry").add(report.retries);
  }
  if (report.stalls > 0) {
    ambient.counter("par.shard_stall").add(report.stalls);
  }
  if (!report.quarantined.empty()) {
    ambient.counter("par.shard_quarantine").add(report.quarantined.size());
  }

  if (report.degraded() && degraded == nullptr) {
    const QuarantinedShard& first = report.quarantined.front();
    throw std::runtime_error("shard " + std::to_string(first.index) +
                             " failed after " +
                             std::to_string(first.attempts) +
                             " attempts: " + first.error);
  }
  if (degraded != nullptr) *degraded = std::move(report);
  return out;
}

/// Deterministic sharded map: run_sharded_keep + merge every shard's
/// metrics into the ambient registry (Registry::current()) in job-index
/// order. This is the right call for sweeps that consume every job —
/// bench rung ladders, parameter grids. Returns the per-job results.
template <class Fn>
[[nodiscard]] auto run_sharded(std::size_t jobs, std::size_t threads,
                               Fn&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const ShardInfo&>>> {
  auto sharded = run_sharded_keep(jobs, threads, std::forward<Fn>(fn));
  obs::Registry& target = obs::Registry::current();
  for (const auto& shard : sharded.metrics) {
    if (shard != nullptr) target.merge_from(*shard);
  }
  if (obs::SpanCollector* spans = obs::SpanCollector::current();
      spans != nullptr) {
    // Index-ordered like the metric merge, so the merged span sequence
    // (ids included) is bit-identical to a serial run's.
    for (const auto& shard : sharded.spans) {
      if (shard != nullptr) spans->merge_from(*shard);
    }
  }
  return std::move(sharded.results);
}

}  // namespace carpool::par
