#pragma once

// Multicast RTS/CTS for hidden-terminal mitigation (paper Sec. 4.2,
// Fig. 7): the AP sends one RTS that carries the same A-HDR as the
// upcoming data frame; the named receivers answer with a sequence of
// legacy CTS frames whose NAVs cover the rest of the exchange. Receivers
// derive their CTS slot from their subframe position, exactly like
// sequential ACKs.

#include <optional>

#include "carpool/bloom.hpp"
#include "carpool/transceiver.hpp"
#include "dsp/complex_vec.hpp"

namespace carpool {

/// RTS body carried after the A-HDR: transmitter address + the duration
/// (microseconds, rounded) the whole exchange will occupy, + FCS.
struct RtsInfo {
  MacAddress transmitter;
  std::uint32_t duration_us = 0;
};

/// Build a Carpool RTS waveform: preamble + A-HDR (same filter as the data
/// frame would carry) + one BPSK-1/2 subframe holding the RTS body.
CxVec build_carpool_rts(std::span<const SubframeSpec> data_subframes,
                        const RtsInfo& info, std::size_t bloom_hashes = 4);

struct CarpoolRtsResult {
  bool valid = false;              ///< body decoded and FCS passed
  RtsInfo info;
  std::vector<std::size_t> my_slots;  ///< CTS/ACK order positions for self
};

/// Decode an RTS at a station; `self` determines the matched CTS slots.
CarpoolRtsResult receive_carpool_rts(std::span<const Cx> waveform,
                                     const MacAddress& self,
                                     std::size_t bloom_hashes = 4);

/// Build a legacy CTS (14-byte body at the basic rate). `nav_us` indicates
/// the end of the whole sequential-ACK sequence per Sec. 4.2.
CxVec build_cts(const MacAddress& receiver, std::uint32_t nav_us);

struct CtsResult {
  bool valid = false;
  MacAddress receiver;
  std::uint32_t nav_us = 0;
};

/// Decode a legacy CTS waveform.
CtsResult receive_cts(std::span<const Cx> waveform);

}  // namespace carpool
