#include "carpool/compat.hpp"

#include "phy/sync.hpp"

namespace carpool {

FrameKind classify_waveform(std::span<const Cx> waveform) {
  if (waveform.size() < kPreambleLen + kSymbolLen) {
    return FrameKind::kUndecodable;
  }
  // A frame must announce itself with an STF; random noise occasionally
  // yields a parseable SIG, so gate on packet detection first.
  const auto sync = detect_frame(
      waveform.first(std::min(waveform.size(), kPreambleLen)));
  if (!sync || sync->frame_start > 32) return FrameKind::kUndecodable;
  const Frontend fe = receive_frontend(waveform);
  if (!fe.ok()) return FrameKind::kUndecodable;
  const std::span<const Cx> wave(fe.corrected);

  // Hypothesis 1: legacy — the first symbol is a valid SIG.
  {
    const CxVec bins =
        extract_symbol(wave.subspan(fe.data_start, kSymbolLen));
    const SymbolEqualization eq = equalize_symbol(bins, fe.h, 0);
    if (decode_sig(eq.data, eq.gains).has_value()) {
      return FrameKind::kLegacy;
    }
  }

  // Hypothesis 2: Carpool — two A-HDR symbols followed by a valid SIG.
  if (wave.size() >= fe.data_start + 3 * kSymbolLen) {
    const CxVec bins = extract_symbol(
        wave.subspan(fe.data_start + 2 * kSymbolLen, kSymbolLen));
    const SymbolEqualization eq = equalize_symbol(bins, fe.h, 2);
    if (decode_sig(eq.data, eq.gains).has_value()) {
      return FrameKind::kCarpool;
    }
  }
  return FrameKind::kUndecodable;
}

UniversalRxResult UniversalReceiver::receive(
    std::span<const Cx> waveform) const {
  UniversalRxResult result;
  result.kind = classify_waveform(waveform);
  switch (result.kind) {
    case FrameKind::kLegacy:
      result.legacy = legacy_rx_.receive(waveform);
      break;
    case FrameKind::kCarpool:
      result.carpool = carpool_rx_.receive(waveform);
      break;
    case FrameKind::kUndecodable:
      break;
  }
  return result;
}

}  // namespace carpool
