#pragma once

// A-HDR on the air: the 48 Bloom-filter bits are convolutionally encoded
// at rate 1/2 (the most robust setting, like SIG) into 96 coded bits and
// sent as two BPSK OFDM symbols placed right after the preamble — before
// any subframe — so irrelevant STAs can drop the frame without decoding
// payload (paper Sec. 4.1, Fig. 4).

#include <array>
#include <span>
#include <vector>

#include "carpool/bloom.hpp"
#include "dsp/complex_vec.hpp"

namespace carpool {

inline constexpr std::size_t kAhdrSymbols = 2;

/// Encode the filter into two 48-point BPSK symbol payloads.
std::array<CxVec, kAhdrSymbols> encode_ahdr(
    const AggregationBloomFilter& filter);

/// Decode the 48 filter bits from the two equalized A-HDR symbols.
Bits decode_ahdr(std::span<const Cx> symbol0, std::span<const double> gains0,
                 std::span<const Cx> symbol1, std::span<const double> gains1);

}  // namespace carpool
