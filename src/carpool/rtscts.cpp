#include "carpool/rtscts.hpp"

#include <stdexcept>

namespace carpool {
namespace {

/// Serialize the RTS body (address + duration), FCS appended by caller.
Bytes rts_body(const RtsInfo& info) {
  Bytes body;
  const auto octets = info.transmitter.octets();
  body.insert(body.end(), octets.begin(), octets.end());
  for (int i = 0; i < 4; ++i) {
    body.push_back(
        static_cast<std::uint8_t>((info.duration_us >> (8 * i)) & 0xFFu));
  }
  return body;
}

std::optional<RtsInfo> parse_rts_body(std::span<const std::uint8_t> psdu) {
  if (psdu.size() < 10 + 4 || !check_fcs(psdu)) return std::nullopt;
  RtsInfo info;
  std::array<std::uint8_t, 6> octets{};
  for (int i = 0; i < 6; ++i) octets[static_cast<std::size_t>(i)] = psdu[i];
  info.transmitter = MacAddress(octets);
  info.duration_us = 0;
  for (int i = 0; i < 4; ++i) {
    info.duration_us |= static_cast<std::uint32_t>(psdu[6 + i]) << (8 * i);
  }
  return info;
}

}  // namespace

CxVec build_carpool_rts(std::span<const SubframeSpec> data_subframes,
                        const RtsInfo& info, std::size_t bloom_hashes) {
  if (data_subframes.empty()) {
    throw std::invalid_argument("build_carpool_rts: no data subframes");
  }
  // One control subframe at the basic rate, carrying the RTS body; the
  // *Bloom filter* names the data frame's receivers, so we build a frame
  // whose A-HDR uses their MAC addresses but whose single subframe is the
  // control body addressed to everyone (index beyond receivers is never
  // matched, so we reuse subframe 0's slot for the body and receivers
  // locate it by convention: an RTS has exactly one subframe).
  AggregationBloomFilter bloom(bloom_hashes);
  for (std::size_t i = 0; i < data_subframes.size(); ++i) {
    bloom.insert(data_subframes[i].receiver, i);
  }

  CxVec wave = preamble_waveform();
  std::size_t sym_idx = 0;
  for (const CxVec& points : encode_ahdr(bloom)) {
    const CxVec sym = assemble_symbol(points, sym_idx++);
    wave.insert(wave.end(), sym.begin(), sym.end());
  }

  const Bytes psdu = append_fcs(rts_body(info));
  const Mcs& m = basic_mcs();
  const SigInfo sig{0, psdu.size()};
  const CxVec sig_sym = assemble_symbol(encode_sig(sig), sym_idx++);
  wave.insert(wave.end(), sig_sym.begin(), sig_sym.end());
  const Bits coded = code_data_bits(build_data_bits(psdu, m), m);
  for (const CxVec& points : modulate_coded(coded, m)) {
    const CxVec sym = assemble_symbol(points, sym_idx++);
    wave.insert(wave.end(), sym.begin(), sym.end());
  }
  return wave;
}

CarpoolRtsResult receive_carpool_rts(std::span<const Cx> waveform,
                                     const MacAddress& self,
                                     std::size_t bloom_hashes) {
  CarpoolRtsResult result;
  if (waveform.size() < kPreambleLen + 3 * kSymbolLen) return result;
  const Frontend fe = receive_frontend(waveform);
  if (!fe.ok()) return result;  // jammed preamble: no NAV, no slots
  const std::span<const Cx> wave(fe.corrected);

  std::size_t pos = fe.data_start;
  std::size_t sym_idx = 0;
  const CxVec bins0 = extract_symbol(wave.subspan(pos, kSymbolLen));
  const SymbolEqualization eq0 = equalize_symbol(bins0, fe.h, sym_idx++);
  pos += kSymbolLen;
  const CxVec bins1 = extract_symbol(wave.subspan(pos, kSymbolLen));
  const SymbolEqualization eq1 = equalize_symbol(bins1, fe.h, sym_idx++);
  pos += kSymbolLen;
  const Bits ahdr = decode_ahdr(eq0.data, eq0.gains, eq1.data, eq1.gains);
  const auto bloom = AggregationBloomFilter::from_bits(ahdr, bloom_hashes);
  result.my_slots = bloom.matched_subframes(self);

  // Control body (always present; every station may read it to set NAV).
  const CxVec sig_bins = extract_symbol(wave.subspan(pos, kSymbolLen));
  const SymbolEqualization sig_eq = equalize_symbol(sig_bins, fe.h, sym_idx);
  const auto sig = decode_sig(sig_eq.data, sig_eq.gains);
  if (!sig || sig->mcs_index != 0) return result;
  const Mcs& m = basic_mcs();
  const std::size_t n_sym = num_data_symbols(m, sig->length_bytes);
  if (pos + (1 + n_sym) * kSymbolLen > wave.size()) return result;

  SoftBits soft;
  for (std::size_t j = 0; j < n_sym; ++j) {
    const CxVec bins =
        extract_symbol(wave.subspan(pos + (1 + j) * kSymbolLen, kSymbolLen));
    const SymbolEqualization eq = equalize_symbol(bins, fe.h, sym_idx + 1 + j);
    demap_symbol_soft(eq.data, eq.gains, m, soft);
  }
  const auto psdu = decode_data_bits(soft, m, sig->length_bytes);
  if (!psdu) return result;
  const auto info = parse_rts_body(*psdu);
  if (!info) return result;
  result.valid = true;
  result.info = *info;
  return result;
}

CxVec build_cts(const MacAddress& receiver, std::uint32_t nav_us) {
  Bytes body;
  const auto octets = receiver.octets();
  body.insert(body.end(), octets.begin(), octets.end());
  for (int i = 0; i < 4; ++i) {
    body.push_back(static_cast<std::uint8_t>((nav_us >> (8 * i)) & 0xFFu));
  }
  const LegacyTransmitter tx;
  return tx.build(append_fcs(body), basic_mcs());
}

CtsResult receive_cts(std::span<const Cx> waveform) {
  CtsResult result;
  const LegacyReceiver rx;
  const LegacyRxResult r = rx.receive(waveform);
  if (!r.fcs_ok || r.psdu.size() < 14) return result;
  std::array<std::uint8_t, 6> octets{};
  for (int i = 0; i < 6; ++i) {
    octets[static_cast<std::size_t>(i)] = r.psdu[static_cast<std::size_t>(i)];
  }
  result.receiver = MacAddress(octets);
  result.nav_us = 0;
  for (int i = 0; i < 4; ++i) {
    result.nav_us |= static_cast<std::uint32_t>(r.psdu[6 + i]) << (8 * i);
  }
  result.valid = true;
  return result;
}

}  // namespace carpool
