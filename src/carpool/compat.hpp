#pragma once

// Backward compatibility (paper Sec. 4.3): Carpool nodes must recognise
// both Carpool frames and legacy 802.11 frames on the same channel.
//
// The discriminator exploits the frame layouts:
//   legacy:  [preamble][SIG][data...]         SIG at the 1st symbol
//   carpool: [preamble][A-HDR x2][SIG0]...    SIG at the 3rd symbol
// A legacy SIG carries a parity bit and a closed set of RATE codes, so a
// random A-HDR symbol decodes as a valid SIG only rarely; we check both
// hypotheses and prefer legacy on a tie (a legacy frame must never be
// mistaken, or legacy interop breaks).

#include <optional>

#include "carpool/transceiver.hpp"
#include "phy/frame.hpp"

namespace carpool {

enum class FrameKind { kLegacy, kCarpool, kUndecodable };

/// Classify a received waveform starting at sample 0.
FrameKind classify_waveform(std::span<const Cx> waveform);

/// A receiver that handles both frame formats: classifies, then decodes
/// with the right chain. Legacy frames addressed to anyone are returned
/// whole (MAC filtering is the caller's job, as on real NICs).
struct UniversalRxResult {
  FrameKind kind = FrameKind::kUndecodable;
  std::optional<LegacyRxResult> legacy;
  std::optional<CarpoolRxResult> carpool;
};

class UniversalReceiver {
 public:
  explicit UniversalReceiver(CarpoolRxConfig config)
      : carpool_rx_(std::move(config)) {}

  [[nodiscard]] UniversalRxResult receive(std::span<const Cx> waveform) const;

 private:
  CarpoolReceiver carpool_rx_;
  LegacyReceiver legacy_rx_;
};

}  // namespace carpool
