#include "carpool/side_channel.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/registry.hpp"

namespace carpool {
namespace {

constexpr double deg(double degrees) { return degrees * kPi / 180.0; }

}  // namespace

std::size_t side_bits_per_symbol(PhaseMod mod) noexcept {
  return mod == PhaseMod::kOneBit ? 1 : 2;
}

double phase_delta_for_bits(PhaseMod mod, unsigned bits) {
  if (mod == PhaseMod::kOneBit) {
    return (bits & 1u) ? deg(90.0) : deg(-90.0);
  }
  // Two-bit Table 1 rows, with the first-written bit stored as bit 0:
  //   "11" -> both bits 1 -> value 3 -> +45
  //   "01" -> first 0, second 1 -> value 2 -> +135
  //   "00" -> value 0 -> -135
  //   "10" -> first 1, second 0 -> value 1 -> -45
  switch (bits & 0x3u) {
    case 0b11:
      return deg(45.0);
    case 0b10:
      return deg(135.0);
    case 0b00:
      return deg(-135.0);
    default:  // 0b01
      return deg(-45.0);
  }
}

unsigned bits_for_phase_delta(PhaseMod mod, double delta) noexcept {
  const double d = wrap_angle(delta);
  if (mod == PhaseMod::kOneBit) {
    return d >= 0.0 ? 1u : 0u;
  }
  if (d >= 0.0) {
    return d < deg(90.0) ? 0b11u : 0b10u;  // +45 vs +135
  }
  return d > -deg(90.0) ? 0b01u : 0b00u;  // -45 vs -135
}

const BitCrc& crc_for_width(std::size_t width) {
  static const BitCrc crc1{1, 0x1};  // parity
  static const BitCrc crc3{3, 0x3};  // x^3 + x + 1
  static const BitCrc crc5{5, 0x05};
  static const BitCrc crc6{6, 0x03};
  switch (width) {
    case 1:
      return crc1;
    case 2:
      return crc2();
    case 3:
      return crc3;
    case 4:
      return crc4();
    case 5:
      return crc5;
    case 6:
      return crc6;
    case 8:
      return crc8();
    case 16:
      return crc16();
    default:
      throw std::invalid_argument("crc_for_width: unsupported width");
  }
}

std::vector<double> encode_side_channel(const std::vector<Bits>& symbol_bits,
                                        const SymbolCrcScheme& scheme,
                                        double start_offset) {
  if (scheme.group_symbols == 0) {
    throw std::invalid_argument("encode_side_channel: empty group");
  }
  const std::size_t bits_per_sym = side_bits_per_symbol(scheme.mod);
  const BitCrc& crc = crc_for_width(scheme.crc_width());

  std::vector<double> offsets;
  offsets.reserve(symbol_bits.size());
  double cumulative = start_offset;
  for (std::size_t g = 0; g < symbol_bits.size();
       g += scheme.group_symbols) {
    // Concatenate the group's coded bits and checksum them.
    Bits group;
    const std::size_t end =
        std::min(g + scheme.group_symbols, symbol_bits.size());
    for (std::size_t s = g; s < end; ++s) {
      group.insert(group.end(), symbol_bits[s].begin(), symbol_bits[s].end());
    }
    const std::uint16_t checksum = crc.compute(group);
    // Spread the checksum bits over the group's symbols, LSB first.
    for (std::size_t s = g; s < end; ++s) {
      const std::size_t pos = (s - g) * bits_per_sym;
      const unsigned bits =
          static_cast<unsigned>(checksum >> pos) &
          ((1u << bits_per_sym) - 1u);
      cumulative =
          wrap_angle(cumulative + phase_delta_for_bits(scheme.mod, bits));
      offsets.push_back(cumulative);
    }
  }
  return offsets;
}

SideChannelDecoder::SideChannelDecoder(const SymbolCrcScheme& scheme)
    : scheme_(scheme) {
  if (scheme.group_symbols == 0) {
    throw std::invalid_argument("SideChannelDecoder: empty group");
  }
}

void SideChannelDecoder::set_reference_phase(double phase) {
  prev_phase_ = phase;
  have_reference_ = true;
}

SideChannelDecoder::SymbolOutcome SideChannelDecoder::next_symbol(
    double measured_phase, std::span<const std::uint8_t> demapped_bits) {
  if (!have_reference_) {
    throw std::logic_error("SideChannelDecoder: no reference phase set");
  }
  const double delta = wrap_angle(measured_phase - prev_phase_);
  prev_phase_ = measured_phase;

  SymbolOutcome outcome;
  outcome.side_bits = bits_for_phase_delta(scheme_.mod, delta);

  const std::size_t bits_per_sym = side_bits_per_symbol(scheme_.mod);
  received_crc_ |= outcome.side_bits
                   << (symbol_in_group_ * bits_per_sym);
  group_bits_.insert(group_bits_.end(), demapped_bits.begin(),
                     demapped_bits.end());
  ++symbol_in_group_;

  if (symbol_in_group_ == scheme_.group_symbols) {
    const BitCrc& crc = crc_for_width(scheme_.crc_width());
    outcome.group_verified = crc.compute(group_bits_) == received_crc_;
    group_bits_.clear();
    received_crc_ = 0;
    symbol_in_group_ = 0;
    obs::Registry& reg = obs::Registry::current();
    obs::Counter& verified = reg.counter("carpool.side_groups_verified");
    obs::Counter& failed = reg.counter("carpool.side_groups_failed");
    (*outcome.group_verified ? verified : failed).add();
  }
  return outcome;
}

void SideChannelDecoder::reset() {
  have_reference_ = false;
  group_bits_.clear();
  received_crc_ = 0;
  symbol_in_group_ = 0;
}

}  // namespace carpool
