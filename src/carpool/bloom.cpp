#include "carpool/bloom.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "common/hash.hpp"
#include "dsp/kernels.hpp"
#include "obs/timer.hpp"

namespace carpool {

std::size_t optimal_hash_count(std::size_t num_receivers) {
  if (num_receivers == 0) {
    throw std::invalid_argument("optimal_hash_count: zero receivers");
  }
  const double h = static_cast<double>(kAhdrBits) /
                   static_cast<double>(num_receivers) * std::log(2.0);
  return static_cast<std::size_t>(std::max(1.0, std::round(h)));
}

double theoretical_fp_rate(std::size_t num_receivers,
                           std::size_t num_hashes) {
  const double hn = static_cast<double>(num_hashes) *
                    static_cast<double>(num_receivers);
  const double p_set = 1.0 - std::exp(-hn / static_cast<double>(kAhdrBits));
  return std::pow(p_set, static_cast<double>(num_hashes));
}

AggregationBloomFilter::AggregationBloomFilter(std::size_t num_hashes)
    : num_hashes_(num_hashes) {
  if (num_hashes == 0 || num_hashes > kAhdrBits) {
    throw std::invalid_argument("AggregationBloomFilter: bad hash count");
  }
}

std::size_t AggregationBloomFilter::position(const MacAddress& mac,
                                             std::size_t subframe_index,
                                             std::size_t hash_index) const {
  // Key mixes (subframe index, hash index): member j of hash set i.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(subframe_index) << 16) | hash_index;
  return keyed_hash(mac.octets(), key) % kAhdrBits;
}

void AggregationBloomFilter::insert(const MacAddress& receiver,
                                    std::size_t subframe_index) {
  if (subframe_index >= kMaxReceivers) {
    throw std::invalid_argument("insert: subframe index out of range");
  }
  OBS_TIMED_SPAN("carpool.ahdr_encode");
  // Batched form of position(): hash the MAC once, then finalize all
  // num_hashes_ keys in one kernel sweep — hashes[j] is exactly
  // keyed_hash(octets, key_j), so insert and matches stay consistent.
  const std::uint64_t base = fnv1a64(receiver.octets());
  std::array<std::uint64_t, kAhdrBits> keys;
  std::array<std::uint64_t, kAhdrBits> hashes;
  for (std::size_t j = 0; j < num_hashes_; ++j) {
    keys[j] = (static_cast<std::uint64_t>(subframe_index) << 16) | j;
  }
  dsp::active_backend().ahdr_mix(base, keys.data(), num_hashes_,
                                 hashes.data());
  for (std::size_t j = 0; j < num_hashes_; ++j) {
    filter_ |= std::uint64_t{1} << (hashes[j] % kAhdrBits);
  }
}

bool AggregationBloomFilter::matches(const MacAddress& mac,
                                     std::size_t subframe_index) const {
  for (std::size_t j = 0; j < num_hashes_; ++j) {
    if (!(filter_ & (std::uint64_t{1} << position(mac, subframe_index, j)))) {
      return false;
    }
  }
  return true;
}

std::vector<std::size_t> AggregationBloomFilter::matched_subframes(
    const MacAddress& mac) const {
  OBS_SCOPED_TIMER("carpool.ahdr_test");
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < kMaxReceivers; ++i) {
    if (matches(mac, i)) out.push_back(i);
  }
  return out;
}

Bits AggregationBloomFilter::to_bits() const {
  Bits bits(kAhdrBits);
  for (std::size_t i = 0; i < kAhdrBits; ++i) {
    bits[i] = static_cast<std::uint8_t>((filter_ >> i) & 1u);
  }
  return bits;
}

AggregationBloomFilter AggregationBloomFilter::from_bits(
    std::span<const std::uint8_t> bits, std::size_t num_hashes) {
  if (bits.size() != kAhdrBits) {
    throw std::invalid_argument("from_bits: need 48 bits");
  }
  AggregationBloomFilter filter(num_hashes);
  for (std::size_t i = 0; i < kAhdrBits; ++i) {
    if (bits[i] & 1u) filter.filter_ |= std::uint64_t{1} << i;
  }
  return filter;
}

}  // namespace carpool
