#pragma once

// Phase offset side channel (paper Sec. 5.2, Table 1).
//
// The transmitter rotates all data + pilot subcarriers of each payload
// symbol by an injected phase. Because the receiver's pilot tracker
// measures and compensates the *total* common phase before demodulation,
// the injection is invisible to data decoding; but the *difference* of the
// measured phase between consecutive symbols recovers the injected delta
// (the inherent residual-CFO drift between adjacent symbols is small).
//
// Modulation (Table 1):
//   one-bit:  +90 deg -> 1, -90 deg -> 0
//   two-bit:  +45 -> 11, +135 -> 01, -135 -> 00, -45 -> 10
//   (bit strings written as in the paper; we store the first-written bit
//   as bit 0 of the unsigned value)
//
// The side channel carries a symbol-level CRC over each symbol group's
// coded (post-interleaving) bits, so a receiver can verify symbols
// *before* FEC and use verified symbols as "data pilots" for real-time
// channel estimation (Sec. 5.1).

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bits.hpp"
#include "common/crc.hpp"
#include "dsp/complex_vec.hpp"

namespace carpool {

enum class PhaseMod { kOneBit, kTwoBit };

/// Side-channel bits carried per OFDM symbol (1 or 2).
std::size_t side_bits_per_symbol(PhaseMod mod) noexcept;

/// Injected phase delta (radians) for a bit group (Table 1).
double phase_delta_for_bits(PhaseMod mod, unsigned bits);

/// Decision: nearest Table-1 delta for a measured phase difference.
unsigned bits_for_phase_delta(PhaseMod mod, double delta) noexcept;

/// Symbol-level CRC scheme: `group_symbols` consecutive symbols share one
/// CRC whose width is the group's total side-channel capacity. The paper
/// evaluates {one,two}-bit x {1,2,3}-symbol groups and settles on
/// two-bit / 1-symbol (CRC-2 per symbol).
struct SymbolCrcScheme {
  PhaseMod mod = PhaseMod::kTwoBit;
  std::size_t group_symbols = 1;

  [[nodiscard]] std::size_t crc_width() const {
    return side_bits_per_symbol(mod) * group_symbols;
  }
};

/// CRC engine for a scheme's width (1..6 bits arise in the paper's sweep).
const BitCrc& crc_for_width(std::size_t width);

/// Transmitter side: compute the absolute phase offset to inject into each
/// payload symbol. `symbol_bits[i]` are the coded (post-interleaving) bits
/// of payload symbol i. Each group of `scheme.group_symbols` symbols
/// carries the CRC of its own bits, spread across the group's deltas; a
/// trailing partial group is checksummed over its shorter span.
/// `start_offset` continues the cumulative phase from preceding symbols
/// (subframes of one Carpool frame share a continuous phase chain).
std::vector<double> encode_side_channel(const std::vector<Bits>& symbol_bits,
                                        const SymbolCrcScheme& scheme,
                                        double start_offset = 0.0);

/// Receiver side: consumes measured per-symbol common phases and the hard
/// demapped bits, reporting per-group verification.
class SideChannelDecoder {
 public:
  explicit SideChannelDecoder(const SymbolCrcScheme& scheme);

  /// Provide the measured phase of the reference symbol preceding the
  /// first payload symbol (A-HDR / SIG, which carries no injection).
  void set_reference_phase(double phase);

  struct SymbolOutcome {
    unsigned side_bits = 0;  ///< decoded side-channel bits this symbol
    /// Set when this symbol completes a CRC group: true if the group's
    /// demapped bits are verified by the received checksum — the signal
    /// that the group can serve as a data pilot.
    std::optional<bool> group_verified;
  };

  /// Feed the next payload symbol: its measured common phase and its hard
  /// demapped coded bits.
  SymbolOutcome next_symbol(double measured_phase,
                            std::span<const std::uint8_t> demapped_bits);

  void reset();

 private:
  SymbolCrcScheme scheme_;
  double prev_phase_ = 0.0;
  bool have_reference_ = false;
  Bits group_bits_;
  unsigned received_crc_ = 0;
  std::size_t symbol_in_group_ = 0;
};

}  // namespace carpool
