#include "carpool/transceiver.hpp"

#include <algorithm>
#include <stdexcept>

#include "fec/interleaver.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/timer.hpp"
#include "phy/equalizer.hpp"

namespace carpool {
namespace {

const Interleaver& bpsk_interleaver() {
  static const Interleaver il{48, 1};
  return il;
}

const Interleaver& interleaver_for(const Mcs& m) {
  static const Interleaver il_bpsk{48, 1};
  static const Interleaver il_qpsk{96, 2};
  static const Interleaver il_qam16{192, 4};
  static const Interleaver il_qam64{288, 6};
  switch (m.modulation) {
    case Modulation::kBpsk:
      return il_bpsk;
    case Modulation::kQpsk:
      return il_qpsk;
    case Modulation::kQam16:
      return il_qam16;
    case Modulation::kQam64:
      return il_qam64;
  }
  throw std::logic_error("unknown modulation");
}

/// Re-modulate hard (deinterleaved) coded bits back into the transmitted
/// constellation points — the "known pilot" reconstruction of Sec. 5.1.
CxVec remap_symbol(const Bits& deinterleaved, const Mcs& m) {
  const Bits interleaved = interleaver_for(m).interleave(deinterleaved);
  return constellation(m.modulation).map_all(interleaved);
}

CxVec remap_bpsk48(const Bits& deinterleaved) {
  const Bits interleaved = bpsk_interleaver().interleave(deinterleaved);
  return constellation(Modulation::kBpsk).map_all(interleaved);
}

/// Hard demap a 48-point BPSK symbol and deinterleave (SIG / A-HDR path).
Bits demap_bpsk48_hard(std::span<const Cx> points) {
  const Constellation& bpsk = constellation(Modulation::kBpsk);
  Bits interleaved;
  interleaved.reserve(48);
  for (const Cx& p : points) {
    interleaved.push_back(bpsk.demap_hard(p)[0]);
  }
  return bpsk_interleaver().deinterleave(
      std::span<const std::uint8_t>(interleaved));
}

void validate_subframes(std::span<const SubframeSpec> subframes) {
  if (subframes.empty()) {
    throw std::invalid_argument("Carpool frame needs at least one subframe");
  }
  if (subframes.size() > kMaxReceivers) {
    throw std::invalid_argument("Carpool frame exceeds kMaxReceivers");
  }
  for (const SubframeSpec& s : subframes) {
    if (s.psdu.empty() || s.psdu.size() > kMaxSigLength) {
      throw std::invalid_argument("subframe PSDU size out of range");
    }
    (void)mcs(s.mcs_index);  // throws on bad index
  }
}

/// A verified symbol buffered until its CRC group completes.
struct PendingPilot {
  CxVec bins;       // raw 64 frequency bins
  CxVec points;     // reconstructed transmitted points (48)
  double phase;     // measured common phase
  std::size_t symbol_index;
  double evm;       // equalized points vs re-modulated reference
};

/// Eq. (3): fold a data-pilot estimate into the running channel estimate
/// (alpha = 0.5 reproduces the paper's 50/50 average). `max_delta` bounds
/// the per-bin move (relative to the current magnitude): a CRC false
/// accept can hand us an arbitrarily wrong estimate, and an unbounded
/// update would poison every later symbol's equalization. Returns the
/// number of bins skipped by the bound.
std::size_t rte_update(CxVec& h, const PendingPilot& pilot, double alpha,
                       double max_delta) {
  const CxVec ref = reference_bins(pilot.points, pilot.symbol_index, 0.0);
  const Cx derotate = cx_exp(-pilot.phase);
  std::size_t clamped = 0;
  auto update_bin = [&](std::size_t bin) {
    if (ref[bin] == Cx{}) return;
    const Cx estimate = pilot.bins[bin] * derotate / ref[bin];
    if (max_delta > 0.0 &&
        std::abs(estimate - h[bin]) >
            max_delta * std::max(std::abs(h[bin]), 1e-3)) {
      ++clamped;
      return;
    }
    h[bin] = (1.0 - alpha) * h[bin] + alpha * estimate;
  };
  for (const std::size_t bin : data_bins()) update_bin(bin);
  for (const std::size_t bin : pilot_bins()) update_bin(bin);
  return clamped;
}

}  // namespace

CarpoolTransmitter::CarpoolTransmitter(CarpoolFrameConfig config)
    : config_(config) {}

std::size_t CarpoolTransmitter::frame_symbols(
    std::span<const SubframeSpec> subframes) {
  std::size_t symbols = kAhdrSymbols;
  for (const SubframeSpec& s : subframes) {
    symbols += 1 + num_data_symbols(mcs(s.mcs_index), s.psdu.size());
  }
  return symbols;
}

double CarpoolTransmitter::frame_airtime(
    std::span<const SubframeSpec> subframes) {
  const double preamble =
      static_cast<double>(kPreambleLen) / kSampleRate;
  return preamble +
         static_cast<double>(frame_symbols(subframes)) * kSymbolDuration;
}

CxVec CarpoolTransmitter::build(std::span<const SubframeSpec> subframes) const {
  validate_subframes(subframes);

  AggregationBloomFilter bloom(config_.bloom_hashes);
  for (std::size_t i = 0; i < subframes.size(); ++i) {
    bloom.insert(subframes[i].receiver, i);
  }

  CxVec wave = preamble_waveform();
  std::size_t sym_idx = 0;
  for (const CxVec& points : encode_ahdr(bloom)) {
    const CxVec sym = assemble_symbol(points, sym_idx++);
    wave.insert(wave.end(), sym.begin(), sym.end());
  }

  double cumulative = 0.0;
  for (const SubframeSpec& spec : subframes) {
    const Mcs& m = mcs(spec.mcs_index);
    const SigInfo sig{spec.mcs_index, spec.psdu.size()};

    const Bits data_bits = build_data_bits(spec.psdu, m);
    const Bits coded = code_data_bits(data_bits, m);

    // Per-symbol coded-bit blocks for the side channel: the SIG's block
    // followed by each data symbol's n_cbps slice.
    std::vector<Bits> blocks;
    blocks.push_back(sig_coded_bits(sig));
    for (std::size_t off = 0; off < coded.size(); off += m.n_cbps) {
      blocks.emplace_back(coded.begin() + static_cast<long>(off),
                          coded.begin() + static_cast<long>(off + m.n_cbps));
    }

    std::vector<double> offsets(blocks.size(), 0.0);
    if (config_.inject_side_channel) {
      offsets = encode_side_channel(blocks, config_.crc_scheme, cumulative);
      cumulative = offsets.back();
    }

    const CxVec sig_sym =
        assemble_symbol(encode_sig(sig), sym_idx, offsets[0]);
    wave.insert(wave.end(), sig_sym.begin(), sig_sym.end());
    ++sym_idx;

    const std::vector<CxVec> symbols = modulate_coded(coded, m);
    for (std::size_t j = 0; j < symbols.size(); ++j) {
      const CxVec sym =
          assemble_symbol(symbols[j], sym_idx, offsets[j + 1]);
      wave.insert(wave.end(), sym.begin(), sym.end());
      ++sym_idx;
    }
  }
  return wave;
}

CarpoolReceiver::CarpoolReceiver(CarpoolRxConfig config) noexcept
    : config_(config) {
  // Config problems are diagnosed here (once) instead of throwing: the
  // receiver stays constructible so callers can surface config_error()
  // through their own error path, and receive() reports kBadConfig.
  if (config_.crc_scheme.group_symbols == 0) {
    config_error_ = "empty side-channel CRC group";
  } else if (config_.bloom_hashes == 0 ||
             config_.bloom_hashes > kAhdrBits) {
    config_error_ = "Bloom hash count out of range";
  } else if (config_.rte_alpha < 0.0 || config_.rte_alpha > 1.0) {
    config_error_ = "rte_alpha outside [0, 1]";
  }
}

CarpoolRxResult CarpoolReceiver::receive(std::span<const Cx> waveform) const {
  // Frame-decode span: wall-clock interval of the whole receive attempt,
  // carrying the final DecodeStatus. Child spans (per-subframe decodes,
  // OBS_TIMED_SPAN leaf stages like fec.viterbi_decode) nest underneath.
  obs::Span frame_span("carpool.rx_frame");
  // Backstop: no exception may escape a decode. Anything the structured
  // paths missed is contained here and reported as kInternalError.
  try {
    CarpoolRxResult result = receive_impl(waveform);
    frame_span.outcome(to_string(result.status));
    return result;
  } catch (...) {
    obs::Registry::current().counter("phy.decode_exceptions").add();
    CarpoolRxResult result;
    result.status = DecodeStatus::kInternalError;
    frame_span.outcome(to_string(result.status));
    return result;
  }
}

CarpoolRxResult CarpoolReceiver::receive_impl(
    std::span<const Cx> waveform) const {
  CarpoolRxResult result;
  if (!config_error_.empty()) {
    result.status = DecodeStatus::kBadConfig;
    return result;
  }
  if (waveform.size() < kPreambleLen + kAhdrSymbols * kSymbolLen) {
    result.status = DecodeStatus::kTruncated;
    return result;
  }
  const Frontend fe = receive_frontend(waveform);
  result.sync_quality = fe.sync_quality;
  if (!fe.ok()) {
    result.status = fe.status;
    return result;
  }
  const std::span<const Cx> wave(fe.corrected);
  CxVec h = fe.h;  // running channel estimate H~

  // Poisoning guard state (spans subframes; see CarpoolRxConfig).
  CxVec h_last_good = h;       // estimate before the last verified group
  std::size_t failed_groups = 0;  // consecutive failed CRC groups
  bool rte_frozen = false;

  std::size_t pos = fe.data_start;
  std::size_t sym_idx = 0;

  // A-HDR (two BPSK symbols, never phase-injected).
  const CxVec bins0 = extract_symbol(wave.subspan(pos, kSymbolLen));
  const SymbolEqualization eq0 = equalize_symbol(bins0, h, sym_idx++);
  pos += kSymbolLen;
  const CxVec bins1 = extract_symbol(wave.subspan(pos, kSymbolLen));
  const SymbolEqualization eq1 = equalize_symbol(bins1, h, sym_idx++);
  pos += kSymbolLen;

  const Bits ahdr_bits =
      decode_ahdr(eq0.data, eq0.gains, eq1.data, eq1.gains);
  result.ahdr_decoded = true;
  const auto bloom =
      AggregationBloomFilter::from_bits(ahdr_bits, config_.bloom_hashes);
  result.matched = bloom.matched_subframes(config_.self);
  OBS_TRACE(config_.trace,
            obs_ts.event("phy.ahdr")
                .f("matched",
                   static_cast<std::uint64_t>(result.matched.size())));
  if (result.matched.empty()) {
    result.status = DecodeStatus::kAhdrMiss;
    return result;  // drop without decoding
  }
  const std::size_t last_wanted = result.matched.back();

  double prev_phase = eq1.phase_offset;
  std::size_t k = 0;  // subframe index while walking

  while (k <= last_wanted) {
    if (pos + kSymbolLen > wave.size()) {
      // Frame ended before this subframe's SIG. Subframes already decoded
      // stay in `result`; only the walk past this point is lost.
      result.status = DecodeStatus::kTruncated;
      break;
    }
    const CxVec sig_bins = extract_symbol(wave.subspan(pos, kSymbolLen));
    const SymbolEqualization sig_eq = equalize_symbol(sig_bins, h, sym_idx);
    const auto sig = decode_sig(sig_eq.data, sig_eq.gains);
    if (!sig) {
      // A corrupted SIG breaks the length chain: later subframes cannot
      // be located, but earlier decodes survive untouched.
      result.status = DecodeStatus::kSigCorrupt;
      obs::Registry::current().counter("phy.sig_failures").add();
      break;
    }
    ++result.subframes_walked;

    const Mcs& m = mcs(sig->mcs_index);
    const std::size_t n_sym = num_data_symbols(m, sig->length_bytes);
    const bool truncated = pos + (1 + n_sym) * kSymbolLen > wave.size();
    // Data symbols actually present when the capture ends mid-subframe.
    const std::size_t n_avail =
        truncated ? (wave.size() - pos) / kSymbolLen - 1 : n_sym;

    const bool mine = std::find(result.matched.begin(), result.matched.end(),
                                k) != result.matched.end();
    if (truncated && !mine) {
      // Nothing of ours is reachable past the cut.
      result.status = DecodeStatus::kTruncated;
      break;
    }
    if (!mine) {
      // Skip: track the common phase only (cheap, keeps the side-channel
      // reference chain alive and mirrors the paper's sampling-without-
      // decoding energy optimisation).
      double phase = sig_eq.phase_offset;
      const CxVec track_bins =
          extract_symbols(wave.subspan(pos + kSymbolLen), n_sym);
      for (std::size_t j = 0; j < n_sym; ++j) {
        const std::span<const Cx> bins(track_bins.data() + j * kFftSize,
                                       kFftSize);
        phase = equalize_symbol(bins, h, sym_idx + 1 + j).phase_offset;
      }
      prev_phase = phase;
      result.symbols_pilot_only += 1 + n_sym;
      pos += (1 + n_sym) * kSymbolLen;
      sym_idx += 1 + n_sym;
      ++k;
      continue;
    }

    // Decode this subframe.
    obs::Span sub_span("carpool.rx_subframe");
    sub_span.ids({.subframe = static_cast<std::int64_t>(k)});
    DecodedSubframe sub;
    sub.index = k;
    sub.sig = *sig;

    SideChannelDecoder side(config_.crc_scheme);
    side.set_reference_phase(prev_phase);
    std::vector<PendingPilot> pending;

    auto handle_side = [&](const SideChannelDecoder::SymbolOutcome& outcome,
                           std::size_t group_end_sym) {
      if (!outcome.group_verified.has_value()) {
        static_cast<void>(group_end_sym);  // only read by tracing
        return;
      }
      sub.group_verified.push_back(*outcome.group_verified);
      OBS_TRACE(config_.trace,
                obs_ts.event("phy.side_crc")
                    .f("sym", static_cast<std::uint64_t>(group_end_sym))
                    .f("subframe", static_cast<std::uint64_t>(k))
                    .f("ok", *outcome.group_verified));
      if (!*outcome.group_verified) {
        ++failed_groups;
        if (config_.use_rte && config_.rte_freeze_after > 0 &&
            !rte_frozen && failed_groups >= config_.rte_freeze_after) {
          // A failure run this long often starts with a false-accepted
          // group (CRC-2 passes ~25% of corrupted symbols) whose updates
          // poisoned H~ — undo the last applied group and stop touching
          // the estimate until a group verifies again.
          h = h_last_good;
          rte_frozen = true;
          ++result.rte_freezes;
          ++result.rte_rollbacks;
          obs::Registry& reg = obs::Registry::current();
          reg.counter("phy.rte_freeze").add();
          reg.counter("phy.rte_rollback").add();
          OBS_TRACE(config_.trace,
                    obs_ts.event("phy.rte_freeze")
                        .f("sym", static_cast<std::uint64_t>(group_end_sym))
                        .f("subframe", static_cast<std::uint64_t>(k))
                        .f("failed_groups",
                           static_cast<std::uint64_t>(failed_groups)));
        }
        pending.clear();
        return;
      }
      failed_groups = 0;
      rte_frozen = false;  // a verified group re-arms the estimator
      if (config_.use_rte) {
        // Snapshot BEFORE applying: if the next rte_freeze_after groups
        // all fail, this group is the rollback suspect.
        h_last_good = h;
        std::size_t applied = 0;
        std::size_t clamped = 0;
        for (const PendingPilot& pilot : pending) {
          if (config_.pilot_evm_gate > 0.0 &&
              pilot.evm > config_.pilot_evm_gate) {
            continue;  // likely a CRC false accept; do not touch H~
          }
          clamped +=
              rte_update(h, pilot, config_.rte_alpha, config_.rte_max_delta);
          ++sub.rte_updates;
          ++applied;
        }
        if (applied > 0) {
          obs::Registry::current().counter("phy.rte_updates").add(applied);
        }
        if (clamped > 0) {
          obs::Registry::current()
              .counter("phy.rte_delta_clamped")
              .add(clamped);
        }
        OBS_TRACE(config_.trace,
                  obs_ts.event("phy.rte_update")
                      .f("sym", static_cast<std::uint64_t>(group_end_sym))
                      .f("subframe", static_cast<std::uint64_t>(k))
                      .f("pilots", static_cast<std::uint64_t>(applied)));
      }
      pending.clear();
    };

    if (config_.side_channel_present) {
      const Bits sig_hard = demap_bpsk48_hard(sig_eq.data);
      const auto outcome = side.next_symbol(sig_eq.phase_offset, sig_hard);
      sub.side_bits.push_back(outcome.side_bits);
      CxVec sig_ref = remap_bpsk48(sig_hard);
      const double sig_evm = evm(sig_eq.data, sig_ref);
      pending.push_back(PendingPilot{sig_bins, std::move(sig_ref),
                                     sig_eq.phase_offset, sym_idx, sig_evm});
      OBS_TRACE(config_.trace,
                obs_ts.event("phy.symbol")
                    .f("sym", static_cast<std::uint64_t>(sym_idx))
                    .f("subframe", static_cast<std::uint64_t>(k))
                    .f("kind", "sig")
                    .f("evm", sig_evm));
      handle_side(outcome, sym_idx);
    }
    prev_phase = sig_eq.phase_offset;

    SoftBits soft;
    soft.reserve(n_avail * m.n_cbps);
    const CxVec sub_bins =
        extract_symbols(wave.subspan(pos + kSymbolLen), n_avail);
    for (std::size_t j = 0; j < n_avail; ++j) {
      const std::span<const Cx> bins(sub_bins.data() + j * kFftSize,
                                     kFftSize);
      const SymbolEqualization eq = equalize_symbol(bins, h, sym_idx + 1 + j);
      const Bits hard = demap_symbol_hard(eq.data, m);
      sub.raw_symbol_bits.push_back(hard);
      demap_symbol_soft(eq.data, eq.gains, m, soft);

      if (config_.side_channel_present) {
        const auto outcome = side.next_symbol(eq.phase_offset, hard);
        sub.side_bits.push_back(outcome.side_bits);
        CxVec ref = remap_symbol(hard, m);
        const double sym_evm = evm(eq.data, ref);
        pending.push_back(PendingPilot{CxVec(bins.begin(), bins.end()),
                                       std::move(ref), eq.phase_offset,
                                       sym_idx + 1 + j, sym_evm});
        OBS_TRACE(config_.trace,
                  obs_ts.event("phy.symbol")
                      .f("sym", static_cast<std::uint64_t>(sym_idx + 1 + j))
                      .f("subframe", static_cast<std::uint64_t>(k))
                      .f("data_sym", static_cast<std::uint64_t>(j))
                      .f("kind", "data")
                      .f("evm", sym_evm));
        handle_side(outcome, sym_idx + 1 + j);
      }
      prev_phase = eq.phase_offset;
    }

    // A truncated subframe is still worth the attempt: short PSDUs can
    // survive losing tail pad symbols, and a partial decode feeds the
    // retransmission decision either way.
    auto psdu = decode_data_bits(soft, m, sig->length_bytes);
    if (psdu) {
      sub.decoded = true;
      sub.psdu = std::move(*psdu);
      sub.fcs_ok = check_fcs(sub.psdu);
    }
    sub.status = truncated ? DecodeStatus::kTruncated
                 : sub.fcs_ok ? DecodeStatus::kOk
                              : DecodeStatus::kFcsFail;
    sub_span.outcome(to_string(sub.status));
    obs::Registry& reg = obs::Registry::current();
    reg.counter("phy.subframes_decoded").add();
    obs::Counter& fcs_failures = reg.counter("phy.fcs_failures");
    if (!sub.fcs_ok) fcs_failures.add();
    OBS_TRACE(config_.trace,
              obs_ts.event("phy.subframe")
                  .f("subframe", static_cast<std::uint64_t>(k))
                  .f("symbols", static_cast<std::uint64_t>(1 + n_avail))
                  .f("decoded", sub.decoded)
                  .f("fcs_ok", sub.fcs_ok)
                  .f("status", to_string(sub.status))
                  .f("rte_updates",
                     static_cast<std::uint64_t>(sub.rte_updates)));
    result.symbols_full_decoded += 1 + n_avail;
    result.subframes.push_back(std::move(sub));
    if (truncated) {
      result.status = DecodeStatus::kTruncated;
      break;
    }

    pos += (1 + n_sym) * kSymbolLen;
    sym_idx += 1 + n_sym;
    ++k;
  }
  if (!h.empty()) {
    double sum_sq = 0.0;
    for (const Cx& bin : h) sum_sq += std::norm(bin);
    result.rte_estimate_norm =
        std::sqrt(sum_sq / static_cast<double>(h.size()));
  }
  return result;
}

std::vector<unsigned> expected_side_bits(const SubframeSpec& spec,
                                         const SymbolCrcScheme& scheme) {
  const Mcs& m = mcs(spec.mcs_index);
  const SigInfo sig{spec.mcs_index, spec.psdu.size()};
  const Bits coded = code_data_bits(build_data_bits(spec.psdu, m), m);

  std::vector<Bits> blocks;
  blocks.push_back(sig_coded_bits(sig));
  for (std::size_t off = 0; off < coded.size(); off += m.n_cbps) {
    blocks.emplace_back(coded.begin() + static_cast<long>(off),
                        coded.begin() + static_cast<long>(off + m.n_cbps));
  }

  const std::size_t bits_per_sym = side_bits_per_symbol(scheme.mod);
  const BitCrc& crc = crc_for_width(scheme.crc_width());
  std::vector<unsigned> out;
  out.reserve(blocks.size());
  for (std::size_t g = 0; g < blocks.size(); g += scheme.group_symbols) {
    Bits group;
    const std::size_t end =
        std::min(g + scheme.group_symbols, blocks.size());
    for (std::size_t s = g; s < end; ++s) {
      group.insert(group.end(), blocks[s].begin(), blocks[s].end());
    }
    const std::uint16_t checksum = crc.compute(group);
    for (std::size_t s = g; s < end; ++s) {
      const std::size_t pos = (s - g) * bits_per_sym;
      out.push_back(static_cast<unsigned>(checksum >> pos) &
                    ((1u << bits_per_sym) - 1u));
    }
  }
  return out;
}

}  // namespace carpool
