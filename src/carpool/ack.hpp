#pragma once

// PHY-level ACK frames for the sequential-ACK exchange (paper Sec. 4.2,
// Fig. 6). An ACK is a legacy BPSK-1/2 frame carrying the ACKing
// station's address, the subframe index it acknowledges, and a NAV that
// counts down the remainder of the ACK sequence (the j-th ACK of N sets
// NAV_{N-j+1}; the last sets NAV_1 = 0, matching the legacy ACK).
//
// The MAC simulator accounts ACKs by airtime; this module provides the
// bit-exact frames so the full Fig. 2 flow — data, then ACKs one SIFS
// apart — can be exercised end to end on waveforms (see the quickstart
// and tests).

#include <optional>

#include "carpool/transceiver.hpp"
#include "dsp/complex_vec.hpp"
#include "mac/params.hpp"

namespace carpool {

struct AckInfo {
  MacAddress receiver;            ///< who is ACKing
  std::uint8_t subframe_index = 0;///< which subframe it acknowledges
  std::uint32_t nav_us = 0;       ///< remaining ACK-sequence reservation
};

/// Build an ACK waveform (legacy PPDU at the basic rate).
CxVec build_ack(const AckInfo& info);

struct AckRxResult {
  bool valid = false;
  AckInfo info;
};

/// Decode an ACK waveform.
AckRxResult receive_ack(std::span<const Cx> waveform);

/// The NAV (microseconds) the j-th of `total` sequential ACKs must carry:
/// the airtime of the ACKs still to come (Sec. 4.2). j is 1-based.
std::uint32_t sequential_ack_nav_us(const mac::MacParams& params,
                                    std::size_t j, std::size_t total);

/// Plan the full ACK sequence for a decoded Carpool frame: one AckInfo per
/// subframe, in transmission order, with correct NAVs.
std::vector<AckInfo> plan_ack_sequence(
    std::span<const SubframeSpec> subframes, const mac::MacParams& params);

}  // namespace carpool
