#include "carpool/ack.hpp"

#include <cmath>

namespace carpool {

CxVec build_ack(const AckInfo& info) {
  Bytes body;
  const auto octets = info.receiver.octets();
  body.insert(body.end(), octets.begin(), octets.end());
  body.push_back(info.subframe_index);
  for (int i = 0; i < 4; ++i) {
    body.push_back(
        static_cast<std::uint8_t>((info.nav_us >> (8 * i)) & 0xFFu));
  }
  body.push_back(0);  // pad to a stable 12-byte body
  const LegacyTransmitter tx;
  return tx.build(append_fcs(body), basic_mcs());
}

AckRxResult receive_ack(std::span<const Cx> waveform) {
  AckRxResult result;
  const LegacyReceiver rx;
  const LegacyRxResult r = rx.receive(waveform);
  if (!r.fcs_ok || r.psdu.size() < 12 + 4) return result;
  std::array<std::uint8_t, 6> octets{};
  for (int i = 0; i < 6; ++i) {
    octets[static_cast<std::size_t>(i)] = r.psdu[static_cast<std::size_t>(i)];
  }
  result.info.receiver = MacAddress(octets);
  result.info.subframe_index = r.psdu[6];
  result.info.nav_us = 0;
  for (int i = 0; i < 4; ++i) {
    result.info.nav_us |= static_cast<std::uint32_t>(r.psdu[7 + i])
                          << (8 * i);
  }
  result.valid = true;
  return result;
}

std::uint32_t sequential_ack_nav_us(const mac::MacParams& params,
                                    std::size_t j, std::size_t total) {
  if (j == 0 || j > total) {
    throw std::invalid_argument("sequential_ack_nav_us: j out of range");
  }
  // NAV_{N-j+1} = (N - j)(t_ACK + t_SIFS); the last ACK carries 0.
  const double nav = static_cast<double>(total - j) *
                     (params.ack_duration() + params.sifs);
  return static_cast<std::uint32_t>(std::llround(nav * 1e6));
}

std::vector<AckInfo> plan_ack_sequence(
    std::span<const SubframeSpec> subframes, const mac::MacParams& params) {
  std::vector<AckInfo> sequence;
  sequence.reserve(subframes.size());
  for (std::size_t i = 0; i < subframes.size(); ++i) {
    AckInfo info;
    info.receiver = subframes[i].receiver;
    info.subframe_index = static_cast<std::uint8_t>(i);
    info.nav_us = sequential_ack_nav_us(params, i + 1, subframes.size());
    sequence.push_back(info);
  }
  return sequence;
}

}  // namespace carpool
