#include "carpool/ahdr.hpp"

#include <stdexcept>

#include "fec/convolutional.hpp"
#include "fec/interleaver.hpp"
#include "fec/viterbi.hpp"
#include "phy/constellation.hpp"

namespace carpool {
namespace {

const Interleaver& ahdr_interleaver() {
  static const Interleaver il{48, 1};
  return il;
}

}  // namespace

std::array<CxVec, kAhdrSymbols> encode_ahdr(
    const AggregationBloomFilter& filter) {
  const Bits bits = filter.to_bits();
  const Bits coded = ConvolutionalCode::encode(bits);  // 96 bits
  const Constellation& bpsk = constellation(Modulation::kBpsk);
  std::array<CxVec, kAhdrSymbols> symbols;
  for (std::size_t s = 0; s < kAhdrSymbols; ++s) {
    const Bits block = ahdr_interleaver().interleave(
        std::span<const std::uint8_t>(coded).subspan(48 * s, 48));
    symbols[s] = bpsk.map_all(block);
  }
  return symbols;
}

Bits decode_ahdr(std::span<const Cx> symbol0, std::span<const double> gains0,
                 std::span<const Cx> symbol1,
                 std::span<const double> gains1) {
  if (symbol0.size() != 48 || symbol1.size() != 48) {
    throw std::invalid_argument("decode_ahdr: need 48-point symbols");
  }
  const Constellation& bpsk = constellation(Modulation::kBpsk);
  SoftBits soft;
  soft.reserve(96);
  SoftBits interleaved;
  interleaved.reserve(48);
  for (std::size_t i = 0; i < 48; ++i) {
    bpsk.demap_soft(symbol0[i], gains0[i], interleaved);
  }
  SoftBits block = ahdr_interleaver().deinterleave(interleaved);
  soft.insert(soft.end(), block.begin(), block.end());
  interleaved.clear();
  for (std::size_t i = 0; i < 48; ++i) {
    bpsk.demap_soft(symbol1[i], gains1[i], interleaved);
  }
  block = ahdr_interleaver().deinterleave(interleaved);
  soft.insert(soft.end(), block.begin(), block.end());

  static const ViterbiDecoder viterbi;
  return viterbi.decode(soft, /*terminated=*/false);
}

}  // namespace carpool
