#include "carpool/mumimo.hpp"

#include <cmath>
#include <stdexcept>

#include "carpool/ahdr.hpp"
#include "channel/awgn.hpp"
#include "common/units.hpp"

namespace carpool {
namespace {

/// 2x2 complex matrix in row-major order.
struct Mat2 {
  Cx a, b, c, d;

  [[nodiscard]] Mat2 inverse() const {
    const Cx det = a * d - b * c;
    if (std::abs(det) < 1e-12) {
      // Singular channel: fall back to identity (deep fade handled by BER).
      return Mat2{Cx{1, 0}, Cx{}, Cx{}, Cx{1, 0}};
    }
    const Cx inv_det = Cx{1.0, 0.0} / det;
    return Mat2{d * inv_det, -b * inv_det, -c * inv_det, a * inv_det};
  }

  [[nodiscard]] double frobenius_norm_sq() const {
    return std::norm(a) + std::norm(b) + std::norm(c) + std::norm(d);
  }
};

Cx random_cn(Rng& rng, double sigma2) {
  const double sigma = std::sqrt(sigma2 / 2.0);
  return Cx{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma)};
}

}  // namespace

MuMimoResult simulate_mumimo(const MuMimoConfig& config) {
  if (config.num_tx_antennas != 2) {
    throw std::invalid_argument(
        "simulate_mumimo: only 2 TX antennas supported (Fig. 18 setup)");
  }
  if (config.num_groups == 0 || config.symbols_per_group == 0) {
    throw std::invalid_argument("simulate_mumimo: empty configuration");
  }

  Rng rng(config.seed);
  const Constellation& con = constellation(config.modulation);
  const double noise_power = db_to_linear(-config.snr_db);

  const std::size_t users = config.num_groups * config.num_tx_antennas;
  std::vector<std::size_t> bit_errors(users, 0);
  std::vector<std::size_t> bit_total(users, 0);

  for (std::size_t group = 0; group < config.num_groups; ++group) {
    // Per-subcarrier 2x2 channel for this group's two users (each row is
    // one user's 1x2 channel from the two AP antennas).
    for (std::size_t k = 0; k < kNumDataSubcarriers; ++k) {
      const Mat2 h{random_cn(rng, 1.0), random_cn(rng, 1.0),
                   random_cn(rng, 1.0), random_cn(rng, 1.0)};
      // The AP precodes with its (possibly noisy) channel estimate.
      Mat2 h_est = h;
      if (config.csi_error > 0.0) {
        h_est.a += random_cn(rng, config.csi_error);
        h_est.b += random_cn(rng, config.csi_error);
        h_est.c += random_cn(rng, config.csi_error);
        h_est.d += random_cn(rng, config.csi_error);
      }
      Mat2 w = h_est.inverse();
      // Normalise total transmit power across the two antennas.
      const double scale = std::sqrt(2.0 / w.frobenius_norm_sq());
      w.a *= scale;
      w.b *= scale;
      w.c *= scale;
      w.d *= scale;
      // Effective end-to-end matrix G = H W; each receiver learns its own
      // diagonal gain from the (precoded) VHT preamble and equalizes with
      // it; off-diagonal terms are residual inter-stream interference
      // (zero under ideal CSI).
      const Mat2 g{h.a * w.a + h.b * w.c, h.a * w.b + h.b * w.d,
                   h.c * w.a + h.d * w.c, h.c * w.b + h.d * w.d};

      for (std::size_t s = 0; s < config.symbols_per_group; ++s) {
        // Two independent user streams on this subcarrier.
        Bits bits_u0(con.bits_per_point());
        Bits bits_u1(con.bits_per_point());
        for (auto& bit : bits_u0) {
          bit = static_cast<std::uint8_t>(rng.uniform_int(2));
        }
        for (auto& bit : bits_u1) {
          bit = static_cast<std::uint8_t>(rng.uniform_int(2));
        }
        const Cx s0 = con.map(bits_u0);
        const Cx s1 = con.map(bits_u1);

        // x = W s; user u receives y_u = h_u . x + n = (G s)_u + n.
        const Cx x0 = w.a * s0 + w.b * s1;
        const Cx x1 = w.c * s0 + w.d * s1;
        const Cx y0 = h.a * x0 + h.b * x1 + random_cn(rng, noise_power);
        const Cx y1 = h.c * x0 + h.d * x1 + random_cn(rng, noise_power);

        const Bits got0 = con.demap_hard(g.a == Cx{} ? y0 : y0 / g.a);
        const Bits got1 = con.demap_hard(g.d == Cx{} ? y1 : y1 / g.d);
        const std::size_t u0 = group * 2;
        const std::size_t u1 = group * 2 + 1;
        bit_errors[u0] += hamming_distance(got0, bits_u0);
        bit_errors[u1] += hamming_distance(got1, bits_u1);
        bit_total[u0] += bits_u0.size();
        bit_total[u1] += bits_u1.size();
      }
    }
  }

  MuMimoResult result;
  result.user_ber.resize(users);
  double sum = 0.0;
  for (std::size_t u = 0; u < users; ++u) {
    result.user_ber[u] =
        bit_total[u] ? static_cast<double>(bit_errors[u]) /
                           static_cast<double>(bit_total[u])
                     : 0.0;
    sum += result.user_ber[u];
  }
  result.mean_ber = sum / static_cast<double>(users);

  // Airtime accounting in symbol times. Every independent transmission
  // pays channel access (DIFS + mean backoff ~ 95 us), the legacy preamble
  // (16 us) and SIFS + ACK (~55 us) in addition to its payload; Carpool
  // folds all stream groups into ONE such transmission with a shared
  // legacy preamble and A-HDR, each group keeping its own VHT preamble.
  const std::size_t access = 24;   // DIFS + mean backoff, in 4 us symbols
  const std::size_t preamble = 4;
  const std::size_t vht = 2;
  const std::size_t ack = 14;      // SIFS + ACK at basic rate
  result.carpool_symbols =
      access + preamble + kAhdrSymbols +
      config.num_groups * (vht + config.symbols_per_group + ack);
  result.legacy_symbols =
      config.num_groups *
      (access + preamble + vht + config.symbols_per_group + ack);
  return result;
}

}  // namespace carpool
