#pragma once

// The Carpool PHY transceiver (paper Sections 3-6).
//
// Frame on the air (Fig. 4):
//   [preamble][A-HDR: 2 sym][SIG_0][data_0 ...][SIG_1][data_1 ...] ...
//
// Each subframe has its own SIG (MCS + length, so receivers can skip
// subframes they do not own) and its own scrambled/coded payload. The
// phase offset side channel runs over every post-A-HDR symbol, carrying a
// symbol-level CRC; receivers use verified symbols as data pilots for
// real-time channel estimation (RTE, Sec. 5.1):
//     H~_n = (H~_{n-1} + H^_n)/2   if symbol n verified.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "carpool/ahdr.hpp"
#include "carpool/side_channel.hpp"
#include "common/mac_address.hpp"
#include "obs/trace.hpp"
#include "phy/frame.hpp"

namespace carpool {

/// One receiver's share of a Carpool frame.
struct SubframeSpec {
  MacAddress receiver;
  Bytes psdu;              ///< MAC data unit incl. FCS (1..4095 bytes)
  std::size_t mcs_index = 0;
};

struct CarpoolFrameConfig {
  SymbolCrcScheme crc_scheme{};        ///< side-channel scheme
  bool inject_side_channel = true;     ///< false = plain PHY (baselines)
  std::size_t bloom_hashes = 4;        ///< h (paper fixes 4 for N <= 8)
};

class CarpoolTransmitter {
 public:
  explicit CarpoolTransmitter(CarpoolFrameConfig config = {});

  /// Build the aggregate waveform. Throws std::invalid_argument if there
  /// are no subframes, more than kMaxReceivers, or any PSDU is oversized.
  [[nodiscard]] CxVec build(std::span<const SubframeSpec> subframes) const;

  /// OFDM symbol count after the preamble (A-HDR + per-subframe SIG+data).
  static std::size_t frame_symbols(std::span<const SubframeSpec> subframes);

  /// Airtime of the whole frame in seconds.
  static double frame_airtime(std::span<const SubframeSpec> subframes);

  [[nodiscard]] const CarpoolFrameConfig& config() const noexcept {
    return config_;
  }

 private:
  CarpoolFrameConfig config_;
};

struct CarpoolRxConfig {
  MacAddress self;
  bool use_rte = true;             ///< update H from verified data pilots
  bool side_channel_present = true;///< frame carries injected offsets
  SymbolCrcScheme crc_scheme{};
  std::size_t bloom_hashes = 4;
  /// Data-pilot sanity gate: a CRC-verified symbol is only used as a data
  /// pilot when its error vector magnitude against the re-modulated points
  /// is below this threshold. Precaution against CRC-2 false accepts
  /// (~25% of corrupted symbols) contaminating the channel estimate;
  /// measured effect in operational regimes is neutral (see
  /// bench_ablation). 0 disables the gate.
  double pilot_evm_gate = 0.35;
  /// Weight of the new data-pilot estimate in the Eq. (3) update
  /// H~ = (1-a) H~ + a H^. The paper uses a = 0.5; the ablation bench
  /// sweeps it.
  double rte_alpha = 0.5;

  /// RTE poisoning guard (docs/ROBUSTNESS.md). After this many consecutive
  /// failed CRC groups the estimate rolls back to the snapshot taken
  /// before the last verified group's updates (a burst that defeats the
  /// side-channel CRC right after a false accept is the poisoning vector)
  /// and freezes until a group verifies again. 0 disables the guard.
  std::size_t rte_freeze_after = 3;
  /// Per-bin update bound: a data-pilot estimate that moves a bin by more
  /// than this factor of its current magnitude is discarded (counter
  /// `phy.rte_delta_clamped`). Bounds the damage of any single false
  /// accept. 0 disables the bound.
  double rte_max_delta = 4.0;

  /// Optional JSONL event sink: per-symbol EVM (`phy.symbol`), side-channel
  /// CRC verdicts (`phy.side_crc`), RTE updates (`phy.rte_update`), and
  /// A-HDR match outcomes (`phy.ahdr`). Only consulted when the binary was
  /// built with CARPOOL_ENABLE_TRACE=ON; not owned by the receiver.
  obs::TraceSink* trace = nullptr;
};

/// Decode outcome of one matched subframe.
struct DecodedSubframe {
  std::size_t index = 0;
  SigInfo sig;
  /// kOk, kTruncated (frame ended mid-subframe; partial decode attempted)
  /// or kFcsFail. A bad subframe never aborts its siblings: every matched
  /// subframe the walk reaches gets its own entry and verdict.
  DecodeStatus status = DecodeStatus::kOk;
  bool decoded = false;  ///< PSDU extracted
  bool fcs_ok = false;
  Bytes psdu;
  std::vector<Bits> raw_symbol_bits;   ///< hard coded bits per data symbol
  std::vector<bool> group_verified;    ///< side-channel verdicts (per group)
  std::vector<unsigned> side_bits;     ///< decoded side-channel bits per
                                       ///< symbol (SIG first, then data)
  std::size_t rte_updates = 0;         ///< symbols that served as data pilots
};

struct CarpoolRxResult {
  /// Frame-level verdict. kOk even when individual subframes failed their
  /// FCS — per-subframe outcomes live in DecodedSubframe::status; this
  /// field reports conditions that stopped the walk itself (kTruncated,
  /// kSyncLost, kSigCorrupt, kAhdrMiss, kBadConfig, kInternalError).
  DecodeStatus status = DecodeStatus::kOk;
  double sync_quality = 0.0;             ///< from the preamble front end
  bool ahdr_decoded = false;
  std::vector<std::size_t> matched;      ///< Bloom-matched subframe indices
  std::vector<DecodedSubframe> subframes;///< decodes of reachable matches
  std::size_t subframes_walked = 0;      ///< SIGs read while scanning
  std::size_t symbols_full_decoded = 0;  ///< payload symbols demodulated
  std::size_t symbols_pilot_only = 0;    ///< skipped (pilot tracking only)
  std::size_t rte_freezes = 0;           ///< poisoning-guard freezes
  std::size_t rte_rollbacks = 0;         ///< estimate rollbacks performed
  /// RMS magnitude of the running channel estimate when the walk finished
  /// (0 when the front end never produced an estimate). A bounded, finite
  /// value is a cross-layer invariant the chaos soak checks: RTE updates
  /// must never drive the estimate to NaN/Inf or let it blow up.
  double rte_estimate_norm = 0.0;

  [[nodiscard]] bool ok() const noexcept {
    return status == DecodeStatus::kOk;
  }
};

class CarpoolReceiver {
 public:
  /// Never throws: an invalid configuration (e.g. a zero-symbol CRC group)
  /// is recorded and every receive() reports kBadConfig. Callers that
  /// build configs from untrusted input check config_error() up front.
  explicit CarpoolReceiver(CarpoolRxConfig config) noexcept;

  /// Decode a received Carpool waveform starting at sample 0. Never
  /// throws: malformed input maps to CarpoolRxResult::status and anything
  /// unexpected is contained as kInternalError (counter
  /// `phy.decode_exceptions`).
  [[nodiscard]] CarpoolRxResult receive(std::span<const Cx> waveform) const;

  [[nodiscard]] const CarpoolRxConfig& config() const noexcept {
    return config_;
  }

  /// Empty when the configuration is valid; otherwise a description of
  /// what is wrong (receive() then reports kBadConfig).
  [[nodiscard]] std::string_view config_error() const noexcept {
    return config_error_;
  }

 private:
  [[nodiscard]] CarpoolRxResult receive_impl(
      std::span<const Cx> waveform) const;

  CarpoolRxConfig config_;
  std::string_view config_error_;  ///< static-duration message or empty
};

/// The side-channel bits a transmitter injects for one subframe (SIG
/// symbol first, then each data symbol), given the scheme. Used by tests
/// and benches to measure side-channel BER against the decoded bits.
std::vector<unsigned> expected_side_bits(const SubframeSpec& spec,
                                         const SymbolCrcScheme& scheme);

}  // namespace carpool
