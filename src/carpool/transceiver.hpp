#pragma once

// The Carpool PHY transceiver (paper Sections 3-6).
//
// Frame on the air (Fig. 4):
//   [preamble][A-HDR: 2 sym][SIG_0][data_0 ...][SIG_1][data_1 ...] ...
//
// Each subframe has its own SIG (MCS + length, so receivers can skip
// subframes they do not own) and its own scrambled/coded payload. The
// phase offset side channel runs over every post-A-HDR symbol, carrying a
// symbol-level CRC; receivers use verified symbols as data pilots for
// real-time channel estimation (RTE, Sec. 5.1):
//     H~_n = (H~_{n-1} + H^_n)/2   if symbol n verified.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "carpool/ahdr.hpp"
#include "carpool/side_channel.hpp"
#include "common/mac_address.hpp"
#include "obs/trace.hpp"
#include "phy/frame.hpp"

namespace carpool {

/// One receiver's share of a Carpool frame.
struct SubframeSpec {
  MacAddress receiver;
  Bytes psdu;              ///< MAC data unit incl. FCS (1..4095 bytes)
  std::size_t mcs_index = 0;
};

struct CarpoolFrameConfig {
  SymbolCrcScheme crc_scheme{};        ///< side-channel scheme
  bool inject_side_channel = true;     ///< false = plain PHY (baselines)
  std::size_t bloom_hashes = 4;        ///< h (paper fixes 4 for N <= 8)
};

class CarpoolTransmitter {
 public:
  explicit CarpoolTransmitter(CarpoolFrameConfig config = {});

  /// Build the aggregate waveform. Throws std::invalid_argument if there
  /// are no subframes, more than kMaxReceivers, or any PSDU is oversized.
  [[nodiscard]] CxVec build(std::span<const SubframeSpec> subframes) const;

  /// OFDM symbol count after the preamble (A-HDR + per-subframe SIG+data).
  static std::size_t frame_symbols(std::span<const SubframeSpec> subframes);

  /// Airtime of the whole frame in seconds.
  static double frame_airtime(std::span<const SubframeSpec> subframes);

  [[nodiscard]] const CarpoolFrameConfig& config() const noexcept {
    return config_;
  }

 private:
  CarpoolFrameConfig config_;
};

struct CarpoolRxConfig {
  MacAddress self;
  bool use_rte = true;             ///< update H from verified data pilots
  bool side_channel_present = true;///< frame carries injected offsets
  SymbolCrcScheme crc_scheme{};
  std::size_t bloom_hashes = 4;
  /// Data-pilot sanity gate: a CRC-verified symbol is only used as a data
  /// pilot when its error vector magnitude against the re-modulated points
  /// is below this threshold. Precaution against CRC-2 false accepts
  /// (~25% of corrupted symbols) contaminating the channel estimate;
  /// measured effect in operational regimes is neutral (see
  /// bench_ablation). 0 disables the gate.
  double pilot_evm_gate = 0.35;
  /// Weight of the new data-pilot estimate in the Eq. (3) update
  /// H~ = (1-a) H~ + a H^. The paper uses a = 0.5; the ablation bench
  /// sweeps it.
  double rte_alpha = 0.5;

  /// Optional JSONL event sink: per-symbol EVM (`phy.symbol`), side-channel
  /// CRC verdicts (`phy.side_crc`), RTE updates (`phy.rte_update`), and
  /// A-HDR match outcomes (`phy.ahdr`). Only consulted when the binary was
  /// built with CARPOOL_ENABLE_TRACE=ON; not owned by the receiver.
  obs::TraceSink* trace = nullptr;
};

/// Decode outcome of one matched subframe.
struct DecodedSubframe {
  std::size_t index = 0;
  SigInfo sig;
  bool decoded = false;  ///< PSDU extracted
  bool fcs_ok = false;
  Bytes psdu;
  std::vector<Bits> raw_symbol_bits;   ///< hard coded bits per data symbol
  std::vector<bool> group_verified;    ///< side-channel verdicts (per group)
  std::vector<unsigned> side_bits;     ///< decoded side-channel bits per
                                       ///< symbol (SIG first, then data)
  std::size_t rte_updates = 0;         ///< symbols that served as data pilots
};

struct CarpoolRxResult {
  bool ahdr_decoded = false;
  std::vector<std::size_t> matched;      ///< Bloom-matched subframe indices
  std::vector<DecodedSubframe> subframes;///< decodes of reachable matches
  std::size_t subframes_walked = 0;      ///< SIGs read while scanning
  std::size_t symbols_full_decoded = 0;  ///< payload symbols demodulated
  std::size_t symbols_pilot_only = 0;    ///< skipped (pilot tracking only)
};

class CarpoolReceiver {
 public:
  explicit CarpoolReceiver(CarpoolRxConfig config);

  /// Decode a received Carpool waveform starting at sample 0.
  [[nodiscard]] CarpoolRxResult receive(std::span<const Cx> waveform) const;

  [[nodiscard]] const CarpoolRxConfig& config() const noexcept {
    return config_;
  }

 private:
  CarpoolRxConfig config_;
};

/// The side-channel bits a transmitter injects for one subframe (SIG
/// symbol first, then each data symbol), given the scheme. Used by tests
/// and benches to measure side-channel BER against the decoded bits.
std::vector<unsigned> expected_side_bits(const SubframeSpec& spec,
                                         const SymbolCrcScheme& scheme);

}  // namespace carpool
