#pragma once

// Carpool over MU-MIMO (paper Sec. 8, Fig. 18): multiple beamformed
// stream-groups share a single legacy preamble and A-HDR. A two-antenna AP
// with four single-antenna users sends {A,B} as spatial streams of
// subframe group 1 and {C,D} as group 2 — one Carpool transmission where
// 802.11ac MU-MIMO needs at least two.
//
// This extension is simulated at the frequency-domain level: per-subcarrier
// zero-forcing precoding against Rayleigh user channels, AWGN at the
// receivers, and airtime accounting for the shared-preamble structure.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dsp/complex_vec.hpp"
#include "phy/constellation.hpp"
#include "phy/ofdm.hpp"

namespace carpool {

struct MuMimoConfig {
  std::size_t num_tx_antennas = 2;  ///< AP antennas = streams per group
  std::size_t num_groups = 2;       ///< subframe groups (Fig. 18: {A,B},{C,D})
  std::size_t symbols_per_group = 20;
  Modulation modulation = Modulation::kQam16;
  double snr_db = 25.0;
  /// Channel estimation error at the AP (relative), which degrades the
  /// zero-forcing precoder — 0 is ideal CSI.
  double csi_error = 0.0;
  std::uint64_t seed = 1;
};

struct MuMimoResult {
  std::vector<double> user_ber;       ///< one per user (groups x antennas)
  double mean_ber = 0.0;
  std::size_t carpool_symbols = 0;    ///< aggregated frame length (symbols,
                                      ///< incl. shared preamble + A-HDR)
  std::size_t legacy_symbols = 0;     ///< total for per-group transmissions
  [[nodiscard]] double airtime_saving() const {
    return legacy_symbols == 0
               ? 0.0
               : 1.0 - static_cast<double>(carpool_symbols) /
                           static_cast<double>(legacy_symbols);
  }
};

/// Simulate one MU-MIMO Carpool aggregate transmission.
MuMimoResult simulate_mumimo(const MuMimoConfig& config);

}  // namespace carpool
