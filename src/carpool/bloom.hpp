#pragma once

// Coded Bloom filter for the Carpool aggregation header (A-HDR, paper
// Sec. 4.1). The 48-bit filter indicates both *who* the receivers of a
// Carpool frame are and *which subframe* belongs to each: subframe i's
// receiver is inserted with the i-th hash set, so a receiver that finds
// all of hash-set i's positions set knows (up to false positives) that
// subframe i is addressed to it.
//
// Properties the paper relies on, which tests verify:
//  - no false negatives: the intended receiver always matches its subframe
//  - false-positive ratio r = (1 - e^{-hN/48})^h, minimised at h = 48/N ln2
//    (0.31% at N=4 ... 5.59% at N=8); the implementation fixes h = 4 as
//    the paper does for its 8-receiver limit.

#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "common/mac_address.hpp"

namespace carpool {

/// Size of the filter in bits: two BPSK rate-1/2 OFDM symbols.
inline constexpr std::size_t kAhdrBits = 48;

/// Paper's receiver limit per Carpool frame.
inline constexpr std::size_t kMaxReceivers = 8;

/// Optimal number of hash functions per hash set for N receivers:
/// h = (48/N) ln 2, at least 1.
std::size_t optimal_hash_count(std::size_t num_receivers);

/// Theoretical false-positive ratio (1 - e^{-hN/48})^h.
double theoretical_fp_rate(std::size_t num_receivers, std::size_t num_hashes);

class AggregationBloomFilter {
 public:
  /// `num_hashes`: hash functions per hash set (the paper fixes 4).
  explicit AggregationBloomFilter(std::size_t num_hashes = 4);

  /// Insert `receiver` as the owner of `subframe_index` (0-based).
  void insert(const MacAddress& receiver, std::size_t subframe_index);

  /// Does hash set `subframe_index` match `mac`? (May be a false positive;
  /// never a false negative for inserted pairs.)
  [[nodiscard]] bool matches(const MacAddress& mac,
                             std::size_t subframe_index) const;

  /// All subframe indices (0..kMaxReceivers-1) matching `mac`.
  [[nodiscard]] std::vector<std::size_t> matched_subframes(
      const MacAddress& mac) const;

  /// The 48 filter bits, for mapping onto the A-HDR symbols.
  [[nodiscard]] Bits to_bits() const;

  /// Reconstruct from 48 received bits.
  static AggregationBloomFilter from_bits(std::span<const std::uint8_t> bits,
                                          std::size_t num_hashes = 4);

  [[nodiscard]] std::size_t num_hashes() const noexcept { return num_hashes_; }

 private:
  [[nodiscard]] std::size_t position(const MacAddress& mac,
                                     std::size_t subframe_index,
                                     std::size_t hash_index) const;

  std::size_t num_hashes_;
  std::uint64_t filter_ = 0;  // low 48 bits used
};

}  // namespace carpool
