#pragma once

// Shared element-wise kernel operations (internal to src/dsp).
//
// Every function here defines THE operation sequence for one output
// element; the scalar backend is a plain loop over these, and the SIMD
// backends replicate the identical sequence across vector lanes (plus
// these exact functions on remainder tails). Keeping them in one header
// included by every kernel translation unit — all compiled with
// -ffp-contract=off — is what makes the bit-identity contract hold: no
// TU may reassociate, contract to FMA, or reorder the arithmetic.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "dsp/complex_vec.hpp"
#include "dsp/kernels.hpp"

namespace carpool::dsp::detail {

/// Naive complex multiply: re = ar*br - ai*bi, im = ar*bi + ai*br.
/// Matches what GCC inlines for finite std::complex operands on targets
/// without FMA, and what the SIMD lanes compute via mul/addsub.
inline Cx cx_mul(Cx a, Cx b) noexcept {
  const double ar = a.real(), ai = a.imag();
  const double br = b.real(), bi = b.imag();
  return Cx{ar * br - ai * bi, ar * bi + ai * br};
}

/// One radix-2 butterfly: (u, v) -> (u + v*w, u - v*w).
inline void butterfly(Cx& u, Cx& v, Cx w) noexcept {
  const Cx t = cx_mul(v, w);
  const Cx a = u;
  u = Cx{a.real() + t.real(), a.imag() + t.imag()};
  v = Cx{a.real() - t.real(), a.imag() - t.imag()};
}

/// In-place bit-reversal permutation (pure swaps — no arithmetic).
inline void bit_reverse(Cx* data, std::size_t n) noexcept {
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      const Cx tmp = data[i];
      data[i] = data[j];
      data[j] = tmp;
    }
  }
}

/// Smith's-algorithm complex division (a + bi) / (c + di), the exact
/// sequence every backend runs per lane:
///   swap = !(|c| < |d|)  — operand pair reversed, quotient imag negated
///   ratio = cc/dd; denom = cc*ratio + dd
///   x = (aa*ratio + bb)/denom; y = (bb*ratio - aa)/denom  (y = -y when
///   swapped)
/// The branchless SIMD form selects operands by mask and flips y's sign
/// bit, which is bit-identical to this scalar form (IEEE negation and
/// a - b == a + (-b) are exact).
inline void smith_div(double a, double b, double c, double d, double& x,
                      double& y) noexcept {
  const bool swap = !(std::fabs(c) < std::fabs(d));
  const double aa = swap ? b : a;
  const double bb = swap ? a : b;
  const double cc = swap ? d : c;
  const double dd = swap ? c : d;
  const double ratio = cc / dd;
  const double denom = cc * ratio + dd;
  x = (aa * ratio + bb) / denom;
  const double y0 = (bb * ratio - aa) / denom;
  y = swap ? -y0 : y0;
}

/// One equalized subcarrier: data_out = (bin / h) * derotate,
/// gain_out = |h|^2; h == 0 is an erased subcarrier (0, 0).
inline void equalize_one(Cx bin, Cx h, Cx derotate, Cx& data_out,
                         double& gain_out) noexcept {
  const double c = h.real(), d = h.imag();
  gain_out = c * c + d * d;
  if (c == 0.0 && d == 0.0) {
    data_out = Cx{0.0, 0.0};
    return;
  }
  double qr, qi;
  smith_div(bin.real(), bin.imag(), c, d, qr, qi);
  data_out = cx_mul(Cx{qr, qi}, derotate);
}

/// Stafford Mix13 finalizer (matches common/hash.hpp mix64; restated so
/// dsp does not depend on common's header layout).
inline std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One A-HDR keyed-hash finalization (integer — exact on any backend).
inline std::uint64_t ahdr_mix_one(std::uint64_t base,
                                  std::uint64_t key) noexcept {
  return mix64(base ^ mix64(key ^ 0x9e3779b97f4a7c15ULL));
}

/// Shared Viterbi forward-pass scaffolding: initial metrics and the
/// per-step element recurrence for next-state n given predecessors'
/// metrics pm0/pm1 and this step's soft pair (r0, r1).
inline constexpr double kViterbiInf =
    std::numeric_limits<double>::infinity();

inline void viterbi_step_one(const ViterbiTables& tb, std::size_t n,
                             double pm0, double pm1, double r0, double r1,
                             double& next, bool& sel) noexcept {
  const double m0 = pm0 - (tb.s00[n] * r0 + tb.s01[n] * r1);
  const double m1 = pm1 - (tb.s10[n] * r0 + tb.s11[n] * r1);
  sel = m1 < m0;  // strict: ties keep the even predecessor
  next = sel ? m1 : m0;
}

}  // namespace carpool::dsp::detail
