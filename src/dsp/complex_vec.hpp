#pragma once

// Complex baseband sample types and element-wise helpers.

#include <complex>
#include <numbers>
#include <span>
#include <vector>

namespace carpool {

using Cx = std::complex<double>;
using CxVec = std::vector<Cx>;

constexpr double kPi = std::numbers::pi;
constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// e^{j*theta}.
inline Cx cx_exp(double theta) { return Cx{std::cos(theta), std::sin(theta)}; }

/// Average power (mean |x|^2) of a sample vector; 0 for empty input.
double mean_power(std::span<const Cx> samples);

/// Total energy (sum |x|^2).
double energy(std::span<const Cx> samples);

/// Scale all samples in place by a real factor.
void scale(std::span<Cx> samples, double factor);

/// Rotate all samples in place by angle theta (multiply by e^{j*theta}).
void rotate(std::span<Cx> samples, double theta);

/// Element-wise a .* b; sizes must match.
CxVec multiply(std::span<const Cx> a, std::span<const Cx> b);

/// Element-wise a ./ b; sizes must match. Division by an exact zero yields 0
/// (a dead subcarrier, treated as erased).
CxVec divide(std::span<const Cx> a, std::span<const Cx> b);

/// Wrap an angle to (-pi, pi].
double wrap_angle(double theta);

/// Error vector magnitude between received and reference constellations:
/// sqrt(mean |rx - ref|^2 / mean |ref|^2). Sizes must match.
double evm(std::span<const Cx> rx, std::span<const Cx> ref);

}  // namespace carpool
