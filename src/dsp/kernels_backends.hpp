#pragma once

// Internal: per-tier backend tables. Each SIMD translation unit is
// compiled with its tier's -m flags (see src/dsp/CMakeLists.txt) and
// returns null when the tier is not compiled for this architecture;
// kernels.cpp pairs these with runtime CPU detection.

#include "dsp/kernels.hpp"

namespace carpool::dsp::detail {

const KernelBackend* sse2_backend() noexcept;
const KernelBackend* avx2_backend() noexcept;
const KernelBackend* avx512_backend() noexcept;

/// Env-string resolution behind active_backend()'s CARPOOL_KERNEL step,
/// split out so tests can drive it without mutating the process
/// environment: unset/"auto" -> best, garbage -> warn once + bump
/// dsp.kernel_env_invalid + scalar, unsupported tier -> warn + best.
const KernelBackend* resolve_env_value(const char* env);

}  // namespace carpool::dsp::detail
