// Portable scalar reference backend. Each kernel is a plain loop over
// the shared element operations in kernels_internal.hpp; the SIMD tiers
// replicate the identical operation sequence across lanes, so this file
// defines the semantics the parity suite holds every backend to.
//
// Compiled with -ffp-contract=off (src/dsp/CMakeLists.txt): contraction
// to FMA would change rounding and break the cross-backend bit-identity
// contract.

#include <cstring>

#include "dsp/kernels.hpp"
#include "dsp/kernels_internal.hpp"

namespace carpool::dsp {
namespace {

void fft_scalar(Cx* data, std::size_t n, int sign) {
  detail::bit_reverse(data, n);
  const Cx* tw = fft_twiddles(n, sign);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const Cx* w = tw + (len / 2 - 1);  // stage-major layout
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        detail::butterfly(data[i + k], data[i + k + half], w[k]);
      }
    }
  }
}

void fft_batch_scalar(Cx* data, std::size_t n, std::size_t count,
                      int sign) {
  for (std::size_t s = 0; s < count; ++s) {
    fft_scalar(data + s * n, n, sign);
  }
}

void viterbi_forward_scalar(const double* soft, std::size_t steps,
                            std::uint64_t* sel, double* final_metric) {
  const ViterbiTables& tb = viterbi_tables();
  double metric[kViterbiStates];
  double next_metric[kViterbiStates];
  for (std::size_t s = 0; s < kViterbiStates; ++s) {
    metric[s] = detail::kViterbiInf;
  }
  metric[0] = 0.0;  // encoder starts in the all-zero state

  for (std::size_t t = 0; t < steps; ++t) {
    const double r0 = soft[2 * t];
    const double r1 = soft[2 * t + 1];
    std::uint64_t word = 0;
    for (std::size_t n = 0; n < kViterbiStates; ++n) {
      const std::size_t p0 = 2 * (n & 31);
      double next = 0.0;
      bool pick_odd = false;
      detail::viterbi_step_one(tb, n, metric[p0], metric[p0 + 1], r0, r1,
                               next, pick_odd);
      next_metric[n] = next;
      if (pick_odd) word |= std::uint64_t{1} << n;
    }
    sel[t] = word;
    std::memcpy(metric, next_metric, sizeof(metric));
  }
  std::memcpy(final_metric, metric, sizeof(metric));
}

void equalize_scalar(const Cx* bins, const Cx* h, std::size_t n,
                     Cx derotate, Cx* data_out, double* gains_out) {
  for (std::size_t i = 0; i < n; ++i) {
    detail::equalize_one(bins[i], h[i], derotate, data_out[i],
                         gains_out[i]);
  }
}

void ahdr_mix_scalar(std::uint64_t base, const std::uint64_t* keys,
                     std::size_t n, std::uint64_t* hashes) {
  for (std::size_t i = 0; i < n; ++i) {
    hashes[i] = detail::ahdr_mix_one(base, keys[i]);
  }
}

constexpr KernelBackend kScalarBackend{
    "scalar",         fft_scalar,      fft_batch_scalar,
    viterbi_forward_scalar, equalize_scalar, ahdr_mix_scalar,
};

}  // namespace

const KernelBackend& scalar_backend() noexcept { return kScalarBackend; }

}  // namespace carpool::dsp
