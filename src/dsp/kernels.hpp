#pragma once

// Runtime-dispatched PHY/FEC compute kernels (docs/KERNELS.md).
//
// The receiver spends nearly all of its cycles in three scalar leaves —
// the radix-2 FFT, the soft Viterbi add-compare-select, and the
// per-subcarrier equalizer — plus the A-HDR Bloom hash on the transmit
// side. This module puts those leaves behind a `KernelBackend` table with
// a portable scalar reference implementation and SIMD tiers (SSE2 / AVX2 /
// AVX-512, built from one width-generic source), selected at runtime by
// CPU feature detection and overridable via CARPOOL_KERNEL / --kernel.
//
// Bit-identity contract: every backend produces *bit-identical* outputs
// for the same inputs. The kernels are written so each output element is
// computed by the same sequence of IEEE-754 operations in every backend
// (shared twiddle/branch tables, no reassociation, no FMA contraction —
// the kernel translation units compile with -ffp-contract=off), which is
// what lets the soak fingerprint canary and the kernel-parity CI gate
// diff campaigns across backends. tests/test_dsp_kernels.cpp asserts the
// contract on randomized inputs, including remainder lanes.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dsp/complex_vec.hpp"

namespace carpool::dsp {

/// 802.11 K=7 convolutional code trellis: 64 states, generators
/// g0=0133/g1=0171 (octal). Mirrors ConvolutionalCode in src/fec; the
/// values are re-stated here because dsp must not depend on fec (fec
/// links against dsp's kernels).
inline constexpr std::size_t kViterbiStates = 64;
inline constexpr unsigned kViterbiG0 = 0133;
inline constexpr unsigned kViterbiG1 = 0171;

/// Branch-metric sign tables, indexed by *next* state n in [0, 64).
/// The two predecessors of n are p0 = 2*(n & 31) and p1 = p0 + 1; the
/// encoder input bit on both incoming edges is n >> 5. sAB[n] is the
/// +1/-1 expectation of coded bit B on the edge from predecessor pA.
struct ViterbiTables {
  alignas(64) double s00[kViterbiStates];
  alignas(64) double s01[kViterbiStates];
  alignas(64) double s10[kViterbiStates];
  alignas(64) double s11[kViterbiStates];
};

/// The process-wide branch tables (computed once).
const ViterbiTables& viterbi_tables() noexcept;

/// Twiddle factors for a size-n transform (n a power of two), stage-major:
/// for each stage len = 2, 4, ..., n the len/2 factors w_k, so the stage
/// with span `len` starts at offset len/2 - 1 and the table holds n - 1
/// entries. Built by the same serial w *= w_len recurrence the scalar
/// reference uses, so every backend multiplies by the identical values.
/// sign = -1 forward, +1 inverse. Thread-safe; pointers stay valid for
/// the process lifetime.
const Cx* fft_twiddles(std::size_t n, int sign);

/// One backend = one table of kernel entry points. All pointers are
/// non-null in every registered backend.
struct KernelBackend {
  const char* name;  ///< "scalar", "sse2", "avx2", "avx512"

  /// In-place radix-2 transform, bit-reversal included; n must be a
  /// nonzero power of two (validated by the caller). sign = -1 forward,
  /// +1 inverse (unscaled).
  void (*fft)(Cx* data, std::size_t n, int sign);

  /// Batched in-place transform of `count` independent n-point symbols
  /// stored back to back (symbol s at data + s*n) — the OFDM demodulator
  /// hands a whole frame's symbols over at once. Bit-identical to
  /// calling fft() per symbol; the SIMD tiers transpose groups of
  /// symbols into structure-of-arrays form so every vector lane carries
  /// one symbol through the shared butterfly sequence.
  void (*fft_batch)(Cx* data, std::size_t n, std::size_t count, int sign);

  /// Viterbi forward pass (add-compare-select) over `steps` trellis
  /// steps of rate-1/2 soft input (soft[2t], soft[2t+1]; 0.0 = erasure).
  /// Writes one select word per step: bit n of sel[t] is 1 when the
  /// surviving edge into next-state n comes from predecessor
  /// 2*(n & 31) + 1 (0 = the even predecessor, ties keep the even one).
  /// final_metric receives the 64 path metrics after the last step.
  void (*viterbi_forward)(const double* soft, std::size_t steps,
                          std::uint64_t* sel, double* final_metric);

  /// Per-subcarrier equalization of n gathered bins: for each i,
  /// data_out[i] = (bins[i] / h[i]) * derotate and gains_out[i] =
  /// |h[i]|^2, with h[i] == 0 treated as an erased subcarrier
  /// (data_out 0, gains_out 0). Division follows Smith's algorithm (see
  /// div_smith) so SIMD lanes and the scalar loop round identically.
  void (*equalize)(const Cx* bins, const Cx* h, std::size_t n, Cx derotate,
                   Cx* data_out, double* gains_out);

  /// Batched keyed-hash finalizer for the A-HDR Bloom filter:
  /// hashes[i] = mix64(base ^ mix64(keys[i] ^ 0x9e3779b97f4a7c15)),
  /// i.e. keyed_hash(data, keys[i]) with base = fnv1a64(data).
  void (*ahdr_mix)(std::uint64_t base, const std::uint64_t* keys,
                   std::size_t n, std::uint64_t* hashes);
};

/// The portable scalar reference backend (always available).
const KernelBackend& scalar_backend() noexcept;

/// The best SIMD tier compiled in *and* supported by this CPU, or null
/// when none is (non-x86 builds, or x86 without SSE2 — i.e. never on
/// x86-64).
const KernelBackend* simd_backend() noexcept;

/// A specific backend by name ("scalar", "sse2", "avx2", "avx512"), or
/// null when that tier is not compiled in / not supported by this CPU.
/// Parity tests use this to diff tiers pairwise.
const KernelBackend* backend_by_name(std::string_view name) noexcept;

/// Every backend usable on this CPU, scalar first, then ascending SIMD
/// tiers.
std::vector<const KernelBackend*> available_backends();

/// The backend the PHY/FEC wrappers dispatch to. Resolution order:
///   1. the most recent successful select_kernel() call,
///   2. $CARPOOL_KERNEL ("auto" | "scalar" | "simd" | a tier name) —
///      an unparseable value warns once, bumps dsp.kernel_env_invalid,
///      and conservatively falls back to scalar; a recognized but
///      unsupported tier warns once and falls back to the best
///      available tier,
///   3. auto: the best SIMD tier, else scalar.
const KernelBackend& active_backend() noexcept;

enum class KernelSelect {
  kOk,           ///< selection applied
  kUnknown,      ///< not a recognized kernel name (CLI: usage + exit 2)
  kUnavailable,  ///< recognized tier, but not supported on this CPU
};

/// Select the active backend by name: "auto", "scalar", "simd", or a
/// specific tier ("sse2", "avx2", "avx512"). Strict: garbage returns
/// kUnknown and leaves the selection unchanged — CLIs translate that to
/// usage + exit 2 (the resolve_threads flag-hardening convention).
KernelSelect select_kernel(std::string_view name) noexcept;

/// RAII backend override for benchmarks and parity tests: forces the
/// given backend for the current process, restores the previous
/// selection on destruction. Not thread-scoped — do not interleave with
/// concurrent select_kernel calls.
class ScopedKernel {
 public:
  explicit ScopedKernel(const KernelBackend& backend) noexcept;
  ~ScopedKernel();
  ScopedKernel(const ScopedKernel&) = delete;
  ScopedKernel& operator=(const ScopedKernel&) = delete;

 private:
  const KernelBackend* previous_;
};

/// Detected CPU SIMD features, e.g. "sse2 avx2 avx512f" ("none" when no
/// tier is usable).
std::string cpu_features();

/// One-line dispatch summary for CLI banners and the CI job summary:
/// active backend, how it was chosen, CPU features, compiled tiers.
std::string kernel_info();

/// Smith's-algorithm complex division shared by the equalizer backends
/// and the pilot phase estimate: branch-free formulation whose per-lane
/// operation sequence matches the SIMD implementation exactly. An exact
/// zero denominator yields garbage (callers mask h == 0 beforehand).
Cx div_smith(Cx num, Cx den) noexcept;

struct PilotEstimate {
  Cx corr;
  double magnitude_sum = 0.0;
};

/// Serial pilot correlation against the expected +-1 pattern:
/// corr = sum_i (bins[i] / h[i]) * expected[i], magnitude_sum =
/// sum_i |bins[i] / h[i]|, skipping pilots with h[i] == 0. Serial and
/// shared by every backend (n is 4), so the phase estimate — and with it
/// the derotation each backend applies — is backend-independent.
PilotEstimate pilot_estimate(const Cx* bins, const Cx* h,
                             const double* expected, std::size_t n) noexcept;

}  // namespace carpool::dsp
