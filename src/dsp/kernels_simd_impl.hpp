// Width-generic SIMD kernel implementation (internal to src/dsp).
//
// Included by one translation unit per tier with
//   CARPOOL_KV_LANES  — doubles per vector (2 = SSE2, 4 = AVX2, 8 = AVX-512)
//   CARPOOL_KV_NS     — tier namespace (simd_sse2, simd_avx2, simd_avx512)
//   CARPOOL_KV_NAME   — backend display name string
// and compiled with that tier's -m flags plus -ffp-contract=off.
//
// The code uses GCC/Clang vector extensions, not intrinsics: every
// arithmetic statement is an element-wise IEEE-754 operation the
// compiler may not reassociate or contract, so each lane computes the
// exact operation sequence the scalar reference runs per element
// (kernels_internal.hpp). Shuffles, sign-bit flips, and mask blends are
// bit-exact data movement. That is the whole bit-identity argument; the
// parity suite (tests/test_dsp_kernels.cpp) checks it on random inputs.
//
// All loads/stores go through memcpy helpers: the hot arrays are
// std::complex<double> buffers with no vector alignment guarantee, and
// the sanitizer lanes run these kernels with alignment checks on.

#if !defined(CARPOOL_KV_LANES) || !defined(CARPOOL_KV_NS) || \
    !defined(CARPOOL_KV_NAME)
#error "kernels_simd_impl.hpp requires CARPOOL_KV_* macros"
#endif

#include <cstring>

#include "dsp/kernels.hpp"
#include "dsp/kernels_internal.hpp"

namespace carpool::dsp::detail {
namespace CARPOOL_KV_NS {

inline constexpr std::size_t kLanes = CARPOOL_KV_LANES;  // doubles
inline constexpr std::size_t kCplx = kLanes / 2;  // complexes per vector

typedef double vd __attribute__((vector_size(kLanes * 8)));
typedef long long vi __attribute__((vector_size(kLanes * 8)));
typedef unsigned long long vu __attribute__((vector_size(kLanes * 8)));

#if CARPOOL_KV_LANES == 2
#define KV_SWAP_PAIRS {1, 0}
#define KV_DUP_EVEN {0, 0}
#define KV_DUP_ODD {1, 1}
#define KV_DEINT_EVEN {0, 2}
#define KV_DEINT_ODD {1, 3}
#elif CARPOOL_KV_LANES == 4
#define KV_SWAP_PAIRS {1, 0, 3, 2}
#define KV_DUP_EVEN {0, 0, 2, 2}
#define KV_DUP_ODD {1, 1, 3, 3}
#define KV_DEINT_EVEN {0, 2, 4, 6}
#define KV_DEINT_ODD {1, 3, 5, 7}
#elif CARPOOL_KV_LANES == 8
#define KV_SWAP_PAIRS {1, 0, 3, 2, 5, 4, 7, 6}
#define KV_DUP_EVEN {0, 0, 2, 2, 4, 4, 6, 6}
#define KV_DUP_ODD {1, 1, 3, 3, 5, 5, 7, 7}
#define KV_DEINT_EVEN {0, 2, 4, 6, 8, 10, 12, 14}
#define KV_DEINT_ODD {1, 3, 5, 7, 9, 11, 13, 15}
#else
#error "unsupported CARPOOL_KV_LANES"
#endif

inline vd loadu(const double* p) noexcept {
  vd v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline void storeu(double* p, vd v) noexcept { std::memcpy(p, &v, sizeof v); }

inline vu loadu_u64(const std::uint64_t* p) noexcept {
  vu v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline void storeu_u64(std::uint64_t* p, vu v) noexcept {
  std::memcpy(p, &v, sizeof v);
}

inline vd splat(double x) noexcept { return vd{} + x; }

/// [a0,a1,a2,a3] -> [a1,a0,a3,a2] (re/im swap of each complex pair).
inline vd swap_pairs(vd v) noexcept {
  return __builtin_shuffle(v, vi KV_SWAP_PAIRS);
}

/// Duplicate the real (even) lane of each pair into both lanes.
inline vd dup_even(vd v) noexcept {
  return __builtin_shuffle(v, vi KV_DUP_EVEN);
}

/// Duplicate the imag (odd) lane of each pair into both lanes.
inline vd dup_odd(vd v) noexcept {
  return __builtin_shuffle(v, vi KV_DUP_ODD);
}

/// Even lanes of the (a, b) concatenation: [a0, a2, .., b0, b2, ..].
inline vd deint_even(vd a, vd b) noexcept {
  return __builtin_shuffle(a, b, vi KV_DEINT_EVEN);
}

inline vd deint_odd(vd a, vd b) noexcept {
  return __builtin_shuffle(a, b, vi KV_DEINT_ODD);
}

/// Sign-bit constant with -0.0 in even (real) lanes — XORing with it
/// negates the even lanes exactly.
inline vd neg_even_mask() noexcept {
  vd m{};
  for (std::size_t l = 0; l < kLanes; l += 2) m[l] = -0.0;
  return m;
}

inline vd neg_odd_mask() noexcept {
  vd m{};
  for (std::size_t l = 1; l < kLanes; l += 2) m[l] = -0.0;
  return m;
}

/// Lane-wise bit select: mask ? a : b (mask lanes all-ones or zero).
inline vd bit_select(vi mask, vd a, vd b) noexcept {
  return (vd)((mask & (vi)a) | (~mask & (vi)b));
}

/// In-place kLanes x kLanes double-matrix transpose of vector rows:
/// after the call t[j][l] holds what t[l][j] held before. Pure shuffle
/// data movement (no arithmetic), so bit-exact. This is what turns the
/// batched FFT's AoS<->SoA conversion into vector ops instead of a
/// per-element scalar gather.
inline void transpose(vd* t) noexcept {
#if CARPOOL_KV_LANES == 2
  const vd r0 = __builtin_shuffle(t[0], t[1], vi{0, 2});
  const vd r1 = __builtin_shuffle(t[0], t[1], vi{1, 3});
  t[0] = r0;
  t[1] = r1;
#elif CARPOOL_KV_LANES == 4
  const vd u0 = __builtin_shuffle(t[0], t[1], vi{0, 4, 2, 6});
  const vd u1 = __builtin_shuffle(t[0], t[1], vi{1, 5, 3, 7});
  const vd u2 = __builtin_shuffle(t[2], t[3], vi{0, 4, 2, 6});
  const vd u3 = __builtin_shuffle(t[2], t[3], vi{1, 5, 3, 7});
  t[0] = __builtin_shuffle(u0, u2, vi{0, 1, 4, 5});
  t[1] = __builtin_shuffle(u1, u3, vi{0, 1, 4, 5});
  t[2] = __builtin_shuffle(u0, u2, vi{2, 3, 6, 7});
  t[3] = __builtin_shuffle(u1, u3, vi{2, 3, 6, 7});
#elif CARPOOL_KV_LANES == 8
  // Recursive-doubling network: unpack 1-lane pairs, then 2-lane
  // blocks, then 4-lane halves — 24 two-source shuffles total.
  const vi lo1{0, 8, 2, 10, 4, 12, 6, 14};
  const vi hi1{1, 9, 3, 11, 5, 13, 7, 15};
  const vd u0 = __builtin_shuffle(t[0], t[1], lo1);
  const vd u1 = __builtin_shuffle(t[0], t[1], hi1);
  const vd u2 = __builtin_shuffle(t[2], t[3], lo1);
  const vd u3 = __builtin_shuffle(t[2], t[3], hi1);
  const vd u4 = __builtin_shuffle(t[4], t[5], lo1);
  const vd u5 = __builtin_shuffle(t[4], t[5], hi1);
  const vd u6 = __builtin_shuffle(t[6], t[7], lo1);
  const vd u7 = __builtin_shuffle(t[6], t[7], hi1);
  const vi lo2{0, 1, 8, 9, 4, 5, 12, 13};
  const vi hi2{2, 3, 10, 11, 6, 7, 14, 15};
  const vd v0 = __builtin_shuffle(u0, u2, lo2);
  const vd v2 = __builtin_shuffle(u0, u2, hi2);
  const vd v1 = __builtin_shuffle(u1, u3, lo2);
  const vd v3 = __builtin_shuffle(u1, u3, hi2);
  const vd v4 = __builtin_shuffle(u4, u6, lo2);
  const vd v6 = __builtin_shuffle(u4, u6, hi2);
  const vd v5 = __builtin_shuffle(u5, u7, lo2);
  const vd v7 = __builtin_shuffle(u5, u7, hi2);
  const vi lo4{0, 1, 2, 3, 8, 9, 10, 11};
  const vi hi4{4, 5, 6, 7, 12, 13, 14, 15};
  t[0] = __builtin_shuffle(v0, v4, lo4);
  t[4] = __builtin_shuffle(v0, v4, hi4);
  t[1] = __builtin_shuffle(v1, v5, lo4);
  t[5] = __builtin_shuffle(v1, v5, hi4);
  t[2] = __builtin_shuffle(v2, v6, lo4);
  t[6] = __builtin_shuffle(v2, v6, hi4);
  t[3] = __builtin_shuffle(v3, v7, lo4);
  t[7] = __builtin_shuffle(v3, v7, hi4);
#endif
}

/// Element-wise complex multiply of pair-vectors: for each pair,
/// re = ar*br - ai*bi, im = ai*br + ar*bi — the same two products and
/// one add/sub per component as detail::cx_mul (addition commutes
/// bit-exactly for the finite inputs these kernels see).
inline vd cx_mul_v(vd a, vd b) noexcept {
  const vd br = dup_even(b);
  const vd bi = dup_odd(b);
  const vd as = swap_pairs(a);
  const vd t1 = a * br;                               // [ar*br, ai*br]
  const vd t2 = as * bi;                              // [ai*bi, ar*bi]
  return t1 + (vd)((vi)t2 ^ (vi)neg_even_mask());     // [t1-t2, t1+t2]
}

// ----------------------------------------------------------------- FFT

void fft_simd(Cx* data, std::size_t n, int sign) {
  bit_reverse(data, n);
  const Cx* tw = fft_twiddles(n, sign);
  double* raw = reinterpret_cast<double*>(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const Cx* w = tw + (half - 1);
    if (half < kCplx) {
      // Stage span shorter than a vector: run the scalar reference ops.
      for (std::size_t i = 0; i < n; i += len) {
        for (std::size_t k = 0; k < half; ++k) {
          butterfly(data[i + k], data[i + k + half], w[k]);
        }
      }
      continue;
    }
    const double* wraw = reinterpret_cast<const double*>(w);
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; k += kCplx) {
        double* up = raw + 2 * (i + k);
        double* vp = raw + 2 * (i + k + half);
        const vd u = loadu(up);
        const vd v = loadu(vp);
        const vd wv = loadu(wraw + 2 * k);
        const vd t = cx_mul_v(v, wv);
        storeu(up, u + t);
        storeu(vp, u - t);
      }
    }
  }
}

/// Batched transform: groups of kLanes symbols are transposed into
/// structure-of-arrays form (separate re/im planes, one vector lane per
/// symbol) so every butterfly is a pure element-wise vector op — the
/// same mul/sub/add sequence per lane that detail::cx_mul/butterfly run
/// per symbol, hence bit-identical to the scalar per-symbol transform.
void fft_batch_simd(Cx* data, std::size_t n, std::size_t count, int sign) {
  const Cx* tw = fft_twiddles(n, sign);
  std::size_t s = 0;
  if (count >= kLanes && n >= kLanes) {
    static thread_local std::vector<double> scratch;
    static thread_local std::vector<std::uint32_t> rev;
    scratch.resize(2 * n * kLanes);
    double* re = scratch.data();
    double* im = scratch.data() + n * kLanes;
    // Bit-reversal index table: rev[i] is i with its log2(n) bits
    // reversed — the same involution bit_reverse applies in place.
    rev.resize(n);
    rev[0] = 0;
    for (std::size_t i = 1; i < n; ++i) {
      rev[i] = static_cast<std::uint32_t>(
          (rev[i >> 1] >> 1) | ((i & 1) ? n >> 1 : 0));
    }
    for (; s + kLanes <= count; s += kLanes) {
      double* braw = reinterpret_cast<double*>(data + s * n);
      // AoS -> SoA: in-register transposes of kLanes x kLanes tiles
      // (kCplx complexes per symbol at a time), storing each position's
      // re/im rows at the bit-reversed plane index so the separate
      // per-symbol bit_reverse pass disappears into the store address.
      vd t[kLanes];
      for (std::size_t i = 0; i < n; i += kCplx) {
        for (std::size_t l = 0; l < kLanes; ++l) {
          t[l] = loadu(braw + 2 * (l * n + i));
        }
        transpose(t);
        for (std::size_t j = 0; j < kCplx; ++j) {
          const std::size_t d = rev[i + j];
          storeu(re + d * kLanes, t[2 * j]);
          storeu(im + d * kLanes, t[2 * j + 1]);
        }
      }
      // SoA butterfly: the same mul/sub/add sequence per lane that
      // detail::cx_mul + butterfly run per symbol.
      const auto bfly = [](vd& ur, vd& ui, vd& vr, vd& vi_, vd wr,
                           vd wi) {
        const vd tr = vr * wr - vi_ * wi;
        const vd ti = vr * wi + vi_ * wr;
        vr = ur - tr;
        vi_ = ui - ti;
        ur = ur + tr;
        ui = ui + ti;
      };
      std::size_t len = 2;
      // Three stages per pass (radix-8 register blocking): 8 position
      // vectors stay in registers across 12 butterflies, cutting the
      // stage-loop memory traffic 3x. Each butterfly is the identical
      // element-wise sequence in the identical stage order, so the
      // fusion is pure register reuse and bit-identity holds.
      for (; 4 * len <= n; len <<= 3) {
        const std::size_t h = len / 2;
        const Cx* w1 = tw + (h - 1);        // stage len     (half = h)
        const Cx* w2 = tw + (len - 1);      // stage 2*len   (half = 2h)
        const Cx* w3 = tw + (2 * len - 1);  // stage 4*len   (half = 4h)
        for (std::size_t k = 0; k < h; ++k) {
          // k-outer so the seven twiddle broadcasts hoist out of the
          // block loop (the first pass has h == 1 and many blocks).
          const vd w1r = splat(w1[k].real());
          const vd w1i = splat(w1[k].imag());
          const vd w2ar = splat(w2[k].real());
          const vd w2ai = splat(w2[k].imag());
          const vd w2br = splat(w2[k + h].real());
          const vd w2bi = splat(w2[k + h].imag());
          const vd w3ar = splat(w3[k].real());
          const vd w3ai = splat(w3[k].imag());
          const vd w3br = splat(w3[k + h].real());
          const vd w3bi = splat(w3[k + h].imag());
          const vd w3cr = splat(w3[k + 2 * h].real());
          const vd w3ci = splat(w3[k + 2 * h].imag());
          const vd w3dr = splat(w3[k + 3 * h].real());
          const vd w3di = splat(w3[k + 3 * h].imag());
          for (std::size_t i = 0; i < n; i += 8 * h) {
            vd xr[8], xi[8];
            for (std::size_t j = 0; j < 8; ++j) {
              const std::size_t p = (i + k + j * h) * kLanes;
              xr[j] = loadu(re + p);
              xi[j] = loadu(im + p);
            }
            bfly(xr[0], xi[0], xr[1], xi[1], w1r, w1i);
            bfly(xr[2], xi[2], xr[3], xi[3], w1r, w1i);
            bfly(xr[4], xi[4], xr[5], xi[5], w1r, w1i);
            bfly(xr[6], xi[6], xr[7], xi[7], w1r, w1i);
            bfly(xr[0], xi[0], xr[2], xi[2], w2ar, w2ai);
            bfly(xr[1], xi[1], xr[3], xi[3], w2br, w2bi);
            bfly(xr[4], xi[4], xr[6], xi[6], w2ar, w2ai);
            bfly(xr[5], xi[5], xr[7], xi[7], w2br, w2bi);
            bfly(xr[0], xi[0], xr[4], xi[4], w3ar, w3ai);
            bfly(xr[1], xi[1], xr[5], xi[5], w3br, w3bi);
            bfly(xr[2], xi[2], xr[6], xi[6], w3cr, w3ci);
            bfly(xr[3], xi[3], xr[7], xi[7], w3dr, w3di);
            for (std::size_t j = 0; j < 8; ++j) {
              const std::size_t p = (i + k + j * h) * kLanes;
              storeu(re + p, xr[j]);
              storeu(im + p, xi[j]);
            }
          }
        }
      }
      for (; len <= n; len <<= 1) {  // leftover stages, one at a time
        const std::size_t half = len / 2;
        const Cx* w = tw + (half - 1);
        for (std::size_t k = 0; k < half; ++k) {
          const vd wr = splat(w[k].real());
          const vd wi = splat(w[k].imag());
          for (std::size_t i = 0; i < n; i += len) {
            vd ur = loadu(re + (i + k) * kLanes);
            vd ui = loadu(im + (i + k) * kLanes);
            vd vr = loadu(re + (i + k + half) * kLanes);
            vd vi_ = loadu(im + (i + k + half) * kLanes);
            bfly(ur, ui, vr, vi_, wr, wi);
            storeu(re + (i + k) * kLanes, ur);
            storeu(im + (i + k) * kLanes, ui);
            storeu(re + (i + k + half) * kLanes, vr);
            storeu(im + (i + k + half) * kLanes, vi_);
          }
        }
      }
      // SoA -> AoS: the same tile transpose run the other way round
      // (rows alternate re/im planes, columns come out per symbol).
      for (std::size_t i = 0; i < n; i += kCplx) {
        for (std::size_t j = 0; j < kCplx; ++j) {
          t[2 * j] = loadu(re + (i + j) * kLanes);
          t[2 * j + 1] = loadu(im + (i + j) * kLanes);
        }
        transpose(t);
        for (std::size_t l = 0; l < kLanes; ++l) {
          storeu(braw + 2 * (l * n + i), t[l]);
        }
      }
    }
  }
  for (; s < count; ++s) {  // remainder symbols: single-symbol kernel
    fft_simd(data + s * n, n, sign);
  }
}

// ------------------------------------------------------------- Viterbi

void viterbi_forward_simd(const double* soft, std::size_t steps,
                          std::uint64_t* sel, double* final_metric) {
  static_assert(kLanes <= 32, "block must not cross the input-bit halves");
  const ViterbiTables& tb = viterbi_tables();
  alignas(64) double metric[kViterbiStates];
  alignas(64) double next_metric[kViterbiStates];
  for (std::size_t s = 0; s < kViterbiStates; ++s) metric[s] = kViterbiInf;
  metric[0] = 0.0;

  // lane_bit[l] = 1 << l; shifted by the block base n it turns a
  // comparison mask into the select bits for states n..n+kLanes-1.
  vu lane_bit{};
  for (std::size_t l = 0; l < kLanes; ++l) {
    lane_bit[l] = std::uint64_t{1} << l;
  }

  for (std::size_t t = 0; t < steps; ++t) {
    const vd r0 = splat(soft[2 * t]);
    const vd r1 = splat(soft[2 * t + 1]);
    vu word_acc{};
    for (std::size_t n = 0; n < kViterbiStates; n += kLanes) {
      const std::size_t base = 2 * (n & 31);
      const vd a = loadu(metric + base);
      const vd b = loadu(metric + base + kLanes);
      const vd pm0 = deint_even(a, b);  // metrics of even predecessors
      const vd pm1 = deint_odd(a, b);   // metrics of odd predecessors
      const vd m0 = pm0 - (loadu(tb.s00 + n) * r0 + loadu(tb.s01 + n) * r1);
      const vd m1 = pm1 - (loadu(tb.s10 + n) * r0 + loadu(tb.s11 + n) * r1);
      const vi pick_odd = (vi)(m1 < m0);  // ties keep the even pred
      storeu(next_metric + n, bit_select(pick_odd, m1, m0));
      word_acc |= (vu)pick_odd & (lane_bit << n);
    }
    std::uint64_t word = 0;
    for (std::size_t l = 0; l < kLanes; ++l) word |= word_acc[l];
    sel[t] = word;
    std::memcpy(metric, next_metric, sizeof(metric));
  }
  std::memcpy(final_metric, metric, sizeof(metric));
}

// ----------------------------------------------------------- Equalizer

void equalize_simd(const Cx* bins, const Cx* h, std::size_t n, Cx derotate,
                   Cx* data_out, double* gains_out) {
  const double* braw = reinterpret_cast<const double*>(bins);
  const double* hraw = reinterpret_cast<const double*>(h);
  double* oraw = reinterpret_cast<double*>(data_out);
  const vd drr = splat(derotate.real());
  const vd dri = splat(derotate.imag());
  const vd neg_even = neg_even_mask();
  const vd neg_odd = neg_odd_mask();
  const vi abs_mask = ~(vi)neg_odd & ~(vi)neg_even;  // clear sign bits
  const vd zero{};

  std::size_t i = 0;
  for (; i + kCplx <= n; i += kCplx) {
    const vd num = loadu(braw + 2 * i);
    const vd den = loadu(hraw + 2 * i);
    // Smith's algorithm, branchless: when |c| >= |d| the operand pair
    // is processed swapped and the quotient's imag lane sign-flipped —
    // the exact scalar sequence in detail::smith_div.
    const vd c_abs = (vd)((vi)dup_even(den) & abs_mask);
    const vd d_abs = (vd)((vi)dup_odd(den) & abs_mask);
    const vi swap_m = ~(vi)(c_abs < d_abs);
    const vd nsel = bit_select(swap_m, swap_pairs(num), num);
    const vd dsel = bit_select(swap_m, swap_pairs(den), den);
    const vd cc = dup_even(dsel);
    const vd dd = dup_odd(dsel);
    const vd ratio = cc / dd;
    const vd denom = cc * ratio + dd;
    const vd t1 = nsel * ratio;  // [aa*ratio, bb*ratio]
    const vd t2 = (vd)((vi)swap_pairs(nsel) ^ (vi)neg_odd);  // [bb, -aa]
    vd q = (t1 + t2) / denom;    // [x, y-before-sign-fix]
    q = (vd)((vi)q ^ (swap_m & (vi)neg_odd));  // y = -y where swapped
    // Derotate: complex multiply by the broadcast unit rotation.
    const vd t3 = q * drr;
    const vd t4 = swap_pairs(q) * dri;
    vd res = t3 + (vd)((vi)t4 ^ (vi)neg_even);
    // Erased subcarriers (h == 0): exact 0 out, before any NaN leaks.
    const vi dead = (vi)(dup_even(den) == zero) & (vi)(dup_odd(den) == zero);
    res = (vd)(~dead & (vi)res);
    storeu(oraw + 2 * i, res);
    // Gains |h|^2: same c*c + d*d per element as the scalar loop.
    const vd hh = den * den;
    for (std::size_t p = 0; p < kCplx; ++p) {
      gains_out[i + p] = hh[2 * p] + hh[2 * p + 1];
    }
  }
  for (; i < n; ++i) {  // remainder lanes: scalar reference ops
    equalize_one(bins[i], h[i], derotate, data_out[i], gains_out[i]);
  }
}

// ---------------------------------------------------------- A-HDR hash

inline vu mix64_v(vu z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void ahdr_mix_simd(std::uint64_t base, const std::uint64_t* keys,
                   std::size_t n, std::uint64_t* hashes) {
  const vu basev = vu{} + base;
  const vu golden = vu{} + 0x9e3779b97f4a7c15ULL;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const vu k = loadu_u64(keys + i);
    storeu_u64(hashes + i, mix64_v(basev ^ mix64_v(k ^ golden)));
  }
  for (; i < n; ++i) hashes[i] = ahdr_mix_one(base, keys[i]);
}

constexpr KernelBackend kBackend{
    CARPOOL_KV_NAME,      fft_simd,      fft_batch_simd,
    viterbi_forward_simd, equalize_simd, ahdr_mix_simd,
};

}  // namespace CARPOOL_KV_NS
}  // namespace carpool::dsp::detail

#undef KV_SWAP_PAIRS
#undef KV_DUP_EVEN
#undef KV_DUP_ODD
#undef KV_DEINT_EVEN
#undef KV_DEINT_ODD
