// SSE2-width tier: 2 doubles (1 complex) per vector. Compiled with the
// toolchain baseline only — on x86-64 SSE2 is guaranteed, so this tier
// is the floor the "simd" selection can always fall back to.

#define CARPOOL_KV_LANES 2
#define CARPOOL_KV_NS simd_sse2
#define CARPOOL_KV_NAME "sse2"
#include "dsp/kernels_simd_impl.hpp"

namespace carpool::dsp::detail {

const KernelBackend* sse2_backend() noexcept {
  return &simd_sse2::kBackend;
}

}  // namespace carpool::dsp::detail
