#include "dsp/fft.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "dsp/kernels.hpp"

namespace carpool {
namespace {

void check_size(std::size_t n) {
  if (n == 0 || !std::has_single_bit(n)) {
    throw std::invalid_argument("fft: size must be a nonzero power of two");
  }
}

/// Radix-2 transform via the active kernel backend (docs/KERNELS.md);
/// sign = -1 forward, +1 inverse.
void transform(std::span<Cx> data, int sign) {
  check_size(data.size());
  dsp::active_backend().fft(data.data(), data.size(), sign);
}

}  // namespace

void fft_inplace(std::span<Cx> data) { transform(data, -1); }

void ifft_inplace(std::span<Cx> data) {
  transform(data, +1);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (Cx& x : data) x *= inv_n;
}

CxVec fft(std::span<const Cx> data) {
  CxVec out(data.begin(), data.end());
  fft_inplace(out);
  return out;
}

CxVec ifft(std::span<const Cx> data) {
  CxVec out(data.begin(), data.end());
  ifft_inplace(out);
  return out;
}

CxVec dft_reference(std::span<const Cx> data) {
  const std::size_t n = data.size();
  CxVec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Cx acc{};
    for (std::size_t t = 0; t < n; ++t) {
      acc += data[t] * cx_exp(-kTwoPi * static_cast<double>(k) *
                              static_cast<double>(t) /
                              static_cast<double>(n));
    }
    out[k] = acc;
  }
  return out;
}

}  // namespace carpool
