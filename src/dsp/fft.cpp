#include "dsp/fft.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace carpool {
namespace {

void check_size(std::size_t n) {
  if (n == 0 || !std::has_single_bit(n)) {
    throw std::invalid_argument("fft: size must be a nonzero power of two");
  }
}

/// Core iterative radix-2 transform; sign = -1 forward, +1 inverse.
void transform(std::span<Cx> data, int sign) {
  const std::size_t n = data.size();
  check_size(n);

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * kTwoPi / static_cast<double>(len);
    const Cx wlen = cx_exp(angle);
    for (std::size_t i = 0; i < n; i += len) {
      Cx w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cx u = data[i + k];
        const Cx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void fft_inplace(std::span<Cx> data) { transform(data, -1); }

void ifft_inplace(std::span<Cx> data) {
  transform(data, +1);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (Cx& x : data) x *= inv_n;
}

CxVec fft(std::span<const Cx> data) {
  CxVec out(data.begin(), data.end());
  fft_inplace(out);
  return out;
}

CxVec ifft(std::span<const Cx> data) {
  CxVec out(data.begin(), data.end());
  ifft_inplace(out);
  return out;
}

CxVec dft_reference(std::span<const Cx> data) {
  const std::size_t n = data.size();
  CxVec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Cx acc{};
    for (std::size_t t = 0; t < n; ++t) {
      acc += data[t] * cx_exp(-kTwoPi * static_cast<double>(k) *
                              static_cast<double>(t) /
                              static_cast<double>(n));
    }
    out[k] = acc;
  }
  return out;
}

}  // namespace carpool
