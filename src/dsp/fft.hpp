#pragma once

// Radix-2 Cooley-Tukey FFT. OFDM in 802.11a/g/n uses 64-point transforms;
// this implementation handles any power-of-two size so tests can cross-check
// against DFT at several sizes.
//
// Conventions (match common DSP texts and the 802.11 signal model):
//   forward:  X[k] = sum_n x[n] e^{-j 2 pi k n / N}     (no scaling)
//   inverse:  x[n] = (1/N) sum_k X[k] e^{+j 2 pi k n / N}

#include <span>

#include "dsp/complex_vec.hpp"

namespace carpool {

/// In-place forward FFT. Throws std::invalid_argument unless size is a
/// power of two (and nonzero).
void fft_inplace(std::span<Cx> data);

/// In-place inverse FFT (scaled by 1/N).
void ifft_inplace(std::span<Cx> data);

/// Out-of-place conveniences.
CxVec fft(std::span<const Cx> data);
CxVec ifft(std::span<const Cx> data);

/// Direct O(N^2) DFT, for verification in tests.
CxVec dft_reference(std::span<const Cx> data);

}  // namespace carpool
