#include "dsp/kernels.hpp"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>

#include "dsp/kernels_backends.hpp"
#include "dsp/kernels_internal.hpp"
#include "obs/registry.hpp"

namespace carpool::dsp {
namespace {

struct CpuSupport {
  bool sse2 = false;
  bool avx2 = false;
  bool avx512f = false;
};

CpuSupport detect_cpu() noexcept {
  CpuSupport out;
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports consults XCR0, so an OS that does not save
  // the AVX/AVX-512 register state reports the tier unsupported.
  out.sse2 = __builtin_cpu_supports("sse2") != 0;
  out.avx2 = __builtin_cpu_supports("avx2") != 0;
  out.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
  return out;
}

const CpuSupport& cpu() noexcept {
  static const CpuSupport support = detect_cpu();
  return support;
}

std::uint8_t parity(unsigned value) noexcept {
  return static_cast<std::uint8_t>(std::popcount(value) & 1);
}

ViterbiTables build_viterbi_tables() noexcept {
  ViterbiTables tb{};
  for (std::size_t n = 0; n < kViterbiStates; ++n) {
    const unsigned bit = static_cast<unsigned>(n >> 5);
    const unsigned p0 = static_cast<unsigned>(2 * (n & 31));
    const unsigned w0 = (bit << 6) | p0;        // window of the even edge
    const unsigned w1 = (bit << 6) | (p0 + 1);  // window of the odd edge
    tb.s00[n] = parity(w0 & kViterbiG0) ? 1.0 : -1.0;
    tb.s01[n] = parity(w0 & kViterbiG1) ? 1.0 : -1.0;
    tb.s10[n] = parity(w1 & kViterbiG0) ? 1.0 : -1.0;
    tb.s11[n] = parity(w1 & kViterbiG1) ? 1.0 : -1.0;
  }
  return tb;
}

/// Twiddles via the same serial recurrence the pre-kernel FFT ran inline:
/// w starts at 1 and is multiplied by w_len per butterfly, so backends
/// that read the table reproduce the historical rounding exactly.
CxVec build_twiddles(std::size_t n, int sign) {
  CxVec tw;
  tw.reserve(n > 0 ? n - 1 : 0);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        static_cast<double>(sign) * kTwoPi / static_cast<double>(len);
    const Cx wlen = cx_exp(angle);
    Cx w{1.0, 0.0};
    for (std::size_t k = 0; k < len / 2; ++k) {
      tw.push_back(w);
      w = detail::cx_mul(w, wlen);
    }
  }
  return tw;
}

std::atomic<const KernelBackend*> g_selected{nullptr};

}  // namespace

namespace detail {

const KernelBackend* resolve_env_value(const char* env) {
  if (env == nullptr || *env == '\0') {
    const KernelBackend* simd = simd_backend();
    return simd != nullptr ? simd : &scalar_backend();
  }
  const std::string_view name(env);
  if (name == "auto") {
    const KernelBackend* simd = simd_backend();
    return simd != nullptr ? simd : &scalar_backend();
  }
  if (name == "scalar") return &scalar_backend();
  if (name == "simd") {
    const KernelBackend* simd = simd_backend();
    if (simd != nullptr) return simd;
    std::fprintf(stderr,
                 "carpool: CARPOOL_KERNEL=simd but no SIMD tier is usable "
                 "on this CPU; running the scalar backend\n");
    return &scalar_backend();
  }
  if (const KernelBackend* tier = backend_by_name(name); tier != nullptr) {
    return tier;
  }
  if (name == "sse2" || name == "avx2" || name == "avx512") {
    // Recognized tier, unsupported CPU: degrade to the best we have.
    const KernelBackend* simd = simd_backend();
    const KernelBackend* best = simd != nullptr ? simd : &scalar_backend();
    std::fprintf(stderr,
                 "carpool: CARPOOL_KERNEL=%s is not supported on this CPU; "
                 "running the %s backend\n",
                 env, best->name);
    return best;
  }
  // Garbage: warn once, leave a triage counter, and fall back to the
  // conservative scalar reference — the resolve_threads convention
  // (docs/FAULT_TOLERANCE.md, "flag hardening").
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "carpool: ignoring invalid CARPOOL_KERNEL=\"%s\" (want "
                 "auto|scalar|simd|sse2|avx2|avx512); running the scalar "
                 "backend\n",
                 env);
  }
  try {
    obs::Registry::current().counter("dsp.kernel_env_invalid").add();
  } catch (...) {
    // active_backend() is noexcept; the stderr warning already landed.
  }
  return &scalar_backend();
}

}  // namespace detail

namespace {

const KernelBackend* env_default() {
  static const KernelBackend* resolved =
      detail::resolve_env_value(std::getenv("CARPOOL_KERNEL"));
  return resolved;
}

}  // namespace

const ViterbiTables& viterbi_tables() noexcept {
  static const ViterbiTables tables = build_viterbi_tables();
  return tables;
}

const Cx* fft_twiddles(std::size_t n, int sign) {
  // The OFDM hot path is n == 64; give it lock-free magic statics and
  // push every other (test-only) size through a mutexed cache.
  if (n == 64) {
    static const CxVec fwd = build_twiddles(64, -1);
    static const CxVec inv = build_twiddles(64, +1);
    return (sign < 0 ? fwd : inv).data();
  }
  static std::mutex mutex;
  static std::map<std::pair<std::size_t, int>, CxVec> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto [it, inserted] = cache.try_emplace({n, sign < 0 ? -1 : +1});
  if (inserted) it->second = build_twiddles(n, sign < 0 ? -1 : +1);
  return it->second.data();
}

const KernelBackend* simd_backend() noexcept {
  static const KernelBackend* best = []() -> const KernelBackend* {
    const CpuSupport& support = cpu();
    if (support.avx512f) {
      if (const KernelBackend* b = detail::avx512_backend()) return b;
    }
    if (support.avx2) {
      if (const KernelBackend* b = detail::avx2_backend()) return b;
    }
    if (support.sse2) {
      if (const KernelBackend* b = detail::sse2_backend()) return b;
    }
    return nullptr;
  }();
  return best;
}

std::vector<const KernelBackend*> available_backends() {
  std::vector<const KernelBackend*> out{&scalar_backend()};
  const CpuSupport& support = cpu();
  if (support.sse2) {
    if (const KernelBackend* b = detail::sse2_backend()) out.push_back(b);
  }
  if (support.avx2) {
    if (const KernelBackend* b = detail::avx2_backend()) out.push_back(b);
  }
  if (support.avx512f) {
    if (const KernelBackend* b = detail::avx512_backend()) out.push_back(b);
  }
  return out;
}

std::string cpu_features() {
  const CpuSupport& support = cpu();
  std::string out;
  if (support.sse2) out += "sse2 ";
  if (support.avx2) out += "avx2 ";
  if (support.avx512f) out += "avx512f ";
  if (out.empty()) return "none";
  out.pop_back();
  return out;
}

const KernelBackend* backend_by_name(std::string_view name) noexcept {
  if (name == "scalar") return &scalar_backend();
  const CpuSupport& support = cpu();
  if (name == "sse2" && support.sse2) return detail::sse2_backend();
  if (name == "avx2" && support.avx2) return detail::avx2_backend();
  if (name == "avx512" && support.avx512f) return detail::avx512_backend();
  return nullptr;
}

const KernelBackend& active_backend() noexcept {
  const KernelBackend* selected = g_selected.load(std::memory_order_acquire);
  if (selected != nullptr) return *selected;
  return *env_default();
}

KernelSelect select_kernel(std::string_view name) noexcept {
  if (name == "auto") {
    const KernelBackend* simd = simd_backend();
    g_selected.store(simd != nullptr ? simd : &scalar_backend(),
                     std::memory_order_release);
    return KernelSelect::kOk;
  }
  if (name == "scalar") {
    g_selected.store(&scalar_backend(), std::memory_order_release);
    return KernelSelect::kOk;
  }
  if (name == "simd") {
    const KernelBackend* simd = simd_backend();
    if (simd == nullptr) return KernelSelect::kUnavailable;
    g_selected.store(simd, std::memory_order_release);
    return KernelSelect::kOk;
  }
  if (name == "sse2" || name == "avx2" || name == "avx512") {
    const KernelBackend* tier = backend_by_name(name);
    if (tier == nullptr) return KernelSelect::kUnavailable;
    g_selected.store(tier, std::memory_order_release);
    return KernelSelect::kOk;
  }
  return KernelSelect::kUnknown;
}

ScopedKernel::ScopedKernel(const KernelBackend& backend) noexcept
    : previous_(g_selected.load(std::memory_order_acquire)) {
  g_selected.store(&backend, std::memory_order_release);
}

ScopedKernel::~ScopedKernel() {
  g_selected.store(previous_, std::memory_order_release);
}

std::string kernel_info() {
  std::string out = "kernel backend: ";
  out += active_backend().name;
  out += g_selected.load(std::memory_order_acquire) != nullptr
             ? " (selected)"
             : (std::getenv("CARPOOL_KERNEL") != nullptr ? " (env)"
                                                         : " (auto)");
  out += "; cpu: ";
  out += cpu_features();
  out += "; tiers:";
  for (const KernelBackend* backend : available_backends()) {
    out += ' ';
    out += backend->name;
  }
  return out;
}

Cx div_smith(Cx num, Cx den) noexcept {
  double x = 0.0, y = 0.0;
  detail::smith_div(num.real(), num.imag(), den.real(), den.imag(), x, y);
  return Cx{x, y};
}

PilotEstimate pilot_estimate(const Cx* bins, const Cx* h,
                             const double* expected,
                             std::size_t n) noexcept {
  PilotEstimate out;
  for (std::size_t i = 0; i < n; ++i) {
    if (h[i] == Cx{}) continue;
    const Cx eq = div_smith(bins[i], h[i]);
    // expected[i] is real +-1: componentwise multiply, exact.
    out.corr += Cx{eq.real() * expected[i], eq.imag() * expected[i]};
    out.magnitude_sum += std::abs(eq);
  }
  return out;
}

}  // namespace carpool::dsp
