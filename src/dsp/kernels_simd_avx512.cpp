// AVX-512-width tier: 8 doubles (4 complexes) per vector. This TU gets
// -mavx512f on x86 (src/dsp/CMakeLists.txt); kernels.cpp only
// dispatches here when __builtin_cpu_supports("avx512f") passes, which
// includes the XCR0 check for OS register-state support.

#define CARPOOL_KV_LANES 8
#define CARPOOL_KV_NS simd_avx512
#define CARPOOL_KV_NAME "avx512"
#include "dsp/kernels_simd_impl.hpp"

namespace carpool::dsp::detail {

const KernelBackend* avx512_backend() noexcept {
  return &simd_avx512::kBackend;
}

}  // namespace carpool::dsp::detail
