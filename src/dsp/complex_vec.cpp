#include "dsp/complex_vec.hpp"

#include <cmath>
#include <stdexcept>

namespace carpool {

double mean_power(std::span<const Cx> samples) {
  if (samples.empty()) return 0.0;
  return energy(samples) / static_cast<double>(samples.size());
}

double energy(std::span<const Cx> samples) {
  double total = 0.0;
  for (const Cx& s : samples) total += std::norm(s);
  return total;
}

void scale(std::span<Cx> samples, double factor) {
  for (Cx& s : samples) s *= factor;
}

void rotate(std::span<Cx> samples, double theta) {
  const Cx phasor = cx_exp(theta);
  for (Cx& s : samples) s *= phasor;
}

CxVec multiply(std::span<const Cx> a, std::span<const Cx> b) {
  if (a.size() != b.size()) throw std::invalid_argument("multiply: size");
  CxVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

CxVec divide(std::span<const Cx> a, std::span<const Cx> b) {
  if (a.size() != b.size()) throw std::invalid_argument("divide: size");
  CxVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = (b[i] == Cx{}) ? Cx{} : a[i] / b[i];
  }
  return out;
}

double wrap_angle(double theta) {
  theta = std::fmod(theta + kPi, kTwoPi);
  if (theta <= 0.0) theta += kTwoPi;
  return theta - kPi;
}

double evm(std::span<const Cx> rx, std::span<const Cx> ref) {
  if (rx.size() != ref.size()) throw std::invalid_argument("evm: size");
  if (rx.empty()) return 0.0;
  double err = 0.0;
  double pow_ref = 0.0;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    err += std::norm(rx[i] - ref[i]);
    pow_ref += std::norm(ref[i]);
  }
  return pow_ref == 0.0 ? 0.0 : std::sqrt(err / pow_ref);
}

}  // namespace carpool
