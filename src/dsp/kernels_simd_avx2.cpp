// AVX2-width tier: 4 doubles (2 complexes) per vector. This TU gets
// -mavx2 on x86 (src/dsp/CMakeLists.txt); kernels.cpp only dispatches
// here when __builtin_cpu_supports("avx2") says the host can run it.

#define CARPOOL_KV_LANES 4
#define CARPOOL_KV_NS simd_avx2
#define CARPOOL_KV_NAME "avx2"
#include "dsp/kernels_simd_impl.hpp"

namespace carpool::dsp::detail {

const KernelBackend* avx2_backend() noexcept {
  return &simd_avx2::kBackend;
}

}  // namespace carpool::dsp::detail
