#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "mac/phy_model.hpp"
#include "mac/simulator.hpp"
#include "sim/phy_trace.hpp"
#include "sim/testbed.hpp"

namespace carpool::sim {
namespace {

TEST(Testbed, ThirtyLocationsInRoom) {
  const TestbedLayout layout;
  ASSERT_EQ(layout.receivers().size(), TestbedLayout::kNumLocations);
  for (const Point& p : layout.receivers()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, TestbedLayout::kRoomSize);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, TestbedLayout::kRoomSize);
  }
  EXPECT_DOUBLE_EQ(layout.transmitter().x, 5.0);
  EXPECT_DOUBLE_EQ(layout.transmitter().y, 5.0);
}

TEST(Testbed, DeterministicForSeed) {
  const TestbedLayout a(2015), b(2015), c(99);
  EXPECT_DOUBLE_EQ(a.receivers()[0].x, b.receivers()[0].x);
  EXPECT_NE(a.receivers()[0].x, c.receivers()[0].x);
}

TEST(Testbed, DistancesAtLeastOneMeter) {
  const TestbedLayout layout;
  for (std::size_t i = 0; i < TestbedLayout::kNumLocations; ++i) {
    EXPECT_GE(layout.distance(i), 1.0);
    EXPECT_LE(layout.distance(i), 8.0);  // room diagonal / 2 + margin
  }
  EXPECT_THROW((void)layout.distance(30), std::out_of_range);
}

TEST(Testbed, SnrIncreasesWithPower) {
  const TestbedLayout layout;
  for (std::size_t loc = 0; loc < 5; ++loc) {
    const double low = layout.snr_db(loc, 0.0125);
    const double high = layout.snr_db(loc, 0.2);
    // 0.0125 -> 0.2 is 16x amplitude = +24 dB.
    EXPECT_NEAR(high - low, 24.0, 0.1);
  }
}

TEST(Testbed, ChannelConfigTracksDistance) {
  const TestbedLayout layout;
  // Find a near and a far location.
  std::size_t near = 0, far = 0;
  for (std::size_t i = 1; i < TestbedLayout::kNumLocations; ++i) {
    if (layout.distance(i) < layout.distance(near)) near = i;
    if (layout.distance(i) > layout.distance(far)) far = i;
  }
  const FadingConfig near_cfg = layout.channel_config(near, 0.1, 1);
  const FadingConfig far_cfg = layout.channel_config(far, 0.1, 1);
  EXPECT_GT(near_cfg.snr_db, far_cfg.snr_db);
}

class TraceModelTest : public ::testing::Test {
 protected:
  static const TracePhyModel& model() {
    static const TracePhyModel instance = [] {
      PhyTraceConfig cfg;
      cfg.snr_grid_db = {18, 26};
      cfg.frames_per_point = 4;
      cfg.subframes_per_frame = 3;
      cfg.subframe_bytes = 400;
      return TracePhyModel::generate(cfg);
    }();
    return instance;
  }
};

TEST_F(TraceModelTest, BerBiasMeasuredFromRealPhy) {
  // Without RTE, later symbol positions fail more often (Fig. 3).
  const double front = model().symbol_failure(18.0, false, 2);
  const double rear = model().symbol_failure(18.0, false, 60);
  EXPECT_GE(rear, front);
}

TEST_F(TraceModelTest, RteReducesTailFailures) {
  const double std_rear = model().symbol_failure(18.0, false, 60);
  const double rte_rear = model().symbol_failure(18.0, true, 60);
  EXPECT_LE(rte_rear, std_rear);
}

TEST_F(TraceModelTest, ComposedPerMonotoneInLength) {
  mac::SubframeChannelQuery q;
  q.snr_db = 18.0;
  q.coherence_time = 3e-3;
  q.start_symbol = 10;
  q.num_symbols = 5;
  const double short_per = model().subframe_error_prob(q);
  q.num_symbols = 50;
  const double long_per = model().subframe_error_prob(q);
  EXPECT_GE(long_per, short_per);
}

TEST_F(TraceModelTest, HigherSnrLowersPer) {
  mac::SubframeChannelQuery q;
  q.coherence_time = 3e-3;
  q.start_symbol = 20;
  q.num_symbols = 30;
  q.snr_db = 18.0;
  const double low = model().subframe_error_prob(q);
  q.snr_db = 26.0;
  const double high = model().subframe_error_prob(q);
  EXPECT_LE(high, low);
}

TEST_F(TraceModelTest, ControlFramesReliableAtHighSnr) {
  EXPECT_LT(model().control_error_prob(26.0), 0.2);
}

TEST_F(TraceModelTest, LinkPolicyRunsOnTraceDrivenPhy) {
  // The trace-driven PHY reports decode outcomes through the same
  // sequential-ACK feedback interface as the analytic model, so the
  // link-state machine (docs/LINK_STATE.md) drives MCS and gating
  // decisions identically — and deterministically — on both backends.
  auto run = [](std::shared_ptr<const mac::PhyErrorModel> phy) {
    mac::SimConfig cfg;
    cfg.scheme = mac::Scheme::kCarpool;
    cfg.num_stas = 4;
    cfg.duration = 2.0;
    cfg.seed = 5;
    cfg.sta_snr_db = {26, 22, 18, 18};
    cfg.coherence_time = 3e-3;
    cfg.link_policy.rate_adaptation = true;
    cfg.link_policy.feedback = true;
    cfg.link_policy.suspension = true;
    cfg.phy = std::move(phy);
    mac::Simulator sim(cfg);
    for (mac::NodeId sta = 1; sta <= 4; ++sta) {
      sim.add_flow(mac::FlowSpec{
          mac::kApNode, sta, [](double now, Rng&) {
            return std::make_pair(now + 0.005, std::size_t{400});
          }});
    }
    return sim.run();
  };

  const auto trace_phy =
      std::shared_ptr<const mac::PhyErrorModel>(&model(),
                                                [](const auto*) {});
  const mac::SimResult a = run(trace_phy);
  const mac::SimResult b = run(trace_phy);
  EXPECT_GT(a.dl_frames_delivered, 0u);
  EXPECT_DOUBLE_EQ(a.downlink_goodput_bps, b.downlink_goodput_bps);
  EXPECT_EQ(a.ls_transitions, b.ls_transitions);
  EXPECT_EQ(a.ls_rate_downgrades, b.ls_rate_downgrades);

  // Same policy code on the analytic backend: runs and delivers too.
  const mac::SimResult c =
      run(std::make_shared<mac::AnalyticPhyModel>());
  EXPECT_GT(c.dl_frames_delivered, 0u);
}

TEST_F(TraceModelTest, AgreesWithAnalyticModelDirectionally) {
  // Cross-validation: both models must rank (rte, position) cells the
  // same way at moderate SNR.
  const mac::AnalyticPhyModel analytic;
  mac::SubframeChannelQuery rear;
  rear.snr_db = 18.0;
  rear.coherence_time = 3e-3;
  rear.start_symbol = 60;
  rear.num_symbols = 20;
  mac::SubframeChannelQuery front = rear;
  front.start_symbol = 0;

  const double trace_gap = model().subframe_error_prob(rear) -
                           model().subframe_error_prob(front);
  const double analytic_gap = analytic.subframe_error_prob(rear) -
                              analytic.subframe_error_prob(front);
  EXPECT_GE(trace_gap, -0.05);
  EXPECT_GE(analytic_gap, 0.0);
}

}  // namespace
}  // namespace carpool::sim
