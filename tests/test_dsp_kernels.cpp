// Kernel-dispatch parity suite (docs/KERNELS.md): every SIMD tier must
// be *bit-identical* to the scalar reference backend on randomized
// inputs — including remainder lanes, erased subcarriers, soft-bit
// erasures, and path-metric ties — plus feature detection and the
// strict --kernel / CARPOOL_KERNEL selection semantics.

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "dsp/kernels.hpp"
#include "dsp/kernels_backends.hpp"
#include "obs/registry.hpp"

namespace {

using carpool::Cx;
using carpool::CxVec;
namespace dsp = carpool::dsp;

/// The SIMD tiers usable on this host (empty on non-x86). Scalar is
/// excluded: it is the reference the others are diffed against.
std::vector<const dsp::KernelBackend*> simd_tiers() {
  std::vector<const dsp::KernelBackend*> out;
  for (const dsp::KernelBackend* backend : dsp::available_backends()) {
    if (std::strcmp(backend->name, "scalar") != 0) out.push_back(backend);
  }
  return out;
}

CxVec random_cx(std::mt19937_64& rng, std::size_t n) {
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  CxVec out(n);
  for (Cx& x : out) x = Cx{dist(rng), dist(rng)};
  return out;
}

template <typename T>
void expect_bits_equal(const std::vector<T>& a, const std::vector<T>& b,
                       const char* what, const char* tier) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(T)))
      << what << " diverges between scalar and " << tier;
}

TEST(KernelParity, FftAllSizesAllTiers) {
  std::mt19937_64 rng(0xfeedULL);
  for (std::size_t n = 2; n <= 256; n <<= 1) {
    const CxVec input = random_cx(rng, n);
    for (const int sign : {-1, +1}) {
      CxVec ref = input;
      dsp::scalar_backend().fft(ref.data(), n, sign);
      for (const dsp::KernelBackend* tier : simd_tiers()) {
        CxVec got = input;
        tier->fft(got.data(), n, sign);
        expect_bits_equal(ref, got, "fft", tier->name);
      }
    }
  }
}

TEST(KernelParity, FftBatchMatchesPerSymbolScalar) {
  std::mt19937_64 rng(0xdadULL);
  const std::size_t n = 64;
  // Counts straddling every lane width, so each tier runs both its
  // transposed full-group body and the single-symbol remainder path.
  for (const std::size_t count :
       {1UL, 2UL, 3UL, 4UL, 5UL, 7UL, 8UL, 9UL, 17UL}) {
    const CxVec input = random_cx(rng, n * count);
    for (const int sign : {-1, +1}) {
      CxVec ref = input;
      for (std::size_t s = 0; s < count; ++s) {
        dsp::scalar_backend().fft(ref.data() + s * n, n, sign);
      }
      CxVec scalar_batch = input;
      dsp::scalar_backend().fft_batch(scalar_batch.data(), n, count, sign);
      expect_bits_equal(ref, scalar_batch, "scalar fft_batch", "scalar");
      for (const dsp::KernelBackend* tier : simd_tiers()) {
        CxVec got = input;
        tier->fft_batch(got.data(), n, count, sign);
        expect_bits_equal(ref, got, "fft_batch", tier->name);
      }
    }
  }
}

TEST(KernelParity, ViterbiForwardRandomSoft) {
  std::mt19937_64 rng(0xbeefULL);
  std::uniform_real_distribution<double> dist(-1.5, 1.5);
  std::bernoulli_distribution erase(0.1);
  for (const std::size_t steps : {1UL, 7UL, 64UL, 130UL}) {
    std::vector<double> soft(2 * steps);
    for (double& s : soft) s = erase(rng) ? 0.0 : dist(rng);
    std::vector<std::uint64_t> ref_sel(steps);
    std::vector<double> ref_metric(dsp::kViterbiStates);
    dsp::scalar_backend().viterbi_forward(soft.data(), steps, ref_sel.data(),
                                          ref_metric.data());
    for (const dsp::KernelBackend* tier : simd_tiers()) {
      std::vector<std::uint64_t> sel(steps);
      std::vector<double> metric(dsp::kViterbiStates);
      tier->viterbi_forward(soft.data(), steps, sel.data(), metric.data());
      expect_bits_equal(ref_sel, sel, "viterbi select words", tier->name);
      expect_bits_equal(ref_metric, metric, "viterbi path metrics",
                        tier->name);
    }
  }
}

TEST(KernelParity, ViterbiTieBreakKeepsEvenPredecessor) {
  // All-erasure input makes every branch metric 0, so every ACS step is
  // a tie among reachable predecessors; all backends must agree on the
  // "keep the even predecessor" rule bit for bit.
  const std::size_t steps = 48;
  std::vector<double> soft(2 * steps, 0.0);
  std::vector<std::uint64_t> ref_sel(steps);
  std::vector<double> ref_metric(dsp::kViterbiStates);
  dsp::scalar_backend().viterbi_forward(soft.data(), steps, ref_sel.data(),
                                        ref_metric.data());
  for (const dsp::KernelBackend* tier : simd_tiers()) {
    std::vector<std::uint64_t> sel(steps);
    std::vector<double> metric(dsp::kViterbiStates);
    tier->viterbi_forward(soft.data(), steps, sel.data(), metric.data());
    expect_bits_equal(ref_sel, sel, "tie-break select words", tier->name);
  }
}

TEST(KernelParity, EqualizeRemainderLanesAndErasures) {
  std::mt19937_64 rng(0xabadULL);
  const Cx derotate = carpool::cx_exp(-0.37);
  // Sizes straddling every vector width, so each tier exercises both
  // its full-vector body and the scalar remainder tail.
  for (const std::size_t n : {1UL, 2UL, 3UL, 4UL, 5UL, 7UL, 8UL, 9UL,
                              16UL, 47UL, 48UL, 49UL}) {
    CxVec bins = random_cx(rng, n);
    CxVec h = random_cx(rng, n);
    if (n > 2) h[n / 2] = Cx{};  // erased subcarrier mid-vector
    h[n - 1] = Cx{};             // and on the tail
    CxVec ref_data(n), data(n);
    std::vector<double> ref_gains(n), gains(n);
    dsp::scalar_backend().equalize(bins.data(), h.data(), n, derotate,
                                   ref_data.data(), ref_gains.data());
    for (const dsp::KernelBackend* tier : simd_tiers()) {
      tier->equalize(bins.data(), h.data(), n, derotate, data.data(),
                     gains.data());
      expect_bits_equal(ref_data, data, "equalized data", tier->name);
      expect_bits_equal(ref_gains, gains, "channel gains", tier->name);
    }
  }
}

TEST(KernelParity, AhdrMixBatches) {
  std::mt19937_64 rng(0x5eedULL);
  for (const std::size_t n : {1UL, 2UL, 3UL, 5UL, 8UL, 13UL, 64UL}) {
    std::vector<std::uint64_t> keys(n);
    for (std::uint64_t& k : keys) k = rng();
    const std::uint64_t base = rng();
    std::vector<std::uint64_t> ref(n), got(n);
    dsp::scalar_backend().ahdr_mix(base, keys.data(), n, ref.data());
    for (const dsp::KernelBackend* tier : simd_tiers()) {
      tier->ahdr_mix(base, keys.data(), n, got.data());
      expect_bits_equal(ref, got, "ahdr hashes", tier->name);
    }
  }
}

TEST(KernelParity, ConcurrentBackendsStayBitIdentical) {
  // The kernels share only immutable tables, so parity must hold when
  // many threads run different backends at once (the soak campaigns do
  // exactly this at --threads 2/4/8).
  const std::size_t n = 64;
  std::mt19937_64 rng(0x77ULL);
  const CxVec input = random_cx(rng, n);
  CxVec ref = input;
  dsp::scalar_backend().fft(ref.data(), n, -1);
  for (const unsigned threads : {1U, 2U, 4U, 8U}) {
    std::vector<std::thread> pool;
    std::vector<int> ok(threads, 0);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        const auto tiers = simd_tiers();
        const dsp::KernelBackend* backend =
            tiers.empty() ? &dsp::scalar_backend() : tiers[t % tiers.size()];
        for (int iter = 0; iter < 50; ++iter) {
          CxVec got = input;
          backend->fft(got.data(), n, -1);
          if (std::memcmp(ref.data(), got.data(), n * sizeof(Cx)) != 0) {
            return;
          }
        }
        ok[t] = 1;
      });
    }
    for (std::thread& th : pool) th.join();
    for (unsigned t = 0; t < threads; ++t) {
      EXPECT_EQ(1, ok[t]) << "thread " << t << " of " << threads;
    }
  }
}

TEST(KernelDispatch, FeatureDetectionMatchesTiers) {
  const std::string features = dsp::cpu_features();
  const auto backends = dsp::available_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_STREQ("scalar", backends.front()->name);
#if defined(__x86_64__)
  // x86-64 guarantees SSE2, so a SIMD tier is always available.
  ASSERT_NE(nullptr, dsp::simd_backend());
  EXPECT_NE(std::string::npos, features.find("sse2"));
  EXPECT_GE(backends.size(), 2U);
#endif
  for (const dsp::KernelBackend* backend : backends) {
    EXPECT_EQ(backend, dsp::backend_by_name(backend->name));
  }
  EXPECT_NE(std::string::npos, dsp::kernel_info().find("cpu: "));
}

TEST(KernelDispatch, SelectKernelStrictNames) {
  EXPECT_EQ(dsp::KernelSelect::kUnknown, dsp::select_kernel("turbo"));
  EXPECT_EQ(dsp::KernelSelect::kUnknown, dsp::select_kernel(""));
  EXPECT_EQ(dsp::KernelSelect::kUnknown, dsp::select_kernel("Scalar"));

  ASSERT_EQ(dsp::KernelSelect::kOk, dsp::select_kernel("scalar"));
  EXPECT_STREQ("scalar", dsp::active_backend().name);
  if (dsp::simd_backend() != nullptr) {
    ASSERT_EQ(dsp::KernelSelect::kOk, dsp::select_kernel("simd"));
    EXPECT_STREQ(dsp::simd_backend()->name, dsp::active_backend().name);
  } else {
    EXPECT_EQ(dsp::KernelSelect::kUnavailable, dsp::select_kernel("simd"));
  }
  EXPECT_EQ(dsp::KernelSelect::kOk, dsp::select_kernel("auto"));
}

TEST(KernelDispatch, ScopedKernelRestoresSelection) {
  ASSERT_EQ(dsp::KernelSelect::kOk, dsp::select_kernel("auto"));
  const dsp::KernelBackend* before = &dsp::active_backend();
  {
    dsp::ScopedKernel scoped(dsp::scalar_backend());
    EXPECT_STREQ("scalar", dsp::active_backend().name);
    {
      const dsp::KernelBackend* inner =
          dsp::simd_backend() ? dsp::simd_backend() : &dsp::scalar_backend();
      dsp::ScopedKernel nested(*inner);
      EXPECT_STREQ(inner->name, dsp::active_backend().name);
    }
    EXPECT_STREQ("scalar", dsp::active_backend().name);
  }
  EXPECT_EQ(before, &dsp::active_backend());
}

TEST(KernelDispatch, EnvResolutionFlagHardening) {
  namespace detail = carpool::dsp::detail;
  // unset / auto / explicit names resolve without touching the counter.
  const dsp::KernelBackend* best =
      dsp::simd_backend() ? dsp::simd_backend() : &dsp::scalar_backend();
  EXPECT_EQ(best, detail::resolve_env_value(nullptr));
  EXPECT_EQ(best, detail::resolve_env_value(""));
  EXPECT_EQ(best, detail::resolve_env_value("auto"));
  EXPECT_EQ(&dsp::scalar_backend(), detail::resolve_env_value("scalar"));
  if (dsp::simd_backend() != nullptr) {
    EXPECT_EQ(dsp::simd_backend(), detail::resolve_env_value("simd"));
  }

  // Garbage: conservative scalar fallback + ops triage counter, the
  // resolve_threads convention for environment (vs strict CLI) input.
  carpool::obs::Registry& registry = carpool::obs::Registry::current();
  const std::uint64_t before =
      registry.counter_value("dsp.kernel_env_invalid");
  EXPECT_EQ(&dsp::scalar_backend(), detail::resolve_env_value("warp9"));
  EXPECT_EQ(&dsp::scalar_backend(), detail::resolve_env_value("SIMD"));
  EXPECT_EQ(before + 2, registry.counter_value("dsp.kernel_env_invalid"));

  // A recognized-but-unsupported tier name is not garbage: it degrades
  // to the best available backend without bumping the counter.
  const std::uint64_t after =
      registry.counter_value("dsp.kernel_env_invalid");
  const dsp::KernelBackend* resolved = detail::resolve_env_value("avx512");
  EXPECT_NE(nullptr, resolved);
  EXPECT_EQ(after, registry.counter_value("dsp.kernel_env_invalid"));
}

}  // namespace
