#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "carpool/transceiver.hpp"
#include "channel/fading.hpp"
#include "common/rng.hpp"
#include "mac/simulator.hpp"
#include "obs/registry.hpp"
#include "obs/stats_writer.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "phy/frame.hpp"
#include "traffic/generators.hpp"

namespace carpool {
namespace {

/// Minimal structural JSON check: first/last character, balanced braces
/// and brackets outside strings, terminated strings, no stray escapes.
bool json_balanced(std::string_view text) {
  if (text.empty()) return false;
  long braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
        ++braces;
        break;
      case '}':
        --braces;
        break;
      case '[':
        ++brackets;
        break;
      case ']':
        --brackets;
        break;
      default:
        break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

bool valid_jsonl_object(std::string_view line) {
  return !line.empty() && line.front() == '{' && line.back() == '}' &&
         json_balanced(line);
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(Registry, FindOrCreateReturnsSameHandle) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x");
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Registry, ConcurrentCounterIncrements) {
  obs::Registry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      obs::Counter& c = reg.counter("concurrent");
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("concurrent").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Registry, ConcurrentHistogramRecords) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("h", {1.0, 2.0, 3.0});
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 10000; ++i) h.record(1.5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 40000u);
  EXPECT_EQ(h.bucket_count(1), 40000u);  // (1, 2] bucket
  EXPECT_DOUBLE_EQ(h.min(), 1.5);
  EXPECT_DOUBLE_EQ(h.max(), 1.5);
}

TEST(Registry, HistogramBucketingAndStats) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("lat", {10.0, 100.0, 1000.0}, "ns");
  h.record(5.0);     // <= 10
  h.record(10.0);    // <= 10 (inclusive upper bound)
  h.record(50.0);    // <= 100
  h.record(5000.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5000.0);
  EXPECT_DOUBLE_EQ(h.sum(), 5065.0);
  EXPECT_EQ(h.unit(), "ns");
  EXPECT_THROW((void)h.percentile(1.5), std::invalid_argument);
  EXPECT_LE(h.percentile(0.5), 100.0);
}

TEST(Registry, ResetValuesKeepsHandlesValid) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("c");
  obs::Histogram& h = reg.histogram("h", {1.0});
  c.add(7);
  h.record(0.5);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add();  // handle still usable after reset
  EXPECT_EQ(reg.counter("c").value(), 1u);
}

TEST(Registry, JsonExportWellFormed) {
  obs::Registry reg;
  reg.counter("a.count").add(2);
  reg.set_gauge("b.value", 1.25);
  reg.histogram("c.lat", {1.0, 10.0}, "ns").record(3.0);
  const std::string json = reg.to_json("unit_test");
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"c.lat\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
  // Ad-hoc names carry no catalog metadata; the meta section is present
  // but empty.
  EXPECT_NE(json.find("\"meta\": {}"), std::string::npos);
}

TEST(Registry, CatalogedMetricsExportMetadata) {
  obs::Registry reg;
  reg.counter("mac.ls_transition").add();       // cataloged exact name
  reg.set_gauge("fig13.bpsk.rte_on_ber", 0.1);  // cataloged prefix family
  reg.counter("made.up.name").add();            // uncataloged
  const std::string json = reg.to_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"mac.ls_transition\": {\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"fig13.bpsk.rte_on_ber\": {\"unit\""),
            std::string::npos);
  EXPECT_EQ(json.find("\"made.up.name\": {\"unit\""), std::string::npos);

  ASSERT_NE(reg.metric_meta("mac.ls_transition"), nullptr);
  EXPECT_FALSE(reg.metric_meta("mac.ls_transition")->description.empty());
  EXPECT_EQ(reg.metric_meta("made.up.name"), nullptr);
}

TEST(Registry, MetadataSurvivesMerge) {
  obs::Registry shard;
  shard.counter("phy.subframes_decoded").add(3);
  obs::Registry target;
  target.merge_from(shard);
  EXPECT_EQ(target.counter_value("phy.subframes_decoded"), 3u);
  EXPECT_NE(target.metric_meta("phy.subframes_decoded"), nullptr);
}

TEST(Registry, SnapshotRowsCarryValuesAndMeta) {
  obs::Registry reg;
  reg.counter("phy.fcs_failures").add(2);
  reg.set_gauge("custom.gauge", 0.5);
  reg.histogram("lat", {10.0, 100.0}, "ns").record(42.0);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "phy.fcs_failures");
  EXPECT_EQ(snap.counters[0].value, 2u);
  EXPECT_NE(snap.counters[0].meta, nullptr);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].meta, nullptr);  // uncataloged
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].mean, 42.0);
  EXPECT_EQ(snap.histograms[0].unit, "ns");
}

TEST(StatsWriter, CsvHasHeaderAndOneRowPerMetric) {
  obs::Registry reg;
  reg.counter("phy.fcs_failures").add(7);
  reg.set_gauge("plain, with comma", 1.5);  // forces RFC-4180 quoting
  reg.histogram("lat", {10.0, 100.0}, "ns").record(42.0);
  const std::string csv = obs::StatsWriter::to_csv(reg.snapshot());
  const auto lines = split_lines(csv);
  ASSERT_EQ(lines.size(), 4u);  // header + counter + gauge + histogram
  EXPECT_EQ(lines[0],
            "metric,type,layer,unit,value,count,sum,mean,min,max,p50,p99,"
            "description");
  EXPECT_NE(lines[1].find("phy.fcs_failures,counter,phy"), std::string::npos);
  EXPECT_NE(lines[1].find(",7,"), std::string::npos);
  EXPECT_NE(lines[2].find("\"plain, with comma\""), std::string::npos);
  EXPECT_NE(lines[3].find("lat,histogram"), std::string::npos);
  EXPECT_NE(lines[3].find(",ns,"), std::string::npos);
}

TEST(StatsWriter, WriteCsvRoundTrips) {
  obs::Registry reg;
  reg.counter("file.count").add(5);
  const std::string path = testing::TempDir() + "obs_stats.csv";
  ASSERT_TRUE(obs::StatsWriter::write_csv(path, reg));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("file.count,counter"), std::string::npos);
}

TEST(Registry, EmptyRegistryExportsWellFormedJson) {
  const obs::Registry reg;
  EXPECT_TRUE(json_balanced(reg.to_json()));
}

TEST(Registry, TextExportMentionsEveryMetric) {
  obs::Registry reg;
  reg.counter("ctr").add();
  reg.set_gauge("ggg", 2.0);
  reg.histogram("hhh", {1.0}).record(0.5);
  const std::string text = reg.to_text();
  EXPECT_NE(text.find("ctr"), std::string::npos);
  EXPECT_NE(text.find("ggg"), std::string::npos);
  EXPECT_NE(text.find("hhh"), std::string::npos);
}

TEST(Registry, WriteJsonToFile) {
  obs::Registry reg;
  reg.counter("file.count").add(5);
  const std::string path = testing::TempDir() + "obs_registry.json";
  ASSERT_TRUE(reg.write_json(path, "file_test"));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(json_balanced(buf.str()));
  EXPECT_NE(buf.str().find("\"file.count\": 5"), std::string::npos);
}

TEST(TraceSink, MemorySinkWritesValidJsonl) {
  obs::TraceSink sink;
  sink.event("alpha").f("t", 1.5).f("n", std::uint64_t{3}).f("ok", true);
  sink.event("beta").f("s", "quote\"and\\slash").f("neg", -2);
  EXPECT_EQ(sink.events_written(), 2u);
  const auto lines = split_lines(sink.str());
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& line : lines) {
    EXPECT_TRUE(valid_jsonl_object(line)) << line;
  }
  EXPECT_NE(lines[0].find("\"type\":\"alpha\""), std::string::npos);
  EXPECT_NE(lines[1].find("\\\"and\\\\slash"), std::string::npos);
}

TEST(TraceSink, FileSinkRoundTrip) {
  const std::string path = testing::TempDir() + "obs_trace.jsonl";
  {
    obs::TraceSink sink(path);
    sink.event("one").f("i", 1);
    sink.event("two").f("i", 2);
    sink.flush();
  }
  std::ifstream in(path);
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(valid_jsonl_object(line)) << line;
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

TEST(TraceSink, AppendModeAccumulatesAcrossOpens) {
  const std::string path = testing::TempDir() + "obs_trace_append.jsonl";
  {
    obs::TraceSink sink(path);  // default: truncate
    sink.event("first").f("i", 1);
  }
  {
    obs::TraceSink::Options options;
    options.append = true;
    obs::TraceSink sink(path, options);
    sink.event("second").f("i", 2);
  }
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"type\":\"first\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"second\""), std::string::npos);
  // Re-opening without append truncates again.
  {
    obs::TraceSink sink(path);
    sink.event("third").f("i", 3);
  }
  std::ifstream again(path);
  lines.clear();
  while (std::getline(again, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"type\":\"third\""), std::string::npos);
}

TEST(TraceSink, MaxEventsCapDropsAndCounts) {
  obs::Registry reg;
  const obs::Registry::ScopedCurrent scope(reg);
  obs::TraceSink::Options options;
  options.max_events = 2;
  obs::TraceSink sink(options);
  for (int i = 0; i < 5; ++i) sink.event("e").f("i", i);
  EXPECT_EQ(sink.events_written(), 2u);
  EXPECT_EQ(sink.dropped(), 3u);
  EXPECT_EQ(reg.counter_value("obs.trace_dropped"), 3u);
  const auto lines = split_lines(sink.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"i\":1"), std::string::npos);
}

TEST(TraceSink, ConcurrentWritersProduceIntactLines) {
  obs::TraceSink sink;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&sink, t] {
      for (int i = 0; i < 500; ++i) {
        sink.event("thread").f("t", t).f("i", i);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto lines = split_lines(sink.str());
  EXPECT_EQ(lines.size(), 2000u);
  for (const auto& line : lines) {
    ASSERT_TRUE(valid_jsonl_object(line)) << line;
  }
}

TEST(TraceGate, MacroMatchesCompileTimeFlag) {
  obs::TraceSink sink;
  obs::TraceSink* maybe = &sink;
  OBS_TRACE(maybe, obs_ts.event("gated").f("x", 1));
  if (obs::trace_compiled_in()) {
    EXPECT_EQ(sink.events_written(), 1u);
  } else {
    // Gate off: the call site compiles to nothing and emits nothing.
    EXPECT_EQ(sink.events_written(), 0u);
    EXPECT_TRUE(sink.str().empty());
  }
  obs::TraceSink* null_sink = nullptr;
  OBS_TRACE(null_sink, obs_ts.event("never").f("x", 0));  // must not crash
}

void timed_helper() { OBS_SCOPED_TIMER("obs_test.helper"); }

TEST(Profiling, ScopedTimerFeedsGlobalRegistry) {
  obs::Histogram& h =
      obs::Registry::global().latency_histogram("obs_test.helper");
  const std::uint64_t before = h.count();
  for (int i = 0; i < 5; ++i) timed_helper();
  if (obs::profiling_compiled_in()) {
    EXPECT_EQ(h.count(), before + 5);
    EXPECT_GE(h.min(), 0.0);
  } else {
    EXPECT_EQ(h.count(), before);
  }
}

#if CARPOOL_TRACE_ENABLED

/// Acceptance scenario: a 20-STA Carpool simulator run plus one PHY-layer
/// decode share a sink; the JSONL must parse and carry tx/ACK/collision
/// and side-channel CRC events (docs/OBSERVABILITY.md schema).
TEST(TraceIntegration, CarpoolRunEmitsParseableTrace) {
  obs::TraceSink sink;

  mac::SimConfig cfg;
  cfg.scheme = mac::Scheme::kCarpool;
  cfg.num_stas = 20;
  cfg.duration = 5.0;
  cfg.seed = 7;
  cfg.trace = &sink;
  mac::Simulator sim(cfg);
  for (mac::NodeId sta = 1; sta <= 20; ++sta) {
    for (auto& flow :
         traffic::make_voip_call(sta, traffic::VoipParams::near_peak())) {
      sim.add_flow(std::move(flow));
    }
  }
  const mac::SimResult result = sim.run();
  EXPECT_GT(result.dl_frames_delivered, 0u);
  EXPECT_GT(result.collisions, 0u);

  // PHY leg: decode one Carpool frame with the same sink attached.
  Rng rng(3);
  Bytes psdu(400);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  const std::vector<SubframeSpec> subframes{
      SubframeSpec{MacAddress::for_station(1), append_fcs(psdu), 4}};
  const CarpoolTransmitter tx;
  FadingConfig ch;
  ch.snr_db = 30.0;
  ch.seed = 11;
  FadingChannel channel(ch);
  CarpoolRxConfig rxcfg;
  rxcfg.self = MacAddress::for_station(1);
  rxcfg.trace = &sink;
  const CarpoolReceiver rx(rxcfg);
  const CarpoolRxResult phy = rx.receive(channel.transmit(tx.build(subframes)));
  ASSERT_FALSE(phy.subframes.empty());

  const auto lines = split_lines(sink.str());
  ASSERT_GT(lines.size(), 100u);
  bool saw_tx = false, saw_ack = false, saw_collision = false;
  bool saw_side_crc = false, saw_backoff = false, saw_symbol = false;
  for (const auto& line : lines) {
    ASSERT_TRUE(valid_jsonl_object(line)) << line;
    saw_tx = saw_tx || line.find("\"type\":\"mac.tx_start\"") != std::string::npos;
    saw_ack = saw_ack || line.find("\"type\":\"mac.ack\"") != std::string::npos;
    saw_collision =
        saw_collision || line.find("\"type\":\"mac.collision\"") != std::string::npos;
    saw_side_crc =
        saw_side_crc || line.find("\"type\":\"phy.side_crc\"") != std::string::npos;
    saw_backoff =
        saw_backoff || line.find("\"type\":\"mac.backoff_draw\"") != std::string::npos;
    saw_symbol =
        saw_symbol || line.find("\"type\":\"phy.symbol\"") != std::string::npos;
  }
  EXPECT_TRUE(saw_tx);
  EXPECT_TRUE(saw_ack);
  EXPECT_TRUE(saw_collision);
  EXPECT_TRUE(saw_side_crc);
  EXPECT_TRUE(saw_backoff);
  EXPECT_TRUE(saw_symbol);
}

#else

TEST(TraceIntegration, SimulatorWithSinkEmitsNothingWhenGateOff) {
  obs::TraceSink sink;
  mac::SimConfig cfg;
  cfg.scheme = mac::Scheme::kCarpool;
  cfg.num_stas = 5;
  cfg.duration = 1.0;
  cfg.trace = &sink;
  mac::Simulator sim(cfg);
  for (mac::NodeId sta = 1; sta <= 5; ++sta) {
    for (auto& flow : traffic::make_voip_call(sta)) {
      sim.add_flow(std::move(flow));
    }
  }
  const mac::SimResult result = sim.run();
  EXPECT_GT(result.dl_frames_delivered, 0u);
  EXPECT_EQ(sink.events_written(), 0u);
}

#endif  // CARPOOL_TRACE_ENABLED

}  // namespace
}  // namespace carpool
