// carpool::par — the parallel sweep engine's contract (docs/PARALLELISM.md):
// the thread pool survives exceptions and oversubscription, and sharded
// runs produce bit-identical results and metric fingerprints at any
// thread count, including the real consumer (chaos::SoakRunner).

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/runner.hpp"
#include "chaos/scenario.hpp"
#include "obs/registry.hpp"
#include "par/par.hpp"

namespace carpool {
namespace {

using chaos::Scenario;
using chaos::SoakOptions;
using chaos::SoakReport;
using chaos::SoakRunner;
using chaos::TrafficKind;

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, RunsEverySubmittedJob) {
  par::ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, IsReusableAfterWait) {
  par::ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, WaitRethrowsFirstCapturedException) {
  par::ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 20; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error did not wedge the queue: every other job still ran, and the
  // pool keeps working afterwards.
  EXPECT_EQ(ran.load(), 20);
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ran.load(), 21);
}

TEST(ThreadPool, DestructorDrainsWithoutWait) {
  std::atomic<int> ran{0};
  {
    par::ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    // No wait(): the destructor must drain and join without hanging,
    // even with a throwing job in the mix.
    pool.submit([] { throw std::runtime_error("unobserved"); });
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, OversubscriptionCompletes) {
  // Far more workers than cores and far more jobs than workers.
  par::ThreadPool pool(32);
  EXPECT_EQ(pool.size(), 32u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(ran.load(), 1000);
}

// -------------------------------------------------------- thread resolve

TEST(ResolveThreads, CliValueWins) {
  EXPECT_EQ(par::resolve_threads(3), 3u);
  EXPECT_EQ(par::resolve_threads(0), par::hardware_threads());
}

TEST(ResolveThreads, EnvFallback) {
  ::setenv("CARPOOL_THREADS", "5", 1);
  EXPECT_EQ(par::resolve_threads(), 5u);
  ::setenv("CARPOOL_THREADS", "0", 1);
  EXPECT_EQ(par::resolve_threads(), par::hardware_threads());
  ::setenv("CARPOOL_THREADS", "nonsense", 1);
  EXPECT_EQ(par::resolve_threads(), 1u);
  ::unsetenv("CARPOOL_THREADS");
  EXPECT_EQ(par::resolve_threads(), 1u);
}

// --------------------------------------------------------------- Kahan

TEST(KahanSum, CompensatesSmallAddends) {
  // 1e16 + 1.0 * 1000: naive double accumulation loses every 1.0; Kahan
  // keeps them.
  par::KahanSum k;
  double naive = 1e16;
  k.add(1e16);
  for (int i = 0; i < 1000; ++i) {
    k.add(1.0);
    naive += 1.0;
  }
  EXPECT_EQ(naive, 1e16);  // demonstrates the failure mode
  EXPECT_DOUBLE_EQ(k.value(), 1e16 + 1000.0);
}

// ------------------------------------------------------- registry merge

TEST(RegistryMerge, CountersAddAndZeroRegistrationsCarry) {
  obs::Registry a;
  obs::Registry b;
  a.counter("x").add(2);
  b.counter("x").add(5);
  b.counter("only_in_b");  // registered, never incremented
  a.merge_from(b);
  EXPECT_EQ(a.counter_value("x"), 7u);
  // The zero-valued registration must survive so the export schema (the
  // BENCH_*.json key set) matches a serial run's.
  EXPECT_NE(a.to_json().find("only_in_b"), std::string::npos);
}

TEST(RegistryMerge, GaugesLastMergeWins) {
  obs::Registry a;
  obs::Registry b;
  a.set_gauge("g", 1.0);
  b.set_gauge("g", 2.0);
  a.merge_from(b);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 2.0);
}

TEST(RegistryMerge, HistogramBoundsMismatchThrows) {
  obs::Registry a;
  obs::Registry b;
  a.histogram("h", {1.0, 2.0}).record(0.5);
  b.histogram("h", {1.0, 3.0}).record(0.5);
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

TEST(RegistryMerge, HistogramsMergeBucketwise) {
  obs::Registry a;
  obs::Registry b;
  a.histogram("h", {1.0, 2.0}).record(0.5);
  b.histogram("h", {1.0, 2.0}).record(1.5);
  b.histogram("h", {1.0, 2.0}).record(10.0);
  a.merge_from(b);
  obs::Histogram& h = a.histogram("h", {1.0, 2.0});
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);  // overflow
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST(Fingerprint, CoversCountersAndGaugesNotHistograms) {
  obs::Registry a;
  a.counter("c").add(3);
  a.set_gauge("g", 1.5);
  const std::uint64_t base = a.fingerprint();

  obs::Registry same;
  same.counter("c").add(3);
  same.set_gauge("g", 1.5);
  // Histograms hold wall-clock timings; they must not perturb the digest.
  same.latency_histogram("timer").record(123.0);
  EXPECT_EQ(same.fingerprint(), base);

  obs::Registry different;
  different.counter("c").add(4);
  different.set_gauge("g", 1.5);
  EXPECT_NE(different.fingerprint(), base);
}

TEST(ScopedCurrent, OverridesAndRestores) {
  obs::Registry shard;
  obs::Registry& before = obs::Registry::current();
  {
    const obs::Registry::ScopedCurrent scope(shard);
    EXPECT_EQ(&obs::Registry::current(), &shard);
    obs::Registry::current().counter("scoped").add();
  }
  EXPECT_EQ(&obs::Registry::current(), &before);
  EXPECT_EQ(shard.counter_value("scoped"), 1u);
}

// --------------------------------------------------------- run_sharded

/// A deterministic fake workload: each job derives values purely from its
/// index and records metrics through Registry::current() like the real
/// instrumented hot paths do.
std::vector<std::uint64_t> sharded_workload(std::size_t jobs,
                                            std::size_t threads,
                                            obs::Registry& scope) {
  const obs::Registry::ScopedCurrent current(scope);
  return par::run_sharded(jobs, threads, [](const par::ShardInfo& info) {
    obs::Registry& reg = obs::Registry::current();
    reg.counter("work.jobs").add();
    reg.counter("work.units").add(info.index * 3 + 1);
    reg.set_gauge("work.last_index", static_cast<double>(info.index));
    return static_cast<std::uint64_t>(info.index * info.index);
  });
}

TEST(RunSharded, ResultsInIndexOrderAtAnyThreadCount) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    obs::Registry scope;
    const auto results = sharded_workload(17, threads, scope);
    ASSERT_EQ(results.size(), 17u);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], i * i) << "threads=" << threads;
    }
  }
}

TEST(RunSharded, MetricsBitIdenticalAcrossThreadCounts) {
  obs::Registry serial;
  sharded_workload(23, 1, serial);
  const std::uint64_t want = serial.fingerprint();
  ASSERT_EQ(serial.counter_value("work.jobs"), 23u);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    obs::Registry scope;
    sharded_workload(23, threads, scope);
    EXPECT_EQ(scope.fingerprint(), want) << "threads=" << threads;
    // Gauge merge order == job order: the last job's write wins, exactly
    // as in the serial loop.
    EXPECT_DOUBLE_EQ(scope.gauge("work.last_index").value(), 22.0)
        << "threads=" << threads;
  }
}

TEST(RunSharded, SerialPathUsesAmbientRegistryDirectly) {
  obs::Registry scope;
  const obs::Registry::ScopedCurrent current(scope);
  auto out = par::run_sharded_keep(3, 1, [](const par::ShardInfo& info) {
    EXPECT_EQ(info.metrics, nullptr);  // inline path: no shard registries
    obs::Registry::current().counter("serial.jobs").add();
    return info.index;
  });
  EXPECT_TRUE(out.metrics.empty());
  EXPECT_EQ(scope.counter_value("serial.jobs"), 3u);
}

TEST(RunSharded, LowestIndexExceptionWins) {
  for (const std::size_t threads : {1u, 4u}) {
    try {
      (void)par::run_sharded(8, threads, [](const par::ShardInfo& info) {
        if (info.index >= 2) {
          throw std::runtime_error("job " + std::to_string(info.index));
        }
        return info.index;
      });
      FAIL() << "expected a throw at threads=" << threads;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "job 2") << "threads=" << threads;
    }
  }
}

TEST(RunSharded, ZeroJobsIsANoop) {
  const auto results =
      par::run_sharded(0, 4, [](const par::ShardInfo&) { return 1; });
  EXPECT_TRUE(results.empty());
}

// ------------------------------------------------- SoakRunner parallel

Scenario budget_scenario() {
  Scenario s;
  s.name = "par_budget";
  s.seed = 47;
  s.duration = 1.0;
  s.num_stas = 3;
  s.probe_interval = 0.25;
  s.traffic.push_back({0.0, TrafficKind::kCbr, 1000, 4e-3});
  s.interference.push_back({0.4, 0.7, 6.0, 0.8, {}});
  s.churn.push_back({0.5, 3, false});
  return s;
}

/// Run a campaign under a private metric scope; returns the report and
/// fills `fingerprint` with the scope's digest.
SoakReport run_scoped(const Scenario& s, const SoakOptions& opts,
                      std::uint64_t& fingerprint) {
  obs::Registry scope;
  const obs::Registry::ScopedCurrent current(scope);
  const SoakReport report = SoakRunner(opts).run(s);
  fingerprint = scope.fingerprint();
  return report;
}

void expect_reports_identical(const SoakReport& a, const SoakReport& b,
                              const std::string& label) {
  EXPECT_EQ(a.frames_judged, b.frames_judged) << label;
  EXPECT_EQ(a.steps, b.steps) << label;
  EXPECT_EQ(a.probes, b.probes) << label;
  EXPECT_EQ(a.episodes_run, b.episodes_run) << label;
  EXPECT_EQ(a.repeats, b.repeats) << label;
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds) << label;
  EXPECT_DOUBLE_EQ(a.mean_goodput_bps, b.mean_goodput_bps) << label;
  ASSERT_EQ(a.violations.size(), b.violations.size()) << label;
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].invariant, b.violations[i].invariant) << label;
    EXPECT_EQ(a.violations[i].frame, b.violations[i].frame) << label;
    EXPECT_EQ(a.violations[i].episode, b.violations[i].episode) << label;
    EXPECT_EQ(a.violations[i].repeat, b.violations[i].repeat) << label;
    EXPECT_DOUBLE_EQ(a.violations[i].time, b.violations[i].time) << label;
  }
  ASSERT_EQ(a.episode_summaries.size(), b.episode_summaries.size()) << label;
  for (std::size_t i = 0; i < a.episode_summaries.size(); ++i) {
    EXPECT_EQ(a.episode_summaries[i].index, b.episode_summaries[i].index)
        << label;
    EXPECT_EQ(a.episode_summaries[i].repeat, b.episode_summaries[i].repeat)
        << label;
    EXPECT_DOUBLE_EQ(a.episode_summaries[i].goodput_bps,
                     b.episode_summaries[i].goodput_bps)
        << label;
    EXPECT_EQ(a.episode_summaries[i].frames_judged,
              b.episode_summaries[i].frames_judged)
        << label;
  }
}

TEST(SoakRunnerParallel, BudgetCampaignBitIdenticalAcrossThreadCounts) {
  // Budget sized so the campaign spans several timeline repeats (the
  // parallel path's unit of work).
  SoakOptions serial_opts;
  serial_opts.threads = 1;
  std::uint64_t probe_fp = 0;
  const SoakReport once =
      run_scoped(budget_scenario(), serial_opts, probe_fp);
  ASSERT_TRUE(once.ok());
  serial_opts.max_frames = once.frames_judged * 5;

  std::uint64_t serial_fp = 0;
  const SoakReport serial =
      run_scoped(budget_scenario(), serial_opts, serial_fp);
  ASSERT_TRUE(serial.ok());
  ASSERT_GE(serial.repeats, 3u);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    SoakOptions opts = serial_opts;
    opts.threads = threads;
    std::uint64_t fp = 0;
    const SoakReport parallel = run_scoped(budget_scenario(), opts, fp);
    expect_reports_identical(serial, parallel,
                             "threads=" + std::to_string(threads));
    EXPECT_EQ(fp, serial_fp) << "threads=" << threads;
  }
}

TEST(SoakRunnerParallel, InjectedFaultIdenticalAcrossThreadCounts) {
  // The injected violation lands on a later repeat: the parallel path
  // must re-run that repeat serially and report the exact coordinates.
  SoakOptions probe_opts;
  probe_opts.threads = 1;
  std::uint64_t ignored = 0;
  const SoakReport once =
      run_scoped(budget_scenario(), probe_opts, ignored);

  Scenario s = budget_scenario();
  s.inject = chaos::InjectedViolation{once.frames_judged * 2 + 7};

  SoakOptions serial_opts;
  serial_opts.threads = 1;
  serial_opts.max_frames = once.frames_judged * 6;
  std::uint64_t serial_fp = 0;
  const SoakReport serial = run_scoped(s, serial_opts, serial_fp);
  ASSERT_FALSE(serial.ok());
  ASSERT_EQ(serial.violations.front().invariant, "injected");
  ASSERT_GE(serial.violations.front().repeat, 1u);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    SoakOptions opts = serial_opts;
    opts.threads = threads;
    std::uint64_t fp = 0;
    const SoakReport parallel = run_scoped(s, opts, fp);
    expect_reports_identical(serial, parallel,
                             "threads=" + std::to_string(threads));
    EXPECT_EQ(fp, serial_fp) << "threads=" << threads;
  }
}

TEST(SoakRunnerParallel, SinglePassCampaignIgnoresThreads) {
  // max_frames == 0 runs the timeline once; threads must not change that.
  SoakOptions opts;
  opts.threads = 8;
  std::uint64_t fp_parallel = 0;
  const SoakReport a = run_scoped(budget_scenario(), opts, fp_parallel);
  opts.threads = 1;
  std::uint64_t fp_serial = 0;
  const SoakReport b = run_scoped(budget_scenario(), opts, fp_serial);
  expect_reports_identical(a, b, "single-pass");
  EXPECT_EQ(fp_parallel, fp_serial);
}

}  // namespace
}  // namespace carpool
