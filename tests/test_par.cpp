// carpool::par — the parallel sweep engine's contract (docs/PARALLELISM.md):
// the thread pool survives exceptions and oversubscription, and sharded
// runs produce bit-identical results and metric fingerprints at any
// thread count, including the real consumer (chaos::SoakRunner).

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/runner.hpp"
#include "chaos/scenario.hpp"
#include "obs/registry.hpp"
#include "par/par.hpp"

namespace carpool {
namespace {

using chaos::Scenario;
using chaos::SoakOptions;
using chaos::SoakReport;
using chaos::SoakRunner;
using chaos::TrafficKind;

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, RunsEverySubmittedJob) {
  par::ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, IsReusableAfterWait) {
  par::ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, WaitRethrowsFirstCapturedException) {
  par::ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 20; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error did not wedge the queue: every other job still ran, and the
  // pool keeps working afterwards.
  EXPECT_EQ(ran.load(), 20);
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ran.load(), 21);
}

TEST(ThreadPool, DestructorDrainsWithoutWait) {
  std::atomic<int> ran{0};
  {
    par::ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    // No wait(): the destructor must drain and join without hanging,
    // even with a throwing job in the mix.
    pool.submit([] { throw std::runtime_error("unobserved"); });
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, DestructorJoinsWithQueueStillPending) {
  // Slow jobs so destruction races a mostly-full queue: the destructor
  // must drain every queued job and join, never deadlock or drop work.
  std::atomic<int> ran{0};
  {
    par::ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ran.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, SecondWaitDoesNotReplayConsumedError) {
  par::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("once"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The rethrow consumed the captured error: a fresh wait() is clean and
  // the pool accepts new work as if nothing happened.
  EXPECT_NO_THROW(pool.wait());
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, OversubscriptionCompletes) {
  // Far more workers than cores and far more jobs than workers.
  par::ThreadPool pool(32);
  EXPECT_EQ(pool.size(), 32u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(ran.load(), 1000);
}

// -------------------------------------------------------- thread resolve

TEST(ResolveThreads, CliValueWins) {
  EXPECT_EQ(par::resolve_threads(3), 3u);
  EXPECT_EQ(par::resolve_threads(0), par::hardware_threads());
}

TEST(ResolveThreads, EnvFallback) {
  ::setenv("CARPOOL_THREADS", "5", 1);
  EXPECT_EQ(par::resolve_threads(), 5u);
  ::setenv("CARPOOL_THREADS", "0", 1);
  EXPECT_EQ(par::resolve_threads(), par::hardware_threads());
  ::setenv("CARPOOL_THREADS", "nonsense", 1);
  EXPECT_EQ(par::resolve_threads(), 1u);
  ::unsetenv("CARPOOL_THREADS");
  EXPECT_EQ(par::resolve_threads(), 1u);
}

TEST(ResolveThreads, RejectsTrailingGarbageAndCountsIt) {
  // "4x" used to strtoll-parse as 4 with the garbage ignored; now any
  // partially-numeric value falls back to serial and is recorded.
  obs::Registry scope;
  {
    const obs::Registry::ScopedCurrent current(scope);
    ::setenv("CARPOOL_THREADS", "4x", 1);
    EXPECT_EQ(par::resolve_threads(), 1u);
    ::setenv("CARPOOL_THREADS", "-2", 1);
    EXPECT_EQ(par::resolve_threads(), 1u);
    // Empty behaves like unset: serial, but not an error worth counting.
    ::setenv("CARPOOL_THREADS", "", 1);
    EXPECT_EQ(par::resolve_threads(), 1u);
    ::unsetenv("CARPOOL_THREADS");
  }
  EXPECT_EQ(scope.counter_value("par.threads_env_invalid"), 2u);
}

// --------------------------------------------------------------- Kahan

TEST(KahanSum, CompensatesSmallAddends) {
  // 1e16 + 1.0 * 1000: naive double accumulation loses every 1.0; Kahan
  // keeps them.
  par::KahanSum k;
  double naive = 1e16;
  k.add(1e16);
  for (int i = 0; i < 1000; ++i) {
    k.add(1.0);
    naive += 1.0;
  }
  EXPECT_EQ(naive, 1e16);  // demonstrates the failure mode
  EXPECT_DOUBLE_EQ(k.value(), 1e16 + 1000.0);
}

// ------------------------------------------------------- registry merge

TEST(RegistryMerge, CountersAddAndZeroRegistrationsCarry) {
  obs::Registry a;
  obs::Registry b;
  a.counter("x").add(2);
  b.counter("x").add(5);
  b.counter("only_in_b");  // registered, never incremented
  a.merge_from(b);
  EXPECT_EQ(a.counter_value("x"), 7u);
  // The zero-valued registration must survive so the export schema (the
  // BENCH_*.json key set) matches a serial run's.
  EXPECT_NE(a.to_json().find("only_in_b"), std::string::npos);
}

TEST(RegistryMerge, GaugesLastMergeWins) {
  obs::Registry a;
  obs::Registry b;
  a.set_gauge("g", 1.0);
  b.set_gauge("g", 2.0);
  a.merge_from(b);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 2.0);
}

TEST(RegistryMerge, HistogramBoundsMismatchThrows) {
  obs::Registry a;
  obs::Registry b;
  a.histogram("h", {1.0, 2.0}).record(0.5);
  b.histogram("h", {1.0, 3.0}).record(0.5);
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

TEST(RegistryMerge, HistogramsMergeBucketwise) {
  obs::Registry a;
  obs::Registry b;
  a.histogram("h", {1.0, 2.0}).record(0.5);
  b.histogram("h", {1.0, 2.0}).record(1.5);
  b.histogram("h", {1.0, 2.0}).record(10.0);
  a.merge_from(b);
  obs::Histogram& h = a.histogram("h", {1.0, 2.0});
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);  // overflow
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST(Fingerprint, CoversCountersAndGaugesNotHistograms) {
  obs::Registry a;
  a.counter("c").add(3);
  a.set_gauge("g", 1.5);
  const std::uint64_t base = a.fingerprint();

  obs::Registry same;
  same.counter("c").add(3);
  same.set_gauge("g", 1.5);
  // Histograms hold wall-clock timings; they must not perturb the digest.
  same.latency_histogram("timer").record(123.0);
  EXPECT_EQ(same.fingerprint(), base);

  obs::Registry different;
  different.counter("c").add(4);
  different.set_gauge("g", 1.5);
  EXPECT_NE(different.fingerprint(), base);
}

TEST(ScopedCurrent, OverridesAndRestores) {
  obs::Registry shard;
  obs::Registry& before = obs::Registry::current();
  {
    const obs::Registry::ScopedCurrent scope(shard);
    EXPECT_EQ(&obs::Registry::current(), &shard);
    obs::Registry::current().counter("scoped").add();
  }
  EXPECT_EQ(&obs::Registry::current(), &before);
  EXPECT_EQ(shard.counter_value("scoped"), 1u);
}

// --------------------------------------------------------- run_sharded

/// A deterministic fake workload: each job derives values purely from its
/// index and records metrics through Registry::current() like the real
/// instrumented hot paths do.
std::vector<std::uint64_t> sharded_workload(std::size_t jobs,
                                            std::size_t threads,
                                            obs::Registry& scope) {
  const obs::Registry::ScopedCurrent current(scope);
  return par::run_sharded(jobs, threads, [](const par::ShardInfo& info) {
    obs::Registry& reg = obs::Registry::current();
    reg.counter("work.jobs").add();
    reg.counter("work.units").add(info.index * 3 + 1);
    reg.set_gauge("work.last_index", static_cast<double>(info.index));
    return static_cast<std::uint64_t>(info.index * info.index);
  });
}

TEST(RunSharded, ResultsInIndexOrderAtAnyThreadCount) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    obs::Registry scope;
    const auto results = sharded_workload(17, threads, scope);
    ASSERT_EQ(results.size(), 17u);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], i * i) << "threads=" << threads;
    }
  }
}

TEST(RunSharded, MetricsBitIdenticalAcrossThreadCounts) {
  obs::Registry serial;
  sharded_workload(23, 1, serial);
  const std::uint64_t want = serial.fingerprint();
  ASSERT_EQ(serial.counter_value("work.jobs"), 23u);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    obs::Registry scope;
    sharded_workload(23, threads, scope);
    EXPECT_EQ(scope.fingerprint(), want) << "threads=" << threads;
    // Gauge merge order == job order: the last job's write wins, exactly
    // as in the serial loop.
    EXPECT_DOUBLE_EQ(scope.gauge("work.last_index").value(), 22.0)
        << "threads=" << threads;
  }
}

TEST(RunSharded, SerialPathUsesAmbientRegistryDirectly) {
  obs::Registry scope;
  const obs::Registry::ScopedCurrent current(scope);
  auto out = par::run_sharded_keep(3, 1, [](const par::ShardInfo& info) {
    EXPECT_EQ(info.metrics, nullptr);  // inline path: no shard registries
    obs::Registry::current().counter("serial.jobs").add();
    return info.index;
  });
  EXPECT_TRUE(out.metrics.empty());
  EXPECT_EQ(scope.counter_value("serial.jobs"), 3u);
}

TEST(RunSharded, LowestIndexExceptionWins) {
  for (const std::size_t threads : {1u, 4u}) {
    try {
      (void)par::run_sharded(8, threads, [](const par::ShardInfo& info) {
        if (info.index >= 2) {
          throw std::runtime_error("job " + std::to_string(info.index));
        }
        return info.index;
      });
      FAIL() << "expected a throw at threads=" << threads;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "job 2") << "threads=" << threads;
    }
  }
}

TEST(RunSharded, ZeroJobsIsANoop) {
  const auto results =
      par::run_sharded(0, 4, [](const par::ShardInfo&) { return 1; });
  EXPECT_TRUE(results.empty());
}

// --------------------------------------------- retry + fault injection

/// The resilient workload twin of sharded_workload: pure per-index work
/// plus metrics through the shard-local registry, merged in index order
/// so the ambient fingerprint is comparable with a fault-free run.
std::vector<std::uint64_t> resilient_workload(std::size_t jobs,
                                              std::size_t threads,
                                              const par::RetryPolicy& policy,
                                              const par::FaultPlan* faults,
                                              obs::Registry& scope,
                                              par::DegradedReport* degraded) {
  const obs::Registry::ScopedCurrent current(scope);
  auto out = par::run_sharded_resilient(
      jobs, threads, policy, faults,
      [](const par::ShardInfo& info) {
        obs::Registry& reg = obs::Registry::current();
        reg.counter("work.jobs").add();
        reg.counter("work.units").add(info.index * 3 + 1);
        reg.set_gauge("work.last_index", static_cast<double>(info.index));
        return static_cast<std::uint64_t>(info.index * info.index);
      },
      degraded);
  for (auto& m : out.metrics) {
    if (m) scope.merge_from(*m);
  }
  return std::move(out.results);
}

TEST(Retry, FaultPlanAddressesShardAttemptPairs) {
  par::FaultPlan plan;
  plan.entries.push_back({3, 0, par::FaultKind::kThrow});
  plan.entries.push_back({3, 1, par::FaultKind::kTorn});
  EXPECT_EQ(plan.at(3, 0), par::FaultKind::kThrow);
  EXPECT_EQ(plan.at(3, 1), par::FaultKind::kTorn);
  EXPECT_EQ(plan.at(3, 2), par::FaultKind::kNone);
  EXPECT_EQ(plan.at(0, 0), par::FaultKind::kNone);

  // window() re-bases campaign-repeat addresses onto wave-local shards.
  const par::FaultPlan w = plan.window(2, 4);  // repeats [2, 6)
  EXPECT_EQ(w.at(1, 0), par::FaultKind::kThrow);  // repeat 3 -> shard 1
  EXPECT_EQ(w.at(3, 0), par::FaultKind::kNone);
  const par::FaultPlan outside = plan.window(4, 4);  // repeats [4, 8)
  EXPECT_TRUE(outside.entries.empty());
}

TEST(Retry, SeededFaultPlanIsDeterministic) {
  const par::FaultPlan a = par::FaultPlan::seeded(9, 100, 0.3);
  const par::FaultPlan b = par::FaultPlan::seeded(9, 100, 0.3);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  EXPECT_FALSE(a.entries.empty());
  EXPECT_LT(a.entries.size(), 100u);  // rate, not all-shards
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].shard, b.entries[i].shard);
  }
  EXPECT_TRUE(par::FaultPlan::seeded(9, 100, 0.0).entries.empty());
  EXPECT_EQ(par::FaultPlan::seeded(9, 50, 1.1).entries.size(), 50u);
}

TEST(Retry, BackoffIsDeterministicJitteredAndCapped) {
  par::RetryPolicy p;
  p.backoff_base_ms = 2.0;
  p.backoff_max_ms = 20.0;
  EXPECT_DOUBLE_EQ(p.backoff_ms(4, 0), 0.0);  // first attempt: no delay
  const double once = p.backoff_ms(4, 1);
  EXPECT_GT(once, 0.0);
  EXPECT_DOUBLE_EQ(p.backoff_ms(4, 1), once);  // same (shard, attempt)
  EXPECT_NE(p.backoff_ms(5, 1), once);         // jitter decorrelates shards
  for (std::size_t attempt = 1; attempt < 40; ++attempt) {
    EXPECT_LE(p.backoff_ms(4, attempt), p.backoff_max_ms);
  }
  EXPECT_FALSE(p.enabled());
  p.max_attempts = 2;
  EXPECT_TRUE(p.enabled());
}

TEST(Retry, TransientThrowRetriesBitIdentical) {
  obs::Registry baseline;
  const auto want =
      resilient_workload(9, 1, {}, nullptr, baseline, nullptr);
  const std::uint64_t want_fp = baseline.fingerprint();

  par::FaultPlan plan;
  plan.entries.push_back({1, 0, par::FaultKind::kThrow});
  plan.entries.push_back({4, 0, par::FaultKind::kThrow});
  plan.entries.push_back({6, 0, par::FaultKind::kTorn});
  par::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_ms = 0.1;  // keep the test fast

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    obs::Registry scope;
    par::DegradedReport degraded;
    const auto got =
        resilient_workload(9, threads, policy, &plan, scope, &degraded);
    EXPECT_EQ(got, want) << "threads=" << threads;
    // A successful retry leaves no trace: the metric surface is
    // bit-identical to the fault-free run (retry counters live in the
    // fingerprint-exempt "ops" layer).
    EXPECT_EQ(scope.fingerprint(), want_fp) << "threads=" << threads;
    EXPECT_TRUE(degraded.quarantined.empty()) << "threads=" << threads;
    EXPECT_EQ(degraded.retries, 3u) << "threads=" << threads;
    EXPECT_FALSE(degraded.degraded());
  }
}

TEST(Retry, StallWatchdogRecovers) {
  par::FaultPlan plan;
  plan.stall_seconds = 0.5;
  plan.entries.push_back({0, 0, par::FaultKind::kStall});
  par::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.watchdog_seconds = 0.05;
  policy.backoff_base_ms = 0.1;

  obs::Registry baseline;
  const auto want = resilient_workload(4, 1, {}, nullptr, baseline, nullptr);

  obs::Registry scope;
  par::DegradedReport degraded;
  const auto got =
      resilient_workload(4, 2, policy, &plan, scope, &degraded);
  EXPECT_EQ(got, want);
  EXPECT_EQ(scope.fingerprint(), baseline.fingerprint());
  EXPECT_TRUE(degraded.quarantined.empty());
  EXPECT_GE(degraded.stalls, 1u);
}

TEST(Retry, ExhaustedShardQuarantinedOthersSurvive) {
  par::FaultPlan plan;
  for (std::size_t attempt = 0; attempt < 3; ++attempt) {
    plan.entries.push_back({3, attempt, par::FaultKind::kThrow});
  }
  par::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_ms = 0.1;

  for (const std::size_t threads : {1u, 4u}) {
    obs::Registry scope;
    par::DegradedReport degraded;
    const auto got =
        resilient_workload(8, threads, policy, &plan, scope, &degraded);
    ASSERT_TRUE(degraded.degraded()) << "threads=" << threads;
    ASSERT_EQ(degraded.quarantined.size(), 1u) << "threads=" << threads;
    EXPECT_EQ(degraded.quarantined[0].index, 3u);
    EXPECT_EQ(degraded.quarantined[0].attempts, 3u);
    EXPECT_NE(degraded.quarantined[0].error.find("injected"),
              std::string::npos);
    // Every other shard's result survived the quarantine.
    ASSERT_EQ(got.size(), 8u);
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (i == 3) continue;
      EXPECT_EQ(got[i], i * i) << "threads=" << threads;
    }
    EXPECT_NE(degraded.to_string().find("shard 3"), std::string::npos);
  }
}

TEST(Retry, ExhaustedShardThrowsWithoutDegradedSink) {
  par::FaultPlan plan;
  plan.entries.push_back({2, 0, par::FaultKind::kThrow});
  plan.entries.push_back({2, 1, par::FaultKind::kThrow});
  par::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_base_ms = 0.1;
  obs::Registry scope;
  const obs::Registry::ScopedCurrent current(scope);
  EXPECT_THROW((void)par::run_sharded_resilient(
                   4, 2, policy, &plan,
                   [](const par::ShardInfo& info) { return info.index; }),
               std::runtime_error);
}

TEST(Retry, OpsCountersRecordRetriesAndQuarantines) {
  par::FaultPlan plan;
  plan.entries.push_back({0, 0, par::FaultKind::kThrow});
  plan.entries.push_back({1, 0, par::FaultKind::kThrow});
  plan.entries.push_back({1, 1, par::FaultKind::kThrow});
  par::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_base_ms = 0.1;
  obs::Registry scope;
  par::DegradedReport degraded;
  (void)resilient_workload(3, 2, policy, &plan, scope, &degraded);
  EXPECT_EQ(scope.counter_value("par.shard_retry"), 2u);
  EXPECT_EQ(scope.counter_value("par.shard_quarantine"), 1u);
}

// ------------------------------------------------- SoakRunner parallel

Scenario budget_scenario() {
  Scenario s;
  s.name = "par_budget";
  s.seed = 47;
  s.duration = 1.0;
  s.num_stas = 3;
  s.probe_interval = 0.25;
  s.traffic.push_back({0.0, TrafficKind::kCbr, 1000, 4e-3});
  s.interference.push_back({0.4, 0.7, 6.0, 0.8, {}});
  s.churn.push_back({0.5, 3, false});
  return s;
}

/// Run a campaign under a private metric scope; returns the report and
/// fills `fingerprint` with the scope's digest.
SoakReport run_scoped(const Scenario& s, const SoakOptions& opts,
                      std::uint64_t& fingerprint) {
  obs::Registry scope;
  const obs::Registry::ScopedCurrent current(scope);
  const SoakReport report = SoakRunner(opts).run(s);
  fingerprint = scope.fingerprint();
  return report;
}

void expect_reports_identical(const SoakReport& a, const SoakReport& b,
                              const std::string& label) {
  EXPECT_EQ(a.frames_judged, b.frames_judged) << label;
  EXPECT_EQ(a.steps, b.steps) << label;
  EXPECT_EQ(a.probes, b.probes) << label;
  EXPECT_EQ(a.episodes_run, b.episodes_run) << label;
  EXPECT_EQ(a.repeats, b.repeats) << label;
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds) << label;
  EXPECT_DOUBLE_EQ(a.mean_goodput_bps, b.mean_goodput_bps) << label;
  ASSERT_EQ(a.violations.size(), b.violations.size()) << label;
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].invariant, b.violations[i].invariant) << label;
    EXPECT_EQ(a.violations[i].frame, b.violations[i].frame) << label;
    EXPECT_EQ(a.violations[i].episode, b.violations[i].episode) << label;
    EXPECT_EQ(a.violations[i].repeat, b.violations[i].repeat) << label;
    EXPECT_DOUBLE_EQ(a.violations[i].time, b.violations[i].time) << label;
  }
  ASSERT_EQ(a.episode_summaries.size(), b.episode_summaries.size()) << label;
  for (std::size_t i = 0; i < a.episode_summaries.size(); ++i) {
    EXPECT_EQ(a.episode_summaries[i].index, b.episode_summaries[i].index)
        << label;
    EXPECT_EQ(a.episode_summaries[i].repeat, b.episode_summaries[i].repeat)
        << label;
    EXPECT_DOUBLE_EQ(a.episode_summaries[i].goodput_bps,
                     b.episode_summaries[i].goodput_bps)
        << label;
    EXPECT_EQ(a.episode_summaries[i].frames_judged,
              b.episode_summaries[i].frames_judged)
        << label;
  }
}

TEST(SoakRunnerParallel, BudgetCampaignBitIdenticalAcrossThreadCounts) {
  // Budget sized so the campaign spans several timeline repeats (the
  // parallel path's unit of work).
  SoakOptions serial_opts;
  serial_opts.threads = 1;
  std::uint64_t probe_fp = 0;
  const SoakReport once =
      run_scoped(budget_scenario(), serial_opts, probe_fp);
  ASSERT_TRUE(once.ok());
  serial_opts.max_frames = once.frames_judged * 5;

  std::uint64_t serial_fp = 0;
  const SoakReport serial =
      run_scoped(budget_scenario(), serial_opts, serial_fp);
  ASSERT_TRUE(serial.ok());
  ASSERT_GE(serial.repeats, 3u);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    SoakOptions opts = serial_opts;
    opts.threads = threads;
    std::uint64_t fp = 0;
    const SoakReport parallel = run_scoped(budget_scenario(), opts, fp);
    expect_reports_identical(serial, parallel,
                             "threads=" + std::to_string(threads));
    EXPECT_EQ(fp, serial_fp) << "threads=" << threads;
  }
}

TEST(SoakRunnerParallel, InjectedFaultIdenticalAcrossThreadCounts) {
  // The injected violation lands on a later repeat: the parallel path
  // must re-run that repeat serially and report the exact coordinates.
  SoakOptions probe_opts;
  probe_opts.threads = 1;
  std::uint64_t ignored = 0;
  const SoakReport once =
      run_scoped(budget_scenario(), probe_opts, ignored);

  Scenario s = budget_scenario();
  s.inject = chaos::InjectedViolation{once.frames_judged * 2 + 7};

  SoakOptions serial_opts;
  serial_opts.threads = 1;
  serial_opts.max_frames = once.frames_judged * 6;
  std::uint64_t serial_fp = 0;
  const SoakReport serial = run_scoped(s, serial_opts, serial_fp);
  ASSERT_FALSE(serial.ok());
  ASSERT_EQ(serial.violations.front().invariant, "injected");
  ASSERT_GE(serial.violations.front().repeat, 1u);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    SoakOptions opts = serial_opts;
    opts.threads = threads;
    std::uint64_t fp = 0;
    const SoakReport parallel = run_scoped(s, opts, fp);
    expect_reports_identical(serial, parallel,
                             "threads=" + std::to_string(threads));
    EXPECT_EQ(fp, serial_fp) << "threads=" << threads;
  }
}

// --------------------------------------- SoakRunner fault tolerance

TEST(SoakRunnerRetry, TransientFaultsFingerprintIdenticalAcrossThreads) {
  // Acceptance: a campaign with injected transient faults + retries is
  // bit-identical to the fault-free campaign at any thread count.
  SoakOptions probe_opts;
  probe_opts.threads = 1;
  std::uint64_t fault_free_fp = 0;
  const SoakReport once =
      run_scoped(budget_scenario(), probe_opts, fault_free_fp);
  ASSERT_TRUE(once.ok());

  SoakOptions base_opts;
  base_opts.threads = 1;
  base_opts.max_frames = once.frames_judged * 5;
  std::uint64_t want_fp = 0;
  const SoakReport want = run_scoped(budget_scenario(), base_opts, want_fp);
  ASSERT_TRUE(want.ok());
  ASSERT_GE(want.repeats, 3u);

  // Repeats 1 and 2 fail on their first attempt, then recover.
  par::FaultPlan plan;
  plan.entries.push_back({1, 0, par::FaultKind::kThrow});
  plan.entries.push_back({2, 0, par::FaultKind::kTorn});

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    SoakOptions opts = base_opts;
    opts.threads = threads;
    opts.retry.max_attempts = 3;
    opts.retry.backoff_base_ms = 0.1;
    opts.fault_plan = plan;
    std::uint64_t fp = 0;
    const SoakReport got = run_scoped(budget_scenario(), opts, fp);
    expect_reports_identical(want, got,
                             "faulty threads=" + std::to_string(threads));
    EXPECT_EQ(fp, want_fp) << "threads=" << threads;
    EXPECT_EQ(got.degraded.retries, 2u) << "threads=" << threads;
    EXPECT_FALSE(got.degraded.degraded()) << "threads=" << threads;
  }
}

TEST(SoakRunnerRetry, ExhaustedRepeatQuarantinedCampaignSurvives) {
  // Acceptance: one repeat exhausting its retries lands in the degraded
  // report with its campaign coordinates; every other repeat survives
  // and the campaign completes instead of aborting.
  SoakOptions probe_opts;
  probe_opts.threads = 1;
  std::uint64_t ignored = 0;
  const SoakReport once =
      run_scoped(budget_scenario(), probe_opts, ignored);

  par::FaultPlan plan;
  plan.entries.push_back({1, 0, par::FaultKind::kThrow});
  plan.entries.push_back({1, 1, par::FaultKind::kThrow});

  for (const std::size_t threads : {1u, 4u}) {
    SoakOptions opts;
    opts.threads = threads;
    opts.max_frames = once.frames_judged * 4;
    opts.retry.max_attempts = 2;
    opts.retry.backoff_base_ms = 0.1;
    opts.fault_plan = plan;
    std::uint64_t fp = 0;
    const SoakReport got = run_scoped(budget_scenario(), opts, fp);
    EXPECT_TRUE(got.ok()) << "threads=" << threads;
    ASSERT_TRUE(got.degraded.degraded()) << "threads=" << threads;
    ASSERT_EQ(got.degraded.quarantined.size(), 1u) << "threads=" << threads;
    EXPECT_EQ(got.degraded.quarantined[0].index, 1u);  // campaign repeat
    EXPECT_EQ(got.degraded.quarantined[0].attempts, 2u);
    // The campaign still hit its frame budget on the surviving repeats.
    EXPECT_GE(got.frames_judged, opts.max_frames) << "threads=" << threads;
    EXPECT_GE(got.repeats, 4u) << "threads=" << threads;
  }
}

TEST(SoakRunnerParallel, SinglePassCampaignIgnoresThreads) {
  // max_frames == 0 runs the timeline once; threads must not change that.
  SoakOptions opts;
  opts.threads = 8;
  std::uint64_t fp_parallel = 0;
  const SoakReport a = run_scoped(budget_scenario(), opts, fp_parallel);
  opts.threads = 1;
  std::uint64_t fp_serial = 0;
  const SoakReport b = run_scoped(budget_scenario(), opts, fp_serial);
  expect_reports_identical(a, b, "single-pass");
  EXPECT_EQ(fp_parallel, fp_serial);
}

}  // namespace
}  // namespace carpool
