# Runs the soak binary with a "|"-separated argument list and asserts the
# exit code. Driven by the SoakCli.* ctest cases in CMakeLists.txt:
#   cmake -DSOAK=<path> "-DARGS=--frames|12x" -DEXPECT=2 -P soak_cli_test.cmake
# "|" keeps empty arguments intact ("--fuzz-rounds" followed by "") where
# a ;-list would drop them.

if(NOT DEFINED SOAK OR NOT DEFINED EXPECT)
  message(FATAL_ERROR "soak_cli_test.cmake needs -DSOAK=... and -DEXPECT=...")
endif()

set(args "")
if(DEFINED ARGS AND NOT ARGS STREQUAL "")
  string(REPLACE "|" ";" args "${ARGS}")
endif()

execute_process(
  COMMAND "${SOAK}" ${args}
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(NOT code EQUAL ${EXPECT})
  message(FATAL_ERROR
    "soak ${ARGS}: exit ${code}, want ${EXPECT}\nstdout:\n${out}\nstderr:\n${err}")
endif()

# Every usage error must actually print the usage block.
if(EXPECT EQUAL 2 AND NOT err MATCHES "usage: soak")
  message(FATAL_ERROR
    "soak ${ARGS}: exit 2 without a usage message\nstderr:\n${err}")
endif()
