#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/bits.hpp"
#include "common/crc.hpp"
#include "common/hash.hpp"
#include "common/mac_address.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace carpool {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntUnbiasedCoverage) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(Rng, GaussianMoments) {
  Rng rng(123);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(99);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(3.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(5);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Bits, RoundTripBytesBits) {
  const Bytes bytes{0x00, 0xFF, 0xA5, 0x3C};
  const Bits bits = bytes_to_bits(bytes);
  ASSERT_EQ(bits.size(), 32u);
  EXPECT_EQ(bits_to_bytes(bits), bytes);
}

TEST(Bits, LsbFirstOrder) {
  const Bytes bytes{0x01};
  const Bits bits = bytes_to_bits(bytes);
  EXPECT_EQ(bits[0], 1);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(bits[i], 0);
}

TEST(Bits, BitsToBytesRejectsPartialByte) {
  const Bits bits(7, 0);
  EXPECT_THROW((void)bits_to_bytes(bits), std::invalid_argument);
}

TEST(Bits, HammingDistance) {
  const Bits a{0, 1, 1, 0};
  const Bits b{0, 1, 0, 0};
  EXPECT_EQ(hamming_distance(a, b), 1u);
  const Bits c{0, 1};
  EXPECT_EQ(hamming_distance(a, c), 2u);  // no mismatches + 2 length
}

TEST(BitIo, WriterReaderRoundTrip) {
  BitWriter w;
  w.put_bits(0x5A5, 12);
  w.put_bit(1);
  w.put_bits(0x3, 2);
  BitReader r(w.bits());
  EXPECT_EQ(r.get_bits(12), 0x5A5u);
  EXPECT_EQ(r.get_bit(), 1);
  EXPECT_EQ(r.get_bits(2), 0x3u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitIo, ReaderThrowsWhenExhausted) {
  const Bits bits{1};
  BitReader r(bits);
  (void)r.get_bit();
  EXPECT_THROW((void)r.get_bit(), std::out_of_range);
}

TEST(Crc32, MatchesKnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926.
  const Bytes data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  Bytes data(64, 0xAB);
  const std::uint32_t ref = crc32(data);
  data[10] ^= 0x04;
  EXPECT_NE(crc32(data), ref);
}

TEST(BitCrc, Crc2DetectsErrorsWithExpectedRate) {
  // A 2-bit CRC detects all single-bit errors and ~75% of random garbage.
  Rng rng(11);
  const std::size_t trials = 2000;
  std::size_t undetected = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    Bits data(48);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(2));
    const std::uint16_t ref = crc2().compute(data);
    Bits corrupted = data;
    // Random multi-bit corruption.
    const std::size_t flips = 1 + rng.uniform_int(6);
    for (std::size_t f = 0; f < flips; ++f) {
      corrupted[rng.uniform_int(corrupted.size())] ^= 1u;
    }
    if (corrupted != data && crc2().compute(corrupted) == ref) ++undetected;
  }
  const double miss_rate =
      static_cast<double>(undetected) / static_cast<double>(trials);
  EXPECT_LT(miss_rate, 0.35);  // 2-bit CRC theoretical miss ~= 25%
}

TEST(BitCrc, SingleBitErrorAlwaysDetected) {
  Rng rng(13);
  for (int t = 0; t < 200; ++t) {
    Bits data(96);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(2));
    const std::uint16_t ref = crc2().compute(data);
    Bits corrupted = data;
    corrupted[rng.uniform_int(corrupted.size())] ^= 1u;
    EXPECT_NE(crc2().compute(corrupted), ref);
  }
}

TEST(BitCrc, WidthValidation) {
  EXPECT_THROW(BitCrc(0, 0x3), std::invalid_argument);
  EXPECT_THROW(BitCrc(17, 0x3), std::invalid_argument);
}

TEST(BitCrc, DifferentWidthsProduceDifferentRanges) {
  const Bits data{1, 0, 1, 1, 0, 0, 1, 0};
  EXPECT_LT(crc2().compute(data), 4u);
  EXPECT_LT(crc4().compute(data), 16u);
  EXPECT_LT(crc8().compute(data), 256u);
}

TEST(Hash, KeyedHashesDifferPerKey) {
  const Bytes data{1, 2, 3, 4, 5, 6};
  EXPECT_NE(keyed_hash(data, 0), keyed_hash(data, 1));
  EXPECT_NE(keyed_hash(data, 1), keyed_hash(data, 2));
}

TEST(Hash, KeyedHashUniformBitPositions) {
  // Hash positions modulo 48 should be roughly uniform (Bloom assumption).
  std::array<int, 48> counts{};
  const int kSamples = 48 * 500;
  for (int i = 0; i < kSamples; ++i) {
    const MacAddress mac = MacAddress::for_station(static_cast<std::uint32_t>(i));
    const auto octets = mac.octets();
    counts[keyed_hash(octets, 7) % 48] += 1;
  }
  const double expected = kSamples / 48.0;
  for (const int c : counts) {
    EXPECT_GT(c, expected * 0.7);
    EXPECT_LT(c, expected * 1.3);
  }
}

TEST(MacAddress, RoundTripValue) {
  const MacAddress mac(0x0123456789ABULL);
  EXPECT_EQ(mac.value(), 0x0123456789ABULL);
  EXPECT_EQ(mac.to_string(), "01:23:45:67:89:ab");
}

TEST(MacAddress, ForStationUniqueAndOrdered) {
  const MacAddress a = MacAddress::for_station(1);
  const MacAddress b = MacAddress::for_station(2);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(Units, DbConversions) {
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-12);
  EXPECT_NEAR(db_to_linear(3.0), 1.9953, 1e-3);
  EXPECT_NEAR(linear_to_db(100.0), 20.0, 1e-12);
  EXPECT_NEAR(db_to_amplitude(6.0), 1.9953, 1e-3);
  EXPECT_NEAR(dbm_to_watts(30.0), 1.0, 1e-12);
  EXPECT_NEAR(watts_to_dbm(0.001), 0.0, 1e-12);
}

TEST(Units, Airtime) {
  // 1500 bytes at 54 Mbit/s ~= 222 us (paper Sec. 3).
  EXPECT_NEAR(airtime(bits(1500), 54e6), 222e-6, 1e-6);
  // 64KB at 54 Mbit/s ~= 9.7 ms (paper Sec. 3).
  EXPECT_NEAR(airtime(bits(64 * 1024), 54e6), 9.7e-3, 0.05e-3);
}

TEST(Stats, RunningStatsMoments) {
  RunningStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Stats, SampleSetPercentilesAndCdf) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(0.9), 90.0, 1.0);
  EXPECT_DOUBLE_EQ(s.cdf(50.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf(100.0), 1.0);
}

TEST(Stats, WelfordMatchesClosedForm) {
  Rng rng(31);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.gaussian() * 7.0 + 3.0;
    xs.push_back(x);
    s.add(x);
  }
  // Two-pass closed form: mean, then sum of squared deviations / (n - 1).
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double m2 = 0.0;
  for (const double x : xs) m2 += (x - mean) * (x - mean);
  const double variance = m2 / static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9 * std::abs(mean));
  EXPECT_NEAR(s.variance(), variance, 1e-9 * variance);
}

TEST(Stats, RunningStatsDegenerateCounts) {
  RunningStats empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.variance(), 0.0);
  RunningStats one;
  one.add(4.0);
  EXPECT_DOUBLE_EQ(one.mean(), 4.0);
  EXPECT_DOUBLE_EQ(one.variance(), 0.0);  // n-1 denominator undefined at n=1
  EXPECT_DOUBLE_EQ(one.min(), 4.0);
  EXPECT_DOUBLE_EQ(one.max(), 4.0);
}

TEST(Stats, PercentileEdgeCases) {
  SampleSet single;
  single.add(42.0);
  EXPECT_DOUBLE_EQ(single.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(single.percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(single.percentile(1.0), 42.0);

  SampleSet s;
  for (int i = 1; i <= 10; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 10.0);

  const SampleSet empty;
  EXPECT_THROW((void)empty.percentile(0.5), std::logic_error);
  EXPECT_THROW((void)s.percentile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(1.1), std::invalid_argument);
}

TEST(Stats, SortedCacheInvalidatedByAdd) {
  SampleSet s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);  // forces the sort
  s.add(9.0);                                 // must invalidate the cache
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 9.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_TRUE(std::is_sorted(s.sorted().begin(), s.sorted().end()));
  // Insertion order of samples() is untouched by sorting.
  EXPECT_DOUBLE_EQ(s.samples().front(), 5.0);
}

TEST(Stats, HistogramFixedRange) {
  SampleSet s;
  for (const double x : {0.5, 1.5, 1.6, 2.5, -3.0, 99.0}) s.add(x);
  const auto counts = s.histogram(3, 0.0, 3.0);  // bins [0,1) [1,2) [2,3)
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);  // 0.5 plus the clamped -3.0
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);  // 2.5 plus the clamped 99.0
  EXPECT_THROW((void)s.histogram(0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)s.histogram(3, 1.0, 1.0), std::invalid_argument);
}

TEST(Stats, HistogramAutoRange) {
  SampleSet s;
  for (int i = 0; i < 100; ++i) s.add(static_cast<double>(i % 10));
  const auto counts = s.histogram(10);
  ASSERT_EQ(counts.size(), 10u);
  std::size_t total = 0;
  for (const std::size_t c : counts) {
    EXPECT_EQ(c, 10u);  // values 0..9, uniform
    total += c;
  }
  EXPECT_EQ(total, s.size());  // max sample lands in the last bin, not lost

  SampleSet constant;
  for (int i = 0; i < 7; ++i) constant.add(3.14);
  const auto identical = constant.histogram(4);
  EXPECT_EQ(identical[0], 7u);
  EXPECT_EQ(identical[1] + identical[2] + identical[3], 0u);

  const SampleSet empty;
  const auto none = empty.histogram(5);
  ASSERT_EQ(none.size(), 5u);
  for (const std::size_t c : none) EXPECT_EQ(c, 0u);
}

TEST(Stats, RatioCounter) {
  RatioCounter r;
  r.add(true);
  r.add(false);
  r.add(false);
  r.add(true);
  EXPECT_DOUBLE_EQ(r.ratio(), 0.5);
  RatioCounter empty;
  EXPECT_DOUBLE_EQ(empty.ratio(), 0.0);
}

}  // namespace
}  // namespace carpool
