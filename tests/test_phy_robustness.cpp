// Second-wave PHY tests: synchronization sweeps, channel-estimation
// fidelity against the true channel, cyclic-prefix timing robustness,
// equalizer weighting behaviour, and the hardened decode paths (structured
// DecodeStatus, per-subframe isolation, RTE poisoning guard) under
// injected faults.

#include <gtest/gtest.h>

#include <cmath>

#include "carpool/transceiver.hpp"
#include "channel/awgn.hpp"
#include "channel/fading.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "fec/viterbi.hpp"
#include "common/rng.hpp"
#include "impair/impair.hpp"
#include "phy/equalizer.hpp"
#include "phy/frame.hpp"
#include "phy/ofdm.hpp"
#include "phy/preamble.hpp"
#include "phy/sync.hpp"

namespace carpool {
namespace {

Bytes random_psdu(std::size_t n, Rng& rng) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return out;
}

// ------------------------------------------------------------------ sync

class SyncSnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(SyncSnrSweep, DetectsPreambleAcrossSnr) {
  const double snr_db = GetParam();
  Rng rng(static_cast<std::uint64_t>(snr_db * 10) + 3);
  int detected = 0;
  for (int trial = 0; trial < 10; ++trial) {
    CxVec wave(600, Cx{});
    const CxVec pre = preamble_waveform();
    wave.insert(wave.end(), pre.begin(), pre.end());
    wave.insert(wave.end(), 200, Cx{});
    add_awgn(wave, db_to_linear(-snr_db), rng);
    // At low SNR the normalised autocorrelation metric saturates near
    // S/(S+N), so detection needs a threshold below that.
    SyncConfig cfg;
    cfg.threshold = std::min(0.8, 0.8 * db_to_linear(snr_db) /
                                      (db_to_linear(snr_db) + 1.0));
    const auto sync = detect_frame(wave, cfg);
    if (sync && sync->frame_start > 560 && sync->frame_start < 640) {
      ++detected;
    }
  }
  EXPECT_GE(detected, 9) << "SNR " << snr_db;
}

INSTANTIATE_TEST_SUITE_P(Snr, SyncSnrSweep,
                         ::testing::Values(5.0, 10.0, 20.0, 30.0));

TEST(Sync, MultipleFramesFindsFirst) {
  Rng rng(7);
  const CxVec pre = preamble_waveform();
  CxVec wave(300, Cx{});
  wave.insert(wave.end(), pre.begin(), pre.end());
  wave.insert(wave.end(), 500, Cx{});
  wave.insert(wave.end(), pre.begin(), pre.end());
  add_awgn(wave, 1e-3, rng);
  const auto sync = detect_frame(wave);
  ASSERT_TRUE(sync.has_value());
  EXPECT_LT(sync->frame_start, 400u);
}

TEST(Sync, ThresholdConfigurable) {
  Rng rng(8);
  CxVec noise(2000, Cx{});
  add_awgn(noise, 1.0, rng);
  SyncConfig loose;
  loose.threshold = 0.05;
  loose.min_run = 2;
  // A permissive config may fire on noise; the default must not.
  EXPECT_FALSE(detect_frame(noise).has_value());
  (void)detect_frame(noise, loose);  // must not crash either way
}

// --------------------------------------------------- channel estimation

TEST(ChannelEstimation, TracksTrueFrequencyResponse) {
  // Pass the preamble through a static multipath channel and compare the
  // LTF estimate against the channel's true frequency response.
  FadingConfig cfg;
  cfg.seed = 21;
  cfg.num_taps = 4;
  cfg.snr_db = 300.0;  // noise-free
  cfg.coherence_time = 1e3;
  FadingChannel channel(cfg);
  const CxVec truth = channel.frequency_response(kFftSize);

  const CxVec rx = channel.transmit(preamble_waveform());
  const CxVec h = estimate_channel_from_ltf(
      std::span<const Cx>(rx).subspan(kStfLen, kLtfLen));

  for (const std::size_t bin : data_bins()) {
    // The first num_taps-1 samples of the first LTF symbol carry inter-
    // block interference from the CP warmup; tolerance accounts for it.
    EXPECT_NEAR(std::abs(h[bin] - truth[bin]), 0.0, 0.08)
        << "bin " << bin;
  }
}

TEST(ChannelEstimation, NoisyEstimateDegradesGracefully) {
  RunningStats clean_err, noisy_err;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    for (const double snr : {40.0, 10.0}) {
      FadingConfig cfg;
      cfg.seed = seed + 100;
      cfg.num_taps = 3;
      cfg.snr_db = snr;
      cfg.coherence_time = 1e3;
      FadingChannel channel(cfg);
      const CxVec truth = channel.frequency_response(kFftSize);
      const CxVec rx = channel.transmit(preamble_waveform());
      const CxVec h = estimate_channel_from_ltf(
          std::span<const Cx>(rx).subspan(kStfLen, kLtfLen));
      double err = 0.0;
      for (const std::size_t bin : data_bins()) {
        err += std::norm(h[bin] - truth[bin]);
      }
      (snr > 20 ? clean_err : noisy_err).add(err);
    }
  }
  EXPECT_LT(clean_err.mean(), noisy_err.mean());
}

// ----------------------------------------------------- timing robustness

TEST(CyclicPrefix, EarlySamplingToleratedWithinCp) {
  // Sampling a few samples early stays inside the CP: the FFT window sees
  // a cyclic shift = per-subcarrier phase ramp, which the LTF estimate
  // absorbs when the shift applies to the whole frame.
  Rng rng(31);
  const Bytes psdu = append_fcs(random_psdu(120, rng));
  const LegacyTransmitter tx;
  CxVec wave = tx.build(psdu, mcs(4));
  // Prepend 4 zero samples => receiver samples everything 4 early.
  CxVec shifted(4, Cx{});
  shifted.insert(shifted.end(), wave.begin(), wave.end());
  // (The receiver assumes the frame starts at 0; the first 4 "STF"
  // samples are zeros, a small perturbation to CFO estimation.)
  const LegacyReceiver rx;
  const LegacyRxResult result =
      rx.receive(std::span<const Cx>(shifted).first(wave.size()));
  EXPECT_TRUE(result.sig_ok);
}

TEST(CyclicPrefix, GrossMistimingFails) {
  Rng rng(32);
  const Bytes psdu = append_fcs(random_psdu(120, rng));
  const LegacyTransmitter tx;
  const CxVec wave = tx.build(psdu, mcs(4));
  const LegacyReceiver rx;
  // Start 40 samples late: preamble structure is destroyed.
  const LegacyRxResult result =
      rx.receive(std::span<const Cx>(wave).subspan(40));
  EXPECT_FALSE(result.fcs_ok);
}

// ------------------------------------------------------------- equalizer

TEST(Equalizer, GainsReflectChannelMagnitude) {
  CxVec h(kFftSize, Cx{1.0, 0.0});
  // Fade half the data subcarriers.
  const auto bins = data_bins();
  for (std::size_t i = 0; i < bins.size(); i += 2) {
    h[bins[i]] = Cx{0.2, 0.0};
  }
  Rng rng(41);
  const Constellation& con = constellation(Modulation::kQpsk);
  CxVec data(kNumDataSubcarriers);
  for (Cx& d : data) d = con.points()[rng.uniform_int(con.size())];
  // Simulate the channel in the frequency domain.
  CxVec sym = assemble_symbol(data, 1);
  CxVec fbins = extract_symbol(sym);
  for (std::size_t k = 0; k < kFftSize; ++k) fbins[k] *= h[k];

  const SymbolEqualization eq = equalize_symbol(fbins, h, 1);
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const double expected = std::norm(h[bins[i]]);
    EXPECT_NEAR(eq.gains[i], expected, 1e-9);
  }
}

TEST(Equalizer, PilotQualityDropsWithNoise) {
  Rng rng(42);
  const Constellation& con = constellation(Modulation::kBpsk);
  CxVec data(kNumDataSubcarriers);
  for (Cx& d : data) d = con.points()[rng.uniform_int(con.size())];
  const CxVec h(kFftSize, Cx{1.0, 0.0});

  CxVec clean = extract_symbol(assemble_symbol(data, 0));
  const double q_clean = equalize_symbol(clean, h, 0).pilot_quality;

  CxVec sym = assemble_symbol(data, 0);
  add_awgn(sym, 0.5, rng);
  CxVec noisy = extract_symbol(sym);
  const double q_noisy = equalize_symbol(noisy, h, 0).pilot_quality;
  EXPECT_GT(q_clean, 0.99);
  EXPECT_LT(q_noisy, q_clean);
}

TEST(Equalizer, ZeroChannelBinsAreErased) {
  CxVec h(kFftSize, Cx{});  // dead channel
  CxVec bins(kFftSize, Cx{1.0, 0.0});
  const SymbolEqualization eq = equalize_symbol(bins, h, 0);
  for (const double g : eq.gains) EXPECT_DOUBLE_EQ(g, 0.0);
  for (const Cx& d : eq.data) EXPECT_EQ(d, Cx{});
}


class TimingOffsetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TimingOffsetSweep, OffsetsInsideCpDecode) {
  Rng rng(60 + GetParam());
  const Bytes psdu = append_fcs(random_psdu(200, rng));
  const LegacyTransmitter tx;
  const CxVec wave = tx.build(psdu, mcs(4));
  FadingConfig cfg;
  cfg.seed = 61;
  cfg.snr_db = 35.0;
  cfg.num_taps = 1;
  cfg.coherence_time = 1e2;
  cfg.timing_offset_samples = GetParam();
  FadingChannel channel(cfg);
  const LegacyReceiver rx;
  const LegacyRxResult result = rx.receive(channel.transmit(wave));
  // Offsets up to about half the CP survive (the CP also has to absorb
  // channel delay spread); the preamble-based estimate soaks up the
  // resulting phase ramp.
  EXPECT_TRUE(result.fcs_ok) << "offset " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(WithinCp, TimingOffsetSweep,
                         ::testing::Values(0, 1, 2, 4, 6));

// -------------------------------------------------- Viterbi noise sweep

class ViterbiAwgn : public ::testing::TestWithParam<double> {};

TEST_P(ViterbiAwgn, PostFecBerBelowWaterfall) {
  // Soft-decision K=7 rate-1/2 over BPSK-AWGN: at Eb/N0 >= 4 dB the
  // post-FEC BER must be < 1e-3 (classic waterfall).
  const double ebn0_db = GetParam();
  Rng rng(static_cast<std::uint64_t>(ebn0_db * 7) + 5);
  const ViterbiDecoder decoder;
  std::size_t errors = 0, bits = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Bits data(500);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(2));
    const Bits coded =
        ConvolutionalCode::encode_terminated(data, CodeRate::kHalf);
    SoftBits soft = bits_to_soft(coded);
    // Rate-1/2: Es/N0 = Eb/N0 - 3 dB; noise sigma^2 = 1/(2*Es/N0) per dim.
    const double es_n0 = db_to_linear(ebn0_db) * 0.5;
    const double sigma = std::sqrt(1.0 / (2.0 * es_n0));
    for (double& s : soft) s += rng.gaussian(0.0, sigma);
    const Bits decoded =
        decoder.decode_punctured(soft, CodeRate::kHalf, data.size());
    errors += hamming_distance(decoded, data);
    bits += data.size();
  }
  const double ber = static_cast<double>(errors) / static_cast<double>(bits);
  if (ebn0_db >= 4.0) {
    EXPECT_LT(ber, 1e-3) << "Eb/N0 " << ebn0_db;
  } else if (ebn0_db <= 0.0) {
    EXPECT_GT(ber, 1e-3) << "Eb/N0 " << ebn0_db;
  }
}

INSTANTIATE_TEST_SUITE_P(EbN0, ViterbiAwgn,
                         ::testing::Values(-1.0, 0.0, 4.0, 6.0));

// -------------------------------------------- hardened decode paths

const MacAddress kSelf{{0x02, 0xAA, 0xBB, 0xCC, 0xDD, 0x01}};
const MacAddress kOther{{0x02, 0xAA, 0xBB, 0xCC, 0xDD, 0x02}};

/// Two-subframe frame, both owned by kSelf (so the walk must cross the
/// first subframe to reach the second — exactly the isolation case).
std::vector<SubframeSpec> two_subframes(Rng& rng, std::size_t bytes = 150) {
  std::vector<SubframeSpec> subframes(2);
  for (SubframeSpec& s : subframes) {
    s.receiver = kSelf;
    s.psdu = append_fcs(random_psdu(bytes, rng));
    s.mcs_index = 2;
  }
  return subframes;
}

CarpoolRxConfig self_rx_config() {
  CarpoolRxConfig cfg;
  cfg.self = kSelf;
  return cfg;
}

TEST(DecodeHardening, FrontendReportsTruncatedNotThrow) {
  Rng rng(70);
  CxVec wave(kPreambleLen - 1);
  for (Cx& s : wave) s = Cx{rng.gaussian(0.0, 1.0), 0.0};
  for (const std::size_t len : {std::size_t{0}, std::size_t{1},
                                kStfLen - 1, kStfLen, kPreambleLen - 1}) {
    const Frontend fe =
        receive_frontend(std::span<const Cx>(wave).first(len));
    EXPECT_EQ(fe.status, DecodeStatus::kTruncated) << "len " << len;
    EXPECT_FALSE(fe.ok());
  }
}

TEST(DecodeHardening, FrontendReportsSyncLostOnNoise) {
  Rng rng(71);
  CxVec noise(kPreambleLen + 5 * kSymbolLen, Cx{});
  add_awgn(noise, 1.0, rng);
  const Frontend fe = receive_frontend(noise);
  EXPECT_EQ(fe.status, DecodeStatus::kSyncLost);
  EXPECT_LT(fe.sync_quality, 0.3);
  // A real preamble scores near 1.
  const Frontend good = receive_frontend(preamble_waveform());
  EXPECT_TRUE(good.ok());
  EXPECT_GT(good.sync_quality, 0.9);
}

TEST(DecodeHardening, LegacyReceiverStatusCodes) {
  Rng rng(72);
  const Bytes psdu = append_fcs(random_psdu(100, rng));
  const LegacyTransmitter tx;
  const CxVec wave = tx.build(psdu, mcs(2));
  const LegacyReceiver rx;

  const LegacyRxResult ok = rx.receive(wave);
  EXPECT_EQ(ok.status, DecodeStatus::kOk);
  EXPECT_TRUE(ok.fcs_ok);

  const LegacyRxResult cut =
      rx.receive(std::span<const Cx>(wave).first(wave.size() - kSymbolLen));
  EXPECT_EQ(cut.status, DecodeStatus::kTruncated);

  CxVec noise(wave.size(), Cx{});
  add_awgn(noise, 1.0, rng);
  EXPECT_EQ(rx.receive(noise).status, DecodeStatus::kSyncLost);
}

TEST(DecodeHardening, TruncationAtEverySymbolBoundary) {
  Rng rng(73);
  const std::vector<SubframeSpec> subframes = two_subframes(rng);
  const CarpoolTransmitter tx({SymbolCrcScheme{}});
  const CxVec wave = tx.build(subframes);
  const CarpoolReceiver rx(self_rx_config());

  for (std::size_t cut = 0; cut <= wave.size(); cut += kSymbolLen / 2) {
    const std::size_t len = std::min(cut, wave.size());
    CarpoolRxResult result;
    ASSERT_NO_THROW(
        result = rx.receive(std::span<const Cx>(wave).first(len)))
        << "cut " << len;
    EXPECT_NE(result.status, DecodeStatus::kInternalError) << "cut " << len;
    if (len < wave.size()) {
      // Anything short of the full frame loses at least one symbol.
      EXPECT_EQ(result.status, DecodeStatus::kTruncated) << "cut " << len;
    }
    // Subframes fully inside the cut still decode cleanly.
    for (const DecodedSubframe& sub : result.subframes) {
      if (sub.status == DecodeStatus::kOk) {
        EXPECT_TRUE(sub.fcs_ok) << "cut " << len;
      }
    }
  }
  const CarpoolRxResult full = rx.receive(wave);
  EXPECT_EQ(full.status, DecodeStatus::kOk);
  ASSERT_EQ(full.subframes.size(), 2u);
  EXPECT_TRUE(full.subframes[0].fcs_ok);
  EXPECT_TRUE(full.subframes[1].fcs_ok);
}

TEST(DecodeHardening, CorruptedSubframeDoesNotAbortSiblings) {
  Rng rng(74);
  const std::vector<SubframeSpec> subframes = two_subframes(rng);
  const CarpoolTransmitter tx({SymbolCrcScheme{}});
  const CxVec wave = tx.build(subframes);
  const CarpoolReceiver rx(self_rx_config());

  const Mcs& m = mcs(subframes[0].mcs_index);
  const std::size_t n_sym = num_data_symbols(m, subframes[0].psdu.size());
  // Zero out a chunk of subframe 0's data symbols (after preamble, A-HDR
  // and subframe 0's SIG). Subframe 1 must still decode.
  const std::size_t data0 = kPreambleLen + 3 * kSymbolLen;
  impair::ImpairmentChain chain(5);
  chain.add(impair::make_sample_erasure(
      {.start_sample = data0, .num_samples = (n_sym / 2) * kSymbolLen}));
  const CarpoolRxResult result = rx.receive(chain.run(wave));

  ASSERT_EQ(result.subframes.size(), 2u);
  EXPECT_FALSE(result.subframes[0].fcs_ok);
  EXPECT_EQ(result.subframes[0].status, DecodeStatus::kFcsFail);
  EXPECT_TRUE(result.subframes[1].fcs_ok);
  EXPECT_EQ(result.subframes[1].status, DecodeStatus::kOk);
  EXPECT_EQ(result.status, DecodeStatus::kOk);  // the walk itself survived
}

TEST(DecodeHardening, CorruptSigIsolatesTailOnly) {
  Rng rng(75);
  const std::vector<SubframeSpec> subframes = two_subframes(rng);
  const CarpoolTransmitter tx({SymbolCrcScheme{}});
  const CxVec wave = tx.build(subframes);
  const CarpoolReceiver rx(self_rx_config());

  const Mcs& m = mcs(subframes[0].mcs_index);
  const std::size_t n_sym = num_data_symbols(m, subframes[0].psdu.size());
  // Subframe 1's SIG is symbol 2 (A-HDR) + 1 (SIG0) + n_sym after the
  // preamble.
  impair::ImpairmentChain chain(6);
  chain.add(impair::make_header_corruption(
      {.symbol_index = 3 + n_sym, .flip_bins = 22}));
  const CarpoolRxResult result = rx.receive(chain.run(wave));

  EXPECT_EQ(result.status, DecodeStatus::kSigCorrupt);
  ASSERT_EQ(result.subframes.size(), 1u);  // subframe 0 survived
  EXPECT_TRUE(result.subframes[0].fcs_ok);
}

TEST(DecodeHardening, FlippedAhdrBitsReportMiss) {
  Rng rng(76);
  const std::vector<SubframeSpec> subframes = two_subframes(rng);
  const CarpoolTransmitter tx({SymbolCrcScheme{}});
  const CxVec wave = tx.build(subframes);
  const CarpoolReceiver rx(self_rx_config());

  // A Bloom filter decoded from corrupted symbols can still false-match
  // (it has no checksum); this seed's garbage filter misses every slot.
  impair::ImpairmentChain chain(16);
  chain.add(impair::make_header_corruption(
      {.symbol_index = 0, .flip_bins = 20}));
  chain.add(impair::make_header_corruption(
      {.symbol_index = 1, .flip_bins = 20}));
  const CarpoolRxResult result = rx.receive(chain.run(wave));
  // The Bloom filter decodes to garbage: this receiver finds no match
  // (and must say so, not throw or return a silent empty result).
  EXPECT_EQ(result.status, DecodeStatus::kAhdrMiss);
  EXPECT_TRUE(result.subframes.empty());

  // An unaddressed receiver reports the same on a clean frame.
  CarpoolRxConfig other = self_rx_config();
  other.self = kOther;
  const CarpoolReceiver rx_other(other);
  EXPECT_EQ(rx_other.receive(wave).status, DecodeStatus::kAhdrMiss);
}

TEST(DecodeHardening, BadConfigReportedNotThrown) {
  CarpoolRxConfig cfg = self_rx_config();
  cfg.crc_scheme.group_symbols = 0;
  const CarpoolReceiver rx(cfg);  // must not throw
  EXPECT_FALSE(rx.config_error().empty());
  Rng rng(77);
  const std::vector<SubframeSpec> subframes = two_subframes(rng);
  const CxVec wave = CarpoolTransmitter({SymbolCrcScheme{}}).build(subframes);
  EXPECT_EQ(rx.receive(wave).status, DecodeStatus::kBadConfig);

  CarpoolRxConfig bad_alpha = self_rx_config();
  bad_alpha.rte_alpha = 1.5;
  EXPECT_FALSE(CarpoolReceiver(bad_alpha).config_error().empty());
  EXPECT_TRUE(CarpoolReceiver(self_rx_config()).config_error().empty());
}

TEST(DecodeHardening, NoExceptionEscapesUnderHeavyImpairment) {
  Rng rng(78);
  const std::vector<SubframeSpec> subframes = two_subframes(rng);
  const CxVec wave = CarpoolTransmitter({SymbolCrcScheme{}}).build(subframes);
  const CarpoolReceiver rx(self_rx_config());

  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    impair::ImpairmentChain chain(seed);
    chain.add(impair::make_gilbert_elliott(
        {.p_good_to_bad = 0.3, .bad_noise_power = 2.0}));
    chain.add(impair::make_clock_drift(
        {.ppm = static_cast<double>(seed) * 40.0}));
    chain.add(impair::make_header_corruption(
        {.symbol_index = seed % 6, .flip_bins = 1 + seed % 24}));
    chain.add(impair::make_truncation(
        {.keep_samples = 1 + (seed * 131) % wave.size()}));
    CarpoolRxResult result;
    ASSERT_NO_THROW(result = rx.receive(chain.run(wave))) << "seed " << seed;
    EXPECT_NE(result.status, DecodeStatus::kInternalError)
        << "seed " << seed;
  }
}

// ------------------------------------------------- RTE poisoning guard

TEST(RteGuard, BurstTriggersFreezeAndRollback) {
  Rng rng(80);
  std::vector<SubframeSpec> subframes(1);
  subframes[0].receiver = kSelf;
  subframes[0].psdu = append_fcs(random_psdu(400, rng));
  subframes[0].mcs_index = 0;  // many symbols -> many CRC groups
  const CxVec wave = CarpoolTransmitter({SymbolCrcScheme{}}).build(subframes);

  // Collapse the SNR from mid-frame on. The floor noise is harmless
  // against the full-power signal (~20 dB) but swamps the attenuated
  // tail (~-5 dB), so every later side-channel group fails its CRC and
  // the guard must freeze (and roll back) the estimate.
  impair::ImpairmentChain chain(9);
  chain.add(impair::make_snr_collapse(
      {.start_sample = kPreambleLen + 20 * kSymbolLen,
       .attenuation_db = 25.0}));
  chain.add(impair::make_impulsive_noise(
      {.impulse_prob = 1.0, .impulse_power = 0.01}));
  const CxVec impaired = chain.run(wave);

  CarpoolRxConfig cfg = self_rx_config();
  cfg.rte_freeze_after = 3;
  const CarpoolRxResult result = CarpoolReceiver(cfg).receive(impaired);
  EXPECT_GE(result.rte_freezes, 1u);
  EXPECT_GE(result.rte_rollbacks, 1u);

  // Guard disabled: same input, no freezes.
  cfg.rte_freeze_after = 0;
  const CarpoolRxResult unguarded = CarpoolReceiver(cfg).receive(impaired);
  EXPECT_EQ(unguarded.rte_freezes, 0u);
  EXPECT_EQ(unguarded.rte_rollbacks, 0u);
}

TEST(RteGuard, CleanFrameNeverFreezes) {
  Rng rng(81);
  const std::vector<SubframeSpec> subframes = two_subframes(rng);
  const CxVec wave = CarpoolTransmitter({SymbolCrcScheme{}}).build(subframes);
  const CarpoolRxResult result =
      CarpoolReceiver(self_rx_config()).receive(wave);
  EXPECT_EQ(result.status, DecodeStatus::kOk);
  EXPECT_EQ(result.rte_freezes, 0u);
  EXPECT_GT(result.subframes.at(0).rte_updates, 0u);
}

}  // namespace
}  // namespace carpool
