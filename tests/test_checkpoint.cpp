// carpool::chaos — campaign checkpoint/resume contract
// (docs/FAULT_TOLERANCE.md): the checkpoint JSON round-trips bit-exactly,
// digests pin the campaign identity, writes are atomic, and a resumed
// campaign reproduces the uninterrupted run's report and metrics
// fingerprint at any thread count.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/checkpoint.hpp"
#include "chaos/runner.hpp"
#include "chaos/scenario.hpp"
#include "obs/registry.hpp"

namespace carpool {
namespace {

using chaos::CampaignCheckpoint;
using chaos::CheckpointParseResult;
using chaos::Scenario;
using chaos::SoakOptions;
using chaos::SoakReport;
using chaos::SoakRunner;
using chaos::TrafficKind;

std::filesystem::path fresh_dir(const std::string& leaf) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Scenario ckpt_scenario() {
  Scenario s;
  s.name = "ckpt_budget";
  s.seed = 91;
  s.duration = 1.0;
  s.num_stas = 3;
  s.probe_interval = 0.25;
  s.traffic.push_back({0.0, TrafficKind::kCbr, 1000, 4e-3});
  s.interference.push_back({0.4, 0.7, 6.0, 0.8, {}});
  s.churn.push_back({0.5, 3, false});
  return s;
}

/// Run a campaign under a private metric scope; returns the report and
/// fills `fingerprint` with the scope's digest.
SoakReport run_scoped(const Scenario& s, const SoakOptions& opts,
                      std::uint64_t& fingerprint) {
  obs::Registry scope;
  const obs::Registry::ScopedCurrent current(scope);
  const SoakReport report = SoakRunner(opts).run(s);
  fingerprint = scope.fingerprint();
  return report;
}

CampaignCheckpoint sample_checkpoint() {
  CampaignCheckpoint ck;
  ck.scenario_name = "sample";
  ck.scenario_digest = 0xdeadbeefcafef00dULL;
  ck.options_digest = 0x0123456789abcdefULL;
  ck.repeats_done = 7;
  ck.frames_judged = 123456;
  ck.steps = 7890;
  ck.probes = 42;
  ck.episodes_run = 21;
  ck.sim_seconds = 13.25;
  ck.episodes.push_back({2, 1, 0.5, 1.0, 0.75, 1.25e7, 4242});
  ck.margins.emplace_back("fairness_floor", 0.125);
  ck.margins.emplace_back("sane_metrics", 0.052734375);

  obs::Registry reg;
  reg.counter("mac.frames").add(100);
  reg.counter("zero.registered");  // value 0 — key-set parity must survive
  reg.set_gauge("sim.bss", 4.0);
  obs::Histogram& h = reg.histogram("lat", {1.0, 2.0}, "ms");
  h.record(0.5);
  h.record(1.5);
  h.record(10.0);
  ck.registry = reg.snapshot();
  ck.span_watermark = 9001;
  return ck;
}

// -------------------------------------------------------------- encoding

TEST(Checkpoint, JsonRoundTripsEveryField) {
  const CampaignCheckpoint ck = sample_checkpoint();
  const CheckpointParseResult parsed =
      chaos::checkpoint_from_json(chaos::checkpoint_to_json(ck));
  ASSERT_TRUE(parsed.ok()) << parsed.error.to_string();
  const CampaignCheckpoint& got = *parsed.checkpoint;

  EXPECT_EQ(got.schema_version, chaos::kCheckpointSchemaVersion);
  EXPECT_EQ(got.scenario_name, ck.scenario_name);
  EXPECT_EQ(got.scenario_digest, ck.scenario_digest);
  EXPECT_EQ(got.options_digest, ck.options_digest);
  EXPECT_EQ(got.repeats_done, ck.repeats_done);
  EXPECT_EQ(got.frames_judged, ck.frames_judged);
  EXPECT_EQ(got.steps, ck.steps);
  EXPECT_EQ(got.probes, ck.probes);
  EXPECT_EQ(got.episodes_run, ck.episodes_run);
  EXPECT_DOUBLE_EQ(got.sim_seconds, ck.sim_seconds);

  ASSERT_EQ(got.episodes.size(), 1u);
  EXPECT_EQ(got.episodes[0].index, 2u);
  EXPECT_EQ(got.episodes[0].repeat, 1u);
  EXPECT_DOUBLE_EQ(got.episodes[0].goodput_bps, 1.25e7);
  EXPECT_EQ(got.episodes[0].frames_judged, 4242u);

  ASSERT_EQ(got.margins.size(), 2u);
  EXPECT_EQ(got.margins[0].first, "fairness_floor");
  EXPECT_DOUBLE_EQ(got.margins[0].second, 0.125);
  EXPECT_DOUBLE_EQ(got.margins[1].second, 0.052734375);
  EXPECT_EQ(got.span_watermark, 9001u);

  // The restored registry snapshot reproduces the original fingerprint
  // and the zero-valued counter registration (export key-set parity).
  obs::Registry restored;
  restored.restore(got.registry);
  obs::Registry reference;
  reference.restore(ck.registry);
  EXPECT_EQ(restored.fingerprint(), reference.fingerprint());
  EXPECT_NE(restored.to_json().find("zero.registered"), std::string::npos);
}

TEST(Checkpoint, ParserRejectsMalformedDocuments) {
  EXPECT_FALSE(chaos::checkpoint_from_json("not json").ok());
  EXPECT_FALSE(chaos::checkpoint_from_json("{}").ok());
  // Tamper one histogram's buckets to the wrong arity.
  std::string text = chaos::checkpoint_to_json(sample_checkpoint());
  const std::string needle = "\"buckets\": [";
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  text.insert(at + needle.size(), "77, ");
  EXPECT_FALSE(chaos::checkpoint_from_json(text).ok());
}

TEST(Checkpoint, ParserRejectsNonIntegralAndOutOfRangeNumbers) {
  // A corrupted or hand-edited checkpoint must become a shape error,
  // never an undefined double->uint64 cast (1e300 overflows, 1.5 is not
  // a count, -1 is negative). Exercised on a count field and a counter.
  const std::string text = chaos::checkpoint_to_json(sample_checkpoint());
  const auto with = [&](const std::string& needle,
                        const std::string& replacement) {
    std::string t = text;
    const std::size_t at = t.find(needle);
    EXPECT_NE(at, std::string::npos) << needle;
    if (at != std::string::npos) t.replace(at, needle.size(), replacement);
    return t;
  };
  EXPECT_FALSE(chaos::checkpoint_from_json(
                   with("\"frames_judged\": 123456",
                        "\"frames_judged\": 1e300"))
                   .ok());
  EXPECT_FALSE(chaos::checkpoint_from_json(
                   with("\"frames_judged\": 123456",
                        "\"frames_judged\": 1.5"))
                   .ok());
  EXPECT_FALSE(chaos::checkpoint_from_json(
                   with("\"frames_judged\": 123456",
                        "\"frames_judged\": -1"))
                   .ok());
  EXPECT_FALSE(chaos::checkpoint_from_json(
                   with("\"mac.frames\": 100", "\"mac.frames\": 1e300"))
                   .ok());
}

TEST(Checkpoint, DigestsPinScenarioAndSemanticOptions) {
  const Scenario a = ckpt_scenario();
  Scenario b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(chaos::scenario_digest(a), chaos::scenario_digest(b));

  SoakOptions base;
  base.max_frames = 1000;
  SoakOptions semantic = base;
  semantic.max_frames = 2000;
  EXPECT_NE(chaos::soak_options_digest(base),
            chaos::soak_options_digest(semantic));

  // Scheduling/bookkeeping knobs must NOT change the digest: a campaign
  // is routinely resumed at a different thread count or retry policy.
  SoakOptions scheduling = base;
  scheduling.threads = 8;
  scheduling.max_repeats = 17;
  scheduling.checkpoint_every = 1;
  scheduling.retry.max_attempts = 5;
  scheduling.bundle_dir = "elsewhere";
  EXPECT_EQ(chaos::soak_options_digest(base),
            chaos::soak_options_digest(scheduling));
}

TEST(Checkpoint, PathSanitizesScenarioName) {
  EXPECT_EQ(chaos::checkpoint_path("dir", "dense_campus"),
            "dir/checkpoint_dense_campus.json");
  EXPECT_EQ(chaos::checkpoint_path("dir", "a b/c"),
            "dir/checkpoint_a_b_c.json");
  EXPECT_EQ(chaos::checkpoint_path("dir", ""),
            "dir/checkpoint_scenario.json");
}

TEST(Checkpoint, WriteIsAtomicAndLeavesNoTempFile) {
  const std::filesystem::path dir = fresh_dir("ckpt_atomic");
  const std::string path = (dir / "checkpoint_x.json").string();
  ASSERT_TRUE(chaos::write_checkpoint_file(path, sample_checkpoint()));
  ASSERT_TRUE(std::filesystem::exists(path));
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // no .tmp residue
  const CheckpointParseResult parsed = [&] {
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return chaos::checkpoint_from_json(text);
  }();
  EXPECT_TRUE(parsed.ok()) << parsed.error.to_string();
}

// --------------------------------------------------------------- resume

TEST(Resume, InterruptedCampaignReproducesUninterruptedRun) {
  // Acceptance: checkpoint -> interrupt -> resume lands on the exact
  // report and metrics fingerprint of the uninterrupted campaign, at
  // serial and parallel thread counts.
  SoakOptions probe_opts;
  probe_opts.threads = 1;
  std::uint64_t ignored = 0;
  const SoakReport once = run_scoped(ckpt_scenario(), probe_opts, ignored);
  ASSERT_TRUE(once.ok());
  const std::uint64_t budget = once.frames_judged * 5;

  SoakOptions full;
  full.threads = 1;
  full.max_frames = budget;
  std::uint64_t want_fp = 0;
  const SoakReport want = run_scoped(ckpt_scenario(), full, want_fp);
  ASSERT_TRUE(want.ok());
  ASSERT_GE(want.repeats, 4u);

  for (const std::size_t threads : {1u, 4u}) {
    const std::filesystem::path dir =
        fresh_dir("ckpt_resume_t" + std::to_string(threads));

    // "Interrupted" run: same campaign, but the repeat cap stops it long
    // before the frame budget — exactly the state a SIGKILL mid-campaign
    // leaves behind, since checkpoints flush every repeat.
    SoakOptions interrupted = full;
    interrupted.threads = threads;
    interrupted.max_repeats = 2;
    interrupted.checkpoint_dir = dir.string();
    interrupted.checkpoint_every = 1;
    std::uint64_t partial_fp = 0;
    const SoakReport partial =
        run_scoped(ckpt_scenario(), interrupted, partial_fp);
    ASSERT_TRUE(partial.ok());
    ASSERT_EQ(partial.repeats, 2u);
    ASSERT_LT(partial.frames_judged, budget);
    ASSERT_FALSE(partial.checkpoint_path.empty());

    SoakOptions resumed_opts = full;
    resumed_opts.threads = threads;
    resumed_opts.checkpoint_dir = dir.string();
    resumed_opts.resume = true;
    std::uint64_t resumed_fp = 0;
    const SoakReport resumed =
        run_scoped(ckpt_scenario(), resumed_opts, resumed_fp);
    ASSERT_TRUE(resumed.resume_error.empty()) << resumed.resume_error;
    EXPECT_TRUE(resumed.resumed);
    EXPECT_EQ(resumed.frames_judged, want.frames_judged)
        << "threads=" << threads;
    EXPECT_EQ(resumed.steps, want.steps) << "threads=" << threads;
    EXPECT_EQ(resumed.probes, want.probes) << "threads=" << threads;
    EXPECT_EQ(resumed.repeats, want.repeats) << "threads=" << threads;
    EXPECT_EQ(resumed.episodes_run, want.episodes_run)
        << "threads=" << threads;
    EXPECT_DOUBLE_EQ(resumed.mean_goodput_bps, want.mean_goodput_bps)
        << "threads=" << threads;
    EXPECT_EQ(resumed.violations.size(), want.violations.size());
    EXPECT_EQ(resumed_fp, want_fp) << "threads=" << threads;
  }
}

TEST(Resume, CompletedCampaignResumesToIdenticalState) {
  // Resuming a campaign that already met its budget replays only the
  // finalization — same report, same fingerprint, no extra repeats.
  const std::filesystem::path dir = fresh_dir("ckpt_complete");
  SoakOptions opts;
  opts.threads = 1;
  std::uint64_t probe_fp = 0;
  const SoakReport once = run_scoped(ckpt_scenario(), opts, probe_fp);
  opts.max_frames = once.frames_judged * 3;
  opts.checkpoint_dir = dir.string();
  opts.checkpoint_every = 1;
  std::uint64_t want_fp = 0;
  const SoakReport want = run_scoped(ckpt_scenario(), opts, want_fp);
  ASSERT_TRUE(want.ok());

  opts.resume = true;
  std::uint64_t got_fp = 0;
  const SoakReport got = run_scoped(ckpt_scenario(), opts, got_fp);
  ASSERT_TRUE(got.resume_error.empty()) << got.resume_error;
  EXPECT_TRUE(got.resumed);
  EXPECT_EQ(got.resumed_repeats, want.repeats);  // nothing left to run
  EXPECT_EQ(got.frames_judged, want.frames_judged);
  EXPECT_EQ(got.repeats, want.repeats);
  EXPECT_DOUBLE_EQ(got.mean_goodput_bps, want.mean_goodput_bps);
  EXPECT_EQ(got_fp, want_fp);
}

TEST(Resume, MissingCheckpointStartsFresh) {
  const std::filesystem::path dir = fresh_dir("ckpt_missing");
  SoakOptions opts;
  opts.threads = 1;
  std::uint64_t probe_fp = 0;
  const SoakReport once = run_scoped(ckpt_scenario(), opts, probe_fp);
  opts.max_frames = once.frames_judged * 2;
  opts.checkpoint_dir = dir.string();
  opts.resume = true;  // nothing on disk yet
  std::uint64_t fp = 0;
  const SoakReport report = run_scoped(ckpt_scenario(), opts, fp);
  EXPECT_TRUE(report.resume_error.empty());
  EXPECT_FALSE(report.resumed);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.checkpoint_path.empty());
}

TEST(Resume, MismatchedScenarioIsRejected) {
  const std::filesystem::path dir = fresh_dir("ckpt_mismatch");
  SoakOptions opts;
  opts.threads = 1;
  std::uint64_t fp = 0;
  const SoakReport once = run_scoped(ckpt_scenario(), opts, fp);
  opts.max_frames = once.frames_judged * 2;
  opts.checkpoint_dir = dir.string();
  const SoakReport written = run_scoped(ckpt_scenario(), opts, fp);
  ASSERT_FALSE(written.checkpoint_path.empty());

  // Same scenario *name*, different seed: the digest must catch it.
  Scenario tampered = ckpt_scenario();
  tampered.seed = 92;
  opts.resume = true;
  const SoakReport rejected = run_scoped(tampered, opts, fp);
  EXPECT_FALSE(rejected.resume_error.empty());
  EXPECT_EQ(rejected.frames_judged, 0u);  // campaign did not run
  EXPECT_FALSE(rejected.resumed);
}

TEST(Resume, MismatchedOptionsAreRejected) {
  const std::filesystem::path dir = fresh_dir("ckpt_optmismatch");
  SoakOptions opts;
  opts.threads = 1;
  std::uint64_t fp = 0;
  const SoakReport once = run_scoped(ckpt_scenario(), opts, fp);
  opts.max_frames = once.frames_judged * 2;
  opts.checkpoint_dir = dir.string();
  const SoakReport written = run_scoped(ckpt_scenario(), opts, fp);
  ASSERT_FALSE(written.checkpoint_path.empty());

  // A different frame budget is a different campaign...
  SoakOptions different = opts;
  different.max_frames = opts.max_frames + 1;
  different.resume = true;
  const SoakReport rejected = run_scoped(ckpt_scenario(), different, fp);
  EXPECT_FALSE(rejected.resume_error.empty());

  // ...but a different thread count / retry policy is not.
  SoakOptions rethreaded = opts;
  rethreaded.threads = 4;
  rethreaded.retry.max_attempts = 3;
  rethreaded.resume = true;
  const SoakReport accepted = run_scoped(ckpt_scenario(), rethreaded, fp);
  EXPECT_TRUE(accepted.resume_error.empty()) << accepted.resume_error;
  EXPECT_TRUE(accepted.resumed);
}

}  // namespace
}  // namespace carpool
