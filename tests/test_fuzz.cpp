// Coverage-guided scenario fuzzer (chaos/fuzz.hpp): determinism across
// thread counts, schema validity of every mutant, coverage-signature
// bucketing, and the acceptance property that an inject-armed campaign
// rediscovers the injected_fault.json-style violation from a mutated
// steady seed within a bounded budget.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/fuzz.hpp"
#include "chaos/runner.hpp"
#include "chaos/scenario.hpp"
#include "chaos/shrink.hpp"
#include "common/rng.hpp"
#include "obs/registry.hpp"

namespace carpool::chaos {
namespace {

/// Small steady-state seed scenario: quick to evaluate, rich enough for
/// every mutation operator to have something to chew on.
Scenario small_steady() {
  Scenario s;
  s.name = "fuzz_steady";
  s.seed = 42;
  s.duration = 2.0;
  s.num_stas = 3;
  s.probe_interval = 0.0;
  s.traffic.push_back({0.0, TrafficKind::kCbr, 1200, 4e-3});
  return s;
}

FuzzOptions quick_opts() {
  FuzzOptions o;
  o.rounds = 3;
  o.batch = 4;
  o.eval_frames = 500;
  o.seed = 7;
  o.shrink_hits = false;
  return o;
}

// -------------------------------------------------- coverage signature

TEST(FuzzCoverage, SignatureBucketsHitCountsLogarithmically) {
  obs::Registry a, b, c;
  a.counter("x").add(3);
  b.counter("x").add(3);
  EXPECT_EQ(coverage_signature(a), coverage_signature(b));

  b.counter("x").add(280);  // 3 -> 283: new log2 bucket
  EXPECT_NE(coverage_signature(a), coverage_signature(b));

  // Same bucket (floor(log2)+1 of 5 == of 7) -> same signature.
  c.counter("x").add(5);
  obs::Registry d;
  d.counter("x").add(7);
  EXPECT_EQ(coverage_signature(c), coverage_signature(d));
}

TEST(FuzzCoverage, ZeroCountersDoNotContribute) {
  obs::Registry a, b;
  b.counter("never_hit");  // registered but zero
  EXPECT_EQ(coverage_signature(a), coverage_signature(b));
}

// ----------------------------------------------------------- mutator

TEST(FuzzMutator, EveryMutantIsSchemaValidByConstruction) {
  MutatorConfig cfg;
  cfg.allow_inject = true;
  cfg.inject_max_frame = 1000;
  const ScenarioMutator mutator(cfg);
  Rng rng(123);
  Scenario current = small_steady();
  for (int i = 0; i < 300; ++i) {
    Mutation m = mutator.mutate(current, rng);
    EXPECT_FALSE(m.op.empty());
    const ScenarioParseResult round =
        scenario_from_json(scenario_to_json(m.scenario));
    ASSERT_TRUE(round.ok())
        << "op " << m.op << " broke the schema after " << i
        << " mutations: " << round.error.to_string();
    current = std::move(m.scenario);  // walk, compounding mutations
  }
}

TEST(FuzzMutator, InjectOperatorIsGatedOff) {
  const ScenarioMutator mutator;  // allow_inject defaults false
  Rng rng(5);
  Scenario base = small_steady();
  for (int i = 0; i < 200; ++i) {
    const Mutation m = mutator.mutate(base, rng);
    EXPECT_NE(m.op, "inject_fault");
    EXPECT_FALSE(m.scenario.inject.has_value());
  }
}

TEST(FuzzMutator, IsDeterministicForEqualRngState) {
  const ScenarioMutator mutator;
  Rng rng1(99), rng2(99);
  const Scenario base = small_steady();
  for (int i = 0; i < 50; ++i) {
    const Mutation a = mutator.mutate(base, rng1);
    const Mutation b = mutator.mutate(base, rng2);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(scenario_to_json(a.scenario), scenario_to_json(b.scenario));
  }
}

// ----------------------------------------------------------- engine

TEST(FuzzEngineBasics, EmptySeedCorpusRunsNoRounds) {
  obs::Registry reg;
  const obs::Registry::ScopedCurrent scope(reg);
  const FuzzEngine engine(quick_opts());
  const FuzzReport report = engine.run({});
  EXPECT_EQ(report.evals, 0u);
  EXPECT_EQ(report.rounds_run, 0u);
  EXPECT_TRUE(report.corpus.empty());
  EXPECT_FALSE(report.found());
}

TEST(FuzzEngineBasics, CleanCampaignGrowsACorpus) {
  obs::Registry reg;
  const obs::Registry::ScopedCurrent scope(reg);
  const FuzzEngine engine(quick_opts());
  const FuzzReport report = engine.run({small_steady()});
  EXPECT_FALSE(report.found());
  EXPECT_GE(report.corpus.size(), 1u);
  EXPECT_EQ(report.rounds_run, quick_opts().rounds);
  EXPECT_EQ(report.evals,
            1 + quick_opts().rounds * quick_opts().batch);
  // Engine instrumentation landed in the scoped registry.
  EXPECT_EQ(reg.counter_value("chaos.fuzz.evals"), report.evals);
  EXPECT_EQ(reg.counter_value("chaos.fuzz.violations"), 0u);
}

TEST(FuzzEngineBasics, CorpusEvictionHoldsTheCap) {
  FuzzOptions o = quick_opts();
  o.rounds = 4;
  o.corpus_max = 2;
  obs::Registry reg;
  const obs::Registry::ScopedCurrent scope(reg);
  const FuzzReport report = FuzzEngine(o).run({small_steady()});
  EXPECT_LE(report.corpus.size(), 2u);
}

// ------------------------------------------------------- determinism

TEST(FuzzDeterminism, CorpusEvolutionBitIdenticalAcrossThreadCounts) {
  FuzzReport serial, parallel;
  obs::Registry reg_serial, reg_parallel;
  {
    FuzzOptions o = quick_opts();
    o.threads = 1;
    const obs::Registry::ScopedCurrent scope(reg_serial);
    serial = FuzzEngine(o).run({small_steady()});
  }
  {
    FuzzOptions o = quick_opts();
    o.threads = 4;
    const obs::Registry::ScopedCurrent scope(reg_parallel);
    parallel = FuzzEngine(o).run({small_steady()});
  }
  EXPECT_EQ(serial.corpus_digest(), parallel.corpus_digest());
  EXPECT_EQ(serial.evals, parallel.evals);
  EXPECT_EQ(serial.corpus.size(), parallel.corpus.size());
  EXPECT_EQ(serial.hits.size(), parallel.hits.size());
  // The whole deterministic metric surface, not just the corpus.
  EXPECT_EQ(reg_serial.fingerprint(), reg_parallel.fingerprint());
}

TEST(FuzzResume, InterruptedCampaignEvolvesBitIdenticalCorpus) {
  // Acceptance (docs/FAULT_TOLERANCE.md): stop a fuzz campaign after K
  // rounds, resume from fuzz_state.json, and the evolved corpus is
  // bit-identical to an uninterrupted campaign's.
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "fuzz_resume_state";
  std::filesystem::remove_all(dir);

  FuzzReport uninterrupted;
  {
    FuzzOptions o = quick_opts();
    o.rounds = 6;
    obs::Registry reg;
    const obs::Registry::ScopedCurrent scope(reg);
    uninterrupted = FuzzEngine(o).run({small_steady()});
  }
  {
    FuzzOptions o = quick_opts();
    o.rounds = 3;
    o.checkpoint_dir = dir.string();
    obs::Registry reg;
    const obs::Registry::ScopedCurrent scope(reg);
    const FuzzReport partial = FuzzEngine(o).run({small_steady()});
    ASSERT_EQ(partial.rounds_run, 3u);
    ASSERT_TRUE(std::filesystem::exists(dir / "fuzz_state.json"));
  }
  FuzzReport resumed;
  {
    FuzzOptions o = quick_opts();
    o.rounds = 6;
    o.checkpoint_dir = dir.string();
    o.resume = true;
    obs::Registry reg;
    const obs::Registry::ScopedCurrent scope(reg);
    resumed = FuzzEngine(o).run({small_steady()});
  }
  ASSERT_TRUE(resumed.resume_error.empty()) << resumed.resume_error;
  EXPECT_TRUE(resumed.resumed);
  // Everything the uninterrupted campaign produced — rounds (a hit can
  // stop both early, identically), corpus evolution, hit count.
  EXPECT_EQ(resumed.rounds_run, uninterrupted.rounds_run);
  EXPECT_EQ(resumed.hits.size(), uninterrupted.hits.size());
  EXPECT_EQ(resumed.corpus_digest(), uninterrupted.corpus_digest());
  EXPECT_EQ(resumed.corpus.size(), uninterrupted.corpus.size());
  EXPECT_EQ(resumed.corpus_adds, uninterrupted.corpus_adds);
}

TEST(FuzzResume, SeedMismatchIsRejected) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "fuzz_resume_seed";
  std::filesystem::remove_all(dir);
  {
    FuzzOptions o = quick_opts();
    o.checkpoint_dir = dir.string();
    obs::Registry reg;
    const obs::Registry::ScopedCurrent scope(reg);
    (void)FuzzEngine(o).run({small_steady()});
  }
  FuzzOptions o = quick_opts();
  o.seed = 8;  // a different campaign
  o.checkpoint_dir = dir.string();
  o.resume = true;
  obs::Registry reg;
  const obs::Registry::ScopedCurrent scope(reg);
  const FuzzReport rejected = FuzzEngine(o).run({small_steady()});
  EXPECT_FALSE(rejected.resume_error.empty());
  EXPECT_EQ(rejected.rounds_run, 0u);
  EXPECT_TRUE(rejected.corpus.empty());
}

TEST(FuzzResume, OutOfRangeNumbersInStateFileAreRejected) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "fuzz_resume_range";
  std::filesystem::remove_all(dir);
  {
    FuzzOptions o = quick_opts();
    o.checkpoint_dir = dir.string();
    obs::Registry reg;
    const obs::Registry::ScopedCurrent scope(reg);
    (void)FuzzEngine(o).run({small_steady()});
  }
  // Corrupt rounds_run into a value no uint64 can hold: the resume must
  // surface a parse error, not hit an undefined cast.
  const std::filesystem::path state = dir / "fuzz_state.json";
  ASSERT_TRUE(std::filesystem::exists(state));
  std::string text;
  {
    std::ifstream in(state);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  const std::string needle = "\"rounds_run\": ";
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  const std::size_t value_end = text.find_first_of(",\n", at + needle.size());
  ASSERT_NE(value_end, std::string::npos);
  text.replace(at + needle.size(), value_end - at - needle.size(), "1e300");
  std::ofstream(state, std::ios::trunc) << text;

  FuzzOptions o = quick_opts();
  o.checkpoint_dir = dir.string();
  o.resume = true;
  obs::Registry reg;
  const obs::Registry::ScopedCurrent scope(reg);
  const FuzzReport rejected = FuzzEngine(o).run({small_steady()});
  EXPECT_FALSE(rejected.resume_error.empty());
  EXPECT_EQ(rejected.rounds_run, 0u);
  EXPECT_TRUE(rejected.corpus.empty());
}

// -------------------------------------------- injected-fault rediscovery

/// The acceptance property: from a mutated steady seed, an inject-armed
/// campaign must deterministically rediscover the scripted violation
/// (the injected_fault.json scenario's failure mode) within a bounded
/// budget — and identically at any thread count.
TEST(FuzzRediscovery, FindsInjectedFaultFromMutatedSteadySeed) {
  FuzzOptions o;
  o.rounds = 12;
  o.batch = 6;
  o.eval_frames = 1000;
  o.seed = 1;
  o.allow_inject = true;
  o.shrink_hits = true;
  // Collect every hit: an inject-armed campaign may also trip organic
  // violations (e.g. a goodput cliff from an intensified episode), and
  // the acceptance property is about the scripted fault specifically.
  o.stop_on_violation = false;

  const auto injected_hit = [](const FuzzReport& r) -> const FuzzHit* {
    for (const FuzzHit& h : r.hits)
      if (h.violation.invariant == "injected") return &h;
    return nullptr;
  };

  FuzzReport serial, parallel;
  obs::Registry reg_serial, reg_parallel;
  {
    FuzzOptions s = o;
    s.threads = 1;
    const obs::Registry::ScopedCurrent scope(reg_serial);
    serial = FuzzEngine(s).run({small_steady()});
  }
  const FuzzHit* hit = injected_hit(serial);
  ASSERT_NE(hit, nullptr) << "bounded budget must rediscover the "
                             "injected fault (" << serial.hits.size()
                          << " hits total)";
  EXPECT_EQ(hit->op, "inject_fault");
  ASSERT_TRUE(hit->scenario.inject.has_value());
  EXPECT_EQ(hit->violation.frame, hit->scenario.inject->frame);
  // The hit auto-shrunk into a minimal reproduction that still replays.
  EXPECT_LT(hit->timeline_ratio, 1.0);
  ASSERT_TRUE(hit->shrunk.inject.has_value());
  EXPECT_EQ(hit->shrunk_violation.invariant, "injected");
  EXPECT_EQ(hit->shrunk_violation.frame, hit->violation.frame);
  const ReplayResult replay =
      replay_bundle({hit->shrunk, hit->shrunk_violation});
  EXPECT_TRUE(replay.reproduced);

  {
    FuzzOptions p = o;
    p.threads = 4;
    const obs::Registry::ScopedCurrent scope(reg_parallel);
    parallel = FuzzEngine(p).run({small_steady()});
  }
  const FuzzHit* phit = injected_hit(parallel);
  ASSERT_NE(phit, nullptr);
  EXPECT_EQ(serial.corpus_digest(), parallel.corpus_digest());
  EXPECT_EQ(serial.hits.size(), parallel.hits.size());
  EXPECT_EQ(phit->violation.frame, hit->violation.frame);
  EXPECT_EQ(phit->round, hit->round);
  EXPECT_EQ(phit->batch_index, hit->batch_index);
  EXPECT_EQ(reg_serial.fingerprint(), reg_parallel.fingerprint());
}

// ------------------------------------------- shrinker degenerate inputs

TEST(FuzzShrinkHardening, NonReproducingBundleReturnsUnchanged) {
  // A bundle whose scenario never produces the recorded violation must
  // come back unchanged after ONE verification soak — not after burning
  // every reduction pass on candidates that all fail the same check.
  const Scenario s = small_steady();  // no injected fault
  Violation v;
  v.invariant = "injected";
  v.frame = 100;
  obs::Registry reg;
  const obs::Registry::ScopedCurrent scope(reg);
  const ShrinkResult sr = shrink_bundle({s, v});
  EXPECT_EQ(sr.attempts, 1u);
  EXPECT_EQ(sr.accepted, 0u);
  EXPECT_DOUBLE_EQ(sr.timeline_ratio, 1.0);
  EXPECT_EQ(scenario_to_json(sr.scenario), scenario_to_json(s));
}

TEST(FuzzShrinkHardening, MinimalScenarioAtTheFloorsDoesNotUnderflow) {
  // Single STA, duration already at the shrink floor, no optional
  // sections: every reduction axis is exhausted from the start.
  Scenario s = small_steady();
  s.num_stas = 1;
  s.duration = 0.05;
  s.inject = InjectedViolation{3};

  const SoakReport report = SoakRunner{}.run(s);
  ASSERT_FALSE(report.ok());
  const ShrinkResult sr = shrink_bundle({s, report.violations.front()});
  EXPECT_GE(sr.attempts, 1u);
  EXPECT_GT(sr.timeline_ratio, 0.0);
  EXPECT_LE(sr.timeline_ratio, 1.0);
  EXPECT_GE(sr.scenario.num_stas, 1u);
  const ReplayResult replay = replay_bundle({sr.scenario, sr.violation});
  EXPECT_TRUE(replay.reproduced);
}

TEST(FuzzShrinkHardening, ScenarioWithNoOptionalSectionsShrinks) {
  Scenario s = small_steady();
  s.traffic.clear();  // even the traffic list is optional
  s.inject = InjectedViolation{50};
  const SoakReport report = SoakRunner{}.run(s);
  ASSERT_FALSE(report.ok());
  const ShrinkResult sr = shrink_bundle({s, report.violations.front()});
  EXPECT_LE(sr.timeline_ratio, 1.0);
  EXPECT_EQ(sr.violation.invariant, "injected");
  EXPECT_EQ(sr.violation.frame, 50u);
  const ReplayResult replay = replay_bundle({sr.scenario, sr.violation});
  EXPECT_TRUE(replay.reproduced);
}

}  // namespace
}  // namespace carpool::chaos
